#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <unordered_set>

namespace lispoison {
namespace {

/// FNV-1a on the rank bits: YCSB's ScrambledZipfian hash. Collisions are
/// allowed (as in YCSB) — popularity mass still concentrates on a small
/// scrambled subset of ranks.
std::uint64_t Fnv64(std::uint64_t x) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

double ZetaStatic(std::int64_t n, double theta) {
  double z = 0.0;
  for (std::int64_t i = 1; i <= n; ++i) {
    z += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return z;
}

}  // namespace

ZipfianRankGenerator::ZipfianRankGenerator(std::int64_t n, double theta,
                                           bool scramble)
    : n_(n < 1 ? 1 : n), theta_(theta), scramble_(scramble) {
  zetan_ = ZetaStatic(n_, theta_);
  const double zeta2 = ZetaStatic(std::min<std::int64_t>(2, n_), theta_);
  const double nn = static_cast<double>(n_);
  eta_ = (1.0 - std::pow(2.0 / nn, 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
}

std::int64_t ZipfianRankGenerator::Next(Rng* rng) const {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  std::int64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < half_pow_theta_) {
    rank = 1;
  } else {
    const double alpha = 1.0 / (1.0 - theta_);
    rank = static_cast<std::int64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha));
  }
  if (rank < 0) rank = 0;
  if (rank >= n_) rank = n_ - 1;
  if (scramble_) {
    rank = static_cast<std::int64_t>(Fnv64(static_cast<std::uint64_t>(rank)) %
                                     static_cast<std::uint64_t>(n_));
  }
  return rank;
}

WorkloadSpec ReadOnlyUniformWorkload(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = "read_only_uniform";
  spec.read_fraction = 1.0;
  spec.scan_fraction = 0.0;
  spec.insert_fraction = 0.0;
  spec.distribution = AccessDistribution::kUniform;
  spec.seed = seed;
  return spec;
}

WorkloadSpec ZipfianReadHeavyWorkload(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = "zipfian_read_heavy";
  spec.read_fraction = 0.95;
  spec.scan_fraction = 0.0;
  spec.insert_fraction = 0.05;
  spec.distribution = AccessDistribution::kZipfian;
  spec.seed = seed;
  return spec;
}

WorkloadSpec RangeScanWorkload(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = "range_scan";
  spec.read_fraction = 0.0;
  spec.scan_fraction = 1.0;
  spec.insert_fraction = 0.0;
  spec.distribution = AccessDistribution::kUniform;
  spec.scan_length = 100;
  spec.seed = seed;
  return spec;
}

WorkloadSpec ReadInsertMixWorkload(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = "read_insert_mix";
  spec.read_fraction = 0.8;
  spec.scan_fraction = 0.0;
  spec.insert_fraction = 0.2;
  spec.distribution = AccessDistribution::kUniform;
  spec.seed = seed;
  return spec;
}

WorkloadSpec InsertHeavyWorkload(std::uint64_t seed) {
  // The scaling bench's write arm: enough insert pressure to force
  // repeated compactions, so the "no insert pays a retrain" invariant
  // is exercised rather than vacuously true.
  WorkloadSpec spec;
  spec.name = "insert_heavy";
  spec.read_fraction = 0.5;
  spec.scan_fraction = 0.0;
  spec.insert_fraction = 0.5;
  spec.distribution = AccessDistribution::kUniform;
  spec.seed = seed;
  return spec;
}

Result<std::vector<Operation>> GenerateOperations(const WorkloadSpec& spec,
                                                  const KeySet& keyset,
                                                  std::int64_t num_ops) {
  if (keyset.empty()) {
    return Status::InvalidArgument("workload requires a non-empty keyset");
  }
  if (num_ops < 0) {
    return Status::InvalidArgument("num_ops must be >= 0");
  }
  const double sum =
      spec.read_fraction + spec.scan_fraction + spec.insert_fraction;
  if (spec.read_fraction < 0 || spec.scan_fraction < 0 ||
      spec.insert_fraction < 0 || std::abs(sum - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        "workload mix fractions must be non-negative and sum to 1");
  }
  const std::int64_t n = keyset.size();
  if (spec.insert_fraction > 0 && n < 2) {
    return Status::InvalidArgument(
        "insert workloads need >= 2 stored keys to define interior gaps");
  }
  if (spec.scan_fraction > 0 && spec.scan_length < 1) {
    return Status::InvalidArgument("scan_length must be >= 1");
  }

  Rng rng(spec.seed);
  // Distribution state derived from forks so adding a draw to one
  // distribution never perturbs the others.
  Rng access_rng = rng.Fork(1);
  Rng mix_rng = rng.Fork(2);
  Rng insert_rng = rng.Fork(3);

  // Only built for zipfian specs: the constructor's zeta normalizer is
  // an O(n) pow loop the other distributions must not pay.
  std::optional<ZipfianRankGenerator> zipf;
  if (spec.distribution == AccessDistribution::kZipfian) {
    zipf.emplace(n, spec.zipf_theta, spec.zipf_scramble);
  }
  std::int64_t hot_size = 0;
  std::int64_t hot_start = 0;
  if (spec.distribution == AccessDistribution::kHotspot) {
    if (spec.hotspot_set_fraction <= 0 || spec.hotspot_set_fraction > 1 ||
        spec.hotspot_op_fraction < 0 || spec.hotspot_op_fraction > 1) {
      return Status::InvalidArgument("malformed hotspot parameters");
    }
    hot_size = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(spec.hotspot_set_fraction *
                                     static_cast<double>(n)));
    hot_start = access_rng.UniformInt(0, n - hot_size);
  }

  auto next_rank = [&]() -> std::int64_t {
    switch (spec.distribution) {
      case AccessDistribution::kUniform:
        return access_rng.UniformInt(0, n - 1);
      case AccessDistribution::kZipfian:
        return zipf->Next(&access_rng);
      case AccessDistribution::kHotspot:
        if (access_rng.NextDouble() < spec.hotspot_op_fraction) {
          return hot_start + access_rng.UniformInt(0, hot_size - 1);
        }
        return access_rng.UniformInt(0, n - 1);
    }
    return 0;
  };

  std::unordered_set<Key> used_inserts;
  auto next_insert_key = [&]() -> Result<Key> {
    // Draw an interior gap and a fresh key inside it; the domain is
    // sparse in every serving configuration, so a bounded retry loop
    // terminates essentially always. Saturated domains error out.
    for (int attempt = 0; attempt < 512; ++attempt) {
      const std::int64_t i = insert_rng.UniformInt(0, n - 2);
      const Key lo = keyset.at(i);
      const Key hi = keyset.at(i + 1);
      const Key capacity = hi - lo - 1;
      if (capacity <= 0) continue;
      const Key candidate = lo + 1 + insert_rng.UniformInt(0, capacity - 1);
      if (used_inserts.insert(candidate).second) return candidate;
    }
    return Status::ResourceExhausted(
        "could not draw a fresh insert key after 512 attempts; the key "
        "domain is too dense for workload '" +
        spec.name + "'");
  };

  std::vector<Operation> ops;
  ops.reserve(static_cast<std::size_t>(num_ops));
  for (std::int64_t i = 0; i < num_ops; ++i) {
    const double u = mix_rng.NextDouble();
    Operation op;
    // The residual branch is an insert only when the mix actually has
    // inserts: with fractions summing to 1 - epsilon, a draw in the
    // epsilon sliver must not manufacture an op type the spec excludes
    // (the n >= 2 insert guard above was skipped for such specs).
    if (u < spec.read_fraction ||
        (spec.insert_fraction <= 0 && spec.scan_fraction <= 0)) {
      op.type = OpType::kRead;
      op.key = keyset.at(next_rank());
    } else if (u < spec.read_fraction + spec.scan_fraction ||
               spec.insert_fraction <= 0) {
      op.type = OpType::kScan;
      const std::int64_t first = next_rank();
      const std::int64_t last =
          std::min<std::int64_t>(n - 1, first + spec.scan_length - 1);
      op.key = keyset.at(first);
      op.scan_hi = keyset.at(last);
    } else {
      op.type = OpType::kInsert;
      LISPOISON_ASSIGN_OR_RETURN(op.key, next_insert_key());
    }
    ops.push_back(op);
  }
  return ops;
}

}  // namespace lispoison
