// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// OnlineAdversary: the §V threat model executed end to end against the
// live serving engine. Instead of retraining the victim on K ∪ P
// offline (every arm before this one), the attacker here constructs its
// insert/delete/modify stream *online* with the incremental
// LossLandscape engine and replays it through the SearchBackend write
// path — racing legitimate QueryDriver traffic, overlay growth, async
// compactions, and retrains.
//
// The attacker's model of the victim: it partitions its *view* of the
// stored keys (everything it believes live: the base keyset plus its
// own committed writes) into contiguous `model_size`-key slices — the
// same equal-count partitioning an RMI second stage induces — and
// bookkeeps one incremental LossLandscape per slice. Per attack op it
// scans the per-model argmax candidates (lazily recomputed only for
// models it has touched), executes the globally best insertion /
// removal / relocation through the victim's real write path, and
// commits the outcome into its landscapes so the view tracks reality
// even when an op is rejected (a legitimate insert raced it to the same
// gap key).
//
// Retrain awareness: the victim's compactions retrain shard substrates
// on the merged key list, invalidating the loss surface the attacker
// planned against. The adversary polls the process-wide
// `serving.compactions` telemetry counter every few ops; observed
// movement triggers a *replan*. A replan rebuilds only the slices the
// attacker wrote into since their landscape was built (dirty slices,
// re-extracted from the view by key range); untouched slices keep
// their incrementally maintained landscape, so replan cost scales with
// the attacker's own write locality instead of the full view. When a
// dirty slice has drifted out of the fresh-RMI size envelope the
// replan falls back to the full equal-count repartition.
// This is the machinery behind the heal-or-amplify question the
// adversarial bench answers.
//
// Threading: RunOnlineAdversary drives its landscapes from the calling
// thread only (the engine's one-landscape-one-thread scratch contract);
// the victim's write path and the telemetry counters are fully
// thread-safe, so the bench runs it on a dedicated attacker thread
// concurrently with the driver.

#ifndef LISPOISON_WORKLOAD_ADVERSARY_H_
#define LISPOISON_WORKLOAD_ADVERSARY_H_

#include <cstdint>
#include <vector>

#include "attack/loss_landscape.h"
#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"
#include "workload/search_backend.h"

namespace lispoison {

/// \brief Knobs of the online attack stream.
struct AdversaryOptions {
  /// Attack operations to attempt (one op = one insert, one delete, or
  /// one modify; a modify issues two write-path calls).
  std::int64_t ops = 512;

  /// Fraction of ops drawn as deletions / modifications of legitimate
  /// keys; the remainder are poisoning insertions. Deletion targets
  /// come from the removal argmax (the key whose loss increase is
  /// largest), the paper's §V deletion attack executed online.
  double delete_fraction = 0.15;
  double modify_fraction = 0.15;

  /// Keys per attacker-side model slice (the assumed RMI second-stage
  /// partition granularity). Clamped to >= 8.
  std::int64_t model_size = 500;

  /// Candidate gaps strictly inside each model's key range only (the
  /// paper's default: no outlier injections a trivial defense catches).
  bool interior_only = true;

  /// Argmax configuration (pruning + tier cache on by default).
  LossLandscape::ArgmaxOptions argmax;

  /// Ops between polls of the `serving.compactions` counter; observed
  /// movement triggers a replan against the fresh substrate.
  std::int64_t replan_check_every = 8;

  /// Nanoseconds to sleep between attack ops (0 = none): paces the
  /// stream across the victim's serving window so the per-interval ROI
  /// rows see a sustained attack instead of one burst.
  std::int64_t pace_ns = 0;

  std::uint64_t seed = 7;
};

/// \brief Outcome of one online attack run.
struct AdversaryResult {
  std::int64_t ops_planned = 0;  ///< Attack ops attempted.
  std::int64_t inserts = 0;      ///< Poison keys accepted by the victim.
  std::int64_t deletes = 0;      ///< Legitimate keys removed.
  std::int64_t modifies = 0;     ///< Relocations (remove + insert pairs).
  std::int64_t rejected = 0;     ///< Write-path refusals (racing traffic
                                 ///< took the planned key first).
  std::int64_t skipped = 0;      ///< Ops with no feasible candidate.
  /// Attacker inserts shed with kResourceExhausted by a degraded shard
  /// (overlay hard cap). Unlike a duplicate rejection the key was NOT
  /// stored, so nothing is committed into the attacker's view. Counted
  /// into `adversary.shed` — the bench's shed telescoping identity sums
  /// this with the driver's inserts_shed against the backend total.
  std::int64_t shed = 0;
  /// Injected attacker-channel faults (FAULT_POINT("adversary.write")):
  /// ops dropped before reaching the victim; no state committed.
  std::int64_t write_faults = 0;
  std::int64_t replans = 0;      ///< Replans executed after retrains.
  std::int64_t retrains_observed = 0;  ///< serving.compactions movement
                                       ///< seen at the poll points.
  /// Replan work accounting: a replan rebuilds only the model slices
  /// whose view changed since their landscape was built (dirty slices);
  /// clean slices keep their incrementally maintained landscape. Summed
  /// over all replans — adversary_test pins rebuilt < kept + rebuilt.
  std::int64_t models_rebuilt = 0;
  std::int64_t models_kept = 0;

  /// Mean per-model regression loss of the attacker's view, before the
  /// first op and after the last (the attacker-side Theorem 1 signal;
  /// the victim-side truth is the serving latency the bench measures).
  double initial_mean_model_loss = 0;
  double final_mean_model_loss = 0;

  /// Poison keys still live at the end (inserted and not re-deleted),
  /// and legitimate keys the attacker removed — membership oracles for
  /// the tests.
  std::vector<Key> live_poison_keys;
  std::vector<Key> removed_legit_keys;

  LossLandscape::ArgmaxStats argmax_stats;  ///< Planning work counters.
  double elapsed_seconds = 0;
};

/// \brief Runs the online adversary against \p victim. \p base is the
/// legitimate keyset the victim was built on (the attacker's initial
/// view — the §V attacker knows the distribution it poisons).
Result<AdversaryResult> RunOnlineAdversary(SearchBackend* victim,
                                           const KeySet& base,
                                           const AdversaryOptions& options);

}  // namespace lispoison

#endif  // LISPOISON_WORKLOAD_ADVERSARY_H_
