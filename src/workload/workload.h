// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Deterministic workload generation for the serving benchmarks: YCSB-style
// read/scan/insert mixes over uniform, zipfian, and hotspot access
// distributions. The paper measures poisoning damage as regression loss;
// the workload subsystem converts that into the currency a serving system
// feels — per-operation latency under a realistic key-access skew.
//
// Every operation stream is materialized up front from a single seeded
// Rng, so the stream is a pure function of (spec, keyset): identical
// across runs, machines, and — because the QueryDriver only partitions
// the pre-built stream — across thread counts.

#ifndef LISPOISON_WORKLOAD_WORKLOAD_H_
#define LISPOISON_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief One serving operation.
enum class OpType {
  kRead,    ///< Point lookup of a stored key.
  kScan,    ///< Range scan [key, scan_hi].
  kInsert,  ///< Insert of a previously absent key.
};

/// \brief A single generated operation. For scans, `scan_hi` is the
/// inclusive upper key bound; for reads/inserts it is unused.
struct Operation {
  OpType type = OpType::kRead;
  Key key = 0;
  Key scan_hi = 0;

  bool operator==(const Operation& o) const {
    return type == o.type && key == o.key && scan_hi == o.scan_hi;
  }
};

/// \brief How read/scan start keys are drawn from the stored key ranks.
enum class AccessDistribution {
  kUniform,  ///< Every stored key equally likely.
  kZipfian,  ///< YCSB-style zipfian over ranks (skew `zipf_theta`).
  kHotspot,  ///< `hotspot_op_fraction` of ops hit a contiguous hot rank
             ///< range holding `hotspot_set_fraction` of the keys.
};

/// \brief Declarative workload description (a YCSB workload file analog).
struct WorkloadSpec {
  std::string name = "unnamed";

  /// Operation mix; fractions must be non-negative and sum to ~1.
  double read_fraction = 1.0;
  double scan_fraction = 0.0;
  double insert_fraction = 0.0;

  AccessDistribution distribution = AccessDistribution::kUniform;

  /// Zipfian skew parameter (YCSB default 0.99).
  double zipf_theta = 0.99;
  /// Scramble zipfian ranks with an FNV hash so popularity is decoupled
  /// from key order (YCSB's ScrambledZipfian). Disable in tests that
  /// check the frequency shape directly.
  bool zipf_scramble = true;

  /// Hotspot parameters: fraction of keys forming the hot set and
  /// fraction of operations directed at it.
  double hotspot_set_fraction = 0.1;
  double hotspot_op_fraction = 0.9;

  /// Ranks spanned by one scan (the scan covers up to this many stored
  /// keys starting at the drawn rank).
  std::int64_t scan_length = 100;

  /// Stream seed; everything about the stream derives from it.
  std::uint64_t seed = 1;
};

/// \name Preset workload mixes used by bench_serving.
/// @{
WorkloadSpec ReadOnlyUniformWorkload(std::uint64_t seed);
WorkloadSpec ZipfianReadHeavyWorkload(std::uint64_t seed);  ///< 95r/5i zipf.
WorkloadSpec RangeScanWorkload(std::uint64_t seed);         ///< 100% scans.
WorkloadSpec ReadInsertMixWorkload(std::uint64_t seed);     ///< 80r/20i.
WorkloadSpec InsertHeavyWorkload(std::uint64_t seed);       ///< 50r/50i.
/// @}

/// \brief Materializes \p num_ops operations of \p spec against the
/// stored keys of \p keyset.
///
/// Reads and scan starts address stored keys by rank under the spec's
/// access distribution. Inserts draw fresh unoccupied keys from the gaps
/// between stored keys (deterministically, duplicate-free across the
/// stream). Fails with InvalidArgument on an empty keyset or malformed
/// mix, and ResourceExhausted when the domain cannot supply the
/// requested number of distinct insert keys.
Result<std::vector<Operation>> GenerateOperations(const WorkloadSpec& spec,
                                                  const KeySet& keyset,
                                                  std::int64_t num_ops);

/// \brief YCSB-style zipfian rank generator over [0, n): popularity of
/// rank r is proportional to 1/(r+1)^theta, optionally hash-scrambled.
/// Exposed for the workload tests' frequency-shape checks.
class ZipfianRankGenerator {
 public:
  /// \brief Precomputes the zeta normalizer (O(n) once).
  ZipfianRankGenerator(std::int64_t n, double theta, bool scramble);

  /// \brief Draws the next rank in [0, n) using \p rng.
  std::int64_t Next(Rng* rng) const;

 private:
  std::int64_t n_;
  double theta_;
  bool scramble_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
};

}  // namespace lispoison

#endif  // LISPOISON_WORKLOAD_WORKLOAD_H_
