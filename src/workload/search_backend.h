// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// SearchBackend: the sharded serving engine the QueryDriver drives.
//
// The keyspace is partitioned into `BackendOptions::num_shards`
// key-range shards whose boundaries come from the base keyset's
// empirical CDF (equal key *counts* per shard, not equal key ranges),
// so skewed keysets stay load-balanced. Each shard owns an immutable
// index substrate — RMI (LearnedIndex), B+Tree, or binary search — plus
// a sorted insert overlay, both published together as one immutable
// ShardSnapshot behind an atomic pointer.
//
// Concurrency design (the ROADMAP "shard-per-core serving" item):
//
//   * READS ARE LOCK-FREE. A lookup enters an epoch guard
//     (common/epoch.h — one wait-free atomic store), loads the shard's
//     snapshot pointer, probes substrate + overlay, and leaves. No
//     mutex, no reference counting, no retry loop. A code-level guard
//     enforces this: acquiring any shard writer mutex while the calling
//     thread is inside the read path aborts the process.
//
//   * WRITES ARE SMALL. An insert takes the shard's writer mutex,
//     copies the bounded overlay with the new key spliced in, and
//     publishes a fresh snapshot with one atomic store. The replaced
//     snapshot is retired through the epoch domain and freed once no
//     reader can still observe it. An insert never rebuilds an index.
//
//   * COMPACTION IS OFF-THREAD. When a shard's overlay reaches
//     `compact_threshold`, a background maintenance worker (a dedicated
//     common/thread_pool thread) merges base + overlay, retrains the
//     substrate with no locks held, and publishes the result with a
//     single pointer swap; keys inserted during the rebuild survive in
//     the successor overlay. `sync_compaction` is the deterministic
//     escape hatch: compaction then runs inline on the inserting
//     thread, which the seeded differential tests rely on.
//
// Every operation reports `work` — probes / comparisons / nodes visited,
// the implementation-independent cost signal of the paper — alongside
// the wall-clock latency the driver measures. Work totals are exactly
// reproducible for read-only streams regardless of thread count, which
// is what the deterministic clean-vs-poisoned tests assert.

#ifndef LISPOISON_WORKLOAD_SEARCH_BACKEND_H_
#define LISPOISON_WORKLOAD_SEARCH_BACKEND_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "data/keyset.h"
#include "index/rmi.h"

namespace lispoison {

/// \brief Outcome of one serving operation against a backend.
struct BackendOpResult {
  bool found = false;          ///< Reads: key present. Inserts: accepted.
  std::int64_t work = 0;       ///< Probes/comparisons/nodes touched.
  std::int64_t range_count = 0;  ///< Scans: stored keys in the range.
};

/// \brief The index substrates a backend can wrap.
enum class BackendKind {
  kRmi,           ///< LearnedIndex: RMI prediction + last-mile search.
  kBTree,         ///< Bulk-loaded B+Tree.
  kBinarySearch,  ///< Plain binary search (the poisoning-immune control).
};

/// \brief Returns the canonical lowercase name of \p kind.
const char* BackendKindName(BackendKind kind);

/// \brief Options shared by every backend build.
struct BackendOptions {
  RmiOptions rmi;      ///< RMI configuration (kRmi only).
  int btree_fanout = 64;  ///< B+Tree fanout (kBTree only).

  /// Key-range shards. Boundaries are drawn from the base keyset's
  /// empirical CDF so every shard starts with the same key count
  /// (clamped to [1, min(n, 64)]). 1 reproduces the single-backend
  /// serving path exactly.
  int num_shards = 1;

  /// Per-shard overlay compaction / retrain threshold: when a shard's
  /// insert overlay reaches this many keys, the maintenance thread
  /// merges it into the shard's base structure and rebuilds (retrains
  /// the RMI, re-bulk-loads the B+Tree) off-thread, so long
  /// insert-heavy runs do not degrade into overlay binary search.
  /// 0 disables compaction.
  std::int64_t compact_threshold = 0;

  /// Deterministic escape hatch: run compaction inline on the thread
  /// whose insert crossed the threshold (the pre-PR-6 behaviour).
  /// Differential tests use this to keep single-threaded replays
  /// bit-stable; serving runs leave it off so no insert ever pays a
  /// rebuild.
  bool sync_compaction = false;

  /// \name Compaction failure policy (RocksDB-style retry discipline).
  ///
  /// A failed substrate rebuild (I/O fault, build error — injected in
  /// tests through FAULT_POINT("compaction.rebuild")) is retried up to
  /// `compaction_max_retries` times on the compacting thread, each
  /// retry preceded by a jittered exponential backoff drawn from the
  /// shard's private Rng (seeded Rng(backoff_seed).Fork(shard), so the
  /// delay sequence is reproducible under a fixed seed). Attempt k
  /// sleeps uniform([e/2, e]) where e = min(base << k, max). Only when
  /// every retry is exhausted does the shard fall back to threshold
  /// doubling (capped at 8x the configured value; the next successful
  /// compaction restores it). 0 retries reproduces the bare
  /// give-up-immediately behaviour the regression tests pin against.
  /// @{
  int compaction_max_retries = 3;
  std::int64_t compaction_backoff_base_us = 200;
  std::int64_t compaction_backoff_max_us = 20000;
  std::uint64_t backoff_seed = 0x0fa0175eedull;
  /// @}

  /// Admission control: a shard whose insert overlay has reached this
  /// many keys enters DEGRADED mode — further brand-new inserts are
  /// shed with kResourceExhausted (reads, removes, resurrections, and
  /// duplicate detection all keep working; the read path stays
  /// lock-free) until a successful compaction drains the overlay to
  /// half the cap. 0 disables the cap. Bounds the O(overlay) publish
  /// copy — and the per-read overlay probe — when maintenance cannot
  /// keep up (storm of rebuild failures, wedged pool).
  std::int64_t overlay_hard_cap = 0;

  /// Maintenance watchdog: with compaction work pending, a gap of more
  /// than this many milliseconds since the maintenance thread's last
  /// heartbeat (pass start, publish, backoff draw) reports the pool as
  /// stalled via maintenance_stalled() and the
  /// `serving.maintenance_stalled` observable gauge. 0 disables.
  std::int64_t watchdog_stall_ms = 1000;
};

/// Internal immutable per-shard index structure (defined in the .cc).
class IndexSubstrate;

/// \brief One published, immutable shard state: substrate + overlay +
/// tombstones.
///
/// Readers hold instances only inside an epoch guard; writers replace
/// the pointer wholesale and retire the predecessor. The substrate is
/// shared between consecutive snapshots (inserts and removes change
/// only the overlay/tombstone vectors), so a write costs an O(overlay)
/// copy, never a rebuild.
///
/// PUBLISH CONTRACT (the memory-ordering rules every access follows):
///   * A writer fully constructs the successor snapshot — substrate
///     pointer, overlay, tombstones — before publishing it with a
///     single store(memory_order_release) to Shard::snapshot.
///   * Readers load the pointer with memory_order_acquire (inside an
///     epoch guard), which synchronizes-with the release store, so the
///     snapshot's contents are visible without further fences. No
///     snapshot access uses seq_cst: acquire/release is the whole
///     contract, and cross-shard ordering is never assumed.
///   * The displaced snapshot is retired through EpochDomain, which
///     frees it only after every reader that could hold the pointer
///     has left its guard.
///   * Writers serialize on Shard::write_mu; the mutex alone orders
///     writer-to-writer access, the release store orders
///     writer-to-reader access.
struct ShardSnapshot {
  std::shared_ptr<const IndexSubstrate> substrate;
  std::vector<Key> overlay;  ///< Sorted, unique, disjoint from the base.
  /// Base-substrate keys that have been removed: sorted, unique, always
  /// a subset of the substrate's keys and disjoint from the overlay. A
  /// substrate hit on a tombstoned key reports found = false; scans
  /// subtract tombstones in range. Compaction folds them away.
  std::vector<Key> tombstones;
};

/// \brief Shard writer mutex with a read-path tripwire: locking it
/// while the calling thread is inside Lookup/Scan/LookupBatch aborts.
/// This turns "the read path contains no mutex acquisition" from a
/// convention into an enforced invariant (always on, release builds
/// included — the check is one thread_local read on the writer path).
class WriterMutex {
 public:
  void lock();
  void unlock();

 private:
  std::mutex mu_;
};

/// \brief The sharded serving backend.
///
/// Thread-safe for any mix of concurrent Lookup/Scan/LookupBatch/
/// Insert calls; the accessors (overlay_size, compactions, ...) are
/// safe too but report a momentary snapshot under churn.
class SearchBackend {
 public:
  ~SearchBackend();

  SearchBackend(const SearchBackend&) = delete;
  SearchBackend& operator=(const SearchBackend&) = delete;

  /// \brief Backend display name ("rmi", "btree", "binary_search").
  const char* name() const { return BackendKindName(kind_); }

  /// \brief Number of key-range shards.
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// \brief Keys across all shards' base structures (excludes overlays;
  /// grows when a compaction folds an overlay in). Lock-free.
  std::int64_t base_size() const;

  /// \brief Base-structure key count of one shard (boundary-balance
  /// checks in tests). Lock-free.
  std::int64_t shard_base_size(int shard) const;

  /// \brief Point lookup of \p k across the owning shard's base +
  /// overlay. Wait-free read path: epoch guard + atomic snapshot load,
  /// no mutex.
  BackendOpResult Lookup(Key k) const;

  /// \brief Batched point lookups: out[i] = Lookup(keys[i]), with the
  /// per-key results bit-identical to scalar Lookup calls. The batch
  /// first issues a software-prefetch pass across every key's predicted
  /// probe window, then runs the probes, so the memory latency of up to
  /// kMaxLookupBatch concurrent probes overlaps within the batch.
  void LookupBatch(const Key* keys, int count, BackendOpResult* out) const;

  /// Largest batch LookupBatch accepts in one call.
  static constexpr int kMaxLookupBatch = 64;

  /// \brief Counts stored keys in [lo, hi] across every overlapping
  /// shard's base + overlay. Lock-free. Empty result when lo > hi.
  BackendOpResult Scan(Key lo, Key hi) const;

  /// \brief Inserts \p k into the owning shard's overlay (or, when \p k
  /// is a tombstoned base key, resurrects it by clearing the
  /// tombstone). Fails with InvalidArgument when the key is already
  /// live (base or overlay). Takes only the shard's writer mutex; never
  /// rebuilds inline unless sync_compaction is set.
  Status Insert(Key k);

  /// \brief Removes \p k: an overlay key is spliced out of the overlay,
  /// a base-substrate key gains a tombstone. Fails with NotFound when
  /// the key is not live. Same write-path shape as Insert — writer
  /// mutex, COW snapshot publish, epoch retire; the §V deletion /
  /// modification attack streams run through here.
  Status Remove(Key k);

  /// \brief Keys currently across all insert overlays.
  std::int64_t overlay_size() const;

  /// \brief Tombstoned (removed-but-still-in-substrate) keys across all
  /// shards.
  std::int64_t tombstone_size() const;

  /// \brief Overlay-into-base merges performed so far (all shards).
  std::int64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }

  /// \brief Compactions that ran inline on an inserting thread. Always
  /// 0 unless sync_compaction is set — the churn test's "no insert pays
  /// a retrain" proof.
  std::int64_t inline_compactions() const {
    return inline_compactions_.load(std::memory_order_relaxed);
  }

  /// \brief Largest overlay an insert ever copied when publishing its
  /// snapshot — the deterministic bound on per-insert work (stays near
  /// compact_threshold; an inline rebuild would be O(n)).
  std::int64_t max_publish_overlay() const {
    return max_publish_overlay_.load(std::memory_order_relaxed);
  }

  /// \brief The configured per-shard compaction threshold (0 = never).
  std::int64_t compact_threshold() const {
    return options_.compact_threshold;
  }

  /// \brief The *effective* compaction threshold of one shard right
  /// now. Equals compact_threshold() except transiently after a
  /// compaction gave up (every retry failed): each give-up doubles it
  /// (capped at 8x the configured value) and the next successful
  /// compaction restores it. Takes the
  /// shard's writer mutex — test/diagnostic accessor, not a read-path
  /// call.
  std::int64_t shard_threshold(int shard) const;

  /// \brief Successful Remove calls so far (all shards).
  std::int64_t removes() const {
    return removes_.load(std::memory_order_relaxed);
  }

  /// \brief Inserts shed with kResourceExhausted by degraded shards
  /// (all shards, since construction). Telescopes exactly against the
  /// `serving.shed_inserts` telemetry counter and the callers'
  /// per-source shed counts — the chaos harness's accounting identity.
  std::int64_t shed_inserts() const {
    return shed_inserts_.load(std::memory_order_relaxed);
  }

  /// \brief Shards currently in degraded (insert-shedding) mode.
  std::int64_t degraded_shards() const {
    return degraded_shards_.load(std::memory_order_relaxed);
  }

  /// \brief Whether one shard is degraded right now (writer mutex;
  /// test/diagnostic accessor).
  bool shard_degraded(int shard) const;

  /// \brief Current overlay key count of one shard. Lock-free (epoch
  /// guard + snapshot load) — the chaos harness polls it under churn to
  /// assert the overlay_hard_cap bound.
  std::int64_t shard_overlay_size(int shard) const;

  /// \brief Rebuild retries attempted after a compaction failure (all
  /// shards). Each retry slept one jittered backoff first.
  std::int64_t rebuild_retries() const {
    return rebuild_retries_.load(std::memory_order_relaxed);
  }

  /// \brief Compactions abandoned after exhausting every retry (the
  /// threshold-doubling fallback path).
  std::int64_t compaction_giveups() const {
    return compaction_giveups_.load(std::memory_order_relaxed);
  }

  /// \brief The backoff delays (ns) one shard has slept, in draw order.
  /// Deterministic under a fixed BackendOptions::backoff_seed and fault
  /// schedule — the jitter-determinism regression test's probe. Writer
  /// mutex; returns a copy.
  std::vector<std::int64_t> shard_backoff_history_ns(int shard) const;

  /// \brief Nanoseconds since the maintenance heartbeat last advanced,
  /// or 0 when no compaction work is pending. Lock-free.
  std::int64_t MaintenanceStallNanos() const;

  /// \brief True when pending maintenance has not made progress for
  /// longer than BackendOptions::watchdog_stall_ms (and the watchdog is
  /// enabled). Exported as the `serving.maintenance_stalled` gauge; the
  /// QueryDriver's deadline check polls it too.
  bool maintenance_stalled() const;

  /// \brief Schedules a compaction for every degraded shard with no
  /// compaction in flight; returns how many were kicked. The organic
  /// recovery path re-kicks on each shed insert, but a shard whose
  /// traffic stops while degraded (give-up cleared the in-flight flag,
  /// then the stream moved elsewhere) has nothing left to nudge it —
  /// this is the operational drain primitive for that state. Pair with
  /// WaitForMaintenance() and repeat until degraded_shards() == 0.
  std::int64_t KickDegradedShards();

  /// \brief Blocks until every queued background compaction (including
  /// follow-ups triggered by overlays that refilled during a rebuild)
  /// has published. Test/bench quiescence point; no-op in sync mode.
  void WaitForMaintenance();

 private:
  friend Result<std::unique_ptr<SearchBackend>> CreateBackend(
      BackendKind kind, const KeySet& keyset, const BackendOptions& options);

  /// One key-range shard. Snapshot is the read-side contract; the rest
  /// is writer state guarded by write_mu.
  struct Shard {
    std::atomic<const ShardSnapshot*> snapshot{nullptr};
    mutable WriterMutex write_mu;
    std::vector<Key> base_keys;   // Compaction input; threshold > 0 only.
    KeyDomain domain{0, 0};
    // Effective threshold: doubles only after a compaction exhausts its
    // retries (capped at 8x the configured value), restored by the next
    // successful compaction.
    std::int64_t threshold = 0;
    bool compaction_pending = false;
    // Admission control: set when the overlay hits overlay_hard_cap,
    // cleared by a successful compaction that drains it to cap/2.
    bool degraded = false;
    // Private jittered-backoff stream: Rng(backoff_seed).Fork(shard).
    Rng backoff_rng{0};
    // Every backoff slept, in draw order (test probe).
    std::vector<std::int64_t> backoff_history_ns;
  };

  SearchBackend(BackendKind kind, const BackendOptions& options)
      : kind_(kind), options_(options) {}

  Status InitShards(const KeySet& keyset);

  /// Shard index owning \p k (upper_bound over the CDF split keys).
  int RouteShard(Key k) const;

  /// Merges the shard's overlay into its base and retrains, publishing
  /// with one pointer swap. Runs on the maintenance thread (or inline
  /// in sync mode); loops while the overlay refills past the threshold
  /// during the rebuild.
  void CompactShard(Shard* shard, bool inline_call);

  BackendKind kind_;
  BackendOptions options_;
  std::vector<Key> shard_splits_;  // splits_[i] = first key of shard i+1.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Records a maintenance heartbeat (now) — called at every trigger,
  /// pass boundary, and backoff draw so the watchdog only reports a
  /// stall when nothing is advancing.
  void TouchMaintenanceBeat();

  /// Flips compaction_pending for \p shard (under its writer mutex,
  /// which the caller holds) and keeps the watchdog's pending-work
  /// count in sync.
  void SetCompactionPending(Shard* shard, bool pending);

  std::atomic<std::int64_t> compactions_{0};
  std::atomic<std::int64_t> inline_compactions_{0};
  std::atomic<std::int64_t> max_publish_overlay_{0};
  std::atomic<std::int64_t> removes_{0};
  std::atomic<std::int64_t> shed_inserts_{0};
  std::atomic<std::int64_t> degraded_shards_{0};
  std::atomic<std::int64_t> rebuild_retries_{0};
  std::atomic<std::int64_t> compaction_giveups_{0};

  // Watchdog state: shards with compaction work pending, and the last
  // time maintenance demonstrably advanced (steady-clock ns).
  std::atomic<std::int64_t> maintenance_inflight_{0};
  std::atomic<std::int64_t> maintenance_beat_ns_{0};

  // Telemetry instruments (process-lived registry objects; the pointers
  // are cached here so the hot paths skip the registry's name map).
  // Counters ride the lock-free read path — each Add is one relaxed
  // fetch_add on a per-thread cell, so the WriterMutex tripwire stays
  // silent with telemetry hot.
  TelemetryCounter* tl_lookups_ = nullptr;
  TelemetryCounter* tl_scans_ = nullptr;
  TelemetryCounter* tl_publishes_ = nullptr;
  TelemetryCounter* tl_retires_ = nullptr;
  TelemetryCounter* tl_compactions_ = nullptr;
  TelemetryCounter* tl_rebuild_failures_ = nullptr;
  TelemetryCounter* tl_removes_ = nullptr;
  TelemetryCounter* tl_shed_inserts_ = nullptr;
  TelemetryCounter* tl_rebuild_retries_ = nullptr;
  TelemetryCounter* tl_compaction_giveups_ = nullptr;

  // Declared last: destroyed first, draining queued compactions before
  // the shards they reference go away.
  std::unique_ptr<ThreadPool> maintenance_;

  // After maintenance_, so the poll callbacks (which touch shards_ and
  // maintenance_) are unregistered before anything they read dies; the
  // destructor additionally clears them before its explicit
  // maintenance_.reset().
  std::vector<ObservableGauge> observables_;
};

/// \brief Builds a backend of \p kind over \p keyset.
Result<std::unique_ptr<SearchBackend>> CreateBackend(
    BackendKind kind, const KeySet& keyset, const BackendOptions& options);

}  // namespace lispoison

#endif  // LISPOISON_WORKLOAD_SEARCH_BACKEND_H_
