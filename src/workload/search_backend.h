// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// SearchBackend: the uniform serving adapter the QueryDriver drives.
// One adapter per index substrate — RMI (LearnedIndex), B+Tree, binary
// search — each wrapping its static base structure plus a shared
// delta-overlay for inserts (the delta-buffer design of dynamic_index,
// hoisted into the adapter so every backend serves the same read/scan/
// insert contract). Reads and scans are safe to run concurrently;
// inserts serialize on the overlay's shared_mutex.
//
// Every operation reports `work` — probes / comparisons / nodes visited,
// the implementation-independent cost signal of the paper — alongside
// the wall-clock latency the driver measures. Work totals are exactly
// reproducible for read-only streams regardless of thread count, which
// is what the deterministic clean-vs-poisoned tests assert.

#ifndef LISPOISON_WORKLOAD_SEARCH_BACKEND_H_
#define LISPOISON_WORKLOAD_SEARCH_BACKEND_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"
#include "index/rmi.h"

namespace lispoison {

/// \brief Outcome of one serving operation against a backend.
struct BackendOpResult {
  bool found = false;          ///< Reads: key present. Inserts: accepted.
  std::int64_t work = 0;       ///< Probes/comparisons/nodes touched.
  std::int64_t range_count = 0;  ///< Scans: stored keys in the range.
};

/// \brief The index substrates a backend can wrap.
enum class BackendKind {
  kRmi,           ///< LearnedIndex: RMI prediction + last-mile search.
  kBTree,         ///< Bulk-loaded B+Tree.
  kBinarySearch,  ///< Plain binary search (the poisoning-immune control).
};

/// \brief Returns the canonical lowercase name of \p kind.
const char* BackendKindName(BackendKind kind);

/// \brief Options shared by every backend build.
struct BackendOptions {
  RmiOptions rmi;      ///< RMI configuration (kRmi only).
  int btree_fanout = 64;  ///< B+Tree fanout (kBTree only).

  /// Overlay compaction / retrain threshold: when the insert overlay
  /// reaches this many keys, the backend merges it into the base
  /// structure and rebuilds (retrains the RMI, re-bulk-loads the
  /// B+Tree), so long insert-heavy runs do not degrade into overlay
  /// binary search (the dynamic_index delta-merge design). 0 disables
  /// compaction (the pre-PR-5 behaviour and the committed serving
  /// baseline's configuration).
  std::int64_t compact_threshold = 0;
};

/// \brief Abstract serving adapter: static base index + insert overlay.
///
/// Subclasses implement the base-structure primitives; the public
/// operations splice in the overlay so inserted keys are immediately
/// visible to subsequent reads and scans on any backend. With a
/// positive BackendOptions::compact_threshold the overlay is merged
/// into the base structure — and the substrate rebuilt/retrained —
/// whenever it reaches the threshold; reads and scans take the shared
/// lock across base + overlay so a concurrent compaction can never
/// swap the base out from under them.
class SearchBackend {
 public:
  virtual ~SearchBackend() = default;

  /// \brief Backend display name ("rmi", "btree", "binary_search").
  virtual const char* name() const = 0;

  /// \brief Keys in the static base structure (excludes the overlay;
  /// grows when a compaction folds the overlay in). Thread-safe: reads
  /// under the shared lock so a concurrent compaction cannot swap the
  /// substrate mid-walk.
  std::int64_t base_size() const;

  /// \brief Point lookup of \p k across base + overlay. Thread-safe.
  BackendOpResult Lookup(Key k) const;

  /// \brief Counts stored keys in [lo, hi] across base + overlay.
  /// Thread-safe. Returns an empty result when lo > hi.
  BackendOpResult Scan(Key lo, Key hi) const;

  /// \brief Inserts \p k into the overlay. Fails with InvalidArgument
  /// when the key is already present (base or overlay). Thread-safe.
  /// May trigger a compaction (see compactions()).
  Status Insert(Key k);

  /// \brief Keys currently in the insert overlay.
  std::int64_t overlay_size() const;

  /// \brief Overlay-into-base merges performed so far.
  std::int64_t compactions() const;

  /// \brief The configured compaction threshold (0 = never).
  std::int64_t compact_threshold() const { return compact_threshold_; }

  /// \brief Captures the compaction inputs; called once by
  /// CreateBackend after construction.
  void InitCompaction(const KeySet& keyset, std::int64_t threshold);

 protected:
  /// \brief Base-structure point lookup (no overlay).
  virtual BackendOpResult BaseLookup(Key k) const = 0;
  /// \brief Base-structure range count (no overlay).
  virtual BackendOpResult BaseScan(Key lo, Key hi) const = 0;
  /// \brief Key count of the base structure (no overlay, no lock).
  virtual std::int64_t BaseSize() const = 0;
  /// \brief Rebuilds the base structure over \p keyset (the merged
  /// base + overlay keys). Called under the exclusive overlay lock.
  virtual Status RebuildBase(const KeySet& keyset) = 0;

 private:
  mutable std::shared_mutex overlay_mu_;
  std::vector<Key> overlay_;  // Sorted, unique, disjoint from the base.
  std::vector<Key> base_keys_;  // Current base keys (compaction input);
                                // only tracked when compaction is on.
  KeyDomain domain_{0, 0};
  std::int64_t compact_threshold_ = 0;
  std::int64_t compactions_ = 0;
};

/// \brief Builds a backend of \p kind over \p keyset.
Result<std::unique_ptr<SearchBackend>> CreateBackend(
    BackendKind kind, const KeySet& keyset, const BackendOptions& options);

}  // namespace lispoison

#endif  // LISPOISON_WORKLOAD_SEARCH_BACKEND_H_
