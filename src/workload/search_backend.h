// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// SearchBackend: the uniform serving adapter the QueryDriver drives.
// One adapter per index substrate — RMI (LearnedIndex), B+Tree, binary
// search — each wrapping its static base structure plus a shared
// delta-overlay for inserts (the delta-buffer design of dynamic_index,
// hoisted into the adapter so every backend serves the same read/scan/
// insert contract). Reads and scans are safe to run concurrently;
// inserts serialize on the overlay's shared_mutex.
//
// Every operation reports `work` — probes / comparisons / nodes visited,
// the implementation-independent cost signal of the paper — alongside
// the wall-clock latency the driver measures. Work totals are exactly
// reproducible for read-only streams regardless of thread count, which
// is what the deterministic clean-vs-poisoned tests assert.

#ifndef LISPOISON_WORKLOAD_SEARCH_BACKEND_H_
#define LISPOISON_WORKLOAD_SEARCH_BACKEND_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"
#include "index/rmi.h"

namespace lispoison {

/// \brief Outcome of one serving operation against a backend.
struct BackendOpResult {
  bool found = false;          ///< Reads: key present. Inserts: accepted.
  std::int64_t work = 0;       ///< Probes/comparisons/nodes touched.
  std::int64_t range_count = 0;  ///< Scans: stored keys in the range.
};

/// \brief The index substrates a backend can wrap.
enum class BackendKind {
  kRmi,           ///< LearnedIndex: RMI prediction + last-mile search.
  kBTree,         ///< Bulk-loaded B+Tree.
  kBinarySearch,  ///< Plain binary search (the poisoning-immune control).
};

/// \brief Returns the canonical lowercase name of \p kind.
const char* BackendKindName(BackendKind kind);

/// \brief Options shared by every backend build.
struct BackendOptions {
  RmiOptions rmi;      ///< RMI configuration (kRmi only).
  int btree_fanout = 64;  ///< B+Tree fanout (kBTree only).
};

/// \brief Abstract serving adapter: static base index + insert overlay.
///
/// Subclasses implement the base-structure primitives; the public
/// operations splice in the overlay so inserted keys are immediately
/// visible to subsequent reads and scans on any backend.
class SearchBackend {
 public:
  virtual ~SearchBackend() = default;

  /// \brief Backend display name ("rmi", "btree", "binary_search").
  virtual const char* name() const = 0;

  /// \brief Keys in the static base structure (excludes the overlay).
  virtual std::int64_t base_size() const = 0;

  /// \brief Point lookup of \p k across base + overlay. Thread-safe.
  BackendOpResult Lookup(Key k) const;

  /// \brief Counts stored keys in [lo, hi] across base + overlay.
  /// Thread-safe. Returns an empty result when lo > hi.
  BackendOpResult Scan(Key lo, Key hi) const;

  /// \brief Inserts \p k into the overlay. Fails with InvalidArgument
  /// when the key is already present (base or overlay). Thread-safe.
  Status Insert(Key k);

  /// \brief Keys currently in the insert overlay.
  std::int64_t overlay_size() const;

 protected:
  /// \brief Base-structure point lookup (no overlay).
  virtual BackendOpResult BaseLookup(Key k) const = 0;
  /// \brief Base-structure range count (no overlay).
  virtual BackendOpResult BaseScan(Key lo, Key hi) const = 0;

 private:
  mutable std::shared_mutex overlay_mu_;
  std::vector<Key> overlay_;  // Sorted, unique, disjoint from the base.
};

/// \brief Builds a backend of \p kind over \p keyset.
Result<std::unique_ptr<SearchBackend>> CreateBackend(
    BackendKind kind, const KeySet& keyset, const BackendOptions& options);

}  // namespace lispoison

#endif  // LISPOISON_WORKLOAD_SEARCH_BACKEND_H_
