// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// ServingReport: the machine-readable outcome of a serving study — one
// record per (workload, backend, variant) configuration plus
// clean-vs-poisoned comparison rows, serialized as a single JSON
// document. This is where the paper's loss-based attack metric is
// restated in the currency users feel: p50/p95/p99 lookup latency and
// throughput under load.

#ifndef LISPOISON_WORKLOAD_SERVING_REPORT_H_
#define LISPOISON_WORKLOAD_SERVING_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/telemetry.h"
#include "workload/adversary.h"
#include "workload/query_driver.h"

namespace lispoison {

/// \brief One executed serving configuration.
struct ServingConfigResult {
  std::string workload;  ///< WorkloadSpec::name.
  std::string backend;   ///< SearchBackend name.
  std::string variant;   ///< "clean" or "poisoned".
  std::int64_t keys = 0;  ///< Keys served (base index size).
  std::uint64_t seed = 0;
  int num_shards = 1;     ///< Serving shards the backend ran with.
  DriverResult result;
};

/// \brief A full serving study: environment + all configuration runs.
struct ServingReport {
  std::string title = "lispoison serving benchmark";

  /// Environment block (the multi-core trajectory context the ROADMAP
  /// asks every bench JSON to carry).
  std::int64_t hardware_concurrency = 0;
  int num_threads = 1;          ///< Driver setting (0 = hw concurrency).
  std::int64_t ops_per_config = 0;
  double poison_fraction = 0;

  std::vector<ServingConfigResult> configs;

  /// \name Runtime telemetry section (PR 7).
  ///
  /// When the bench runs with telemetry, the report carries the
  /// sampler's interval rows plus the cumulative totals they must sum
  /// to — tools/check_bench_json.py --serving-timeseries gates exactly
  /// that identity (and timestamp monotonicity / delta nonnegativity)
  /// on the committed smoke JSON.
  /// @{
  bool has_telemetry = false;
  std::int64_t telemetry_interval_ms = 0;  ///< 0 = explicit boundaries.
  std::vector<TelemetryIntervalRow> time_series;
  MetricsSnapshot telemetry_totals;        ///< Deltas since sampler start.
  /// @}

  /// \brief The enabled-vs-runtime-off read arm pair proving telemetry
  /// keeps the read path within the overhead budget. `mean work/op` is
  /// deterministic (same stream, same backend), so the committed ratio
  /// is exact; throughput is the wall-clock cross-check.
  struct TelemetryOverhead {
    bool present = false;
    std::string workload;
    std::string backend;
    DriverResult enabled_arm;   ///< Telemetry recording hot.
    DriverResult disabled_arm;  ///< SetEnabled(false): gate-check only.
  };
  TelemetryOverhead telemetry_overhead;

  /// \brief Adds one executed configuration.
  void Add(ServingConfigResult config) {
    configs.push_back(std::move(config));
  }

  /// \brief Serializes the report (environment, per-config metrics, and
  /// poisoned/clean comparison rows for every workload+backend pair with
  /// both variants present) as one JSON document.
  void WriteJson(std::ostream* os) const;

  /// \brief WriteJson to a file path.
  Status WriteJsonFile(const std::string& path) const;
};

/// \brief One thread count of the read-scaling sweep.
struct ScalingRow {
  int threads = 1;
  DriverResult result;
};

/// \brief One insert-heavy arm (async vs sync compaction) of a scaling
/// study, with the compaction counters that prove (or disprove) the
/// "no insert pays a retrain" serving contract.
struct InsertArmResult {
  std::string mode;  ///< "async" or "sync".
  int threads = 1;
  std::int64_t compactions = 0;
  std::int64_t inline_compactions = 0;
  std::int64_t max_publish_overlay = 0;
  DriverResult result;
};

/// \brief A multi-core scaling study: reads/sec and tail latency per
/// driver thread count on the sharded backend, plus the insert arms.
/// Serialized to the committed BENCH_serving_scaling.json that
/// tools/check_bench_json.py --serving-scaling gates in tier-1.
struct ScalingReport {
  std::string title = "lispoison serving scaling";

  std::int64_t hardware_concurrency = 0;
  std::int64_t keys = 0;
  std::int64_t ops = 0;
  int num_shards = 1;
  int read_group = 1;
  std::int64_t compact_threshold = 0;
  std::uint64_t seed = 0;
  std::string read_workload;
  std::string insert_workload;

  std::vector<ScalingRow> read_rows;       ///< Sorted by thread count.
  std::vector<InsertArmResult> insert_arms;

  void WriteJson(std::ostream* os) const;
  Status WriteJsonFile(const std::string& path) const;
};

/// \brief One interval of the poisoning-ROI time series: the attack's
/// per-interval cost (attacker ops executed) against its per-interval
/// payoff (read p99 degradation vs the clean baseline). Derived from
/// the sampler's interval rows, so the attacker-op columns telescope
/// exactly to the adversary.* counter totals — the identity the
/// --adversarial gate checks.
struct AdversarialRoiRow {
  std::int64_t t_start_ns = 0;
  std::int64_t t_end_ns = 0;
  std::int64_t attacker_ops = 0;      ///< adversary op-counter deltas
                                      ///< (inserts+deletes+modifies).
  std::int64_t attacker_ops_cum = 0;  ///< Running total through this row.
  std::int64_t attacker_rejected = 0;
  std::int64_t replans = 0;           ///< Attacker replans this interval.
  std::int64_t compactions = 0;       ///< Victim retrains this interval.
  std::int64_t reads = 0;             ///< Sampled driver reads.
  std::int64_t read_p99_ns = 0;       ///< Interval read p99 (0: no reads).
  double p99_vs_clean = 0;            ///< read_p99 / clean-arm read p99.
  double roi_p99_ns_per_op = 0;       ///< (read_p99 - clean p99) /
                                      ///< max(1, attacker_ops_cum).
};

/// \brief The adversary-in-the-loop study: one clean serving arm for
/// the baseline, one arm where the online attacker races the same
/// driver traffic through the live write path, plus the poisoning-ROI
/// time series. Serialized to the committed BENCH_adversarial.json
/// that tools/check_bench_json.py --adversarial gates in tier-1.
struct AdversarialReport {
  std::string title = "lispoison adversarial serving";

  std::int64_t hardware_concurrency = 0;
  std::int64_t keys = 0;
  std::int64_t ops = 0;  ///< Legitimate driver ops per arm.
  int num_threads = 0;
  int num_shards = 1;
  int read_group = 1;
  std::int64_t compact_threshold = 0;
  bool sync_compaction = false;  ///< Must be false in the committed run.
  std::uint64_t seed = 0;
  std::string workload;

  DriverResult clean_result;
  std::int64_t clean_compactions = 0;

  DriverResult attacked_result;
  std::int64_t attacked_compactions = 0;  ///< During the attack window.
  std::int64_t attacked_inline_compactions = 0;
  std::int64_t attacked_rebuild_failures = 0;

  AdversaryResult adversary;

  /// \brief The degraded-mode arm (--fault-plan=<seed>, ISSUE 10): the
  /// same driver stream and attacker against a backend whose rebuild
  /// path is fault-armed into maintenance collapse, with the overlay
  /// hard cap shedding inserts. The committed counters pin the
  /// overload-resilience contract: reads stay fully available, sheds
  /// telescope exactly across the callers
  /// (backend.shed_inserts == driver.inserts_shed + adversary.shed),
  /// and after the storm is disarmed every shard recovers
  /// (degraded_shards_end == 0).
  struct DegradedArm {
    bool present = false;
    std::uint64_t fault_seed = 0;
    std::int64_t overlay_hard_cap = 0;
    std::int64_t compact_threshold = 0;
    DriverResult result;
    std::int64_t driver_inserts_shed = 0;
    std::int64_t maintenance_deadline_hits = 0;
    AdversaryResult adversary;
    /// Backend counters snapshotted BEFORE the recovery drain (the
    /// drain's own nudge inserts may shed and are nobody's caller).
    std::int64_t shed_inserts = 0;
    std::int64_t rebuild_retries = 0;
    std::int64_t compaction_giveups = 0;
    std::int64_t rebuild_failures = 0;
    std::int64_t compactions = 0;
    /// Degraded shards after the post-storm drain: must be 0.
    std::int64_t degraded_shards_end = 0;
  };
  DegradedArm degraded;

  /// The sampler's rows over the attack window (sampler started at the
  /// attack arm's first op, stopped after quiescence), with the totals
  /// they telescope to.
  std::int64_t telemetry_interval_ms = 0;
  std::vector<TelemetryIntervalRow> time_series;
  MetricsSnapshot telemetry_totals;
  std::vector<AdversarialRoiRow> roi_rows;

  /// \brief Derives roi_rows from time_series against the clean arm's
  /// read p99. Call once after the attack arm completes.
  void BuildRoiRows();

  void WriteJson(std::ostream* os) const;
  Status WriteJsonFile(const std::string& path) const;
};

}  // namespace lispoison

#endif  // LISPOISON_WORKLOAD_SERVING_REPORT_H_
