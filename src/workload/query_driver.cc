#include "workload/query_driver.h"

#include <algorithm>
#include <thread>

#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace lispoison {
namespace {

/// Cached driver instruments (process-lived). Counters are flushed per
/// *batch* (one Add of the batch's tally per op type), so the per-op
/// loop pays nothing for them; the histograms record per group / per
/// sampled op, both off the per-op fast path.
struct DriverTelemetry {
  TelemetryCounter* reads;
  TelemetryCounter* scans;
  TelemetryCounter* inserts;
  TelemetryHistogram* read_group_size;
  TelemetryHistogram* read_latency_ns;

  static const DriverTelemetry& Get() {
    static const DriverTelemetry tl = [] {
      TelemetryRegistry& r = TelemetryRegistry::Global();
      return DriverTelemetry{r.GetCounter("driver.reads"),
                             r.GetCounter("driver.scans"),
                             r.GetCounter("driver.inserts"),
                             r.GetHistogram("driver.read_group_size"),
                             r.GetHistogram("driver.read_latency_ns")};
    }();
    return tl;
  }
};

/// Per-shard accumulator; one per shard, written only by its own task.
struct ShardStats {
  std::int64_t reads = 0;
  std::int64_t scans = 0;
  std::int64_t inserts = 0;
  std::int64_t read_found = 0;
  std::int64_t scanned_keys = 0;
  std::int64_t insert_failures = 0;
  std::int64_t inserts_shed = 0;
  std::int64_t maintenance_deadline_hits = 0;
  std::int64_t total_work = 0;
  std::int64_t max_work = 0;
  LatencyHistogram latency;
  LatencyHistogram read_latency;
  LatencyHistogram scan_latency;
  LatencyHistogram insert_latency;
};

/// Runs \p fn, returning its wall-clock nanos when \p timed — or -1
/// without touching the clock, so measure_latency=false pays zero
/// steady_clock reads (they would be ~10-25% of a lookup's cost).
template <typename Fn>
std::int64_t RunTimed(bool timed, Fn&& fn) {
  if (!timed) {
    fn();
    return -1;
  }
  WallTimer timer;
  fn();
  return timer.ElapsedNanos();
}

void ExecuteOp(SearchBackend* backend, const Operation& op, bool timed,
               ShardStats* s) {
  std::int64_t work = 0;
  switch (op.type) {
    case OpType::kRead: {
      BackendOpResult r;
      const std::int64_t ns =
          RunTimed(timed, [&] { r = backend->Lookup(op.key); });
      s->reads += 1;
      if (r.found) s->read_found += 1;
      work = r.work;
      if (ns >= 0) {
        s->latency.Record(ns);
        s->read_latency.Record(ns);
        DriverTelemetry::Get().read_latency_ns->Record(ns);
      }
      break;
    }
    case OpType::kScan: {
      BackendOpResult r;
      const std::int64_t ns =
          RunTimed(timed, [&] { r = backend->Scan(op.key, op.scan_hi); });
      s->scans += 1;
      s->scanned_keys += r.range_count;
      work = r.work;
      if (ns >= 0) {
        s->latency.Record(ns);
        s->scan_latency.Record(ns);
      }
      break;
    }
    case OpType::kInsert: {
      Status st;
      const std::int64_t ns =
          RunTimed(timed, [&] { st = backend->Insert(op.key); });
      s->inserts += 1;
      if (!st.ok()) {
        s->insert_failures += 1;
        // Degraded-mode sheds are split out from duplicate rejections:
        // the chaos harness's telescoping identity needs the exact
        // kResourceExhausted count.
        if (st.code() == StatusCode::kResourceExhausted) {
          s->inserts_shed += 1;
        }
      }
      // Inserts contribute measured latency but not work: the work
      // model tracks read-path probes, which is what poisoning inflates.
      if (ns >= 0) {
        s->latency.Record(ns);
        s->insert_latency.Record(ns);
      }
      break;
    }
  }
  s->total_work += work;
  if (work > s->max_work) s->max_work = work;
}

/// Dispatches the read run [first, end) of a batch in LookupBatch
/// groups of up to \p read_group keys. Work/found accounting matches
/// per-op ExecuteOp exactly; a group is timed once when any of its ops
/// is latency-sampled, and every sampled op records the group's mean.
void ExecuteReadRun(SearchBackend* backend,
                    const std::vector<Operation>& ops, std::int64_t first,
                    std::int64_t end, int read_group,
                    const DriverOptions& options, ShardStats* s) {
  Key keys[SearchBackend::kMaxLookupBatch];
  BackendOpResult results[SearchBackend::kMaxLookupBatch];
  for (std::int64_t g = first; g < end; g += read_group) {
    const int count = static_cast<int>(
        std::min<std::int64_t>(read_group, end - g));
    bool any_sampled = false;
    for (int i = 0; i < count; ++i) {
      keys[i] = ops[static_cast<std::size_t>(g + i)].key;
      any_sampled = any_sampled ||
                    (g + i) % options.latency_sample_every == 0;
    }
    const bool timed = options.measure_latency && any_sampled;
    const std::int64_t ns = RunTimed(
        timed, [&] { backend->LookupBatch(keys, count, results); });
    const std::int64_t per_op_ns = ns >= 0 ? ns / count : -1;
    DriverTelemetry::Get().read_group_size->Record(count);
    for (int i = 0; i < count; ++i) {
      s->reads += 1;
      if (results[i].found) s->read_found += 1;
      s->total_work += results[i].work;
      if (results[i].work > s->max_work) s->max_work = results[i].work;
      if (per_op_ns >= 0 &&
          (g + i) % options.latency_sample_every == 0) {
        s->latency.Record(per_op_ns);
        s->read_latency.Record(per_op_ns);
        DriverTelemetry::Get().read_latency_ns->Record(per_op_ns);
      }
    }
  }
}

}  // namespace

Result<DriverResult> RunWorkload(SearchBackend* backend,
                                 const std::vector<Operation>& ops,
                                 const DriverOptions& options) {
  if (backend == nullptr) {
    return Status::InvalidArgument("backend must not be null");
  }
  if (options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.latency_sample_every < 1) {
    return Status::InvalidArgument("latency_sample_every must be >= 1");
  }
  if (options.read_group < 1) {
    return Status::InvalidArgument("read_group must be >= 1");
  }
  const int read_group =
      std::min(options.read_group, SearchBackend::kMaxLookupBatch);
  int shards = options.num_threads;
  if (shards <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    shards = hw == 0 ? 1 : static_cast<int>(hw);
  }
  const std::int64_t num_ops = static_cast<std::int64_t>(ops.size());
  const std::int64_t num_batches =
      (num_ops + options.batch_size - 1) / options.batch_size;
  shards = static_cast<int>(
      std::min<std::int64_t>(shards, std::max<std::int64_t>(1, num_batches)));

  std::vector<ShardStats> stats(static_cast<std::size_t>(shards));
  ThreadPool pool(shards);
  TraceSpan run_span(TraceCategory::kDriver, "run_workload", num_ops);
  WallTimer run_timer;
  for (int shard = 0; shard < shards; ++shard) {
    ShardStats* s = &stats[static_cast<std::size_t>(shard)];
    pool.Submit([backend, &ops, &options, num_ops, num_batches, shards, shard,
                 read_group, s] {
      const DriverTelemetry& tl = DriverTelemetry::Get();
      for (std::int64_t b = shard; b < num_batches; b += shards) {
        const std::int64_t first = b * options.batch_size;
        const std::int64_t end =
            std::min(num_ops, first + options.batch_size);
        const std::int64_t reads_before = s->reads;
        const std::int64_t scans_before = s->scans;
        const std::int64_t inserts_before = s->inserts;
        std::int64_t i = first;
        while (i < end) {
          // Grouped dispatch: hand maximal runs of consecutive reads to
          // LookupBatch so their probes' memory latency overlaps.
          if (read_group > 1 &&
              ops[static_cast<std::size_t>(i)].type == OpType::kRead) {
            std::int64_t run_end = i + 1;
            while (run_end < end &&
                   ops[static_cast<std::size_t>(run_end)].type ==
                       OpType::kRead) {
              ++run_end;
            }
            ExecuteReadRun(backend, ops, i, run_end, read_group, options,
                           s);
            i = run_end;
            continue;
          }
          // Batched timing keys off the global op index, so the sampled
          // subset is a pure function of the stream — identical for
          // every shard count.
          const bool timed =
              options.measure_latency &&
              i % options.latency_sample_every == 0;
          ExecuteOp(backend, ops[static_cast<std::size_t>(i)], timed, s);
          ++i;
        }
        // Per-batch counter flush: one Add per op type per batch keeps
        // the interval time-series live without a per-op fetch_add.
        tl.reads->Add(s->reads - reads_before);
        tl.scans->Add(s->scans - scans_before);
        tl.inserts->Add(s->inserts - inserts_before);
        // Deadline check, batch-granular so the per-op loop pays
        // nothing: count every boundary at which pending maintenance
        // has been wedged past the caller's deadline.
        if (options.maintenance_deadline_ms > 0 &&
            backend->MaintenanceStallNanos() >
                options.maintenance_deadline_ms * std::int64_t{1000000}) {
          s->maintenance_deadline_hits += 1;
        }
      }
    });
  }
  pool.Wait();
  const double elapsed = run_timer.ElapsedSeconds();

  DriverResult result;
  result.total_ops = num_ops;
  result.elapsed_seconds = elapsed;
  result.num_threads_used = shards;
  for (const ShardStats& s : stats) {  // Fixed shard order.
    result.reads += s.reads;
    result.scans += s.scans;
    result.inserts += s.inserts;
    result.read_found += s.read_found;
    result.scanned_keys += s.scanned_keys;
    result.insert_failures += s.insert_failures;
    result.inserts_shed += s.inserts_shed;
    result.maintenance_deadline_hits += s.maintenance_deadline_hits;
    result.total_work += s.total_work;
    result.max_work = std::max(result.max_work, s.max_work);
    result.latency.Merge(s.latency);
    result.read_latency.Merge(s.read_latency);
    result.scan_latency.Merge(s.scan_latency);
    result.insert_latency.Merge(s.insert_latency);
  }
  return result;
}

}  // namespace lispoison
