#include "workload/adversary.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_set>
#include <utility>

#include "attack/attack_telemetry.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/telemetry.h"

namespace lispoison {
namespace {

/// Cached process-wide adversary counters: the per-interval attacker-op
/// accounting the poisoning-ROI rows telescope against.
struct AdversaryTelemetry {
  TelemetryCounter* inserts;
  TelemetryCounter* deletes;
  TelemetryCounter* modifies;
  TelemetryCounter* rejected;
  TelemetryCounter* replans;
  TelemetryCounter* shed;
  TelemetryCounter* write_faults;

  static const AdversaryTelemetry& Get() {
    static const AdversaryTelemetry tl = [] {
      TelemetryRegistry& r = TelemetryRegistry::Global();
      return AdversaryTelemetry{r.GetCounter("adversary.inserts"),
                                r.GetCounter("adversary.deletes"),
                                r.GetCounter("adversary.modifies"),
                                r.GetCounter("adversary.rejected"),
                                r.GetCounter("adversary.replans"),
                                r.GetCounter("adversary.shed"),
                                r.GetCounter("adversary.write_faults")};
    }();
    return tl;
  }
};

/// One attacker-side model slice: an incremental landscape over a
/// contiguous run of the attacker's view, plus lazily recomputed argmax
/// candidates (invalidated whenever the model is touched).
struct Model {
  std::unique_ptr<LossLandscape> landscape;
  /// Key range this slice owned at (re)build time. Candidates are
  /// always interior to the slice's tight domain, so the ranges of
  /// adjacent models never overlap and a dirty slice can be
  /// re-extracted from the view by value.
  Key lo = 0;
  Key hi = 0;
  /// Set on every write the attacker commits into this slice; a replan
  /// rebuilds dirty slices only.
  bool dirty = false;
  bool ins_valid = false;
  bool ins_feasible = false;
  LossLandscape::Candidate ins;
  bool rem_valid = false;
  bool rem_feasible = false;
  LossLandscape::Candidate rem;

  void Invalidate() {
    ins_valid = false;
    rem_valid = false;
    dirty = true;
  }
};

class OnlineAdversary {
 public:
  OnlineAdversary(SearchBackend* victim, const KeySet& base,
                  const AdversaryOptions& options)
      : victim_(victim),
        options_(options),
        rng_(options.seed),
        view_(base.keys()) {
    if (options_.model_size < 8) options_.model_size = 8;
    compactions_ = TelemetryRegistry::Global().GetCounter(
        "serving.compactions");
  }

  Result<AdversaryResult> Run() {
    TraceSpan run_span(TraceCategory::kAttack, "adversary_run");
    const auto t0 = std::chrono::steady_clock::now();
    LISPOISON_RETURN_IF_ERROR(BuildModels());
    result_.initial_mean_model_loss = MeanModelLoss();
    compactions_baseline_ = compactions_->Value();

    for (std::int64_t op = 0; op < options_.ops; ++op) {
      result_.ops_planned += 1;
      if (options_.replan_check_every > 0 &&
          op % options_.replan_check_every == 0) {
        LISPOISON_RETURN_IF_ERROR(MaybeReplan());
      }
      const double r = rng_.NextDouble();
      Status s;
      if (r < options_.delete_fraction) {
        s = DoDelete();
      } else if (r < options_.delete_fraction + options_.modify_fraction) {
        s = DoModify();
      } else {
        s = DoInsert();
      }
      if (!s.ok()) return s;
      FlushArgmaxTelemetry();
      if (options_.pace_ns > 0) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(options_.pace_ns));
      }
    }
    // Final poll so a retrain landing near the end is still observed.
    LISPOISON_RETURN_IF_ERROR(MaybeReplan());

    result_.final_mean_model_loss = MeanModelLoss();
    result_.live_poison_keys.assign(poisons_.begin(), poisons_.end());
    std::sort(result_.live_poison_keys.begin(),
              result_.live_poison_keys.end());
    result_.removed_legit_keys.assign(removed_legit_.begin(),
                                      removed_legit_.end());
    std::sort(result_.removed_legit_keys.begin(),
              result_.removed_legit_keys.end());
    result_.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return std::move(result_);
  }

 private:
  /// Repartitions the current view into equal-count model slices (the
  /// shape a freshly trained RMI second stage would give them) and
  /// builds one incremental landscape per slice.
  Status BuildModels() {
    models_.clear();
    const std::int64_t n = static_cast<std::int64_t>(view_.size());
    if (n < 2) {
      return Status::FailedPrecondition(
          "adversary view too small to model");
    }
    std::int64_t num_models = (n + options_.model_size - 1) /
                              options_.model_size;
    if (num_models < 1) num_models = 1;
    models_.reserve(static_cast<std::size_t>(num_models));
    for (std::int64_t m = 0; m < num_models; ++m) {
      const std::int64_t first = m * n / num_models;
      const std::int64_t end = (m + 1) * n / num_models;
      std::vector<Key> slice(view_.begin() + first, view_.begin() + end);
      LISPOISON_ASSIGN_OR_RETURN(
          KeySet part, KeySet::CreateWithTightDomain(std::move(slice)));
      LISPOISON_ASSIGN_OR_RETURN(LossLandscape landscape,
                                 LossLandscape::Create(part));
      Model model;
      model.lo = part.keys().front();
      model.hi = part.keys().back();
      model.landscape =
          std::make_unique<LossLandscape>(std::move(landscape));
      models_.push_back(std::move(model));
    }
    return Status::OK();
  }

  /// Replan after an observed retrain. Clean slices keep their
  /// landscape — the incremental commits already mirror every write the
  /// attacker made, so rebuilding them would reproduce the same object
  /// at O(slice) cost. Dirty slices are re-extracted from the view by
  /// their key range and rebuilt. A dirty slice that drifted out of the
  /// fresh-RMI size envelope forces the full equal-count repartition
  /// the pre-dirty-tracking replan always did.
  Status ReplanModels() {
    if (models_.empty()) return BuildModels();
    const std::int64_t lo_bound =
        std::max<std::int64_t>(2, options_.model_size / 4);
    const std::int64_t hi_bound = options_.model_size * 4;
    for (const Model& m : models_) {
      if (!m.dirty) continue;
      const auto first = std::lower_bound(view_.begin(), view_.end(), m.lo);
      const auto end = std::upper_bound(first, view_.end(), m.hi);
      const std::int64_t cnt = end - first;
      if (cnt < lo_bound || cnt > hi_bound) {
        LISPOISON_RETURN_IF_ERROR(BuildModels());
        result_.models_rebuilt +=
            static_cast<std::int64_t>(models_.size());
        return Status::OK();
      }
    }
    for (Model& m : models_) {
      if (!m.dirty) {
        result_.models_kept += 1;
        continue;
      }
      const auto first = std::lower_bound(view_.begin(), view_.end(), m.lo);
      const auto end = std::upper_bound(first, view_.end(), m.hi);
      std::vector<Key> slice(first, end);
      LISPOISON_ASSIGN_OR_RETURN(
          KeySet part, KeySet::CreateWithTightDomain(std::move(slice)));
      LISPOISON_ASSIGN_OR_RETURN(LossLandscape landscape,
                                 LossLandscape::Create(part));
      m.landscape = std::make_unique<LossLandscape>(std::move(landscape));
      m.lo = part.keys().front();
      m.hi = part.keys().back();
      m.ins_valid = false;
      m.rem_valid = false;
      m.dirty = false;
      result_.models_rebuilt += 1;
    }
    return Status::OK();
  }

  double MeanModelLoss() const {
    if (models_.empty()) return 0;
    long double total = 0;
    for (const auto& m : models_) total += m.landscape->BaseLoss();
    return static_cast<double>(total /
                               static_cast<long double>(models_.size()));
  }

  /// Polls the victim's retrain signal; movement means some shard is
  /// now serving a substrate trained on keys the attacker's landscapes
  /// no longer describe, so the plan is refreshed — dirty slices only.
  Status MaybeReplan() {
    const std::int64_t cur = compactions_->Value();
    if (cur == compactions_baseline_) return Status::OK();
    result_.retrains_observed += cur - compactions_baseline_;
    compactions_baseline_ = cur;
    TraceInstant(TraceCategory::kAttack, "adversary_replan",
                 result_.replans);
    LISPOISON_RETURN_IF_ERROR(ReplanModels());
    result_.replans += 1;
    AdversaryTelemetry::Get().replans->Add(1);
    return Status::OK();
  }

  /// Ensures model \p m's insertion candidate is current.
  void RefreshInsert(Model* m) {
    if (m->ins_valid) return;
    m->ins_valid = true;
    auto c = m->landscape->FindOptimal(options_.interior_only, nullptr,
                                       nullptr, options_.argmax,
                                       &result_.argmax_stats);
    m->ins_feasible = c.ok();
    if (c.ok()) m->ins = *c;
  }

  /// Ensures model \p m's removal candidate is current. Models shrunk
  /// to fewer than four keys stop offering removals (the landscape
  /// needs two survivors and the argmax three keys).
  void RefreshRemoval(Model* m) {
    if (m->rem_valid) return;
    m->rem_valid = true;
    if (m->landscape->size() < 4) {
      m->rem_feasible = false;
      return;
    }
    auto c = m->landscape->FindOptimalRemoval(nullptr, nullptr,
                                              options_.argmax,
                                              &result_.argmax_stats);
    m->rem_feasible = c.ok();
    if (c.ok()) m->rem = *c;
  }

  /// The model whose candidate raises the attacker-view loss most.
  /// Gains compare the candidate's post-op loss against the model's
  /// current loss, so slices of different sizes compete fairly on
  /// loss *increase*, not absolute level.
  Model* BestModel(bool removal) {
    Model* best = nullptr;
    long double best_gain = 0;
    for (auto& m : models_) {
      if (removal) {
        RefreshRemoval(&m);
        if (!m.rem_feasible) continue;
        const long double gain = m.rem.loss - m.landscape->BaseLoss();
        if (best == nullptr || gain > best_gain) {
          best = &m;
          best_gain = gain;
        }
      } else {
        RefreshInsert(&m);
        if (!m.ins_feasible) continue;
        const long double gain = m.ins.loss - m.landscape->BaseLoss();
        if (best == nullptr || gain > best_gain) {
          best = &m;
          best_gain = gain;
        }
      }
    }
    return best;
  }

  void CommitViewInsert(Key k) {
    const auto it = std::lower_bound(view_.begin(), view_.end(), k);
    if (it == view_.end() || *it != k) view_.insert(it, k);
  }

  void CommitViewRemove(Key k) {
    const auto it = std::lower_bound(view_.begin(), view_.end(), k);
    if (it != view_.end() && *it == k) view_.erase(it);
  }

  /// Injected attacker-channel fault (FAULT_POINT("adversary.write")):
  /// the write op is dropped before it reaches the victim, so *nothing*
  /// may be committed — view, landscapes, and oracles keep their pre-op
  /// state (the key's storedness did not change).
  bool WriteChannelFault() {
    if (!FAULT_POINT("adversary.write")) return false;
    result_.write_faults += 1;
    AdversaryTelemetry::Get().write_faults->Add(1);
    return true;
  }

  /// Handles a victim-side degraded-mode shed (kResourceExhausted) of
  /// an attacker insert: the key is NOT stored, so committing it into
  /// the view would desynchronize the attacker's model of the victim.
  /// The landscape and view stay untouched.
  bool ShedByVictim(const Status& s) {
    if (s.code() != StatusCode::kResourceExhausted) return false;
    result_.shed += 1;
    AdversaryTelemetry::Get().shed->Add(1);
    return true;
  }

  /// Executes one poisoning insert through the victim's write path and
  /// commits the outcome into the attacker's bookkeeping. A duplicate
  /// rejection (legitimate traffic raced the attacker to the same gap
  /// key) still commits the key into the view/landscape: it IS stored
  /// now, so the loss surface must reflect it. A degraded-mode shed
  /// commits nothing — the key is not stored.
  bool ExecInsert(Key k, Model* m) {
    if (WriteChannelFault()) return false;
    const Status s = victim_->Insert(k);
    if (ShedByVictim(s)) return false;
    m->Invalidate();
    // Landscape commit regardless of acceptance; an occupied-key error
    // here would mean the view already had it, which the candidate
    // search precludes.
    (void)m->landscape->InsertKey(k);
    CommitViewInsert(k);
    if (s.ok()) {
      poisons_.insert(k);
      removed_legit_.erase(k);  // Resurrection un-deletes a legit key.
      result_.inserts += 1;
      AdversaryTelemetry::Get().inserts->Add(1);
      return true;
    }
    result_.rejected += 1;
    AdversaryTelemetry::Get().rejected->Add(1);
    return false;
  }

  /// Executes one removal; the NotFound arm re-syncs the view when the
  /// stored set disagrees with the attacker's belief. (Removes are
  /// never shed — the hard cap admission-controls overlay growth only.)
  bool ExecRemove(Key k, Model* m) {
    if (WriteChannelFault()) return false;
    const Status s = victim_->Remove(k);
    m->Invalidate();
    (void)m->landscape->RemoveKey(k);
    CommitViewRemove(k);
    if (s.ok()) {
      if (poisons_.erase(k) == 0) removed_legit_.insert(k);
      result_.deletes += 1;
      AdversaryTelemetry::Get().deletes->Add(1);
      return true;
    }
    result_.rejected += 1;
    AdversaryTelemetry::Get().rejected->Add(1);
    return false;
  }

  Status DoInsert() {
    Model* m = BestModel(/*removal=*/false);
    if (m == nullptr) {
      result_.skipped += 1;
      return Status::OK();
    }
    ExecInsert(m->ins.key, m);
    return Status::OK();
  }

  Status DoDelete() {
    Model* m = BestModel(/*removal=*/true);
    if (m == nullptr) {
      result_.skipped += 1;
      return Status::OK();
    }
    ExecRemove(m->rem.key, m);
    return Status::OK();
  }

  /// §V modification: relocate mass by deleting the most damaging
  /// removal target, then inserting at the best gap the (updated)
  /// landscapes offer. Counted as one attack op; issues two write-path
  /// calls. Accounting note: the delete/insert halves are *not* counted
  /// into the adversary.deletes/inserts op counters — adversary.* op
  /// counters partition ops, so the ROI rows' attacker-op accounting
  /// telescopes exactly.
  Status DoModify() {
    Model* rm = BestModel(/*removal=*/true);
    if (rm == nullptr) {
      result_.skipped += 1;
      return Status::OK();
    }
    const Key victim_key = rm->rem.key;
    if (WriteChannelFault()) return Status::OK();  // Op dropped whole.
    const Status s = victim_->Remove(victim_key);
    rm->Invalidate();
    (void)rm->landscape->RemoveKey(victim_key);
    CommitViewRemove(victim_key);
    if (!s.ok()) {
      result_.rejected += 1;
      AdversaryTelemetry::Get().rejected->Add(1);
      return Status::OK();
    }
    if (poisons_.erase(victim_key) == 0) removed_legit_.insert(victim_key);
    Model* im = BestModel(/*removal=*/false);
    bool reinserted = false;
    if (im != nullptr && !WriteChannelFault()) {
      const Key to = im->ins.key;
      const Status is = victim_->Insert(to);
      if (!ShedByVictim(is)) {
        im->Invalidate();
        (void)im->landscape->InsertKey(to);
        CommitViewInsert(to);
        if (is.ok()) {
          poisons_.insert(to);
          removed_legit_.erase(to);
          reinserted = true;
        } else {
          result_.rejected += 1;
          AdversaryTelemetry::Get().rejected->Add(1);
        }
      }
    }
    (void)reinserted;  // A failed re-insert still counts as a modify op:
                       // the removal half landed in the victim.
    result_.modifies += 1;
    AdversaryTelemetry::Get().modifies->Add(1);
    return Status::OK();
  }

  /// Streams planning-work counter movement into the shared attack.*
  /// instruments so the time series profiles the online planner next to
  /// the serving metrics.
  void FlushArgmaxTelemetry() {
    attack_internal::AttackTelemetry::Get().AddDelta(result_.argmax_stats,
                                                     flushed_stats_);
    flushed_stats_ = result_.argmax_stats;
  }

  SearchBackend* victim_;
  AdversaryOptions options_;
  Rng rng_;
  std::vector<Key> view_;  ///< Sorted: keys the attacker believes live.
  std::vector<Model> models_;
  std::unordered_set<Key> poisons_;
  std::unordered_set<Key> removed_legit_;
  TelemetryCounter* compactions_ = nullptr;
  std::int64_t compactions_baseline_ = 0;
  LossLandscape::ArgmaxStats flushed_stats_;
  AdversaryResult result_;
};

}  // namespace

Result<AdversaryResult> RunOnlineAdversary(SearchBackend* victim,
                                           const KeySet& base,
                                           const AdversaryOptions& options) {
  if (victim == nullptr) {
    return Status::InvalidArgument("null victim backend");
  }
  OnlineAdversary adversary(victim, base, options);
  return adversary.Run();
}

}  // namespace lispoison
