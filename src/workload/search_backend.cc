#include "workload/search_backend.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "index/binary_search_index.h"
#include "index/btree.h"
#include "index/learned_index.h"

namespace lispoison {
namespace {

/// Binary search for the first element >= k with comparison accounting
/// (the overlay and scan cost model: one comparison per halving step).
std::pair<std::int64_t, std::int64_t> CountedLowerBound(
    const std::vector<Key>& v, Key k) {
  std::int64_t lo = 0;
  std::int64_t hi = static_cast<std::int64_t>(v.size());
  std::int64_t comparisons = 0;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    comparisons += 1;
    if (v[static_cast<std::size_t>(mid)] < k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lo, comparisons};
}

/// First element > k, same cost model.
std::pair<std::int64_t, std::int64_t> CountedUpperBound(
    const std::vector<Key>& v, Key k) {
  std::int64_t lo = 0;
  std::int64_t hi = static_cast<std::int64_t>(v.size());
  std::int64_t comparisons = 0;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    comparisons += 1;
    if (v[static_cast<std::size_t>(mid)] <= k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lo, comparisons};
}

class RmiBackend : public SearchBackend {
 public:
  explicit RmiBackend(LearnedIndex index) : index_(std::move(index)) {}

  const char* name() const override { return BackendKindName(BackendKind::kRmi); }
  std::int64_t base_size() const override { return index_.size(); }

 protected:
  BackendOpResult BaseLookup(Key k) const override {
    const LookupResult r = index_.Lookup(k);
    BackendOpResult res;
    res.found = r.found;
    res.work = r.probes;
    return res;
  }

  BackendOpResult BaseScan(Key lo, Key hi) const override {
    BackendOpResult res;
    auto r = index_.LookupRange(lo, hi);
    if (!r.ok()) return res;  // lo > hi is screened by the caller.
    res.found = r->count > 0;
    res.work = r->probes;
    res.range_count = r->count;
    return res;
  }

 private:
  LearnedIndex index_;
};

class BTreeBackend : public SearchBackend {
 public:
  explicit BTreeBackend(BPlusTree tree) : tree_(std::move(tree)) {}

  const char* name() const override {
    return BackendKindName(BackendKind::kBTree);
  }
  std::int64_t base_size() const override { return tree_.size(); }

 protected:
  BackendOpResult BaseLookup(Key k) const override {
    const BTreeLookupResult r = tree_.Lookup(k);
    BackendOpResult res;
    res.found = r.found;
    res.work = r.nodes_visited + r.comparisons;
    return res;
  }

  BackendOpResult BaseScan(Key lo, Key hi) const override {
    const BTreeRangeResult r = tree_.RangeCount(lo, hi);
    BackendOpResult res;
    res.found = r.count > 0;
    res.work = r.nodes_visited + r.comparisons;
    res.range_count = r.count;
    return res;
  }

 private:
  BPlusTree tree_;
};

class BinarySearchBackend : public SearchBackend {
 public:
  explicit BinarySearchBackend(const KeySet& keyset) : index_(keyset) {}

  const char* name() const override {
    return BackendKindName(BackendKind::kBinarySearch);
  }
  std::int64_t base_size() const override { return index_.size(); }

 protected:
  BackendOpResult BaseLookup(Key k) const override {
    const BinarySearchResult r = index_.Lookup(k);
    BackendOpResult res;
    res.found = r.found;
    res.work = r.comparisons;
    return res;
  }

  BackendOpResult BaseScan(Key lo, Key hi) const override {
    BackendOpResult res;
    const auto first = CountedLowerBound(index_.keys(), lo);
    const auto end = CountedUpperBound(index_.keys(), hi);
    res.work = first.second + end.second;
    res.range_count = end.first - first.first;
    res.found = res.range_count > 0;
    return res;
  }

 private:
  BinarySearchIndex index_;
};

}  // namespace

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kRmi: return "rmi";
    case BackendKind::kBTree: return "btree";
    case BackendKind::kBinarySearch: return "binary_search";
  }
  return "unknown";
}

BackendOpResult SearchBackend::Lookup(Key k) const {
  BackendOpResult res = BaseLookup(k);
  if (res.found) return res;
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  if (overlay_.empty()) return res;
  const auto b = CountedLowerBound(overlay_, k);
  res.work += b.second;
  res.found = b.first < static_cast<std::int64_t>(overlay_.size()) &&
              overlay_[static_cast<std::size_t>(b.first)] == k;
  return res;
}

BackendOpResult SearchBackend::Scan(Key lo, Key hi) const {
  BackendOpResult res;
  if (lo > hi) return res;
  res = BaseScan(lo, hi);
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  if (overlay_.empty()) return res;
  const auto first = CountedLowerBound(overlay_, lo);
  const auto end = CountedUpperBound(overlay_, hi);
  res.work += first.second + end.second;
  res.range_count += end.first - first.first;
  res.found = res.range_count > 0;
  return res;
}

Status SearchBackend::Insert(Key k) {
  if (BaseLookup(k).found) {
    return Status::InvalidArgument("key already stored in the base index");
  }
  std::unique_lock<std::shared_mutex> lock(overlay_mu_);
  const auto b = CountedLowerBound(overlay_, k);
  const auto it = overlay_.begin() + static_cast<std::ptrdiff_t>(b.first);
  if (it != overlay_.end() && *it == k) {
    return Status::InvalidArgument("key already stored in the overlay");
  }
  overlay_.insert(it, k);
  return Status::OK();
}

std::int64_t SearchBackend::overlay_size() const {
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  return static_cast<std::int64_t>(overlay_.size());
}

Result<std::unique_ptr<SearchBackend>> CreateBackend(
    BackendKind kind, const KeySet& keyset, const BackendOptions& options) {
  switch (kind) {
    case BackendKind::kRmi: {
      LISPOISON_ASSIGN_OR_RETURN(LearnedIndex index,
                                 LearnedIndex::Build(keyset, options.rmi));
      return std::unique_ptr<SearchBackend>(
          new RmiBackend(std::move(index)));
    }
    case BackendKind::kBTree: {
      LISPOISON_ASSIGN_OR_RETURN(BPlusTree tree,
                                 BPlusTree::Build(keyset, options.btree_fanout));
      return std::unique_ptr<SearchBackend>(
          new BTreeBackend(std::move(tree)));
    }
    case BackendKind::kBinarySearch:
      return std::unique_ptr<SearchBackend>(new BinarySearchBackend(keyset));
  }
  return Status::InvalidArgument("unknown backend kind");
}

}  // namespace lispoison
