#include "workload/search_backend.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <thread>
#include <utility>

#include "common/epoch.h"
#include "common/fault.h"
#include "index/binary_search_index.h"
#include "index/btree.h"
#include "index/learned_index.h"

namespace lispoison {
namespace {

/// Binary search for the first element >= k with comparison accounting
/// (the overlay and scan cost model: one comparison per halving step).
std::pair<std::int64_t, std::int64_t> CountedLowerBound(
    const std::vector<Key>& v, Key k) {
  std::int64_t lo = 0;
  std::int64_t hi = static_cast<std::int64_t>(v.size());
  std::int64_t comparisons = 0;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    comparisons += 1;
    if (v[static_cast<std::size_t>(mid)] < k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lo, comparisons};
}

/// First element > k, same cost model.
std::pair<std::int64_t, std::int64_t> CountedUpperBound(
    const std::vector<Key>& v, Key k) {
  std::int64_t lo = 0;
  std::int64_t hi = static_cast<std::int64_t>(v.size());
  std::int64_t comparisons = 0;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    comparisons += 1;
    if (v[static_cast<std::size_t>(mid)] <= k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lo, comparisons};
}

/// Read-path tripwire state for WriterMutex: any depth > 0 means the
/// calling thread is inside Lookup/Scan/LookupBatch.
thread_local int g_read_path_depth = 0;

struct ReadPathScope {
  ReadPathScope() { ++g_read_path_depth; }
  ~ReadPathScope() { --g_read_path_depth; }
};

/// Searches \p snap's overlay for \p k after a base miss, extending
/// \p res with the overlay's comparison work. Shared by the scalar and
/// batched lookup paths so their per-key results stay bit-identical.
void ProbeOverlay(const ShardSnapshot& snap, Key k, BackendOpResult* res) {
  if (snap.overlay.empty()) return;
  const auto b = CountedLowerBound(snap.overlay, k);
  res->work += b.second;
  res->found = b.first < static_cast<std::int64_t>(snap.overlay.size()) &&
               snap.overlay[static_cast<std::size_t>(b.first)] == k;
}

/// Copy of sorted \p v with the element at \p pos spliced out.
std::vector<Key> WithErased(const std::vector<Key>& v, std::size_t pos) {
  std::vector<Key> out;
  out.reserve(v.size() - 1);
  out.insert(out.end(), v.begin(), v.begin() + static_cast<std::ptrdiff_t>(pos));
  out.insert(out.end(), v.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
             v.end());
  return out;
}

/// Copy of sorted \p v with \p k spliced in before \p pos.
std::vector<Key> WithInserted(const std::vector<Key>& v, std::size_t pos,
                              Key k) {
  std::vector<Key> out;
  out.reserve(v.size() + 1);
  out.insert(out.end(), v.begin(), v.begin() + static_cast<std::ptrdiff_t>(pos));
  out.push_back(k);
  out.insert(out.end(), v.begin() + static_cast<std::ptrdiff_t>(pos), v.end());
  return out;
}

/// Steady-clock nanoseconds for the maintenance watchdog heartbeat.
std::int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void WriterMutex::lock() {
  if (g_read_path_depth > 0) {
    std::fprintf(stderr,
                 "lispoison: shard writer mutex acquired inside the "
                 "lock-free read path — serving invariant violated\n");
    std::abort();
  }
  mu_.lock();
}

void WriterMutex::unlock() { mu_.unlock(); }

/// \brief Immutable per-shard index structure. Built once (at backend
/// construction or by an off-thread compaction) and never mutated, so
/// readers probe it without synchronization beyond the snapshot load.
class IndexSubstrate {
 public:
  virtual ~IndexSubstrate() = default;

  /// Base-structure point lookup (no overlay).
  virtual BackendOpResult Lookup(Key k) const = 0;
  /// Base-structure range count (no overlay). Caller screens lo > hi.
  virtual BackendOpResult RangeCount(Key lo, Key hi) const = 0;
  /// Key count.
  virtual std::int64_t size() const = 0;

  /// Batched-dispatch hint: pull the cache lines a Lookup(k) will touch
  /// first. Issued for every key of a batch before any probe runs, so
  /// the memory latency of the batch's probes overlaps.
  virtual void Prefetch(Key k) const { (void)k; }
};

namespace {

class RmiSubstrate : public IndexSubstrate {
 public:
  explicit RmiSubstrate(LearnedIndex index) : index_(std::move(index)) {}

  std::int64_t size() const override { return index_.size(); }

  BackendOpResult Lookup(Key k) const override {
    const LookupResult r = index_.Lookup(k);
    BackendOpResult res;
    res.found = r.found;
    res.work = r.probes;
    return res;
  }

  BackendOpResult RangeCount(Key lo, Key hi) const override {
    BackendOpResult res;
    auto r = index_.LookupRange(lo, hi);
    if (!r.ok()) return res;  // lo > hi is screened by the caller.
    res.found = r->count > 0;
    res.work = r->probes;
    res.range_count = r->count;
    return res;
  }

  void Prefetch(Key k) const override {
    // The last-mile search probes outward from the RMI's prediction;
    // pull the predicted cell's line plus one line to either side (the
    // first exponential steps stay within ±8 slots for a trained key).
    const std::int64_t n = index_.size();
    if (n == 0) return;
    const std::int64_t pos = index_.rmi().PredictPosition(k);
    const Key* data = index_.keys().data();
    __builtin_prefetch(data + pos);
    __builtin_prefetch(data + std::max<std::int64_t>(0, pos - 8));
    __builtin_prefetch(data + std::min<std::int64_t>(n - 1, pos + 8));
  }

 private:
  LearnedIndex index_;
};

class BTreeSubstrate : public IndexSubstrate {
 public:
  explicit BTreeSubstrate(BPlusTree tree) : tree_(std::move(tree)) {}

  std::int64_t size() const override { return tree_.size(); }

  BackendOpResult Lookup(Key k) const override {
    const BTreeLookupResult r = tree_.Lookup(k);
    BackendOpResult res;
    res.found = r.found;
    res.work = r.nodes_visited + r.comparisons;
    return res;
  }

  BackendOpResult RangeCount(Key lo, Key hi) const override {
    const BTreeRangeResult r = tree_.RangeCount(lo, hi);
    BackendOpResult res;
    res.found = r.count > 0;
    res.work = r.nodes_visited + r.comparisons;
    res.range_count = r.count;
    return res;
  }

  // No Prefetch override: the root-to-leaf descent is pointer chasing
  // whose next address is unknown until the previous node resolves.

 private:
  BPlusTree tree_;
};

class BinarySearchSubstrate : public IndexSubstrate {
 public:
  explicit BinarySearchSubstrate(const KeySet& keyset) : index_(keyset) {}

  std::int64_t size() const override { return index_.size(); }

  BackendOpResult Lookup(Key k) const override {
    const BinarySearchResult r = index_.Lookup(k);
    BackendOpResult res;
    res.found = r.found;
    res.work = r.comparisons;
    return res;
  }

  BackendOpResult RangeCount(Key lo, Key hi) const override {
    BackendOpResult res;
    const auto first = CountedLowerBound(index_.keys(), lo);
    const auto end = CountedUpperBound(index_.keys(), hi);
    res.work = first.second + end.second;
    res.range_count = end.first - first.first;
    res.found = res.range_count > 0;
    return res;
  }

  void Prefetch(Key k) const override {
    // The first halving steps visit deterministic positions; their
    // lines are usually resident, so prefetch the first data-dependent
    // depth instead: the midpoints of both level-2 quarters.
    (void)k;
    const std::int64_t n = index_.size();
    if (n == 0) return;
    const Key* data = index_.keys().data();
    __builtin_prefetch(data + n / 4);
    __builtin_prefetch(data + (3 * n) / 4);
  }

 private:
  BinarySearchIndex index_;
};

/// Full snapshot probe: substrate, then tombstone screen on a hit (a
/// tombstoned base key reads as absent — and cannot be in the overlay,
/// which is disjoint), overlay on a miss. The one lookup semantics both
/// the scalar and batched paths share.
BackendOpResult LookupInSnapshot(const ShardSnapshot& snap, Key k) {
  BackendOpResult res = snap.substrate->Lookup(k);
  if (res.found) {
    if (!snap.tombstones.empty()) {
      const auto t = CountedLowerBound(snap.tombstones, k);
      res.work += t.second;
      if (t.first < static_cast<std::int64_t>(snap.tombstones.size()) &&
          snap.tombstones[static_cast<std::size_t>(t.first)] == k) {
        res.found = false;
      }
    }
    return res;
  }
  ProbeOverlay(snap, k, &res);
  return res;
}

Result<std::shared_ptr<const IndexSubstrate>> BuildSubstrate(
    BackendKind kind, const KeySet& keyset, const BackendOptions& options) {
  switch (kind) {
    case BackendKind::kRmi: {
      LISPOISON_ASSIGN_OR_RETURN(LearnedIndex index,
                                 LearnedIndex::Build(keyset, options.rmi));
      return std::shared_ptr<const IndexSubstrate>(
          new RmiSubstrate(std::move(index)));
    }
    case BackendKind::kBTree: {
      LISPOISON_ASSIGN_OR_RETURN(
          BPlusTree tree, BPlusTree::Build(keyset, options.btree_fanout));
      return std::shared_ptr<const IndexSubstrate>(
          new BTreeSubstrate(std::move(tree)));
    }
    case BackendKind::kBinarySearch:
      return std::shared_ptr<const IndexSubstrate>(
          new BinarySearchSubstrate(keyset));
  }
  return Status::InvalidArgument("unknown backend kind");
}

}  // namespace

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kRmi: return "rmi";
    case BackendKind::kBTree: return "btree";
    case BackendKind::kBinarySearch: return "binary_search";
  }
  return "unknown";
}

SearchBackend::~SearchBackend() {
  // Unregister the observable gauges first: their poll callbacks read
  // shards_ and maintenance_, and clearing blocks until any in-flight
  // sampler Snapshot() has finished with them.
  observables_.clear();
  // Drain queued compactions before the shards they reference die.
  maintenance_.reset();
  for (auto& shard : shards_) {
    delete shard->snapshot.load(std::memory_order_acquire);
  }
  // Opportunistically free retired snapshots (they are self-contained,
  // so entries that stay in limbo remain safe regardless).
  EpochDomain::Global().TryReclaim();
}

Status SearchBackend::InitShards(const KeySet& keyset) {
  const std::int64_t n = keyset.size();
  int num_shards = options_.num_shards;
  if (num_shards < 1) num_shards = 1;
  if (num_shards > 64) num_shards = 64;
  if (n > 0 && num_shards > n) num_shards = static_cast<int>(n);

  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    // Equal key-count partitions: boundary ranks from the empirical CDF,
    // so a skewed key distribution still balances keys per shard.
    const std::int64_t first = i * n / num_shards;
    const std::int64_t end = (i + 1) * n / num_shards;
    KeySet part;
    if (num_shards == 1) {
      part = keyset;
    } else {
      LISPOISON_ASSIGN_OR_RETURN(part, keyset.Slice(first, end - first));
      if (i > 0) shard_splits_.push_back(keyset.at(first));
    }
    LISPOISON_ASSIGN_OR_RETURN(std::shared_ptr<const IndexSubstrate> built,
                               BuildSubstrate(kind_, part, options_));
    auto shard = std::make_unique<Shard>();
    auto* snap = new ShardSnapshot();
    snap->substrate = std::move(built);
    shard->snapshot.store(snap, std::memory_order_release);
    shard->domain = keyset.domain();
    shard->threshold = options_.compact_threshold;
    // Per-shard jitter stream: forked so shard i's delay sequence never
    // depends on how often other shards back off.
    shard->backoff_rng =
        Rng(options_.backoff_seed).Fork(static_cast<std::uint64_t>(i));
    // The merged key list is only needed when compaction can trigger.
    if (shard->threshold > 0) shard->base_keys = part.keys();
    shards_.push_back(std::move(shard));
  }

  if (options_.compact_threshold > 0 && !options_.sync_compaction) {
    // One dedicated worker (not inline — rebuilds must leave the
    // inserting thread immediately).
    maintenance_ =
        std::make_unique<ThreadPool>(1, /*inline_when_single=*/false);
  }

  TelemetryRegistry& telemetry = TelemetryRegistry::Global();
  tl_lookups_ = telemetry.GetCounter("serving.lookups");
  tl_scans_ = telemetry.GetCounter("serving.scan_ops");
  tl_publishes_ = telemetry.GetCounter("serving.snapshot_publish");
  tl_retires_ = telemetry.GetCounter("serving.snapshot_retire");
  tl_compactions_ = telemetry.GetCounter("serving.compactions");
  tl_rebuild_failures_ = telemetry.GetCounter("serving.rebuild_failures");
  tl_removes_ = telemetry.GetCounter("serving.removes");
  tl_shed_inserts_ = telemetry.GetCounter("serving.shed_inserts");
  tl_rebuild_retries_ = telemetry.GetCounter("serving.rebuild_retries");
  tl_compaction_giveups_ =
      telemetry.GetCounter("serving.compaction_giveups");
  maintenance_beat_ns_.store(NowNanos(), std::memory_order_relaxed);

  // Poll-at-snapshot levels. Several backends may coexist (the bench
  // matrix builds one per config); same-name observables sum in the
  // snapshot, which is the right semantics for process-wide levels.
  observables_.emplace_back("serving.overlay_keys",
                            [this] { return overlay_size(); });
  observables_.emplace_back("serving.epoch_limbo", [] {
    return EpochDomain::Global().limbo_size();
  });
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    observables_.emplace_back(
        "serving.shard" + std::to_string(i) + ".overlay_keys",
        [this, i]() -> std::int64_t {
          EpochDomain::Guard guard(EpochDomain::Global());
          return static_cast<std::int64_t>(
              shards_[i]->snapshot.load(std::memory_order_acquire)
                  ->overlay.size());
        });
  }
  if (maintenance_ != nullptr) {
    observables_.emplace_back("serving.maintenance_queue_depth", [this] {
      return maintenance_->queue_depth();
    });
  }
  observables_.emplace_back("serving.degraded_shards",
                            [this] { return degraded_shards(); });
  observables_.emplace_back("serving.maintenance_stalled", [this] {
    return maintenance_stalled() ? std::int64_t{1} : std::int64_t{0};
  });
  return Status::OK();
}

void SearchBackend::TouchMaintenanceBeat() {
  maintenance_beat_ns_.store(NowNanos(), std::memory_order_relaxed);
}

void SearchBackend::SetCompactionPending(Shard* shard, bool pending) {
  if (shard->compaction_pending == pending) return;
  shard->compaction_pending = pending;
  if (pending) {
    TouchMaintenanceBeat();
    maintenance_inflight_.fetch_add(1, std::memory_order_relaxed);
  } else {
    maintenance_inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::int64_t SearchBackend::MaintenanceStallNanos() const {
  if (maintenance_inflight_.load(std::memory_order_relaxed) == 0) return 0;
  const std::int64_t gap =
      NowNanos() - maintenance_beat_ns_.load(std::memory_order_relaxed);
  return gap > 0 ? gap : 0;
}

bool SearchBackend::maintenance_stalled() const {
  if (options_.watchdog_stall_ms <= 0) return false;
  return MaintenanceStallNanos() >
         options_.watchdog_stall_ms * std::int64_t{1000000};
}

int SearchBackend::RouteShard(Key k) const {
  if (shard_splits_.empty()) return 0;
  // splits_[i] is the first key of shard i+1, so the owning shard is
  // the number of split keys <= k.
  return static_cast<int>(
      std::upper_bound(shard_splits_.begin(), shard_splits_.end(), k) -
      shard_splits_.begin());
}

BackendOpResult SearchBackend::Lookup(Key k) const {
  // Wait-free read path: epoch guard (one atomic store), snapshot
  // load, probe. The ReadPathScope arms the WriterMutex tripwire that
  // enforces "no mutex on this path" at runtime.
  ReadPathScope read_scope;
  EpochDomain::Guard guard(EpochDomain::Global());
  const Shard& shard = *shards_[static_cast<std::size_t>(RouteShard(k))];
  // Acquire pairs with the writers' release publish (see the contract
  // on ShardSnapshot): the snapshot's contents are fully visible.
  const ShardSnapshot* snap =
      shard.snapshot.load(std::memory_order_acquire);
  tl_lookups_->Add(1);  // Relaxed per-thread cell: stays lock-free.
  return LookupInSnapshot(*snap, k);
}

void SearchBackend::LookupBatch(const Key* keys, int count,
                                BackendOpResult* out) const {
  ReadPathScope read_scope;
  EpochDomain::Guard guard(EpochDomain::Global());
  if (count > 0) tl_lookups_->Add(count);
  const ShardSnapshot* snaps[kMaxLookupBatch];
  int done = 0;
  while (done < count) {
    const int chunk = std::min(count - done, kMaxLookupBatch);
    // Pass 1: route every key, pin its shard snapshot, and issue the
    // software prefetch of its predicted probe window — the batch's
    // memory latency overlaps here.
    for (int i = 0; i < chunk; ++i) {
      const Key k = keys[done + i];
      const Shard& shard =
          *shards_[static_cast<std::size_t>(RouteShard(k))];
      snaps[i] = shard.snapshot.load(std::memory_order_acquire);
      snaps[i]->substrate->Prefetch(k);
    }
    // Pass 2: the probes, bit-identical to scalar Lookup per key.
    for (int i = 0; i < chunk; ++i) {
      out[done + i] = LookupInSnapshot(*snaps[i], keys[done + i]);
    }
    done += chunk;
  }
}

BackendOpResult SearchBackend::Scan(Key lo, Key hi) const {
  BackendOpResult res;
  if (lo > hi) return res;
  ReadPathScope read_scope;
  EpochDomain::Guard guard(EpochDomain::Global());
  tl_scans_->Add(1);
  const int first_shard = RouteShard(lo);
  const int last_shard = RouteShard(hi);
  for (int s = first_shard; s <= last_shard; ++s) {
    const Shard& shard = *shards_[static_cast<std::size_t>(s)];
    const ShardSnapshot* snap =
        shard.snapshot.load(std::memory_order_acquire);
    const BackendOpResult base = snap->substrate->RangeCount(lo, hi);
    res.work += base.work;
    res.range_count += base.range_count;
    if (!snap->overlay.empty()) {
      const auto first = CountedLowerBound(snap->overlay, lo);
      const auto end = CountedUpperBound(snap->overlay, hi);
      res.work += first.second + end.second;
      res.range_count += end.first - first.first;
    }
    if (!snap->tombstones.empty()) {
      // Tombstoned keys are still counted by the substrate's
      // RangeCount; subtract the ones in range.
      const auto first = CountedLowerBound(snap->tombstones, lo);
      const auto end = CountedUpperBound(snap->tombstones, hi);
      res.work += first.second + end.second;
      res.range_count -= end.first - first.first;
    }
  }
  res.found = res.range_count > 0;
  return res;
}

std::int64_t SearchBackend::base_size() const {
  ReadPathScope read_scope;
  EpochDomain::Guard guard(EpochDomain::Global());
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->snapshot.load(std::memory_order_acquire)
                 ->substrate->size();
  }
  return total;
}

std::int64_t SearchBackend::shard_base_size(int shard) const {
  ReadPathScope read_scope;
  EpochDomain::Guard guard(EpochDomain::Global());
  return shards_[static_cast<std::size_t>(shard)]
      ->snapshot.load(std::memory_order_acquire)
      ->substrate->size();
}

std::int64_t SearchBackend::overlay_size() const {
  ReadPathScope read_scope;
  EpochDomain::Guard guard(EpochDomain::Global());
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    total += static_cast<std::int64_t>(
        shard->snapshot.load(std::memory_order_acquire)->overlay.size());
  }
  return total;
}

std::int64_t SearchBackend::tombstone_size() const {
  ReadPathScope read_scope;
  EpochDomain::Guard guard(EpochDomain::Global());
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    total += static_cast<std::int64_t>(
        shard->snapshot.load(std::memory_order_acquire)->tombstones.size());
  }
  return total;
}

std::int64_t SearchBackend::shard_threshold(int shard) const {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::lock_guard<WriterMutex> lock(s.write_mu);
  return s.threshold;
}

bool SearchBackend::shard_degraded(int shard) const {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::lock_guard<WriterMutex> lock(s.write_mu);
  return s.degraded;
}

std::int64_t SearchBackend::shard_overlay_size(int shard) const {
  ReadPathScope read_scope;
  EpochDomain::Guard guard(EpochDomain::Global());
  return static_cast<std::int64_t>(
      shards_[static_cast<std::size_t>(shard)]
          ->snapshot.load(std::memory_order_acquire)
          ->overlay.size());
}

std::vector<std::int64_t> SearchBackend::shard_backoff_history_ns(
    int shard) const {
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::lock_guard<WriterMutex> lock(s.write_mu);
  return s.backoff_history_ns;
}

Status SearchBackend::Insert(Key k) {
  const int shard_index = RouteShard(k);
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  const ShardSnapshot* retired = nullptr;
  bool trigger_compaction = false;
  bool shed = false;
  {
    std::lock_guard<WriterMutex> lock(shard.write_mu);
    // The snapshot pointer is stable under the writer mutex (every
    // publisher holds it), so the duplicate probe is race-free.
    const ShardSnapshot* snap =
        shard.snapshot.load(std::memory_order_acquire);
    auto* fresh = new ShardSnapshot();
    if (snap->substrate->Lookup(k).found) {
      const auto t = CountedLowerBound(snap->tombstones, k);
      const std::size_t tpos = static_cast<std::size_t>(t.first);
      if (tpos >= snap->tombstones.size() || snap->tombstones[tpos] != k) {
        delete fresh;
        return Status::InvalidArgument(
            "key already stored in the base index");
      }
      // Resurrection: the base key was removed earlier; clearing its
      // tombstone makes it live again. The overlay is unchanged (so the
      // hard cap does not apply — resurrections shrink pending work).
      fresh->substrate = snap->substrate;
      fresh->overlay = snap->overlay;
      fresh->tombstones = WithErased(snap->tombstones, tpos);
    } else {
      const auto b = CountedLowerBound(snap->overlay, k);
      const std::size_t pos = static_cast<std::size_t>(b.first);
      if (pos < snap->overlay.size() && snap->overlay[pos] == k) {
        delete fresh;
        return Status::InvalidArgument("key already stored in the overlay");
      }
      if (options_.overlay_hard_cap > 0 &&
          static_cast<std::int64_t>(snap->overlay.size()) >=
              options_.overlay_hard_cap) {
        // Admission control: the overlay is at its hard cap, so this
        // shard sheds brand-new inserts until compaction catches up.
        // Reads stay lock-free and fully available; the rejection is
        // explicit (kResourceExhausted), never silent.
        delete fresh;
        if (!shard.degraded) {
          shard.degraded = true;
          degraded_shards_.fetch_add(1, std::memory_order_relaxed);
          TraceInstant(TraceCategory::kServing, "shard_degraded",
                       shard_index);
        }
        // Still (re)kick maintenance, unconditionally: with every
        // insert shed, nothing else would re-trigger the compaction
        // that un-degrades the shard after a storm of give-ups cleared
        // compaction_pending — and the give-ups may have backed the
        // threshold off *above* the overlay cap, so gating this kick on
        // the threshold would deadlock recovery (capped overlay can
        // never reach the backed-off trigger).
        if (!shard.compaction_pending) {
          SetCompactionPending(&shard, true);
          trigger_compaction = true;
        }
        shed = true;
      } else {
        // Publish a fresh snapshot: same substrate, overlay copied with
        // the key spliced in. O(overlay) — bounded by the compaction
        // threshold plus whatever accumulates during one off-thread
        // rebuild; never a rebuild on this thread.
        fresh->substrate = snap->substrate;
        fresh->overlay = WithInserted(snap->overlay, pos, k);
        fresh->tombstones = snap->tombstones;
      }
    }
    if (!shed) {
      const std::int64_t published =
          static_cast<std::int64_t>(fresh->overlay.size());
      const std::int64_t pending_keys =
          published + static_cast<std::int64_t>(fresh->tombstones.size());
      // Release publish: pairs with the read path's acquire loads (see
      // the ShardSnapshot contract).
      shard.snapshot.store(fresh, std::memory_order_release);
      retired = snap;

      std::int64_t prev =
          max_publish_overlay_.load(std::memory_order_relaxed);
      while (published > prev &&
             !max_publish_overlay_.compare_exchange_weak(
                 prev, published, std::memory_order_relaxed)) {
      }

      if (shard.threshold > 0 && pending_keys >= shard.threshold &&
          !shard.compaction_pending) {
        SetCompactionPending(&shard, true);
        trigger_compaction = true;
      }
    }
  }
  if (!shed) {
    EpochDomain::Global().RetireDelete(retired);
    tl_publishes_->Add(1);
    tl_retires_->Add(1);
  } else {
    shed_inserts_.fetch_add(1, std::memory_order_relaxed);
    tl_shed_inserts_->Add(1);
  }
  if (trigger_compaction) {
    if (options_.sync_compaction || maintenance_ == nullptr) {
      CompactShard(&shard, /*inline_call=*/true);
    } else {
      Shard* target = &shard;
      maintenance_->Submit(
          [this, target] { CompactShard(target, /*inline_call=*/false); });
    }
  }
  if (shed) {
    return Status::ResourceExhausted(
        "insert shed: shard degraded at overlay hard cap");
  }
  return Status::OK();
}

Status SearchBackend::Remove(Key k) {
  Shard& shard = *shards_[static_cast<std::size_t>(RouteShard(k))];
  const ShardSnapshot* retired = nullptr;
  bool trigger_compaction = false;
  {
    std::lock_guard<WriterMutex> lock(shard.write_mu);
    const ShardSnapshot* snap =
        shard.snapshot.load(std::memory_order_acquire);
    auto* fresh = new ShardSnapshot();
    fresh->substrate = snap->substrate;
    const auto b = CountedLowerBound(snap->overlay, k);
    const std::size_t pos = static_cast<std::size_t>(b.first);
    if (pos < snap->overlay.size() && snap->overlay[pos] == k) {
      // Overlay key: splice it out; no tombstone needed.
      fresh->overlay = WithErased(snap->overlay, pos);
      fresh->tombstones = snap->tombstones;
    } else if (snap->substrate->Lookup(k).found) {
      const auto t = CountedLowerBound(snap->tombstones, k);
      const std::size_t tpos = static_cast<std::size_t>(t.first);
      if (tpos < snap->tombstones.size() && snap->tombstones[tpos] == k) {
        delete fresh;
        return Status::NotFound("key already removed");
      }
      // Base-substrate key: mark it dead with a tombstone; the next
      // compaction rebuilds without it.
      fresh->overlay = snap->overlay;
      fresh->tombstones = WithInserted(snap->tombstones, tpos, k);
    } else {
      delete fresh;
      return Status::NotFound("key not stored");
    }
    const std::int64_t pending_keys =
        static_cast<std::int64_t>(fresh->overlay.size()) +
        static_cast<std::int64_t>(fresh->tombstones.size());
    shard.snapshot.store(fresh, std::memory_order_release);
    retired = snap;
    if (shard.threshold > 0 && pending_keys >= shard.threshold &&
        !shard.compaction_pending) {
      SetCompactionPending(&shard, true);
      trigger_compaction = true;
    }
  }
  EpochDomain::Global().RetireDelete(retired);
  removes_.fetch_add(1, std::memory_order_relaxed);
  tl_publishes_->Add(1);
  tl_retires_->Add(1);
  tl_removes_->Add(1);
  if (trigger_compaction) {
    if (options_.sync_compaction || maintenance_ == nullptr) {
      CompactShard(&shard, /*inline_call=*/true);
    } else {
      Shard* target = &shard;
      maintenance_->Submit(
          [this, target] { CompactShard(target, /*inline_call=*/false); });
    }
  }
  return Status::OK();
}

void SearchBackend::CompactShard(Shard* shard, bool inline_call) {
  std::int64_t shard_index = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].get() == shard) shard_index = static_cast<std::int64_t>(i);
  }
  for (bool refill_pass = false;; refill_pass = true) {
    // Cause-labeled span: the first pass was triggered by an insert
    // crossing the threshold; later passes fold the backlog that
    // accumulated during the previous rebuild.
    TraceSpan span(TraceCategory::kServing,
                   refill_pass ? "compact(refill)" : "compact(threshold)",
                   shard_index);
    TouchMaintenanceBeat();
    std::vector<Key> compacted_overlay;
    std::vector<Key> compacted_tombstones;
    std::vector<Key> base;
    KeyDomain domain{0, 0};
    {
      std::lock_guard<WriterMutex> lock(shard->write_mu);
      const ShardSnapshot* snap =
          shard->snapshot.load(std::memory_order_acquire);
      // A degraded shard compacts regardless of the trigger count:
      // give-ups may have backed the threshold off *above* the overlay
      // hard cap, and a capped overlay can never reach that trigger —
      // re-checking it here would turn every recovery kick into a
      // no-op and deadlock the shard in degraded mode.
      if (shard->threshold <= 0 ||
          (!shard->degraded &&
           static_cast<std::int64_t>(snap->overlay.size() +
                                     snap->tombstones.size()) <
               shard->threshold)) {
        SetCompactionPending(shard, false);
        return;
      }
      compacted_overlay = snap->overlay;
      compacted_tombstones = snap->tombstones;
      base = shard->base_keys;
      domain = shard->domain;
    }

    // Expensive part, NO locks held: drop the tombstoned keys from the
    // base key list, merge the overlay in, and retrain/rebuild the
    // substrate. Writes keep landing on the live snapshot meanwhile.
    // The serving domain is the hull of the build domain and everything
    // inserted so far, so the rebuild cannot reject out-of-domain
    // inserts.
    std::vector<Key> alive;
    alive.reserve(base.size());
    std::set_difference(base.begin(), base.end(),
                        compacted_tombstones.begin(),
                        compacted_tombstones.end(),
                        std::back_inserter(alive));
    std::vector<Key> merged;
    merged.reserve(alive.size() + compacted_overlay.size());
    std::merge(alive.begin(), alive.end(), compacted_overlay.begin(),
               compacted_overlay.end(), std::back_inserter(merged));
    if (!merged.empty()) {
      if (merged.front() < domain.lo) domain.lo = merged.front();
      if (merged.back() > domain.hi) domain.hi = merged.back();
    }

    // Bounded-retry rebuild loop: every failed attempt is counted; the
    // retries sleep a jittered exponential backoff first (drawn from
    // the shard's private seeded stream, so a fixed backoff_seed
    // replays the same delays). The consumed overlay/tombstone copies
    // stay valid across retries — the publish algebra below reconciles
    // whatever landed meanwhile, exactly as for a slow clean rebuild.
    std::shared_ptr<const IndexSubstrate> built;
    for (int attempt = 0;; ++attempt) {
      const bool injected_fault = FAULT_POINT("compaction.rebuild");
      if (!injected_fault && !merged.empty()) {
        auto keyset = KeySet::Create(merged, domain);  // Copies; merged kept.
        if (keyset.ok()) {
          auto substrate = BuildSubstrate(kind_, *keyset, options_);
          if (substrate.ok()) built = std::move(*substrate);
        }
      }
      if (built != nullptr) break;
      tl_rebuild_failures_->Add(1);
      TraceInstant(TraceCategory::kServing, "rebuild_failure", shard_index);
      // An empty merge can never build a substrate — retrying is
      // pointless, so it goes straight to the give-up fallback (the
      // pre-retry behaviour).
      if (merged.empty() || attempt >= options_.compaction_max_retries) {
        break;
      }
      std::int64_t delay_ns = 0;
      {
        std::lock_guard<WriterMutex> lock(shard->write_mu);
        std::int64_t exp_us = options_.compaction_backoff_base_us;
        for (int i = 0; i < attempt && exp_us < options_.compaction_backoff_max_us;
             ++i) {
          exp_us *= 2;
        }
        exp_us = std::min(exp_us, options_.compaction_backoff_max_us);
        if (exp_us < 0) exp_us = 0;
        const std::int64_t half = exp_us / 2;
        delay_ns =
            (half + shard->backoff_rng.UniformInt(0, exp_us - half)) * 1000;
        shard->backoff_history_ns.push_back(delay_ns);
      }
      rebuild_retries_.fetch_add(1, std::memory_order_relaxed);
      tl_rebuild_retries_->Add(1);
      TraceInstant(TraceCategory::kServing, "rebuild_retry", shard_index);
      // The backoff itself is progress as far as the watchdog is
      // concerned — a stall means nothing is advancing, not that the
      // policy chose to wait.
      TouchMaintenanceBeat();
      if (delay_ns > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay_ns));
      }
      TouchMaintenanceBeat();
    }

    const ShardSnapshot* retired = nullptr;
    bool refill = false;
    {
      std::lock_guard<WriterMutex> lock(shard->write_mu);
      if (built == nullptr) {
        // Every retry failed: keep serving from the intact overlay and
        // back off the *trigger* so later writes do not re-enter the
        // O(n) merge on every call — doubled, capped at 8x the
        // configured value; the next successful compaction restores
        // it. The shard stays degraded if the cap already tripped.
        const std::int64_t cap = options_.compact_threshold * 8;
        shard->threshold = std::min(shard->threshold * 2, cap);
        SetCompactionPending(shard, false);
        compaction_giveups_.fetch_add(1, std::memory_order_relaxed);
        tl_compaction_giveups_->Add(1);
        TraceInstant(TraceCategory::kServing, "compaction_giveup",
                     shard_index);
        return;
      }
      const ShardSnapshot* cur =
          shard->snapshot.load(std::memory_order_acquire);
      auto* fresh = new ShardSnapshot();
      fresh->substrate = std::move(built);
      // Writes that landed while the rebuild ran survive, in four
      // disjoint sorted pieces relative to what the rebuild consumed:
      //   overlay   = (live overlay \ compacted overlay)       [new inserts]
      //             ∪ (compacted tombstones \ live tombstones) [resurrected
      //               base keys the rebuild dropped]
      //   tombstones= (live tombstones \ compacted tombstones) [new removes
      //               of keys the rebuild kept]
      //             ∪ (compacted overlay \ live overlay)       [removed
      //               overlay keys the rebuild folded in]
      // Every piece is a set_difference, so nothing here can underflow
      // a size computation regardless of which side grew.
      std::vector<Key> new_inserts;
      std::set_difference(cur->overlay.begin(), cur->overlay.end(),
                          compacted_overlay.begin(),
                          compacted_overlay.end(),
                          std::back_inserter(new_inserts));
      std::vector<Key> resurrected;
      std::set_difference(compacted_tombstones.begin(),
                          compacted_tombstones.end(),
                          cur->tombstones.begin(), cur->tombstones.end(),
                          std::back_inserter(resurrected));
      std::vector<Key> new_removes;
      std::set_difference(cur->tombstones.begin(), cur->tombstones.end(),
                          compacted_tombstones.begin(),
                          compacted_tombstones.end(),
                          std::back_inserter(new_removes));
      std::vector<Key> dead_overlay;
      std::set_difference(compacted_overlay.begin(),
                          compacted_overlay.end(), cur->overlay.begin(),
                          cur->overlay.end(),
                          std::back_inserter(dead_overlay));
      // Superset invariant, asserted explicitly: the only way a
      // compacted key can leave the live overlay (or a compacted
      // tombstone can clear) is a Remove/resurrecting-Insert executed
      // during the rebuild. With no removes ever issued, the live
      // overlay must therefore be a superset of the compacted one.
      if (removes_.load(std::memory_order_relaxed) == 0 &&
          (!resurrected.empty() || !dead_overlay.empty())) {
        std::fprintf(stderr,
                     "lispoison: compaction publish invariant violated — "
                     "live overlay lost keys without any Remove\n");
        std::abort();
      }
      fresh->overlay.reserve(new_inserts.size() + resurrected.size());
      std::merge(new_inserts.begin(), new_inserts.end(),
                 resurrected.begin(), resurrected.end(),
                 std::back_inserter(fresh->overlay));
      fresh->tombstones.reserve(new_removes.size() + dead_overlay.size());
      std::merge(new_removes.begin(), new_removes.end(),
                 dead_overlay.begin(), dead_overlay.end(),
                 std::back_inserter(fresh->tombstones));
      // A successful compaction restores the configured cadence after
      // any give-up backoff.
      shard->threshold = options_.compact_threshold;
      refill = static_cast<std::int64_t>(fresh->overlay.size() +
                                         fresh->tombstones.size()) >=
               shard->threshold;
      // Degraded-mode exit with hysteresis: re-admit inserts only once
      // the drained overlay sits at or below half the cap, so a shard
      // hovering at the cap does not flap between modes.
      if (shard->degraded &&
          static_cast<std::int64_t>(fresh->overlay.size()) <=
              options_.overlay_hard_cap / 2) {
        shard->degraded = false;
        degraded_shards_.fetch_sub(1, std::memory_order_relaxed);
        TraceInstant(TraceCategory::kServing, "shard_recovered",
                     shard_index);
      }
      shard->snapshot.store(fresh, std::memory_order_release);
      retired = cur;
      shard->base_keys = std::move(merged);
      shard->domain = domain;
      if (!refill) SetCompactionPending(shard, false);
      TouchMaintenanceBeat();
    }
    compactions_.fetch_add(1, std::memory_order_relaxed);
    if (inline_call) {
      inline_compactions_.fetch_add(1, std::memory_order_relaxed);
    }
    EpochDomain::Global().RetireDelete(retired);
    tl_compactions_->Add(1);
    tl_publishes_->Add(1);
    tl_retires_->Add(1);
    if (!refill) return;
    // The overlay refilled past the threshold during the rebuild: fold
    // the backlog before going idle (compaction_pending stays set, so
    // no duplicate task was queued meanwhile).
  }
}

std::int64_t SearchBackend::KickDegradedShards() {
  std::int64_t kicked = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    bool trigger = false;
    {
      std::lock_guard<WriterMutex> lock(shard.write_mu);
      if (shard.degraded && shard.threshold > 0 &&
          !shard.compaction_pending) {
        SetCompactionPending(&shard, true);
        trigger = true;
      }
    }
    if (!trigger) continue;
    ++kicked;
    if (options_.sync_compaction || maintenance_ == nullptr) {
      CompactShard(&shard, /*inline_call=*/true);
    } else {
      Shard* target = &shard;
      maintenance_->Submit(
          [this, target] { CompactShard(target, /*inline_call=*/false); });
    }
  }
  return kicked;
}

void SearchBackend::WaitForMaintenance() {
  if (maintenance_ == nullptr) return;
  for (;;) {
    maintenance_->Wait();
    bool pending = false;
    for (const auto& shard : shards_) {
      std::lock_guard<WriterMutex> lock(shard->write_mu);
      pending = pending || shard->compaction_pending;
    }
    if (!pending) return;
  }
}

Result<std::unique_ptr<SearchBackend>> CreateBackend(
    BackendKind kind, const KeySet& keyset, const BackendOptions& options) {
  std::unique_ptr<SearchBackend> backend(new SearchBackend(kind, options));
  LISPOISON_RETURN_IF_ERROR(backend->InitShards(keyset));
  return backend;
}

}  // namespace lispoison
