#include "workload/search_backend.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "index/binary_search_index.h"
#include "index/btree.h"
#include "index/learned_index.h"

namespace lispoison {
namespace {

/// Binary search for the first element >= k with comparison accounting
/// (the overlay and scan cost model: one comparison per halving step).
std::pair<std::int64_t, std::int64_t> CountedLowerBound(
    const std::vector<Key>& v, Key k) {
  std::int64_t lo = 0;
  std::int64_t hi = static_cast<std::int64_t>(v.size());
  std::int64_t comparisons = 0;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    comparisons += 1;
    if (v[static_cast<std::size_t>(mid)] < k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lo, comparisons};
}

/// First element > k, same cost model.
std::pair<std::int64_t, std::int64_t> CountedUpperBound(
    const std::vector<Key>& v, Key k) {
  std::int64_t lo = 0;
  std::int64_t hi = static_cast<std::int64_t>(v.size());
  std::int64_t comparisons = 0;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    comparisons += 1;
    if (v[static_cast<std::size_t>(mid)] <= k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lo, comparisons};
}

class RmiBackend : public SearchBackend {
 public:
  RmiBackend(LearnedIndex index, RmiOptions options)
      : index_(std::move(index)), options_(options) {}

  const char* name() const override { return BackendKindName(BackendKind::kRmi); }

 protected:
  std::int64_t BaseSize() const override { return index_.size(); }

  Status RebuildBase(const KeySet& keyset) override {
    LISPOISON_ASSIGN_OR_RETURN(LearnedIndex fresh,
                               LearnedIndex::Build(keyset, options_));
    index_ = std::move(fresh);
    return Status::OK();
  }

  BackendOpResult BaseLookup(Key k) const override {
    const LookupResult r = index_.Lookup(k);
    BackendOpResult res;
    res.found = r.found;
    res.work = r.probes;
    return res;
  }

  BackendOpResult BaseScan(Key lo, Key hi) const override {
    BackendOpResult res;
    auto r = index_.LookupRange(lo, hi);
    if (!r.ok()) return res;  // lo > hi is screened by the caller.
    res.found = r->count > 0;
    res.work = r->probes;
    res.range_count = r->count;
    return res;
  }

 private:
  LearnedIndex index_;
  RmiOptions options_;
};

class BTreeBackend : public SearchBackend {
 public:
  BTreeBackend(BPlusTree tree, int fanout)
      : tree_(std::move(tree)), fanout_(fanout) {}

  const char* name() const override {
    return BackendKindName(BackendKind::kBTree);
  }

 protected:
  std::int64_t BaseSize() const override { return tree_.size(); }

  Status RebuildBase(const KeySet& keyset) override {
    LISPOISON_ASSIGN_OR_RETURN(BPlusTree fresh,
                               BPlusTree::Build(keyset, fanout_));
    tree_ = std::move(fresh);
    return Status::OK();
  }

  BackendOpResult BaseLookup(Key k) const override {
    const BTreeLookupResult r = tree_.Lookup(k);
    BackendOpResult res;
    res.found = r.found;
    res.work = r.nodes_visited + r.comparisons;
    return res;
  }

  BackendOpResult BaseScan(Key lo, Key hi) const override {
    const BTreeRangeResult r = tree_.RangeCount(lo, hi);
    BackendOpResult res;
    res.found = r.count > 0;
    res.work = r.nodes_visited + r.comparisons;
    res.range_count = r.count;
    return res;
  }

 private:
  BPlusTree tree_;
  int fanout_;
};

class BinarySearchBackend : public SearchBackend {
 public:
  explicit BinarySearchBackend(const KeySet& keyset) : index_(keyset) {}

  const char* name() const override {
    return BackendKindName(BackendKind::kBinarySearch);
  }

 protected:
  std::int64_t BaseSize() const override { return index_.size(); }

  Status RebuildBase(const KeySet& keyset) override {
    index_ = BinarySearchIndex(keyset);
    return Status::OK();
  }

  BackendOpResult BaseLookup(Key k) const override {
    const BinarySearchResult r = index_.Lookup(k);
    BackendOpResult res;
    res.found = r.found;
    res.work = r.comparisons;
    return res;
  }

  BackendOpResult BaseScan(Key lo, Key hi) const override {
    BackendOpResult res;
    const auto first = CountedLowerBound(index_.keys(), lo);
    const auto end = CountedUpperBound(index_.keys(), hi);
    res.work = first.second + end.second;
    res.range_count = end.first - first.first;
    res.found = res.range_count > 0;
    return res;
  }

 private:
  BinarySearchIndex index_;
};

}  // namespace

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kRmi: return "rmi";
    case BackendKind::kBTree: return "btree";
    case BackendKind::kBinarySearch: return "binary_search";
  }
  return "unknown";
}

BackendOpResult SearchBackend::Lookup(Key k) const {
  // With compaction enabled, base and overlay are read under one shared
  // lock: a concurrent compaction (which swaps the base structure)
  // holds the exclusive side, so a reader never sees a half-rebuilt
  // base. With compaction off (the default and the committed serving
  // baseline) the base is immutable and keeps its lock-free fast path.
  BackendOpResult res;
  if (compact_threshold_ > 0) {
    std::shared_lock<std::shared_mutex> lock(overlay_mu_);
    res = BaseLookup(k);
    if (res.found || overlay_.empty()) return res;
    const auto b = CountedLowerBound(overlay_, k);
    res.work += b.second;
    res.found = b.first < static_cast<std::int64_t>(overlay_.size()) &&
                overlay_[static_cast<std::size_t>(b.first)] == k;
    return res;
  }
  res = BaseLookup(k);
  if (res.found) return res;
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  if (overlay_.empty()) return res;
  const auto b = CountedLowerBound(overlay_, k);
  res.work += b.second;
  res.found = b.first < static_cast<std::int64_t>(overlay_.size()) &&
              overlay_[static_cast<std::size_t>(b.first)] == k;
  return res;
}

BackendOpResult SearchBackend::Scan(Key lo, Key hi) const {
  BackendOpResult res;
  if (lo > hi) return res;
  if (compact_threshold_ > 0) {
    std::shared_lock<std::shared_mutex> lock(overlay_mu_);
    res = BaseScan(lo, hi);
    if (overlay_.empty()) return res;
    const auto first = CountedLowerBound(overlay_, lo);
    const auto end = CountedUpperBound(overlay_, hi);
    res.work += first.second + end.second;
    res.range_count += end.first - first.first;
    res.found = res.range_count > 0;
    return res;
  }
  res = BaseScan(lo, hi);
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  if (overlay_.empty()) return res;
  const auto first = CountedLowerBound(overlay_, lo);
  const auto end = CountedUpperBound(overlay_, hi);
  res.work += first.second + end.second;
  res.range_count += end.first - first.first;
  res.found = res.range_count > 0;
  return res;
}

std::int64_t SearchBackend::base_size() const {
  if (compact_threshold_ == 0) return BaseSize();  // Base is immutable.
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  return BaseSize();
}

Status SearchBackend::Insert(Key k) {
  // With compaction off the base is immutable, so probe it before
  // taking the writer lock (the pre-compaction fast path); with
  // compaction on the probe must happen under the lock, where the base
  // cannot be swapped mid-walk.
  if (compact_threshold_ == 0 && BaseLookup(k).found) {
    return Status::InvalidArgument("key already stored in the base index");
  }
  std::unique_lock<std::shared_mutex> lock(overlay_mu_);
  if (compact_threshold_ > 0 && BaseLookup(k).found) {
    return Status::InvalidArgument("key already stored in the base index");
  }
  const auto b = CountedLowerBound(overlay_, k);
  const auto it = overlay_.begin() + static_cast<std::ptrdiff_t>(b.first);
  if (it != overlay_.end() && *it == k) {
    return Status::InvalidArgument("key already stored in the overlay");
  }
  overlay_.insert(it, k);

  if (compact_threshold_ > 0 &&
      static_cast<std::int64_t>(overlay_.size()) >= compact_threshold_) {
    // Merge the overlay into the base key list, retrain/rebuild the
    // substrate, and start a fresh overlay. The serving domain is the
    // hull of the build domain and everything inserted so far, so the
    // rebuild cannot reject out-of-domain inserts.
    std::vector<Key> merged;
    merged.reserve(base_keys_.size() + overlay_.size());
    std::merge(base_keys_.begin(), base_keys_.end(), overlay_.begin(),
               overlay_.end(), std::back_inserter(merged));
    KeyDomain domain = domain_;
    if (merged.front() < domain.lo) domain.lo = merged.front();
    if (merged.back() > domain.hi) domain.hi = merged.back();
    auto keyset = KeySet::Create(merged, domain);
    bool rebuilt = false;
    if (keyset.ok()) {
      const Status st = RebuildBase(*keyset);
      if (st.ok()) {
        base_keys_ = std::move(merged);
        domain_ = domain;
        overlay_.clear();
        compactions_ += 1;
        rebuilt = true;
      }
    }
    if (!rebuilt) {
      // A failed rebuild keeps serving from the intact overlay; double
      // the threshold so later inserts do not retry the O(n) merge on
      // every call.
      compact_threshold_ *= 2;
    }
  }
  return Status::OK();
}

std::int64_t SearchBackend::overlay_size() const {
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  return static_cast<std::int64_t>(overlay_.size());
}

std::int64_t SearchBackend::compactions() const {
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  return compactions_;
}

void SearchBackend::InitCompaction(const KeySet& keyset,
                                   std::int64_t threshold) {
  compact_threshold_ = threshold;
  domain_ = keyset.domain();
  // The merged key list is only needed when compaction can trigger.
  if (threshold > 0) base_keys_ = keyset.keys();
}

Result<std::unique_ptr<SearchBackend>> CreateBackend(
    BackendKind kind, const KeySet& keyset, const BackendOptions& options) {
  std::unique_ptr<SearchBackend> backend;
  switch (kind) {
    case BackendKind::kRmi: {
      LISPOISON_ASSIGN_OR_RETURN(LearnedIndex index,
                                 LearnedIndex::Build(keyset, options.rmi));
      backend.reset(new RmiBackend(std::move(index), options.rmi));
      break;
    }
    case BackendKind::kBTree: {
      LISPOISON_ASSIGN_OR_RETURN(BPlusTree tree,
                                 BPlusTree::Build(keyset, options.btree_fanout));
      backend.reset(new BTreeBackend(std::move(tree), options.btree_fanout));
      break;
    }
    case BackendKind::kBinarySearch:
      backend.reset(new BinarySearchBackend(keyset));
      break;
  }
  if (backend == nullptr) {
    return Status::InvalidArgument("unknown backend kind");
  }
  backend->InitCompaction(keyset, options.compact_threshold);
  return backend;
}

}  // namespace lispoison
