#include "workload/serving_report.h"

#include <algorithm>
#include <fstream>

#include "common/json_writer.h"

namespace lispoison {
namespace {

void WriteHistogram(JsonWriter* w, const std::string& key,
                    const LatencyHistogram& h) {
  w->Key(key);
  w->BeginObject();
  w->KV("count", h.count());
  w->KV("mean", h.Mean());
  w->KV("min", h.min());
  w->KV("p50", h.P50());
  w->KV("p95", h.P95());
  w->KV("p99", h.P99());
  w->KV("max", h.max());
  w->EndObject();
}

void WriteConfig(JsonWriter* w, const ServingConfigResult& c) {
  const DriverResult& r = c.result;
  w->BeginObject();
  w->KV("workload", c.workload);
  w->KV("backend", c.backend);
  w->KV("variant", c.variant);
  w->KV("keys", c.keys);
  w->KV("seed", static_cast<std::int64_t>(c.seed));
  w->KV("num_shards", c.num_shards);
  w->KV("num_threads", r.num_threads_used);
  w->KV("total_ops", r.total_ops);
  w->KV("reads", r.reads);
  w->KV("scans", r.scans);
  w->KV("inserts", r.inserts);
  w->KV("read_found", r.read_found);
  w->KV("scanned_keys", r.scanned_keys);
  w->KV("insert_failures", r.insert_failures);
  w->KV("elapsed_seconds", r.elapsed_seconds);
  w->KV("throughput_ops_per_sec", r.ThroughputOpsPerSec());
  w->Key("work");
  w->BeginObject();
  w->KV("total", r.total_work);
  w->KV("mean", r.MeanWork());
  w->KV("max", r.max_work);
  w->EndObject();
  w->Key("latency_ns");
  w->BeginObject();
  WriteHistogram(w, "overall", r.latency);
  if (r.reads > 0) WriteHistogram(w, "read", r.read_latency);
  if (r.scans > 0) WriteHistogram(w, "scan", r.scan_latency);
  if (r.inserts > 0) WriteHistogram(w, "insert", r.insert_latency);
  w->EndObject();
  w->EndObject();
}

double SafeRatio(double num, double den) {
  return den > 0 ? num / den : 0.0;
}

void WriteScalarMap(JsonWriter* w, const std::string& key,
                    const std::vector<MetricsSnapshot::Scalar>& scalars) {
  w->Key(key);
  w->BeginObject();
  for (const auto& s : scalars) w->KV(s.name, s.value);
  w->EndObject();
}

void WriteTimeSeries(JsonWriter* w, std::int64_t interval_ms,
                     const std::vector<TelemetryIntervalRow>& rows,
                     const MetricsSnapshot& totals) {
  w->Key("time_series");
  w->BeginObject();
  w->KV("interval_ms", interval_ms);
  w->Key("rows");
  w->BeginArray();
  for (const TelemetryIntervalRow& row : rows) {
    w->BeginObject();
    w->KV("t_start_ns", row.t_start_ns);
    w->KV("t_end_ns", row.t_end_ns);
    WriteScalarMap(w, "counters", row.counter_deltas);
    WriteScalarMap(w, "gauges", row.gauge_values);
    WriteScalarMap(w, "observables", row.observable_values);
    w->Key("histograms");
    w->BeginObject();
    for (const auto& h : row.histograms) {
      w->Key(h.name);
      w->BeginObject();
      w->KV("count", h.count);
      w->KV("mean", h.histogram.Mean());
      w->KV("p50", h.histogram.P50());
      w->KV("p99", h.histogram.P99());
      w->EndObject();
    }
    w->EndObject();
    w->EndObject();
  }
  w->EndArray();
  // The cumulative deltas the rows must sum to — the gate's identity.
  w->Key("totals");
  w->BeginObject();
  WriteScalarMap(w, "counters", totals.counters);
  w->Key("histogram_counts");
  w->BeginObject();
  for (const auto& h : totals.histograms) {
    w->KV(h.name, h.count);
  }
  w->EndObject();
  w->EndObject();
  w->EndObject();
}

/// Counter delta by name in one interval row (0 when absent).
std::int64_t RowCounter(const TelemetryIntervalRow& row,
                        const std::string& name) {
  for (const auto& s : row.counter_deltas) {
    if (s.name == name) return s.value;
  }
  return 0;
}

void WriteTelemetryOverhead(JsonWriter* w,
                            const ServingReport::TelemetryOverhead& o) {
  w->Key("telemetry_overhead");
  w->BeginObject();
  w->KV("config", "bench_telemetry_overhead");
  w->KV("workload", o.workload);
  w->KV("backend", o.backend);
  w->KV("ops", o.enabled_arm.total_ops);
  const char* arm_names[2] = {"enabled", "runtime_off"};
  const DriverResult* arms[2] = {&o.enabled_arm, &o.disabled_arm};
  for (int i = 0; i < 2; ++i) {
    w->Key(arm_names[i]);
    w->BeginObject();
    w->KV("mean_work", arms[i]->MeanWork());
    w->KV("total_work", arms[i]->total_work);
    w->KV("throughput_ops_per_sec", arms[i]->ThroughputOpsPerSec());
    w->KV("elapsed_seconds", arms[i]->elapsed_seconds);
    w->EndObject();
  }
  // Work/op is the deterministic overhead signal (instruction count on
  // the read path), immune to wall-clock noise on a loaded CI box; the
  // throughput ratio is the sanity cross-check.
  w->KV("mean_work_ratio",
        SafeRatio(o.enabled_arm.MeanWork(), o.disabled_arm.MeanWork()));
  w->KV("throughput_ratio", SafeRatio(o.enabled_arm.ThroughputOpsPerSec(),
                                      o.disabled_arm.ThroughputOpsPerSec()));
  w->EndObject();
}

}  // namespace

void ServingReport::WriteJson(std::ostream* os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("title", title);
  w.Key("environment");
  w.BeginObject();
  w.KV("hardware_concurrency", hardware_concurrency);
  w.KV("num_threads", num_threads);
  w.KV("ops_per_config", ops_per_config);
  w.KV("poison_fraction", poison_fraction);
  w.EndObject();

  w.Key("configs");
  w.BeginArray();
  for (const ServingConfigResult& c : configs) WriteConfig(&w, c);
  w.EndArray();

  // Poisoned/clean ratios: the headline numbers — how much slower the
  // same backend serves the same workload after the attack.
  w.Key("comparisons");
  w.BeginArray();
  for (const ServingConfigResult& clean : configs) {
    if (clean.variant != "clean") continue;
    for (const ServingConfigResult& poisoned : configs) {
      // num_shards must match too: sharded arms share workload+backend
      // names with the single-backend runs and must not cross-pair.
      if (poisoned.variant != "poisoned" ||
          poisoned.workload != clean.workload ||
          poisoned.backend != clean.backend ||
          poisoned.num_shards != clean.num_shards) {
        continue;
      }
      w.BeginObject();
      w.KV("workload", clean.workload);
      w.KV("backend", clean.backend);
      w.KV("num_shards", clean.num_shards);
      w.KV("p50_ratio",
           SafeRatio(static_cast<double>(poisoned.result.latency.P50()),
                     static_cast<double>(clean.result.latency.P50())));
      w.KV("p99_ratio",
           SafeRatio(static_cast<double>(poisoned.result.latency.P99()),
                     static_cast<double>(clean.result.latency.P99())));
      w.KV("throughput_ratio",
           SafeRatio(poisoned.result.ThroughputOpsPerSec(),
                     clean.result.ThroughputOpsPerSec()));
      w.KV("mean_work_ratio",
           SafeRatio(poisoned.result.MeanWork(), clean.result.MeanWork()));
      w.EndObject();
    }
  }
  w.EndArray();

  if (has_telemetry) {
    WriteTimeSeries(&w, telemetry_interval_ms, time_series,
                    telemetry_totals);
  }
  if (telemetry_overhead.present) {
    WriteTelemetryOverhead(&w, telemetry_overhead);
  }
  w.EndObject();
  *os << '\n';
}

Status ServingReport::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  WriteJson(&out);
  out.flush();
  if (!out.good()) {
    return Status::IOError("failed writing serving report to '" + path + "'");
  }
  return Status::OK();
}

void ScalingReport::WriteJson(std::ostream* os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("title", title);
  w.Key("environment");
  w.BeginObject();
  w.KV("hardware_concurrency", hardware_concurrency);
  w.KV("keys", keys);
  w.KV("ops", ops);
  w.KV("num_shards", num_shards);
  w.KV("read_group", read_group);
  w.KV("compact_threshold", compact_threshold);
  w.KV("seed", static_cast<std::int64_t>(seed));
  w.KV("read_workload", read_workload);
  w.KV("insert_workload", insert_workload);
  w.EndObject();

  w.Key("read_scaling");
  w.BeginArray();
  for (const ScalingRow& row : read_rows) {
    const DriverResult& r = row.result;
    w.BeginObject();
    w.KV("threads", row.threads);
    w.KV("total_ops", r.total_ops);
    w.KV("reads", r.reads);
    w.KV("elapsed_seconds", r.elapsed_seconds);
    w.KV("reads_per_sec", r.ThroughputOpsPerSec());
    w.KV("total_work", r.total_work);
    WriteHistogram(&w, "read_latency_ns", r.read_latency);
    w.EndObject();
  }
  w.EndArray();

  w.Key("insert_arms");
  w.BeginArray();
  for (const InsertArmResult& arm : insert_arms) {
    const DriverResult& r = arm.result;
    w.BeginObject();
    w.KV("mode", arm.mode);
    w.KV("threads", arm.threads);
    w.KV("total_ops", r.total_ops);
    w.KV("inserts", r.inserts);
    w.KV("insert_failures", r.insert_failures);
    w.KV("throughput_ops_per_sec", r.ThroughputOpsPerSec());
    w.KV("compactions", arm.compactions);
    w.KV("inline_compactions", arm.inline_compactions);
    w.KV("max_publish_overlay", arm.max_publish_overlay);
    WriteHistogram(&w, "insert_latency_ns", r.insert_latency);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  *os << '\n';
}

Status ScalingReport::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  WriteJson(&out);
  out.flush();
  if (!out.good()) {
    return Status::IOError("failed writing scaling report to '" + path + "'");
  }
  return Status::OK();
}

void AdversarialReport::BuildRoiRows() {
  roi_rows.clear();
  roi_rows.reserve(time_series.size());
  const std::int64_t clean_p99 = clean_result.read_latency.P99();
  std::int64_t cum = 0;
  for (const TelemetryIntervalRow& row : time_series) {
    AdversarialRoiRow r;
    r.t_start_ns = row.t_start_ns;
    r.t_end_ns = row.t_end_ns;
    r.attacker_ops = RowCounter(row, "adversary.inserts") +
                     RowCounter(row, "adversary.deletes") +
                     RowCounter(row, "adversary.modifies");
    cum += r.attacker_ops;
    r.attacker_ops_cum = cum;
    r.attacker_rejected = RowCounter(row, "adversary.rejected");
    r.replans = RowCounter(row, "adversary.replans");
    r.compactions = RowCounter(row, "serving.compactions");
    for (const auto& h : row.histograms) {
      if (h.name == "driver.read_latency_ns") {
        r.reads = h.count;
        if (h.count > 0) r.read_p99_ns = h.histogram.P99();
      }
    }
    if (r.reads > 0 && clean_p99 > 0) {
      r.p99_vs_clean = static_cast<double>(r.read_p99_ns) /
                       static_cast<double>(clean_p99);
      r.roi_p99_ns_per_op =
          static_cast<double>(r.read_p99_ns - clean_p99) /
          static_cast<double>(std::max<std::int64_t>(1, cum));
    }
    roi_rows.push_back(r);
  }
}

namespace {

/// One serving arm of the adversarial study: the driver-result block
/// shared by the clean and attacked sections.
void WriteAdversarialArm(JsonWriter* w, const DriverResult& r) {
  w->KV("num_threads", r.num_threads_used);
  w->KV("total_ops", r.total_ops);
  w->KV("reads", r.reads);
  w->KV("inserts", r.inserts);
  w->KV("insert_failures", r.insert_failures);
  w->KV("elapsed_seconds", r.elapsed_seconds);
  w->KV("throughput_ops_per_sec", r.ThroughputOpsPerSec());
  w->Key("work");
  w->BeginObject();
  w->KV("total", r.total_work);
  w->KV("mean", r.MeanWork());
  w->KV("max", r.max_work);
  w->EndObject();
  w->Key("latency_ns");
  w->BeginObject();
  WriteHistogram(w, "overall", r.latency);
  if (r.reads > 0) WriteHistogram(w, "read", r.read_latency);
  if (r.inserts > 0) WriteHistogram(w, "insert", r.insert_latency);
  w->EndObject();
}

}  // namespace

void AdversarialReport::WriteJson(std::ostream* os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("title", title);
  w.Key("environment");
  w.BeginObject();
  w.KV("hardware_concurrency", hardware_concurrency);
  w.KV("keys", keys);
  w.KV("ops", ops);
  w.KV("num_threads", num_threads);
  w.KV("num_shards", num_shards);
  w.KV("read_group", read_group);
  w.KV("compact_threshold", compact_threshold);
  w.KV("sync_compaction", sync_compaction ? 1 : 0);
  w.KV("seed", static_cast<std::int64_t>(seed));
  w.KV("workload", workload);
  w.EndObject();

  w.Key("clean");
  w.BeginObject();
  WriteAdversarialArm(&w, clean_result);
  w.KV("compactions", clean_compactions);
  w.EndObject();

  w.Key("attacked");
  w.BeginObject();
  WriteAdversarialArm(&w, attacked_result);
  w.KV("compactions", attacked_compactions);
  w.KV("inline_compactions", attacked_inline_compactions);
  w.KV("rebuild_failures", attacked_rebuild_failures);
  w.EndObject();

  w.Key("adversary");
  w.BeginObject();
  w.KV("ops_planned", adversary.ops_planned);
  w.KV("inserts", adversary.inserts);
  w.KV("deletes", adversary.deletes);
  w.KV("modifies", adversary.modifies);
  w.KV("rejected", adversary.rejected);
  w.KV("skipped", adversary.skipped);
  w.KV("shed", adversary.shed);
  w.KV("write_faults", adversary.write_faults);
  w.KV("replans", adversary.replans);
  w.KV("retrains_observed", adversary.retrains_observed);
  w.KV("live_poison_keys",
       static_cast<std::int64_t>(adversary.live_poison_keys.size()));
  w.KV("removed_legit_keys",
       static_cast<std::int64_t>(adversary.removed_legit_keys.size()));
  w.KV("initial_mean_model_loss", adversary.initial_mean_model_loss);
  w.KV("final_mean_model_loss", adversary.final_mean_model_loss);
  w.KV("elapsed_seconds", adversary.elapsed_seconds);
  w.Key("argmax");
  w.BeginObject();
  w.KV("rounds", adversary.argmax_stats.rounds);
  w.KV("exact_evals", adversary.argmax_stats.exact_evals);
  w.KV("bound_evals", adversary.argmax_stats.bound_evals);
  w.KV("pruned_gaps", adversary.argmax_stats.pruned_gaps);
  w.EndObject();
  w.EndObject();

  if (degraded.present) {
    // The overload-resilience arm: the same streams against a backend
    // whose maintenance path is fault-armed into collapse. The gate
    // checks the shed telescoping identity, full recovery, and that
    // reads stayed available.
    w.Key("degraded");
    w.BeginObject();
    w.KV("fault_seed", static_cast<std::int64_t>(degraded.fault_seed));
    w.KV("overlay_hard_cap", degraded.overlay_hard_cap);
    w.KV("compact_threshold", degraded.compact_threshold);
    WriteAdversarialArm(&w, degraded.result);
    w.KV("inserts_shed", degraded.driver_inserts_shed);
    w.KV("maintenance_deadline_hits", degraded.maintenance_deadline_hits);
    w.Key("adversary");
    w.BeginObject();
    w.KV("ops_planned", degraded.adversary.ops_planned);
    w.KV("inserts", degraded.adversary.inserts);
    w.KV("deletes", degraded.adversary.deletes);
    w.KV("modifies", degraded.adversary.modifies);
    w.KV("rejected", degraded.adversary.rejected);
    w.KV("skipped", degraded.adversary.skipped);
    w.KV("shed", degraded.adversary.shed);
    w.KV("write_faults", degraded.adversary.write_faults);
    w.EndObject();
    w.Key("backend");
    w.BeginObject();
    w.KV("shed_inserts", degraded.shed_inserts);
    w.KV("rebuild_retries", degraded.rebuild_retries);
    w.KV("compaction_giveups", degraded.compaction_giveups);
    w.KV("rebuild_failures", degraded.rebuild_failures);
    w.KV("compactions", degraded.compactions);
    w.KV("degraded_shards_end", degraded.degraded_shards_end);
    w.EndObject();
    w.EndObject();
  }

  // The headline: what the attack cost the victim's readers, per
  // attacker op, interval by interval.
  w.Key("roi");
  w.BeginObject();
  w.KV("clean_read_p99_ns", clean_result.read_latency.P99());
  w.KV("attacked_read_p99_ns", attacked_result.read_latency.P99());
  w.KV("p99_ratio",
       SafeRatio(static_cast<double>(attacked_result.read_latency.P99()),
                 static_cast<double>(clean_result.read_latency.P99())));
  w.KV("mean_work_ratio",
       SafeRatio(attacked_result.MeanWork(), clean_result.MeanWork()));
  w.Key("rows");
  w.BeginArray();
  for (const AdversarialRoiRow& r : roi_rows) {
    w.BeginObject();
    w.KV("t_start_ns", r.t_start_ns);
    w.KV("t_end_ns", r.t_end_ns);
    w.KV("attacker_ops", r.attacker_ops);
    w.KV("attacker_ops_cum", r.attacker_ops_cum);
    w.KV("attacker_rejected", r.attacker_rejected);
    w.KV("replans", r.replans);
    w.KV("compactions", r.compactions);
    w.KV("reads", r.reads);
    w.KV("read_p99_ns", r.read_p99_ns);
    w.KV("p99_vs_clean", r.p99_vs_clean);
    w.KV("roi_p99_ns_per_op", r.roi_p99_ns_per_op);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  WriteTimeSeries(&w, telemetry_interval_ms, time_series,
                  telemetry_totals);
  w.EndObject();
  *os << '\n';
}

Status AdversarialReport::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  WriteJson(&out);
  out.flush();
  if (!out.good()) {
    return Status::IOError("failed writing adversarial report to '" + path +
                           "'");
  }
  return Status::OK();
}

}  // namespace lispoison
