// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// QueryDriver: executes a pre-generated operation stream against a
// SearchBackend on the shared common/thread_pool, measuring per-op
// latency into per-shard LatencyHistograms and exact work counters.
//
// Scheduling model: the stream is cut into fixed batches of
// `batch_size` ops; batch i belongs to shard (i % num_shards) and each
// shard replays its batches in order on one pool task. The schedule is a
// pure function of (stream, batch_size, num_shards) — never of timing —
// so each shard's op subsequence, found counts, and (for streams without
// inserts) work totals are bit-reproducible across runs and machines;
// only the measured nanoseconds vary. Shard results merge in fixed shard
// order after Wait().

#ifndef LISPOISON_WORKLOAD_QUERY_DRIVER_H_
#define LISPOISON_WORKLOAD_QUERY_DRIVER_H_

#include <cstdint>
#include <vector>

#include "common/latency_histogram.h"
#include "common/status.h"
#include "workload/search_backend.h"
#include "workload/workload.h"

namespace lispoison {

/// \brief Execution knobs of one driver run.
struct DriverOptions {
  /// Worker shards / pool threads. 0 means hardware_concurrency; 1 runs
  /// inline on the caller.
  int num_threads = 1;

  /// Operations per scheduled batch (shard i owns batches i, i+S, ...).
  std::int64_t batch_size = 1024;

  /// Skip per-op wall-clock timing (histograms stay empty, work/found
  /// accounting still runs). The deterministic tests use this to assert
  /// on the work model without paying 2 clock reads per op.
  bool measure_latency = true;

  /// Batched timing: record latency for every k-th operation of the
  /// stream (by *global* op index, so the sampled subset is independent
  /// of sharding and thread count) instead of all of them. The two
  /// steady_clock reads cost ~2x20-40ns against 150-300ns medians, so
  /// k > 1 trades histogram resolution for measurement fidelity on
  /// high-throughput runs (ROADMAP item). 1 = time every op; sampled
  /// histograms hold ceil(total_ops / k) values drawn uniformly across
  /// the schedule. Must be >= 1.
  std::int64_t latency_sample_every = 1;

  /// Shard-aware batched read dispatch: maximal runs of up to this many
  /// consecutive kRead ops inside a batch go through
  /// SearchBackend::LookupBatch, whose prefetch pass overlaps the memory
  /// latency of the whole group's probes across the RMI error windows.
  /// Per-key found/work results are bit-identical to scalar Lookup;
  /// sampled latencies become the group mean (group wall-clock / group
  /// size). Clamped to SearchBackend::kMaxLookupBatch; must be >= 1.
  /// 1 = scalar dispatch (the pre-PR-6 behaviour).
  int read_group = 1;

  /// Maintenance deadline check: at every batch boundary the shard task
  /// polls SearchBackend::MaintenanceStallNanos(); a stall longer than
  /// this many milliseconds counts one maintenance_deadline_hits. The
  /// driver keeps running — the hit count is the overload signal a
  /// caller (bench arm, chaos harness) alarms on, paired with the
  /// backend watchdog's `serving.maintenance_stalled` gauge. 0 = off.
  std::int64_t maintenance_deadline_ms = 0;
};

/// \brief Aggregated outcome of one driver run.
struct DriverResult {
  std::int64_t total_ops = 0;
  std::int64_t reads = 0;
  std::int64_t scans = 0;
  std::int64_t inserts = 0;

  std::int64_t read_found = 0;       ///< Reads that located their key.
  std::int64_t scanned_keys = 0;     ///< Sum of scan range counts.
  /// Rejected inserts: duplicates *plus* degraded-mode sheds.
  std::int64_t insert_failures = 0;
  /// The kResourceExhausted subset of insert_failures — inserts shed by
  /// a degraded shard's overlay hard cap. Telescopes against the
  /// backend's shed_inserts() in the chaos/bench accounting identities.
  std::int64_t inserts_shed = 0;
  /// Batch boundaries at which the maintenance stall exceeded
  /// DriverOptions::maintenance_deadline_ms (0 when the check is off).
  std::int64_t maintenance_deadline_hits = 0;

  /// Exact work (probes/comparisons/nodes) across all ops; the
  /// implementation-independent latency proxy.
  std::int64_t total_work = 0;
  std::int64_t max_work = 0;

  /// Wall-clock of the whole run (all shards), seconds.
  double elapsed_seconds = 0;

  /// Completed operations per second of wall-clock.
  double ThroughputOpsPerSec() const {
    return elapsed_seconds > 0
               ? static_cast<double>(total_ops) / elapsed_seconds
               : 0.0;
  }

  /// Mean work per operation.
  double MeanWork() const {
    return total_ops > 0
               ? static_cast<double>(total_work) /
                     static_cast<double>(total_ops)
               : 0.0;
  }

  /// Per-op latency in nanoseconds, overall and per op type (merged
  /// across shards in fixed order).
  LatencyHistogram latency;
  LatencyHistogram read_latency;
  LatencyHistogram scan_latency;
  LatencyHistogram insert_latency;

  int num_threads_used = 1;  ///< Shards the run was partitioned into.
};

/// \brief Runs \p ops against \p backend under \p options.
///
/// Fails with InvalidArgument on a null backend or non-positive
/// batch_size. Insert rejections (duplicate keys) are counted, not
/// fatal: under concurrency two streams may race to the same gap key.
Result<DriverResult> RunWorkload(SearchBackend* backend,
                                 const std::vector<Operation>& ops,
                                 const DriverOptions& options);

}  // namespace lispoison

#endif  // LISPOISON_WORKLOAD_QUERY_DRIVER_H_
