// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Synthetic key-distribution generators matching the paper's evaluation:
// uniform (Fig. 5, Fig. 6 rows 1-2), log-normal(0, 2) (Fig. 6 rows 3-4,
// same parameterization as Kraska et al.), truncated normal with
// mu=(a+b)/2, sigma=(b-a)/3 (Fig. 8), plus clustered mixtures used in the
// Section VI discussion experiments.

#ifndef LISPOISON_DATA_GENERATORS_H_
#define LISPOISON_DATA_GENERATORS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Draws \p n unique keys uniformly at random from \p domain.
///
/// Fails with InvalidArgument when n exceeds the domain size. Uses
/// hash-set rejection for sparse sets and complement sampling for dense
/// ones, so both the paper's 20% and 80% density settings are cheap.
Result<KeySet> GenerateUniform(std::int64_t n, KeyDomain domain, Rng* rng);

/// \brief Draws \p n unique keys from a log-normal(mu, sigma) shape
/// stretched over \p domain.
///
/// Values v ~ LogNormal(mu, sigma) are mapped into the domain by scaling
/// so that the quantile `q_hi` of the distribution lands at the domain's
/// upper edge; samples beyond the edge are rejected. With the paper's
/// mu=0, sigma=2 this produces the highly skewed key sets of Fig. 6.
Result<KeySet> GenerateLogNormal(std::int64_t n, KeyDomain domain, Rng* rng,
                                 double mu = 0.0, double sigma = 2.0,
                                 double q_hi = 0.9995);

/// \brief Draws \p n unique keys from a normal distribution truncated to
/// the domain [a, b], with mu=(a+b)/2 and sigma=(b-a)/3 exactly as in the
/// Fig. 8 appendix experiments.
Result<KeySet> GenerateNormal(std::int64_t n, KeyDomain domain, Rng* rng);

/// \brief Parameters of one Gaussian cluster for GenerateClustered,
/// expressed as fractions of the domain width.
struct ClusterSpec {
  double center_frac;  ///< Cluster center as a fraction of the domain.
  double stddev_frac;  ///< Cluster stddev as a fraction of the domain.
  double weight;       ///< Relative sampling weight (need not sum to 1).
};

/// \brief Draws \p n unique keys from a mixture of Gaussian clusters.
/// Used for the "dense clusters far apart" discussion in Section VI and
/// for the OSM latitude surrogate.
Result<KeySet> GenerateClustered(std::int64_t n, KeyDomain domain,
                                 const std::vector<ClusterSpec>& clusters,
                                 Rng* rng);

/// \brief Evenly spaced keys (a perfectly linear CDF); useful in tests as
/// the zero-loss baseline for linear regression.
Result<KeySet> GenerateEvenlySpaced(std::int64_t n, KeyDomain domain);

}  // namespace lispoison

#endif  // LISPOISON_DATA_GENERATORS_H_
