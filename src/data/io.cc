#include "data/io.h"

#include <cstdlib>
#include <fstream>
#include <utility>
#include <vector>

#include "common/snapshot.h"

namespace lispoison {

Status SaveKeys(const KeySet& keyset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# lispoison keyset: n=" << keyset.size()
      << " domain=[" << keyset.domain().lo << "," << keyset.domain().hi
      << "]\n";
  for (Key k : keyset.keys()) out << k << "\n";
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

Result<KeySet> LoadKeys(const std::string& path, KeyDomain domain) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path + " for reading");
  std::vector<Key> keys;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    char* end = nullptr;
    const long long v = std::strtoll(line.c_str(), &end, 10);
    if (end == line.c_str()) {
      return Status::IOError("unparsable line in " + path + ": " + line);
    }
    keys.push_back(static_cast<Key>(v));
  }
  if (domain.hi < domain.lo) {
    return KeySet::CreateWithTightDomain(std::move(keys));
  }
  return KeySet::Create(std::move(keys), domain);
}

namespace {

struct SnapshotDomain {
  std::int64_t lo;
  std::int64_t hi;
};

}  // namespace

Status SaveKeysetSnapshot(const KeySet& keyset, const std::string& path) {
  SnapshotWriter writer;
  const SnapshotDomain dom{keyset.domain().lo, keyset.domain().hi};
  writer.AddPodSection("domain", dom);
  writer.AddVectorSection("keys", keyset.keys());
  return writer.WriteToFile(path);
}

Result<KeySet> LoadKeysetSnapshot(const std::string& path) {
  LISPOISON_ASSIGN_OR_RETURN(SnapshotReader reader,
                             SnapshotReader::Open(path));
  LISPOISON_ASSIGN_OR_RETURN(const SnapshotDomain dom,
                             reader.ReadPod<SnapshotDomain>("domain"));
  LISPOISON_ASSIGN_OR_RETURN(std::vector<Key> keys,
                             reader.ReadVector<Key>("keys"));
  return KeySet::Create(std::move(keys), KeyDomain{dom.lo, dom.hi});
}

std::uint64_t KeysetFingerprint(const KeySet& keyset) {
  const SnapshotDomain dom{keyset.domain().lo, keyset.domain().hi};
  std::uint64_t h = Fnv1a64(&dom, sizeof(dom));
  return Fnv1a64Extend(h, keyset.keys().data(),
                       keyset.keys().size() * sizeof(Key));
}

}  // namespace lispoison
