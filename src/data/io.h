// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Plain-text persistence for keysets so example binaries can exchange
// datasets with external tooling (one key per line, '#' comments allowed).

#ifndef LISPOISON_DATA_IO_H_
#define LISPOISON_DATA_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Writes the keys of \p keyset to \p path, one per line, preceded
/// by a comment header recording the domain.
Status SaveKeys(const KeySet& keyset, const std::string& path);

/// \brief Loads keys from \p path (one integer per line; blank lines and
/// lines starting with '#' ignored) into a KeySet with the given domain.
/// If \p domain is unset (hi < lo), a tight domain is derived.
Result<KeySet> LoadKeys(const std::string& path,
                        KeyDomain domain = KeyDomain{0, -1});

/// \brief Writes \p keyset as a binary snapshot (common/snapshot.h
/// container; sections "domain" and "keys"), atomically. The format is
/// what the n=10M tooling uses: ~13x smaller and ~40x faster to load
/// than the plain-text form, and checksummed.
Status SaveKeysetSnapshot(const KeySet& keyset, const std::string& path);

/// \brief Loads a keyset snapshot written by SaveKeysetSnapshot. The
/// file is mapped read-only and checksum-verified section-by-section;
/// the keys were sorted at save time, so the Create re-validation sort
/// is a linear no-op pass.
Result<KeySet> LoadKeysetSnapshot(const std::string& path);

/// \brief FNV-1a fingerprint of a keyset (domain + keys), used to pair
/// greedy checkpoints with the keyset they were taken against.
std::uint64_t KeysetFingerprint(const KeySet& keyset);

}  // namespace lispoison

#endif  // LISPOISON_DATA_IO_H_
