// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Plain-text persistence for keysets so example binaries can exchange
// datasets with external tooling (one key per line, '#' comments allowed).

#ifndef LISPOISON_DATA_IO_H_
#define LISPOISON_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Writes the keys of \p keyset to \p path, one per line, preceded
/// by a comment header recording the domain.
Status SaveKeys(const KeySet& keyset, const std::string& path);

/// \brief Loads keys from \p path (one integer per line; blank lines and
/// lines starting with '#' ignored) into a KeySet with the given domain.
/// If \p domain is unset (hi < lo), a tight domain is derived.
Result<KeySet> LoadKeys(const std::string& path,
                        KeyDomain domain = KeyDomain{0, -1});

}  // namespace lispoison

#endif  // LISPOISON_DATA_IO_H_
