#include "data/surrogates.h"

#include <cmath>

#include "data/generators.h"

namespace lispoison {

SurrogateSpec MiamiSalariesSpec() {
  SurrogateSpec spec;
  spec.n = 5300;
  spec.domain = KeyDomain{22733, 190034};  // m = 167,302 (paper: 167,301).
  spec.density = 0.0371;
  return spec;
}

SurrogateSpec OsmLatitudesSpec() {
  SurrogateSpec spec;
  spec.n = 302973;
  // Latitudes in [-30, 50] scaled by 15,000 and shifted to start at 0:
  // universe [0, 1.2M], matching the paper's "Key Domain: 1.2M".
  spec.domain = KeyDomain{0, 1200000};
  spec.density = 0.2525;
  return spec;
}

Result<KeySet> MakeMiamiSalariesSurrogate(Rng* rng, std::int64_t n_override) {
  const SurrogateSpec spec = MiamiSalariesSpec();
  const std::int64_t n = n_override > 0 ? n_override : spec.n;
  // Log-normal in dollars: median ~$62k, sigma 0.38 puts ~90% of mass in
  // [$33k, $117k] — the dense bulk visible in the paper's Fig. 7 CDF —
  // with a thin tail reaching the $190k cap.
  const double mu = std::log(62000.0);
  const double sigma = 0.38;
  // Rejection-sample unique integer salaries inside the domain.
  std::vector<Key> keys;
  keys.reserve(static_cast<std::size_t>(n));
  std::vector<bool> seen;  // domain is small (167k), use a bitmap.
  seen.assign(static_cast<std::size_t>(spec.domain.size()), false);
  const std::int64_t max_tries = 500 * (n + 16);
  std::int64_t tries = 0;
  while (static_cast<std::int64_t>(keys.size()) < n) {
    if (++tries > max_tries) {
      return Status::ResourceExhausted(
          "salary surrogate sampling exhausted; lower n_override");
    }
    const double v = rng->LogNormal(mu, sigma);
    const Key k = static_cast<Key>(std::llround(v));
    if (!spec.domain.Contains(k)) continue;
    const std::size_t idx = static_cast<std::size_t>(k - spec.domain.lo);
    if (seen[idx]) continue;
    seen[idx] = true;
    keys.push_back(k);
  }
  return KeySet::Create(std::move(keys), spec.domain);
}

Result<KeySet> MakeOsmLatitudesSurrogate(Rng* rng, std::int64_t n_override) {
  const SurrogateSpec spec = OsmLatitudesSpec();
  const std::int64_t n = n_override > 0 ? n_override : spec.n;
  // Latitude bands (degrees) of school-dense regions within [-30, 50],
  // expressed as fractions of the [-30, 50] => [0, 1.2M] domain:
  //   frac = (lat + 30) / 80.
  auto frac = [](double lat) { return (lat + 30.0) / 80.0; };
  const std::vector<ClusterSpec> bands = {
      {frac(47.0), 5.0 / 80.0, 0.28},   // Western/Central Europe.
      {frac(40.0), 4.0 / 80.0, 0.12},   // Mediterranean / US north.
      {frac(35.0), 5.0 / 80.0, 0.14},   // East Asia / US south.
      {frac(22.0), 6.0 / 80.0, 0.18},   // South Asia.
      {frac(5.0), 8.0 / 80.0, 0.12},    // Equatorial Africa / SE Asia.
      {frac(-12.0), 8.0 / 80.0, 0.10},  // Brazil / southern Africa.
      {frac(-27.0), 4.0 / 80.0, 0.06},  // Argentina / South Africa / Aus.
  };
  return GenerateClustered(n, spec.domain, bands, rng);
}

}  // namespace lispoison
