// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// KeySet: the fundamental data object of the paper — a set of unique,
// non-negative integer keys drawn from a finite key universe ("key
// domain"), totally ordered, where each key's rank (1-based position in
// sorted order) is the regression target of the learned index.

#ifndef LISPOISON_DATA_KEYSET_H_
#define LISPOISON_DATA_KEYSET_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace lispoison {

/// \brief The key universe K = [lo, hi], an inclusive integer interval.
/// The paper denotes its size by m = |K|.
struct KeyDomain {
  Key lo = 0;
  Key hi = 0;

  /// \brief Number of representable keys m = hi - lo + 1.
  Key size() const { return hi - lo + 1; }

  /// \brief True iff k lies inside the universe.
  bool Contains(Key k) const { return k >= lo && k <= hi; }
};

/// \brief A sorted set of unique keys from a KeyDomain.
///
/// Invariants (established by Create, preserved thereafter):
///  - keys are strictly increasing (unique, sorted);
///  - every key lies inside the domain.
///
/// The rank of keys()[i] is i+1, matching the paper's non-normalized CDF
/// where the Y-axis is the rank in [1, n].
class KeySet {
 public:
  KeySet() = default;

  /// \brief Builds a KeySet from arbitrary-order keys.
  ///
  /// Sorts the input and fails with InvalidArgument on duplicates or
  /// out-of-domain keys.
  static Result<KeySet> Create(std::vector<Key> keys, KeyDomain domain);

  /// \brief Builds a KeySet whose domain is exactly [min_key, max_key].
  static Result<KeySet> CreateWithTightDomain(std::vector<Key> keys);

  /// \brief The sorted unique keys.
  const std::vector<Key>& keys() const { return keys_; }

  /// \brief Number of keys n.
  std::int64_t size() const { return static_cast<std::int64_t>(keys_.size()); }

  /// \brief True iff the set is empty.
  bool empty() const { return keys_.empty(); }

  /// \brief The key universe.
  const KeyDomain& domain() const { return domain_; }

  /// \brief Key density n/m in (0, 1].
  double density() const {
    return domain_.size() == 0
               ? 0.0
               : static_cast<double>(size()) /
                     static_cast<double>(domain_.size());
  }

  /// \brief 1-based rank of \p k if present; NotFound otherwise.
  Result<Rank> RankOf(Key k) const;

  /// \brief Number of stored keys strictly less than \p k (0-based
  /// insertion position). This is the rank, minus one, that \p k would
  /// receive if inserted.
  Rank CountLess(Key k) const;

  /// \brief True iff \p k is stored.
  bool Contains(Key k) const;

  /// \brief The i-th smallest key (0-based). Requires 0 <= i < size().
  Key at(std::int64_t i) const { return keys_[static_cast<std::size_t>(i)]; }

  /// \brief Returns a new KeySet containing this set plus \p extra keys
  /// (which must be disjoint from the current keys and in-domain).
  Result<KeySet> Union(const std::vector<Key>& extra) const;

  /// \brief Returns the contiguous slice [first, first+count) as a KeySet
  /// with this set's domain. Used to form RMI second-stage partitions.
  Result<KeySet> Slice(std::int64_t first, std::int64_t count) const;

 private:
  std::vector<Key> keys_;
  KeyDomain domain_;
};

}  // namespace lispoison

#endif  // LISPOISON_DATA_KEYSET_H_
