#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

namespace lispoison {
namespace {

Status ValidateRequest(std::int64_t n, const KeyDomain& domain) {
  if (n < 0) return Status::InvalidArgument("negative key count");
  if (domain.hi < domain.lo) {
    return Status::InvalidArgument("key domain is empty (hi < lo)");
  }
  if (n > domain.size()) {
    return Status::InvalidArgument(
        "cannot draw " + std::to_string(n) + " unique keys from a domain of " +
        std::to_string(domain.size()) + " values");
  }
  return Status::OK();
}

// Draws `n` distinct keys by repeated sampling from `draw()` (which must
// return in-domain keys) until n unique values are collected. `max_tries`
// guards against distributions too narrow for the requested uniqueness.
template <typename DrawFn>
Result<KeySet> RejectionSampleUnique(std::int64_t n, KeyDomain domain,
                                     DrawFn draw) {
  std::unordered_set<Key> seen;
  seen.reserve(static_cast<std::size_t>(n) * 2);
  std::vector<Key> keys;
  keys.reserve(static_cast<std::size_t>(n));
  const std::int64_t max_tries = 200 * (n + 16);
  std::int64_t tries = 0;
  while (static_cast<std::int64_t>(keys.size()) < n) {
    if (++tries > max_tries) {
      return Status::ResourceExhausted(
          "rejection sampling failed to find " + std::to_string(n) +
          " unique keys after " + std::to_string(tries) + " draws");
    }
    Key k = draw();
    if (!domain.Contains(k)) continue;
    if (seen.insert(k).second) keys.push_back(k);
  }
  return KeySet::Create(std::move(keys), domain);
}

}  // namespace

Result<KeySet> GenerateUniform(std::int64_t n, KeyDomain domain, Rng* rng) {
  LISPOISON_RETURN_IF_ERROR(ValidateRequest(n, domain));
  const Key m = domain.size();
  // Dense request: materialize the whole domain and knock out m-n keys.
  // Only triggered for small domains (the paper's dense settings have
  // m <= ~10^5), so the O(m) cost is fine and avoids rejection stalls.
  if (n > m / 2) {
    std::vector<Key> all;
    all.reserve(static_cast<std::size_t>(m));
    for (Key k = domain.lo; k <= domain.hi; ++k) all.push_back(k);
    // Partial Fisher-Yates: move n chosen keys to the front.
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t j = rng->UniformInt(i, m - 1);
      std::swap(all[static_cast<std::size_t>(i)],
                all[static_cast<std::size_t>(j)]);
    }
    all.resize(static_cast<std::size_t>(n));
    return KeySet::Create(std::move(all), domain);
  }
  return RejectionSampleUnique(n, domain, [&] {
    return rng->UniformInt(domain.lo, domain.hi);
  });
}

Result<KeySet> GenerateLogNormal(std::int64_t n, KeyDomain domain, Rng* rng,
                                 double mu, double sigma, double q_hi) {
  LISPOISON_RETURN_IF_ERROR(ValidateRequest(n, domain));
  if (sigma <= 0) return Status::InvalidArgument("sigma must be positive");
  if (q_hi <= 0.5 || q_hi >= 1.0) {
    return Status::InvalidArgument("q_hi must lie in (0.5, 1)");
  }
  // Map the q_hi quantile of LogNormal(mu, sigma) to the top of the domain.
  // Phi^{-1}(q_hi) via Acklam-style approximation is overkill; for the fixed
  // default q_hi=0.9995 the standard-normal quantile is ~3.2905. Compute it
  // generically with a small bisection on erf instead.
  auto normal_quantile = [](double q) {
    double lo = -10.0, hi = 10.0;
    for (int i = 0; i < 200; ++i) {
      const double mid = 0.5 * (lo + hi);
      const double cdf = 0.5 * (1.0 + std::erf(mid / std::sqrt(2.0)));
      (cdf < q ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  };
  const double v_hi = std::exp(mu + sigma * normal_quantile(q_hi));
  const double width = static_cast<double>(domain.size() - 1);
  const double scale = width / v_hi;
  return RejectionSampleUnique(n, domain, [&]() -> Key {
    const double v = rng->LogNormal(mu, sigma);
    return domain.lo + static_cast<Key>(std::llround(v * scale));
  });
}

Result<KeySet> GenerateNormal(std::int64_t n, KeyDomain domain, Rng* rng) {
  LISPOISON_RETURN_IF_ERROR(ValidateRequest(n, domain));
  const double a = static_cast<double>(domain.lo);
  const double b = static_cast<double>(domain.hi);
  const double mu = (a + b) / 2.0;
  const double sigma = (b - a) / 3.0;
  if (sigma <= 0) {
    // Single-point domain: the only possible keyset is {lo} (n <= 1 here
    // because ValidateRequest bounds n by the domain size).
    std::vector<Key> keys;
    if (n == 1) keys.push_back(domain.lo);
    return KeySet::Create(std::move(keys), domain);
  }
  return RejectionSampleUnique(n, domain, [&]() -> Key {
    return static_cast<Key>(std::llround(rng->Normal(mu, sigma)));
  });
}

Result<KeySet> GenerateClustered(std::int64_t n, KeyDomain domain,
                                 const std::vector<ClusterSpec>& clusters,
                                 Rng* rng) {
  LISPOISON_RETURN_IF_ERROR(ValidateRequest(n, domain));
  if (clusters.empty()) {
    return Status::InvalidArgument("clustered generator needs >= 1 cluster");
  }
  double total_weight = 0;
  for (const auto& c : clusters) {
    if (c.weight < 0 || c.stddev_frac <= 0) {
      return Status::InvalidArgument(
          "cluster weights must be >= 0 and stddevs > 0");
    }
    total_weight += c.weight;
  }
  if (total_weight <= 0) {
    return Status::InvalidArgument("total cluster weight must be positive");
  }
  const double width = static_cast<double>(domain.size() - 1);
  return RejectionSampleUnique(n, domain, [&]() -> Key {
    double pick = rng->NextDouble() * total_weight;
    const ClusterSpec* chosen = &clusters.back();
    for (const auto& c : clusters) {
      pick -= c.weight;
      if (pick <= 0) {
        chosen = &c;
        break;
      }
    }
    const double center =
        static_cast<double>(domain.lo) + chosen->center_frac * width;
    const double sd = chosen->stddev_frac * width;
    return static_cast<Key>(std::llround(rng->Normal(center, sd)));
  });
}

Result<KeySet> GenerateEvenlySpaced(std::int64_t n, KeyDomain domain) {
  LISPOISON_RETURN_IF_ERROR(ValidateRequest(n, domain));
  std::vector<Key> keys;
  keys.reserve(static_cast<std::size_t>(n));
  if (n == 1) {
    keys.push_back(domain.lo);
  } else {
    const long double step =
        static_cast<long double>(domain.size() - 1) / (n - 1);
    for (std::int64_t i = 0; i < n; ++i) {
      keys.push_back(domain.lo +
                     static_cast<Key>(std::llround(
                         static_cast<double>(step * i))));
    }
    // Evenly spaced rounding can collide only when n > m; ValidateRequest
    // excludes that, but de-duplicate defensively by nudging forward.
    for (std::size_t i = 1; i < keys.size(); ++i) {
      if (keys[i] <= keys[i - 1]) keys[i] = keys[i - 1] + 1;
    }
  }
  return KeySet::Create(std::move(keys), domain);
}

}  // namespace lispoison
