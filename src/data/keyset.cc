#include "data/keyset.h"

#include <algorithm>
#include <string>

namespace lispoison {

Result<KeySet> KeySet::Create(std::vector<Key> keys, KeyDomain domain) {
  if (domain.hi < domain.lo) {
    return Status::InvalidArgument("key domain is empty (hi < lo)");
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!domain.Contains(keys[i])) {
      return Status::OutOfRange("key " + std::to_string(keys[i]) +
                                " outside domain [" +
                                std::to_string(domain.lo) + ", " +
                                std::to_string(domain.hi) + "]");
    }
    if (i > 0 && keys[i] == keys[i - 1]) {
      return Status::InvalidArgument("duplicate key " +
                                     std::to_string(keys[i]));
    }
  }
  KeySet ks;
  ks.keys_ = std::move(keys);
  ks.domain_ = domain;
  return ks;
}

Result<KeySet> KeySet::CreateWithTightDomain(std::vector<Key> keys) {
  if (keys.empty()) {
    return Status::InvalidArgument(
        "cannot derive a tight domain from an empty keyset");
  }
  auto [mn, mx] = std::minmax_element(keys.begin(), keys.end());
  KeyDomain domain{*mn, *mx};
  return Create(std::move(keys), domain);
}

Result<Rank> KeySet::RankOf(Key k) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
  if (it == keys_.end() || *it != k) {
    return Status::NotFound("key " + std::to_string(k) + " not in keyset");
  }
  return static_cast<Rank>(it - keys_.begin()) + 1;
}

Rank KeySet::CountLess(Key k) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
  return static_cast<Rank>(it - keys_.begin());
}

bool KeySet::Contains(Key k) const {
  return std::binary_search(keys_.begin(), keys_.end(), k);
}

Result<KeySet> KeySet::Union(const std::vector<Key>& extra) const {
  std::vector<Key> merged = keys_;
  merged.insert(merged.end(), extra.begin(), extra.end());
  return Create(std::move(merged), domain_);
}

Result<KeySet> KeySet::Slice(std::int64_t first, std::int64_t count) const {
  if (first < 0 || count < 0 || first + count > size()) {
    return Status::OutOfRange("slice [" + std::to_string(first) + ", " +
                              std::to_string(first + count) +
                              ") outside keyset of size " +
                              std::to_string(size()));
  }
  std::vector<Key> sub(keys_.begin() + first, keys_.begin() + first + count);
  KeySet ks;
  ks.keys_ = std::move(sub);
  ks.domain_ = domain_;
  return ks;
}

}  // namespace lispoison
