// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Surrogate generators for the two real-world datasets of the paper's
// Section V-C evaluation (Fig. 7). The original raw data (a Miami-Dade
// County ArcGIS salary dump and an OpenStreetMap planet extract) is not
// redistributable/available offline; these surrogates match the published
// summary statistics — key count n, key universe size m, density, range,
// and CDF shape — which are the only properties the attack interacts
// with. See DESIGN.md "Substitutions" for the full rationale.

#ifndef LISPOISON_DATA_SURROGATES_H_
#define LISPOISON_DATA_SURROGATES_H_

#include "common/rng.h"
#include "common/status.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Summary statistics the Fig. 7 captions report for each dataset.
struct SurrogateSpec {
  std::int64_t n;   ///< Number of unique keys.
  KeyDomain domain; ///< Key universe.
  double density;   ///< n / m as reported in the paper.
};

/// \brief Paper statistics for the Miami-Dade salary dataset:
/// n = 5,300 unique salaries in [$22,733, $190,034], density 3.71%.
SurrogateSpec MiamiSalariesSpec();

/// \brief Paper statistics for the OSM school-latitude dataset:
/// n = 302,973 scaled latitudes, universe 1.2M, density 25.25%.
SurrogateSpec OsmLatitudesSpec();

/// \brief Generates a salary-shaped keyset matching MiamiSalariesSpec().
///
/// Salaries follow a right-skewed log-normal (bulk between ~$40k and
/// ~$100k, thinning tail to the max), truncated to the paper's range and
/// rejection-sampled to unique integers. Pass a smaller \p n_override to
/// produce a proportionally scaled dataset for quick runs (<= 0 keeps the
/// paper's n).
Result<KeySet> MakeMiamiSalariesSurrogate(Rng* rng,
                                          std::int64_t n_override = 0);

/// \brief Generates a latitude-shaped keyset matching OsmLatitudesSpec().
///
/// School locations cluster in population bands (Europe, South/East Asia,
/// equatorial Africa, the Americas) between latitude -30 and +50; the
/// surrogate mixes Gaussian bands with those weights, scales by 15,000,
/// rounds, and de-duplicates — the paper's own pre-processing. Pass a
/// smaller \p n_override for quick runs (<= 0 keeps the paper's n).
Result<KeySet> MakeOsmLatitudesSurrogate(Rng* rng,
                                         std::int64_t n_override = 0);

}  // namespace lispoison

#endif  // LISPOISON_DATA_SURROGATES_H_
