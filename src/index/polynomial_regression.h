// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Polynomial least-squares regression on CDFs — the "more complex and
// robust second-stage model" the paper's §VI discussion proposes as a
// mitigation, at the cost of the storage/compute advantage that makes
// LIS attractive in the first place. Degrees 1..4 are supported (the
// normal equations are solved exactly with long-double Gaussian
// elimination on normalized keys).

#ifndef LISPOISON_INDEX_POLYNOMIAL_REGRESSION_H_
#define LISPOISON_INDEX_POLYNOMIAL_REGRESSION_H_

#include <array>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief A fitted polynomial rank predictor of degree <= 4 over
/// normalized keys x = (k - lo) / width.
struct PolynomialModel {
  int degree = 1;
  std::array<double, 5> coef{};  ///< coef[i] multiplies x^i.
  double lo = 0;                 ///< Normalization offset.
  double inv_width = 1;          ///< Normalization scale.

  /// \brief Real-valued rank prediction.
  double Predict(Key k) const {
    const double x = (static_cast<double>(k) - lo) * inv_width;
    double acc = 0;
    for (int i = degree; i >= 0; --i) {
      acc = acc * x + coef[static_cast<std::size_t>(i)];
    }
    return acc;
  }

  /// \brief Stored parameters (coefficients + normalization), for the
  /// storage-overhead accounting of the complexity bench.
  std::int64_t ParameterCount() const { return degree + 1 + 2; }
};

/// \brief Result of a polynomial fit on a CDF.
struct PolynomialFit {
  PolynomialModel model;
  long double mse = 0;
  std::int64_t n = 0;
};

/// \brief Fits a degree-\p degree polynomial on the ranks 1..n of
/// \p keyset and reports the achieved MSE. Degree must lie in [1, 4];
/// fails on empty input. Degenerate systems (fewer distinct keys than
/// coefficients) fall back to the highest solvable degree.
Result<PolynomialFit> FitPolynomialCdf(const KeySet& keyset, int degree);

/// \brief Same on explicit (key, rank) pairs.
Result<PolynomialFit> FitPolynomialCdf(const std::vector<Key>& keys,
                                       const std::vector<Rank>& ranks,
                                       int degree);

}  // namespace lispoison

#endif  // LISPOISON_INDEX_POLYNOMIAL_REGRESSION_H_
