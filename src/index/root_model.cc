#include "index/root_model.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "index/cdf_regression.h"

namespace lispoison {
namespace {

/// Routes by exact binary search on the stored keys: the "always correct"
/// root of Section V. EstimateRank returns the true insertion rank.
class OracleRoot : public RootModel {
 public:
  explicit OracleRoot(std::vector<Key> keys) : keys_(std::move(keys)) {}

  double EstimateRank(Key k) const override {
    const auto it = std::upper_bound(keys_.begin(), keys_.end(), k);
    // Number of keys <= k; the true rank of a stored key.
    return static_cast<double>(it - keys_.begin());
  }

  std::int64_t ParameterCount() const override {
    return static_cast<std::int64_t>(keys_.size());
  }

 private:
  std::vector<Key> keys_;
};

class LinearRoot : public RootModel {
 public:
  explicit LinearRoot(LinearModel model) : model_(model) {}

  double EstimateRank(Key k) const override { return model_.Predict(k); }
  std::int64_t ParameterCount() const override { return 2; }

 private:
  LinearModel model_;
};

/// Cubic least squares on (normalized key, rank): solves the 4x4 normal
/// equations by Gaussian elimination with partial pivoting. Keys are
/// normalized to [0, 1] before forming powers to keep the system well
/// conditioned on large domains.
class CubicRoot : public RootModel {
 public:
  CubicRoot(std::array<double, 4> coef, double lo, double scale)
      : coef_(coef), lo_(lo), scale_(scale) {}

  static Result<std::unique_ptr<RootModel>> Train(const KeySet& keyset) {
    const auto& keys = keyset.keys();
    const double lo = static_cast<double>(keyset.domain().lo);
    const double width = static_cast<double>(keyset.domain().size() - 1);
    const double scale = width > 0 ? 1.0 / width : 1.0;

    // Normal equations: A^T A c = A^T y with A rows (1, x, x^2, x^3).
    long double ata[4][4] = {};
    long double aty[4] = {};
    Rank r = 1;
    for (Key k : keys) {
      const long double x = (static_cast<double>(k) - lo) * scale;
      long double pow_x[7];
      pow_x[0] = 1;
      for (int i = 1; i < 7; ++i) pow_x[i] = pow_x[i - 1] * x;
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) ata[i][j] += pow_x[i + j];
        aty[i] += pow_x[i] * static_cast<long double>(r);
      }
      ++r;
    }
    // Gaussian elimination with partial pivoting.
    long double aug[4][5];
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) aug[i][j] = ata[i][j];
      aug[i][4] = aty[i];
    }
    for (int col = 0; col < 4; ++col) {
      int pivot = col;
      for (int row = col + 1; row < 4; ++row) {
        if (std::fabs(static_cast<double>(aug[row][col])) >
            std::fabs(static_cast<double>(aug[pivot][col]))) {
          pivot = row;
        }
      }
      std::swap(aug[col], aug[pivot]);
      if (aug[col][col] == 0) {
        return Status::FailedPrecondition(
            "singular normal equations for cubic root model");
      }
      for (int row = col + 1; row < 4; ++row) {
        const long double f = aug[row][col] / aug[col][col];
        for (int j = col; j < 5; ++j) aug[row][j] -= f * aug[col][j];
      }
    }
    std::array<double, 4> coef{};
    for (int i = 3; i >= 0; --i) {
      long double acc = aug[i][4];
      for (int j = i + 1; j < 4; ++j) acc -= aug[i][j] * coef[j];
      coef[i] = static_cast<double>(acc / aug[i][i]);
    }
    return std::unique_ptr<RootModel>(new CubicRoot(coef, lo, scale));
  }

  double EstimateRank(Key k) const override {
    const double x = (static_cast<double>(k) - lo_) * scale_;
    return ((coef_[3] * x + coef_[2]) * x + coef_[1]) * x + coef_[0];
  }

  std::int64_t ParameterCount() const override { return 6; }

 private:
  std::array<double, 4> coef_;
  double lo_;
  double scale_;
};

/// Monotone piecewise-linear approximation of the CDF: the domain is cut
/// into equal-width segments; each boundary stores the empirical rank
/// (count of keys below), and queries interpolate linearly inside their
/// segment. This is exactly the function class a one-hidden-layer ReLU
/// network with `segments` units realizes on a monotone target.
class PiecewiseLinearRoot : public RootModel {
 public:
  PiecewiseLinearRoot(std::vector<double> boundary_ranks, double lo,
                      double seg_width)
      : boundary_ranks_(std::move(boundary_ranks)),
        lo_(lo),
        seg_width_(seg_width) {}

  static Result<std::unique_ptr<RootModel>> Train(const KeySet& keyset,
                                                  std::int64_t segments) {
    if (segments < 1) {
      return Status::InvalidArgument("piecewise root needs >= 1 segment");
    }
    const auto& keys = keyset.keys();
    const double lo = static_cast<double>(keyset.domain().lo);
    const double width = static_cast<double>(keyset.domain().size() - 1);
    const double seg_width =
        width > 0 ? width / static_cast<double>(segments) : 1.0;
    std::vector<double> boundary_ranks(static_cast<std::size_t>(segments) + 1);
    for (std::int64_t s = 0; s <= segments; ++s) {
      const double boundary = lo + seg_width * static_cast<double>(s);
      const Key bk = static_cast<Key>(std::floor(boundary));
      const auto it = std::upper_bound(keys.begin(), keys.end(), bk);
      boundary_ranks[static_cast<std::size_t>(s)] =
          static_cast<double>(it - keys.begin());
    }
    return std::unique_ptr<RootModel>(
        new PiecewiseLinearRoot(std::move(boundary_ranks), lo, seg_width));
  }

  double EstimateRank(Key k) const override {
    const double pos = (static_cast<double>(k) - lo_) / seg_width_;
    const std::int64_t seg_count =
        static_cast<std::int64_t>(boundary_ranks_.size()) - 1;
    std::int64_t s = static_cast<std::int64_t>(std::floor(pos));
    if (s < 0) s = 0;
    if (s >= seg_count) s = seg_count - 1;
    const double frac = pos - static_cast<double>(s);
    const double r0 = boundary_ranks_[static_cast<std::size_t>(s)];
    const double r1 = boundary_ranks_[static_cast<std::size_t>(s) + 1];
    return r0 + (r1 - r0) * std::clamp(frac, 0.0, 1.0);
  }

  std::int64_t ParameterCount() const override {
    return static_cast<std::int64_t>(boundary_ranks_.size());
  }

 private:
  std::vector<double> boundary_ranks_;
  double lo_;
  double seg_width_;
};

}  // namespace

Result<std::unique_ptr<RootModel>> TrainRootModel(RootModelKind kind,
                                                  const KeySet& keyset,
                                                  std::int64_t segments) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot train a root model on no keys");
  }
  switch (kind) {
    case RootModelKind::kOracle:
      return std::unique_ptr<RootModel>(new OracleRoot(keyset.keys()));
    case RootModelKind::kLinear: {
      LISPOISON_ASSIGN_OR_RETURN(CdfFit fit, FitCdfRegression(keyset));
      return std::unique_ptr<RootModel>(new LinearRoot(fit.model));
    }
    case RootModelKind::kCubic:
      return CubicRoot::Train(keyset);
    case RootModelKind::kPiecewiseLinear:
      return PiecewiseLinearRoot::Train(keyset, segments);
  }
  return Status::InvalidArgument("unknown root model kind");
}

}  // namespace lispoison
