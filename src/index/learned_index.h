// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// LearnedIndex: the user-facing index facade. It owns the sorted dense
// array of keys (the paper's in-memory key-record layout), an RMI that
// predicts positions, and the "last mile" local search that corrects
// prediction error — the component whose cost the poisoning attacks
// inflate.

#ifndef LISPOISON_INDEX_LEARNED_INDEX_H_
#define LISPOISON_INDEX_LEARNED_INDEX_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"
#include "index/rmi.h"

namespace lispoison {

/// \brief Outcome of one lookup, including the work performed — the
/// implementation-independent cost signal the benchmarks report.
struct LookupResult {
  bool found = false;        ///< True iff the key is stored.
  std::int64_t position = -1;  ///< 0-based array position when found.
  std::int64_t predicted = -1; ///< Position the model predicted.
  std::int64_t probes = 0;     ///< Array cells touched by last-mile search.
};

/// \brief Aggregate last-mile statistics over many lookups.
struct LookupStats {
  std::int64_t lookups = 0;
  std::int64_t total_probes = 0;
  std::int64_t max_probes = 0;
  std::int64_t total_abs_error = 0;  ///< Sum |predicted - actual|.
  std::int64_t max_abs_error = 0;

  double MeanProbes() const {
    return lookups ? static_cast<double>(total_probes) /
                         static_cast<double>(lookups)
                   : 0.0;
  }
  double MeanAbsError() const {
    return lookups ? static_cast<double>(total_abs_error) /
                         static_cast<double>(lookups)
                   : 0.0;
  }
};

/// \brief A learned range index: RMI prediction + last-mile exponential
/// search over a sorted dense key array.
class LearnedIndex {
 public:
  /// \brief Builds (trains) the index over \p keyset.
  static Result<LearnedIndex> Build(const KeySet& keyset,
                                    const RmiOptions& options);

  /// \brief Looks up \p k: predicts a position, then exponential-searches
  /// outward from the prediction until the key (or its absence) is
  /// certain. Probe accounting is exact.
  LookupResult Lookup(Key k) const;

  /// \brief Lookup using the RMI's stored error bounds: binary search
  /// within the guaranteed window [pred + err_lo, pred + err_hi] of the
  /// routed model (reference-RMI style). Falls back to the exponential
  /// search when the routed window provably cannot contain \p k (which
  /// happens only under learned-root misrouting), so the result is
  /// always correct.
  LookupResult LookupBounded(Key k) const;

  /// \brief Outcome of a range query.
  struct RangeResult {
    std::int64_t first = 0;  ///< Position of the first key >= lo.
    std::int64_t count = 0;  ///< Number of stored keys in [lo, hi].
    std::int64_t probes = 0; ///< Array cells touched locating the bounds.
  };

  /// \brief Range query [lo, hi]: the range-index ADT the paper's
  /// learned indexes implement. Locates the lower bound with a model
  /// prediction plus last-mile search; the upper bound by a second
  /// prediction. Returns an empty range (count 0) when no stored key
  /// falls inside. Requires lo <= hi.
  Result<RangeResult> LookupRange(Key lo, Key hi) const;

  /// \brief Runs Lookup over every stored key, aggregating statistics.
  LookupStats ProfileAllKeys() const;

  /// \brief The trained RMI.
  const Rmi& rmi() const { return rmi_; }

  /// \brief Number of stored keys.
  std::int64_t size() const {
    return static_cast<std::int64_t>(keys_.size());
  }

  /// \brief The backing sorted key array.
  const std::vector<Key>& keys() const { return keys_; }

 private:
  std::vector<Key> keys_;
  Rmi rmi_;
};

}  // namespace lispoison

#endif  // LISPOISON_INDEX_LEARNED_INDEX_H_
