#include "index/dynamic_index.h"

#include <algorithm>
#include <string>

namespace lispoison {

Result<DynamicLearnedIndex> DynamicLearnedIndex::Build(
    const KeySet& keyset, const DynamicIndexOptions& options) {
  if (options.retrain_threshold <= 0) {
    return Status::InvalidArgument("retrain_threshold must be positive");
  }
  LISPOISON_ASSIGN_OR_RETURN(LearnedIndex base,
                             LearnedIndex::Build(keyset, options.rmi));
  DynamicLearnedIndex idx;
  idx.options_ = options;
  idx.domain_ = keyset.domain();
  idx.base_ = std::move(base);
  return idx;
}

Status DynamicLearnedIndex::Insert(Key k) {
  if (!domain_.Contains(k)) {
    return Status::OutOfRange("key " + std::to_string(k) +
                              " outside the index domain");
  }
  const auto it = std::lower_bound(buffer_.begin(), buffer_.end(), k);
  if (it != buffer_.end() && *it == k) {
    return Status::InvalidArgument("duplicate key " + std::to_string(k));
  }
  if (base_.Lookup(k).found) {
    return Status::InvalidArgument("duplicate key " + std::to_string(k));
  }
  buffer_.insert(it, k);
  const double threshold = options_.retrain_threshold *
                           static_cast<double>(base_.size());
  if (static_cast<double>(buffer_.size()) >= std::max(1.0, threshold)) {
    return Retrain();
  }
  return Status::OK();
}

LookupResult DynamicLearnedIndex::Lookup(Key k) const {
  // Base first: most keys live there.
  LookupResult res = base_.Lookup(k);
  if (res.found) return res;
  // Delta buffer: binary search, each comparison counted as a probe.
  std::int64_t lo = 0;
  std::int64_t hi = static_cast<std::int64_t>(buffer_.size()) - 1;
  while (lo <= hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    res.probes += 1;
    const Key v = buffer_[static_cast<std::size_t>(mid)];
    if (v == k) {
      res.found = true;
      // Position within the merged order: base keys below + buffer pos.
      res.position = -1;  // Buffer keys have no stable array slot yet.
      return res;
    }
    if (v < k) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return res;
}

std::int64_t DynamicLearnedIndex::size() const {
  return base_.size() + static_cast<std::int64_t>(buffer_.size());
}

Status DynamicLearnedIndex::ForceRetrain() {
  if (buffer_.empty()) return Status::OK();
  return Retrain();
}

Status DynamicLearnedIndex::Retrain() {
  std::vector<Key> merged;
  merged.reserve(base_.keys().size() + buffer_.size());
  std::merge(base_.keys().begin(), base_.keys().end(), buffer_.begin(),
             buffer_.end(), std::back_inserter(merged));
  LISPOISON_ASSIGN_OR_RETURN(KeySet keyset,
                             KeySet::Create(std::move(merged), domain_));
  LISPOISON_ASSIGN_OR_RETURN(LearnedIndex rebuilt,
                             LearnedIndex::Build(keyset, options_.rmi));
  base_ = std::move(rebuilt);
  buffer_.clear();
  retrains_ += 1;
  return Status::OK();
}

}  // namespace lispoison
