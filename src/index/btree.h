// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// An in-memory B+Tree over integer keys: the traditional baseline the RMI
// is measured against in Kraska et al. and referenced throughout the
// paper. Bulk-loaded from sorted keys; lookups report the number of nodes
// visited and cells compared so costs are comparable with the learned
// index's probe counts.

#ifndef LISPOISON_INDEX_BTREE_H_
#define LISPOISON_INDEX_BTREE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Outcome of a B+Tree lookup with cost accounting.
struct BTreeLookupResult {
  bool found = false;
  std::int64_t position = -1;  ///< 0-based rank-1 position when found.
  std::int64_t nodes_visited = 0;
  std::int64_t comparisons = 0;
};

/// \brief Outcome of a B+Tree range count with cost accounting.
struct BTreeRangeResult {
  std::int64_t first = 0;  ///< Rank (0-based) of the first key >= lo.
  std::int64_t count = 0;  ///< Number of stored keys in [lo, hi].
  std::int64_t nodes_visited = 0;
  std::int64_t comparisons = 0;
};

/// \brief A read-only bulk-loaded B+Tree.
///
/// Leaves store (key, position) runs of up to `fanout` entries; internal
/// nodes store separator keys. The tree answers point lookups and
/// rank queries; updates are out of scope (the paper studies static
/// indexes poisoned before construction).
class BPlusTree {
 public:
  /// \brief Bulk-loads a tree of the given fanout (>= 3) from \p keyset.
  static Result<BPlusTree> Build(const KeySet& keyset, int fanout = 64);

  /// \brief Point lookup with cost accounting.
  BTreeLookupResult Lookup(Key k) const;

  /// \brief Counts the stored keys in [lo, hi] via two root-to-leaf
  /// descents (rank of the range's bounds), accumulating the combined
  /// traversal cost. Requires lo <= hi (returns an empty range
  /// otherwise). This is the scan primitive of the serving workloads.
  BTreeRangeResult RangeCount(Key lo, Key hi) const;

  /// \brief Number of keys stored.
  std::int64_t size() const { return n_; }

  /// \brief Height of the tree (1 = just leaves).
  int height() const { return height_; }

  /// \brief Total nodes allocated (memory accounting).
  std::int64_t node_count() const { return node_count_; }

 private:
  struct Node {
    bool leaf = false;
    std::vector<Key> keys;  // Leaf: stored keys; internal: separators.
    std::vector<std::unique_ptr<Node>> children;  // Internal only.
    std::int64_t first_position = 0;  // Leaf: rank-1 of keys.front().
  };

  /// Rank of the first stored key >= k (upper=false) or > k (upper=true),
  /// accumulating traversal cost into \p cost.
  std::int64_t BoundRank(Key k, bool upper, BTreeRangeResult* cost) const;

  std::unique_ptr<Node> root_;
  std::int64_t n_ = 0;
  int height_ = 0;
  std::int64_t node_count_ = 0;
};

}  // namespace lispoison

#endif  // LISPOISON_INDEX_BTREE_H_
