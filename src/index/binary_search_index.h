// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Plain binary search over the sorted dense array: the minimal baseline.
// Its cost is unaffected by poisoning, which makes it the control in the
// latency experiments.

#ifndef LISPOISON_INDEX_BINARY_SEARCH_INDEX_H_
#define LISPOISON_INDEX_BINARY_SEARCH_INDEX_H_

#include <vector>

#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Outcome of a binary-search lookup with comparison accounting.
struct BinarySearchResult {
  bool found = false;
  std::int64_t position = -1;
  std::int64_t comparisons = 0;
};

/// \brief Classic binary search over a sorted key array.
class BinarySearchIndex {
 public:
  /// \brief Wraps (copies) the sorted keys of \p keyset.
  explicit BinarySearchIndex(const KeySet& keyset) : keys_(keyset.keys()) {}

  /// \brief Point lookup counting key comparisons.
  BinarySearchResult Lookup(Key k) const {
    BinarySearchResult res;
    std::int64_t lo = 0;
    std::int64_t hi = static_cast<std::int64_t>(keys_.size()) - 1;
    while (lo <= hi) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      const Key v = keys_[static_cast<std::size_t>(mid)];
      res.comparisons += 1;
      if (v == k) {
        res.found = true;
        res.position = mid;
        return res;
      }
      if (v < k) {
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
    return res;
  }

  /// \brief Number of stored keys.
  std::int64_t size() const { return static_cast<std::int64_t>(keys_.size()); }

  /// \brief The backing sorted key array (for range scans).
  const std::vector<Key>& keys() const { return keys_; }

 private:
  std::vector<Key> keys_;
};

}  // namespace lispoison

#endif  // LISPOISON_INDEX_BINARY_SEARCH_INDEX_H_
