// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// A minimal updatable learned index in the spirit of the delta-buffer
// designs the paper cites ([10], ALEX [7]): the trained RMI serves the
// bulk of the data while new insertions accumulate in a sorted delta
// buffer; when the buffer exceeds a threshold the index merges and
// retrains. This is the substrate for the paper's §VI future-work
// adversary that poisons THROUGH the update path: poisoning keys enter
// as ordinary inserts and take effect at the next retrain.

#ifndef LISPOISON_INDEX_DYNAMIC_INDEX_H_
#define LISPOISON_INDEX_DYNAMIC_INDEX_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"
#include "index/learned_index.h"

namespace lispoison {

/// \brief Options for the updatable learned index.
struct DynamicIndexOptions {
  /// RMI configuration used at every (re)train.
  RmiOptions rmi;
  /// Retrain when the delta buffer reaches this fraction of the base
  /// size (e.g. 0.05 = retrain after 5% growth).
  double retrain_threshold = 0.05;
};

/// \brief An updatable learned index: trained base + sorted delta
/// buffer + automatic retrain.
///
/// Lookup cost = base RMI lookup + binary search of the delta buffer;
/// the probe accounting includes both so update-path poisoning damage
/// is measurable with the same metrics as the static index.
class DynamicLearnedIndex {
 public:
  /// \brief Builds the initial index over \p keyset.
  static Result<DynamicLearnedIndex> Build(const KeySet& keyset,
                                           const DynamicIndexOptions& options);

  /// \brief Inserts a new key. Duplicate keys are rejected with
  /// InvalidArgument, out-of-domain keys with OutOfRange. May trigger a
  /// retrain (absorbing the buffer into the base).
  Status Insert(Key k);

  /// \brief Point lookup across base + buffer with probe accounting.
  LookupResult Lookup(Key k) const;

  /// \brief Total keys stored (base + buffer).
  std::int64_t size() const;

  /// \brief Keys currently waiting in the delta buffer.
  std::int64_t buffer_size() const {
    return static_cast<std::int64_t>(buffer_.size());
  }

  /// \brief Number of retrains performed since Build.
  std::int64_t retrain_count() const { return retrains_; }

  /// \brief The current trained base index.
  const LearnedIndex& base() const { return base_; }

  /// \brief MSE-based loss of the current base RMI (the poisoning
  /// target measure).
  long double BaseRmiLoss() const { return base_.rmi().RmiLoss(); }

  /// \brief Forces a merge + retrain regardless of the threshold.
  Status ForceRetrain();

 private:
  DynamicIndexOptions options_;
  KeyDomain domain_;
  LearnedIndex base_;
  std::vector<Key> buffer_;  // Sorted.
  std::int64_t retrains_ = 0;

  Status Retrain();
};

}  // namespace lispoison

#endif  // LISPOISON_INDEX_DYNAMIC_INDEX_H_
