#include "index/rmi.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace lispoison {

Result<Rmi> Rmi::Train(const KeySet& keyset, const RmiOptions& options) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot train an RMI on no keys");
  }
  const std::int64_t n = keyset.size();
  std::int64_t num_models = options.num_models;
  if (num_models <= 0) {
    if (options.target_model_size <= 0) {
      return Status::InvalidArgument(
          "either num_models or target_model_size must be positive");
    }
    num_models = (n + options.target_model_size - 1) /
                 options.target_model_size;
  }
  if (num_models > n) num_models = n;

  Rmi rmi;
  rmi.n_ = n;
  LISPOISON_ASSIGN_OR_RETURN(
      auto root,
      TrainRootModel(options.root_kind, keyset, options.root_segments));
  rmi.root_ = std::move(root);

  // Equal-size partition: the first (n mod N) models take one extra key,
  // matching the paper's "non-overlapping subsets of equal size".
  if (options.second_stage_degree < 1 || options.second_stage_degree > 4) {
    return Status::InvalidArgument(
        "second_stage_degree must lie in [1, 4]");
  }
  const std::int64_t base = n / num_models;
  const std::int64_t extra = n % num_models;
  std::int64_t first = 0;
  rmi.models_.reserve(static_cast<std::size_t>(num_models));
  rmi.partition_first_keys_.reserve(static_cast<std::size_t>(num_models));
  for (std::int64_t i = 0; i < num_models; ++i) {
    const std::int64_t count = base + (i < extra ? 1 : 0);
    SecondStageModel m;
    m.first = first;
    m.count = count;
    MomentAccumulator acc;
    for (std::int64_t j = 0; j < count; ++j) {
      // Global rank = global index + 1 so predictions are positions.
      acc.Add(keyset.at(first + j), first + j + 1);
    }
    m.fit = FitFromMoments(acc);
    if (options.second_stage_degree > 1) {
      std::vector<Key> part_keys;
      std::vector<Rank> part_ranks;
      part_keys.reserve(static_cast<std::size_t>(count));
      part_ranks.reserve(static_cast<std::size_t>(count));
      for (std::int64_t j = 0; j < count; ++j) {
        part_keys.push_back(keyset.at(first + j));
        part_ranks.push_back(first + j + 1);
      }
      LISPOISON_ASSIGN_OR_RETURN(
          m.poly_fit, FitPolynomialCdf(part_keys, part_ranks,
                                       options.second_stage_degree));
      m.use_poly = true;
    }
    // Reference-RMI style error bounds: residual extrema over the
    // partition, so lookups get a guaranteed search window.
    for (std::int64_t j = 0; j < count; ++j) {
      const double resid = static_cast<double>(first + j + 1) -
                           m.Predict(keyset.at(first + j));
      if (j == 0) {
        m.err_lo = resid;
        m.err_hi = resid;
      } else {
        m.err_lo = std::min(m.err_lo, resid);
        m.err_hi = std::max(m.err_hi, resid);
      }
    }
    rmi.partition_first_keys_.push_back(keyset.at(first));
    rmi.models_.push_back(m);
    first += count;
  }
  return rmi;
}

std::int64_t Rmi::Route(Key k) const {
  const double est = root_->EstimateRank(k);
  // Convert the rank estimate into a model index via the partition map:
  // model sizes are uniform up to one key, so divide by the average size.
  const double avg = static_cast<double>(n_) /
                     static_cast<double>(models_.size());
  std::int64_t idx = static_cast<std::int64_t>(std::floor((est - 0.5) / avg));
  if (idx < 0) idx = 0;
  if (idx >= num_models()) idx = num_models() - 1;
  return idx;
}

std::int64_t Rmi::TrueModelOf(Key k) const {
  // Last partition whose first key is <= k.
  const auto it = std::upper_bound(partition_first_keys_.begin(),
                                   partition_first_keys_.end(), k);
  std::int64_t idx =
      static_cast<std::int64_t>(it - partition_first_keys_.begin()) - 1;
  if (idx < 0) idx = 0;
  return idx;
}

double Rmi::PredictRank(Key k) const {
  const std::int64_t i = Route(k);
  return models_[static_cast<std::size_t>(i)].Predict(k);
}

std::int64_t Rmi::PredictPosition(Key k) const {
  const double r = PredictRank(k);
  std::int64_t pos = static_cast<std::int64_t>(std::llround(r)) - 1;
  if (pos < 0) pos = 0;
  if (pos >= n_) pos = n_ - 1;
  return pos;
}

std::pair<std::int64_t, std::int64_t> Rmi::SearchWindow(Key k) const {
  const std::int64_t i = Route(k);
  const auto& m = models_[static_cast<std::size_t>(i)];
  const double pred = m.Predict(k);
  // Positions are rank - 1; round the window outward.
  std::int64_t lo =
      static_cast<std::int64_t>(std::floor(pred + m.err_lo)) - 1;
  std::int64_t hi =
      static_cast<std::int64_t>(std::ceil(pred + m.err_hi)) - 1;
  if (lo < 0) lo = 0;
  if (lo >= n_) lo = n_ - 1;  // A misrouted key can predict past the end.
  if (hi >= n_) hi = n_ - 1;
  if (hi < lo) hi = lo;
  return {lo, hi};
}

double Rmi::MeanErrorWindow() const {
  if (models_.empty()) return 0;
  double sum = 0;
  for (const auto& m : models_) sum += m.ErrorWindow();
  return sum / static_cast<double>(models_.size());
}

double Rmi::MaxErrorWindow() const {
  double mx = 0;
  for (const auto& m : models_) mx = std::max(mx, m.ErrorWindow());
  return mx;
}

long double Rmi::RmiLoss() const {
  long double sum = 0;
  for (const auto& m : models_) sum += m.Loss();
  return sum / static_cast<long double>(models_.size());
}

std::vector<long double> Rmi::SecondStageLosses() const {
  std::vector<long double> out;
  out.reserve(models_.size());
  for (const auto& m : models_) out.push_back(m.Loss());
  return out;
}

std::int64_t Rmi::ParameterCount() const {
  std::int64_t second_stage = 0;
  for (const auto& m : models_) {
    second_stage += m.use_poly ? m.poly_fit.model.ParameterCount() : 2;
  }
  return root_->ParameterCount() + second_stage;
}

}  // namespace lispoison
