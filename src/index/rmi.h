// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// The two-stage Recursive Model Index of Kraska et al. as described in
// Section III-A of the paper: a root model routes a key to one of N
// second-stage linear regressions, each the "expert" for a contiguous
// equal-size partition of the sorted keys, and the chosen expert predicts
// the key's position in the backing array.

#ifndef LISPOISON_INDEX_RMI_H_
#define LISPOISON_INDEX_RMI_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"
#include "index/cdf_regression.h"
#include "index/polynomial_regression.h"
#include "index/root_model.h"

namespace lispoison {

/// \brief Configuration of a two-stage RMI.
struct RmiOptions {
  /// Number of second-stage models N. If <= 0, derived from
  /// `target_model_size` instead.
  std::int64_t num_models = 0;

  /// Desired number of keys per second-stage model ("Model Size" in the
  /// paper's figures). Used when `num_models <= 0`.
  std::int64_t target_model_size = 1000;

  /// First-stage model kind. Defaults to the paper's §V assumption of a
  /// perfectly routing root.
  RootModelKind root_kind = RootModelKind::kOracle;

  /// Segment count for the piecewise-linear root.
  std::int64_t root_segments = 256;

  /// Polynomial degree of the second-stage models. 1 (the paper's
  /// linear regression, via the exact closed form) by default; 2-4 fit
  /// least-squares polynomials — the "more complex final-stage model"
  /// mitigation of §VI, trading parameters for robustness.
  int second_stage_degree = 1;
};

/// \brief One trained second-stage model and its key partition.
struct SecondStageModel {
  std::int64_t first = 0;   ///< Index of the partition's first key.
  std::int64_t count = 0;   ///< Number of keys in the partition.
  CdfFit fit;               ///< Linear regression on (key, global rank).
  /// Present when RmiOptions::second_stage_degree > 1; overrides `fit`
  /// for prediction and loss.
  PolynomialFit poly_fit;
  bool use_poly = false;

  /// \brief Real-valued global-rank prediction of this expert.
  double Predict(Key k) const {
    return use_poly ? poly_fit.model.Predict(k) : fit.model.Predict(k);
  }

  /// \brief Training MSE of this expert (the poisoning target metric).
  long double Loss() const { return use_poly ? poly_fit.mse : fit.mse; }

  /// \name Stored residual bounds (reference-RMI style).
  ///
  /// min/max over the partition of (true rank - predicted rank),
  /// recorded at training time. Every trained key's position lies in
  /// [prediction + err_lo, prediction + err_hi], so the last-mile
  /// search can use a guaranteed window instead of exponential
  /// widening. Poisoning inflates these bounds — that is exactly the
  /// mechanism by which the attack slows lookups.
  /// @{
  double err_lo = 0;
  double err_hi = 0;
  /// @}

  /// \brief Width of the guaranteed search window in slots.
  double ErrorWindow() const { return err_hi - err_lo; }
};

/// \brief A trained two-stage Recursive Model Index.
///
/// The RMI predicts *global* positions: each second-stage model is fitted
/// on (key, global rank) so its output can be used directly as an array
/// position. `RmiLoss` matches the paper's definition
/// L_RMI = (1/N) * sum_i L_i, where L_i is each expert's MSE evaluated on
/// the *local* CDF (rank translation does not change the MSE, so local
/// and global fits give identical losses; see cdf_regression_test).
class Rmi {
 public:
  /// \brief Trains the RMI on \p keyset with the given options.
  static Result<Rmi> Train(const KeySet& keyset, const RmiOptions& options);

  /// \brief Number of second-stage models N.
  std::int64_t num_models() const {
    return static_cast<std::int64_t>(models_.size());
  }

  /// \brief The i-th second-stage model.
  const SecondStageModel& model(std::int64_t i) const {
    return models_[static_cast<std::size_t>(i)];
  }

  /// \brief Index of the second-stage model the root routes \p k to.
  std::int64_t Route(Key k) const;

  /// \brief Index of the model whose partition actually contains \p k's
  /// position (ground truth; what the Oracle root returns).
  std::int64_t TrueModelOf(Key k) const;

  /// \brief Full two-stage prediction: real-valued global rank of \p k.
  double PredictRank(Key k) const;

  /// \brief Predicted 0-based array position, clamped to [0, n-1].
  std::int64_t PredictPosition(Key k) const;

  /// \brief Guaranteed position window for \p k from the routed model's
  /// stored error bounds: if \p k is stored AND the root routes it to
  /// the model that trained on it, its position lies in
  /// [window.first, window.second] (0-based, clamped to the array).
  std::pair<std::int64_t, std::int64_t> SearchWindow(Key k) const;

  /// \brief Mean width (in slots) of the stored error windows across
  /// second-stage models — the storage-level signal poisoning inflates.
  double MeanErrorWindow() const;

  /// \brief Largest stored error window across second-stage models.
  double MaxErrorWindow() const;

  /// \brief Number of keys the RMI was trained on.
  std::int64_t key_count() const { return n_; }

  /// \brief The paper's RMI loss: mean of second-stage MSEs.
  long double RmiLoss() const;

  /// \brief MSE of each second-stage model, in partition order.
  std::vector<long double> SecondStageLosses() const;

  /// \brief Total stored parameters (root + 2 per second-stage model).
  std::int64_t ParameterCount() const;

 private:
  std::int64_t n_ = 0;
  std::shared_ptr<const RootModel> root_;
  std::vector<SecondStageModel> models_;
  std::vector<Key> partition_first_keys_;  // For TrueModelOf.
};

}  // namespace lispoison

#endif  // LISPOISON_INDEX_RMI_H_
