#include "index/cdf_regression.h"

#include <string>

namespace lispoison {

CdfFit FitFromMoments(const MomentAccumulator& acc) {
  CdfFit fit;
  fit.n = acc.count();
  const long double var_k = acc.VarX();
  const long double var_r = acc.VarY();
  const long double cov = acc.CovXY();
  if (var_k <= 0) {
    // Degenerate: all keys equal (only possible with a single point here).
    fit.model.w = 0.0;
    fit.model.b = static_cast<double>(acc.MeanY());
    fit.mse = var_r;
    return fit;
  }
  const long double w = cov / var_k;
  const long double b = acc.MeanY() - w * acc.MeanX();
  fit.model.w = static_cast<double>(w);
  fit.model.b = static_cast<double>(b);
  // Theorem 1: L = Var_R - Cov^2 / Var_K. Clamp tiny negative round-off.
  long double mse = var_r - cov * cov / var_k;
  if (mse < 0) mse = 0;
  fit.mse = mse;
  return fit;
}

Result<CdfFit> FitCdfRegression(const KeySet& keyset) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot fit a regression on no keys");
  }
  MomentAccumulator acc;
  Rank r = 1;
  for (Key k : keyset.keys()) acc.Add(k, r++);
  return FitFromMoments(acc);
}

Result<CdfFit> FitCdfRegression(const std::vector<Key>& keys,
                                const std::vector<Rank>& ranks) {
  if (keys.empty()) {
    return Status::InvalidArgument("cannot fit a regression on no keys");
  }
  if (keys.size() != ranks.size()) {
    return Status::InvalidArgument(
        "keys/ranks size mismatch: " + std::to_string(keys.size()) + " vs " +
        std::to_string(ranks.size()));
  }
  MomentAccumulator acc;
  for (std::size_t i = 0; i < keys.size(); ++i) acc.Add(keys[i], ranks[i]);
  return FitFromMoments(acc);
}

long double EvaluateMse(const LinearModel& model, const std::vector<Key>& keys,
                        const std::vector<Rank>& ranks) {
  if (keys.empty() || keys.size() != ranks.size()) return 0;
  long double sum = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const long double err =
        static_cast<long double>(model.Predict(keys[i])) -
        static_cast<long double>(ranks[i]);
    sum += err * err;
  }
  return sum / static_cast<long double>(keys.size());
}

}  // namespace lispoison
