#include "index/learned_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lispoison {

Result<LearnedIndex> LearnedIndex::Build(const KeySet& keyset,
                                         const RmiOptions& options) {
  LISPOISON_ASSIGN_OR_RETURN(Rmi rmi, Rmi::Train(keyset, options));
  LearnedIndex idx;
  idx.keys_ = keyset.keys();
  idx.rmi_ = std::move(rmi);
  return idx;
}

LookupResult LearnedIndex::Lookup(Key k) const {
  LookupResult res;
  const std::int64_t n = size();
  if (n == 0) return res;
  const std::int64_t guess = rmi_.PredictPosition(k);
  res.predicted = guess;

  // Exponential search outward from the guess: widen the radius until the
  // bracket [lo, hi] provably contains k's position, then binary search.
  std::int64_t probes = 0;
  auto key_at = [&](std::int64_t i) {
    ++probes;
    return keys_[static_cast<std::size_t>(i)];
  };

  std::int64_t lo = guess, hi = guess;
  const Key at_guess = key_at(guess);
  if (at_guess == k) {
    res.found = true;
    res.position = guess;
    res.probes = probes;
    return res;
  }
  std::int64_t radius = 1;
  if (at_guess < k) {
    lo = guess;
    hi = guess;
    while (hi < n - 1) {
      hi = std::min<std::int64_t>(n - 1, guess + radius);
      if (key_at(hi) >= k) break;
      lo = hi;
      radius *= 2;
    }
  } else {
    hi = guess;
    while (lo > 0) {
      lo = std::max<std::int64_t>(0, guess - radius);
      if (key_at(lo) <= k) break;
      hi = lo;
      radius *= 2;
    }
  }
  // Binary search within [lo, hi].
  while (lo <= hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    const Key v = key_at(mid);
    if (v == k) {
      res.found = true;
      res.position = mid;
      res.probes = probes;
      return res;
    }
    if (v < k) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  res.found = false;
  res.position = -1;
  res.probes = probes;
  return res;
}

LookupResult LearnedIndex::LookupBounded(Key k) const {
  LookupResult res;
  const std::int64_t n = size();
  if (n == 0) return res;
  auto [lo, hi] = rmi_.SearchWindow(k);
  res.predicted = rmi_.PredictPosition(k);

  // The window is guaranteed only for keys routed to their trained
  // model; verify the bracket can contain k, else fall back.
  res.probes += 2;
  if (keys_[static_cast<std::size_t>(lo)] > k ||
      keys_[static_cast<std::size_t>(hi)] < k) {
    // k cannot be inside [lo, hi]. For an Oracle root this means k is
    // simply not stored; for a learned root it may be misrouting, so
    // delegate to the always-correct exponential search.
    LookupResult fallback = Lookup(k);
    fallback.probes += res.probes;
    return fallback;
  }
  while (lo <= hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    res.probes += 1;
    const Key v = keys_[static_cast<std::size_t>(mid)];
    if (v == k) {
      res.found = true;
      res.position = mid;
      return res;
    }
    if (v < k) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return res;
}

Result<LearnedIndex::RangeResult> LearnedIndex::LookupRange(Key lo,
                                                            Key hi) const {
  if (lo > hi) {
    return Status::InvalidArgument("range lower bound exceeds upper bound");
  }
  RangeResult res;
  const std::int64_t n = size();
  if (n == 0) return res;

  // Locate the first position with key >= bound, starting the bracket
  // from the model's prediction and widening exponentially until it
  // provably contains the boundary, then binary-searching.
  auto lower_bound_pos = [&](Key bound) -> std::int64_t {
    std::int64_t guess = rmi_.PredictPosition(bound);
    std::int64_t lo_i = guess, hi_i = guess;
    std::int64_t radius = 1;
    ++res.probes;
    if (keys_[static_cast<std::size_t>(guess)] >= bound) {
      // Walk the bracket left until keys_[lo_i - 1] < bound is certain.
      while (lo_i > 0) {
        const std::int64_t probe =
            std::max<std::int64_t>(0, guess - radius);
        ++res.probes;
        if (keys_[static_cast<std::size_t>(probe)] < bound) {
          lo_i = probe;
          break;
        }
        hi_i = probe;
        lo_i = probe;
        radius *= 2;
      }
    } else {
      while (hi_i < n - 1) {
        const std::int64_t probe =
            std::min<std::int64_t>(n - 1, guess + radius);
        ++res.probes;
        if (keys_[static_cast<std::size_t>(probe)] >= bound) {
          hi_i = probe;
          break;
        }
        lo_i = probe;
        hi_i = probe;
        radius *= 2;
      }
      if (keys_[static_cast<std::size_t>(hi_i)] < bound) return n;
    }
    // Binary search in [lo_i, hi_i] for the first key >= bound.
    while (lo_i < hi_i) {
      const std::int64_t mid = lo_i + (hi_i - lo_i) / 2;
      ++res.probes;
      if (keys_[static_cast<std::size_t>(mid)] >= bound) {
        hi_i = mid;
      } else {
        lo_i = mid + 1;
      }
    }
    if (keys_[static_cast<std::size_t>(lo_i)] < bound) return n;
    return lo_i;
  };

  const std::int64_t first = lower_bound_pos(lo);
  if (first >= n) return res;  // Everything below lo.
  // First position strictly above hi (lower bound of hi + 1; watch for
  // overflow at the top of the key space).
  const std::int64_t past =
      hi == std::numeric_limits<Key>::max() ? n : lower_bound_pos(hi + 1);
  res.first = first;
  res.count = past > first ? past - first : 0;
  return res;
}

LookupStats LearnedIndex::ProfileAllKeys() const {
  LookupStats stats;
  for (std::int64_t i = 0; i < size(); ++i) {
    const Key k = keys_[static_cast<std::size_t>(i)];
    const LookupResult r = Lookup(k);
    stats.lookups += 1;
    stats.total_probes += r.probes;
    stats.max_probes = std::max(stats.max_probes, r.probes);
    const std::int64_t err = std::llabs(r.predicted - i);
    stats.total_abs_error += err;
    stats.max_abs_error = std::max(stats.max_abs_error, err);
  }
  return stats;
}

}  // namespace lispoison
