#include "index/btree.h"

#include <algorithm>

namespace lispoison {

Result<BPlusTree> BPlusTree::Build(const KeySet& keyset, int fanout) {
  if (fanout < 3) {
    return Status::InvalidArgument("B+Tree fanout must be >= 3");
  }
  BPlusTree tree;
  tree.n_ = keyset.size();
  if (tree.n_ == 0) {
    tree.root_ = std::make_unique<Node>();
    tree.root_->leaf = true;
    tree.height_ = 1;
    tree.node_count_ = 1;
    return tree;
  }

  // Build leaf level from sorted keys.
  std::vector<std::unique_ptr<Node>> level;
  const auto& keys = keyset.keys();
  for (std::size_t i = 0; i < keys.size();) {
    auto leaf = std::make_unique<Node>();
    leaf->leaf = true;
    leaf->first_position = static_cast<std::int64_t>(i);
    const std::size_t end =
        std::min(keys.size(), i + static_cast<std::size_t>(fanout));
    leaf->keys.assign(keys.begin() + static_cast<std::ptrdiff_t>(i),
                      keys.begin() + static_cast<std::ptrdiff_t>(end));
    level.push_back(std::move(leaf));
    i = end;
  }
  tree.node_count_ += static_cast<std::int64_t>(level.size());
  tree.height_ = 1;

  // Build internal levels until a single root remains. Each internal node
  // holding c children stores c-1 separators: the smallest key reachable
  // under each child except the first.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    for (std::size_t i = 0; i < level.size();) {
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      const std::size_t end =
          std::min(level.size(), i + static_cast<std::size_t>(fanout));
      for (std::size_t j = i; j < end; ++j) {
        if (j > i) {
          // Smallest key in the subtree rooted at level[j].
          const Node* probe = level[j].get();
          while (!probe->leaf) probe = probe->children.front().get();
          parent->keys.push_back(probe->keys.front());
        }
        parent->children.push_back(std::move(level[j]));
      }
      parents.push_back(std::move(parent));
      i = end;
    }
    tree.node_count_ += static_cast<std::int64_t>(parents.size());
    level = std::move(parents);
    tree.height_ += 1;
  }
  tree.root_ = std::move(level.front());
  return tree;
}

BTreeLookupResult BPlusTree::Lookup(Key k) const {
  BTreeLookupResult res;
  const Node* node = root_.get();
  if (node == nullptr) return res;
  while (true) {
    res.nodes_visited += 1;
    if (node->leaf) {
      const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), k);
      res.comparisons += static_cast<std::int64_t>(
          std::max<std::ptrdiff_t>(1, it - node->keys.begin()));
      if (it != node->keys.end() && *it == k) {
        res.found = true;
        res.position =
            node->first_position + (it - node->keys.begin());
      }
      return res;
    }
    // Internal: child index = number of separators <= k.
    const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), k);
    res.comparisons += static_cast<std::int64_t>(
        std::max<std::ptrdiff_t>(1, it - node->keys.begin()));
    node = node->children[static_cast<std::size_t>(it - node->keys.begin())]
               .get();
  }
}

std::int64_t BPlusTree::BoundRank(Key k, bool upper,
                                  BTreeRangeResult* cost) const {
  const Node* node = root_.get();
  if (node == nullptr) return 0;
  while (true) {
    cost->nodes_visited += 1;
    if (node->leaf) {
      const auto it =
          upper ? std::upper_bound(node->keys.begin(), node->keys.end(), k)
                : std::lower_bound(node->keys.begin(), node->keys.end(), k);
      cost->comparisons += static_cast<std::int64_t>(
          std::max<std::ptrdiff_t>(1, it - node->keys.begin()));
      return node->first_position + (it - node->keys.begin());
    }
    // Internal: descend as Lookup does, so a bound past this subtree's
    // last key resolves in the rightmost reachable leaf (whose end rank
    // equals the next leaf's first_position).
    const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), k);
    cost->comparisons += static_cast<std::int64_t>(
        std::max<std::ptrdiff_t>(1, it - node->keys.begin()));
    node = node->children[static_cast<std::size_t>(it - node->keys.begin())]
               .get();
  }
}

BTreeRangeResult BPlusTree::RangeCount(Key lo, Key hi) const {
  BTreeRangeResult res;
  if (lo > hi || n_ == 0) return res;
  res.first = BoundRank(lo, /*upper=*/false, &res);
  const std::int64_t end = BoundRank(hi, /*upper=*/true, &res);
  res.count = end - res.first;
  return res;
}

}  // namespace lispoison
