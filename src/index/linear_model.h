// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// The two-parameter linear model f(k) = w*k + b, the storage- and
// compute-minimal building block the paper identifies as the reason LIS
// beats B-Trees (one multiply, one add, two stored parameters).

#ifndef LISPOISON_INDEX_LINEAR_MODEL_H_
#define LISPOISON_INDEX_LINEAR_MODEL_H_

#include <cmath>

#include "common/types.h"

namespace lispoison {

/// \brief A fitted linear model predicting rank from key.
struct LinearModel {
  double w = 0.0;  ///< Slope.
  double b = 0.0;  ///< Intercept.

  /// \brief Real-valued rank prediction f(k) = w*k + b.
  double Predict(Key k) const { return w * static_cast<double>(k) + b; }

  /// \brief Prediction rounded to the nearest integer rank and clamped to
  /// [lo, hi]; the index uses this as the probe position.
  Rank PredictClamped(Key k, Rank lo, Rank hi) const {
    const double p = std::llround(Predict(k));
    if (p < static_cast<double>(lo)) return lo;
    if (p > static_cast<double>(hi)) return hi;
    return static_cast<Rank>(p);
  }
};

}  // namespace lispoison

#endif  // LISPOISON_INDEX_LINEAR_MODEL_H_
