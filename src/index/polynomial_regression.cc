#include "index/polynomial_regression.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace lispoison {
namespace {

/// Solves the (d+1)x(d+1) normal equations A^T A c = A^T y by Gaussian
/// elimination with partial pivoting. Returns false when the system is
/// singular (fewer distinct x values than coefficients).
bool SolveNormalEquations(int degree, const long double ata_in[5][5],
                          const long double aty_in[5], double* out) {
  const int dim = degree + 1;
  long double aug[5][6];
  for (int i = 0; i < dim; ++i) {
    for (int j = 0; j < dim; ++j) aug[i][j] = ata_in[i][j];
    aug[i][dim] = aty_in[i];
  }
  for (int col = 0; col < dim; ++col) {
    int pivot = col;
    for (int row = col + 1; row < dim; ++row) {
      if (std::fabs(static_cast<double>(aug[row][col])) >
          std::fabs(static_cast<double>(aug[pivot][col]))) {
        pivot = row;
      }
    }
    for (int j = 0; j <= dim; ++j) std::swap(aug[col][j], aug[pivot][j]);
    if (std::fabs(static_cast<double>(aug[col][col])) < 1e-30) return false;
    for (int row = col + 1; row < dim; ++row) {
      const long double f = aug[row][col] / aug[col][col];
      for (int j = col; j <= dim; ++j) aug[row][j] -= f * aug[col][j];
    }
  }
  for (int i = dim - 1; i >= 0; --i) {
    long double acc = aug[i][dim];
    for (int j = i + 1; j < dim; ++j) {
      acc -= aug[i][j] * static_cast<long double>(out[j]);
    }
    out[i] = static_cast<double>(acc / aug[i][i]);
  }
  return true;
}

}  // namespace

Result<PolynomialFit> FitPolynomialCdf(const std::vector<Key>& keys,
                                       const std::vector<Rank>& ranks,
                                       int degree) {
  if (keys.empty()) {
    return Status::InvalidArgument("cannot fit a polynomial on no keys");
  }
  if (keys.size() != ranks.size()) {
    return Status::InvalidArgument("keys/ranks size mismatch");
  }
  if (degree < 1 || degree > 4) {
    return Status::InvalidArgument("degree must lie in [1, 4], got " +
                                   std::to_string(degree));
  }
  const auto [mn, mx] = std::minmax_element(keys.begin(), keys.end());
  const double lo = static_cast<double>(*mn);
  const double width = static_cast<double>(*mx - *mn);
  const double inv_width = width > 0 ? 1.0 / width : 1.0;

  PolynomialFit fit;
  fit.n = static_cast<std::int64_t>(keys.size());

  // Accumulate the normal equations for the requested degree; on a
  // singular system retry with a lower degree (e.g. two distinct keys
  // cannot support a cubic).
  for (int d = degree; d >= 1; --d) {
    long double ata[5][5] = {};
    long double aty[5] = {};
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const long double x =
          (static_cast<double>(keys[i]) - lo) * inv_width;
      long double pow_x[9];
      pow_x[0] = 1;
      for (int e = 1; e <= 2 * d; ++e) pow_x[e] = pow_x[e - 1] * x;
      for (int a = 0; a <= d; ++a) {
        for (int b = 0; b <= d; ++b) ata[a][b] += pow_x[a + b];
        aty[a] += pow_x[a] * static_cast<long double>(ranks[i]);
      }
    }
    double coef[5] = {};
    if (!SolveNormalEquations(d, ata, aty, coef)) continue;
    fit.model.degree = d;
    fit.model.lo = lo;
    fit.model.inv_width = inv_width;
    for (int i = 0; i <= d; ++i) {
      fit.model.coef[static_cast<std::size_t>(i)] = coef[i];
    }
    long double sse = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const long double err =
          static_cast<long double>(fit.model.Predict(keys[i])) -
          static_cast<long double>(ranks[i]);
      sse += err * err;
    }
    fit.mse = sse / static_cast<long double>(keys.size());
    return fit;
  }
  // Even degree 1 singular: all keys identical. Constant predictor.
  fit.model.degree = 1;
  fit.model.lo = lo;
  fit.model.inv_width = inv_width;
  long double mean_rank = 0;
  for (Rank r : ranks) mean_rank += static_cast<long double>(r);
  mean_rank /= static_cast<long double>(ranks.size());
  fit.model.coef[0] = static_cast<double>(mean_rank);
  fit.model.coef[1] = 0;
  long double sse = 0;
  for (Rank r : ranks) {
    const long double err = mean_rank - static_cast<long double>(r);
    sse += err * err;
  }
  fit.mse = sse / static_cast<long double>(ranks.size());
  return fit;
}

Result<PolynomialFit> FitPolynomialCdf(const KeySet& keyset, int degree) {
  std::vector<Rank> ranks;
  ranks.reserve(static_cast<std::size_t>(keyset.size()));
  for (Rank r = 1; r <= keyset.size(); ++r) ranks.push_back(r);
  return FitPolynomialCdf(keyset.keys(), ranks, degree);
}

}  // namespace lispoison
