// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Linear regression on the (non-normalized) CDF — Definition 1 and
// Theorem 1 of the paper. Keys are the X values, ranks 1..n the Y values;
// the closed-form least-squares solution and its minimized MSE are
// computed from exact integer aggregates.

#ifndef LISPOISON_INDEX_CDF_REGRESSION_H_
#define LISPOISON_INDEX_CDF_REGRESSION_H_

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"
#include "index/linear_model.h"

namespace lispoison {

/// \brief Result of fitting a linear regression on a CDF.
struct CdfFit {
  LinearModel model;     ///< Least-squares (w*, b*).
  long double mse = 0;   ///< Minimized loss L = Var_R - Cov^2_KR / Var_K.
  std::int64_t n = 0;    ///< Number of (key, rank) points fitted.
};

/// \brief Fits the closed-form linear regression of Theorem 1 on the
/// ranks 1..n of \p keyset. Fails on empty input; a single key or a
/// zero-variance keyset yields w=0 and b=MeanR with mse=Var_R.
Result<CdfFit> FitCdfRegression(const KeySet& keyset);

/// \brief Fits on explicit (key, rank) pairs; ranks need not be 1..n
/// (RMI second-stage models may use global ranks). Keys must be
/// non-empty; duplicates are allowed here (callers enforce their own
/// uniqueness invariants).
Result<CdfFit> FitCdfRegression(const std::vector<Key>& keys,
                                const std::vector<Rank>& ranks);

/// \brief Fits from pre-accumulated moments (used by the attack inner
/// loops, which maintain aggregates incrementally). Requires count > 0.
CdfFit FitFromMoments(const MomentAccumulator& acc);

/// \brief Evaluates the MSE of an arbitrary (not necessarily optimal)
/// linear model on (key, rank) pairs. Used by tests and the defense.
long double EvaluateMse(const LinearModel& model, const std::vector<Key>& keys,
                        const std::vector<Rank>& ranks);

}  // namespace lispoison

#endif  // LISPOISON_INDEX_CDF_REGRESSION_H_
