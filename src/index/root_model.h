// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// First-stage ("root") models for the two-stage RMI. The paper's RMI uses
// a small neural network at the root; since the attacks never target the
// root (Section V assumes it always routes to the correct second-stage
// model), we provide an exact Oracle router reproducing that assumption
// plus three learned routers — linear, cubic, and a monotone
// piecewise-linear spline (the function class a small ReLU net realizes)
// — so routing error can be measured as an extension.

#ifndef LISPOISON_INDEX_ROOT_MODEL_H_
#define LISPOISON_INDEX_ROOT_MODEL_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Which first-stage model the RMI uses.
enum class RootModelKind {
  kOracle,           ///< Always routes correctly (paper's assumption in §V).
  kLinear,           ///< Single linear regression on the CDF.
  kCubic,            ///< Cubic least-squares regression on the CDF.
  kPiecewiseLinear,  ///< Monotone piecewise-linear CDF approximation.
};

/// \brief Interface: maps a key to a real-valued estimate of its rank in
/// the full keyset; the RMI converts that estimate into a second-stage
/// model index.
class RootModel {
 public:
  virtual ~RootModel() = default;

  /// \brief Estimated rank (1-based, unclamped) of \p k in the trained
  /// keyset.
  virtual double EstimateRank(Key k) const = 0;

  /// \brief Storage cost in doubles, for the memory-accounting bench.
  virtual std::int64_t ParameterCount() const = 0;
};

/// \brief Trains a root model of the requested kind on \p keyset.
/// \p segments controls the piecewise-linear resolution (ignored by the
/// other kinds).
Result<std::unique_ptr<RootModel>> TrainRootModel(RootModelKind kind,
                                                  const KeySet& keyset,
                                                  std::int64_t segments = 64);

}  // namespace lispoison

#endif  // LISPOISON_INDEX_ROOT_MODEL_H_
