// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// TRIM-style trimmed regression adapted to CDFs, implementing the defense
// the paper discusses (and predicts to struggle) in Section VI. Classic
// TRIM alternately fits the model on the lowest-residual subset and
// re-selects that subset. On a CDF the wrinkle the paper highlights is
// that removing a key changes the rank of every larger key, so the
// defense must re-rank the kept subset on every iteration.

#ifndef LISPOISON_DEFENSE_TRIM_H_
#define LISPOISON_DEFENSE_TRIM_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Options for the TRIM-for-CDF defense.
struct TrimOptions {
  /// Fraction of keys assumed poisoned; the defense keeps
  /// n_keep = round((1 - assumed_poison_fraction) * n) keys.
  double assumed_poison_fraction = 0.10;

  /// Maximum alternating iterations before giving up on convergence.
  std::int64_t max_iterations = 64;
};

/// \brief Result of running the defense over a (possibly poisoned)
/// keyset.
struct TrimResult {
  /// Keys the defense kept (sorted); the sanitized training set.
  std::vector<Key> kept_keys;
  /// Keys the defense removed, flagged as suspected poison.
  std::vector<Key> removed_keys;
  /// MSE of the regression trained on the kept keys (re-ranked 1..|kept|).
  long double trimmed_loss = 0;
  /// Iterations until the kept set stabilized.
  std::int64_t iterations = 0;
  bool converged = false;
};

/// \brief Runs iterative trimmed regression with CDF re-ranking on
/// \p keyset. Fails on empty input or when the options would keep
/// fewer than two keys.
Result<TrimResult> TrimDefense(const KeySet& keyset,
                               const TrimOptions& options = {});

/// \brief Quality of a defense run against known ground truth:
/// how many true poison keys were removed and how many legitimate keys
/// were lost as collateral.
struct DefenseQuality {
  std::int64_t true_positives = 0;   ///< Poison keys removed.
  std::int64_t false_positives = 0;  ///< Legitimate keys removed.
  std::int64_t false_negatives = 0;  ///< Poison keys kept.
  double precision = 0;
  double recall = 0;
};

/// \brief Scores \p removed against the ground-truth \p poison_keys.
DefenseQuality ScoreDefense(const std::vector<Key>& removed,
                            const std::vector<Key>& poison_keys);

}  // namespace lispoison

#endif  // LISPOISON_DEFENSE_TRIM_H_
