#include "defense/filters.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace lispoison {

std::vector<Key> RangeFilter(std::vector<Key>* keys, Key lo, Key hi) {
  std::vector<Key> removed;
  auto new_end = std::remove_if(keys->begin(), keys->end(), [&](Key k) {
    if (k < lo || k > hi) {
      removed.push_back(k);
      return true;
    }
    return false;
  });
  keys->erase(new_end, keys->end());
  return removed;
}

std::vector<Key> IqrOutlierFilter(std::vector<Key>* keys, double k) {
  if (keys->size() < 4) return {};
  std::vector<double> sorted(keys->begin(), keys->end());
  std::sort(sorted.begin(), sorted.end());
  const double q1 = Quantile(sorted, 0.25);
  const double q3 = Quantile(sorted, 0.75);
  const double iqr = q3 - q1;
  const double lo = q1 - k * iqr;
  const double hi = q3 + k * iqr;
  std::vector<Key> removed;
  auto new_end = std::remove_if(keys->begin(), keys->end(), [&](Key key) {
    const double v = static_cast<double>(key);
    if (v < lo || v > hi) {
      removed.push_back(key);
      return true;
    }
    return false;
  });
  keys->erase(new_end, keys->end());
  return removed;
}

std::vector<Key> DensitySpikeFilter(std::vector<Key>* keys, KeyDomain domain,
                                    std::int64_t num_windows, double factor) {
  if (keys->empty() || num_windows < 1 || domain.size() <= 0) return {};
  const long double width =
      static_cast<long double>(domain.size()) /
      static_cast<long double>(num_windows);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_windows), 0);
  auto window_of = [&](Key k) {
    std::int64_t w = static_cast<std::int64_t>(
        static_cast<long double>(k - domain.lo) / width);
    if (w < 0) w = 0;
    if (w >= num_windows) w = num_windows - 1;
    return w;
  };
  for (Key k : *keys) counts[static_cast<std::size_t>(window_of(k))] += 1;
  const double avg = static_cast<double>(keys->size()) /
                     static_cast<double>(num_windows);
  std::vector<Key> removed;
  auto new_end = std::remove_if(keys->begin(), keys->end(), [&](Key k) {
    const auto w = static_cast<std::size_t>(window_of(k));
    if (static_cast<double>(counts[w]) > factor * avg) {
      removed.push_back(k);
      return true;
    }
    return false;
  });
  keys->erase(new_end, keys->end());
  return removed;
}

}  // namespace lispoison
