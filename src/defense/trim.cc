#include "defense/trim.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "common/stats.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

/// Fits the CDF regression on `keys` (sorted) with ranks 1..n and returns
/// the fit; keys shifted for exact arithmetic.
CdfFit FitSorted(const std::vector<Key>& keys) {
  MomentAccumulator acc;
  const Key shift = keys.front();
  Rank r = 1;
  for (Key k : keys) acc.Add(k - shift, r++);
  return FitFromMoments(acc);
}

}  // namespace

Result<TrimResult> TrimDefense(const KeySet& keyset,
                               const TrimOptions& options) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot run TRIM on an empty keyset");
  }
  if (options.assumed_poison_fraction < 0 ||
      options.assumed_poison_fraction >= 1) {
    return Status::InvalidArgument(
        "assumed_poison_fraction must lie in [0, 1)");
  }
  const std::int64_t n = keyset.size();
  const std::int64_t n_keep = static_cast<std::int64_t>(std::llround(
      (1.0 - options.assumed_poison_fraction) * static_cast<double>(n)));
  if (n_keep < 2) {
    return Status::InvalidArgument(
        "TRIM would keep fewer than two keys; lower the assumed fraction");
  }

  // Start from the full set; alternate (fit on kept, re-rank, keep the
  // n_keep lowest-residual keys) until the kept set stabilizes.
  std::vector<Key> kept = keyset.keys();
  TrimResult result;
  for (std::int64_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const CdfFit fit = FitSorted(kept);
    const Key shift = kept.front();

    // Residual of every original key against the model, using the rank
    // it would have within the *kept* set (CDF re-ranking).
    struct Scored {
      Key key;
      long double residual;
    };
    std::vector<Scored> scored;
    scored.reserve(static_cast<std::size_t>(n));
    for (Key k : keyset.keys()) {
      const auto it = std::lower_bound(kept.begin(), kept.end(), k);
      // Rank within kept: position + 1 (if k itself is kept this is its
      // rank; otherwise the rank it would take).
      const Rank rank = static_cast<Rank>(it - kept.begin()) + 1;
      const long double pred =
          static_cast<long double>(fit.model.w) *
              static_cast<long double>(k - shift) +
          static_cast<long double>(fit.model.b);
      const long double res = pred - static_cast<long double>(rank);
      scored.push_back({k, res * res});
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const Scored& a, const Scored& b) {
                       return a.residual < b.residual;
                     });
    std::vector<Key> next;
    next.reserve(static_cast<std::size_t>(n_keep));
    for (std::int64_t i = 0; i < n_keep; ++i) {
      next.push_back(scored[static_cast<std::size_t>(i)].key);
    }
    std::sort(next.begin(), next.end());
    if (next == kept) {
      result.converged = true;
      break;
    }
    kept = std::move(next);
  }

  const CdfFit final_fit = FitSorted(kept);
  result.trimmed_loss = final_fit.mse;
  std::unordered_set<Key> kept_set(kept.begin(), kept.end());
  for (Key k : keyset.keys()) {
    if (!kept_set.count(k)) result.removed_keys.push_back(k);
  }
  result.kept_keys = std::move(kept);
  return result;
}

DefenseQuality ScoreDefense(const std::vector<Key>& removed,
                            const std::vector<Key>& poison_keys) {
  DefenseQuality q;
  const std::set<Key> poison(poison_keys.begin(), poison_keys.end());
  for (Key k : removed) {
    if (poison.count(k)) {
      q.true_positives += 1;
    } else {
      q.false_positives += 1;
    }
  }
  q.false_negatives =
      static_cast<std::int64_t>(poison.size()) - q.true_positives;
  const std::int64_t flagged = q.true_positives + q.false_positives;
  q.precision = flagged ? static_cast<double>(q.true_positives) /
                              static_cast<double>(flagged)
                        : 0.0;
  q.recall = poison.empty() ? 0.0
                            : static_cast<double>(q.true_positives) /
                                  static_cast<double>(poison.size());
  return q;
}

}  // namespace lispoison
