// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Simple sanitization filters — the mitigations the paper's attack is
// explicitly designed to evade (Section IV-C restricts poisoning keys to
// the interior of the legitimate range precisely so that range and
// outlier filters see nothing anomalous). Implemented so the defense
// bench can demonstrate that evasion quantitatively.

#ifndef LISPOISON_DEFENSE_FILTERS_H_
#define LISPOISON_DEFENSE_FILTERS_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Removes keys outside [lo, hi]; returns the removed keys.
std::vector<Key> RangeFilter(std::vector<Key>* keys, Key lo, Key hi);

/// \brief Tukey-fence outlier filter: removes keys outside
/// [q1 - k*IQR, q3 + k*IQR] of the key values. Returns removed keys.
std::vector<Key> IqrOutlierFilter(std::vector<Key>* keys, double k = 1.5);

/// \brief Local-density spike filter: flags keys lying in windows whose
/// empirical density exceeds \p factor times the global average (the
/// only signature CDF poisoning leaves, since greedy poisons cluster in
/// already-dense regions — expect heavy collateral damage on legitimate
/// dense data). Window width is domain_size / num_windows.
std::vector<Key> DensitySpikeFilter(std::vector<Key>* keys, KeyDomain domain,
                                    std::int64_t num_windows, double factor);

}  // namespace lispoison

#endif  // LISPOISON_DEFENSE_FILTERS_H_
