// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Shared experiment runners behind the per-figure bench binaries and the
// integration tests. Each runner reproduces one figure's parameter grid
// and returns the aggregated series (boxplots of Ratio Loss over trials
// or over second-stage models), leaving presentation to the caller.

#ifndef LISPOISON_EVAL_EXPERIMENTS_H_
#define LISPOISON_EVAL_EXPERIMENTS_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"

namespace lispoison {

/// \brief Key distribution choices for the synthetic experiments.
enum class KeyDistribution {
  kUniform,    ///< Figs. 5 and 6 (rows 1-2).
  kLogNormal,  ///< Fig. 6 (rows 3-4), mu=0 sigma=2 as in Kraska et al.
  kNormal,     ///< Fig. 8, mu=(a+b)/2 sigma=(b-a)/3.
};

// ---------------------------------------------------------------------------
// Figures 5 and 8: multi-point poisoning of one linear regression model.
// ---------------------------------------------------------------------------

/// \brief Parameter grid for the single-model poisoning experiments.
struct LinearGridConfig {
  std::vector<std::int64_t> key_counts = {100, 1000, 10000};
  std::vector<double> densities = {0.2, 0.5, 0.8};
  /// Poisoning percentages (of n), the X axis of each boxplot.
  std::vector<double> poison_pcts = {2, 4, 6, 8, 10, 12, 14};
  std::int64_t trials = 20;
  KeyDistribution distribution = KeyDistribution::kUniform;
  std::uint64_t seed = 42;
};

/// \brief One grid cell: a boxplot of Ratio Loss over the trials.
struct LinearGridCell {
  std::int64_t keys = 0;
  double density = 0;
  std::int64_t key_domain = 0;
  double poison_pct = 0;
  BoxplotSummary ratio_loss;
};

/// \brief Runs the Fig. 5 (uniform) / Fig. 8 (normal) grid.
Result<std::vector<LinearGridCell>> RunLinearPoisonGrid(
    const LinearGridConfig& config);

// ---------------------------------------------------------------------------
// Figure 6: RMI poisoning on synthetic keysets.
// ---------------------------------------------------------------------------

/// \brief One Fig. 6 panel: a fixed (keys, model size, domain,
/// distribution) architecture swept over poisoning percentages and alpha.
struct RmiSyntheticConfig {
  std::int64_t keys = 100000;        ///< Paper: 10^7 (scaled by default).
  std::int64_t model_size = 1000;    ///< Paper: 10^2, 10^3, 10^4.
  std::int64_t key_domain = 500000000;  ///< Paper: 5*10^7 or 10^9.
  std::vector<double> poison_pcts = {1, 5, 10};
  std::vector<double> alphas = {2, 3};
  KeyDistribution distribution = KeyDistribution::kUniform;
  std::uint64_t seed = 42;
  /// Worker threads for the parallel attack phases (0 = hardware);
  /// results are thread-count independent.
  int num_threads = 0;
};

/// \brief One point of an RMI experiment series.
struct RmiExperimentCell {
  double poison_pct = 0;
  double alpha = 0;
  /// Boxplot of per-second-stage-model Ratio Loss (the paper's boxes).
  BoxplotSummary per_model_ratio;
  /// Ratio of L_RMI poisoned / clean (the paper's black line).
  double rmi_ratio = 0;
  /// Victim-side check: ratio after retraining on the re-partitioned
  /// poisoned keyset.
  double retrained_rmi_ratio = 0;
  /// Greedy volume-allocation exchanges applied.
  std::int64_t exchanges = 0;
};

/// \brief Runs one Fig. 6 panel.
Result<std::vector<RmiExperimentCell>> RunRmiSynthetic(
    const RmiSyntheticConfig& config);

// ---------------------------------------------------------------------------
// Figure 7: RMI poisoning on the real-data surrogates.
// ---------------------------------------------------------------------------

/// \brief Which real-world surrogate to attack.
enum class RealDataset {
  kMiamiSalaries,
  kOsmLatitudes,
};

/// \brief One Fig. 7 panel: a dataset and a second-stage model size,
/// swept over poisoning percentages at fixed alpha = 3.
struct RmiRealConfig {
  RealDataset dataset = RealDataset::kMiamiSalaries;
  /// Scale the dataset down for quick runs; <= 0 keeps the paper's n.
  std::int64_t n_override = 0;
  std::int64_t model_size = 100;  ///< Paper: 50, 100, 200.
  std::vector<double> poison_pcts = {5, 10, 20};
  double alpha = 3.0;
  std::uint64_t seed = 42;
  /// Worker threads for the parallel attack phases (0 = hardware);
  /// results are thread-count independent.
  int num_threads = 0;
};

/// \brief Runs one Fig. 7 panel; reuses RmiExperimentCell (alpha fixed).
Result<std::vector<RmiExperimentCell>> RunRmiReal(const RmiRealConfig& config);

}  // namespace lispoison

#endif  // LISPOISON_EVAL_EXPERIMENTS_H_
