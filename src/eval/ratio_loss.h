// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// The paper's evaluation metric (Section III-C): Ratio Loss — the MSE of
// the model trained on the poisoned keyset divided by the MSE of the
// model trained on the legitimate keyset. Implementation-independent by
// design, since the original authors' optimized timing code is not
// public.

#ifndef LISPOISON_EVAL_RATIO_LOSS_H_
#define LISPOISON_EVAL_RATIO_LOSS_H_

#include "attack/single_point.h"
#include "common/status.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Computes the Ratio Loss between an explicit poisoned keyset and
/// the legitimate keyset by retraining the linear regression on both.
/// (For attack results, prefer the precomputed fields on the result
/// structs; this helper exists for externally supplied poison sets.)
Result<double> ComputeRatioLoss(const KeySet& legitimate,
                                const KeySet& poisoned);

}  // namespace lispoison

#endif  // LISPOISON_EVAL_RATIO_LOSS_H_
