#include "eval/experiments.h"

#include <cmath>
#include <string>

#include "attack/greedy_poisoner.h"
#include "attack/rmi_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/surrogates.h"

namespace lispoison {
namespace {

Result<KeySet> Generate(KeyDistribution dist, std::int64_t n, KeyDomain domain,
                        Rng* rng) {
  switch (dist) {
    case KeyDistribution::kUniform:
      return GenerateUniform(n, domain, rng);
    case KeyDistribution::kLogNormal:
      return GenerateLogNormal(n, domain, rng);
    case KeyDistribution::kNormal:
      return GenerateNormal(n, domain, rng);
  }
  return Status::InvalidArgument("unknown key distribution");
}

}  // namespace

Result<std::vector<LinearGridCell>> RunLinearPoisonGrid(
    const LinearGridConfig& config) {
  if (config.trials < 1) {
    return Status::InvalidArgument("trials must be >= 1");
  }
  std::vector<LinearGridCell> cells;
  Rng master(config.seed);
  for (const std::int64_t n : config.key_counts) {
    for (const double density : config.densities) {
      if (density <= 0 || density > 1) {
        return Status::InvalidArgument("density must lie in (0, 1]");
      }
      const std::int64_t m = static_cast<std::int64_t>(
          std::llround(static_cast<double>(n) / density));
      const KeyDomain domain{0, m - 1};
      for (const double pct : config.poison_pcts) {
        const std::int64_t p = static_cast<std::int64_t>(
            std::floor(static_cast<double>(n) * pct / 100.0));
        if (p < 1) {
          return Status::InvalidArgument(
              "poisoning percentage " + std::to_string(pct) +
              "% yields zero keys for n=" + std::to_string(n));
        }
        std::vector<double> ratios;
        ratios.reserve(static_cast<std::size_t>(config.trials));
        for (std::int64_t t = 0; t < config.trials; ++t) {
          Rng trial_rng = master.Fork(
              static_cast<std::uint64_t>(cells.size() * 1000 + t));
          LISPOISON_ASSIGN_OR_RETURN(
              KeySet keyset,
              Generate(config.distribution, n, domain, &trial_rng));
          LISPOISON_ASSIGN_OR_RETURN(GreedyPoisonResult attack,
                                     GreedyPoisonCdf(keyset, p));
          ratios.push_back(attack.RatioLoss());
        }
        LinearGridCell cell;
        cell.keys = n;
        cell.density = density;
        cell.key_domain = m;
        cell.poison_pct = pct;
        cell.ratio_loss = ComputeBoxplot(std::move(ratios));
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

Result<std::vector<RmiExperimentCell>> RunRmiSynthetic(
    const RmiSyntheticConfig& config) {
  std::vector<RmiExperimentCell> cells;
  Rng master(config.seed);
  const KeyDomain domain{0, config.key_domain - 1};
  std::uint64_t stream = 0;
  for (const double alpha : config.alphas) {
    for (const double pct : config.poison_pcts) {
      Rng rng = master.Fork(stream++);
      LISPOISON_ASSIGN_OR_RETURN(
          KeySet keyset,
          Generate(config.distribution, config.keys, domain, &rng));
      RmiAttackOptions options;
      options.poison_fraction = pct / 100.0;
      options.model_size = config.model_size;
      options.alpha = alpha;
      options.num_threads = config.num_threads;
      LISPOISON_ASSIGN_OR_RETURN(RmiAttackResult attack,
                                 PoisonRmi(keyset, options));
      RmiExperimentCell cell;
      cell.poison_pct = pct;
      cell.alpha = alpha;
      cell.per_model_ratio = ComputeBoxplot(
          std::vector<double>(attack.per_model_ratio.begin(),
                              attack.per_model_ratio.end()));
      cell.rmi_ratio = attack.rmi_ratio_loss;
      cell.retrained_rmi_ratio = attack.retrained_rmi_ratio;
      cell.exchanges = attack.exchanges_applied;
      cells.push_back(cell);
    }
  }
  return cells;
}

Result<std::vector<RmiExperimentCell>> RunRmiReal(const RmiRealConfig& config) {
  std::vector<RmiExperimentCell> cells;
  Rng master(config.seed);
  std::uint64_t stream = 0;
  for (const double pct : config.poison_pcts) {
    Rng rng = master.Fork(stream++);
    Result<KeySet> keyset_or =
        config.dataset == RealDataset::kMiamiSalaries
            ? MakeMiamiSalariesSurrogate(&rng, config.n_override)
            : MakeOsmLatitudesSurrogate(&rng, config.n_override);
    if (!keyset_or.ok()) return keyset_or.status();
    RmiAttackOptions options;
    options.poison_fraction = pct / 100.0;
    options.model_size = config.model_size;
    options.alpha = config.alpha;
    options.num_threads = config.num_threads;
    LISPOISON_ASSIGN_OR_RETURN(RmiAttackResult attack,
                               PoisonRmi(*keyset_or, options));
    RmiExperimentCell cell;
    cell.poison_pct = pct;
    cell.alpha = config.alpha;
    cell.per_model_ratio = ComputeBoxplot(
        std::vector<double>(attack.per_model_ratio.begin(),
                            attack.per_model_ratio.end()));
    cell.rmi_ratio = attack.rmi_ratio_loss;
    cell.retrained_rmi_ratio = attack.retrained_rmi_ratio;
    cell.exchanges = attack.exchanges_applied;
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace lispoison
