#include "eval/ratio_loss.h"

#include "index/cdf_regression.h"

namespace lispoison {

Result<double> ComputeRatioLoss(const KeySet& legitimate,
                                const KeySet& poisoned) {
  LISPOISON_ASSIGN_OR_RETURN(CdfFit base, FitCdfRegression(legitimate));
  LISPOISON_ASSIGN_OR_RETURN(CdfFit pois, FitCdfRegression(poisoned));
  return SafeRatioLoss(pois.mse, base.mse);
}

}  // namespace lispoison
