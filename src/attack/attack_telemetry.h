// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Shared attack-engine telemetry wiring: both greedy drivers (the
// single-model GreedyPoisonCdf loop and PoisonRmi's per-model
// GreedyInsertOne) stream each committed argmax round's ArgmaxStats
// deltas into the process-wide `attack.*` counters, so a
// TelemetrySampler can plot the attack's work profile — exact vs bound
// evaluations, pruning yield — as a per-interval time series next to
// the serving metrics. Internal header (not part of the public attack
// API).

#ifndef LISPOISON_ATTACK_ATTACK_TELEMETRY_H_
#define LISPOISON_ATTACK_ATTACK_TELEMETRY_H_

#include "attack/loss_landscape.h"
#include "common/telemetry.h"

namespace lispoison {
namespace attack_internal {

/// Cached attack-engine counters (process-lived registry instruments).
struct AttackTelemetry {
  TelemetryCounter* rounds;
  TelemetryCounter* exact_evals;
  TelemetryCounter* bound_evals;
  TelemetryCounter* pruned_gaps;
  TelemetryCounter* cached_bounds;

  static const AttackTelemetry& Get() {
    static const AttackTelemetry tl = [] {
      TelemetryRegistry& r = TelemetryRegistry::Global();
      return AttackTelemetry{r.GetCounter("attack.rounds"),
                             r.GetCounter("attack.exact_evals"),
                             r.GetCounter("attack.bound_evals"),
                             r.GetCounter("attack.pruned_gaps"),
                             r.GetCounter("attack.cached_bounds")};
    }();
    return tl;
  }

  /// Adds one round's movement: \p cur minus \p prev, field by field.
  void AddDelta(const LossLandscape::ArgmaxStats& cur,
                const LossLandscape::ArgmaxStats& prev) const {
    rounds->Add(cur.rounds - prev.rounds);
    exact_evals->Add(cur.exact_evals - prev.exact_evals);
    bound_evals->Add(cur.bound_evals - prev.bound_evals);
    pruned_gaps->Add(cur.pruned_gaps - prev.pruned_gaps);
    cached_bounds->Add(cur.cached_bounds - prev.cached_bounds);
  }
};

}  // namespace attack_internal
}  // namespace lispoison

#endif  // LISPOISON_ATTACK_ATTACK_TELEMETRY_H_
