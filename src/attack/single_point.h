// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// The optimal single-point poisoning attack of Section IV-C: find the
// unoccupied key whose insertion maximizes the minimized regression loss,
// in time linear in the number of legitimate keys (gap-endpoint
// enumeration justified by the per-gap convexity of Theorem 2).

#ifndef LISPOISON_ATTACK_SINGLE_POINT_H_
#define LISPOISON_ATTACK_SINGLE_POINT_H_

#include <memory>

#include "attack/loss_landscape.h"
#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

class ThreadPool;

/// \brief Attack-wide knobs shared by the single- and multi-point
/// attacks.
struct AttackOptions {
  /// Restrict poisoning keys to lie strictly between the smallest and
  /// largest legitimate key (the paper's default, which keeps the attack
  /// invisible to out-of-range and outlier filters).
  bool interior_only = true;

  /// Worker threads for the greedy argmax scan over gap ranges.
  /// 0 means one per hardware thread; 1 or any negative value runs the
  /// serial scan. The selected poison sequence is bit-identical for
  /// every value (chunked fixed-order reduction; see
  /// LossLandscape::FindOptimal).
  int num_threads = 1;

  /// Branch-and-bound pruning of the per-round argmax: a double-
  /// precision pre-pass bounds every gap's loss from above, only the
  /// top-K bounds plus the gaps whose bound beats the running best are
  /// evaluated exactly. Bit-identical to the exhaustive scan for every
  /// setting (the bound is admissible, with an exhaustive fallback when
  /// it is not provably so); off buys nothing but the reference
  /// evaluation counts.
  bool prune_argmax = true;

  /// Tiered incremental pre-pass: score one admissible bound per
  /// ~sqrt(G)-gap tier (from the per-tier aggregates the gap structure
  /// maintains across insertions) and re-score gaps individually only
  /// inside tiers whose box bound reaches the running best, instead of
  /// re-scoring all O(G) gaps every round. Bit-identical results either
  /// way; off restores the per-round full pre-pass. Only meaningful
  /// with prune_argmax.
  bool cache_argmax = true;

  /// Gaps exactly re-checked up front when pruning (seed of the
  /// branch-and-bound running best); the tiered scan seeds from the
  /// per-tier bound maxima instead.
  std::int64_t argmax_top_k = 16;

  /// \brief The LossLandscape-level view of the argmax knobs.
  LossLandscape::ArgmaxOptions ArgmaxKnobs() const {
    LossLandscape::ArgmaxOptions knobs;
    knobs.prune = prune_argmax;
    knobs.cache = cache_argmax;
    knobs.top_k = argmax_top_k;
    return knobs;
  }
};

/// \brief Result of the optimal single-point attack.
struct SinglePointResult {
  Key poison_key = 0;            ///< The loss-maximizing insertion.
  long double base_loss = 0;     ///< MSE before poisoning.
  long double poisoned_loss = 0; ///< MSE after inserting poison_key.

  /// \brief The paper's Ratio Loss; +inf when base_loss is zero and the
  /// poisoned loss is positive, 1 when both are zero.
  double RatioLoss() const;
};

/// \brief Finds the optimal single poisoning key for \p keyset in O(n).
///
/// Fails with InvalidArgument for empty keysets and ResourceExhausted
/// when no unoccupied candidate key exists in the allowed range.
Result<SinglePointResult> OptimalSinglePoint(const KeySet& keyset,
                                             const AttackOptions& options = {});

/// \brief Shared helper: safe ratio-loss division used by every attack
/// result type.
double SafeRatioLoss(long double poisoned, long double base);

/// \brief One thread pool shared across an attack's rounds, per the
/// AttackOptions::num_threads contract: nullptr (serial) for 1 or any
/// negative value, a pool sized by the setting otherwise (0 = one
/// worker per hardware thread).
std::unique_ptr<ThreadPool> MakeAttackPool(const AttackOptions& options);

}  // namespace lispoison

#endif  // LISPOISON_ATTACK_SINGLE_POINT_H_
