// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Extension (paper §VI, future directions): adversaries with limited
// knowledge of the training data. The white-box attacks assume the
// attacker knows the full keyset K; here the attacker only observes a
// random fraction of K (e.g. the slice of records it contributed or
// scraped), plans the greedy attack against that sample, and we measure
// how well the damage transfers to the model the victim actually
// trains on the full poisoned keyset.

#ifndef LISPOISON_ATTACK_PARTIAL_KNOWLEDGE_H_
#define LISPOISON_ATTACK_PARTIAL_KNOWLEDGE_H_

#include <vector>

#include "attack/single_point.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Outcome of the partial-knowledge attack.
struct PartialKnowledgeResult {
  /// Keys the attacker observed (its sample of K).
  std::int64_t observed_keys = 0;
  /// Poisoning keys planned against the sample. Keys colliding with
  /// unobserved legitimate keys are dropped at injection time (the
  /// index rejects duplicates), so this may exceed injected_keys.
  std::vector<Key> planned_keys;
  /// Poisoning keys actually injected (planned minus collisions).
  std::vector<Key> injected_keys;
  /// Loss of the victim model trained on the clean full keyset.
  long double base_loss = 0;
  /// Loss the attacker *predicted* on its sample (sample ∪ P).
  long double predicted_loss = 0;
  /// Loss of the victim model trained on the full poisoned keyset.
  long double achieved_loss = 0;

  /// \brief Damage actually achieved on the victim.
  double AchievedRatioLoss() const {
    return SafeRatioLoss(achieved_loss, base_loss);
  }
};

/// \brief Options for the partial-knowledge attack.
struct PartialKnowledgeOptions {
  /// Fraction of K the attacker observes, in (0, 1].
  double observe_fraction = 0.5;
  /// Poisoning budget as a fraction of the *true* n (the attacker
  /// scales its sample budget accordingly).
  double poison_fraction = 0.10;
  AttackOptions attack;
};

/// \brief Runs the greedy attack with partial knowledge: samples
/// observe_fraction of K with \p rng, plans Algorithm 1 against the
/// sample, injects the surviving keys into the full keyset, and
/// retrains the victim. Fails on degenerate inputs (empty keyset,
/// fraction out of range, zero effective budget).
Result<PartialKnowledgeResult> PoisonWithPartialKnowledge(
    const KeySet& keyset, const PartialKnowledgeOptions& options, Rng* rng);

}  // namespace lispoison

#endif  // LISPOISON_ATTACK_PARTIAL_KNOWLEDGE_H_
