// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// The "loss as a sequence" view of Section IV: for a fixed legitimate
// keyset K, the minimized regression loss after inserting one poisoning
// key kp is a function L(kp) over the unoccupied keys of the domain.
// LossLandscape precomputes exact prefix aggregates over K so L(kp) can
// be evaluated in O(1) for any candidate — the engine behind both the
// optimal single-point attack (gap-endpoint enumeration, Theorem 2) and
// the full-domain sweeps of Fig. 3.
//
// Unlike the original rebuild-per-round engine, this landscape is
// *incrementally updatable*: InsertKey commits a poisoning key in
// O(log n) aggregate work (plus an O(p) sorted-overlay insert, p =
// number of inserted keys), after which every query reflects the
// enlarged keyset exactly — bit-identical to a fresh landscape built on
// the combined keys. The greedy multi-point attacks exploit this to
// skip the per-round KeySet/landscape reconstruction entirely.
//
// Invariants of the incremental representation:
//  - base_keys_ (the Create-time keys) never change; their prefix sums
//    are a static array.
//  - inserted keys live in a sorted overlay plus a Fenwick tree indexed
//    by *base slot* (the base-key gap an inserted key falls into), so
//    prefix key-sums at any candidate stay O(log n).
//  - gaps_ is the maximal-unoccupied-interval decomposition of the
//    domain; an insertion splits exactly the gap containing it, and no
//    gap ever contains a key, so each gap's count of base keys below it
//    is immutable.
//  - all aggregate arithmetic is exact 128-bit; shifting keys by the
//    smallest Create-time key keeps magnitudes safe, and the final
//    Theorem 1 ratio is shift-invariant bit-for-bit because the
//    variance/covariance numerators are shift-invariant in exact
//    integer arithmetic.
//
// The per-round argmax over gap endpoints additionally supports a
// branch-and-bound pruned scan (ArgmaxOptions): a double-precision
// pre-pass scores every gap against an admissible upper bound on the
// exact loss, only the top-K bounds plus the gaps whose bound beats the
// running best are re-checked exactly, and the scan exits once every
// remaining bound is below the best. The bound provably dominates the
// exact evaluation (directed-rounding error margins), so the selected
// candidate stays bit-identical to the exhaustive scan; when the bound
// context is not admissible the scan falls back to exhaustive.

#ifndef LISPOISON_ATTACK_LOSS_LANDSCAPE_H_
#define LISPOISON_ATTACK_LOSS_LANDSCAPE_H_

#include <unordered_set>
#include <utility>
#include <vector>

#include "common/fenwick.h"
#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

class ThreadPool;

/// \brief Exact O(1) evaluator of the post-insertion minimized loss
/// L(kp) = min_{w,b} MSE(K ∪ {kp}) for any candidate poisoning key,
/// with O(log n) incremental commits via InsertKey.
///
/// The compound effect of CDF poisoning (every legitimate key above kp
/// has its rank shifted by one) is folded into the aggregates: with
/// c = |{k in K : k < kp}| keys below the candidate,
///
///   sum(X)   = sum(K) + kp
///   sum(X^2) = sum(K^2) + kp^2
///   sum(XY)  = sum_i k_i * r_i + SuffixKeySum(c) + kp * (c + 1)
///   sum(Y), sum(Y^2) depend only on n (ranks are a permutation of
///   1..n+1).
class LossLandscape {
 public:
  /// \brief Builds the landscape over \p keyset. Requires >= 1 key.
  static Result<LossLandscape> Create(const KeySet& keyset);

  /// \brief The loss of the unpoisoned regression on the *current* keys
  /// (base keys plus everything committed through InsertKey).
  long double BaseLoss() const { return base_loss_; }

  /// \brief Current number of keys n (base + inserted).
  std::int64_t size() const { return n_; }

  /// \brief The key domain of the underlying keyset.
  const KeyDomain& domain() const { return domain_; }

  /// \brief Smallest / largest current key.
  Key min_key() const { return min_key_; }
  Key max_key() const { return max_key_; }

  /// \brief Second-smallest / second-largest current key. Requires
  /// size() >= 2. Used by the RMI exchange simulation, which evaluates
  /// the landscape with one boundary key hypothetically removed.
  Key SecondMinKey() const;
  Key SecondMaxKey() const;

  /// \brief Commits poisoning key \p kp into the landscape: all
  /// aggregates, the gap decomposition, and BaseLoss() now describe the
  /// enlarged keyset, exactly as if the landscape had been rebuilt.
  ///
  /// Fails with OutOfRange outside the domain and InvalidArgument when
  /// kp is occupied. Cost O(log n) aggregate work + O(p) overlay insert
  /// + O(G) gap-vector splice.
  Status InsertKey(Key kp);

  /// \brief L(kp): minimized MSE of the regression trained on the
  /// current keys plus kp.
  ///
  /// Fails with InvalidArgument when kp is occupied (the paper's ⊥ case)
  /// and OutOfRange when kp lies outside the domain.
  Result<long double> LossAt(Key kp) const;

  /// \brief Candidate keys per Theorem 2: the first and last unoccupied
  /// key of every maximal gap. With \p interior_only (the paper's
  /// default) only gaps strictly between min and max of the current keys
  /// are considered, excluding out-of-range/outlier insertions that
  /// simple defenses would catch.
  std::vector<Key> GapEndpoints(bool interior_only) const;

  /// \brief Evaluates L at every unoccupied key (optionally interior
  /// only), in increasing key order — the Fig. 3 sweep and the
  /// brute-force oracle. Cost O(m + n).
  std::vector<std::pair<Key, long double>> Sweep(bool interior_only) const;

  /// \brief The best single poisoning key and its loss.
  struct Candidate {
    Key key = 0;
    long double loss = 0;
  };

  /// \brief Knobs for the pruned argmax (see FindOptimal).
  struct ArgmaxOptions {
    /// Run the branch-and-bound pruned scan: a double-precision pre-pass
    /// scores every gap against an admissible per-gap upper bound on the
    /// Theorem 1 loss, only the top-K survivors plus the gaps whose
    /// bound still exceeds the running best are re-checked exactly. The
    /// selected Candidate is bit-identical to the exhaustive scan (the
    /// bound provably dominates the exact loss; ties re-check every
    /// contender and break toward the smaller key, the first-maximum-in-
    /// key-order rule of the serial scan).
    bool prune = true;

    /// Gaps exactly re-checked up front (in decreasing bound order) to
    /// seed the running best before the branch-and-bound sweep.
    std::int64_t top_k = 16;
  };

  /// \brief Evaluation-count counters accumulated across FindOptimal
  /// calls. Counter values depend on the scan layout (serial vs chunked)
  /// — only the returned Candidate is thread-count invariant.
  struct ArgmaxStats {
    std::int64_t rounds = 0;          ///< FindOptimal calls.
    std::int64_t exact_evals = 0;     ///< Exact Theorem 1 evaluations.
    std::int64_t bound_evals = 0;     ///< Double-precision bound scores.
    std::int64_t pruned_gaps = 0;     ///< Gaps never evaluated exactly.
    std::int64_t fallback_rounds = 0; ///< Pruning requested but the bound
                                      ///< context was not admissible.
    void Add(const ArgmaxStats& o) {
      rounds += o.rounds;
      exact_evals += o.exact_evals;
      bound_evals += o.bound_evals;
      pruned_gaps += o.pruned_gaps;
      fallback_rounds += o.fallback_rounds;
    }
  };

  /// \brief Maximizes L over the gap endpoints (the optimal single-point
  /// attack). Fails with ResourceExhausted when no unoccupied candidate
  /// exists. With \p excluded non-null, keys in that set are skipped
  /// (the RMI attack's globally occupied poisons).
  ///
  /// With \p pool non-null and running >1 worker, the gap scan fans out
  /// in fixed-size chunks of gap ranges whose local argmaxes reduce in
  /// chunk order with a strict > comparison — exactly the serial scan's
  /// first-maximum-in-key-order semantics, so the selected candidate is
  /// bit-identical for every thread count (greedy_differential_test).
  ///
  /// With \p argmax.prune (the default) each scan — the whole range
  /// serially, or each chunk of the parallel fan-out — runs the pruned
  /// pipeline: cheap upper bounds for every gap, exact re-check of the
  /// top-K bounds, then a key-ordered sweep that skips any gap whose
  /// bound is strictly below the running best and exits early once every
  /// remaining bound is. Whenever the bound context is not provably
  /// admissible (non-finite aggregates), the call falls back to the
  /// exhaustive scan, so the result is bit-identical either way
  /// (argmax_pruning_test). \p stats, when non-null, is accumulated
  /// into, never reset.
  ///
  /// Scratch note: the gap-range/bound buffers are engine-owned and
  /// reused across rounds (no O(G) allocation per call), which makes
  /// concurrent FindOptimal calls on the *same* landscape racy; every
  /// attack drives one landscape from one thread at a time and fans out
  /// only via \p pool.
  Result<Candidate> FindOptimal(bool interior_only,
                                const std::unordered_set<Key>* excluded,
                                ThreadPool* pool,
                                const ArgmaxOptions& argmax,
                                ArgmaxStats* stats = nullptr) const;

  /// \brief Overload with the default ArgmaxOptions (pruning on). Kept
  /// separate because a nested-class default argument cannot be spelled
  /// inside the enclosing class.
  Result<Candidate> FindOptimal(bool interior_only,
                                const std::unordered_set<Key>* excluded =
                                    nullptr,
                                ThreadPool* pool = nullptr) const;

  /// \brief Times any argmax scratch buffer grew its capacity. Stays
  /// O(log G) across an attack (geometric growth), which the
  /// differential harness asserts to pin the no-per-round-allocation
  /// property.
  std::int64_t argmax_scratch_reallocs() const { return scratch_reallocs_; }

  /// \brief Exact prefix statistics over the current keys strictly
  /// below \p kp. prefix_sum is over shifted keys (k - shift()).
  struct PrefixStats {
    Rank count_less = 0;
    Int128 prefix_sum = 0;
  };
  PrefixStats PrefixAt(Key kp) const;

  /// \brief The shift subtracted from every key inside the aggregates.
  Key shift() const { return shift_; }

  /// \brief Detached copy of the exact aggregates, supporting O(1)
  /// what-if edits and loss evaluation without touching the landscape.
  /// The RMI CHANGELOSS simulation runs entirely on these snapshots.
  struct Aggregates {
    std::int64_t n = 0;
    Key shift = 0;
    Int128 sum_k = 0;   // sum of shifted keys
    Int128 sum_k2 = 0;  // sum of shifted keys squared
    Int128 sum_kr = 0;  // sum of shifted_key * rank

    /// \brief Theorem 1 loss of the current n keys.
    long double Loss() const;

    /// \brief Loss after hypothetically inserting \p kp with
    /// \p count_less keys below it; \p suffix_sum is the shifted key-sum
    /// of the keys above kp. Does not modify the snapshot.
    long double LossAfterInsert(Key kp, Rank count_less,
                                Int128 suffix_sum) const;

    /// \brief Commits an insertion into the snapshot.
    void Insert(Key kp, Rank count_less, Int128 suffix_sum);
    /// \brief Removes a present key; \p suffix_sum_above excludes kp.
    void Remove(Key kp, Rank count_less, Int128 suffix_sum_above);

    /// \name O(1) edge edits used by the exchange simulation.
    /// @{
    void InsertBelowAll(Key k) { Insert(k, 0, sum_k); }
    void InsertAboveAll(Key k) { Insert(k, n, 0); }
    void RemoveSmallest(Key k) {
      Remove(k, 0, sum_k - (static_cast<Int128>(k) - shift));
    }
    void RemoveLargest(Key k) { Remove(k, n - 1, 0); }
    /// @}
  };
  Aggregates aggregates() const;

  /// \brief Visits every maximal gap intersected with [lo_bound,
  /// hi_bound] in increasing key order as f(gap_lo, gap_hi, count_less,
  /// prefix_sum), where count_less / prefix_sum describe the current
  /// keys strictly below gap_lo (identical for every candidate inside
  /// the gap, since gaps contain no keys). Amortized O(1) per gap.
  template <typename F>
  void ForEachGapInRange(Key lo_bound, Key hi_bound, F&& f) const {
    if (lo_bound > hi_bound) return;
    std::size_t ins_idx = 0;
    Rank ins_cnt = 0;
    Int128 ins_sum = 0;
    for (const Gap& g : gaps_) {
      if (g.lo > hi_bound) break;
      if (g.hi < lo_bound) continue;
      // Advance the overlay pointer to the inserted keys below this gap.
      while (ins_idx < inserted_.size() && inserted_[ins_idx] < g.lo) {
        ins_sum += static_cast<Int128>(inserted_[ins_idx]) - shift_;
        ++ins_cnt;
        ++ins_idx;
      }
      const Key lo = g.lo < lo_bound ? lo_bound : g.lo;
      const Key hi = g.hi > hi_bound ? hi_bound : g.hi;
      f(lo, hi, g.base_count + ins_cnt,
        base_prefix_[static_cast<std::size_t>(g.base_count)] + ins_sum);
    }
  }

  /// \brief ForEachGapInRange over the standard candidate range: the
  /// interior (min, max) of the current keys, or the whole domain.
  template <typename F>
  void ForEachGap(bool interior_only, F&& f) const {
    const Key lo = interior_only ? min_key_ + 1 : domain_.lo;
    const Key hi = interior_only ? max_key_ - 1 : domain_.hi;
    ForEachGapInRange(lo, hi, std::forward<F>(f));
  }

 private:
  /// A maximal run of unoccupied domain keys. base_count — the number of
  /// base keys below lo — is immutable because gaps never contain keys
  /// and base keys never move.
  struct Gap {
    Key lo = 0;
    Key hi = 0;
    std::int64_t base_count = 0;
  };

  long double LossWithInsertion(Key kp, Rank count_less,
                                Int128 suffix_sum) const;
  void RecomputeCurrentLoss();

  /// One materialized candidate gap range: everything the per-candidate
  /// loss evaluation needs, captured in key order.
  struct GapRange {
    Key lo = 0;
    Key hi = 0;
    Rank count_less = 0;
    Int128 suffix_sum = 0;
  };

  /// Per-round double-precision bound context; defined in the .cc.
  struct BoundCtx;

  /// Scans argmax_ranges_[first, end) for the best candidate using the
  /// exhaustive loop (bound_ctx == nullptr) or the pruned pipeline, and
  /// folds the winner into *best/*have via the first-maximum-in-key-order
  /// tie rule. Accumulates counters into *stats.
  void ScanGapRanges(std::size_t first, std::size_t end, std::int64_t top_k,
                     const BoundCtx* bound_ctx,
                     const std::unordered_set<Key>* excluded,
                     Candidate* best, bool* have, ArgmaxStats* stats) const;

  /// Clears \p buf, growing its capacity geometrically (and bumping
  /// scratch_reallocs_) only when \p needed exceeds it.
  template <typename T>
  std::vector<T>& PrepareScratch(std::vector<T>* buf,
                                 std::size_t needed) const;

  std::vector<Key> base_keys_;       // Create-time keys, sorted, static.
  std::vector<Int128> base_prefix_;  // base_prefix_[i] = sum first i shifted.
  std::vector<Key> inserted_;        // Keys committed via InsertKey, sorted.
  FenwickTree<Int128> inserted_slot_sum_;  // Shifted inserted-key sums per
                                           // base slot (see PrefixAt).
  std::vector<Gap> gaps_;            // Maximal unoccupied runs, sorted.
  KeyDomain domain_;
  Key shift_ = 0;                    // base_keys_[0]; sums use k - shift_.
  Key min_key_ = 0;
  Key max_key_ = 0;
  std::int64_t n_ = 0;               // Current key count (base + inserted).
  Int128 sum_k_ = 0;
  Int128 sum_k2_ = 0;
  Int128 sum_kr_ = 0;
  long double base_loss_ = 0;

  // Engine-owned argmax scratch, reused across rounds (see FindOptimal's
  // scratch note). Mutable: FindOptimal is logically const.
  mutable std::vector<GapRange> argmax_ranges_;
  mutable std::vector<double> argmax_bounds_;
  mutable std::vector<double> argmax_suffix_max_;
  mutable std::vector<std::int64_t> argmax_suffix_cnt_;
  mutable std::vector<std::size_t> argmax_order_;
  mutable std::int64_t scratch_reallocs_ = 0;
};

}  // namespace lispoison

#endif  // LISPOISON_ATTACK_LOSS_LANDSCAPE_H_
