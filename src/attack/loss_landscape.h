// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// The "loss as a sequence" view of Section IV: for a fixed legitimate
// keyset K, the minimized regression loss after inserting one poisoning
// key kp is a function L(kp) over the unoccupied keys of the domain.
// LossLandscape precomputes exact prefix aggregates over K so L(kp) can
// be evaluated in O(1) for any candidate — the engine behind both the
// optimal single-point attack (gap-endpoint enumeration, Theorem 2) and
// the full-domain sweeps of Fig. 3.
//
// Unlike the original rebuild-per-round engine, this landscape is
// *incrementally updatable*: InsertKey commits a poisoning key in
// O(log n) aggregate work (plus an O(p) sorted-overlay insert, p =
// number of inserted keys), after which every query reflects the
// enlarged keyset exactly — bit-identical to a fresh landscape built on
// the combined keys. The greedy multi-point attacks exploit this to
// skip the per-round KeySet/landscape reconstruction entirely.
//
// Invariants of the incremental representation:
//  - base_keys_ (the Create-time keys) never change; their prefix sums
//    are a static array.
//  - inserted keys live in a sorted overlay plus a Fenwick tree indexed
//    by *base slot* (the base-key gap an inserted key falls into), so
//    prefix key-sums at any candidate stay O(log n).
//  - gaps_ is the maximal-unoccupied-interval decomposition of the
//    domain, stored as a *tiered* (two-level) layout (TieredGaps): an
//    insertion splits exactly the gap containing it with an O(sqrt(G))
//    splice, and each gap record carries the exact count/prefix-sum of
//    the current keys below it (tier-relative, with lazy per-tier
//    deltas), so candidate scans read exact ranks in O(1) per gap.
//  - all aggregate arithmetic is exact 128-bit; shifting keys by the
//    smallest Create-time key keeps magnitudes safe, and the final
//    Theorem 1 ratio is shift-invariant bit-for-bit because the
//    variance/covariance numerators are shift-invariant in exact
//    integer arithmetic.
//
// The per-round argmax over gap endpoints additionally supports a
// branch-and-bound pruned scan (ArgmaxOptions): every gap is scored
// against an admissible double-precision upper bound on the exact loss,
// survivors are re-checked exactly, and the scan exits once every
// remaining bound is below the running best. The bound provably
// dominates the exact evaluation (directed-rounding error margins), so
// the selected candidate stays bit-identical to the exhaustive scan.
//
// With ArgmaxOptions::cache (the default) the pre-pass is *tiered and
// incremental*: instead of re-scoring all O(G) gaps every round, the
// scan first scores one admissible range bound per ~sqrt(G)-gap tier,
// computed in O(1) from the tier's key range and its first gap's exact
// (count, prefix-sum) record — state the tiered gap structure maintains
// incrementally across InsertKey splices. The range bound exploits two
// structural facts: along the candidate axis the covariance numerator
// is piecewise linear with non-decreasing slopes (n1*c1 - sumY grows as
// candidates pass keys) and upward jumps at key crossings, so it lies
// above its left-endpoint tangent; and VarX is a gap-independent convex
// parabola, so its range maximum sits at an endpoint. Only tiers whose
// range bound reaches the running best are re-scored per gap, dropping
// per-round bound work from O(G) to O(sqrt(G) + survivors).
// (Design notes from measurement: bounds persisted across rounds with
// forward-drift margins are useless here — the loss is a near
// cancellation of VarY and Cov^2/VarX, so any per-round drift allowance
// inflates the bound by more than the whole gap-to-gap loss spread —
// and plain interval arithmetic over a tier's input box decorrelates
// Cov from VarX badly enough to never skip a tier; the tangent form is
// what makes a tier-granular bound tight.) Whenever a bound context is
// not provably admissible the round transparently falls back — tiered
// scan to the per-round full pre-pass, and that to the exhaustive scan
// — so results are bit-identical in every mode.

#ifndef LISPOISON_ATTACK_LOSS_LANDSCAPE_H_
#define LISPOISON_ATTACK_LOSS_LANDSCAPE_H_

#include <unordered_set>
#include <utility>
#include <vector>

#include "attack/gap_tiers.h"
#include "attack/removal_soa.h"
#include "common/fenwick.h"
#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

class ThreadPool;

/// \brief Exact O(1) evaluator of the post-insertion minimized loss
/// L(kp) = min_{w,b} MSE(K ∪ {kp}) for any candidate poisoning key,
/// with O(log n) incremental commits via InsertKey.
///
/// The compound effect of CDF poisoning (every legitimate key above kp
/// has its rank shifted by one) is folded into the aggregates: with
/// c = |{k in K : k < kp}| keys below the candidate,
///
///   sum(X)   = sum(K) + kp
///   sum(X^2) = sum(K^2) + kp^2
///   sum(XY)  = sum_i k_i * r_i + SuffixKeySum(c) + kp * (c + 1)
///   sum(Y), sum(Y^2) depend only on n (ranks are a permutation of
///   1..n+1).
class LossLandscape {
 public:
  /// \brief Builds the landscape over \p keyset. Requires >= 1 key.
  static Result<LossLandscape> Create(const KeySet& keyset);

  /// \brief Parallel build: with \p pool non-null and running >1
  /// worker, the base-key prefix/aggregate pass and the gap-record
  /// emission fan out in fixed index chunks (a two-pass exclusive scan
  /// stitches the per-chunk partials). All aggregate arithmetic is
  /// exact integer and therefore associative, so the resulting
  /// landscape is bit-identical to the serial build for every thread
  /// count — asserted by landscape_parallel_create_test. pool ==
  /// nullptr (or an inline pool) runs the serial path unchanged.
  static Result<LossLandscape> Create(const KeySet& keyset,
                                      ThreadPool* pool);

  /// \brief The loss of the unpoisoned regression on the *current* keys
  /// (base keys plus everything committed through InsertKey).
  long double BaseLoss() const { return base_loss_; }

  /// \brief Current number of keys n (base + inserted).
  std::int64_t size() const { return n_; }

  /// \brief The key domain of the underlying keyset.
  const KeyDomain& domain() const { return domain_; }

  /// \brief Smallest / largest current key.
  Key min_key() const { return min_key_; }
  Key max_key() const { return max_key_; }

  /// \brief Second-smallest / second-largest current key. Requires
  /// size() >= 2. Used by the RMI exchange simulation, which evaluates
  /// the landscape with one boundary key hypothetically removed.
  Key SecondMinKey() const;
  Key SecondMaxKey() const;

  /// \brief Commits poisoning key \p kp into the landscape: all
  /// aggregates, the gap decomposition, and BaseLoss() now describe the
  /// enlarged keyset, exactly as if the landscape had been rebuilt.
  /// Re-inserting a previously removed key cancels its removal overlay
  /// entry instead of growing the inserted overlay.
  ///
  /// Fails with OutOfRange outside the domain and InvalidArgument when
  /// kp is occupied. Cost O(log n) aggregate work + O(p) overlay insert
  /// + O(sqrt(G)) tiered gap splice (see splice_moves()).
  Status InsertKey(Key kp);

  /// \brief The exact dual of InsertKey: removes the *current* key
  /// \p kp (base or inserted), after which every aggregate, the gap
  /// decomposition (adjacent gaps merge; see TieredGaps::MergeAt), the
  /// min/max bookkeeping and BaseLoss() describe the shrunken keyset
  /// bit-identically to a fresh landscape built without kp. Removed
  /// base keys live in a tombstone overlay (sorted vector + Fenwick
  /// sums by base index) threaded through PrefixAt, so the Create-time
  /// key array stays immutable.
  ///
  /// Fails with OutOfRange outside the domain, InvalidArgument when kp
  /// is not currently stored, and FailedPrecondition when fewer than
  /// two keys would remain (the regression needs two points). Cost
  /// O(log n) aggregate work + O(p + r) overlay work + O(sqrt(G))
  /// tiered gap merge (see splice_moves()).
  Status RemoveKey(Key kp);

  /// \brief RemoveKey(from) followed by InsertKey(to) — the §V
  /// modification (relocation) primitive. to == from is a no-op
  /// round-trip. On a failed re-insertion the removal is rolled back
  /// and the error returned, leaving the landscape untouched.
  Status ReplaceKey(Key from, Key to);

  /// \brief L(kp): minimized MSE of the regression trained on the
  /// current keys plus kp.
  ///
  /// Fails with InvalidArgument when kp is occupied (the paper's ⊥ case)
  /// and OutOfRange when kp lies outside the domain.
  Result<long double> LossAt(Key kp) const;

  /// \brief Candidate keys per Theorem 2: the first and last unoccupied
  /// key of every maximal gap. With \p interior_only (the paper's
  /// default) only gaps strictly between min and max of the current keys
  /// are considered, excluding out-of-range/outlier insertions that
  /// simple defenses would catch.
  std::vector<Key> GapEndpoints(bool interior_only) const;

  /// \brief Evaluates L at every unoccupied key (optionally interior
  /// only), in increasing key order — the Fig. 3 sweep and the
  /// brute-force oracle. Cost O(m + n).
  std::vector<std::pair<Key, long double>> Sweep(bool interior_only) const;

  /// \brief The best single poisoning key and its loss.
  struct Candidate {
    Key key = 0;
    long double loss = 0;
  };

  /// \brief Knobs for the pruned argmax (see FindOptimal).
  struct ArgmaxOptions {
    /// Run the branch-and-bound pruned scan: every gap is scored against
    /// an admissible per-gap upper bound on the Theorem 1 loss, only the
    /// survivors are re-checked exactly. The selected Candidate is
    /// bit-identical to the exhaustive scan (the bound provably
    /// dominates the exact loss; ties re-check every contender and break
    /// toward the smaller key, the first-maximum-in-key-order rule of
    /// the serial scan).
    bool prune = true;

    /// Tiered incremental pre-pass: score one admissible range bound
    /// per tier (a covariance left-tangent over the tier's key range,
    /// O(1) from the incrementally maintained tier state) and re-score
    /// gaps individually only inside tiers whose range bound reaches
    /// the running best — O(sqrt(G) + survivors) bound work per round
    /// instead of O(G). Bit-identical results either way; off restores
    /// the per-round full pre-pass of PR 3. Only meaningful with
    /// prune.
    bool cache = true;

    /// Gaps exactly re-checked up front (in decreasing bound order) to
    /// seed the running best before the branch-and-bound sweep. Used by
    /// the uncached pre-pass only; the tiered scan seeds from the
    /// per-tier bound maxima instead.
    std::int64_t top_k = 16;
  };

  /// \brief Evaluation-count counters accumulated across FindOptimal
  /// calls. Counter values depend on the scan layout (serial vs
  /// chunked) — only the returned Candidate is invariant. Coherence
  /// invariant of the tiered (cache) scan, asserted by the stateful
  /// property harness: per round, cached_bounds + invalidated_gaps
  /// equals the number of gaps in the scanned range.
  struct ArgmaxStats {
    std::int64_t rounds = 0;          ///< FindOptimal calls.
    std::int64_t exact_evals = 0;     ///< Exact Theorem 1 evaluations.
    std::int64_t bound_evals = 0;     ///< Double-precision bound scores
                                      ///< (per-gap and per-tier).
    std::int64_t pruned_gaps = 0;     ///< Gaps never evaluated exactly.
    std::int64_t cached_bounds = 0;   ///< Gaps dispositioned by their
                                      ///< tier's range bound alone (no
                                      ///< per-gap re-scoring).
    std::int64_t invalidated_gaps = 0;///< Gaps re-scored individually
                                      ///< (their tier survived the
                                      ///< range filter this round).
    std::int64_t fallback_rounds = 0; ///< Pruning requested but the bound
                                      ///< context was not admissible.
    void Add(const ArgmaxStats& o) {
      rounds += o.rounds;
      exact_evals += o.exact_evals;
      bound_evals += o.bound_evals;
      pruned_gaps += o.pruned_gaps;
      cached_bounds += o.cached_bounds;
      invalidated_gaps += o.invalidated_gaps;
      fallback_rounds += o.fallback_rounds;
    }
  };

  /// \brief Maximizes L over the gap endpoints (the optimal single-point
  /// attack). Fails with ResourceExhausted when no unoccupied candidate
  /// exists. With \p excluded non-null, keys in that set are skipped
  /// (the RMI attack's globally occupied poisons).
  ///
  /// With \p pool non-null and running >1 worker, the gap scan fans out
  /// in fixed-size chunks of gap ranges whose local argmaxes reduce in
  /// chunk order with a strict > comparison — exactly the serial scan's
  /// first-maximum-in-key-order semantics, so the selected candidate is
  /// bit-identical for every thread count (greedy_differential_test).
  ///
  /// With \p argmax.prune (the default) each scan runs the pruned
  /// pipeline, and with \p argmax.cache runs it *tiered*: one range
  /// bound per tier (a covariance left-tangent over the tier's key
  /// range), seeding the running best inside the tier with the highest
  /// range bound, then a key-ordered sweep that skips whole tiers whose
  /// range bound is below the best, re-scores only the surviving tiers
  /// per gap, and exits once the suffix maximum over the remaining tier
  /// bounds is below the best. Tier range bounds ignore \p excluded
  /// (an excluded endpoint only makes them admissible over-estimates;
  /// the per-gap phase skips excluded endpoints exactly). Whenever a bound context is not provably admissible the
  /// call falls back — tiered scan to per-round pre-pass, pre-pass to
  /// exhaustive — so the result is bit-identical in every mode
  /// (argmax_pruning_test, the stateful property harness). \p stats,
  /// when non-null, is accumulated into, never reset.
  ///
  /// Scratch note: the gap-range/bound buffers are engine-owned and
  /// reused across rounds (no O(G) allocation per call), and the cached
  /// scan writes bound repairs into the tier structure, which makes
  /// concurrent FindOptimal calls on the *same* landscape racy; every
  /// attack drives one landscape from one thread at a time and fans out
  /// only via \p pool.
  Result<Candidate> FindOptimal(bool interior_only,
                                const std::unordered_set<Key>* excluded,
                                ThreadPool* pool,
                                const ArgmaxOptions& argmax,
                                ArgmaxStats* stats = nullptr) const;

  /// \brief Overload with the default ArgmaxOptions (pruning and cache
  /// on). Kept separate because a nested-class default argument cannot
  /// be spelled inside the enclosing class.
  Result<Candidate> FindOptimal(bool interior_only,
                                const std::unordered_set<Key>* excluded =
                                    nullptr,
                                ThreadPool* pool = nullptr) const;

  /// \brief The removal-side argmax: the stored key whose deletion
  /// maximizes the retrained loss (the greedy step of the §V deletion
  /// and modification attacks). With \p allowed non-null only keys in
  /// that set are candidates (the adversary's deletable records).
  ///
  /// Runs over a lazily built, incrementally maintained *block-local*
  /// structure-of-arrays view of the current keys (~sqrt(n)-key blocks
  /// of sorted keys + block-local int64 suffix key-sums, with
  /// tier-relative rank/suffix directory scalars — RemovalSoa) — no
  /// per-round landscape reconstruction, and O(sqrt(n)) maintenance
  /// per commit instead of the flat layout's O(n) suffix pass. With
  /// \p argmax.prune each candidate is scored by an admissible
  /// double-precision bound (the removal dual of the insertion bound,
  /// same component-magnitude margins) and only survivors are
  /// evaluated exactly; with \p argmax.cache (the default) the scan is
  /// additionally *tiered*: one admissible chord bound per storage
  /// block (the covariance is concave piecewise-linear along the
  /// stored keys, so the chord through a block's exact endpoint
  /// records minorizes it), and only blocks whose bound reaches the
  /// running best are re-scored per key through the batched
  /// auto-vectorizable SoA kernel — O(sqrt(n) + survivors) bound work
  /// per round instead of O(n). The commit structure and the bound
  /// tier structure are the same blocks, so the next round's chords
  /// see every commit exactly. With \p argmax.prune off every
  /// candidate is evaluated exactly. Results are bit-identical to an index-ordered
  /// exhaustive scan (ties break toward the smaller key) for every
  /// prune/cache/thread setting; whenever the bound arithmetic is not
  /// provably admissible (wide domains) the round transparently falls
  /// back to the exact Int128 scan. Counter contract of the tiered
  /// scan: cached_bounds + invalidated_gaps == candidates in the scan.
  ///
  /// Fails with FailedPrecondition when fewer than three keys are
  /// stored and ResourceExhausted when \p allowed rules every key out.
  /// Shares the engine-owned argmax scratch: one landscape, one thread
  /// at a time (fan out only via \p pool).
  Result<Candidate> FindOptimalRemoval(
      const std::unordered_set<Key>* allowed, ThreadPool* pool,
      const ArgmaxOptions& argmax, ArgmaxStats* stats = nullptr) const;

  /// \brief Times any argmax scratch buffer grew its capacity. Stays
  /// O(log G) across an attack (geometric growth), which the
  /// differential harness asserts to pin the no-per-round-allocation
  /// property.
  std::int64_t argmax_scratch_reallocs() const { return scratch_reallocs_; }

  /// \name Removal-SoA maintenance telemetry: cumulative slots touched
  /// by InsertKey/RemoveKey commits into the block-local candidate
  /// structure, the commit count, and the current block geometry. Per
  /// commit the touched-slot delta is O(sqrt(n)) by construction —
  /// the n=10M bench gate asserts the measured growth from n=100k.
  /// All zero until a removal argmax materializes the SoA.
  /// @{
  std::int64_t removal_commit_touched_slots() const {
    return rem_soa_.touched_slots();
  }
  std::int64_t removal_commits() const { return rem_soa_.commits(); }
  std::int64_t removal_block_count() const {
    return static_cast<std::int64_t>(rem_soa_.block_count());
  }
  std::int64_t removal_block_cap() const { return rem_soa_.block_cap(); }
  /// @}

  /// \brief Test-only scratch canary: fills every engine-owned argmax
  /// scratch buffer with poison values (NaN for bound slots, a large
  /// sentinel for indices/counts) and — under AddressSanitizer —
  /// poisons the buffers' memory so any read or write that escapes the
  /// [0, needed) prefix the next scan's PrepareScratch/EnsureScratchSize
  /// unpoisons aborts the process. Pins the scratch contract the
  /// grow-only resize(capacity) pattern relies on ("stale entries
  /// beyond the prepared prefix are never read").
  void PoisonArgmaxScratchForTesting() const;

  /// \brief Gap records / tier-directory entries moved by InsertKey
  /// splices, cumulative — O(sqrt(G)) per insert by construction
  /// (tiered layout), which the stateful property harness asserts.
  std::int64_t splice_moves() const { return gaps_.splice_moves(); }

  /// \brief Max gaps per tier before a tier splits (the splice-work
  /// scale the property harness bounds against).
  std::int64_t gap_tier_cap() const { return gaps_.tier_cap(); }

  /// \brief Current number of maximal gaps over the whole domain.
  std::int64_t gap_count() const { return gaps_.size(); }

  /// \brief Exact prefix statistics over the current keys strictly
  /// below \p kp. prefix_sum is over shifted keys (k - shift()).
  struct PrefixStats {
    Rank count_less = 0;
    Int128 prefix_sum = 0;
  };
  PrefixStats PrefixAt(Key kp) const;

  /// \brief The shift subtracted from every key inside the aggregates.
  Key shift() const { return shift_; }

  /// \brief Detached copy of the exact aggregates, supporting O(1)
  /// what-if edits and loss evaluation without touching the landscape.
  /// The RMI CHANGELOSS simulation runs entirely on these snapshots.
  struct Aggregates {
    std::int64_t n = 0;
    Key shift = 0;
    Int128 sum_k = 0;   // sum of shifted keys
    Int128 sum_k2 = 0;  // sum of shifted keys squared
    Int128 sum_kr = 0;  // sum of shifted_key * rank

    /// \brief Theorem 1 loss of the current n keys.
    long double Loss() const;

    /// \brief Loss after hypothetically inserting \p kp with
    /// \p count_less keys below it; \p suffix_sum is the shifted key-sum
    /// of the keys above kp. Does not modify the snapshot.
    long double LossAfterInsert(Key kp, Rank count_less,
                                Int128 suffix_sum) const;

    /// \brief Commits an insertion into the snapshot.
    void Insert(Key kp, Rank count_less, Int128 suffix_sum);
    /// \brief Removes a present key; \p suffix_sum_above excludes kp.
    void Remove(Key kp, Rank count_less, Int128 suffix_sum_above);

    /// \name O(1) edge edits used by the exchange simulation.
    /// @{
    void InsertBelowAll(Key k) { Insert(k, 0, sum_k); }
    void InsertAboveAll(Key k) { Insert(k, n, 0); }
    void RemoveSmallest(Key k) {
      Remove(k, 0, sum_k - (static_cast<Int128>(k) - shift));
    }
    void RemoveLargest(Key k) { Remove(k, n - 1, 0); }
    /// @}
  };
  Aggregates aggregates() const;

  /// \brief Visits every maximal gap intersected with [lo_bound,
  /// hi_bound] in increasing key order as f(gap_lo, gap_hi, count_less,
  /// prefix_sum), where count_less / prefix_sum describe the current
  /// keys strictly below gap_lo (identical for every candidate inside
  /// the gap, since gaps contain no keys). O(1) per visited gap.
  template <typename F>
  void ForEachGapInRange(Key lo_bound, Key hi_bound, F&& f) const {
    gaps_.ForEachInRange(lo_bound, hi_bound, std::forward<F>(f));
  }

  /// \brief ForEachGapInRange over the standard candidate range: the
  /// interior (min, max) of the current keys, or the whole domain.
  template <typename F>
  void ForEachGap(bool interior_only, F&& f) const {
    const Key lo = interior_only ? min_key_ + 1 : domain_.lo;
    const Key hi = interior_only ? max_key_ - 1 : domain_.hi;
    ForEachGapInRange(lo, hi, std::forward<F>(f));
  }

 private:
  long double LossWithInsertion(Key kp, Rank count_less,
                                Int128 suffix_sum) const;
  void RecomputeCurrentLoss();

  /// True when the pruned bound arithmetic (and the int64 suffix-sum
  /// SoA) is provably admissible for the current n and domain span.
  bool PruneDomainOk() const;

  /// Exact minimized loss of the current keys with the stored key
  /// \p key (1-based rank \p rank, int64 shifted suffix key-sum \p sa)
  /// deleted. The (rank, sa) pair comes from a removal-SoA block's
  /// tier-relative reconstruction — exact, so the loss is bit-identical
  /// to the flat layout's.
  long double LossWithoutKey(Key key, std::int64_t rank,
                             std::int64_t sa) const;

  /// Builds / refreshes the block-local removal-candidate SoA.
  void EnsureRemovalSoa() const;

  /// One materialized candidate gap range: everything the per-candidate
  /// loss evaluation needs, captured in key order.
  struct GapRange {
    Key lo = 0;
    Key hi = 0;
    Rank count_less = 0;
    Int128 suffix_sum = 0;
  };

  /// Per-round double-precision bound context (the uncached pre-pass);
  /// defined in the .cc.
  struct BoundCtx;

  /// Removal-side bound context (the dual of BoundCtx over the n-1
  /// surviving keys); defined in the .cc.
  struct RemovalBoundCtx;

  /// Removal-scan worker over the SoA storage blocks [bfirst, bend):
  /// batched per-key bound pass into the global candidate-indexed
  /// scratch (bound_ctx non-null), max-bound exact seed, key-ordered
  /// pruned sweep with suffix-max early exit — or the plain exhaustive
  /// block walk when bound_ctx is null. Folds the winner into
  /// *best/*have via the first-maximum-in-key-order rule.
  void ScanRemovalBlocks(std::size_t bfirst, std::size_t bend,
                         const RemovalBoundCtx* bound_ctx,
                         const std::unordered_set<Key>* allowed,
                         Candidate* best, bool* have,
                         ArgmaxStats* stats) const;

  /// Tiered removal-scan worker (ArgmaxOptions::cache): one admissible
  /// chord bound per SoA storage block (along the stored keys the
  /// covariance is concave piecewise-linear, so the chord through a
  /// block's exact endpoint records minorizes it), per-key re-scoring
  /// only inside blocks whose chord bound reaches the running best —
  /// O(sqrt(n) + survivors) bound work per round instead of O(n). The
  /// commit structure and the bound tier structure are the same blocks,
  /// so removal commits touch exactly the state the next round's chords
  /// read. \p seed_bounds / \p scratch are this chunk's disjoint
  /// block_cap-sized staging slices of argmax_bounds_. Counter contract
  /// mirrors the insertion tier cache: cached_bounds + invalidated_gaps
  /// == candidates in the scan.
  void ScanRemovalBlocksTiered(std::size_t bfirst, std::size_t bend,
                               const RemovalBoundCtx& ctx,
                               const std::unordered_set<Key>* allowed,
                               double* seed_bounds, double* scratch,
                               Candidate* best, bool* have,
                               ArgmaxStats* stats) const;

  /// Scans argmax_ranges_[first, end) for the best candidate using the
  /// exhaustive loop (bound_ctx == nullptr) or the uncached pruned
  /// pipeline, and folds the winner into *best/*have via the
  /// first-maximum-in-key-order tie rule. Accumulates counters into
  /// *stats.
  void ScanGapRanges(std::size_t first, std::size_t end, std::int64_t top_k,
                     const BoundCtx* bound_ctx,
                     const std::unordered_set<Key>* excluded,
                     Candidate* best, bool* have, ArgmaxStats* stats) const;

  /// Tiered-scan worker: sweeps the tier-list positions [first, end)
  /// (indices into argmax_tier_list_, whose per-tier range bounds and
  /// suffix arrays the prologue filled) with a chunk-local running
  /// best. Seeds from the chunk's highest tier range bound, staging
  /// that tier's per-gap bounds into \p seed_bounds (this chunk's
  /// disjoint slice of argmax_bounds_, at least tier_cap wide) so the
  /// sweep never scores a gap twice. \p soa points at this chunk's
  /// 4*tier_cap-double slice of argmax_soa_, the staging buffer of the
  /// batched (structure-of-arrays) per-gap bound kernel; \p scratch at
  /// a second tier_cap-double bound slice for non-seed tiers.
  void ScanTiersCached(std::size_t first, std::size_t end, Key lo_bound,
                       Key hi_bound, const BoundCtx& ctx,
                       const std::unordered_set<Key>* excluded,
                       double* seed_bounds, double* scratch, double* soa,
                       Candidate* best, bool* have,
                       ArgmaxStats* stats) const;

  /// Batched per-gap bound scores of one *fully in-range* tier with no
  /// exclusions: a scalar staging pass extracts the gap endpoints into
  /// the SoA slice \p soa, then an auto-vectorizable pure-double kernel
  /// writes max(bound(lo), bound(hi)) per gap into \p out. Counts the
  /// same bound_evals the scalar path would.
  void BatchTierBounds(const TieredGaps::Tier& t, const BoundCtx& ctx,
                       double* soa, double* out, ArgmaxStats* stats) const;

  /// In-range gap count of tier \p t for the tiered scan ([lo_bound,
  /// hi_bound] never clips a gap partially — see FindOptimal).
  static std::int64_t TierInRangeCount(const TieredGaps::Tier& t,
                                       Key lo_bound, Key hi_bound);

  /// Clears \p buf, growing its capacity geometrically (and bumping
  /// scratch_reallocs_) only when \p needed exceeds it.
  template <typename T>
  std::vector<T>& PrepareScratch(std::vector<T>* buf,
                                 std::size_t needed) const;

  std::vector<Key> base_keys_;       // Create-time keys, sorted, static.
  std::vector<Int128> base_prefix_;  // base_prefix_[i] = sum first i shifted.
  std::vector<Key> inserted_;        // Keys committed via InsertKey, sorted.
  FenwickTree<Int128> inserted_slot_sum_;  // Shifted inserted-key sums per
                                           // base slot (see PrefixAt).
  std::vector<Key> removed_;         // Removed base keys, sorted tombstones.
  FenwickTree<Int128> removed_idx_sum_;  // Their shifted sums by base index
                                         // (lazily allocated on first
                                         // base-key removal).
  TieredGaps gaps_;                  // Tiered maximal unoccupied runs
                                     // with per-tier aggregate boxes.
  KeyDomain domain_;
  Key shift_ = 0;                    // base_keys_[0]; sums use k - shift_.
  Key min_key_ = 0;
  Key max_key_ = 0;
  std::int64_t n_ = 0;               // Current key count (base + inserted).
  Int128 sum_k_ = 0;
  Int128 sum_k2_ = 0;
  Int128 sum_kr_ = 0;
  long double base_loss_ = 0;

  // Engine-owned argmax scratch, reused across rounds (see FindOptimal's
  // scratch note). Mutable: FindOptimal is logically const.
  mutable std::vector<GapRange> argmax_ranges_;
  mutable std::vector<double> argmax_bounds_;
  mutable std::vector<double> argmax_suffix_max_;
  mutable std::vector<std::int64_t> argmax_suffix_cnt_;
  mutable std::vector<std::size_t> argmax_order_;
  // Tiered-scan scratch (sized by tier count, ~sqrt(G)).
  mutable std::vector<std::size_t> argmax_tier_list_;
  mutable std::vector<double> argmax_tier_bounds_;
  mutable std::vector<double> argmax_tier_suffix_max_;
  mutable std::vector<std::int64_t> argmax_tier_suffix_cnt_;
  mutable std::vector<std::pair<std::size_t, std::size_t>>
      argmax_chunk_tiers_;
  mutable std::vector<double> argmax_soa_;  // SoA staging of the batched
                                            // per-gap bound kernel.
  mutable std::int64_t scratch_reallocs_ = 0;

  // Removal-candidate SoA: the current keys in sorted ~sqrt(n) blocks
  // with block-local int64 suffix key-sums and tier-relative
  // count_before/sum_after directory scalars (valid under the same
  // magnitude guard as the pruned bound arithmetic). Built lazily by
  // FindOptimalRemoval, then maintained incrementally by
  // InsertKey/RemoveKey in O(sqrt(n)) touched slots per commit; pure
  // insertion attacks never pay for it.
  mutable RemovalSoa rem_soa_;
};

}  // namespace lispoison

#endif  // LISPOISON_ATTACK_LOSS_LANDSCAPE_H_
