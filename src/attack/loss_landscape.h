// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// The "loss as a sequence" view of Section IV: for a fixed legitimate
// keyset K, the minimized regression loss after inserting one poisoning
// key kp is a function L(kp) over the unoccupied keys of the domain.
// LossLandscape precomputes exact prefix aggregates over K so L(kp) can
// be evaluated in O(1) for any candidate — the engine behind both the
// optimal single-point attack (gap-endpoint enumeration, Theorem 2) and
// the full-domain sweeps of Fig. 3.

#ifndef LISPOISON_ATTACK_LOSS_LANDSCAPE_H_
#define LISPOISON_ATTACK_LOSS_LANDSCAPE_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Exact O(1) evaluator of the post-insertion minimized loss
/// L(kp) = min_{w,b} MSE(K ∪ {kp}) for any candidate poisoning key.
///
/// The compound effect of CDF poisoning (every legitimate key above kp
/// has its rank shifted by one) is folded into the aggregates: with
/// c = |{k in K : k < kp}| keys below the candidate,
///
///   sum(X)   = sum(K) + kp
///   sum(X^2) = sum(K^2) + kp^2
///   sum(XY)  = sum_i k_i * r_i + SuffixKeySum(c) + kp * (c + 1)
///   sum(Y), sum(Y^2) depend only on n (ranks are a permutation of
///   1..n+1).
///
/// All aggregates are exact 128-bit integers (keys are shifted by the
/// smallest legitimate key first, making the arithmetic safe for key
/// magnitudes up to ~3x10^9 spread and n up to ~10^8); floating point
/// enters only in the final Theorem 1 ratio
/// L = Var_R - Cov^2_{KR} / Var_K.
class LossLandscape {
 public:
  /// \brief Builds the landscape over \p keyset. Requires >= 1 key.
  static Result<LossLandscape> Create(const KeySet& keyset);

  /// \brief The loss of the unpoisoned regression on K (Theorem 1).
  long double BaseLoss() const { return base_loss_; }

  /// \brief Number of legitimate keys n.
  std::int64_t size() const { return n_; }

  /// \brief The key domain of the underlying keyset.
  const KeyDomain& domain() const { return domain_; }

  /// \brief L(kp): minimized MSE of the regression trained on K ∪ {kp}.
  ///
  /// Fails with InvalidArgument when kp is occupied (the paper's ⊥ case)
  /// and OutOfRange when kp lies outside the domain.
  Result<long double> LossAt(Key kp) const;

  /// \brief Candidate keys per Theorem 2: the first and last unoccupied
  /// key of every maximal gap. With \p interior_only (the paper's
  /// default) only gaps strictly between min(K) and max(K) are
  /// considered, excluding out-of-range/outlier insertions that simple
  /// defenses would catch.
  std::vector<Key> GapEndpoints(bool interior_only) const;

  /// \brief Evaluates L at every unoccupied key (optionally interior
  /// only), in increasing key order — the Fig. 3 sweep and the
  /// brute-force oracle. Cost O(m + n).
  std::vector<std::pair<Key, long double>> Sweep(bool interior_only) const;

  /// \brief The best single poisoning key and its loss.
  struct Candidate {
    Key key = 0;
    long double loss = 0;
  };

  /// \brief Maximizes L over the gap endpoints (the optimal single-point
  /// attack). Fails with ResourceExhausted when no unoccupied candidate
  /// exists.
  Result<Candidate> FindOptimal(bool interior_only) const;

 private:
  std::vector<Key> keys_;                 // Sorted legitimate keys.
  KeyDomain domain_;
  Key shift_ = 0;                         // keys_[0]; all sums use k - shift_.
  std::int64_t n_ = 0;
  Int128 sum_k_ = 0;                      // sum of shifted keys.
  Int128 sum_k2_ = 0;                     // sum of shifted keys squared.
  Int128 sum_kr_ = 0;                     // sum of shifted_key * rank.
  std::vector<Int128> suffix_key_sum_;    // suffix[c] = sum_{i>=c} shifted.
  long double base_loss_ = 0;

  long double LossWithInsertion(Key kp, Rank count_less) const;
};

}  // namespace lispoison

#endif  // LISPOISON_ATTACK_LOSS_LANDSCAPE_H_
