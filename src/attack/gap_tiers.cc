#include "attack/gap_tiers.h"

#include <algorithm>
#include <cmath>

namespace lispoison {

void TieredGaps::Build(std::vector<GapRec> gaps) {
  tiers_.clear();
  total_gaps_ = static_cast<std::int64_t>(gaps.size());
  splice_moves_ = 0;
  // Tier target ~ sqrt(G); the cap at 2x leaves headroom so growth by
  // splitting (one new gap per insert) does not immediately re-split.
  const std::int64_t target = std::max<std::int64_t>(
      8, static_cast<std::int64_t>(
             std::ceil(std::sqrt(static_cast<double>(total_gaps_)))));
  tier_cap_ = 2 * target;
  for (std::size_t first = 0; first < gaps.size(); first += target) {
    const std::size_t end =
        std::min(gaps.size(), first + static_cast<std::size_t>(target));
    Tier t;
    t.gaps.assign(gaps.begin() + static_cast<std::ptrdiff_t>(first),
                  gaps.begin() + static_cast<std::ptrdiff_t>(end));
    RecountTier(&t);
    tiers_.push_back(std::move(t));
  }
}

std::size_t TieredGaps::FirstTierNotBelow(Key key) const {
  const auto it = std::lower_bound(
      tiers_.begin(), tiers_.end(), key,
      [](const Tier& t, Key k) { return t.hi < k; });
  return static_cast<std::size_t>(it - tiers_.begin());
}

bool TieredGaps::Locate(Key kp, std::size_t* tier_idx,
                        std::size_t* gap_idx) const {
  const std::size_t ti = FirstTierNotBelow(kp);
  if (ti >= tiers_.size() || tiers_[ti].lo > kp) return false;
  const std::vector<GapRec>& gaps = tiers_[ti].gaps;
  const auto git = std::lower_bound(
      gaps.begin(), gaps.end(), kp,
      [](const GapRec& g, Key k) { return g.hi < k; });
  if (git == gaps.end() || git->lo > kp) return false;
  *tier_idx = ti;
  *gap_idx = static_cast<std::size_t>(git - gaps.begin());
  return true;
}

void TieredGaps::RecountTier(Tier* t) const {
  t->lo = t->gaps.front().lo;
  t->hi = t->gaps.back().hi;
}

void TieredGaps::EraseTier(std::size_t tier_idx) {
  splice_moves_ +=
      static_cast<std::int64_t>(tiers_.size() - tier_idx - 1);
  tiers_.erase(tiers_.begin() + static_cast<std::ptrdiff_t>(tier_idx));
}

void TieredGaps::SplitTier(std::size_t tier_idx) {
  Tier& t = tiers_[tier_idx];
  const std::size_t half = t.gaps.size() / 2;
  Tier right;
  right.gaps.assign(t.gaps.begin() + static_cast<std::ptrdiff_t>(half),
                    t.gaps.end());
  t.gaps.erase(t.gaps.begin() + static_cast<std::ptrdiff_t>(half),
               t.gaps.end());
  right.delta_cnt = t.delta_cnt;
  right.delta_sum = t.delta_sum;
  RecountTier(&t);
  RecountTier(&right);
  splice_moves_ += static_cast<std::int64_t>(right.gaps.size()) +
                   static_cast<std::int64_t>(tiers_.size() - tier_idx);
  tiers_.insert(tiers_.begin() + static_cast<std::ptrdiff_t>(tier_idx) + 1,
                std::move(right));
}

void TieredGaps::SplitAt(std::size_t tier_idx, std::size_t gap_idx, Key kp,
                         Int128 kp_s) {
  Tier& t = tiers_[tier_idx];
  std::vector<GapRec>& gaps = t.gaps;

  // Every gap above kp gains one key below it. Eager within this tier
  // (all gaps after the split point), lazy per-tier deltas afterwards.
  for (std::size_t j = gap_idx + 1; j < gaps.size(); ++j) {
    gaps[j].cnt += 1;
    gaps[j].sum += kp_s;
  }
  for (std::size_t tj = tier_idx + 1; tj < tiers_.size(); ++tj) {
    tiers_[tj].delta_cnt += 1;
    tiers_[tj].delta_sum += kp_s;
  }

  GapRec& g = gaps[gap_idx];
  if (g.lo == kp && g.hi == kp) {
    splice_moves_ += static_cast<std::int64_t>(gaps.size() - gap_idx - 1);
    gaps.erase(gaps.begin() + static_cast<std::ptrdiff_t>(gap_idx));
    total_gaps_ -= 1;
    if (gaps.empty()) {
      EraseTier(tier_idx);
      return;
    }
  } else if (g.lo == kp) {
    // The gap's first key moved above kp: kp is now one of the keys
    // below it.
    g.lo = kp + 1;
    g.cnt += 1;
    g.sum += kp_s;
  } else if (g.hi == kp) {
    g.hi = kp - 1;
  } else {
    GapRec right;
    right.lo = kp + 1;
    right.hi = g.hi;
    right.cnt = g.cnt + 1;  // kp itself sits below the right half.
    right.sum = g.sum + kp_s;
    g.hi = kp - 1;
    splice_moves_ += static_cast<std::int64_t>(gaps.size() - gap_idx - 1);
    gaps.insert(gaps.begin() + static_cast<std::ptrdiff_t>(gap_idx) + 1,
                right);
    total_gaps_ += 1;
  }
  RecountTier(&t);
  if (static_cast<std::int64_t>(gaps.size()) > tier_cap_) {
    SplitTier(tier_idx);
  }
}

}  // namespace lispoison
