#include "attack/gap_tiers.h"

#include <algorithm>
#include <cmath>

namespace lispoison {

void TieredGaps::Build(std::vector<GapRec> gaps) {
  tiers_.clear();
  total_gaps_ = static_cast<std::int64_t>(gaps.size());
  splice_moves_ = 0;
  // Tier target ~ sqrt(G); the cap at 2x leaves headroom so growth by
  // splitting (one new gap per insert) does not immediately re-split.
  const std::int64_t target = std::max<std::int64_t>(
      8, static_cast<std::int64_t>(
             std::ceil(std::sqrt(static_cast<double>(total_gaps_)))));
  tier_cap_ = 2 * target;
  for (std::size_t first = 0; first < gaps.size(); first += target) {
    const std::size_t end =
        std::min(gaps.size(), first + static_cast<std::size_t>(target));
    Tier t;
    t.gaps.assign(gaps.begin() + static_cast<std::ptrdiff_t>(first),
                  gaps.begin() + static_cast<std::ptrdiff_t>(end));
    RecountTier(&t);
    tiers_.push_back(std::move(t));
  }
}

std::size_t TieredGaps::FirstTierNotBelow(Key key) const {
  const auto it = std::lower_bound(
      tiers_.begin(), tiers_.end(), key,
      [](const Tier& t, Key k) { return t.hi < k; });
  return static_cast<std::size_t>(it - tiers_.begin());
}

bool TieredGaps::Locate(Key kp, std::size_t* tier_idx,
                        std::size_t* gap_idx) const {
  const std::size_t ti = FirstTierNotBelow(kp);
  if (ti >= tiers_.size() || tiers_[ti].lo > kp) return false;
  const std::vector<GapRec>& gaps = tiers_[ti].gaps;
  const auto git = std::lower_bound(
      gaps.begin(), gaps.end(), kp,
      [](const GapRec& g, Key k) { return g.hi < k; });
  if (git == gaps.end() || git->lo > kp) return false;
  *tier_idx = ti;
  *gap_idx = static_cast<std::size_t>(git - gaps.begin());
  return true;
}

void TieredGaps::RecountTier(Tier* t) const {
  t->lo = t->gaps.front().lo;
  t->hi = t->gaps.back().hi;
}

void TieredGaps::EraseTier(std::size_t tier_idx) {
  splice_moves_ +=
      static_cast<std::int64_t>(tiers_.size() - tier_idx - 1);
  tiers_.erase(tiers_.begin() + static_cast<std::ptrdiff_t>(tier_idx));
}

void TieredGaps::SplitTier(std::size_t tier_idx) {
  Tier& t = tiers_[tier_idx];
  const std::size_t half = t.gaps.size() / 2;
  Tier right;
  right.gaps.assign(t.gaps.begin() + static_cast<std::ptrdiff_t>(half),
                    t.gaps.end());
  t.gaps.erase(t.gaps.begin() + static_cast<std::ptrdiff_t>(half),
               t.gaps.end());
  right.delta_cnt = t.delta_cnt;
  right.delta_sum = t.delta_sum;
  RecountTier(&t);
  RecountTier(&right);
  splice_moves_ += static_cast<std::int64_t>(right.gaps.size()) +
                   static_cast<std::int64_t>(tiers_.size() - tier_idx);
  tiers_.insert(tiers_.begin() + static_cast<std::ptrdiff_t>(tier_idx) + 1,
                std::move(right));
}

void TieredGaps::RebalanceUnderflow(std::size_t tier_idx) {
  if (tiers_.size() <= 1 || tier_idx >= tiers_.size()) return;
  Tier& t = tiers_[tier_idx];
  if (static_cast<std::int64_t>(t.gaps.size()) >=
      std::max<std::int64_t>(1, tier_cap_ / 4)) {
    return;
  }
  // Merge the underfull tier into its smaller neighbour; if the union
  // overflows the cap, the regular 2x-cap split rule restores balance.
  std::size_t left = tier_idx;
  if (tier_idx == 0) {
    left = 0;
  } else if (tier_idx + 1 == tiers_.size()) {
    left = tier_idx - 1;
  } else {
    left = tiers_[tier_idx - 1].gaps.size() <=
                   tiers_[tier_idx + 1].gaps.size()
               ? tier_idx - 1
               : tier_idx;
  }
  Tier& a = tiers_[left];
  Tier& b = tiers_[left + 1];
  // Gap records are tier-relative: moving b's gaps under a's deltas
  // re-bases them by the delta difference.
  const Rank dc = b.delta_cnt - a.delta_cnt;
  const Int128 ds = b.delta_sum - a.delta_sum;
  a.gaps.reserve(a.gaps.size() + b.gaps.size());
  for (const GapRec& g : b.gaps) {
    a.gaps.push_back(GapRec{g.lo, g.hi, g.cnt + dc, g.sum + ds});
  }
  splice_moves_ += static_cast<std::int64_t>(b.gaps.size());
  RecountTier(&a);
  EraseTier(left + 1);
  if (static_cast<std::int64_t>(tiers_[left].gaps.size()) > tier_cap_) {
    SplitTier(left);
  }
}

void TieredGaps::MergeAt(Key kp, Int128 kp_s, Rank abs_cnt, Int128 abs_sum) {
  // Position: rt is the first tier whose coverage reaches kp, rgi the
  // first gap with hi >= kp inside it. kp is occupied, so that gap (when
  // it exists) satisfies lo > kp — it is the right neighbour candidate.
  std::size_t rt = FirstTierNotBelow(kp);
  std::size_t rgi = 0;
  if (rt < tiers_.size()) {
    const std::vector<GapRec>& gaps = tiers_[rt].gaps;
    rgi = static_cast<std::size_t>(
        std::lower_bound(gaps.begin(), gaps.end(), kp,
                         [](const GapRec& g, Key k) { return g.hi < k; }) -
        gaps.begin());
  }

  // Every gap above kp loses the key kp from its below-bookkeeping:
  // eager within tier rt, lazy per-tier deltas afterwards (the mirror
  // image of SplitAt's increment).
  if (rt < tiers_.size()) {
    std::vector<GapRec>& gaps = tiers_[rt].gaps;
    for (std::size_t j = rgi; j < gaps.size(); ++j) {
      gaps[j].cnt -= 1;
      gaps[j].sum -= kp_s;
    }
    for (std::size_t tj = rt + 1; tj < tiers_.size(); ++tj) {
      tiers_[tj].delta_cnt -= 1;
      tiers_[tj].delta_sum -= kp_s;
    }
  }

  // Neighbour gaps: left is the gap immediately before position
  // (rt, rgi) in global order, right is the gap at it.
  std::size_t lt = 0;
  std::size_t lgi = 0;
  bool has_left = false;
  if (rt < tiers_.size() && rgi > 0) {
    lt = rt;
    lgi = rgi - 1;
    has_left = true;
  } else {
    const std::size_t before = rt;  // == index of the tier after kp.
    if (before > 0) {
      lt = before - 1;
      lgi = tiers_[lt].gaps.size() - 1;
      has_left = true;
    }
  }
  const bool left_adjacent =
      has_left && tiers_[lt].gaps[lgi].hi == kp - 1;
  const bool right_adjacent =
      rt < tiers_.size() && rgi < tiers_[rt].gaps.size() &&
      tiers_[rt].gaps[rgi].lo == kp + 1;

  if (left_adjacent && right_adjacent) {
    // Two maximal runs collapse into one: the left record absorbs the
    // right one's span (its below-bookkeeping is unchanged — the keys
    // below its lo did not move).
    std::vector<GapRec>& rgaps = tiers_[rt].gaps;
    tiers_[lt].gaps[lgi].hi = rgaps[rgi].hi;
    splice_moves_ += static_cast<std::int64_t>(rgaps.size() - rgi - 1);
    rgaps.erase(rgaps.begin() + static_cast<std::ptrdiff_t>(rgi));
    total_gaps_ -= 1;
    RecountTier(&tiers_[lt]);
    if (rgaps.empty()) {
      EraseTier(rt);
      RebalanceUnderflow(lt);
    } else if (lt == rt) {
      RebalanceUnderflow(rt);
    } else {
      RecountTier(&tiers_[rt]);
      RebalanceUnderflow(rt);
    }
  } else if (left_adjacent) {
    tiers_[lt].gaps[lgi].hi = kp;
    RecountTier(&tiers_[lt]);
  } else if (right_adjacent) {
    // The right gap's first unoccupied key moves down to kp; its
    // below-set already shed kp in the decrement pass above.
    tiers_[rt].gaps[rgi].lo = kp;
    RecountTier(&tiers_[rt]);
  } else {
    // Isolated removal: a fresh single-key gap. Insert before the right
    // neighbour when one exists, else append to the last tier.
    GapRec rec;
    rec.lo = kp;
    rec.hi = kp;
    if (rt < tiers_.size()) {
      Tier& t = tiers_[rt];
      rec.cnt = abs_cnt - t.delta_cnt;
      rec.sum = abs_sum - t.delta_sum;
      splice_moves_ +=
          static_cast<std::int64_t>(t.gaps.size() - rgi);
      t.gaps.insert(t.gaps.begin() + static_cast<std::ptrdiff_t>(rgi),
                    rec);
      total_gaps_ += 1;
      RecountTier(&t);
      if (static_cast<std::int64_t>(t.gaps.size()) > tier_cap_) {
        SplitTier(rt);
      }
    } else if (!tiers_.empty()) {
      Tier& t = tiers_.back();
      rec.cnt = abs_cnt - t.delta_cnt;
      rec.sum = abs_sum - t.delta_sum;
      t.gaps.push_back(rec);
      total_gaps_ += 1;
      RecountTier(&t);
      if (static_cast<std::int64_t>(t.gaps.size()) > tier_cap_) {
        SplitTier(tiers_.size() - 1);
      }
    } else {
      Tier t;
      rec.cnt = abs_cnt;
      rec.sum = abs_sum;
      t.gaps.push_back(rec);
      RecountTier(&t);
      tiers_.push_back(std::move(t));
      total_gaps_ += 1;
    }
  }
}

void TieredGaps::SplitAt(std::size_t tier_idx, std::size_t gap_idx, Key kp,
                         Int128 kp_s) {
  Tier& t = tiers_[tier_idx];
  std::vector<GapRec>& gaps = t.gaps;

  // Every gap above kp gains one key below it. Eager within this tier
  // (all gaps after the split point), lazy per-tier deltas afterwards.
  for (std::size_t j = gap_idx + 1; j < gaps.size(); ++j) {
    gaps[j].cnt += 1;
    gaps[j].sum += kp_s;
  }
  for (std::size_t tj = tier_idx + 1; tj < tiers_.size(); ++tj) {
    tiers_[tj].delta_cnt += 1;
    tiers_[tj].delta_sum += kp_s;
  }

  GapRec& g = gaps[gap_idx];
  if (g.lo == kp && g.hi == kp) {
    splice_moves_ += static_cast<std::int64_t>(gaps.size() - gap_idx - 1);
    gaps.erase(gaps.begin() + static_cast<std::ptrdiff_t>(gap_idx));
    total_gaps_ -= 1;
    if (gaps.empty()) {
      EraseTier(tier_idx);
      return;
    }
  } else if (g.lo == kp) {
    // The gap's first key moved above kp: kp is now one of the keys
    // below it.
    g.lo = kp + 1;
    g.cnt += 1;
    g.sum += kp_s;
  } else if (g.hi == kp) {
    g.hi = kp - 1;
  } else {
    GapRec right;
    right.lo = kp + 1;
    right.hi = g.hi;
    right.cnt = g.cnt + 1;  // kp itself sits below the right half.
    right.sum = g.sum + kp_s;
    g.hi = kp - 1;
    splice_moves_ += static_cast<std::int64_t>(gaps.size() - gap_idx - 1);
    gaps.insert(gaps.begin() + static_cast<std::ptrdiff_t>(gap_idx) + 1,
                right);
    total_gaps_ += 1;
  }
  RecountTier(&t);
  if (static_cast<std::int64_t>(gaps.size()) > tier_cap_) {
    SplitTier(tier_idx);
  }
}

}  // namespace lispoison
