#include "attack/removal_soa.h"

#include <algorithm>
#include <cmath>

namespace lispoison {

void RemovalSoa::Clear() {
  // Maintenance counters survive a Clear on purpose: the magnitude
  // guard can drop and rebuild the SoA mid-attack, and the sublinearity
  // gate wants the whole attack's commit cost, not the last epoch's.
  blocks_.clear();
  total_ = 0;
  built_ = false;
  with_sa_ = false;
}

void RemovalSoa::StartBuild(std::int64_t expected_n, bool with_sa,
                            Key shift) {
  Clear();
  with_sa_ = with_sa;
  shift_ = shift;
  const std::int64_t n = expected_n > 0 ? expected_n : 1;
  // ceil(sqrt(n)), floored at 16 so tiny keysets stay one block. The
  // double sqrt is exact enough for the envelope (n <= 10^8); the loop
  // repairs any off-by-one.
  std::int64_t target =
      static_cast<std::int64_t>(std::sqrt(static_cast<double>(n)));
  if (target < 1) target = 1;
  while (target * target < n) ++target;
  while (target > 1 && (target - 1) * (target - 1) >= n) --target;
  if (target < 16) target = 16;
  target_ = target;
  cap_ = 2 * target;
}

void RemovalSoa::AppendSorted(Key k) {
  if (blocks_.empty() ||
      static_cast<std::int64_t>(blocks_.back().keys.size()) >= target_) {
    blocks_.emplace_back();
    blocks_.back().keys.reserve(static_cast<std::size_t>(target_));
  }
  blocks_.back().keys.push_back(k);
  ++total_;
}

void RemovalSoa::FinishBuild() {
  std::int64_t cb = 0;
  for (Block& b : blocks_) {
    b.count_before = cb;
    cb += static_cast<std::int64_t>(b.keys.size());
  }
  if (with_sa_) {
    // Backward pass: block-local suffix sums plus the running shifted
    // sum of everything to the right. Exact int64 under the magnitude
    // guard (each value is bounded by the full suffix sum < 2^63).
    std::int64_t after = 0;
    for (std::size_t bi = blocks_.size(); bi > 0; --bi) {
      Block& b = blocks_[bi - 1];
      b.sum_after = after;
      b.sa_local.resize(b.keys.size());
      std::int64_t acc = 0;
      for (std::size_t j = b.keys.size(); j > 0; --j) {
        b.sa_local[j - 1] = acc;
        acc += b.keys[j - 1] - shift_;
      }
      after += acc;
    }
  }
  built_ = true;
}

std::size_t RemovalSoa::FindBlock(Key k) const {
  // Last block whose first key is <= k (clamped to the first block):
  // keys below every block front still belong to block 0.
  std::size_t lo = 0;
  std::size_t hi = blocks_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (blocks_[mid].keys.front() <= k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

std::size_t RemovalSoa::BlockOfIndex(std::int64_t idx) const {
  std::size_t lo = 0;
  std::size_t hi = blocks_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (blocks_[mid].count_before <= idx) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;
}

void RemovalSoa::Insert(Key k, std::int64_t x) {
  ++commits_;
  if (blocks_.empty()) {
    blocks_.emplace_back();
    blocks_.back().keys.push_back(k);
    if (with_sa_) blocks_.back().sa_local.push_back(0);
    total_ = 1;
    touched_slots_ += 1;
    return;
  }
  const std::size_t bi = FindBlock(k);
  Block& b = blocks_[bi];
  const std::size_t m = b.keys.size();
  const auto pos_it = std::lower_bound(b.keys.begin(), b.keys.end(), k);
  const std::size_t pos = static_cast<std::size_t>(pos_it - b.keys.begin());
  if (with_sa_) {
    // The new key's local suffix is the shifted sum of the block
    // entries after it — readable in O(1) from the neighbour's record.
    const std::int64_t new_sal =
        pos < m ? b.sa_local[pos] + (b.keys[pos] - shift_) : 0;
    std::int64_t* sal = b.sa_local.data();
    for (std::size_t j = 0; j < pos; ++j) sal[j] += x;
    b.sa_local.insert(b.sa_local.begin() + static_cast<std::ptrdiff_t>(pos),
                      new_sal);
  }
  b.keys.insert(pos_it, k);
  total_ += 1;
  // Tier-relative directory: earlier blocks gain k in their suffix sum,
  // later blocks gain one key below them. O(block_count) scalars.
  if (with_sa_) {
    for (std::size_t j = 0; j < bi; ++j) blocks_[j].sum_after += x;
  }
  for (std::size_t j = bi + 1; j < blocks_.size(); ++j) {
    blocks_[j].count_before += 1;
  }
  touched_slots_ += static_cast<std::int64_t>(m + 1) +
                    static_cast<std::int64_t>(blocks_.size());
  SplitIfNeeded(bi);
}

void RemovalSoa::Remove(Key k, std::int64_t x) {
  ++commits_;
  const std::size_t bi = FindBlock(k);
  Block& b = blocks_[bi];
  const std::size_t m = b.keys.size();
  const auto pos_it = std::lower_bound(b.keys.begin(), b.keys.end(), k);
  const std::size_t pos = static_cast<std::size_t>(pos_it - b.keys.begin());
  if (with_sa_) {
    std::int64_t* sal = b.sa_local.data();
    for (std::size_t j = 0; j < pos; ++j) sal[j] -= x;
    b.sa_local.erase(b.sa_local.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  b.keys.erase(pos_it);
  total_ -= 1;
  if (with_sa_) {
    for (std::size_t j = 0; j < bi; ++j) blocks_[j].sum_after -= x;
  }
  for (std::size_t j = bi + 1; j < blocks_.size(); ++j) {
    blocks_[j].count_before -= 1;
  }
  touched_slots_ += static_cast<std::int64_t>(m) +
                    static_cast<std::int64_t>(blocks_.size());
  if (b.keys.empty()) {
    blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(bi));
    touched_slots_ += static_cast<std::int64_t>(blocks_.size());
    return;
  }
  MergeIfUnderflow(bi);
}

void RemovalSoa::SplitIfNeeded(std::size_t bi) {
  const std::int64_t m = static_cast<std::int64_t>(blocks_[bi].keys.size());
  if (m <= cap_) return;
  const std::size_t half = blocks_[bi].keys.size() / 2;
  Block right;
  {
    Block& b = blocks_[bi];
    right.keys.assign(b.keys.begin() + static_cast<std::ptrdiff_t>(half),
                      b.keys.end());
    right.count_before = b.count_before + static_cast<std::int64_t>(half);
    if (with_sa_) {
      right.sa_local.assign(
          b.sa_local.begin() + static_cast<std::ptrdiff_t>(half),
          b.sa_local.end());
      // Shifted sum of the departing right half: the left half's local
      // suffixes shed it, the left block's tier suffix gains it.
      const std::int64_t right_sum = b.sa_local[half - 1];
      b.sa_local.resize(half);
      for (std::int64_t& v : b.sa_local) v -= right_sum;
      right.sum_after = b.sum_after;
      b.sum_after += right_sum;
    }
    b.keys.resize(half);
  }
  touched_slots_ += m + static_cast<std::int64_t>(blocks_.size());
  blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(bi) + 1,
                 std::move(right));
}

void RemovalSoa::MergeIfUnderflow(std::size_t bi) {
  if (blocks_.size() <= 1) return;
  if (static_cast<std::int64_t>(blocks_[bi].keys.size()) * 4 >= cap_) return;
  // Merge with the right neighbour (left when bi is the last block);
  // a merge that overshoots the cap immediately re-splits balanced.
  std::size_t a = bi;
  std::size_t c = bi + 1;
  if (c == blocks_.size()) {
    a = bi - 1;
    c = bi;
  }
  Block& left = blocks_[a];
  Block& right = blocks_[c];
  const std::int64_t moved =
      static_cast<std::int64_t>(left.keys.size() + right.keys.size());
  if (with_sa_) {
    const std::int64_t right_sum =
        right.sa_local.front() + (right.keys.front() - shift_);
    for (std::int64_t& v : left.sa_local) v += right_sum;
    left.sa_local.insert(left.sa_local.end(), right.sa_local.begin(),
                         right.sa_local.end());
    left.sum_after = right.sum_after;
  }
  left.keys.insert(left.keys.end(), right.keys.begin(), right.keys.end());
  touched_slots_ += moved + static_cast<std::int64_t>(blocks_.size());
  blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(c));
  SplitIfNeeded(a);
}

void RemovalSoa::FlattenTo(std::vector<Key>* keys,
                           std::vector<std::int64_t>* sa) const {
  if (keys != nullptr) {
    keys->clear();
    keys->reserve(static_cast<std::size_t>(total_));
    for (const Block& b : blocks_) {
      keys->insert(keys->end(), b.keys.begin(), b.keys.end());
    }
  }
  if (sa != nullptr && with_sa_) {
    sa->clear();
    sa->reserve(static_cast<std::size_t>(total_));
    for (const Block& b : blocks_) {
      for (std::size_t j = 0; j < b.sa_local.size(); ++j) {
        sa->push_back(b.sa_local[j] + b.sum_after);
      }
    }
  }
}

}  // namespace lispoison
