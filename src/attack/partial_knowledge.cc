#include "attack/partial_knowledge.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "attack/greedy_poisoner.h"
#include "index/cdf_regression.h"

namespace lispoison {

Result<PartialKnowledgeResult> PoisonWithPartialKnowledge(
    const KeySet& keyset, const PartialKnowledgeOptions& options, Rng* rng) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot attack an empty keyset");
  }
  if (options.observe_fraction <= 0 || options.observe_fraction > 1) {
    return Status::InvalidArgument("observe_fraction must lie in (0, 1]");
  }
  if (options.poison_fraction <= 0 || options.poison_fraction > 0.5) {
    return Status::InvalidArgument("poison_fraction must lie in (0, 0.5]");
  }
  const std::int64_t n = keyset.size();
  const std::int64_t budget = static_cast<std::int64_t>(
      std::floor(options.poison_fraction * static_cast<double>(n)));
  if (budget < 1) {
    return Status::InvalidArgument("effective poisoning budget is zero");
  }

  // Sample the attacker's view of K without replacement.
  std::vector<Key> shuffled = keyset.keys();
  rng->Shuffle(&shuffled);
  const std::int64_t observed = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(std::llround(
             options.observe_fraction * static_cast<double>(n))));
  shuffled.resize(static_cast<std::size_t>(std::min(observed, n)));
  LISPOISON_ASSIGN_OR_RETURN(
      KeySet sample, KeySet::Create(std::move(shuffled), keyset.domain()));

  // Plan against the sample with the full budget (the attacker knows
  // roughly how many keys it may contribute, not how many exist).
  LISPOISON_ASSIGN_OR_RETURN(
      GreedyPoisonResult plan,
      GreedyPoisonCdf(sample, budget, options.attack));

  PartialKnowledgeResult result;
  result.observed_keys = sample.size();
  result.planned_keys = plan.poison_keys;
  result.predicted_loss = plan.poisoned_loss;

  // Injection: keys that collide with unobserved legitimate keys are
  // rejected by the index (no multiplicities) and silently dropped.
  for (Key kp : plan.poison_keys) {
    if (!keyset.Contains(kp)) result.injected_keys.push_back(kp);
  }

  LISPOISON_ASSIGN_OR_RETURN(CdfFit clean_fit, FitCdfRegression(keyset));
  result.base_loss = clean_fit.mse;
  if (result.injected_keys.empty()) {
    result.achieved_loss = clean_fit.mse;
    return result;
  }
  LISPOISON_ASSIGN_OR_RETURN(KeySet poisoned,
                             keyset.Union(result.injected_keys));
  LISPOISON_ASSIGN_OR_RETURN(CdfFit poisoned_fit, FitCdfRegression(poisoned));
  result.achieved_loss = poisoned_fit.mse;
  return result;
}

}  // namespace lispoison
