#include "attack/single_point.h"

#include <limits>

#include "common/thread_pool.h"

namespace lispoison {

double SafeRatioLoss(long double poisoned, long double base) {
  if (base > 0) return static_cast<double>(poisoned / base);
  if (poisoned > 0) return std::numeric_limits<double>::infinity();
  return 1.0;
}

std::unique_ptr<ThreadPool> MakeAttackPool(const AttackOptions& options) {
  if (options.num_threads == 0 || options.num_threads > 1) {
    return std::make_unique<ThreadPool>(options.num_threads);
  }
  return nullptr;
}

double SinglePointResult::RatioLoss() const {
  return SafeRatioLoss(poisoned_loss, base_loss);
}

Result<SinglePointResult> OptimalSinglePoint(const KeySet& keyset,
                                             const AttackOptions& options) {
  LISPOISON_ASSIGN_OR_RETURN(LossLandscape landscape,
                             LossLandscape::Create(keyset));
  LISPOISON_ASSIGN_OR_RETURN(
      LossLandscape::Candidate best,
      landscape.FindOptimal(options.interior_only, /*excluded=*/nullptr,
                            /*pool=*/nullptr, options.ArgmaxKnobs()));
  SinglePointResult result;
  result.poison_key = best.key;
  result.base_loss = landscape.BaseLoss();
  result.poisoned_loss = best.loss;
  return result;
}

}  // namespace lispoison
