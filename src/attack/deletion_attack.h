// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Extension (paper §V/§VI, update-stream threat model): adversaries that
// REMOVE or MODIFY keys instead of only inserting them. Deleting a key
// k_j has a mirror-image compound effect to insertion: every key larger
// than k_j loses one rank, so the deletion loss sequence admits the same
// O(1) aggregate evaluation as LossLandscape and a greedy multi-key
// attack. Modification (relocating a key the adversary owns) composes
// one deletion with one insertion per round.
//
// Both greedy attacks run on the persistent incremental LossLandscape
// (RemoveKey / InsertKey commits, the pruned removal argmax with its
// batched SoA bound kernel, and the tiered insertion argmax), selecting
// bit-identical sequences to the retained rebuild-per-round references
// for every prune x cache x thread-count combination.

#ifndef LISPOISON_ATTACK_DELETION_ATTACK_H_
#define LISPOISON_ATTACK_DELETION_ATTACK_H_

#include <vector>

#include "attack/loss_landscape.h"
#include "attack/single_point.h"
#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Result of the greedy deletion attack.
struct DeletionAttackResult {
  /// Keys removed, in removal order.
  std::vector<Key> removed_keys;
  /// Loss of the regression trained on the intact keyset K.
  long double base_loss = 0;
  /// Loss of the regression retrained on K minus the removals.
  long double attacked_loss = 0;
  /// Loss after each individual removal.
  std::vector<long double> loss_trajectory;
  /// Removal-argmax work counters summed over all rounds (exact
  /// evaluations, batched bound scores, pruned candidates).
  LossLandscape::ArgmaxStats argmax_stats;
  /// Block-local removal-SoA commit accounting: total slots rewritten
  /// across all committed removals, and the commit count. The per-commit
  /// quotient is O(sqrt(n)) by construction — the n=10M scaling gate in
  /// tools/check_bench_json.py holds the ratio against the n=100k row.
  /// Zero for the rebuild-per-round reference (no SoA to maintain).
  std::int64_t removal_commit_touched_slots = 0;
  std::int64_t removal_commits = 0;

  double RatioLoss() const { return SafeRatioLoss(attacked_loss, base_loss); }
};

/// \brief Greedy deletion attack: removes \p d keys, each round choosing
/// the stored key whose removal maximizes the retrained loss.
///
/// Runs on one persistent LossLandscape: each committed removal updates
/// the aggregates (O(log n)), the tiered gap decomposition (O(sqrt(G))
/// merge) and the candidate SoA in place, and each round's argmax is
/// the pruned FindOptimalRemoval scan — no per-round landscape
/// reconstruction. AttackOptions::num_threads / prune_argmax /
/// cache_argmax plumb straight through; the removed-key sequence and
/// loss trajectory are bit-identical to GreedyDeleteCdfReference for
/// every setting.
///
/// The adversary may only delete keys it plausibly controls; pass
/// \p deletable to restrict candidates (empty = any key may go). Fails
/// when fewer than d + 2 keys remain available (the regression needs
/// at least two points).
Result<DeletionAttackResult> GreedyDeleteCdf(
    const KeySet& keyset, std::int64_t d,
    const std::vector<Key>& deletable = {},
    const AttackOptions& options = {});

/// \brief The pre-refactor rebuild-per-round implementation: every round
/// rebuilds an O(n) suffix-sum landscape over the surviving keys and
/// scans all candidates exhaustively. Kept as the differential-testing
/// oracle and the baseline of bench_attack_throughput; do not use on
/// hot paths.
Result<DeletionAttackResult> GreedyDeleteCdfReference(
    const KeySet& keyset, std::int64_t d,
    const std::vector<Key>& deletable = {});

/// \brief Result of the greedy modification (relocation) attack.
struct ModificationAttackResult {
  /// (old key, new key) pairs in application order.
  std::vector<std::pair<Key, Key>> moves;
  long double base_loss = 0;
  long double attacked_loss = 0;
  /// Loss after each completed move (size == |moves|).
  std::vector<long double> loss_trajectory;
  /// Combined removal- and insertion-argmax work counters.
  LossLandscape::ArgmaxStats argmax_stats;
  /// Removal-SoA commit accounting (see DeletionAttackResult); a modify
  /// round's RemoveKey half contributes, the InsertKey half updates the
  /// same blocks and is counted identically.
  std::int64_t removal_commit_touched_slots = 0;
  std::int64_t removal_commits = 0;

  double RatioLoss() const { return SafeRatioLoss(attacked_loss, base_loss); }
};

/// \brief Greedy modification attack: performs \p moves rounds, each
/// deleting the loss-maximizing deletable key and re-inserting it at
/// the loss-maximizing unoccupied position (keeping |K| constant — the
/// adversary "edits" records it controls, e.g. OpenStreetMap entries).
///
/// Runs on one persistent LossLandscape via RemoveKey + InsertKey (the
/// ReplaceKey decomposition), sharing the incremental engine with every
/// other attack in the repo; bit-identical to
/// GreedyModifyCdfReference for every prune x cache x thread setting.
///
/// \p movable restricts which keys may be relocated (empty = any).
Result<ModificationAttackResult> GreedyModifyCdf(
    const KeySet& keyset, std::int64_t moves,
    const std::vector<Key>& movable = {},
    const AttackOptions& options = {});

/// \brief The pre-refactor rebuild-per-round modification attack
/// (per-round deletion landscape + fresh insertion landscape). Kept as
/// the differential-testing oracle and bench baseline.
Result<ModificationAttackResult> GreedyModifyCdfReference(
    const KeySet& keyset, std::int64_t moves,
    const std::vector<Key>& movable = {},
    const AttackOptions& options = {});

}  // namespace lispoison

#endif  // LISPOISON_ATTACK_DELETION_ATTACK_H_
