#include "attack/greedy_poisoner.h"

#include <algorithm>
#include <memory>
#include <string>

#include "attack/attack_telemetry.h"
#include "attack/loss_landscape.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"

namespace lispoison {

Result<GreedyPoisonResult> GreedyPoisonCdf(const KeySet& keyset,
                                           std::int64_t p,
                                           const AttackOptions& options) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot poison an empty keyset");
  }
  if (p < 1) {
    return Status::InvalidArgument("poisoning budget p must be >= 1");
  }

  GreedyPoisonResult result;
  result.poison_keys.reserve(static_cast<std::size_t>(p));
  result.loss_trajectory.reserve(static_cast<std::size_t>(p));

  // One landscape for the whole attack: each committed poison updates
  // the aggregates and the gap decomposition in place, so the next
  // round's argmax sees the compound rank shifts exactly.
  LISPOISON_ASSIGN_OR_RETURN(LossLandscape landscape,
                             LossLandscape::Create(keyset));
  result.base_loss = landscape.BaseLoss();

  // One pool for all rounds; the chunked argmax reduction is
  // thread-count independent, so any worker count selects the same
  // keys.
  std::unique_ptr<ThreadPool> pool = MakeAttackPool(options);

  const LossLandscape::ArgmaxOptions argmax = options.ArgmaxKnobs();
  TraceSpan attack_span(TraceCategory::kAttack, "greedy_poison_cdf", p);
  for (std::int64_t round = 0; round < p; ++round) {
    const LossLandscape::ArgmaxStats stats_before = result.argmax_stats;
    auto best = landscape.FindOptimal(options.interior_only,
                                      /*excluded=*/nullptr, pool.get(),
                                      argmax, &result.argmax_stats);
    attack_internal::AttackTelemetry::Get().AddDelta(result.argmax_stats,
                                                     stats_before);
    if (!best.ok()) {
      return Status::ResourceExhausted(
          "poisoning range exhausted after " + std::to_string(round) +
          " of " + std::to_string(p) + " insertions");
    }
    LISPOISON_RETURN_IF_ERROR(landscape.InsertKey(best->key));
    result.poison_keys.push_back(best->key);
    result.loss_trajectory.push_back(best->loss);
  }
  result.poisoned_loss = result.loss_trajectory.back();
  return result;
}

Result<GreedyPoisonResult> GreedyPoisonCdfReference(
    const KeySet& keyset, std::int64_t p, const AttackOptions& options) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot poison an empty keyset");
  }
  if (p < 1) {
    return Status::InvalidArgument("poisoning budget p must be >= 1");
  }

  GreedyPoisonResult result;
  result.poison_keys.reserve(static_cast<std::size_t>(p));
  result.loss_trajectory.reserve(static_cast<std::size_t>(p));

  // The working set starts as K and absorbs each committed poisoning key;
  // the next round's landscape sees updated ranks automatically (the
  // compound effect is recomputed exactly each round).
  std::vector<Key> work = keyset.keys();
  const KeyDomain domain = keyset.domain();

  // The oracle always runs the exhaustive scan — it is the
  // differential-testing ground truth the pruned argmax is proven
  // bit-identical against (tests/argmax_pruning_test.cc).
  LossLandscape::ArgmaxOptions exhaustive;
  exhaustive.prune = false;

  for (std::int64_t round = 0; round < p; ++round) {
    LISPOISON_ASSIGN_OR_RETURN(
        KeySet current, KeySet::Create(work, domain));
    LISPOISON_ASSIGN_OR_RETURN(LossLandscape landscape,
                               LossLandscape::Create(current));
    if (round == 0) result.base_loss = landscape.BaseLoss();
    auto best = landscape.FindOptimal(options.interior_only,
                                      /*excluded=*/nullptr, /*pool=*/nullptr,
                                      exhaustive, &result.argmax_stats);
    if (!best.ok()) {
      return Status::ResourceExhausted(
          "poisoning range exhausted after " + std::to_string(round) +
          " of " + std::to_string(p) + " insertions");
    }
    const Key kp = best->key;
    work.insert(std::lower_bound(work.begin(), work.end(), kp), kp);
    result.poison_keys.push_back(kp);
    result.loss_trajectory.push_back(best->loss);
  }
  result.poisoned_loss = result.loss_trajectory.back();
  return result;
}

Result<KeySet> ApplyPoison(const KeySet& keyset,
                           const std::vector<Key>& poison_keys) {
  return keyset.Union(poison_keys);
}

}  // namespace lispoison
