#include "attack/greedy_poisoner.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "attack/attack_telemetry.h"
#include "attack/loss_landscape.h"
#include "common/snapshot.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "data/io.h"

namespace lispoison {

Result<GreedyPoisonResult> GreedyPoisonCdf(const KeySet& keyset,
                                           std::int64_t p,
                                           const AttackOptions& options) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot poison an empty keyset");
  }
  if (p < 1) {
    return Status::InvalidArgument("poisoning budget p must be >= 1");
  }

  GreedyPoisonResult result;
  result.poison_keys.reserve(static_cast<std::size_t>(p));
  result.loss_trajectory.reserve(static_cast<std::size_t>(p));

  // One pool for all rounds; the chunked argmax reduction — and the
  // chunked prefix-scan Create below — are thread-count independent, so
  // any worker count builds the same landscape and selects the same
  // keys.
  std::unique_ptr<ThreadPool> pool = MakeAttackPool(options);

  // One landscape for the whole attack: each committed poison updates
  // the aggregates and the gap decomposition in place, so the next
  // round's argmax sees the compound rank shifts exactly.
  LISPOISON_ASSIGN_OR_RETURN(LossLandscape landscape,
                             LossLandscape::Create(keyset, pool.get()));
  result.base_loss = landscape.BaseLoss();

  const LossLandscape::ArgmaxOptions argmax = options.ArgmaxKnobs();
  TraceSpan attack_span(TraceCategory::kAttack, "greedy_poison_cdf", p);
  for (std::int64_t round = 0; round < p; ++round) {
    const LossLandscape::ArgmaxStats stats_before = result.argmax_stats;
    auto best = landscape.FindOptimal(options.interior_only,
                                      /*excluded=*/nullptr, pool.get(),
                                      argmax, &result.argmax_stats);
    attack_internal::AttackTelemetry::Get().AddDelta(result.argmax_stats,
                                                     stats_before);
    if (!best.ok()) {
      return Status::ResourceExhausted(
          "poisoning range exhausted after " + std::to_string(round) +
          " of " + std::to_string(p) + " insertions");
    }
    LISPOISON_RETURN_IF_ERROR(landscape.InsertKey(best->key));
    result.poison_keys.push_back(best->key);
    result.loss_trajectory.push_back(best->loss);
  }
  result.poisoned_loss = result.loss_trajectory.back();
  return result;
}

namespace {

// Checkpoint metadata (one pod section in the snapshot). The Int128
// aggregate words make resume self-verifying: replaying the recorded
// poison keys through a freshly built landscape must land on exactly
// these integers, or the checkpoint is rejected as belonging to a
// different keyset/engine state.
struct GreedyCkptMeta {
  std::uint64_t keyset_fp = 0;
  std::int64_t p_total = 0;
  std::int64_t rounds_done = 0;
  std::int64_t interior_only = 0;
  std::int64_t n = 0;
  Key shift = 0;
  Int128 sum_k = 0;
  Int128 sum_k2 = 0;
  Int128 sum_kr = 0;
};

// Sections: "meta" (GreedyCkptMeta), "poison" (Key array, commit
// order), "traj" (raw long-double images — host format, same-machine
// resume only, like the rest of the snapshot container), "stats"
// (ArgmaxStats pod), "base_loss" (long double). WriteToFile is atomic,
// so a kill mid-write leaves the previous checkpoint intact.
Status WriteGreedyCheckpoint(const std::string& path, std::uint64_t fp,
                             std::int64_t p, const AttackOptions& options,
                             const LossLandscape& landscape,
                             const GreedyPoisonResult& result) {
  GreedyCkptMeta meta;
  meta.keyset_fp = fp;
  meta.p_total = p;
  meta.rounds_done = static_cast<std::int64_t>(result.poison_keys.size());
  meta.interior_only = options.interior_only ? 1 : 0;
  const LossLandscape::Aggregates agg = landscape.aggregates();
  meta.n = agg.n;
  meta.shift = agg.shift;
  meta.sum_k = agg.sum_k;
  meta.sum_k2 = agg.sum_k2;
  meta.sum_kr = agg.sum_kr;
  SnapshotWriter writer;
  writer.AddPodSection("meta", meta);
  writer.AddVectorSection("poison", result.poison_keys);
  writer.AddVectorSection("traj", result.loss_trajectory);
  writer.AddPodSection("stats", result.argmax_stats);
  writer.AddPodSection("base_loss", result.base_loss);
  return writer.WriteToFile(path);
}

}  // namespace

Result<GreedyPoisonResult> GreedyPoisonCdfCheckpointed(
    const KeySet& keyset, std::int64_t p, const AttackOptions& options,
    const GreedyCheckpointOptions& ckpt) {
  if (ckpt.path.empty()) return GreedyPoisonCdf(keyset, p, options);
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot poison an empty keyset");
  }
  if (p < 1) {
    return Status::InvalidArgument("poisoning budget p must be >= 1");
  }

  const std::uint64_t fp = KeysetFingerprint(keyset);

  GreedyPoisonResult result;
  result.poison_keys.reserve(static_cast<std::size_t>(p));
  result.loss_trajectory.reserve(static_cast<std::size_t>(p));

  std::unique_ptr<ThreadPool> pool = MakeAttackPool(options);
  LISPOISON_ASSIGN_OR_RETURN(LossLandscape landscape,
                             LossLandscape::Create(keyset, pool.get()));
  result.base_loss = landscape.BaseLoss();

  std::int64_t start = 0;
  auto reader_or = SnapshotReader::Open(ckpt.path);
  if (reader_or.ok()) {
    LISPOISON_ASSIGN_OR_RETURN(const GreedyCkptMeta meta,
                               reader_or->ReadPod<GreedyCkptMeta>("meta"));
    if (meta.keyset_fp != fp) {
      return Status::FailedPrecondition(
          "checkpoint '" + ckpt.path +
          "' was taken against a different keyset");
    }
    if (meta.p_total != p ||
        meta.interior_only != (options.interior_only ? 1 : 0)) {
      return Status::FailedPrecondition(
          "checkpoint '" + ckpt.path +
          "' was taken for a different attack shape");
    }
    LISPOISON_ASSIGN_OR_RETURN(std::vector<Key> poison,
                               reader_or->ReadVector<Key>("poison"));
    LISPOISON_ASSIGN_OR_RETURN(std::vector<long double> traj,
                               reader_or->ReadVector<long double>("traj"));
    LISPOISON_ASSIGN_OR_RETURN(
        const LossLandscape::ArgmaxStats stats,
        reader_or->ReadPod<LossLandscape::ArgmaxStats>("stats"));
    LISPOISON_ASSIGN_OR_RETURN(const long double stored_base,
                               reader_or->ReadPod<long double>("base_loss"));
    if (meta.rounds_done != static_cast<std::int64_t>(poison.size()) ||
        poison.size() != traj.size() || meta.rounds_done > p) {
      return Status::FailedPrecondition("checkpoint '" + ckpt.path +
                                        "' is internally inconsistent");
    }
    // Replay: each committed insertion is an exact integer splice, so
    // the rebuilt landscape holds bit-for-bit the engine state the
    // interrupted run held after round rounds_done.
    for (const Key kp : poison) {
      LISPOISON_RETURN_IF_ERROR(landscape.InsertKey(kp));
    }
    const LossLandscape::Aggregates agg = landscape.aggregates();
    if (agg.n != meta.n || agg.shift != meta.shift ||
        agg.sum_k != meta.sum_k || agg.sum_k2 != meta.sum_k2 ||
        agg.sum_kr != meta.sum_kr) {
      return Status::FailedPrecondition(
          "checkpoint '" + ckpt.path +
          "' replay does not reproduce the recorded aggregates");
    }
    result.poison_keys = std::move(poison);
    result.loss_trajectory = std::move(traj);
    result.argmax_stats = stats;
    result.base_loss = stored_base;
    start = meta.rounds_done;
  } else if (reader_or.status().code() != StatusCode::kNotFound) {
    // A corrupt checkpoint is refused loudly instead of silently
    // restarting a multi-hour run from scratch.
    return reader_or.status();
  }

  const LossLandscape::ArgmaxOptions argmax = options.ArgmaxKnobs();
  TraceSpan attack_span(TraceCategory::kAttack, "greedy_poison_cdf_ckpt",
                        p - start);
  for (std::int64_t round = start; round < p; ++round) {
    const LossLandscape::ArgmaxStats stats_before = result.argmax_stats;
    auto best = landscape.FindOptimal(options.interior_only,
                                      /*excluded=*/nullptr, pool.get(),
                                      argmax, &result.argmax_stats);
    attack_internal::AttackTelemetry::Get().AddDelta(result.argmax_stats,
                                                     stats_before);
    if (!best.ok()) {
      return Status::ResourceExhausted(
          "poisoning range exhausted after " + std::to_string(round) +
          " of " + std::to_string(p) + " insertions");
    }
    LISPOISON_RETURN_IF_ERROR(landscape.InsertKey(best->key));
    result.poison_keys.push_back(best->key);
    result.loss_trajectory.push_back(best->loss);

    const std::int64_t committed = round + 1;
    const bool at_halt = committed == ckpt.halt_after;
    if (committed == p || at_halt ||
        (ckpt.every > 0 && committed % ckpt.every == 0)) {
      LISPOISON_RETURN_IF_ERROR(WriteGreedyCheckpoint(ckpt.path, fp, p,
                                                      options, landscape,
                                                      result));
    }
    if (at_halt && committed < p) {
      return Status::FailedPrecondition(
          "halted after " + std::to_string(committed) +
          " committed insertions (GreedyCheckpointOptions::halt_after)");
    }
  }
  result.poisoned_loss = result.loss_trajectory.back();
  return result;
}

Result<GreedyPoisonResult> GreedyPoisonCdfReference(
    const KeySet& keyset, std::int64_t p, const AttackOptions& options) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot poison an empty keyset");
  }
  if (p < 1) {
    return Status::InvalidArgument("poisoning budget p must be >= 1");
  }

  GreedyPoisonResult result;
  result.poison_keys.reserve(static_cast<std::size_t>(p));
  result.loss_trajectory.reserve(static_cast<std::size_t>(p));

  // The working set starts as K and absorbs each committed poisoning key;
  // the next round's landscape sees updated ranks automatically (the
  // compound effect is recomputed exactly each round).
  std::vector<Key> work = keyset.keys();
  const KeyDomain domain = keyset.domain();

  // The oracle always runs the exhaustive scan — it is the
  // differential-testing ground truth the pruned argmax is proven
  // bit-identical against (tests/argmax_pruning_test.cc).
  LossLandscape::ArgmaxOptions exhaustive;
  exhaustive.prune = false;

  for (std::int64_t round = 0; round < p; ++round) {
    LISPOISON_ASSIGN_OR_RETURN(
        KeySet current, KeySet::Create(work, domain));
    LISPOISON_ASSIGN_OR_RETURN(LossLandscape landscape,
                               LossLandscape::Create(current));
    if (round == 0) result.base_loss = landscape.BaseLoss();
    auto best = landscape.FindOptimal(options.interior_only,
                                      /*excluded=*/nullptr, /*pool=*/nullptr,
                                      exhaustive, &result.argmax_stats);
    if (!best.ok()) {
      return Status::ResourceExhausted(
          "poisoning range exhausted after " + std::to_string(round) +
          " of " + std::to_string(p) + " insertions");
    }
    const Key kp = best->key;
    work.insert(std::lower_bound(work.begin(), work.end(), kp), kp);
    result.poison_keys.push_back(kp);
    result.loss_trajectory.push_back(best->loss);
  }
  result.poisoned_loss = result.loss_trajectory.back();
  return result;
}

Result<KeySet> ApplyPoison(const KeySet& keyset,
                           const std::vector<Key>& poison_keys) {
  return keyset.Union(poison_keys);
}

}  // namespace lispoison
