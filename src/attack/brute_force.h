// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Brute-force reference attacks — the paper's O(mn) "first attempt".
// These exist as correctness oracles for the optimal attack (Section IV-C
// must match them exactly) and for the endpoint-vs-sweep runtime ablation
// bench; they are not meant for production-size domains.

#ifndef LISPOISON_ATTACK_BRUTE_FORCE_H_
#define LISPOISON_ATTACK_BRUTE_FORCE_H_

#include <vector>

#include "attack/single_point.h"
#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Single-point brute force: recomputes the full regression from
/// scratch for every unoccupied candidate key. O(m*n).
Result<SinglePointResult> BruteForceSinglePoint(
    const KeySet& keyset, const AttackOptions& options = {});

/// \brief Result of the exhaustive multi-point search.
struct BruteForceMultiResult {
  std::vector<Key> poison_keys;
  long double base_loss = 0;
  long double poisoned_loss = 0;
  double RatioLoss() const { return SafeRatioLoss(poisoned_loss, base_loss); }
};

/// \brief Exhaustive multi-point poisoning: tries every size-p subset of
/// unoccupied candidate keys and returns the global optimum. Exponential;
/// guarded by \p max_combinations (default 2,000,000) so tests cannot
/// explode. Used to validate the greedy attack on tiny instances.
Result<BruteForceMultiResult> BruteForceMultiPoint(
    const KeySet& keyset, std::int64_t p, const AttackOptions& options = {},
    std::int64_t max_combinations = 2000000);

}  // namespace lispoison

#endif  // LISPOISON_ATTACK_BRUTE_FORCE_H_
