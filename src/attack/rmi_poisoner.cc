#include "attack/rmi_poisoner.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "attack/attack_telemetry.h"
#include "attack/loss_landscape.h"
#include "common/stats.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

constexpr long double kInfeasible =
    -std::numeric_limits<long double>::infinity();

// ---------------------------------------------------------------------------
// Incremental implementation.
//
// Each second-stage model owns a persistent LossLandscape over its
// combined (legitimate + poison) keys. Greedy insertions update it in
// place; only the rare *applied* exchanges — which move a legitimate
// boundary key between models — rebuild the two touched landscapes.
// Exchange *simulations*, the hot loop of the volume-allocation phase,
// never materialize a model: they run on O(1) aggregate snapshots plus a
// read-only scan of the receiver's existing gap decomposition.
// ---------------------------------------------------------------------------

/// Attacker-side state of one second-stage model.
struct ModelState {
  std::vector<Key> legit;    // Sorted legitimate keys.
  std::vector<Key> poisons;  // Poison keys in insertion order.
  LossLandscape landscape;   // Persistent engine over legit ∪ poisons.
  long double loss = 0;      // == landscape.BaseLoss().
  LossLandscape::ArgmaxStats stats;  // Greedy-argmax work counters.

  /// Rebuilds the landscape from scratch (tight domain over the combined
  /// keys). Needed after exchanges, which restructure the legit set.
  Status Rebuild() {
    std::vector<Key> combined = legit;
    combined.insert(combined.end(), poisons.begin(), poisons.end());
    std::sort(combined.begin(), combined.end());
    LISPOISON_ASSIGN_OR_RETURN(KeySet keyset,
                               KeySet::CreateWithTightDomain(
                                   std::move(combined)));
    LISPOISON_ASSIGN_OR_RETURN(landscape, LossLandscape::Create(keyset));
    loss = landscape.BaseLoss();
    return Status::OK();
  }
};

/// Exact loss of the contiguous slice keys[first, first+count) under a
/// local regression with ranks 1..count. O(count), allocation-free.
long double SpanLoss(const std::vector<Key>& keys, std::int64_t first,
                     std::int64_t count) {
  if (count <= 0) return 0;
  LossLandscape::Aggregates agg;
  agg.shift = keys[static_cast<std::size_t>(first)];
  for (std::int64_t i = 0; i < count; ++i) {
    agg.InsertAboveAll(keys[static_cast<std::size_t>(first + i)]);
  }
  return agg.Loss();
}

/// Runs one greedy single-point insertion (one step of Algorithm 1) on
/// the model's persistent landscape. `occupied` holds every key taken
/// globally (legitimate keys of all models plus every committed poison):
/// after boundary exchanges the spans of adjacent models can overlap, so
/// a candidate optimal for this model may already be another model's
/// poison and must be skipped. Returns false when no unoccupied
/// candidate remains.
bool GreedyInsertOne(ModelState* state,
                     const std::unordered_set<Key>& occupied,
                     bool interior_only,
                     const LossLandscape::ArgmaxOptions& argmax) {
  if (state->landscape.size() == 0) return false;
  const LossLandscape::ArgmaxStats stats_before = state->stats;
  auto best = state->landscape.FindOptimal(interior_only, &occupied,
                                           /*pool=*/nullptr, argmax,
                                           &state->stats);
  // Stream this round's argmax work into the attack.* time series
  // (GreedyInsertOne runs inside ParallelFor — the counters are
  // per-thread cells, so concurrent rounds never contend).
  attack_internal::AttackTelemetry::Get().AddDelta(state->stats,
                                                   stats_before);
  if (!best.ok()) return false;
  if (!state->landscape.InsertKey(best->key).ok()) return false;
  state->poisons.push_back(best->key);
  state->loss = best->loss;
  return true;
}

/// Simulates the directed exchange donor -> receiver of one poisoning
/// slot between neighbouring models, together with the reverse move of
/// the boundary legitimate key, and returns the resulting change in the
/// *sum* of the two model losses (kInfeasible when the move is not
/// allowed). `left_to_right` distinguishes i->i+1 from i<-i+1.
///
/// Read-only: the donor side is pure aggregate arithmetic (remove its
/// newest poison, absorb the boundary key at the edge); the receiver
/// side scans its existing gaps against an aggregate snapshot with the
/// boundary key hypothetically removed.
long double SimulateExchange(const ModelState& donor,
                             const ModelState& receiver, bool left_to_right,
                             const std::unordered_set<Key>& occupied,
                             std::int64_t threshold, bool interior_only) {
  if (donor.poisons.empty()) return kInfeasible;
  if (static_cast<std::int64_t>(receiver.poisons.size()) + 1 > threshold) {
    return kInfeasible;
  }
  // The legitimate donor is the *receiver of the poison slot*: it gives
  // its boundary legitimate key to the poison-donor model so both models
  // keep their total key counts.
  if (receiver.legit.size() < 2) return kInfeasible;
  if (receiver.landscape.size() < 2) return kInfeasible;

  // (C) + (B), donor side: drop the newest poison, absorb the boundary
  // legitimate key (which lies beyond the donor's whole span).
  const Key removed_poison = donor.poisons.back();
  const Key boundary =
      left_to_right ? receiver.legit.front() : receiver.legit.back();
  LossLandscape::Aggregates donor_agg = donor.landscape.aggregates();
  {
    const auto stats = donor.landscape.PrefixAt(removed_poison);
    const Int128 kq_s = static_cast<Int128>(removed_poison) - donor_agg.shift;
    donor_agg.Remove(removed_poison, stats.count_less,
                     donor_agg.sum_k - stats.prefix_sum - kq_s);
  }
  if (left_to_right) {
    donor_agg.InsertAboveAll(boundary);
  } else {
    donor_agg.InsertBelowAll(boundary);
  }
  const long double donor_after = donor_agg.Loss();

  // (B) + (A), receiver side: the boundary key is its global min (i->i+1)
  // or max (i<-i+1); remove it from a snapshot, then evaluate the best
  // greedy insertion over the existing gap decomposition with ranks and
  // prefix sums adjusted for the removal.
  LossLandscape::Aggregates recv_agg = receiver.landscape.aggregates();
  const Int128 kb_s = static_cast<Int128>(boundary) - recv_agg.shift;
  Key cand_lo;
  Key cand_hi;
  Rank rank_adj;
  Int128 prefix_adj;
  if (left_to_right) {
    recv_agg.RemoveSmallest(boundary);
    const Key new_min = receiver.landscape.SecondMinKey();
    cand_lo = interior_only ? new_min + 1 : new_min;
    cand_hi = interior_only ? receiver.landscape.max_key() - 1
                            : receiver.landscape.max_key();
    rank_adj = 1;        // Every candidate sits above the removed min...
    prefix_adj = kb_s;   // ...whose shifted value its prefix sum included.
  } else {
    recv_agg.RemoveLargest(boundary);
    const Key new_max = receiver.landscape.SecondMaxKey();
    cand_lo = interior_only ? receiver.landscape.min_key() + 1
                            : receiver.landscape.min_key();
    cand_hi = interior_only ? new_max - 1 : new_max;
    rank_adj = 0;        // Candidates lie below the removed max.
    prefix_adj = 0;
  }

  bool have = false;
  long double best_after = 0;
  receiver.landscape.ForEachGapInRange(
      cand_lo, cand_hi,
      [&](Key lo, Key hi, Rank count_less, Int128 prefix_sum) {
        const Rank cl = count_less - rank_adj;
        const Int128 suffix = recv_agg.sum_k - (prefix_sum - prefix_adj);
        auto consider = [&](Key kp) {
          if (occupied.count(kp) != 0) return;
          const long double loss = recv_agg.LossAfterInsert(kp, cl, suffix);
          if (!have || loss > best_after) {
            best_after = loss;
            have = true;
          }
        };
        consider(lo);
        if (hi != lo) consider(hi);
      });
  if (!have) return kInfeasible;

  const long double before = donor.loss + receiver.loss;
  return (donor_after + best_after) - before;
}

/// Applies the exchange for real (same move order as SimulateExchange).
/// Works on copies and commits only on success, so a move that turned
/// out infeasible (the state may have drifted since simulation) leaves
/// everything untouched.
///
/// Measured dead end (PR 5): committing the receiver's boundary-key
/// removal in place with LossLandscape::RemoveKey instead of the
/// tight-domain Rebuild is selection-identical (interior candidate
/// ranges depend only on the current min/max) but ~35% *slower* on the
/// n=100k uniform attack — the receiver's tier layout and overlays then
/// evolve across dozens of exchanges without ever being re-balanced
/// around the shifted span, degrading the tier-bound seeding (exact
/// re-checks nearly double), while the Rebuild it saves is only
/// O(model) ~ microseconds. The fresh per-exchange Rebuild is the
/// faster configuration, so it stays; RemoveKey's home turf is the
/// update-stream attacks, where removals dominate and the tier
/// re-balancing tracks them.
bool ApplyExchange(ModelState* donor, ModelState* receiver,
                   bool left_to_right, std::unordered_set<Key>* occupied,
                   std::int64_t threshold, bool interior_only,
                   const LossLandscape::ArgmaxOptions& argmax) {
  if (donor->poisons.empty()) return false;
  if (static_cast<std::int64_t>(receiver->poisons.size()) + 1 > threshold) {
    return false;
  }
  if (receiver->legit.size() < 2) return false;
  // Copy only the key vectors — Rebuild() replaces the landscapes, so
  // deep-copying them here would be wasted work.
  ModelState d;
  d.legit = donor->legit;
  d.poisons = donor->poisons;
  d.stats = donor->stats;
  ModelState r;
  r.legit = receiver->legit;
  r.poisons = receiver->poisons;
  r.stats = receiver->stats;
  const Key removed_poison = d.poisons.back();
  d.poisons.pop_back();
  if (left_to_right) {
    const Key boundary = r.legit.front();
    r.legit.erase(r.legit.begin());
    d.legit.push_back(boundary);  // >= all of d's keys: stays sorted.
  } else {
    const Key boundary = r.legit.back();
    r.legit.pop_back();
    d.legit.insert(d.legit.begin(), boundary);  // <= all of d's keys.
  }
  if (!d.Rebuild().ok() || !r.Rebuild().ok()) return false;
  // The freed key becomes available again before the receiver's insert.
  occupied->erase(removed_poison);
  if (!GreedyInsertOne(&r, *occupied, interior_only, argmax)) {
    occupied->insert(removed_poison);
    return false;
  }
  occupied->insert(r.poisons.back());
  *donor = std::move(d);
  *receiver = std::move(r);
  return true;
}

// ---------------------------------------------------------------------------
// Reference implementation (pre-refactor): copy + sort + retrain per
// call. Exercised by the differential tests and the throughput bench.
// ---------------------------------------------------------------------------

struct RefModelState {
  std::vector<Key> legit;
  std::vector<Key> poisons;
  long double loss = 0;
};

long double RefComputeModelLoss(const RefModelState& state) {
  std::vector<Key> combined = state.legit;
  combined.insert(combined.end(), state.poisons.begin(), state.poisons.end());
  std::sort(combined.begin(), combined.end());
  if (combined.empty()) return 0;
  const Key shift = combined.front();
  MomentAccumulator acc;
  Rank r = 1;
  for (Key k : combined) acc.Add(k - shift, r++);
  return FitFromMoments(acc).mse;
}

bool RefGreedyInsertOne(RefModelState* state,
                        const std::unordered_set<Key>& occupied,
                        bool interior_only) {
  std::vector<Key> combined = state->legit;
  combined.insert(combined.end(), state->poisons.begin(),
                  state->poisons.end());
  std::sort(combined.begin(), combined.end());
  if (combined.empty()) return false;
  auto keyset = KeySet::CreateWithTightDomain(std::move(combined));
  if (!keyset.ok()) return false;
  auto landscape = LossLandscape::Create(*keyset);
  if (!landscape.ok()) return false;
  bool have = false;
  Key best_key = 0;
  long double best_loss = 0;
  for (const Key kp : landscape->GapEndpoints(interior_only)) {
    if (occupied.count(kp)) continue;
    auto loss = landscape->LossAt(kp);
    if (!loss.ok()) continue;
    if (!have || *loss > best_loss) {
      best_key = kp;
      best_loss = *loss;
      have = true;
    }
  }
  if (!have) return false;
  state->poisons.push_back(best_key);
  state->loss = best_loss;
  return true;
}

long double RefSimulateExchange(const RefModelState& donor,
                                const RefModelState& receiver,
                                bool left_to_right,
                                const std::unordered_set<Key>& occupied,
                                std::int64_t threshold, bool interior_only) {
  if (donor.poisons.empty()) return kInfeasible;
  if (static_cast<std::int64_t>(receiver.poisons.size()) + 1 > threshold) {
    return kInfeasible;
  }
  if (receiver.legit.size() < 2) return kInfeasible;

  RefModelState d = donor;
  RefModelState r = receiver;
  d.poisons.pop_back();
  if (left_to_right) {
    const Key boundary = r.legit.front();
    r.legit.erase(r.legit.begin());
    d.legit.push_back(boundary);
  } else {
    const Key boundary = r.legit.back();
    r.legit.pop_back();
    d.legit.insert(d.legit.begin(), boundary);
  }
  d.loss = RefComputeModelLoss(d);
  r.loss = RefComputeModelLoss(r);
  if (!RefGreedyInsertOne(&r, occupied, interior_only)) return kInfeasible;
  const long double before = donor.loss + receiver.loss;
  const long double after = d.loss + r.loss;
  return after - before;
}

bool RefApplyExchange(RefModelState* donor, RefModelState* receiver,
                      bool left_to_right, std::unordered_set<Key>* occupied,
                      std::int64_t threshold, bool interior_only) {
  if (donor->poisons.empty()) return false;
  if (static_cast<std::int64_t>(receiver->poisons.size()) + 1 > threshold) {
    return false;
  }
  if (receiver->legit.size() < 2) return false;
  RefModelState d = *donor;
  RefModelState r = *receiver;
  d.poisons.pop_back();
  if (left_to_right) {
    const Key boundary = r.legit.front();
    r.legit.erase(r.legit.begin());
    d.legit.push_back(boundary);
  } else {
    const Key boundary = r.legit.back();
    r.legit.pop_back();
    d.legit.insert(d.legit.begin(), boundary);
  }
  const Key removed_poison = donor->poisons.back();
  d.loss = RefComputeModelLoss(d);
  r.loss = RefComputeModelLoss(r);
  occupied->erase(removed_poison);
  if (!RefGreedyInsertOne(&r, *occupied, interior_only)) {
    occupied->insert(removed_poison);
    return false;
  }
  occupied->insert(r.poisons.back());
  *donor = std::move(d);
  *receiver = std::move(r);
  return true;
}

/// Shared option validation; fills in the derived quantities.
struct DerivedOptions {
  std::int64_t num_models = 0;
  std::int64_t budget = 0;
  std::int64_t threshold = 0;
  std::int64_t max_exchanges = 0;
};

Result<DerivedOptions> ValidateOptions(const KeySet& keyset,
                                       const RmiAttackOptions& options) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot poison an empty keyset");
  }
  if (options.poison_fraction <= 0 || options.poison_fraction > 0.5) {
    return Status::InvalidArgument(
        "poison_fraction must lie in (0, 0.5]; the paper bounds it by 20%");
  }
  if (options.alpha < 1.0) {
    return Status::InvalidArgument("alpha must be >= 1");
  }
  const std::int64_t n = keyset.size();
  DerivedOptions derived;
  derived.num_models = options.num_models;
  if (derived.num_models <= 0) {
    if (options.model_size <= 0) {
      return Status::InvalidArgument(
          "either num_models or model_size must be positive");
    }
    derived.num_models = (n + options.model_size - 1) / options.model_size;
  }
  if (derived.num_models > n) derived.num_models = n;
  derived.budget = static_cast<std::int64_t>(
      std::floor(options.poison_fraction * static_cast<double>(n)));
  if (derived.budget < 1) {
    return Status::InvalidArgument(
        "poisoning budget floor(phi*n) is zero; increase phi or n");
  }
  derived.threshold = static_cast<std::int64_t>(std::ceil(
      options.alpha * options.poison_fraction * static_cast<double>(n) /
      static_cast<double>(derived.num_models)));
  derived.max_exchanges =
      options.max_exchanges > 0
          ? options.max_exchanges
          : (options.max_exchanges < 0 ? 0 : 16 * derived.num_models);
  return derived;
}

}  // namespace

std::vector<Key> RmiAttackResult::AllPoisonKeys() const {
  std::vector<Key> all;
  for (const auto& p : per_model_poison) {
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

Result<RmiAttackResult> PoisonRmi(const KeySet& keyset,
                                  const RmiAttackOptions& options) {
  LISPOISON_ASSIGN_OR_RETURN(DerivedOptions derived,
                             ValidateOptions(keyset, options));
  const std::int64_t n = keyset.size();
  const std::int64_t num_models = derived.num_models;
  const std::int64_t budget = derived.budget;
  const std::int64_t threshold = derived.threshold;
  TraceSpan attack_span(TraceCategory::kAttack, "poison_rmi", budget);

  ThreadPool pool(options.num_threads);
  LossLandscape::ArgmaxOptions argmax;
  argmax.prune = options.prune_argmax;
  argmax.cache = options.cache_argmax;
  argmax.top_k = options.argmax_top_k;

  // ---- Clean baseline: equal partition of K into N models. ----
  const std::int64_t base = n / num_models;
  const std::int64_t extra = n % num_models;
  std::vector<ModelState> models(static_cast<std::size_t>(num_models));
  RmiAttackResult result;
  {
    std::int64_t first = 0;
    for (std::int64_t i = 0; i < num_models; ++i) {
      const std::int64_t count = base + (i < extra ? 1 : 0);
      models[static_cast<std::size_t>(i)].legit.assign(
          keyset.keys().begin() + first, keyset.keys().begin() + first + count);
      first += count;
    }
  }
  // Fit every model's persistent landscape in parallel.
  std::vector<char> build_ok(models.size(), 1);
  pool.ParallelFor(num_models, [&](std::int64_t i) {
    build_ok[static_cast<std::size_t>(i)] =
        models[static_cast<std::size_t>(i)].Rebuild().ok() ? 1 : 0;
  });
  for (const char ok : build_ok) {
    if (!ok) return Status::Internal("second-stage model fit failed");
  }
  result.clean_losses.reserve(models.size());
  long double clean_sum = 0;
  for (const auto& m : models) {
    result.clean_losses.push_back(m.loss);
    clean_sum += m.loss;
  }
  result.clean_rmi_loss = clean_sum / static_cast<long double>(num_models);

  // Global occupancy: every legitimate key plus every committed poison.
  // Adjacent models' spans can overlap after boundary exchanges, so
  // availability must be checked globally, not per model.
  std::unordered_set<Key> occupied(keyset.keys().begin(),
                                   keyset.keys().end());

  // ---- Initial volume allocation: budget / N poisons per model. ----
  // Before any exchange, every model's candidate range lies strictly
  // inside its own span and the spans are disjoint, so the per-model
  // greedy loops are independent: run them in parallel against the
  // read-only legitimate occupancy and merge the poisons afterwards.
  std::vector<std::int64_t> quota(models.size(), 0);
  {
    const std::int64_t per_model = budget / num_models;
    std::int64_t remainder = budget % num_models;
    for (std::int64_t i = 0; i < num_models; ++i) {
      std::int64_t q = per_model + (remainder > 0 ? 1 : 0);
      if (remainder > 0) --remainder;
      quota[static_cast<std::size_t>(i)] = std::min(q, threshold);
    }
  }
  pool.ParallelFor(num_models, [&](std::int64_t i) {
    auto& m = models[static_cast<std::size_t>(i)];
    for (std::int64_t q = 0; q < quota[static_cast<std::size_t>(i)]; ++q) {
      if (!GreedyInsertOne(&m, occupied, options.interior_only, argmax)) {
        break;
      }
    }
  });
  std::int64_t unplaced = budget;
  for (std::size_t i = 0; i < models.size(); ++i) {
    for (const Key kp : models[i].poisons) occupied.insert(kp);
    unplaced -= static_cast<std::int64_t>(models[i].poisons.size());
  }
  // Second pass: place any leftovers wherever the threshold and domain
  // allow, scanning models round-robin.
  if (unplaced > 0) {
    bool progress = true;
    while (unplaced > 0 && progress) {
      progress = false;
      for (auto& m : models) {
        if (unplaced == 0) break;
        if (static_cast<std::int64_t>(m.poisons.size()) >= threshold) {
          continue;
        }
        if (GreedyInsertOne(&m, occupied, options.interior_only, argmax)) {
          occupied.insert(m.poisons.back());
          --unplaced;
          progress = true;
        }
      }
    }
    if (unplaced > 0) {
      return Status::ResourceExhausted(
          "key domain cannot absorb the poisoning budget: " +
          std::to_string(unplaced) + " keys unplaced");
    }
  }

  // ---- Greedy volume re-allocation via CHANGELOSS. ----
  // Directed entries: change[i][0] is the i -> i+1 exchange (poison slot
  // moves right), change[i][1] is i <- i+1 (slot moves left). The
  // simulations are read-only, so each round's batch fans out across the
  // pool; the argmax reduction stays serial and in fixed order.
  const std::int64_t pairs = num_models - 1;
  std::vector<std::array<long double, 2>> change(
      static_cast<std::size_t>(std::max<std::int64_t>(pairs, 0)));
  auto recompute_pair = [&](std::int64_t i) {
    if (i < 0 || i >= pairs) return;
    auto& left = models[static_cast<std::size_t>(i)];
    auto& right = models[static_cast<std::size_t>(i) + 1];
    change[static_cast<std::size_t>(i)][0] =
        SimulateExchange(left, right, /*left_to_right=*/true, occupied,
                         threshold, options.interior_only);
    change[static_cast<std::size_t>(i)][1] =
        SimulateExchange(right, left, /*left_to_right=*/false, occupied,
                         threshold, options.interior_only);
  };
  pool.ParallelFor(pairs, recompute_pair);

  const std::int64_t max_exchanges = derived.max_exchanges;
  const long double eps_sum =
      options.epsilon * static_cast<long double>(num_models);
  while (result.exchanges_applied < max_exchanges) {
    std::int64_t best_pair = -1;
    int best_dir = 0;
    long double best_delta = eps_sum;
    for (std::int64_t i = 0; i < pairs; ++i) {
      for (int dir = 0; dir < 2; ++dir) {
        const long double d = change[static_cast<std::size_t>(i)][dir];
        if (d > best_delta) {
          best_delta = d;
          best_pair = i;
          best_dir = dir;
        }
      }
    }
    if (best_pair < 0) break;  // No exchange improves L_RMI by > epsilon.
    ModelState* donor;
    ModelState* receiver;
    bool left_to_right;
    if (best_dir == 0) {
      donor = &models[static_cast<std::size_t>(best_pair)];
      receiver = &models[static_cast<std::size_t>(best_pair) + 1];
      left_to_right = true;
    } else {
      donor = &models[static_cast<std::size_t>(best_pair) + 1];
      receiver = &models[static_cast<std::size_t>(best_pair)];
      left_to_right = false;
    }
    if (!ApplyExchange(donor, receiver, left_to_right, &occupied, threshold,
                       options.interior_only, argmax)) {
      // Mark infeasible so the loop does not retry it forever.
      change[static_cast<std::size_t>(best_pair)][best_dir] = kInfeasible;
      continue;
    }
    result.exchanges_applied += 1;
    // Six entries reference the two touched models: the pair itself and
    // both neighbouring pairs.
    pool.ParallelFor(3, [&](std::int64_t offset) {
      recompute_pair(best_pair - 1 + offset);
    });
  }

  // ---- Collect results. ----
  result.per_model_poison.reserve(models.size());
  result.poisoned_losses.reserve(models.size());
  result.per_model_ratio.reserve(models.size());
  long double poisoned_sum = 0;
  for (std::size_t i = 0; i < models.size(); ++i) {
    result.per_model_poison.push_back(models[i].poisons);
    result.poisoned_losses.push_back(models[i].loss);
    result.per_model_ratio.push_back(
        SafeRatioLoss(models[i].loss, result.clean_losses[i]));
    result.argmax_stats.Add(models[i].stats);
    poisoned_sum += models[i].loss;
    result.total_poison_keys +=
        static_cast<std::int64_t>(models[i].poisons.size());
  }
  result.poisoned_rmi_loss =
      poisoned_sum / static_cast<long double>(num_models);
  result.rmi_ratio_loss =
      SafeRatioLoss(result.poisoned_rmi_loss, result.clean_rmi_loss);

  // ---- Victim-side validation: retrain on K ∪ P re-partitioned. ----
  {
    LISPOISON_ASSIGN_OR_RETURN(KeySet poisoned,
                               keyset.Union(result.AllPoisonKeys()));
    const std::int64_t np = poisoned.size();
    const std::int64_t vbase = np / num_models;
    const std::int64_t vextra = np % num_models;
    std::vector<long double> victim_losses(
        static_cast<std::size_t>(num_models), 0);
    pool.ParallelFor(num_models, [&](std::int64_t i) {
      const std::int64_t count = vbase + (i < vextra ? 1 : 0);
      const std::int64_t first = vbase * i + std::min(i, vextra);
      victim_losses[static_cast<std::size_t>(i)] =
          SpanLoss(poisoned.keys(), first, count);
    });
    long double sum = 0;
    for (const long double l : victim_losses) sum += l;
    result.retrained_rmi_loss = sum / static_cast<long double>(num_models);
    result.retrained_rmi_ratio =
        SafeRatioLoss(result.retrained_rmi_loss, result.clean_rmi_loss);
  }
  return result;
}

Result<RmiAttackResult> PoisonRmiReference(const KeySet& keyset,
                                           const RmiAttackOptions& options) {
  LISPOISON_ASSIGN_OR_RETURN(DerivedOptions derived,
                             ValidateOptions(keyset, options));
  const std::int64_t n = keyset.size();
  const std::int64_t num_models = derived.num_models;
  const std::int64_t budget = derived.budget;
  const std::int64_t threshold = derived.threshold;

  // ---- Clean baseline: equal partition of K into N models. ----
  const std::int64_t base = n / num_models;
  const std::int64_t extra = n % num_models;
  std::vector<RefModelState> models(static_cast<std::size_t>(num_models));
  RmiAttackResult result;
  result.clean_losses.reserve(static_cast<std::size_t>(num_models));
  {
    std::int64_t first = 0;
    for (std::int64_t i = 0; i < num_models; ++i) {
      const std::int64_t count = base + (i < extra ? 1 : 0);
      auto& m = models[static_cast<std::size_t>(i)];
      m.legit.assign(keyset.keys().begin() + first,
                     keyset.keys().begin() + first + count);
      m.loss = RefComputeModelLoss(m);
      result.clean_losses.push_back(m.loss);
      first += count;
    }
  }
  long double clean_sum = 0;
  for (const auto l : result.clean_losses) clean_sum += l;
  result.clean_rmi_loss = clean_sum / static_cast<long double>(num_models);

  std::unordered_set<Key> occupied(keyset.keys().begin(),
                                   keyset.keys().end());

  // ---- Initial volume allocation: budget / N poisons per model. ----
  const std::int64_t per_model = budget / num_models;
  std::int64_t remainder = budget % num_models;
  std::int64_t unplaced = 0;
  for (std::int64_t i = 0; i < num_models; ++i) {
    auto& m = models[static_cast<std::size_t>(i)];
    std::int64_t quota = per_model + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    quota = std::min(quota, threshold);
    for (std::int64_t q = 0; q < quota; ++q) {
      if (!RefGreedyInsertOne(&m, occupied, options.interior_only)) {
        unplaced += quota - q;
        break;
      }
      occupied.insert(m.poisons.back());
    }
  }
  if (unplaced > 0) {
    bool progress = true;
    while (unplaced > 0 && progress) {
      progress = false;
      for (auto& m : models) {
        if (unplaced == 0) break;
        if (static_cast<std::int64_t>(m.poisons.size()) >= threshold) {
          continue;
        }
        if (RefGreedyInsertOne(&m, occupied, options.interior_only)) {
          occupied.insert(m.poisons.back());
          --unplaced;
          progress = true;
        }
      }
    }
    if (unplaced > 0) {
      return Status::ResourceExhausted(
          "key domain cannot absorb the poisoning budget: " +
          std::to_string(unplaced) + " keys unplaced");
    }
  }

  // ---- Greedy volume re-allocation via CHANGELOSS. ----
  const std::int64_t pairs = num_models - 1;
  std::vector<std::array<long double, 2>> change(
      static_cast<std::size_t>(std::max<std::int64_t>(pairs, 0)));
  auto recompute_pair = [&](std::int64_t i) {
    if (i < 0 || i >= pairs) return;
    auto& left = models[static_cast<std::size_t>(i)];
    auto& right = models[static_cast<std::size_t>(i) + 1];
    change[static_cast<std::size_t>(i)][0] =
        RefSimulateExchange(left, right, /*left_to_right=*/true, occupied,
                            threshold, options.interior_only);
    change[static_cast<std::size_t>(i)][1] =
        RefSimulateExchange(right, left, /*left_to_right=*/false, occupied,
                            threshold, options.interior_only);
  };
  for (std::int64_t i = 0; i < pairs; ++i) recompute_pair(i);

  const std::int64_t max_exchanges = derived.max_exchanges;
  const long double eps_sum =
      options.epsilon * static_cast<long double>(num_models);
  while (result.exchanges_applied < max_exchanges) {
    std::int64_t best_pair = -1;
    int best_dir = 0;
    long double best_delta = eps_sum;
    for (std::int64_t i = 0; i < pairs; ++i) {
      for (int dir = 0; dir < 2; ++dir) {
        const long double d = change[static_cast<std::size_t>(i)][dir];
        if (d > best_delta) {
          best_delta = d;
          best_pair = i;
          best_dir = dir;
        }
      }
    }
    if (best_pair < 0) break;
    RefModelState* donor;
    RefModelState* receiver;
    bool left_to_right;
    if (best_dir == 0) {
      donor = &models[static_cast<std::size_t>(best_pair)];
      receiver = &models[static_cast<std::size_t>(best_pair) + 1];
      left_to_right = true;
    } else {
      donor = &models[static_cast<std::size_t>(best_pair) + 1];
      receiver = &models[static_cast<std::size_t>(best_pair)];
      left_to_right = false;
    }
    if (!RefApplyExchange(donor, receiver, left_to_right, &occupied,
                          threshold, options.interior_only)) {
      change[static_cast<std::size_t>(best_pair)][best_dir] = kInfeasible;
      continue;
    }
    result.exchanges_applied += 1;
    recompute_pair(best_pair - 1);
    recompute_pair(best_pair);
    recompute_pair(best_pair + 1);
  }

  // ---- Collect results. ----
  result.per_model_poison.reserve(models.size());
  result.poisoned_losses.reserve(models.size());
  result.per_model_ratio.reserve(models.size());
  long double poisoned_sum = 0;
  for (std::size_t i = 0; i < models.size(); ++i) {
    result.per_model_poison.push_back(models[i].poisons);
    result.poisoned_losses.push_back(models[i].loss);
    result.per_model_ratio.push_back(
        SafeRatioLoss(models[i].loss, result.clean_losses[i]));
    poisoned_sum += models[i].loss;
    result.total_poison_keys +=
        static_cast<std::int64_t>(models[i].poisons.size());
  }
  result.poisoned_rmi_loss =
      poisoned_sum / static_cast<long double>(num_models);
  result.rmi_ratio_loss =
      SafeRatioLoss(result.poisoned_rmi_loss, result.clean_rmi_loss);

  // ---- Victim-side validation: retrain on K ∪ P re-partitioned. ----
  {
    LISPOISON_ASSIGN_OR_RETURN(KeySet poisoned,
                               keyset.Union(result.AllPoisonKeys()));
    const std::int64_t np = poisoned.size();
    const std::int64_t vbase = np / num_models;
    const std::int64_t vextra = np % num_models;
    std::int64_t first = 0;
    long double sum = 0;
    for (std::int64_t i = 0; i < num_models; ++i) {
      const std::int64_t count = vbase + (i < vextra ? 1 : 0);
      RefModelState vm;
      vm.legit.assign(poisoned.keys().begin() + first,
                      poisoned.keys().begin() + first + count);
      sum += RefComputeModelLoss(vm);
      first += count;
    }
    result.retrained_rmi_loss = sum / static_cast<long double>(num_models);
    result.retrained_rmi_ratio =
        SafeRatioLoss(result.retrained_rmi_loss, result.clean_rmi_loss);
  }
  return result;
}

}  // namespace lispoison
