#include "attack/rmi_poisoner.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_set>

#include "attack/loss_landscape.h"
#include "common/stats.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

constexpr long double kInfeasible =
    -std::numeric_limits<long double>::infinity();

/// Attacker-side state of one second-stage model: its legitimate keys
/// (sorted), its poisoning keys (insertion order), and the trained loss
/// of the combined local CDF regression.
struct ModelState {
  std::vector<Key> legit;
  std::vector<Key> poisons;
  long double loss = 0;

  std::int64_t combined_size() const {
    return static_cast<std::int64_t>(legit.size() + poisons.size());
  }
};

/// Retrains the model's local regression (ranks 1..size on the combined
/// sorted keys). Keys are shifted by the smallest combined key, which
/// leaves the minimized MSE unchanged but keeps the exact 128-bit
/// aggregates far from overflow.
long double ComputeModelLoss(const ModelState& state) {
  std::vector<Key> combined = state.legit;
  combined.insert(combined.end(), state.poisons.begin(), state.poisons.end());
  std::sort(combined.begin(), combined.end());
  if (combined.empty()) return 0;
  const Key shift = combined.front();
  MomentAccumulator acc;
  Rank r = 1;
  for (Key k : combined) acc.Add(k - shift, r++);
  return FitFromMoments(acc).mse;
}

/// Runs one greedy single-point insertion (one step of Algorithm 1) on
/// the model's combined keyset, appending the chosen poison and updating
/// the loss. `occupied` holds every key taken globally (legitimate keys
/// of all models plus every committed poison): after boundary exchanges
/// the spans of adjacent models can overlap, so a candidate optimal for
/// this model may already be another model's poison and must be skipped.
/// Returns false when no unoccupied candidate remains.
bool GreedyInsertOne(ModelState* state,
                     const std::unordered_set<Key>& occupied,
                     bool interior_only) {
  std::vector<Key> combined = state->legit;
  combined.insert(combined.end(), state->poisons.begin(),
                  state->poisons.end());
  std::sort(combined.begin(), combined.end());
  if (combined.empty()) return false;
  auto keyset = KeySet::CreateWithTightDomain(std::move(combined));
  if (!keyset.ok()) return false;
  auto landscape = LossLandscape::Create(*keyset);
  if (!landscape.ok()) return false;
  // Evaluate every gap endpoint and take the best globally available one
  // (the model's own keys are excluded by construction; other models'
  // poisons via `occupied`).
  bool have = false;
  Key best_key = 0;
  long double best_loss = 0;
  for (const Key kp : landscape->GapEndpoints(interior_only)) {
    if (occupied.count(kp)) continue;
    auto loss = landscape->LossAt(kp);
    if (!loss.ok()) continue;
    if (!have || *loss > best_loss) {
      best_key = kp;
      best_loss = *loss;
      have = true;
    }
  }
  if (!have) return false;
  state->poisons.push_back(best_key);
  state->loss = best_loss;
  return true;
}

/// Simulates the directed exchange donor -> receiver of one poisoning
/// slot between neighbouring models, together with the reverse move of
/// the boundary legitimate key, and returns the resulting change in the
/// *sum* of the two model losses (kInfeasible when the move is not
/// allowed). `left_to_right` distinguishes i->i+1 from i<-i+1.
long double SimulateExchange(const ModelState& donor,
                             const ModelState& receiver, bool left_to_right,
                             const std::unordered_set<Key>& occupied,
                             std::int64_t threshold, bool interior_only) {
  if (donor.poisons.empty()) return kInfeasible;
  if (static_cast<std::int64_t>(receiver.poisons.size()) + 1 > threshold) {
    return kInfeasible;
  }
  // The legitimate donor is the *receiver of the poison slot*: it gives
  // its boundary legitimate key to the poison-donor model so both models
  // keep their total key counts.
  if (receiver.legit.size() < 2) return kInfeasible;

  ModelState d = donor;
  ModelState r = receiver;
  // (C) remove a poisoning key from the donor.
  d.poisons.pop_back();
  // (B) move the boundary legitimate key.
  if (left_to_right) {
    // i -> i+1: receiver is the right neighbour; its smallest legitimate
    // key moves left into the donor.
    const Key boundary = r.legit.front();
    r.legit.erase(r.legit.begin());
    d.legit.push_back(boundary);  // >= all of d's keys: stays sorted.
  } else {
    // i <- i+1: receiver is the left neighbour; the donor (right model)
    // takes the receiver's largest legitimate key.
    const Key boundary = r.legit.back();
    r.legit.pop_back();
    d.legit.insert(d.legit.begin(), boundary);  // <= all of d's keys.
  }
  d.loss = ComputeModelLoss(d);
  // (A) greedy-insert one poisoning key into the receiver.
  r.loss = ComputeModelLoss(r);
  if (!GreedyInsertOne(&r, occupied, interior_only)) return kInfeasible;
  const long double before = donor.loss + receiver.loss;
  const long double after = d.loss + r.loss;
  return after - before;
}

/// Applies the exchange for real (same move order as SimulateExchange).
/// Returns false if the move turned out infeasible (callers only apply
/// entries that simulated feasibly, but the state may have drifted).
bool ApplyExchange(ModelState* donor, ModelState* receiver,
                   bool left_to_right, std::unordered_set<Key>* occupied,
                   std::int64_t threshold, bool interior_only) {
  if (donor->poisons.empty()) return false;
  if (static_cast<std::int64_t>(receiver->poisons.size()) + 1 > threshold) {
    return false;
  }
  if (receiver->legit.size() < 2) return false;
  ModelState d = *donor;
  ModelState r = *receiver;
  d.poisons.pop_back();
  if (left_to_right) {
    const Key boundary = r.legit.front();
    r.legit.erase(r.legit.begin());
    d.legit.push_back(boundary);
  } else {
    const Key boundary = r.legit.back();
    r.legit.pop_back();
    d.legit.insert(d.legit.begin(), boundary);
  }
  const Key removed_poison = donor->poisons.back();
  d.loss = ComputeModelLoss(d);
  r.loss = ComputeModelLoss(r);
  // The freed key becomes available again before the receiver's insert.
  occupied->erase(removed_poison);
  if (!GreedyInsertOne(&r, *occupied, interior_only)) {
    occupied->insert(removed_poison);
    return false;
  }
  occupied->insert(r.poisons.back());
  *donor = std::move(d);
  *receiver = std::move(r);
  return true;
}

}  // namespace

std::vector<Key> RmiAttackResult::AllPoisonKeys() const {
  std::vector<Key> all;
  for (const auto& p : per_model_poison) {
    all.insert(all.end(), p.begin(), p.end());
  }
  return all;
}

Result<RmiAttackResult> PoisonRmi(const KeySet& keyset,
                                  const RmiAttackOptions& options) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot poison an empty keyset");
  }
  if (options.poison_fraction <= 0 || options.poison_fraction > 0.5) {
    return Status::InvalidArgument(
        "poison_fraction must lie in (0, 0.5]; the paper bounds it by 20%");
  }
  if (options.alpha < 1.0) {
    return Status::InvalidArgument("alpha must be >= 1");
  }
  const std::int64_t n = keyset.size();
  std::int64_t num_models = options.num_models;
  if (num_models <= 0) {
    if (options.model_size <= 0) {
      return Status::InvalidArgument(
          "either num_models or model_size must be positive");
    }
    num_models = (n + options.model_size - 1) / options.model_size;
  }
  if (num_models > n) num_models = n;
  const std::int64_t budget =
      static_cast<std::int64_t>(std::floor(options.poison_fraction *
                                           static_cast<double>(n)));
  if (budget < 1) {
    return Status::InvalidArgument(
        "poisoning budget floor(phi*n) is zero; increase phi or n");
  }
  const std::int64_t threshold = static_cast<std::int64_t>(std::ceil(
      options.alpha * options.poison_fraction * static_cast<double>(n) /
      static_cast<double>(num_models)));

  // ---- Clean baseline: equal partition of K into N models. ----
  const std::int64_t base = n / num_models;
  const std::int64_t extra = n % num_models;
  std::vector<ModelState> models(static_cast<std::size_t>(num_models));
  RmiAttackResult result;
  result.clean_losses.reserve(static_cast<std::size_t>(num_models));
  {
    std::int64_t first = 0;
    for (std::int64_t i = 0; i < num_models; ++i) {
      const std::int64_t count = base + (i < extra ? 1 : 0);
      auto& m = models[static_cast<std::size_t>(i)];
      m.legit.assign(keyset.keys().begin() + first,
                     keyset.keys().begin() + first + count);
      m.loss = ComputeModelLoss(m);
      result.clean_losses.push_back(m.loss);
      first += count;
    }
  }
  long double clean_sum = 0;
  for (const auto l : result.clean_losses) clean_sum += l;
  result.clean_rmi_loss = clean_sum / static_cast<long double>(num_models);

  // Global occupancy: every legitimate key plus every committed poison.
  // Adjacent models' spans can overlap after boundary exchanges, so
  // availability must be checked globally, not per model.
  std::unordered_set<Key> occupied(keyset.keys().begin(),
                                   keyset.keys().end());

  // ---- Initial volume allocation: budget / N poisons per model. ----
  const std::int64_t per_model = budget / num_models;
  std::int64_t remainder = budget % num_models;
  std::int64_t unplaced = 0;
  for (std::int64_t i = 0; i < num_models; ++i) {
    auto& m = models[static_cast<std::size_t>(i)];
    std::int64_t quota = per_model + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    quota = std::min(quota, threshold);
    for (std::int64_t q = 0; q < quota; ++q) {
      if (!GreedyInsertOne(&m, occupied, options.interior_only)) {
        unplaced += quota - q;
        break;
      }
      occupied.insert(m.poisons.back());
    }
  }
  // Second pass: place any leftovers wherever the threshold and domain
  // allow, scanning models round-robin.
  if (unplaced > 0) {
    bool progress = true;
    while (unplaced > 0 && progress) {
      progress = false;
      for (auto& m : models) {
        if (unplaced == 0) break;
        if (static_cast<std::int64_t>(m.poisons.size()) >= threshold) {
          continue;
        }
        if (GreedyInsertOne(&m, occupied, options.interior_only)) {
          occupied.insert(m.poisons.back());
          --unplaced;
          progress = true;
        }
      }
    }
    if (unplaced > 0) {
      return Status::ResourceExhausted(
          "key domain cannot absorb the poisoning budget: " +
          std::to_string(unplaced) + " keys unplaced");
    }
  }

  // ---- Greedy volume re-allocation via CHANGELOSS. ----
  // Directed entries: change[i][0] is the i -> i+1 exchange (poison slot
  // moves right), change[i][1] is i <- i+1 (slot moves left).
  const std::int64_t pairs = num_models - 1;
  std::vector<std::array<long double, 2>> change(
      static_cast<std::size_t>(std::max<std::int64_t>(pairs, 0)));
  auto recompute_pair = [&](std::int64_t i) {
    if (i < 0 || i >= pairs) return;
    auto& left = models[static_cast<std::size_t>(i)];
    auto& right = models[static_cast<std::size_t>(i) + 1];
    change[static_cast<std::size_t>(i)][0] =
        SimulateExchange(left, right, /*left_to_right=*/true, occupied,
                         threshold, options.interior_only);
    change[static_cast<std::size_t>(i)][1] =
        SimulateExchange(right, left, /*left_to_right=*/false, occupied,
                         threshold, options.interior_only);
  };
  for (std::int64_t i = 0; i < pairs; ++i) recompute_pair(i);

  const std::int64_t max_exchanges =
      options.max_exchanges > 0
          ? options.max_exchanges
          : (options.max_exchanges < 0 ? 0 : 16 * num_models);
  const long double eps_sum =
      options.epsilon * static_cast<long double>(num_models);
  while (result.exchanges_applied < max_exchanges) {
    std::int64_t best_pair = -1;
    int best_dir = 0;
    long double best_delta = eps_sum;
    for (std::int64_t i = 0; i < pairs; ++i) {
      for (int dir = 0; dir < 2; ++dir) {
        const long double d = change[static_cast<std::size_t>(i)][dir];
        if (d > best_delta) {
          best_delta = d;
          best_pair = i;
          best_dir = dir;
        }
      }
    }
    if (best_pair < 0) break;  // No exchange improves L_RMI by > epsilon.
    ModelState* donor;
    ModelState* receiver;
    bool left_to_right;
    if (best_dir == 0) {
      donor = &models[static_cast<std::size_t>(best_pair)];
      receiver = &models[static_cast<std::size_t>(best_pair) + 1];
      left_to_right = true;
    } else {
      donor = &models[static_cast<std::size_t>(best_pair) + 1];
      receiver = &models[static_cast<std::size_t>(best_pair)];
      left_to_right = false;
    }
    if (!ApplyExchange(donor, receiver, left_to_right, &occupied, threshold,
                       options.interior_only)) {
      // Mark infeasible so the loop does not retry it forever.
      change[static_cast<std::size_t>(best_pair)][best_dir] = kInfeasible;
      continue;
    }
    result.exchanges_applied += 1;
    // Six entries reference the two touched models: the pair itself and
    // both neighbouring pairs.
    recompute_pair(best_pair - 1);
    recompute_pair(best_pair);
    recompute_pair(best_pair + 1);
  }

  // ---- Collect results. ----
  result.per_model_poison.reserve(models.size());
  result.poisoned_losses.reserve(models.size());
  result.per_model_ratio.reserve(models.size());
  long double poisoned_sum = 0;
  for (std::size_t i = 0; i < models.size(); ++i) {
    result.per_model_poison.push_back(models[i].poisons);
    result.poisoned_losses.push_back(models[i].loss);
    result.per_model_ratio.push_back(
        SafeRatioLoss(models[i].loss, result.clean_losses[i]));
    poisoned_sum += models[i].loss;
    result.total_poison_keys +=
        static_cast<std::int64_t>(models[i].poisons.size());
  }
  result.poisoned_rmi_loss =
      poisoned_sum / static_cast<long double>(num_models);
  result.rmi_ratio_loss =
      SafeRatioLoss(result.poisoned_rmi_loss, result.clean_rmi_loss);

  // ---- Victim-side validation: retrain on K ∪ P re-partitioned. ----
  {
    LISPOISON_ASSIGN_OR_RETURN(KeySet poisoned,
                               keyset.Union(result.AllPoisonKeys()));
    const std::int64_t np = poisoned.size();
    const std::int64_t vbase = np / num_models;
    const std::int64_t vextra = np % num_models;
    std::int64_t first = 0;
    long double sum = 0;
    for (std::int64_t i = 0; i < num_models; ++i) {
      const std::int64_t count = vbase + (i < vextra ? 1 : 0);
      ModelState vm;
      vm.legit.assign(poisoned.keys().begin() + first,
                      poisoned.keys().begin() + first + count);
      sum += ComputeModelLoss(vm);
      first += count;
    }
    result.retrained_rmi_loss = sum / static_cast<long double>(num_models);
    result.retrained_rmi_ratio =
        SafeRatioLoss(result.retrained_rmi_loss, result.clean_rmi_loss);
  }
  return result;
}

}  // namespace lispoison
