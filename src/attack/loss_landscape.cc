#include "attack/loss_landscape.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

#include "common/thread_pool.h"

namespace lispoison {
namespace {

/// Largest up-front Sweep reservation. A wide KeyDomain used to drive
/// out.reserve(hi - lo + 1) into an allocation bomb; beyond this cap the
/// vector grows geometrically like any other.
constexpr std::int64_t kSweepReserveCap = 1 << 20;

/// Theorem 1 loss from exact (n^2-scaled) aggregate numerators:
/// L = [VarY_n - CovXY_n^2 / VarX_n] / n^2 where *_n = n^2 * moment.
long double LossFromSums(std::int64_t n, Int128 sum_x, Int128 sum_x2,
                         Int128 sum_y, Int128 sum_y2, Int128 sum_xy) {
  const Int128 nn = static_cast<Int128>(n);
  const Int128 var_x_n = nn * sum_x2 - sum_x * sum_x;
  const Int128 var_y_n = nn * sum_y2 - sum_y * sum_y;
  const Int128 cov_n = nn * sum_xy - sum_x * sum_y;
  const long double n2 = static_cast<long double>(n) *
                         static_cast<long double>(n);
  if (var_x_n <= 0) {
    // All keys identical: the regression degenerates to a constant.
    long double loss = ToLongDouble(var_y_n) / n2;
    return loss < 0 ? 0 : loss;
  }
  const long double cov = ToLongDouble(cov_n);
  long double loss =
      (ToLongDouble(var_y_n) - cov * cov / ToLongDouble(var_x_n)) / n2;
  return loss < 0 ? 0 : loss;
}

/// Rank-moment sums for ranks 1..n.
inline Int128 SumRanks(std::int64_t n) {
  const Int128 m = n;
  return m * (m + 1) / 2;
}
inline Int128 SumRankSquares(std::int64_t n) {
  const Int128 m = n;
  return m * (m + 1) * (2 * m + 1) / 6;
}

}  // namespace

Result<LossLandscape> LossLandscape::Create(const KeySet& keyset) {
  return Create(keyset, nullptr);
}

namespace {

/// Base-key indices per parallel Create chunk. Fixed (not derived from
/// the thread count) so the chunk partials — and therefore every
/// stitched prefix value — are identical for every pool size; the
/// exact integer arithmetic then makes the parallel build bit-identical
/// to the serial one by associativity.
constexpr std::int64_t kCreateChunkKeys = 1 << 16;

}  // namespace

Result<LossLandscape> LossLandscape::Create(const KeySet& keyset,
                                            ThreadPool* pool) {
  if (keyset.empty()) {
    return Status::InvalidArgument(
        "loss landscape requires a non-empty keyset");
  }
  LossLandscape ll;
  ll.base_keys_ = keyset.keys();
  ll.domain_ = keyset.domain();
  ll.n_ = keyset.size();
  ll.shift_ = ll.base_keys_.front();
  ll.min_key_ = ll.base_keys_.front();
  ll.max_key_ = ll.base_keys_.back();
  ll.base_prefix_.assign(static_cast<std::size_t>(ll.n_) + 1, 0);

  const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                        ll.n_ > kCreateChunkKeys;
  std::vector<TieredGaps::GapRec> gaps;
  if (!parallel) {
    for (std::int64_t i = 0; i < ll.n_; ++i) {
      const Int128 shifted =
          static_cast<Int128>(ll.base_keys_[static_cast<std::size_t>(i)]) -
          ll.shift_;
      ll.base_prefix_[static_cast<std::size_t>(i) + 1] =
          ll.base_prefix_[static_cast<std::size_t>(i)] + shifted;
      ll.sum_k2_ += shifted * shifted;
      ll.sum_kr_ += shifted * (i + 1);
    }

    // Maximal unoccupied runs over the whole domain; interior clipping
    // happens at query time against the current min/max key. Each
    // record carries the exact count / shifted prefix-sum of the keys
    // below it.
    Key cursor = ll.domain_.lo;
    std::int64_t base_count = 0;
    for (const Key k : ll.base_keys_) {
      if (cursor <= k - 1) {
        gaps.push_back(TieredGaps::GapRec{
            cursor, k - 1, base_count,
            ll.base_prefix_[static_cast<std::size_t>(base_count)]});
      }
      cursor = k + 1;
      ++base_count;
    }
  } else {
    // Two-pass chunked prefix scan: (1) per-chunk partial sums into the
    // chunk's base_prefix_ slots plus per-chunk aggregate totals, (2) a
    // serial exclusive scan of the chunk totals, (3) a parallel offset
    // fix-up. Every sum is exact Int128, so the stitched values equal
    // the serial loop's bit-for-bit.
    const std::int64_t num_chunks =
        (ll.n_ + kCreateChunkKeys - 1) / kCreateChunkKeys;
    std::vector<Int128> chunk_sum(static_cast<std::size_t>(num_chunks), 0);
    std::vector<Int128> chunk_sum2(static_cast<std::size_t>(num_chunks), 0);
    std::vector<Int128> chunk_sumr(static_cast<std::size_t>(num_chunks), 0);
    pool->ParallelFor(num_chunks, [&ll, &chunk_sum, &chunk_sum2,
                                   &chunk_sumr](std::int64_t c) {
      const std::int64_t lo = c * kCreateChunkKeys;
      const std::int64_t hi = std::min(ll.n_, lo + kCreateChunkKeys);
      Int128 acc = 0;
      Int128 acc2 = 0;
      Int128 accr = 0;
      for (std::int64_t i = lo; i < hi; ++i) {
        const Int128 shifted =
            static_cast<Int128>(ll.base_keys_[static_cast<std::size_t>(i)]) -
            ll.shift_;
        acc += shifted;
        ll.base_prefix_[static_cast<std::size_t>(i) + 1] = acc;
        acc2 += shifted * shifted;
        accr += shifted * (i + 1);
      }
      chunk_sum[static_cast<std::size_t>(c)] = acc;
      chunk_sum2[static_cast<std::size_t>(c)] = acc2;
      chunk_sumr[static_cast<std::size_t>(c)] = accr;
    });
    std::vector<Int128> chunk_offset(static_cast<std::size_t>(num_chunks), 0);
    Int128 run = 0;
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      chunk_offset[static_cast<std::size_t>(c)] = run;
      run += chunk_sum[static_cast<std::size_t>(c)];
      ll.sum_k2_ += chunk_sum2[static_cast<std::size_t>(c)];
      ll.sum_kr_ += chunk_sumr[static_cast<std::size_t>(c)];
    }
    pool->ParallelFor(num_chunks, [&ll, &chunk_offset](std::int64_t c) {
      const Int128 off = chunk_offset[static_cast<std::size_t>(c)];
      if (off == 0) return;
      const std::int64_t lo = c * kCreateChunkKeys;
      const std::int64_t hi = std::min(ll.n_, lo + kCreateChunkKeys);
      for (std::int64_t i = lo; i < hi; ++i) {
        ll.base_prefix_[static_cast<std::size_t>(i) + 1] += off;
      }
    });

    // Per-chunk gap emission: the gap *ending* at key i (between key
    // i-1 and key i) belongs to the chunk containing i, whose cursor
    // re-derives from its left neighbour — exactly the serial walk's
    // cursor at that index. Per-chunk vectors concatenate in chunk
    // order, so the final gap array is element-identical to the serial
    // build's.
    std::vector<std::vector<TieredGaps::GapRec>> chunk_gaps(
        static_cast<std::size_t>(num_chunks));
    pool->ParallelFor(num_chunks, [&ll, &chunk_gaps](std::int64_t c) {
      const std::int64_t lo = c * kCreateChunkKeys;
      const std::int64_t hi = std::min(ll.n_, lo + kCreateChunkKeys);
      std::vector<TieredGaps::GapRec>& out =
          chunk_gaps[static_cast<std::size_t>(c)];
      Key cursor = lo == 0
                       ? ll.domain_.lo
                       : ll.base_keys_[static_cast<std::size_t>(lo) - 1] + 1;
      for (std::int64_t i = lo; i < hi; ++i) {
        const Key k = ll.base_keys_[static_cast<std::size_t>(i)];
        if (cursor <= k - 1) {
          out.push_back(TieredGaps::GapRec{
              cursor, k - 1, i, ll.base_prefix_[static_cast<std::size_t>(i)]});
        }
        cursor = k + 1;
      }
    });
    std::size_t total_gaps = 0;
    for (const auto& cg : chunk_gaps) total_gaps += cg.size();
    gaps.reserve(total_gaps + 1);
    for (auto& cg : chunk_gaps) {
      gaps.insert(gaps.end(), cg.begin(), cg.end());
    }
  }
  ll.sum_k_ = ll.base_prefix_[static_cast<std::size_t>(ll.n_)];
  ll.inserted_slot_sum_.Reset(static_cast<std::size_t>(ll.n_) + 1);

  // Tail gap above the largest base key (the serial walk's final
  // cursor == base_keys_.back() + 1 in the parallel path too).
  const Key tail = ll.base_keys_.back() + 1;
  if (tail <= ll.domain_.hi) {
    gaps.push_back(TieredGaps::GapRec{
        tail, ll.domain_.hi, ll.n_,
        ll.base_prefix_[static_cast<std::size_t>(ll.n_)]});
  }
  ll.gaps_.Build(std::move(gaps));

  ll.RecomputeCurrentLoss();
  return ll;
}

void LossLandscape::RecomputeCurrentLoss() {
  base_loss_ = LossFromSums(n_, sum_k_, sum_k2_, SumRanks(n_),
                            SumRankSquares(n_), sum_kr_);
}

LossLandscape::PrefixStats LossLandscape::PrefixAt(Key kp) const {
  const auto base_it =
      std::lower_bound(base_keys_.begin(), base_keys_.end(), kp);
  const std::size_t j = static_cast<std::size_t>(base_it - base_keys_.begin());
  const auto ins_it = std::lower_bound(inserted_.begin(), inserted_.end(), kp);

  PrefixStats stats;
  stats.count_less = static_cast<Rank>(j) +
                     static_cast<Rank>(ins_it - inserted_.begin());
  stats.prefix_sum = base_prefix_[j] + inserted_slot_sum_.PrefixSum(j);
  // Inserted keys sharing base slot j but below kp are not covered by the
  // Fenwick prefix; they form a contiguous overlay range.
  auto slot_begin = inserted_.begin();
  if (j > 0) {
    slot_begin = std::lower_bound(inserted_.begin(), ins_it,
                                  base_keys_[j - 1]);
  }
  for (auto it = slot_begin; it != ins_it; ++it) {
    stats.prefix_sum += static_cast<Int128>(*it) - shift_;
  }
  // Removed base keys are tombstones: those below kp (exactly the ones
  // with base index < j) leave both the count and the prefix sum.
  if (!removed_.empty()) {
    const auto rem_it =
        std::lower_bound(removed_.begin(), removed_.end(), kp);
    stats.count_less -= static_cast<Rank>(rem_it - removed_.begin());
    stats.prefix_sum -= removed_idx_sum_.PrefixSum(j);
  }
  return stats;
}

Status LossLandscape::InsertKey(Key kp) {
  if (!domain_.Contains(kp)) {
    return Status::OutOfRange("poisoning key " + std::to_string(kp) +
                              " outside the key domain");
  }
  // A key is unoccupied iff it lies inside a gap.
  std::size_t tier_idx = 0;
  std::size_t gap_idx = 0;
  if (!gaps_.Locate(kp, &tier_idx, &gap_idx)) {
    return Status::InvalidArgument("poisoning key " + std::to_string(kp) +
                                   " is already occupied");
  }

  const PrefixStats stats = PrefixAt(kp);
  const Int128 kp_s = static_cast<Int128>(kp) - shift_;
  const Int128 suffix_above = sum_k_ - stats.prefix_sum;
  // Compound effect: every key above kp gains one rank (adding the
  // suffix key-sum once), and kp enters with rank count_less + 1.
  sum_kr_ += suffix_above + kp_s * (stats.count_less + 1);
  sum_k_ += kp_s;
  sum_k2_ += kp_s * kp_s;
  n_ += 1;
  RecomputeCurrentLoss();

  const std::size_t base_slot = static_cast<std::size_t>(
      std::lower_bound(base_keys_.begin(), base_keys_.end(), kp) -
      base_keys_.begin());
  // Re-inserting a removed base key cancels its tombstone (base_slot is
  // its base index); anything else joins the inserted overlay.
  bool was_removed = false;
  if (!removed_.empty()) {
    const auto rit = std::lower_bound(removed_.begin(), removed_.end(), kp);
    if (rit != removed_.end() && *rit == kp) {
      removed_.erase(rit);
      removed_idx_sum_.Add(base_slot, -kp_s);
      was_removed = true;
    }
  }
  if (!was_removed) {
    inserted_slot_sum_.Add(base_slot, kp_s);
    inserted_.insert(std::lower_bound(inserted_.begin(), inserted_.end(), kp),
                     kp);
  }

  // Split the gap around kp (it contains no other key by construction):
  // an O(sqrt(G)) tiered splice that also folds kp into the per-gap
  // count/prefix-sum bookkeeping and the per-tier aggregate boxes.
  gaps_.SplitAt(tier_idx, gap_idx, kp, kp_s);

  if (kp < min_key_) min_key_ = kp;
  if (kp > max_key_) max_key_ = kp;

  // Removal-SoA maintenance (only once a removal argmax materialized
  // it): one block's local suffixes gain kp's shifted value, plus
  // O(sqrt(n)) directory scalars — no O(n) pass.
  if (rem_soa_.built()) {
    if (rem_soa_.with_sa() && !PruneDomainOk()) {
      // The magnitude guard broke as n grew: the int64 suffix sums are
      // no longer provably safe. Drop the SoA; the next removal argmax
      // rebuilds or falls back.
      rem_soa_.Clear();
    } else {
      rem_soa_.Insert(
          kp, rem_soa_.with_sa() ? static_cast<std::int64_t>(kp_s) : 0);
    }
  }
  return Status::OK();
}

Status LossLandscape::RemoveKey(Key kp) {
  if (!domain_.Contains(kp)) {
    return Status::OutOfRange("key " + std::to_string(kp) +
                              " outside the key domain");
  }
  {
    std::size_t tier_idx = 0;
    std::size_t gap_idx = 0;
    if (gaps_.Locate(kp, &tier_idx, &gap_idx)) {
      return Status::InvalidArgument("key " + std::to_string(kp) +
                                     " is not currently stored");
    }
  }
  if (n_ <= 2) {
    return Status::FailedPrecondition(
        "removing key " + std::to_string(kp) +
        " would leave fewer than two points to regress on");
  }

  const PrefixStats stats = PrefixAt(kp);
  const Int128 kp_s = static_cast<Int128>(kp) - shift_;
  const Int128 suffix_above = sum_k_ - stats.prefix_sum - kp_s;
  // Mirror-image compound effect: every key above kp loses one rank
  // (shedding the suffix key-sum once), and kp leaves from rank
  // count_less + 1.
  sum_kr_ -= suffix_above + kp_s * (stats.count_less + 1);
  sum_k_ -= kp_s;
  sum_k2_ -= kp_s * kp_s;
  n_ -= 1;
  RecomputeCurrentLoss();

  // Overlay bookkeeping: an inserted key leaves its overlay; a base key
  // gains a tombstone (the Create-time array stays immutable).
  const auto ins_it =
      std::lower_bound(inserted_.begin(), inserted_.end(), kp);
  const std::size_t base_idx = static_cast<std::size_t>(
      std::lower_bound(base_keys_.begin(), base_keys_.end(), kp) -
      base_keys_.begin());
  if (ins_it != inserted_.end() && *ins_it == kp) {
    inserted_slot_sum_.Add(base_idx, -kp_s);
    inserted_.erase(ins_it);
  } else {
    if (removed_idx_sum_.size() == 0) {
      removed_idx_sum_.Reset(base_keys_.size());
    }
    removed_idx_sum_.Add(base_idx, kp_s);
    removed_.insert(std::lower_bound(removed_.begin(), removed_.end(), kp),
                    kp);
  }

  // Merge kp into the gap decomposition (O(sqrt(G)) tiered merge), then
  // re-derive the min/max bookkeeping from the merged gap: its hi + 1
  // (lo - 1) is the next occupied key above (below) kp.
  gaps_.MergeAt(kp, kp_s, stats.count_less, stats.prefix_sum);
  if (kp == min_key_ || kp == max_key_) {
    std::size_t ti = 0;
    std::size_t gi = 0;
    if (gaps_.Locate(kp, &ti, &gi)) {
      const TieredGaps::GapRec& g = gaps_.tiers()[ti].gaps[gi];
      if (kp == min_key_) min_key_ = g.hi + 1;
      if (kp == max_key_) max_key_ = g.lo - 1;
    }
  }

  // Removal-SoA maintenance: the exact dual — kp's block sheds its
  // shifted value locally, directory scalars adjust, underflow merges.
  if (rem_soa_.built()) {
    rem_soa_.Remove(
        kp, rem_soa_.with_sa() ? static_cast<std::int64_t>(kp_s) : 0);
  }
  return Status::OK();
}

Status LossLandscape::ReplaceKey(Key from, Key to) {
  LISPOISON_RETURN_IF_ERROR(RemoveKey(from));
  const Status st = InsertKey(to);
  if (!st.ok()) {
    // Roll the removal back; re-inserting the just-removed key cannot
    // fail (its slot is unoccupied and in-domain).
    const Status restore = InsertKey(from);
    (void)restore;
    return st;
  }
  return Status::OK();
}

long double LossLandscape::LossWithInsertion(Key kp, Rank count_less,
                                             Int128 suffix_sum) const {
  const std::int64_t n1 = n_ + 1;
  const Int128 kp_s = static_cast<Int128>(kp) - shift_;
  const Int128 sum_x = sum_k_ + kp_s;
  const Int128 sum_x2 = sum_k2_ + kp_s * kp_s;
  // Every legitimate key above kp gains one rank, adding its (shifted)
  // value once to sum(XY); kp itself enters with rank count_less + 1.
  const Int128 sum_xy = sum_kr_ + suffix_sum + kp_s * (count_less + 1);
  return LossFromSums(n1, sum_x, sum_x2, SumRanks(n1), SumRankSquares(n1),
                      sum_xy);
}

Result<long double> LossLandscape::LossAt(Key kp) const {
  if (!domain_.Contains(kp)) {
    return Status::OutOfRange("poisoning key " + std::to_string(kp) +
                              " outside the key domain");
  }
  // A key is occupied iff it lies in no gap — the one test that stays
  // correct under both the inserted and the removed overlay.
  std::size_t tier_idx = 0;
  std::size_t gap_idx = 0;
  if (!gaps_.Locate(kp, &tier_idx, &gap_idx)) {
    return Status::InvalidArgument("poisoning key " + std::to_string(kp) +
                                   " is already occupied");
  }
  const PrefixStats stats = PrefixAt(kp);
  return LossWithInsertion(kp, stats.count_less, sum_k_ - stats.prefix_sum);
}

std::vector<Key> LossLandscape::GapEndpoints(bool interior_only) const {
  std::vector<Key> endpoints;
  ForEachGap(interior_only,
             [&endpoints](Key lo, Key hi, Rank, Int128) {
               endpoints.push_back(lo);
               if (hi != lo) endpoints.push_back(hi);
             });
  return endpoints;
}

std::vector<std::pair<Key, long double>> LossLandscape::Sweep(
    bool interior_only) const {
  std::vector<std::pair<Key, long double>> out;
  const Key lo = interior_only ? min_key_ + 1 : domain_.lo;
  const Key hi = interior_only ? max_key_ - 1 : domain_.hi;
  if (lo > hi) return out;
  out.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(hi - lo + 1, kSweepReserveCap)));
  ForEachGapInRange(lo, hi,
                    [this, &out](Key glo, Key ghi, Rank count_less,
                                 Int128 prefix_sum) {
                      const Int128 suffix = sum_k_ - prefix_sum;
                      for (Key kp = glo; kp <= ghi; ++kp) {
                        out.emplace_back(
                            kp, LossWithInsertion(kp, count_less, suffix));
                      }
                    });
  return out;
}

namespace {

/// Gap ranges per parallel chunk. Fixed (not derived from the thread
/// count) so the chunk boundaries — and therefore the reduction order —
/// are identical for every pool size.
constexpr std::int64_t kArgmaxChunkGaps = 2048;

/// Whole-chain error-margin unit for the bound arithmetic: ~450x the
/// IEEE double rounding unit (2^-52 ~ 2.2e-16). Each margin term below
/// multiplies kBoundEps by an upper bound on the *component magnitudes*
/// of its expression (never the possibly-cancelled result); the true
/// rounding error of each <10-op chain is below ~10 units of 2.2e-16
/// relative to those magnitudes, so one kBoundEps unit dominates it —
/// including the int128->double input conversions and the (much
/// smaller) long-double rounding of the exact evaluation the bound must
/// majorize — with ~50x headroom, while costing a fraction of full
/// per-op interval propagation.
constexpr double kBoundEps = 1e-13;

inline double AbsD(double v) { return v < 0 ? -v : v; }

}  // namespace

/// Round-constant part of the admissible upper bound on the Theorem 1
/// loss after inserting one key into the current n_ keys — the
/// *uncached* per-round pre-pass (ArgmaxOptions::cache == false, or the
/// fallback when the epoch context is not admissible).
///
/// With x = kp - shift, c = count_less, S = suffix key-sum, the exact
/// loss is  L = max(0, (VarY - Cov^2/VarX) / (n+1)^2)  where VarY is a
/// per-round constant and Cov/VarX are affine/quadratic in x. The bound
/// evaluates the same formula in double with directed error margins:
/// VarY rounded up, Cov^2/VarX rounded down (interval-safe against the
/// cancellation in both numerators), so bound >= exact loss for every
/// candidate — the admissibility the pruned argmax needs to stay
/// bit-identical to the exhaustive scan.
struct LossLandscape::BoundCtx {
  double n1 = 0;          // n + 1
  double inv_n12_ub = 0;  // (1 + slack) / (n+1)^2, rounded up
  double sum_y = 0;       // sum of ranks 1..n+1
  double var_y_ub = 0;    // (n+1)*sumY2 - sumY^2, rounded up
  double sum_k = 0;       // converted exact aggregates
  double abs_sum_k = 0;
  double sum_k2 = 0;      // >= 0
  double sum_kr = 0;
  double abs_sum_kr = 0;
  bool usable = false;

  static BoundCtx Make(std::int64_t n, Int128 sum_k, Int128 sum_k2,
                       Int128 sum_kr) {
    BoundCtx b;
    const std::int64_t n1 = n + 1;
    const Int128 sy = SumRanks(n1);
    const Int128 var_y =
        static_cast<Int128>(n1) * SumRankSquares(n1) - sy * sy;
    b.n1 = static_cast<double>(n1);
    const double n12_lo = b.n1 * b.n1 * (1.0 - 2.0 * kBoundEps);
    b.inv_n12_ub = (1.0 + 6.0 * kBoundEps) / n12_lo;
    b.sum_y = static_cast<double>(sy);
    b.var_y_ub = static_cast<double>(var_y) * (1.0 + 2.0 * kBoundEps);
    b.sum_k = static_cast<double>(sum_k);
    b.abs_sum_k = AbsD(b.sum_k);
    b.sum_k2 = static_cast<double>(sum_k2);
    b.sum_kr = static_cast<double>(sum_kr);
    b.abs_sum_kr = AbsD(b.sum_kr);
    b.usable = std::isfinite(b.var_y_ub) && std::isfinite(b.sum_k) &&
               std::isfinite(b.sum_k2) && std::isfinite(b.sum_kr) &&
               std::isfinite(b.sum_y) && std::isfinite(b.inv_n12_ub) &&
               b.inv_n12_ub > 0;
    return b;
  }

  /// Upper bound for candidate x (shifted key) with c keys below it and
  /// suffix key-sum S. Absolute-error margins are taken against the
  /// *component magnitudes* of each cancellation-prone difference
  /// (VarX, Cov, and their sub-sums), never against the difference
  /// itself, and the final combination rounds VarY up and Cov^2/VarX
  /// down — so the returned value dominates the exact loss.
  ///
  /// Written branch-free (guards as selects, the possibly-poisoned
  /// division discarded by its select) so the batched SoA re-score loop
  /// auto-vectorizes; value-identical to the PR 3/4 branched form.
  double Upper(double x, double c1, double s) const {
    const double ax = AbsD(x);
    const double sx = sum_k + x;
    const double m_sx = abs_sum_k + ax;       // >= |sx| and its err scale
    const double sx2 = sum_k2 + x * x;        // all terms >= 0
    const double xc = x * c1;
    const double axc = AbsD(xc);
    const double sxy = sum_kr + s + xc;
    const double m_sxy = abs_sum_kr + AbsD(s) + axc;
    // VarX = n1*sx2 - sx^2.
    const double a = n1 * sx2;
    const double bb = sx * sx;
    const double varx = a - bb;
    const double e_varx = kBoundEps * (a + bb + m_sx * m_sx);
    // Cov = n1*sxy - sx*sum_y.
    const double cov = n1 * sxy - sx * sum_y;
    const double e_cov = kBoundEps * (n1 * m_sxy + m_sx * sum_y);
    // Lower bound on Cov^2/VarX; zero whenever the VarX interval is not
    // strictly positive (the exact path then degenerates to VarY alone)
    // or the Cov interval straddles zero. The unguarded division may
    // produce inf/NaN; the select discards it exactly when it does.
    const double cov_lo = AbsD(cov) - e_cov;
    const double q_raw =
        (cov_lo * cov_lo) / (varx + e_varx) * (1.0 - 4.0 * kBoundEps);
    const double q_lb = (varx - e_varx > 0 && cov_lo > 0) ? q_raw : 0.0;
    const double num = (var_y_ub - q_lb) + kBoundEps * (var_y_ub + q_lb);
    const double ub = num * inv_n12_ub;
    // Any non-finite intermediate poisons ub; "never prune" is the
    // admissible answer.
    return num <= 0
               ? 0.0
               : (ub >= 0 ? ub : std::numeric_limits<double>::infinity());
  }

  /// Admissible upper bound on the loss over EVERY candidate whose
  /// shifted key lies in [xl, xl + span], given the exact (c1, prefix)
  /// of the range's first gap — the O(1)-per-tier bound of the tiered
  /// scan.
  ///
  /// Soundness. (1) Along the candidate axis, sum(XY)(x) = sum_kr +
  /// (sum_k - p(x)) + x*c1(x) is piecewise linear with non-decreasing
  /// slopes c1 (candidates passing a key gain a rank term) and *upward*
  /// jumps at key crossings (crossing keys {k_i} at candidate x adds
  /// sum(x - k_i) >= 0), so Cov(x) = n1*sum(XY) - (sum_k + x)*sum_y —
  /// also piecewise linear with non-decreasing slopes n1*c1 - sum_y —
  /// lies above its left-endpoint tangent T(x) = a + b*x over the whole
  /// range. (2) If T > 0 on the range then q(x) = Cov(x)^2 / VarX(x)
  /// >= g(x) = T(x)^2 / V(x), where V(x) = VarX(x) = A x^2 + B x + C
  /// (A = n1-1, B = -2 sum_k, C = n1 sum_k2 - sum_k^2) is the same
  /// gap-independent positive-definite parabola for every candidate.
  /// (3) g has exactly two finite critical points: the zero of T
  /// (outside the range, by the positivity check) and one extremum
  /// whose critical value is the tangency level m* = 4(A a^2 - B a b +
  /// C b^2) / (4AC - B^2) (> 0: the numerator is the positive-definite
  /// V-form evaluated at (a, -b); the denominator is -disc(V) > 0), so
  /// min over the range of g >= min(g(xl), g(xh), m*). Evaluating g at
  /// matched endpoints preserves the Cov^2/VarX cancellation that makes
  /// the flat loss landscape separable at all — bounding min Cov and
  /// max VarX independently is hopeless here (measured: never skips a
  /// tier). Directed error margins follow the same component-magnitude
  /// scheme as Upper.
  double UpperRange(double xl, double span, double c1l, double pl) const {
    const double xh = xl + span;
    // Cov at the left endpoint (exact first-gap inputs), rounded down.
    const double s = sum_k - pl;
    const double m_s = abs_sum_k + AbsD(pl);
    const double xc = xl * c1l;
    const double sxy = sum_kr + s + xc;
    const double m_sxy = abs_sum_kr + m_s + AbsD(xc);
    const double sxl = sum_k + xl;
    const double m_sxl = abs_sum_k + AbsD(xl);
    const double covl = n1 * sxy - sxl * sum_y;
    const double e_covl = kBoundEps * (n1 * m_sxy + m_sxl * sum_y);
    // Tangent T(x) = a + b x with both coefficients rounded toward the
    // admissible side (T must stay below the true Cov).
    const double slope = n1 * c1l - sum_y;
    const double e_slope = kBoundEps * (n1 * c1l + sum_y);
    const double b = slope - e_slope;
    const double a = (covl - e_covl) - b * xl;
    const double t_lo = covl - e_covl;           // T(xl)
    const double t_hi = t_lo + b * span;         // T(xh), rounded down
    const double e_t_hi = kBoundEps * (AbsD(t_lo) + AbsD(b) * span);
    double q_lb = 0;
    if (t_lo > 0 && t_hi - e_t_hi > 0) {
      // V at the endpoints, rounded up.
      const double sxh = sum_k + xh;
      const double m_sxh = abs_sum_k + AbsD(xh);
      const double vxl = n1 * (sum_k2 + xl * xl) - sxl * sxl;
      const double e_vxl =
          kBoundEps * (n1 * (sum_k2 + xl * xl) + m_sxl * m_sxl);
      const double vxh = n1 * (sum_k2 + xh * xh) - sxh * sxh;
      const double e_vxh =
          kBoundEps * (n1 * (sum_k2 + xh * xh) + m_sxh * m_sxh);
      // Endpoint values of g, rounded down.
      double lb = std::numeric_limits<double>::infinity();
      if (vxl + e_vxl > 0) {
        lb = std::min(lb, (t_lo * t_lo) / (vxl + e_vxl) *
                              (1.0 - 4.0 * kBoundEps));
      }
      const double th = t_hi - e_t_hi;
      if (vxh + e_vxh > 0) {
        lb = std::min(lb, (th * th) / (vxh + e_vxh) *
                              (1.0 - 4.0 * kBoundEps));
      }
      // Interior tangency level m*, rounded down. Guarded on the
      // denominator staying provably positive (V strictly positive
      // definite); otherwise the interior extremum cannot be certified
      // and the tier is simply not pruned.
      const double cA = n1 - 1.0;
      const double cB = -2.0 * sum_k;
      const double cC = n1 * sum_k2 - sum_k * sum_k;
      const double m_cC = n1 * sum_k2 + abs_sum_k * abs_sum_k;
      const double den = 4.0 * cA * cC - cB * cB;
      const double e_den =
          kBoundEps * (4.0 * cA * m_cC + cB * cB);
      const double num_m =
          4.0 * (cA * a * a - cB * a * b + cC * b * b);
      const double e_num_m = 4.0 * kBoundEps *
          (cA * a * a + AbsD(cB * a * b) + m_cC * b * b);
      if (den - e_den > 0) {
        const double m_star =
            (num_m - e_num_m) / (den + e_den) * (1.0 - 4.0 * kBoundEps);
        lb = std::min(lb, m_star);
      } else {
        lb = 0;
      }
      if (lb > 0 && std::isfinite(lb)) q_lb = lb;
    }
    const double num = (var_y_ub - q_lb) + kBoundEps * (var_y_ub + q_lb);
    if (num <= 0) return 0;
    const double ub = num * inv_n12_ub;
    // Any non-finite/NaN intermediate poisons ub; "never prune" is the
    // admissible answer.
    if (!(ub >= 0)) return std::numeric_limits<double>::infinity();
    return ub;
  }
};

/// The removal-side dual of BoundCtx: an admissible double-precision
/// upper bound on the Theorem 1 loss of the current n keys with one key
/// deleted. With x = kp - shift, r = the key's 1-based rank and
/// sa = the shifted key-sum above it, the exact aggregates are
///   sum(X) = sum_k - x, sum(X^2) = sum_k2 - x^2,
///   sum(XY) = sum_kr - x*r - sa   (keys above kp lose one rank),
/// and ranks become a permutation of 1..n-1. The bound evaluates the
/// same formula in double with the component-magnitude margin scheme of
/// BoundCtx (VarY rounded up, Cov^2/VarX down; differences margined
/// against the sum of their term magnitudes, which for the subtractive
/// aggregates here means sum_k2 + x^2 etc.), so bound >= exact loss for
/// every stored key — the admissibility the pruned removal argmax needs
/// to stay bit-identical to the exhaustive index-ordered scan.
struct LossLandscape::RemovalBoundCtx {
  double n1 = 0;          // n - 1
  double inv_n12_ub = 0;  // (1 + slack) / (n-1)^2, rounded up
  double sum_y = 0;       // sum of ranks 1..n-1
  double var_y_ub = 0;    // (n-1)*sumY2 - sumY^2, rounded up
  double sum_k = 0;       // converted exact aggregates
  double abs_sum_k = 0;
  double sum_k2 = 0;      // >= 0
  double sum_kr = 0;
  double abs_sum_kr = 0;
  bool usable = false;

  static RemovalBoundCtx Make(std::int64_t n, Int128 sum_k, Int128 sum_k2,
                              Int128 sum_kr) {
    RemovalBoundCtx b;
    const std::int64_t n1 = n - 1;
    if (n1 < 2) return b;  // Regression needs two survivors.
    const Int128 sy = SumRanks(n1);
    const Int128 var_y =
        static_cast<Int128>(n1) * SumRankSquares(n1) - sy * sy;
    b.n1 = static_cast<double>(n1);
    const double n12_lo = b.n1 * b.n1 * (1.0 - 2.0 * kBoundEps);
    b.inv_n12_ub = (1.0 + 6.0 * kBoundEps) / n12_lo;
    b.sum_y = static_cast<double>(sy);
    b.var_y_ub = static_cast<double>(var_y) * (1.0 + 2.0 * kBoundEps);
    b.sum_k = static_cast<double>(sum_k);
    b.abs_sum_k = AbsD(b.sum_k);
    b.sum_k2 = static_cast<double>(sum_k2);
    b.sum_kr = static_cast<double>(sum_kr);
    b.abs_sum_kr = AbsD(b.sum_kr);
    b.usable = std::isfinite(b.var_y_ub) && std::isfinite(b.sum_k) &&
               std::isfinite(b.sum_k2) && std::isfinite(b.sum_kr) &&
               std::isfinite(b.sum_y) && std::isfinite(b.inv_n12_ub) &&
               b.inv_n12_ub > 0;
    return b;
  }

  /// Branch-free like BoundCtx::Upper, so the per-candidate pass over
  /// the removal SoA (x from the sorted keys, r = i+1 an induction
  /// variable, sa from the int64 suffix array) auto-vectorizes.
  double Upper(double x, double r, double sa) const {
    const double ax = AbsD(x);
    const double sx = sum_k - x;
    const double m_sx = abs_sum_k + ax;
    const double sx2 = sum_k2 - x * x;
    const double m_sx2 = sum_k2 + x * x;
    const double xr = x * r;
    const double sxy = sum_kr - xr - sa;
    const double m_sxy = abs_sum_kr + AbsD(xr) + AbsD(sa);
    // VarX = n1*sx2 - sx^2 (sx2 itself is a difference here, so its
    // magnitude bound m_sx2 replaces the nonnegative a of the insertion
    // form).
    const double varx = n1 * sx2 - sx * sx;
    const double e_varx = kBoundEps * (n1 * m_sx2 + m_sx * m_sx);
    // Cov = n1*sxy - sx*sum_y.
    const double cov = n1 * sxy - sx * sum_y;
    const double e_cov = kBoundEps * (n1 * m_sxy + m_sx * sum_y);
    const double cov_lo = AbsD(cov) - e_cov;
    const double q_raw =
        (cov_lo * cov_lo) / (varx + e_varx) * (1.0 - 4.0 * kBoundEps);
    const double q_lb = (varx - e_varx > 0 && cov_lo > 0) ? q_raw : 0.0;
    const double num = (var_y_ub - q_lb) + kBoundEps * (var_y_ub + q_lb);
    const double ub = num * inv_n12_ub;
    return num <= 0
               ? 0.0
               : (ub >= 0 ? ub : std::numeric_limits<double>::infinity());
  }

  /// Cov at one candidate, rounded down, with its magnitude scale.
  void CovLow(double x, double r, double sa, double* cov_lo,
              double* m_cov) const {
    const double xr = x * r;
    const double sxy = sum_kr - xr - sa;
    const double m_sxy = abs_sum_kr + AbsD(xr) + AbsD(sa);
    const double sx = sum_k - x;
    const double m_sx = abs_sum_k + AbsD(x);
    const double cov = n1 * sxy - sx * sum_y;
    const double e_cov = kBoundEps * (n1 * m_sxy + m_sx * sum_y);
    *cov_lo = cov - e_cov;
    *m_cov = n1 * m_sxy + m_sx * sum_y;
  }

  /// V(x) = n1*(sum_k2 - x^2) - (sum_k - x)^2 — the removal-side VarX
  /// parabola (downward: A = -(n1+1)), rounded up, plus its magnitude.
  void VarXHigh(double x, double* v_ub, double* m_v) const {
    const double sx = sum_k - x;
    const double m_sx = abs_sum_k + AbsD(x);
    const double v = n1 * (sum_k2 - x * x) - sx * sx;
    const double m = n1 * (sum_k2 + x * x) + m_sx * m_sx;
    *v_ub = v + kBoundEps * m;
    *m_v = m;
  }

  /// Admissible upper bound on the removal loss over EVERY candidate in
  /// a block of consecutive stored keys, from the block's exact
  /// endpoint records (x, rank, suffix-sum).
  ///
  /// Soundness. Along the stored keys the covariance after removal,
  /// Cov(x_j) = n1*sum_kr - K*sy - n1*(x_j r_j + sa_j) + sy*x_j, steps
  /// by (x_{j+1}-x_j)*(sy - n1*r_j) between neighbours — slopes strictly
  /// decreasing in j — so the candidate points form a *concave* chain
  /// and lie on or above the chord through the block's endpoints; a
  /// chord through endpoint values rounded down (and re-lowered by the
  /// chord arithmetic's own error scale) stays below Cov at every
  /// candidate. If that chord is positive at both ends it is positive
  /// across the block, and q_j = Cov_j^2 / V(x_j) >= C(x)^2 / V(x) over
  /// the block's x-range. V is the same downward (A<0) parabola for
  /// every candidate and positive at both endpoints, hence positive on
  /// the whole range, so the continuous min of C^2/V is attained at an
  /// endpoint or at the interior critical value m* = 4(A a^2 - B a b +
  /// C_v b^2)/(4 A C_v - B^2) (the nonzero extremal value of the
  /// ratio); with den = 4AC_v - B^2 < 0 here, a nonnegative numerator
  /// makes m* <= 0 — impossible for the positive ratio, so endpoints
  /// suffice — and a negative numerator yields the m* >= 0 candidate,
  /// folded in rounded down. Directed error margins follow the
  /// component-magnitude scheme throughout.
  double UpperBlock(double xf, double rf, double saf, double xl, double rl,
                    double sal) const {
    double cf = 0;
    double mf = 0;
    double cl = 0;
    double ml = 0;
    CovLow(xf, rf, saf, &cf, &mf);
    CovLow(xl, rl, sal, &cl, &ml);
    double q_lb = 0;
    const double span = xl - xf;
    if (cf > 0 && cl > 0 && span > 0) {
      // Chord through the lowered endpoints, re-lowered by its own
      // arithmetic error scale so it minorizes Cov between them too.
      const double b = (cl - cf) / span;
      const double a_raw = cf - b * xf;
      const double slack =
          kBoundEps * (AbsD(cf) + AbsD(cl) + AbsD(b) * span + mf + ml);
      const double a = a_raw - slack;
      const double t_f = a + b * xf;
      const double t_l = a + b * xl;
      double v_f = 0;
      double m_vf = 0;
      double v_l = 0;
      double m_vl = 0;
      VarXHigh(xf, &v_f, &m_vf);
      VarXHigh(xl, &v_l, &m_vl);
      if (t_f > 0 && t_l > 0 && v_f > 0 && v_l > 0) {
        double lb = std::min(
            (t_f * t_f) / v_f * (1.0 - 4.0 * kBoundEps),
            (t_l * t_l) / v_l * (1.0 - 4.0 * kBoundEps));
        // Interior critical value m* of (a + b x)^2 / (A x^2 + B x + C).
        const double cA = -(n1 + 1.0);
        const double cB = 2.0 * sum_k;
        const double cC = n1 * sum_k2 - sum_k * sum_k;
        const double m_cC = n1 * sum_k2 + abs_sum_k * abs_sum_k;
        const double den = 4.0 * cA * cC - cB * cB;
        const double e_den = kBoundEps * (4.0 * AbsD(cA) * m_cC + cB * cB);
        const double num_m = 4.0 * (cA * a * a - cB * a * b + cC * b * b);
        const double e_num_m =
            4.0 * kBoundEps *
            (AbsD(cA) * a * a + AbsD(cB * a * b) + m_cC * b * b);
        if (den + e_den < 0) {
          if (num_m + e_num_m < 0) {
            // m* > 0: a certified lower bound is |num|_lo / |den|_ub.
            const double m_star = (-(num_m + e_num_m)) /
                                  (e_den - den) * (1.0 - 4.0 * kBoundEps);
            lb = std::min(lb, m_star);
          }
          // num >= 0 -> m* <= 0: no positive interior critical value;
          // the endpoint minimum already covers the range.
        } else {
          // Cannot certify the parabola's orientation: no pruning.
          lb = 0;
        }
        if (lb > 0 && std::isfinite(lb)) q_lb = lb;
      }
    }
    const double num = (var_y_ub - q_lb) + kBoundEps * (var_y_ub + q_lb);
    if (num <= 0) return 0;
    const double ub = num * inv_n12_ub;
    if (!(ub >= 0)) return std::numeric_limits<double>::infinity();
    return ub;
  }
};

template <typename T>
std::vector<T>& LossLandscape::PrepareScratch(std::vector<T>* buf,
                                              std::size_t needed) const {
  if (buf->capacity() < needed) {
    ++scratch_reallocs_;
    std::vector<T> fresh;
    fresh.reserve(std::max(needed, buf->capacity() * 2));
    buf->swap(fresh);
  }
  buf->clear();
  return *buf;
}

namespace {

// Manual AddressSanitizer region annotations for the grow-only scratch
// buffers: the resize(capacity()) pattern leaves capacity-sized stale
// entries *live* as far as the language is concerned, so plain ASan
// cannot see a read that escapes the [0, needed) prefix a scan actually
// prepared. Hard-poisoning the tail turns such an escape into an abort
// (see scratch_canary_test). No-ops in non-ASan builds.
#if defined(__SANITIZE_ADDRESS__)
#define LISPOISON_ASAN_SCRATCH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LISPOISON_ASAN_SCRATCH 1
#endif
#endif

#if defined(LISPOISON_ASAN_SCRATCH)
extern "C" {
void __asan_poison_memory_region(const volatile void* addr, std::size_t size);
void __asan_unpoison_memory_region(const volatile void* addr,
                                   std::size_t size);
}
template <typename T>
void ScratchUnpoisonAll(std::vector<T>* buf) {
  if (!buf->empty()) {
    __asan_unpoison_memory_region(buf->data(), buf->size() * sizeof(T));
  }
}
template <typename T>
void ScratchPoisonTail(std::vector<T>* buf, std::size_t needed) {
  if (buf->empty()) return;
  __asan_unpoison_memory_region(buf->data(), needed * sizeof(T));
  if (needed < buf->size()) {
    __asan_poison_memory_region(buf->data() + needed,
                                (buf->size() - needed) * sizeof(T));
  }
}
#else
template <typename T>
void ScratchUnpoisonAll(std::vector<T>*) {}
template <typename T>
void ScratchPoisonTail(std::vector<T>*, std::size_t) {}
#endif

/// Grow-only variant for the flat per-gap arrays whose live prefix is
/// fully overwritten each scan: avoids the O(G) value-initialization
/// PrepareScratch's clear+resize would pay per round. Contract: the
/// caller owns exactly [0, needed) and writes every slot it later
/// reads; stale entries beyond the prepared prefix are never touched.
/// Under ASan the tail [needed, size) is hard-poisoned so any escape
/// aborts rather than silently reading a stale bound.
template <typename T>
void EnsureScratchSize(std::vector<T>* buf, std::size_t needed,
                       std::int64_t* reallocs) {
  if (buf->size() < needed) {
    if (buf->capacity() < needed) {
      ++*reallocs;
      // The reallocation copies the whole old block; lift any manual
      // poison first so the copy itself doesn't fault.
      ScratchUnpoisonAll(buf);
      buf->reserve(std::max(needed, buf->capacity() * 2));
    }
    buf->resize(buf->capacity());
  }
  ScratchPoisonTail(buf, needed);
}

}  // namespace

void LossLandscape::PoisonArgmaxScratchForTesting() const {
  // Sentinel fill: NaN for bound slots (any stale read propagates into
  // a comparison and breaks the argmax invariants loudly), huge values
  // for counts/indices (stale counter reads explode the accounting the
  // tests assert). The fill writes the *whole* buffers, so lift any
  // manual ASan poison first; the next scan's EnsureScratchSize
  // re-establishes the tail poison for its own `needed`.
  const double dnan = std::numeric_limits<double>::quiet_NaN();
  constexpr std::int64_t kCnt =
      std::numeric_limits<std::int64_t>::max() / 3;
  ScratchUnpoisonAll(&argmax_bounds_);
  ScratchUnpoisonAll(&argmax_suffix_max_);
  ScratchUnpoisonAll(&argmax_suffix_cnt_);
  ScratchUnpoisonAll(&argmax_order_);
  ScratchUnpoisonAll(&argmax_tier_bounds_);
  ScratchUnpoisonAll(&argmax_tier_suffix_max_);
  ScratchUnpoisonAll(&argmax_tier_suffix_cnt_);
  ScratchUnpoisonAll(&argmax_soa_);
  std::fill(argmax_bounds_.begin(), argmax_bounds_.end(), dnan);
  std::fill(argmax_suffix_max_.begin(), argmax_suffix_max_.end(), dnan);
  std::fill(argmax_suffix_cnt_.begin(), argmax_suffix_cnt_.end(), kCnt);
  std::fill(argmax_order_.begin(), argmax_order_.end(),
            std::numeric_limits<std::size_t>::max());
  std::fill(argmax_tier_bounds_.begin(), argmax_tier_bounds_.end(), dnan);
  std::fill(argmax_tier_suffix_max_.begin(), argmax_tier_suffix_max_.end(),
            dnan);
  std::fill(argmax_tier_suffix_cnt_.begin(), argmax_tier_suffix_cnt_.end(),
            kCnt);
  std::fill(argmax_soa_.begin(), argmax_soa_.end(), dnan);
}

void LossLandscape::ScanGapRanges(std::size_t first, std::size_t end,
                                  std::int64_t top_k,
                                  const BoundCtx* bound_ctx,
                                  const std::unordered_set<Key>* excluded,
                                  Candidate* best, bool* have,
                                  ArgmaxStats* stats) const {
  // First-maximum-in-key-order semantics, order-independent form:
  // strictly larger loss wins; an equal loss wins only with a smaller
  // key. The exhaustive scan visits candidates in key order, where this
  // reduces to the original strict > rule.
  auto consider = [&](Key kp, Rank count_less, Int128 suffix_sum) {
    if (excluded != nullptr && excluded->count(kp) != 0) return;
    const long double loss = LossWithInsertion(kp, count_less, suffix_sum);
    ++stats->exact_evals;
    if (!*have || loss > best->loss ||
        (loss == best->loss && kp < best->key)) {
      best->key = kp;
      best->loss = loss;
      *have = true;
    }
  };
  auto eval_gap = [&](std::size_t i) {
    const GapRange& g = argmax_ranges_[i];
    consider(g.lo, g.count_less, g.suffix_sum);
    if (g.hi != g.lo) consider(g.hi, g.count_less, g.suffix_sum);
  };

  if (bound_ctx == nullptr) {
    for (std::size_t i = first; i < end; ++i) eval_gap(i);
    return;
  }

  // Phase 1 — pre-pass: score every gap's non-excluded endpoints against
  // the admissible bound; -inf marks gaps with no admissible candidate.
  constexpr double kNoBound = -std::numeric_limits<double>::infinity();
  // Candidate keys are shifted in exact int64 then converted with one
  // cheap cvt instruction (no 128-bit library call). Safe: FindOptimal
  // falls back to the exhaustive scan when the domain span could
  // overflow the subtraction.
  for (std::size_t i = first; i < end; ++i) {
    const GapRange& g = argmax_ranges_[i];
    const double c1 = static_cast<double>(g.count_less + 1);
    const double s = static_cast<double>(g.suffix_sum);
    double bnd = kNoBound;
    if (excluded == nullptr || excluded->count(g.lo) == 0) {
      const double x = static_cast<double>(g.lo - shift_);
      bnd = bound_ctx->Upper(x, c1, s);
      ++stats->bound_evals;
    }
    if (g.hi != g.lo &&
        (excluded == nullptr || excluded->count(g.hi) == 0)) {
      const double x = static_cast<double>(g.hi - shift_);
      const double b2 = bound_ctx->Upper(x, c1, s);
      ++stats->bound_evals;
      if (b2 > bnd) bnd = b2;
    }
    argmax_bounds_[i] = bnd;
  }

  // Phase 2 — exact re-check of the top-K bounds to seed the running
  // best. nth_element's partition is unstable, but the final Candidate
  // is invariant: every gap that could still win is re-checked in phase
  // 3 regardless of which ties landed in the top-K.
  const std::size_t len = end - first;
  const std::size_t k =
      std::min(len, static_cast<std::size_t>(std::max<std::int64_t>(
                        1, top_k)));
  for (std::size_t i = first; i < end; ++i) argmax_order_[i] = i;
  std::nth_element(argmax_order_.begin() + static_cast<std::ptrdiff_t>(first),
                   argmax_order_.begin() +
                       static_cast<std::ptrdiff_t>(first + k),
                   argmax_order_.begin() + static_cast<std::ptrdiff_t>(end),
                   [this](std::size_t a, std::size_t b) {
                     return argmax_bounds_[a] > argmax_bounds_[b];
                   });
  for (std::size_t j = first; j < first + k; ++j) {
    const std::size_t i = argmax_order_[j];
    if (argmax_bounds_[i] == kNoBound) continue;
    eval_gap(i);
    argmax_bounds_[i] = kNoBound;  // Consumed: phase 3 skips it.
  }

  // Suffix max/count over the *unconsumed* bounds enable the
  // branch-and-bound early exit and keep the pruned-gap counter exact.
  {
    double run_max = kNoBound;
    std::int64_t run_cnt = 0;
    for (std::size_t i = end; i > first; --i) {
      const double b = argmax_bounds_[i - 1];
      if (b != kNoBound) {
        ++run_cnt;
        if (b > run_max) run_max = b;
      }
      argmax_suffix_max_[i - 1] = run_max;
      argmax_suffix_cnt_[i - 1] = run_cnt;
    }
  }

  // Phase 3 — key-ordered sweep: a gap survives only while its bound can
  // still reach the running best (>= keeps exact ties alive for the
  // smaller-key rule); once every remaining bound is strictly below the
  // best, the scan exits.
  for (std::size_t i = first; i < end; ++i) {
    if (*have && argmax_suffix_max_[i] < best->loss) {
      stats->pruned_gaps += argmax_suffix_cnt_[i];
      break;
    }
    const double b = argmax_bounds_[i];
    if (b == kNoBound) continue;
    if (*have && b < best->loss) {
      ++stats->pruned_gaps;
      continue;
    }
    eval_gap(i);
  }
}

std::int64_t LossLandscape::TierInRangeCount(const TieredGaps::Tier& t,
                                             Key lo_bound, Key hi_bound) {
  if (t.lo >= lo_bound && t.hi <= hi_bound) {
    return static_cast<std::int64_t>(t.gaps.size());
  }
  std::int64_t count = 0;
  for (const TieredGaps::GapRec& g : t.gaps) {
    if (g.hi >= lo_bound && g.lo <= hi_bound) ++count;
  }
  return count;
}

void LossLandscape::BatchTierBounds(const TieredGaps::Tier& t,
                                    const BoundCtx& ctx, double* soa,
                                    double* out, ArgmaxStats* stats) const {
  // Staging pass: unpack the tier's gap records (AoS, with Int128
  // bookkeeping) into flat double arrays. The exact counters match the
  // scalar path: one score per endpoint, single-key gaps score once.
  const std::size_t m = t.gaps.size();
  double* x_lo = soa;
  double* x_hi = soa + m;
  double* c1 = soa + 2 * m;
  double* s = soa + 3 * m;
  std::int64_t evals = 0;
  for (std::size_t gi = 0; gi < m; ++gi) {
    const TieredGaps::GapRec& g = t.gaps[gi];
    x_lo[gi] = static_cast<double>(g.lo - shift_);
    x_hi[gi] = static_cast<double>(g.hi - shift_);
    c1[gi] = static_cast<double>(g.cnt + t.delta_cnt + 1);
    s[gi] = static_cast<double>(sum_k_ - (g.sum + t.delta_sum));
    evals += g.hi != g.lo ? 2 : 1;
  }
  stats->bound_evals += evals;
  // Kernel pass: pure double arithmetic over the SoA slices, branch
  // free (BoundCtx::Upper is written as selects), so the loop
  // auto-vectorizes. max(lo, hi) equals the scalar two-endpoint fold —
  // for single-key gaps both operands are the same score.
  const BoundCtx c = ctx;  // Local copy: no aliasing against the slices.
  for (std::size_t gi = 0; gi < m; ++gi) {
    const double b1 = c.Upper(x_lo[gi], c1[gi], s[gi]);
    const double b2 = c.Upper(x_hi[gi], c1[gi], s[gi]);
    out[gi] = b2 > b1 ? b2 : b1;
  }
}

void LossLandscape::ScanTiersCached(std::size_t first, std::size_t end,
                                    Key lo_bound, Key hi_bound,
                                    const BoundCtx& ctx,
                                    const std::unordered_set<Key>* excluded,
                                    double* seed_bounds, double* scratch,
                                    double* soa, Candidate* best,
                                    bool* have, ArgmaxStats* stats) const {
  const std::vector<TieredGaps::Tier>& tiers = gaps_.tiers();
  auto consider = [&](Key kp, Rank count_less, Int128 suffix_sum) {
    if (excluded != nullptr && excluded->count(kp) != 0) return;
    const long double loss = LossWithInsertion(kp, count_less, suffix_sum);
    ++stats->exact_evals;
    if (!*have || loss > best->loss ||
        (loss == best->loss && kp < best->key)) {
      best->key = kp;
      best->loss = loss;
      *have = true;
    }
  };
  auto eval_rec = [&](const TieredGaps::GapRec& g,
                      const TieredGaps::Tier& t) {
    const Rank count_less = g.cnt + t.delta_cnt;
    const Int128 suffix = sum_k_ - (g.sum + t.delta_sum);
    consider(g.lo, count_less, suffix);
    if (g.hi != g.lo) consider(g.hi, count_less, suffix);
  };
  // FindOptimal's scan ranges never clip a gap partially (range bounds
  // are min/max +- 1 or the domain edges, and gaps are bounded by
  // occupied keys), so membership is a whole-gap test.
  auto in_range = [lo_bound, hi_bound](const TieredGaps::GapRec& g) {
    return g.hi >= lo_bound && g.lo <= hi_bound;
  };
  auto count_at = [this](std::size_t pos) {
    return argmax_tier_suffix_cnt_[pos] - argmax_tier_suffix_cnt_[pos + 1];
  };
  // Per-gap point bound over the non-excluded endpoints (the same
  // pipeline the uncached pre-pass runs, against the same per-round
  // context); -inf when no admissible candidate remains.
  constexpr double kNoBound = -std::numeric_limits<double>::infinity();
  auto gap_bound = [&](const TieredGaps::GapRec& g,
                       const TieredGaps::Tier& t) {
    const double c1 = static_cast<double>(g.cnt + t.delta_cnt + 1);
    const double s =
        static_cast<double>(sum_k_ - (g.sum + t.delta_sum));
    double bnd = kNoBound;
    if (excluded == nullptr || excluded->count(g.lo) == 0) {
      bnd = ctx.Upper(static_cast<double>(g.lo - shift_), c1, s);
      ++stats->bound_evals;
    }
    if (g.hi != g.lo &&
        (excluded == nullptr || excluded->count(g.hi) == 0)) {
      const double b2 =
          ctx.Upper(static_cast<double>(g.hi - shift_), c1, s);
      ++stats->bound_evals;
      if (b2 > bnd) bnd = b2;
    }
    return bnd;
  };

  // Seed the running best inside the tier with the highest box bound
  // (the tiered analogue of the uncached top-K re-check): compute that
  // tier's per-gap bounds once — staged into this chunk's slice of the
  // engine-owned scratch so the sweep below reuses them — and
  // exact-evaluate the best one. Strict > keeps the earliest tier/gap
  // on ties — a pure function of the structure, so the seed is
  // identical for every thread count.
  std::size_t seed_pos = end;
  double seed_box = -std::numeric_limits<double>::infinity();
  for (std::size_t pos = first; pos < end; ++pos) {
    if (count_at(pos) <= 0) continue;
    const double bx = argmax_tier_bounds_[pos];
    if (bx > seed_box) {
      seed_box = bx;
      seed_pos = pos;
    }
  }
  // A tier strictly inside the scan range with no exclusions takes the
  // batched SoA kernel; partially clipped edge tiers (at most two per
  // scan), excluded-key scans, and small tiers (measured: the staging
  // pass costs more than the vector lanes recover below ~tens of gaps,
  // the RMI per-model regime) keep the scalar per-gap path.
  constexpr std::size_t kBatchMinTierGaps = 64;
  auto whole_tier = [&](const TieredGaps::Tier& t) {
    return excluded == nullptr && t.gaps.size() >= kBatchMinTierGaps &&
           t.lo >= lo_bound && t.hi <= hi_bound;
  };
  const TieredGaps::GapRec* seed_gap = nullptr;
  if (seed_pos != end) {
    const TieredGaps::Tier& t = tiers[argmax_tier_list_[seed_pos]];
    double gap_best = -std::numeric_limits<double>::infinity();
    if (whole_tier(t)) {
      BatchTierBounds(t, ctx, soa, seed_bounds, stats);
      for (std::size_t gi = 0; gi < t.gaps.size(); ++gi) {
        if (seed_bounds[gi] > gap_best) {
          gap_best = seed_bounds[gi];
          seed_gap = &t.gaps[gi];
        }
      }
    } else {
      for (std::size_t gi = 0; gi < t.gaps.size(); ++gi) {
        const TieredGaps::GapRec& g = t.gaps[gi];
        if (!in_range(g)) continue;
        const double b = gap_bound(g, t);
        seed_bounds[gi] = b;
        if (b > gap_best) {
          gap_best = b;
          seed_gap = &g;
        }
      }
    }
    if (seed_gap != nullptr) eval_rec(*seed_gap, t);
  }

  // Key-ordered sweep: skip whole tiers via their box bound, re-score
  // only the survivors per gap, and exit once every remaining tier box
  // is below the best. The suffix arrays are global (they extend past
  // this chunk), so the exit test is conservative — sound for any chunk
  // split. Accounting: a gap is "cached" when its tier's box (built
  // from the incrementally maintained tier aggregates) dispositioned it
  // without per-gap work, "invalidated" when its tier survived and it
  // was re-scored individually.
  for (std::size_t pos = first; pos < end; ++pos) {
    if (*have && argmax_tier_suffix_max_[pos] < best->loss) {
      const std::int64_t rest =
          argmax_tier_suffix_cnt_[pos] - argmax_tier_suffix_cnt_[end];
      stats->pruned_gaps += rest;
      stats->cached_bounds += rest;
      break;
    }
    const std::int64_t here = count_at(pos);
    if (here <= 0) continue;
    const TieredGaps::Tier& t = tiers[argmax_tier_list_[pos]];
    if (*have && argmax_tier_bounds_[pos] < best->loss) {
      stats->pruned_gaps += here;
      stats->cached_bounds += here;
      continue;
    }
    stats->invalidated_gaps += here;
    const bool is_seed_tier = pos == seed_pos;
    // Staged bounds: the seed tier's came from the seed phase; any
    // other fully-in-range surviving tier re-scores through the batched
    // SoA kernel into this chunk's scratch slice. Clipped edge tiers
    // and excluded-key scans fall back to the scalar per-gap score.
    const double* staged = nullptr;
    if (is_seed_tier) {
      staged = seed_bounds;
    } else if (whole_tier(t)) {
      BatchTierBounds(t, ctx, soa, scratch, stats);
      staged = scratch;
    }
    for (std::size_t gi = 0; gi < t.gaps.size(); ++gi) {
      const TieredGaps::GapRec& g = t.gaps[gi];
      if (g.hi < lo_bound) continue;
      if (g.lo > hi_bound) break;
      if (&g == seed_gap) continue;  // Already evaluated by the seed.
      const double b = staged != nullptr ? staged[gi] : gap_bound(g, t);
      if (b == kNoBound) continue;   // Every endpoint excluded.
      if (*have && b < best->loss) {
        ++stats->pruned_gaps;
        continue;
      }
      eval_rec(g, t);
    }
  }
}

Result<LossLandscape::Candidate> LossLandscape::FindOptimal(
    bool interior_only, const std::unordered_set<Key>* excluded,
    ThreadPool* pool) const {
  return FindOptimal(interior_only, excluded, pool, ArgmaxOptions{});
}

// The pruned pipelines are provably admissible only where the exact
// Int128 aggregate arithmetic they majorize cannot overflow: with
// n1 = n+1 keys of shifted magnitude <= S, the Theorem 1 numerators
// reach n1^2*S^2 (VarX), n1^3*S (Cov) and n1^4 (VarY), all of which
// must stay below 2^126. This replaces PR 3's looser span-< 2^62
// test, under which wide domains could overflow the "exact"
// aggregates and silently void the bit-identity the differential
// suites pin (the exhaustive fallback keeps prune-vs-exhaustive
// trivially identical there). It also keeps the pre-passes' int64
// candidate shifts — and the removal SoA's int64 suffix sums, which
// stay below n*S — safe (n1*S < 2^63 implies S < 2^62). The removal
// side's n1 = n-1 aggregates are strictly smaller, so one guard covers
// both directions.
bool LossLandscape::PruneDomainOk() const {
  const Int128 n1 = static_cast<Int128>(n_) + 1;
  if (n1 >= (static_cast<Int128>(1) << 31)) return false;  // n1^4 guard
  Int128 s = static_cast<Int128>(domain_.hi) - shift_;
  const Int128 s_lo = static_cast<Int128>(shift_) - domain_.lo;
  if (s_lo > s) s = s_lo;
  if (s < 1) s = 1;
  if (n1 * s >= (static_cast<Int128>(1) << 63)) return false;  // VarX
  const Int128 limit = static_cast<Int128>(1) << 126;
  return s < limit / (n1 * n1 * n1);  // Cov (n1^3 < 2^93: no overflow)
}

Result<LossLandscape::Candidate> LossLandscape::FindOptimal(
    bool interior_only, const std::unordered_set<Key>* excluded,
    ThreadPool* pool, const ArgmaxOptions& argmax, ArgmaxStats* stats) const {
  ArgmaxStats local;
  local.rounds = 1;

  const bool domain_ok = PruneDomainOk();
  bool prune = argmax.prune;

  Candidate best;
  bool have = false;

  // -------------------------------------------------------------------
  // Tiered incremental path: one box bound per tier from the per-tier
  // aggregates the splices maintain, per-gap re-scoring only for the
  // tiers whose box survives — O(sqrt(G) + survivors) bound work per
  // round.
  // -------------------------------------------------------------------
  BoundCtx ctx;
  bool use_cache = prune && argmax.cache && domain_ok;
  if (use_cache) {
    ctx = BoundCtx::Make(n_, sum_k_, sum_k2_, sum_kr_);
    // Context not provably admissible: fall back to the per-round
    // pre-pass below (which may itself fall back to exhaustive).
    if (!ctx.usable) use_cache = false;
  }
  if (use_cache) {
    const Key lo_bound = interior_only ? min_key_ + 1 : domain_.lo;
    const Key hi_bound = interior_only ? max_key_ - 1 : domain_.hi;
    const std::vector<TieredGaps::Tier>& tiers = gaps_.tiers();
    auto& list = PrepareScratch(&argmax_tier_list_, tiers.size());
    if (lo_bound <= hi_bound) {
      for (std::size_t ti = gaps_.FirstTierNotBelow(lo_bound);
           ti < tiers.size() && tiers[ti].lo <= hi_bound; ++ti) {
        list.push_back(ti);
      }
    }
    const std::size_t num_listed = list.size();
    EnsureScratchSize(&argmax_tier_bounds_, num_listed + 1,
                      &scratch_reallocs_);
    EnsureScratchSize(&argmax_tier_suffix_max_, num_listed + 1,
                      &scratch_reallocs_);
    EnsureScratchSize(&argmax_tier_suffix_cnt_, num_listed + 1,
                      &scratch_reallocs_);

    // Range pass (serial, O(#tiers)): one admissible bound per tier
    // over every candidate in its key range, from the covariance
    // left-tangent at the tier's first gap — O(1) reads off the tier.
    std::int64_t total_in_range = 0;
    for (std::size_t pos = 0; pos < num_listed; ++pos) {
      const TieredGaps::Tier& t = tiers[list[pos]];
      const std::int64_t in_range = TierInRangeCount(t, lo_bound, hi_bound);
      double tier_bound = -std::numeric_limits<double>::infinity();
      if (in_range > 0) {
        const double c1l =
            static_cast<double>(t.gaps.front().cnt + t.delta_cnt + 1);
        const double pl =
            static_cast<double>(t.gaps.front().sum + t.delta_sum);
        tier_bound = ctx.UpperRange(static_cast<double>(t.lo - shift_),
                                    static_cast<double>(t.hi - t.lo),
                                    c1l, pl);
        ++local.bound_evals;
      }
      argmax_tier_bounds_[pos] = tier_bound;
      argmax_tier_suffix_cnt_[pos] = in_range;
      argmax_tier_suffix_max_[pos] = tier_bound;
      total_in_range += in_range;
    }
    argmax_tier_suffix_cnt_[num_listed] = 0;
    argmax_tier_suffix_max_[num_listed] =
        -std::numeric_limits<double>::infinity();
    for (std::size_t pos = num_listed; pos > 0; --pos) {
      argmax_tier_suffix_cnt_[pos - 1] += argmax_tier_suffix_cnt_[pos];
      if (argmax_tier_suffix_max_[pos] > argmax_tier_suffix_max_[pos - 1]) {
        argmax_tier_suffix_max_[pos - 1] = argmax_tier_suffix_max_[pos];
      }
    }

    const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                          total_in_range > kArgmaxChunkGaps;
    // Per chunk: a seed-staging slice plus a batch-scratch slice of
    // argmax_bounds_ (2 x tier_cap) and a 4 x tier_cap SoA slice for
    // the batched kernel's staging arrays.
    const std::size_t seed_stride =
        static_cast<std::size_t>(gaps_.tier_cap());
    if (!parallel) {
      EnsureScratchSize(&argmax_bounds_, 2 * seed_stride,
                        &scratch_reallocs_);
      EnsureScratchSize(&argmax_soa_, 4 * seed_stride, &scratch_reallocs_);
      ScanTiersCached(0, num_listed, lo_bound, hi_bound, ctx, excluded,
                      argmax_bounds_.data(),
                      argmax_bounds_.data() + seed_stride,
                      argmax_soa_.data(), &best, &have, &local);
    } else {
      // Consecutive tier groups of ~kArgmaxChunkGaps in-range gaps: a
      // pure function of the structure, so the chunk layout — and the
      // chunk-order reduction below — is identical for every pool size.
      auto& chunks = PrepareScratch(
          &argmax_chunk_tiers_,
          static_cast<std::size_t>(total_in_range / kArgmaxChunkGaps) + 1);
      std::size_t start = 0;
      std::int64_t acc = 0;
      for (std::size_t pos = 0; pos < num_listed; ++pos) {
        acc += argmax_tier_suffix_cnt_[pos] - argmax_tier_suffix_cnt_[pos + 1];
        if (acc >= kArgmaxChunkGaps) {
          chunks.emplace_back(start, pos + 1);
          start = pos + 1;
          acc = 0;
        }
      }
      if (start < num_listed) chunks.emplace_back(start, num_listed);
      const std::size_t num_chunks = chunks.size();
      // Per-chunk disjoint slices of the shared scratch (seed staging,
      // batch scratch, SoA staging), so workers never race.
      EnsureScratchSize(&argmax_bounds_, num_chunks * 2 * seed_stride,
                        &scratch_reallocs_);
      EnsureScratchSize(&argmax_soa_, num_chunks * 4 * seed_stride,
                        &scratch_reallocs_);
      std::vector<Candidate> chunk_best(num_chunks);
      std::vector<char> chunk_have(num_chunks, 0);
      std::vector<ArgmaxStats> chunk_stats(num_chunks);
      pool->ParallelFor(
          static_cast<std::int64_t>(num_chunks),
          [this, excluded, lo_bound, hi_bound, seed_stride, &ctx, &chunks,
           &chunk_best, &chunk_have, &chunk_stats](std::int64_t c) {
            const auto ci = static_cast<std::size_t>(c);
            bool chunk_found = false;
            double* slice = argmax_bounds_.data() + ci * 2 * seed_stride;
            ScanTiersCached(chunks[ci].first, chunks[ci].second, lo_bound,
                            hi_bound, ctx, excluded, slice,
                            slice + seed_stride,
                            argmax_soa_.data() + ci * 4 * seed_stride,
                            &chunk_best[ci], &chunk_found,
                            &chunk_stats[ci]);
            chunk_have[ci] = chunk_found ? 1 : 0;
          });
      for (std::size_t ci = 0; ci < num_chunks; ++ci) {
        // Chunk workers never touch rounds/fallback, so Add folds in
        // exactly the per-chunk scan counters.
        local.Add(chunk_stats[ci]);
        if (!chunk_have[ci]) continue;
        const Candidate& cb = chunk_best[ci];
        if (!have || cb.loss > best.loss) {
          best = cb;
          have = true;
        }
      }
    }
  } else {
    // -------------------------------------------------------------------
    // Uncached paths: per-round full pre-pass (prune) or exhaustive scan.
    // -------------------------------------------------------------------
    if (prune) {
      ctx = BoundCtx::Make(n_, sum_k_, sum_k2_, sum_kr_);
      if (!domain_ok) ctx.usable = false;
      if (!ctx.usable) {
        // Bound arithmetic not provably admissible on these aggregates:
        // fall back to the exhaustive scan so the result stays exact.
        prune = false;
        local.fallback_rounds = 1;
      }
    }
    const BoundCtx* bound_ctx = prune ? &ctx : nullptr;

    // The materialized paths pay one O(G) traversal into the engine-owned
    // scratch (no per-round allocation once the capacity plateaus); the
    // plain serial exhaustive scan keeps the original zero-materialization
    // loop.
    const bool parallel =
        pool != nullptr && pool->num_threads() > 1 &&
        gaps_.size() > kArgmaxChunkGaps;
    if (parallel || prune) {
      auto& ranges = PrepareScratch(&argmax_ranges_,
                                    static_cast<std::size_t>(gaps_.size()));
      ForEachGap(interior_only, [this, &ranges](Key lo, Key hi, Rank count_less,
                                                Int128 prefix_sum) {
        ranges.push_back(GapRange{lo, hi, count_less, sum_k_ - prefix_sum});
      });
      const std::size_t m = ranges.size();
      if (prune) {
        EnsureScratchSize(&argmax_bounds_, m, &scratch_reallocs_);
        EnsureScratchSize(&argmax_suffix_max_, m, &scratch_reallocs_);
        EnsureScratchSize(&argmax_suffix_cnt_, m, &scratch_reallocs_);
        EnsureScratchSize(&argmax_order_, m, &scratch_reallocs_);
      }
      if (parallel) {
        // Fixed-size chunks reduced in chunk (= key) order with a strict >
        // comparison: bit-identical to the serial scan for every thread
        // count. With pruning on, each chunk runs the pruned pipeline
        // against its chunk-local best — per-chunk bound filtering — which
        // only depends on the chunk's own content, so the counters are
        // thread-count independent too (but differ from the serial scan's,
        // whose single running best prunes across the whole range).
        const std::int64_t num_chunks =
            (static_cast<std::int64_t>(m) + kArgmaxChunkGaps - 1) /
            kArgmaxChunkGaps;
        std::vector<Candidate> chunk_best(static_cast<std::size_t>(num_chunks));
        std::vector<char> chunk_have(static_cast<std::size_t>(num_chunks), 0);
        std::vector<ArgmaxStats> chunk_stats(
            static_cast<std::size_t>(num_chunks));
        pool->ParallelFor(num_chunks, [this, excluded, m, bound_ctx, &argmax,
                                       &chunk_best, &chunk_have,
                                       &chunk_stats](std::int64_t c) {
          const std::size_t first = static_cast<std::size_t>(c) *
                                    static_cast<std::size_t>(kArgmaxChunkGaps);
          const std::size_t end = std::min(
              m, first + static_cast<std::size_t>(kArgmaxChunkGaps));
          bool chunk_found = false;
          ScanGapRanges(first, end, argmax.top_k, bound_ctx, excluded,
                        &chunk_best[static_cast<std::size_t>(c)], &chunk_found,
                        &chunk_stats[static_cast<std::size_t>(c)]);
          chunk_have[static_cast<std::size_t>(c)] = chunk_found ? 1 : 0;
        });
        for (std::int64_t c = 0; c < num_chunks; ++c) {
          const auto ci = static_cast<std::size_t>(c);
          local.Add(chunk_stats[ci]);
          if (!chunk_have[ci]) continue;
          const Candidate& cb = chunk_best[ci];
          if (!have || cb.loss > best.loss) {
            best = cb;
            have = true;
          }
        }
      } else {
        ScanGapRanges(0, m, argmax.top_k, bound_ctx, excluded, &best, &have,
                      &local);
      }
    } else {
      ForEachGap(interior_only,
                 [this, excluded, &best, &have, &local](
                     Key lo, Key hi, Rank count_less, Int128 prefix_sum) {
                   const Int128 suffix = sum_k_ - prefix_sum;
                   auto consider = [&](Key kp) {
                     if (excluded != nullptr && excluded->count(kp) != 0) {
                       return;
                     }
                     const long double loss =
                         LossWithInsertion(kp, count_less, suffix);
                     ++local.exact_evals;
                     if (!have || loss > best.loss) {
                       best.key = kp;
                       best.loss = loss;
                       have = true;
                     }
                   };
                   consider(lo);
                   if (hi != lo) consider(hi);
                 });
    }
  }
  if (stats != nullptr) stats->Add(local);
  if (!have) {
    return Status::ResourceExhausted(
        "no unoccupied candidate keys in the poisoning range");
  }
  return best;
}

void LossLandscape::EnsureRemovalSoa() const {
  const bool want_sa = PruneDomainOk();
  if (rem_soa_.built() && (rem_soa_.with_sa() || !want_sa)) return;
  rem_soa_.StartBuild(n_, want_sa, shift_);
  // Current keys = (base minus tombstones) merged with the inserted
  // overlay; both inputs are sorted and removed_ is a subsequence of
  // base_keys_.
  std::size_t bi = 0;
  std::size_t ri = 0;
  std::size_t ii = 0;
  while (bi < base_keys_.size() || ii < inserted_.size()) {
    if (bi < base_keys_.size() && ri < removed_.size() &&
        base_keys_[bi] == removed_[ri]) {
      ++bi;
      ++ri;
      continue;
    }
    if (ii >= inserted_.size() ||
        (bi < base_keys_.size() && base_keys_[bi] < inserted_[ii])) {
      rem_soa_.AppendSorted(base_keys_[bi++]);
    } else {
      rem_soa_.AppendSorted(inserted_[ii++]);
    }
  }
  rem_soa_.FinishBuild();
}

long double LossLandscape::LossWithoutKey(Key key, std::int64_t rank,
                                          std::int64_t sa) const {
  const std::int64_t n1 = n_ - 1;
  const Int128 x = static_cast<Int128>(key) - shift_;
  const Int128 sum_xy =
      sum_kr_ - x * static_cast<Int128>(rank) - static_cast<Int128>(sa);
  return LossFromSums(n1, sum_k_ - x, sum_k2_ - x * x, SumRanks(n1),
                      SumRankSquares(n1), sum_xy);
}

void LossLandscape::ScanRemovalBlocks(std::size_t bfirst, std::size_t bend,
                                      const RemovalBoundCtx* bound_ctx,
                                      const std::unordered_set<Key>* allowed,
                                      Candidate* best, bool* have,
                                      ArgmaxStats* stats) const {
  // First-maximum-in-key-order semantics in order-independent form, as
  // in the insertion scans: strictly larger loss wins, an equal loss
  // only with a smaller key. (rank, sa) come off the block's exact
  // tier-relative reconstruction, so the loss matches the flat
  // layout's bit-for-bit.
  auto consider = [&](Key kp, std::int64_t rank, std::int64_t sa) {
    const long double loss = LossWithoutKey(kp, rank, sa);
    ++stats->exact_evals;
    if (!*have || loss > best->loss ||
        (loss == best->loss && kp < best->key)) {
      best->key = kp;
      best->loss = loss;
      *have = true;
    }
  };

  if (bound_ctx == nullptr) {
    for (std::size_t b = bfirst; b < bend; ++b) {
      const RemovalSoa::Block& blk = rem_soa_.block(b);
      for (std::size_t j = 0; j < blk.keys.size(); ++j) {
        if (allowed != nullptr && allowed->count(blk.keys[j]) == 0) continue;
        consider(blk.keys[j],
                 blk.count_before + static_cast<std::int64_t>(j) + 1,
                 blk.sa_local[j] + blk.sum_after);
      }
    }
    return;
  }

  constexpr double kNoBound = -std::numeric_limits<double>::infinity();
  const std::size_t first =
      static_cast<std::size_t>(rem_soa_.block(bfirst).count_before);
  const std::size_t end =
      bend < rem_soa_.block_count()
          ? static_cast<std::size_t>(rem_soa_.block(bend).count_before)
          : static_cast<std::size_t>(rem_soa_.size());

  // Phase 1 — batched bound pass, block by block: each block is a
  // structure-of-arrays slice (sorted keys, block-local suffix sums),
  // and the tier-relative reconstruction adds two loop-invariant
  // scalars, so the branch-free double kernel still auto-vectorizes.
  // Bounds land in the globally candidate-indexed scratch
  // argmax_bounds_[count_before + j] (disjoint across parallel chunks).
  for (std::size_t b = bfirst; b < bend; ++b) {
    const RemovalSoa::Block& blk = rem_soa_.block(b);
    const Key* keys = blk.keys.data();
    const std::int64_t* sal = blk.sa_local.data();
    const std::size_t m = blk.keys.size();
    const double rank0 = static_cast<double>(blk.count_before + 1);
    const double sa_off = static_cast<double>(blk.sum_after);
    double* bounds = argmax_bounds_.data() + blk.count_before;
    const Key shift = shift_;
    if (allowed == nullptr) {
      const RemovalBoundCtx ctx = *bound_ctx;  // Local copy: no aliasing.
      for (std::size_t j = 0; j < m; ++j) {
        bounds[j] = ctx.Upper(static_cast<double>(keys[j] - shift),
                              rank0 + static_cast<double>(j),
                              static_cast<double>(sal[j]) + sa_off);
      }
      stats->bound_evals += static_cast<std::int64_t>(m);
    } else {
      for (std::size_t j = 0; j < m; ++j) {
        if (allowed->count(keys[j]) == 0) {
          bounds[j] = kNoBound;
          continue;
        }
        bounds[j] = bound_ctx->Upper(static_cast<double>(keys[j] - shift),
                                     rank0 + static_cast<double>(j),
                                     static_cast<double>(sal[j]) + sa_off);
        ++stats->bound_evals;
      }
    }
  }

  // Phase 2 — exact seed at the highest bound (the removal analogue of
  // the tiered scan's per-tier seed; strict > keeps the smallest key on
  // ties, so the seed is scan-order independent).
  std::size_t seed = end;
  double seed_bound = kNoBound;
  for (std::size_t i = first; i < end; ++i) {
    if (argmax_bounds_[i] > seed_bound) {
      seed_bound = argmax_bounds_[i];
      seed = i;
    }
  }
  if (seed != end) {
    const std::size_t sb =
        rem_soa_.BlockOfIndex(static_cast<std::int64_t>(seed));
    const RemovalSoa::Block& blk = rem_soa_.block(sb);
    const std::size_t j = seed - static_cast<std::size_t>(blk.count_before);
    consider(blk.keys[j], blk.count_before + static_cast<std::int64_t>(j) + 1,
             blk.sa_local[j] + blk.sum_after);
    argmax_bounds_[seed] = kNoBound;  // Consumed: phase 3 skips it.
  }

  // Suffix max/count over the unconsumed bounds for the early exit and
  // the exact pruned-candidate accounting.
  {
    double run_max = kNoBound;
    std::int64_t run_cnt = 0;
    for (std::size_t i = end; i > first; --i) {
      const double b = argmax_bounds_[i - 1];
      if (b != kNoBound) {
        ++run_cnt;
        if (b > run_max) run_max = b;
      }
      argmax_suffix_max_[i - 1] = run_max;
      argmax_suffix_cnt_[i - 1] = run_cnt;
    }
  }

  // Phase 3 — key-ordered sweep with branch-and-bound pruning, walked
  // blockwise so the exact reconstruction reads straight off the block
  // records (>= keeps exact ties alive for the smaller-key rule).
  for (std::size_t b = bfirst; b < bend; ++b) {
    const RemovalSoa::Block& blk = rem_soa_.block(b);
    bool stop = false;
    for (std::size_t j = 0; j < blk.keys.size(); ++j) {
      const std::size_t i = static_cast<std::size_t>(blk.count_before) + j;
      if (*have && argmax_suffix_max_[i] < best->loss) {
        stats->pruned_gaps += argmax_suffix_cnt_[i];
        stop = true;
        break;
      }
      const double kb = argmax_bounds_[i];
      if (kb == kNoBound) continue;
      if (*have && kb < best->loss) {
        ++stats->pruned_gaps;
        continue;
      }
      consider(blk.keys[j],
               blk.count_before + static_cast<std::int64_t>(j) + 1,
               blk.sa_local[j] + blk.sum_after);
    }
    if (stop) break;
  }
}

void LossLandscape::ScanRemovalBlocksTiered(
    std::size_t bfirst, std::size_t bend, const RemovalBoundCtx& ctx,
    const std::unordered_set<Key>* allowed, double* seed_bounds,
    double* scratch, Candidate* best, bool* have, ArgmaxStats* stats) const {
  auto consider = [&](Key kp, std::int64_t rank, std::int64_t sa) {
    const long double loss = LossWithoutKey(kp, rank, sa);
    ++stats->exact_evals;
    if (!*have || loss > best->loss ||
        (loss == best->loss && kp < best->key)) {
      best->key = kp;
      best->loss = loss;
      *have = true;
    }
  };
  constexpr double kNoBound = -std::numeric_limits<double>::infinity();
  const Key shift = shift_;

  // Per-key bound pass over one storage block into the block-local
  // staging slice \p out; the allowed-free path is the batched SoA
  // kernel (the rank/suffix reconstruction adds two loop-invariant
  // scalars, so it still auto-vectorizes).
  auto block_key_bounds = [&](const RemovalSoa::Block& blk, double* out) {
    const Key* keys = blk.keys.data();
    const std::int64_t* sal = blk.sa_local.data();
    const std::size_t m = blk.keys.size();
    const double rank0 = static_cast<double>(blk.count_before + 1);
    const double sa_off = static_cast<double>(blk.sum_after);
    if (allowed == nullptr) {
      const RemovalBoundCtx c = ctx;
      for (std::size_t j = 0; j < m; ++j) {
        out[j] = c.Upper(static_cast<double>(keys[j] - shift),
                         rank0 + static_cast<double>(j),
                         static_cast<double>(sal[j]) + sa_off);
      }
      stats->bound_evals += static_cast<std::int64_t>(m);
    } else {
      for (std::size_t j = 0; j < m; ++j) {
        if (allowed->count(keys[j]) == 0) {
          out[j] = kNoBound;
          continue;
        }
        out[j] = ctx.Upper(static_cast<double>(keys[j] - shift),
                           rank0 + static_cast<double>(j),
                           static_cast<double>(sal[j]) + sa_off);
        ++stats->bound_evals;
      }
    }
  };

  // Phase 1 — one chord bound per storage block, from its exact
  // endpoint records: rank/suffix reconstruct in O(1) from the
  // directory scalars (the last key's global suffix is sum_after
  // itself, since sa_local.back() == 0 by construction). Block bounds
  // ignore `allowed` — an admissible over-estimate; the per-key phase
  // enforces the restriction. The commit structure and the bound tier
  // structure are the same blocks.
  for (std::size_t b = bfirst; b < bend; ++b) {
    const RemovalSoa::Block& blk = rem_soa_.block(b);
    const std::size_t m = blk.keys.size();
    double bound;
    if (m == 1) {
      bound = ctx.Upper(
          static_cast<double>(blk.keys.front() - shift),
          static_cast<double>(blk.count_before + 1),
          static_cast<double>(blk.sa_local.front() + blk.sum_after));
    } else {
      bound = ctx.UpperBlock(
          static_cast<double>(blk.keys.front() - shift),
          static_cast<double>(blk.count_before + 1),
          static_cast<double>(blk.sa_local.front() + blk.sum_after),
          static_cast<double>(blk.keys.back() - shift),
          static_cast<double>(blk.count_before +
                              static_cast<std::int64_t>(m)),
          static_cast<double>(blk.sum_after));
    }
    ++stats->bound_evals;
    argmax_tier_bounds_[b] = bound;
  }
  // Chunk-local suffix max/count over the blocks (no shared sentinel:
  // parallel chunks own disjoint [bfirst, bend) slices).
  {
    double run_max = kNoBound;
    std::int64_t run_cnt = 0;
    for (std::size_t b = bend; b > bfirst; --b) {
      run_cnt +=
          static_cast<std::int64_t>(rem_soa_.block(b - 1).keys.size());
      if (argmax_tier_bounds_[b - 1] > run_max) {
        run_max = argmax_tier_bounds_[b - 1];
      }
      argmax_tier_suffix_max_[b - 1] = run_max;
      argmax_tier_suffix_cnt_[b - 1] = run_cnt;
    }
  }

  // Phase 2 — seed: per-key bounds inside the highest-chord block, one
  // exact evaluation of its best candidate (strict > keeps the earliest
  // block/key on ties — scan-order independent). The staged bounds stay
  // in seed_bounds so the sweep never scores the block twice.
  std::size_t seed_b = bend;
  double seed_bound = kNoBound;
  for (std::size_t b = bfirst; b < bend; ++b) {
    if (argmax_tier_bounds_[b] > seed_bound) {
      seed_bound = argmax_tier_bounds_[b];
      seed_b = b;
    }
  }
  if (seed_b != bend) {
    const RemovalSoa::Block& blk = rem_soa_.block(seed_b);
    const std::size_t m = blk.keys.size();
    block_key_bounds(blk, seed_bounds);
    std::size_t seed_j = m;
    double key_bound = kNoBound;
    for (std::size_t j = 0; j < m; ++j) {
      if (seed_bounds[j] > key_bound) {
        key_bound = seed_bounds[j];
        seed_j = j;
      }
    }
    if (seed_j != m) {
      consider(blk.keys[seed_j],
               blk.count_before + static_cast<std::int64_t>(seed_j) + 1,
               blk.sa_local[seed_j] + blk.sum_after);
      seed_bounds[seed_j] = kNoBound;  // Consumed.
    }
  }

  // Phase 3 — key-ordered sweep: skip whole blocks via their chord
  // bound, re-score survivors per key, exit once every remaining block
  // is below the best. Accounting mirrors the insertion tier cache:
  // a candidate is "cached" when its block's bound dispositioned it,
  // "invalidated" when its block survived and it was scored per key.
  for (std::size_t b = bfirst; b < bend; ++b) {
    if (*have && argmax_tier_suffix_max_[b] < best->loss) {
      stats->pruned_gaps += argmax_tier_suffix_cnt_[b];
      stats->cached_bounds += argmax_tier_suffix_cnt_[b];
      break;
    }
    const RemovalSoa::Block& blk = rem_soa_.block(b);
    const std::size_t m = blk.keys.size();
    const std::int64_t size = static_cast<std::int64_t>(m);
    if (*have && argmax_tier_bounds_[b] < best->loss) {
      stats->pruned_gaps += size;
      stats->cached_bounds += size;
      continue;
    }
    stats->invalidated_gaps += size;
    const double* kb = seed_bounds;
    if (b != seed_b) {
      block_key_bounds(blk, scratch);
      kb = scratch;
    }
    for (std::size_t j = 0; j < m; ++j) {
      const double bj = kb[j];
      if (bj == kNoBound) continue;  // Consumed seed or not allowed.
      if (*have && bj < best->loss) {
        ++stats->pruned_gaps;
        continue;
      }
      consider(blk.keys[j],
               blk.count_before + static_cast<std::int64_t>(j) + 1,
               blk.sa_local[j] + blk.sum_after);
    }
  }
}

Result<LossLandscape::Candidate> LossLandscape::FindOptimalRemoval(
    const std::unordered_set<Key>* allowed, ThreadPool* pool,
    const ArgmaxOptions& argmax, ArgmaxStats* stats) const {
  ArgmaxStats local;
  local.rounds = 1;
  if (n_ < 3) {
    if (stats != nullptr) stats->Add(local);
    return Status::FailedPrecondition(
        "removal argmax needs at least three stored keys");
  }
  EnsureRemovalSoa();

  Candidate best;
  bool have = false;
  const std::size_t nblocks = rem_soa_.block_count();

  if (!rem_soa_.with_sa()) {
    // Wide-domain fallback: exact Int128 reverse block walk
    // accumulating the suffix key-sums on the fly (the
    // order-independent tie rule makes the scan direction immaterial).
    if (argmax.prune) local.fallback_rounds = 1;
    Int128 sa = 0;
    const std::int64_t n1 = n_ - 1;
    for (std::size_t b = nblocks; b > 0; --b) {
      const RemovalSoa::Block& blk = rem_soa_.block(b - 1);
      for (std::size_t j = blk.keys.size(); j > 0; --j) {
        const Key kp = blk.keys[j - 1];
        const Int128 x = static_cast<Int128>(kp) - shift_;
        if (allowed == nullptr || allowed->count(kp) != 0) {
          const Int128 rank =
              blk.count_before + static_cast<std::int64_t>(j);
          const Int128 sum_xy = sum_kr_ - x * rank - sa;
          const long double loss =
              LossFromSums(n1, sum_k_ - x, sum_k2_ - x * x, SumRanks(n1),
                           SumRankSquares(n1), sum_xy);
          ++local.exact_evals;
          if (!have || loss > best.loss ||
              (loss == best.loss && kp < best.key)) {
            best.key = kp;
            best.loss = loss;
            have = true;
          }
        }
        sa += x;
      }
    }
  } else {
    RemovalBoundCtx ctx;
    bool prune = argmax.prune;
    if (prune) {
      ctx = RemovalBoundCtx::Make(n_, sum_k_, sum_k2_, sum_kr_);
      if (!ctx.usable) {
        prune = false;
        local.fallback_rounds = 1;
      }
    }
    const RemovalBoundCtx* bctx = prune ? &ctx : nullptr;
    const bool tiered = prune && argmax.cache;
    const std::size_t m = static_cast<std::size_t>(rem_soa_.size());

    // Chunking: consecutive storage blocks grouped to at least
    // kArgmaxChunkGaps candidates each — a pure function of the block
    // structure, so the chunk list (and with it every counter and the
    // reduced winner) is thread-count independent.
    auto& chunks = PrepareScratch(&argmax_chunk_tiers_, nblocks);
    {
      std::size_t cb = 0;
      std::int64_t acc = 0;
      for (std::size_t b = 0; b < nblocks; ++b) {
        acc += static_cast<std::int64_t>(rem_soa_.block(b).keys.size());
        if (acc >= kArgmaxChunkGaps) {
          chunks.emplace_back(cb, b + 1);
          cb = b + 1;
          acc = 0;
        }
      }
      if (cb < nblocks) chunks.emplace_back(cb, nblocks);
    }
    const std::size_t num_chunks = chunks.size();
    const std::size_t cap = static_cast<std::size_t>(rem_soa_.block_cap());

    if (prune && !tiered) {
      EnsureScratchSize(&argmax_bounds_, m, &scratch_reallocs_);
      EnsureScratchSize(&argmax_suffix_max_, m, &scratch_reallocs_);
      EnsureScratchSize(&argmax_suffix_cnt_, m, &scratch_reallocs_);
    }
    if (tiered) {
      EnsureScratchSize(&argmax_tier_bounds_, nblocks + 1,
                        &scratch_reallocs_);
      EnsureScratchSize(&argmax_tier_suffix_max_, nblocks + 1,
                        &scratch_reallocs_);
      EnsureScratchSize(&argmax_tier_suffix_cnt_, nblocks + 1,
                        &scratch_reallocs_);
      // Per-chunk staging: two block_cap-sized slices (seed block +
      // swept block) of argmax_bounds_ per chunk, disjoint across
      // chunks — O(sqrt(n)) doubles per chunk instead of O(n).
      EnsureScratchSize(&argmax_bounds_, num_chunks * 2 * cap,
                        &scratch_reallocs_);
    }
    const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                          static_cast<std::int64_t>(m) > kArgmaxChunkGaps &&
                          num_chunks > 1;
    if (parallel) {
      // Block-aligned candidate chunks with chunk-local pruning,
      // reduced in chunk (= key) order with a strict > comparison:
      // bit-identical to the serial scan for every thread count.
      std::vector<Candidate> chunk_best(num_chunks);
      std::vector<char> chunk_have(num_chunks, 0);
      std::vector<ArgmaxStats> chunk_stats(num_chunks);
      pool->ParallelFor(
          static_cast<std::int64_t>(num_chunks),
          [this, allowed, bctx, tiered, cap, &chunks, &chunk_best,
           &chunk_have, &chunk_stats](std::int64_t c) {
            const auto ci = static_cast<std::size_t>(c);
            bool chunk_found = false;
            if (tiered) {
              double* stage = argmax_bounds_.data() + ci * 2 * cap;
              ScanRemovalBlocksTiered(chunks[ci].first, chunks[ci].second,
                                      *bctx, allowed, stage, stage + cap,
                                      &chunk_best[ci], &chunk_found,
                                      &chunk_stats[ci]);
            } else {
              ScanRemovalBlocks(chunks[ci].first, chunks[ci].second, bctx,
                                allowed, &chunk_best[ci], &chunk_found,
                                &chunk_stats[ci]);
            }
            chunk_have[ci] = chunk_found ? 1 : 0;
          });
      for (std::size_t ci = 0; ci < num_chunks; ++ci) {
        local.Add(chunk_stats[ci]);
        if (!chunk_have[ci]) continue;
        const Candidate& cb = chunk_best[ci];
        if (!have || cb.loss > best.loss) {
          best = cb;
          have = true;
        }
      }
    } else if (tiered) {
      double* stage = argmax_bounds_.data();
      ScanRemovalBlocksTiered(0, nblocks, ctx, allowed, stage, stage + cap,
                              &best, &have, &local);
    } else {
      ScanRemovalBlocks(0, nblocks, bctx, allowed, &best, &have, &local);
    }
  }
  if (stats != nullptr) stats->Add(local);
  if (!have) {
    return Status::ResourceExhausted(
        "no allowed removal candidate among the stored keys");
  }
  return best;
}

Key LossLandscape::SecondMinKey() const {
  // The next occupied key above the minimum: min + 1 itself when
  // occupied, else one past the gap containing it. Overlay-agnostic, so
  // it stays exact under removals.
  const Key c = min_key_ + 1;
  std::size_t ti = 0;
  std::size_t gi = 0;
  if (!gaps_.Locate(c, &ti, &gi)) return c;
  return gaps_.tiers()[ti].gaps[gi].hi + 1;
}

Key LossLandscape::SecondMaxKey() const {
  const Key c = max_key_ - 1;
  std::size_t ti = 0;
  std::size_t gi = 0;
  if (!gaps_.Locate(c, &ti, &gi)) return c;
  return gaps_.tiers()[ti].gaps[gi].lo - 1;
}

LossLandscape::Aggregates LossLandscape::aggregates() const {
  Aggregates agg;
  agg.n = n_;
  agg.shift = shift_;
  agg.sum_k = sum_k_;
  agg.sum_k2 = sum_k2_;
  agg.sum_kr = sum_kr_;
  return agg;
}

long double LossLandscape::Aggregates::Loss() const {
  return LossFromSums(n, sum_k, sum_k2, SumRanks(n), SumRankSquares(n),
                      sum_kr);
}

long double LossLandscape::Aggregates::LossAfterInsert(
    Key kp, Rank count_less, Int128 suffix_sum) const {
  const std::int64_t n1 = n + 1;
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  return LossFromSums(n1, sum_k + kp_s, sum_k2 + kp_s * kp_s, SumRanks(n1),
                      SumRankSquares(n1),
                      sum_kr + suffix_sum + kp_s * (count_less + 1));
}

void LossLandscape::Aggregates::Insert(Key kp, Rank count_less,
                                       Int128 suffix_sum) {
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  sum_kr += suffix_sum + kp_s * (count_less + 1);
  sum_k += kp_s;
  sum_k2 += kp_s * kp_s;
  n += 1;
}

void LossLandscape::Aggregates::Remove(Key kp, Rank count_less,
                                       Int128 suffix_sum_above) {
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  sum_kr -= suffix_sum_above + kp_s * (count_less + 1);
  sum_k -= kp_s;
  sum_k2 -= kp_s * kp_s;
  n -= 1;
}

}  // namespace lispoison
