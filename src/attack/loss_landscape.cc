#include "attack/loss_landscape.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

#include "common/thread_pool.h"

namespace lispoison {
namespace {

/// Largest up-front Sweep reservation. A wide KeyDomain used to drive
/// out.reserve(hi - lo + 1) into an allocation bomb; beyond this cap the
/// vector grows geometrically like any other.
constexpr std::int64_t kSweepReserveCap = 1 << 20;

/// Theorem 1 loss from exact (n^2-scaled) aggregate numerators:
/// L = [VarY_n - CovXY_n^2 / VarX_n] / n^2 where *_n = n^2 * moment.
long double LossFromSums(std::int64_t n, Int128 sum_x, Int128 sum_x2,
                         Int128 sum_y, Int128 sum_y2, Int128 sum_xy) {
  const Int128 nn = static_cast<Int128>(n);
  const Int128 var_x_n = nn * sum_x2 - sum_x * sum_x;
  const Int128 var_y_n = nn * sum_y2 - sum_y * sum_y;
  const Int128 cov_n = nn * sum_xy - sum_x * sum_y;
  const long double n2 = static_cast<long double>(n) *
                         static_cast<long double>(n);
  if (var_x_n <= 0) {
    // All keys identical: the regression degenerates to a constant.
    long double loss = ToLongDouble(var_y_n) / n2;
    return loss < 0 ? 0 : loss;
  }
  const long double cov = ToLongDouble(cov_n);
  long double loss =
      (ToLongDouble(var_y_n) - cov * cov / ToLongDouble(var_x_n)) / n2;
  return loss < 0 ? 0 : loss;
}

/// Rank-moment sums for ranks 1..n.
inline Int128 SumRanks(std::int64_t n) {
  const Int128 m = n;
  return m * (m + 1) / 2;
}
inline Int128 SumRankSquares(std::int64_t n) {
  const Int128 m = n;
  return m * (m + 1) * (2 * m + 1) / 6;
}

}  // namespace

Result<LossLandscape> LossLandscape::Create(const KeySet& keyset) {
  if (keyset.empty()) {
    return Status::InvalidArgument(
        "loss landscape requires a non-empty keyset");
  }
  LossLandscape ll;
  ll.base_keys_ = keyset.keys();
  ll.domain_ = keyset.domain();
  ll.n_ = keyset.size();
  ll.shift_ = ll.base_keys_.front();
  ll.min_key_ = ll.base_keys_.front();
  ll.max_key_ = ll.base_keys_.back();
  ll.base_prefix_.assign(static_cast<std::size_t>(ll.n_) + 1, 0);
  for (std::int64_t i = 0; i < ll.n_; ++i) {
    const Int128 shifted =
        static_cast<Int128>(ll.base_keys_[static_cast<std::size_t>(i)]) -
        ll.shift_;
    ll.base_prefix_[static_cast<std::size_t>(i) + 1] =
        ll.base_prefix_[static_cast<std::size_t>(i)] + shifted;
    ll.sum_k2_ += shifted * shifted;
    ll.sum_kr_ += shifted * (i + 1);
  }
  ll.sum_k_ = ll.base_prefix_[static_cast<std::size_t>(ll.n_)];
  ll.inserted_slot_sum_.Reset(static_cast<std::size_t>(ll.n_) + 1);

  // Maximal unoccupied runs over the whole domain; interior clipping
  // happens at query time against the current min/max key.
  Key cursor = ll.domain_.lo;
  std::int64_t base_count = 0;
  for (const Key k : ll.base_keys_) {
    if (cursor <= k - 1) {
      ll.gaps_.push_back(Gap{cursor, k - 1, base_count});
    }
    cursor = k + 1;
    ++base_count;
  }
  if (cursor <= ll.domain_.hi) {
    ll.gaps_.push_back(Gap{cursor, ll.domain_.hi, base_count});
  }

  ll.RecomputeCurrentLoss();
  return ll;
}

void LossLandscape::RecomputeCurrentLoss() {
  base_loss_ = LossFromSums(n_, sum_k_, sum_k2_, SumRanks(n_),
                            SumRankSquares(n_), sum_kr_);
}

LossLandscape::PrefixStats LossLandscape::PrefixAt(Key kp) const {
  const auto base_it =
      std::lower_bound(base_keys_.begin(), base_keys_.end(), kp);
  const std::size_t j = static_cast<std::size_t>(base_it - base_keys_.begin());
  const auto ins_it = std::lower_bound(inserted_.begin(), inserted_.end(), kp);

  PrefixStats stats;
  stats.count_less = static_cast<Rank>(j) +
                     static_cast<Rank>(ins_it - inserted_.begin());
  stats.prefix_sum = base_prefix_[j] + inserted_slot_sum_.PrefixSum(j);
  // Inserted keys sharing base slot j but below kp are not covered by the
  // Fenwick prefix; they form a contiguous overlay range.
  auto slot_begin = inserted_.begin();
  if (j > 0) {
    slot_begin = std::lower_bound(inserted_.begin(), ins_it,
                                  base_keys_[j - 1]);
  }
  for (auto it = slot_begin; it != ins_it; ++it) {
    stats.prefix_sum += static_cast<Int128>(*it) - shift_;
  }
  return stats;
}

Status LossLandscape::InsertKey(Key kp) {
  if (!domain_.Contains(kp)) {
    return Status::OutOfRange("poisoning key " + std::to_string(kp) +
                              " outside the key domain");
  }
  // A key is unoccupied iff it lies inside a gap.
  auto gap_it = std::upper_bound(
      gaps_.begin(), gaps_.end(), kp,
      [](Key k, const Gap& g) { return k < g.lo; });
  if (gap_it == gaps_.begin() || (--gap_it)->hi < kp) {
    return Status::InvalidArgument("poisoning key " + std::to_string(kp) +
                                   " is already occupied");
  }

  const PrefixStats stats = PrefixAt(kp);
  const Int128 kp_s = static_cast<Int128>(kp) - shift_;
  // Compound effect: every key above kp gains one rank (adding the
  // suffix key-sum once), and kp enters with rank count_less + 1.
  sum_kr_ += (sum_k_ - stats.prefix_sum) + kp_s * (stats.count_less + 1);
  sum_k_ += kp_s;
  sum_k2_ += kp_s * kp_s;
  n_ += 1;
  RecomputeCurrentLoss();

  inserted_slot_sum_.Add(static_cast<std::size_t>(gap_it->base_count), kp_s);
  inserted_.insert(std::lower_bound(inserted_.begin(), inserted_.end(), kp),
                   kp);

  // Split the gap around kp (it contains no other key by construction).
  Gap& g = *gap_it;
  if (g.lo == kp && g.hi == kp) {
    gaps_.erase(gap_it);
  } else if (g.lo == kp) {
    g.lo = kp + 1;
  } else if (g.hi == kp) {
    g.hi = kp - 1;
  } else {
    const Gap right{kp + 1, g.hi, g.base_count};
    g.hi = kp - 1;
    gaps_.insert(gap_it + 1, right);
  }

  if (kp < min_key_) min_key_ = kp;
  if (kp > max_key_) max_key_ = kp;
  return Status::OK();
}

long double LossLandscape::LossWithInsertion(Key kp, Rank count_less,
                                             Int128 suffix_sum) const {
  const std::int64_t n1 = n_ + 1;
  const Int128 kp_s = static_cast<Int128>(kp) - shift_;
  const Int128 sum_x = sum_k_ + kp_s;
  const Int128 sum_x2 = sum_k2_ + kp_s * kp_s;
  // Every legitimate key above kp gains one rank, adding its (shifted)
  // value once to sum(XY); kp itself enters with rank count_less + 1.
  const Int128 sum_xy = sum_kr_ + suffix_sum + kp_s * (count_less + 1);
  return LossFromSums(n1, sum_x, sum_x2, SumRanks(n1), SumRankSquares(n1),
                      sum_xy);
}

Result<long double> LossLandscape::LossAt(Key kp) const {
  if (!domain_.Contains(kp)) {
    return Status::OutOfRange("poisoning key " + std::to_string(kp) +
                              " outside the key domain");
  }
  const bool in_base = std::binary_search(base_keys_.begin(),
                                          base_keys_.end(), kp);
  if (in_base ||
      std::binary_search(inserted_.begin(), inserted_.end(), kp)) {
    return Status::InvalidArgument("poisoning key " + std::to_string(kp) +
                                   " is already occupied");
  }
  const PrefixStats stats = PrefixAt(kp);
  return LossWithInsertion(kp, stats.count_less, sum_k_ - stats.prefix_sum);
}

std::vector<Key> LossLandscape::GapEndpoints(bool interior_only) const {
  std::vector<Key> endpoints;
  ForEachGap(interior_only,
             [&endpoints](Key lo, Key hi, Rank, Int128) {
               endpoints.push_back(lo);
               if (hi != lo) endpoints.push_back(hi);
             });
  return endpoints;
}

std::vector<std::pair<Key, long double>> LossLandscape::Sweep(
    bool interior_only) const {
  std::vector<std::pair<Key, long double>> out;
  const Key lo = interior_only ? min_key_ + 1 : domain_.lo;
  const Key hi = interior_only ? max_key_ - 1 : domain_.hi;
  if (lo > hi) return out;
  out.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(hi - lo + 1, kSweepReserveCap)));
  ForEachGapInRange(lo, hi,
                    [this, &out](Key glo, Key ghi, Rank count_less,
                                 Int128 prefix_sum) {
                      const Int128 suffix = sum_k_ - prefix_sum;
                      for (Key kp = glo; kp <= ghi; ++kp) {
                        out.emplace_back(
                            kp, LossWithInsertion(kp, count_less, suffix));
                      }
                    });
  return out;
}

namespace {

/// Gap ranges per parallel chunk. Fixed (not derived from the thread
/// count) so the chunk boundaries — and therefore the reduction order —
/// are identical for every pool size.
constexpr std::int64_t kArgmaxChunkGaps = 2048;

/// Whole-chain error-margin unit for the bound arithmetic: ~450x the
/// IEEE double rounding unit (2^-52 ~ 2.2e-16). Each margin term below
/// multiplies kBoundEps by an upper bound on the *component magnitudes*
/// of its expression (never the possibly-cancelled result); the true
/// rounding error of each <10-op chain is below ~10 units of 2.2e-16
/// relative to those magnitudes, so one kBoundEps unit dominates it —
/// including the int128->double input conversions and the (much
/// smaller) long-double rounding of the exact evaluation the bound must
/// majorize — with ~50x headroom, while costing a fraction of full
/// per-op interval propagation.
constexpr double kBoundEps = 1e-13;

inline double AbsD(double v) { return v < 0 ? -v : v; }

}  // namespace

/// Round-constant part of the admissible upper bound on the Theorem 1
/// loss after inserting one key into the current n_ keys.
///
/// With x = kp - shift, c = count_less, S = suffix key-sum, the exact
/// loss is  L = max(0, (VarY - Cov^2/VarX) / (n+1)^2)  where VarY is a
/// per-round constant and Cov/VarX are affine/quadratic in x. The bound
/// evaluates the same formula in double with directed error margins:
/// VarY rounded up, Cov^2/VarX rounded down (interval-safe against the
/// cancellation in both numerators), so bound >= exact loss for every
/// candidate — the admissibility the pruned argmax needs to stay
/// bit-identical to the exhaustive scan.
struct LossLandscape::BoundCtx {
  double n1 = 0;          // n + 1
  double inv_n12_ub = 0;  // (1 + slack) / (n+1)^2, rounded up
  double sum_y = 0;       // sum of ranks 1..n+1
  double var_y_ub = 0;    // (n+1)*sumY2 - sumY^2, rounded up
  double sum_k = 0;       // converted exact aggregates
  double abs_sum_k = 0;
  double sum_k2 = 0;      // >= 0
  double sum_kr = 0;
  double abs_sum_kr = 0;
  bool usable = false;

  static BoundCtx Make(std::int64_t n, Int128 sum_k, Int128 sum_k2,
                       Int128 sum_kr) {
    BoundCtx b;
    const std::int64_t n1 = n + 1;
    const Int128 sy = SumRanks(n1);
    const Int128 var_y =
        static_cast<Int128>(n1) * SumRankSquares(n1) - sy * sy;
    b.n1 = static_cast<double>(n1);
    const double n12_lo = b.n1 * b.n1 * (1.0 - 2.0 * kBoundEps);
    b.inv_n12_ub = (1.0 + 6.0 * kBoundEps) / n12_lo;
    b.sum_y = static_cast<double>(sy);
    b.var_y_ub = static_cast<double>(var_y) * (1.0 + 2.0 * kBoundEps);
    b.sum_k = static_cast<double>(sum_k);
    b.abs_sum_k = AbsD(b.sum_k);
    b.sum_k2 = static_cast<double>(sum_k2);
    b.sum_kr = static_cast<double>(sum_kr);
    b.abs_sum_kr = AbsD(b.sum_kr);
    b.usable = std::isfinite(b.var_y_ub) && std::isfinite(b.sum_k) &&
               std::isfinite(b.sum_k2) && std::isfinite(b.sum_kr) &&
               std::isfinite(b.sum_y) && std::isfinite(b.inv_n12_ub) &&
               b.inv_n12_ub > 0;
    return b;
  }

  /// Upper bound for candidate x (shifted key) with c keys below it and
  /// suffix key-sum S. Absolute-error margins are taken against the
  /// *component magnitudes* of each cancellation-prone difference
  /// (VarX, Cov, and their sub-sums), never against the difference
  /// itself, and the final combination rounds VarY up and Cov^2/VarX
  /// down — so the returned value dominates the exact loss.
  double Upper(double x, double c1, double s) const {
    const double ax = AbsD(x);
    const double sx = sum_k + x;
    const double m_sx = abs_sum_k + ax;       // >= |sx| and its err scale
    const double sx2 = sum_k2 + x * x;        // all terms >= 0
    const double xc = x * c1;
    const double axc = AbsD(xc);
    const double sxy = sum_kr + s + xc;
    const double m_sxy = abs_sum_kr + AbsD(s) + axc;
    // VarX = n1*sx2 - sx^2.
    const double a = n1 * sx2;
    const double bb = sx * sx;
    const double varx = a - bb;
    const double e_varx = kBoundEps * (a + bb + m_sx * m_sx);
    // Cov = n1*sxy - sx*sum_y.
    const double cov = n1 * sxy - sx * sum_y;
    const double e_cov = kBoundEps * (n1 * m_sxy + m_sx * sum_y);
    // Lower bound on Cov^2/VarX; zero whenever the VarX interval is not
    // strictly positive (the exact path then degenerates to VarY alone).
    double q_lb = 0;
    if (varx - e_varx > 0) {
      const double cov_lo = AbsD(cov) - e_cov;
      if (cov_lo > 0) {
        q_lb = (cov_lo * cov_lo) / (varx + e_varx) * (1.0 - 4.0 * kBoundEps);
      }
    }
    const double num = (var_y_ub - q_lb) + kBoundEps * (var_y_ub + q_lb);
    if (num <= 0) return 0;
    const double ub = num * inv_n12_ub;
    // Any non-finite intermediate poisons ub; "never prune" is the
    // admissible answer.
    if (!(ub >= 0)) return std::numeric_limits<double>::infinity();
    return ub;
  }
};

template <typename T>
std::vector<T>& LossLandscape::PrepareScratch(std::vector<T>* buf,
                                              std::size_t needed) const {
  if (buf->capacity() < needed) {
    ++scratch_reallocs_;
    std::vector<T> fresh;
    fresh.reserve(std::max(needed, buf->capacity() * 2));
    buf->swap(fresh);
  }
  buf->clear();
  return *buf;
}

namespace {

/// Grow-only variant for the flat per-gap arrays whose live prefix is
/// fully overwritten each scan: avoids the O(G) value-initialization
/// PrepareScratch's clear+resize would pay per round. Stale entries
/// beyond the current gap count are never read.
template <typename T>
void EnsureScratchSize(std::vector<T>* buf, std::size_t needed,
                       std::int64_t* reallocs) {
  if (buf->size() >= needed) return;
  if (buf->capacity() < needed) {
    ++*reallocs;
    buf->reserve(std::max(needed, buf->capacity() * 2));
  }
  buf->resize(buf->capacity());
}

}  // namespace

void LossLandscape::ScanGapRanges(std::size_t first, std::size_t end,
                                  std::int64_t top_k,
                                  const BoundCtx* bound_ctx,
                                  const std::unordered_set<Key>* excluded,
                                  Candidate* best, bool* have,
                                  ArgmaxStats* stats) const {
  // First-maximum-in-key-order semantics, order-independent form:
  // strictly larger loss wins; an equal loss wins only with a smaller
  // key. The exhaustive scan visits candidates in key order, where this
  // reduces to the original strict > rule.
  auto consider = [&](Key kp, Rank count_less, Int128 suffix_sum) {
    if (excluded != nullptr && excluded->count(kp) != 0) return;
    const long double loss = LossWithInsertion(kp, count_less, suffix_sum);
    ++stats->exact_evals;
    if (!*have || loss > best->loss ||
        (loss == best->loss && kp < best->key)) {
      best->key = kp;
      best->loss = loss;
      *have = true;
    }
  };
  auto eval_gap = [&](std::size_t i) {
    const GapRange& g = argmax_ranges_[i];
    consider(g.lo, g.count_less, g.suffix_sum);
    if (g.hi != g.lo) consider(g.hi, g.count_less, g.suffix_sum);
  };

  if (bound_ctx == nullptr) {
    for (std::size_t i = first; i < end; ++i) eval_gap(i);
    return;
  }

  // Phase 1 — pre-pass: score every gap's non-excluded endpoints against
  // the admissible bound; -inf marks gaps with no admissible candidate.
  constexpr double kNoBound = -std::numeric_limits<double>::infinity();
  // Candidate keys are shifted in exact int64 then converted with one
  // cheap cvt instruction (no 128-bit library call). Safe: FindOptimal
  // falls back to the exhaustive scan when the domain span could
  // overflow the subtraction.
  for (std::size_t i = first; i < end; ++i) {
    const GapRange& g = argmax_ranges_[i];
    const double c1 = static_cast<double>(g.count_less + 1);
    const double s = static_cast<double>(g.suffix_sum);
    double bnd = kNoBound;
    if (excluded == nullptr || excluded->count(g.lo) == 0) {
      const double x = static_cast<double>(g.lo - shift_);
      bnd = bound_ctx->Upper(x, c1, s);
      ++stats->bound_evals;
    }
    if (g.hi != g.lo &&
        (excluded == nullptr || excluded->count(g.hi) == 0)) {
      const double x = static_cast<double>(g.hi - shift_);
      const double b2 = bound_ctx->Upper(x, c1, s);
      ++stats->bound_evals;
      if (b2 > bnd) bnd = b2;
    }
    argmax_bounds_[i] = bnd;
  }

  // Phase 2 — exact re-check of the top-K bounds to seed the running
  // best. nth_element's partition is unstable, but the final Candidate
  // is invariant: every gap that could still win is re-checked in phase
  // 3 regardless of which ties landed in the top-K.
  const std::size_t len = end - first;
  const std::size_t k =
      std::min(len, static_cast<std::size_t>(std::max<std::int64_t>(
                        1, top_k)));
  for (std::size_t i = first; i < end; ++i) argmax_order_[i] = i;
  std::nth_element(argmax_order_.begin() + static_cast<std::ptrdiff_t>(first),
                   argmax_order_.begin() +
                       static_cast<std::ptrdiff_t>(first + k),
                   argmax_order_.begin() + static_cast<std::ptrdiff_t>(end),
                   [this](std::size_t a, std::size_t b) {
                     return argmax_bounds_[a] > argmax_bounds_[b];
                   });
  for (std::size_t j = first; j < first + k; ++j) {
    const std::size_t i = argmax_order_[j];
    if (argmax_bounds_[i] == kNoBound) continue;
    eval_gap(i);
    argmax_bounds_[i] = kNoBound;  // Consumed: phase 3 skips it.
  }

  // Suffix max/count over the *unconsumed* bounds enable the
  // branch-and-bound early exit and keep the pruned-gap counter exact.
  {
    double run_max = kNoBound;
    std::int64_t run_cnt = 0;
    for (std::size_t i = end; i > first; --i) {
      const double b = argmax_bounds_[i - 1];
      if (b != kNoBound) {
        ++run_cnt;
        if (b > run_max) run_max = b;
      }
      argmax_suffix_max_[i - 1] = run_max;
      argmax_suffix_cnt_[i - 1] = run_cnt;
    }
  }

  // Phase 3 — key-ordered sweep: a gap survives only while its bound can
  // still reach the running best (>= keeps exact ties alive for the
  // smaller-key rule); once every remaining bound is strictly below the
  // best, the scan exits.
  for (std::size_t i = first; i < end; ++i) {
    if (*have && argmax_suffix_max_[i] < best->loss) {
      stats->pruned_gaps += argmax_suffix_cnt_[i];
      break;
    }
    const double b = argmax_bounds_[i];
    if (b == kNoBound) continue;
    if (*have && b < best->loss) {
      ++stats->pruned_gaps;
      continue;
    }
    eval_gap(i);
  }
}

Result<LossLandscape::Candidate> LossLandscape::FindOptimal(
    bool interior_only, const std::unordered_set<Key>* excluded,
    ThreadPool* pool) const {
  return FindOptimal(interior_only, excluded, pool, ArgmaxOptions{});
}

Result<LossLandscape::Candidate> LossLandscape::FindOptimal(
    bool interior_only, const std::unordered_set<Key>* excluded,
    ThreadPool* pool, const ArgmaxOptions& argmax, ArgmaxStats* stats) const {
  ArgmaxStats local;
  local.rounds = 1;

  BoundCtx ctx;
  bool prune = argmax.prune;
  if (prune) {
    ctx = BoundCtx::Make(n_, sum_k_, sum_k2_, sum_kr_);
    // The bound pre-pass shifts candidate keys in int64; a domain wider
    // than 2^62 could overflow that subtraction, so it is not provably
    // admissible there.
    if (static_cast<Int128>(domain_.hi) - domain_.lo >
        (static_cast<Int128>(1) << 62)) {
      ctx.usable = false;
    }
    if (!ctx.usable) {
      // Bound arithmetic not provably admissible on these aggregates:
      // fall back to the exhaustive scan so the result stays exact.
      prune = false;
      local.fallback_rounds = 1;
    }
  }
  const BoundCtx* bound_ctx = prune ? &ctx : nullptr;

  Candidate best;
  bool have = false;

  // The materialized paths pay one O(G) traversal into the engine-owned
  // scratch (no per-round allocation once the capacity plateaus); the
  // plain serial exhaustive scan keeps the original zero-materialization
  // loop.
  const bool parallel =
      pool != nullptr && pool->num_threads() > 1 &&
      gaps_.size() > static_cast<std::size_t>(kArgmaxChunkGaps);
  if (parallel || prune) {
    auto& ranges = PrepareScratch(&argmax_ranges_, gaps_.size());
    ForEachGap(interior_only, [this, &ranges](Key lo, Key hi, Rank count_less,
                                              Int128 prefix_sum) {
      ranges.push_back(GapRange{lo, hi, count_less, sum_k_ - prefix_sum});
    });
    const std::size_t m = ranges.size();
    if (prune) {
      EnsureScratchSize(&argmax_bounds_, m, &scratch_reallocs_);
      EnsureScratchSize(&argmax_suffix_max_, m, &scratch_reallocs_);
      EnsureScratchSize(&argmax_suffix_cnt_, m, &scratch_reallocs_);
      EnsureScratchSize(&argmax_order_, m, &scratch_reallocs_);
    }
    if (parallel) {
      // Fixed-size chunks reduced in chunk (= key) order with a strict >
      // comparison: bit-identical to the serial scan for every thread
      // count. With pruning on, each chunk runs the pruned pipeline
      // against its chunk-local best — per-chunk bound filtering — which
      // only depends on the chunk's own content, so the counters are
      // thread-count independent too (but differ from the serial scan's,
      // whose single running best prunes across the whole range).
      const std::int64_t num_chunks =
          (static_cast<std::int64_t>(m) + kArgmaxChunkGaps - 1) /
          kArgmaxChunkGaps;
      std::vector<Candidate> chunk_best(static_cast<std::size_t>(num_chunks));
      std::vector<char> chunk_have(static_cast<std::size_t>(num_chunks), 0);
      std::vector<ArgmaxStats> chunk_stats(
          static_cast<std::size_t>(num_chunks));
      pool->ParallelFor(num_chunks, [this, excluded, m, bound_ctx, &argmax,
                                     &chunk_best, &chunk_have,
                                     &chunk_stats](std::int64_t c) {
        const std::size_t first = static_cast<std::size_t>(c) *
                                  static_cast<std::size_t>(kArgmaxChunkGaps);
        const std::size_t end = std::min(
            m, first + static_cast<std::size_t>(kArgmaxChunkGaps));
        bool chunk_found = false;
        ScanGapRanges(first, end, argmax.top_k, bound_ctx, excluded,
                      &chunk_best[static_cast<std::size_t>(c)], &chunk_found,
                      &chunk_stats[static_cast<std::size_t>(c)]);
        chunk_have[static_cast<std::size_t>(c)] = chunk_found ? 1 : 0;
      });
      for (std::int64_t c = 0; c < num_chunks; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        local.exact_evals += chunk_stats[ci].exact_evals;
        local.bound_evals += chunk_stats[ci].bound_evals;
        local.pruned_gaps += chunk_stats[ci].pruned_gaps;
        if (!chunk_have[ci]) continue;
        const Candidate& cb = chunk_best[ci];
        if (!have || cb.loss > best.loss) {
          best = cb;
          have = true;
        }
      }
    } else {
      ScanGapRanges(0, m, argmax.top_k, bound_ctx, excluded, &best, &have,
                    &local);
    }
  } else {
    ForEachGap(interior_only,
               [this, excluded, &best, &have, &local](
                   Key lo, Key hi, Rank count_less, Int128 prefix_sum) {
                 const Int128 suffix = sum_k_ - prefix_sum;
                 auto consider = [&](Key kp) {
                   if (excluded != nullptr && excluded->count(kp) != 0) {
                     return;
                   }
                   const long double loss =
                       LossWithInsertion(kp, count_less, suffix);
                   ++local.exact_evals;
                   if (!have || loss > best.loss) {
                     best.key = kp;
                     best.loss = loss;
                     have = true;
                   }
                 };
                 consider(lo);
                 if (hi != lo) consider(hi);
               });
  }
  if (stats != nullptr) stats->Add(local);
  if (!have) {
    return Status::ResourceExhausted(
        "no unoccupied candidate keys in the poisoning range");
  }
  return best;
}

Key LossLandscape::SecondMinKey() const {
  const Key a = base_keys_.front();
  if (inserted_.empty()) return base_keys_[1];
  const Key b = inserted_.front();
  if (b < a) {
    return inserted_.size() > 1 ? std::min(a, inserted_[1]) : a;
  }
  return base_keys_.size() > 1 ? std::min(b, base_keys_[1]) : b;
}

Key LossLandscape::SecondMaxKey() const {
  const Key a = base_keys_.back();
  if (inserted_.empty()) return base_keys_[base_keys_.size() - 2];
  const Key b = inserted_.back();
  if (b > a) {
    return inserted_.size() > 1
               ? std::max(a, inserted_[inserted_.size() - 2])
               : a;
  }
  return base_keys_.size() > 1
             ? std::max(b, base_keys_[base_keys_.size() - 2])
             : b;
}

LossLandscape::Aggregates LossLandscape::aggregates() const {
  Aggregates agg;
  agg.n = n_;
  agg.shift = shift_;
  agg.sum_k = sum_k_;
  agg.sum_k2 = sum_k2_;
  agg.sum_kr = sum_kr_;
  return agg;
}

long double LossLandscape::Aggregates::Loss() const {
  return LossFromSums(n, sum_k, sum_k2, SumRanks(n), SumRankSquares(n),
                      sum_kr);
}

long double LossLandscape::Aggregates::LossAfterInsert(
    Key kp, Rank count_less, Int128 suffix_sum) const {
  const std::int64_t n1 = n + 1;
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  return LossFromSums(n1, sum_k + kp_s, sum_k2 + kp_s * kp_s, SumRanks(n1),
                      SumRankSquares(n1),
                      sum_kr + suffix_sum + kp_s * (count_less + 1));
}

void LossLandscape::Aggregates::Insert(Key kp, Rank count_less,
                                       Int128 suffix_sum) {
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  sum_kr += suffix_sum + kp_s * (count_less + 1);
  sum_k += kp_s;
  sum_k2 += kp_s * kp_s;
  n += 1;
}

void LossLandscape::Aggregates::Remove(Key kp, Rank count_less,
                                       Int128 suffix_sum_above) {
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  sum_kr -= suffix_sum_above + kp_s * (count_less + 1);
  sum_k -= kp_s;
  sum_k2 -= kp_s * kp_s;
  n -= 1;
}

}  // namespace lispoison
