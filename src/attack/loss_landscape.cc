#include "attack/loss_landscape.h"

#include <algorithm>
#include <string>

#include "common/thread_pool.h"

namespace lispoison {
namespace {

/// Largest up-front Sweep reservation. A wide KeyDomain used to drive
/// out.reserve(hi - lo + 1) into an allocation bomb; beyond this cap the
/// vector grows geometrically like any other.
constexpr std::int64_t kSweepReserveCap = 1 << 20;

/// Theorem 1 loss from exact (n^2-scaled) aggregate numerators:
/// L = [VarY_n - CovXY_n^2 / VarX_n] / n^2 where *_n = n^2 * moment.
long double LossFromSums(std::int64_t n, Int128 sum_x, Int128 sum_x2,
                         Int128 sum_y, Int128 sum_y2, Int128 sum_xy) {
  const Int128 nn = static_cast<Int128>(n);
  const Int128 var_x_n = nn * sum_x2 - sum_x * sum_x;
  const Int128 var_y_n = nn * sum_y2 - sum_y * sum_y;
  const Int128 cov_n = nn * sum_xy - sum_x * sum_y;
  const long double n2 = static_cast<long double>(n) *
                         static_cast<long double>(n);
  if (var_x_n <= 0) {
    // All keys identical: the regression degenerates to a constant.
    long double loss = ToLongDouble(var_y_n) / n2;
    return loss < 0 ? 0 : loss;
  }
  const long double cov = ToLongDouble(cov_n);
  long double loss =
      (ToLongDouble(var_y_n) - cov * cov / ToLongDouble(var_x_n)) / n2;
  return loss < 0 ? 0 : loss;
}

/// Rank-moment sums for ranks 1..n.
inline Int128 SumRanks(std::int64_t n) {
  const Int128 m = n;
  return m * (m + 1) / 2;
}
inline Int128 SumRankSquares(std::int64_t n) {
  const Int128 m = n;
  return m * (m + 1) * (2 * m + 1) / 6;
}

}  // namespace

Result<LossLandscape> LossLandscape::Create(const KeySet& keyset) {
  if (keyset.empty()) {
    return Status::InvalidArgument(
        "loss landscape requires a non-empty keyset");
  }
  LossLandscape ll;
  ll.base_keys_ = keyset.keys();
  ll.domain_ = keyset.domain();
  ll.n_ = keyset.size();
  ll.shift_ = ll.base_keys_.front();
  ll.min_key_ = ll.base_keys_.front();
  ll.max_key_ = ll.base_keys_.back();
  ll.base_prefix_.assign(static_cast<std::size_t>(ll.n_) + 1, 0);
  for (std::int64_t i = 0; i < ll.n_; ++i) {
    const Int128 shifted =
        static_cast<Int128>(ll.base_keys_[static_cast<std::size_t>(i)]) -
        ll.shift_;
    ll.base_prefix_[static_cast<std::size_t>(i) + 1] =
        ll.base_prefix_[static_cast<std::size_t>(i)] + shifted;
    ll.sum_k2_ += shifted * shifted;
    ll.sum_kr_ += shifted * (i + 1);
  }
  ll.sum_k_ = ll.base_prefix_[static_cast<std::size_t>(ll.n_)];
  ll.inserted_slot_sum_.Reset(static_cast<std::size_t>(ll.n_) + 1);

  // Maximal unoccupied runs over the whole domain; interior clipping
  // happens at query time against the current min/max key.
  Key cursor = ll.domain_.lo;
  std::int64_t base_count = 0;
  for (const Key k : ll.base_keys_) {
    if (cursor <= k - 1) {
      ll.gaps_.push_back(Gap{cursor, k - 1, base_count});
    }
    cursor = k + 1;
    ++base_count;
  }
  if (cursor <= ll.domain_.hi) {
    ll.gaps_.push_back(Gap{cursor, ll.domain_.hi, base_count});
  }

  ll.RecomputeCurrentLoss();
  return ll;
}

void LossLandscape::RecomputeCurrentLoss() {
  base_loss_ = LossFromSums(n_, sum_k_, sum_k2_, SumRanks(n_),
                            SumRankSquares(n_), sum_kr_);
}

LossLandscape::PrefixStats LossLandscape::PrefixAt(Key kp) const {
  const auto base_it =
      std::lower_bound(base_keys_.begin(), base_keys_.end(), kp);
  const std::size_t j = static_cast<std::size_t>(base_it - base_keys_.begin());
  const auto ins_it = std::lower_bound(inserted_.begin(), inserted_.end(), kp);

  PrefixStats stats;
  stats.count_less = static_cast<Rank>(j) +
                     static_cast<Rank>(ins_it - inserted_.begin());
  stats.prefix_sum = base_prefix_[j] + inserted_slot_sum_.PrefixSum(j);
  // Inserted keys sharing base slot j but below kp are not covered by the
  // Fenwick prefix; they form a contiguous overlay range.
  auto slot_begin = inserted_.begin();
  if (j > 0) {
    slot_begin = std::lower_bound(inserted_.begin(), ins_it,
                                  base_keys_[j - 1]);
  }
  for (auto it = slot_begin; it != ins_it; ++it) {
    stats.prefix_sum += static_cast<Int128>(*it) - shift_;
  }
  return stats;
}

Status LossLandscape::InsertKey(Key kp) {
  if (!domain_.Contains(kp)) {
    return Status::OutOfRange("poisoning key " + std::to_string(kp) +
                              " outside the key domain");
  }
  // A key is unoccupied iff it lies inside a gap.
  auto gap_it = std::upper_bound(
      gaps_.begin(), gaps_.end(), kp,
      [](Key k, const Gap& g) { return k < g.lo; });
  if (gap_it == gaps_.begin() || (--gap_it)->hi < kp) {
    return Status::InvalidArgument("poisoning key " + std::to_string(kp) +
                                   " is already occupied");
  }

  const PrefixStats stats = PrefixAt(kp);
  const Int128 kp_s = static_cast<Int128>(kp) - shift_;
  // Compound effect: every key above kp gains one rank (adding the
  // suffix key-sum once), and kp enters with rank count_less + 1.
  sum_kr_ += (sum_k_ - stats.prefix_sum) + kp_s * (stats.count_less + 1);
  sum_k_ += kp_s;
  sum_k2_ += kp_s * kp_s;
  n_ += 1;
  RecomputeCurrentLoss();

  inserted_slot_sum_.Add(static_cast<std::size_t>(gap_it->base_count), kp_s);
  inserted_.insert(std::lower_bound(inserted_.begin(), inserted_.end(), kp),
                   kp);

  // Split the gap around kp (it contains no other key by construction).
  Gap& g = *gap_it;
  if (g.lo == kp && g.hi == kp) {
    gaps_.erase(gap_it);
  } else if (g.lo == kp) {
    g.lo = kp + 1;
  } else if (g.hi == kp) {
    g.hi = kp - 1;
  } else {
    const Gap right{kp + 1, g.hi, g.base_count};
    g.hi = kp - 1;
    gaps_.insert(gap_it + 1, right);
  }

  if (kp < min_key_) min_key_ = kp;
  if (kp > max_key_) max_key_ = kp;
  return Status::OK();
}

long double LossLandscape::LossWithInsertion(Key kp, Rank count_less,
                                             Int128 suffix_sum) const {
  const std::int64_t n1 = n_ + 1;
  const Int128 kp_s = static_cast<Int128>(kp) - shift_;
  const Int128 sum_x = sum_k_ + kp_s;
  const Int128 sum_x2 = sum_k2_ + kp_s * kp_s;
  // Every legitimate key above kp gains one rank, adding its (shifted)
  // value once to sum(XY); kp itself enters with rank count_less + 1.
  const Int128 sum_xy = sum_kr_ + suffix_sum + kp_s * (count_less + 1);
  return LossFromSums(n1, sum_x, sum_x2, SumRanks(n1), SumRankSquares(n1),
                      sum_xy);
}

Result<long double> LossLandscape::LossAt(Key kp) const {
  if (!domain_.Contains(kp)) {
    return Status::OutOfRange("poisoning key " + std::to_string(kp) +
                              " outside the key domain");
  }
  const bool in_base = std::binary_search(base_keys_.begin(),
                                          base_keys_.end(), kp);
  if (in_base ||
      std::binary_search(inserted_.begin(), inserted_.end(), kp)) {
    return Status::InvalidArgument("poisoning key " + std::to_string(kp) +
                                   " is already occupied");
  }
  const PrefixStats stats = PrefixAt(kp);
  return LossWithInsertion(kp, stats.count_less, sum_k_ - stats.prefix_sum);
}

std::vector<Key> LossLandscape::GapEndpoints(bool interior_only) const {
  std::vector<Key> endpoints;
  ForEachGap(interior_only,
             [&endpoints](Key lo, Key hi, Rank, Int128) {
               endpoints.push_back(lo);
               if (hi != lo) endpoints.push_back(hi);
             });
  return endpoints;
}

std::vector<std::pair<Key, long double>> LossLandscape::Sweep(
    bool interior_only) const {
  std::vector<std::pair<Key, long double>> out;
  const Key lo = interior_only ? min_key_ + 1 : domain_.lo;
  const Key hi = interior_only ? max_key_ - 1 : domain_.hi;
  if (lo > hi) return out;
  out.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(hi - lo + 1, kSweepReserveCap)));
  ForEachGapInRange(lo, hi,
                    [this, &out](Key glo, Key ghi, Rank count_less,
                                 Int128 prefix_sum) {
                      const Int128 suffix = sum_k_ - prefix_sum;
                      for (Key kp = glo; kp <= ghi; ++kp) {
                        out.emplace_back(
                            kp, LossWithInsertion(kp, count_less, suffix));
                      }
                    });
  return out;
}

namespace {

/// One materialized gap range for the parallel argmax: everything the
/// per-candidate loss evaluation needs, captured in key order.
struct GapRange {
  Key lo = 0;
  Key hi = 0;
  Rank count_less = 0;
  Int128 suffix_sum = 0;
};

/// Gap ranges per parallel chunk. Fixed (not derived from the thread
/// count) so the chunk boundaries — and therefore the reduction order —
/// are identical for every pool size.
constexpr std::int64_t kArgmaxChunkGaps = 2048;

}  // namespace

Result<LossLandscape::Candidate> LossLandscape::FindOptimal(
    bool interior_only, const std::unordered_set<Key>* excluded,
    ThreadPool* pool) const {
  // The parallel path pays an O(G) materialization of the gap ranges,
  // so it is only entered when the total gap count (an upper bound on
  // the candidate-range gaps) spans multiple chunks; smaller landscapes
  // go straight to the serial scan with no redundant traversal.
  if (pool != nullptr && pool->num_threads() > 1 &&
      gaps_.size() > static_cast<std::size_t>(kArgmaxChunkGaps)) {
    // Materialize the gap ranges, then reduce fixed-size chunks on the
    // pool. Per-candidate arithmetic is the same LossWithInsertion call
    // as the serial scan; each chunk keeps its first strict maximum in
    // key order, and the final reduction keeps the first strict maximum
    // across chunks in chunk (= key) order, so the selected candidate is
    // bit-identical to the serial scan below. A single post-intersection
    // chunk runs inline through the same code path.
    std::vector<GapRange> ranges;
    ranges.reserve(gaps_.size());
    ForEachGap(interior_only, [this, &ranges](Key lo, Key hi, Rank count_less,
                                              Int128 prefix_sum) {
      ranges.push_back(GapRange{lo, hi, count_less, sum_k_ - prefix_sum});
    });
    const std::int64_t num_chunks =
        (static_cast<std::int64_t>(ranges.size()) + kArgmaxChunkGaps - 1) /
        kArgmaxChunkGaps;
    std::vector<Candidate> chunk_best(static_cast<std::size_t>(num_chunks));
    std::vector<char> chunk_have(static_cast<std::size_t>(num_chunks), 0);
    pool->ParallelFor(num_chunks, [this, excluded, &ranges, &chunk_best,
                                   &chunk_have](std::int64_t c) {
      Candidate best;
      bool have = false;
      const std::size_t first = static_cast<std::size_t>(c) *
                                static_cast<std::size_t>(kArgmaxChunkGaps);
      const std::size_t end = std::min(
          ranges.size(), first + static_cast<std::size_t>(kArgmaxChunkGaps));
      for (std::size_t i = first; i < end; ++i) {
        const GapRange& g = ranges[i];
        auto consider = [&](Key kp) {
          if (excluded != nullptr && excluded->count(kp) != 0) return;
          const long double loss =
              LossWithInsertion(kp, g.count_less, g.suffix_sum);
          if (!have || loss > best.loss) {
            best.key = kp;
            best.loss = loss;
            have = true;
          }
        };
        consider(g.lo);
        if (g.hi != g.lo) consider(g.hi);
      }
      chunk_best[static_cast<std::size_t>(c)] = best;
      chunk_have[static_cast<std::size_t>(c)] = have ? 1 : 0;
    });
    Candidate best;
    bool have = false;
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      if (!chunk_have[static_cast<std::size_t>(c)]) continue;
      const Candidate& cb = chunk_best[static_cast<std::size_t>(c)];
      if (!have || cb.loss > best.loss) {
        best = cb;
        have = true;
      }
    }
    if (!have) {
      return Status::ResourceExhausted(
          "no unoccupied candidate keys in the poisoning range");
    }
    return best;
  }

  Candidate best;
  bool have = false;
  ForEachGap(interior_only,
             [this, excluded, &best, &have](Key lo, Key hi, Rank count_less,
                                            Int128 prefix_sum) {
               const Int128 suffix = sum_k_ - prefix_sum;
               auto consider = [&](Key kp) {
                 if (excluded != nullptr && excluded->count(kp) != 0) {
                   return;
                 }
                 const long double loss =
                     LossWithInsertion(kp, count_less, suffix);
                 if (!have || loss > best.loss) {
                   best.key = kp;
                   best.loss = loss;
                   have = true;
                 }
               };
               consider(lo);
               if (hi != lo) consider(hi);
             });
  if (!have) {
    return Status::ResourceExhausted(
        "no unoccupied candidate keys in the poisoning range");
  }
  return best;
}

Key LossLandscape::SecondMinKey() const {
  const Key a = base_keys_.front();
  if (inserted_.empty()) return base_keys_[1];
  const Key b = inserted_.front();
  if (b < a) {
    return inserted_.size() > 1 ? std::min(a, inserted_[1]) : a;
  }
  return base_keys_.size() > 1 ? std::min(b, base_keys_[1]) : b;
}

Key LossLandscape::SecondMaxKey() const {
  const Key a = base_keys_.back();
  if (inserted_.empty()) return base_keys_[base_keys_.size() - 2];
  const Key b = inserted_.back();
  if (b > a) {
    return inserted_.size() > 1
               ? std::max(a, inserted_[inserted_.size() - 2])
               : a;
  }
  return base_keys_.size() > 1
             ? std::max(b, base_keys_[base_keys_.size() - 2])
             : b;
}

LossLandscape::Aggregates LossLandscape::aggregates() const {
  Aggregates agg;
  agg.n = n_;
  agg.shift = shift_;
  agg.sum_k = sum_k_;
  agg.sum_k2 = sum_k2_;
  agg.sum_kr = sum_kr_;
  return agg;
}

long double LossLandscape::Aggregates::Loss() const {
  return LossFromSums(n, sum_k, sum_k2, SumRanks(n), SumRankSquares(n),
                      sum_kr);
}

long double LossLandscape::Aggregates::LossAfterInsert(
    Key kp, Rank count_less, Int128 suffix_sum) const {
  const std::int64_t n1 = n + 1;
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  return LossFromSums(n1, sum_k + kp_s, sum_k2 + kp_s * kp_s, SumRanks(n1),
                      SumRankSquares(n1),
                      sum_kr + suffix_sum + kp_s * (count_less + 1));
}

void LossLandscape::Aggregates::Insert(Key kp, Rank count_less,
                                       Int128 suffix_sum) {
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  sum_kr += suffix_sum + kp_s * (count_less + 1);
  sum_k += kp_s;
  sum_k2 += kp_s * kp_s;
  n += 1;
}

void LossLandscape::Aggregates::Remove(Key kp, Rank count_less,
                                       Int128 suffix_sum_above) {
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  sum_kr -= suffix_sum_above + kp_s * (count_less + 1);
  sum_k -= kp_s;
  sum_k2 -= kp_s * kp_s;
  n -= 1;
}

}  // namespace lispoison
