#include "attack/loss_landscape.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

#include "common/thread_pool.h"

namespace lispoison {
namespace {

/// Largest up-front Sweep reservation. A wide KeyDomain used to drive
/// out.reserve(hi - lo + 1) into an allocation bomb; beyond this cap the
/// vector grows geometrically like any other.
constexpr std::int64_t kSweepReserveCap = 1 << 20;

/// Theorem 1 loss from exact (n^2-scaled) aggregate numerators:
/// L = [VarY_n - CovXY_n^2 / VarX_n] / n^2 where *_n = n^2 * moment.
long double LossFromSums(std::int64_t n, Int128 sum_x, Int128 sum_x2,
                         Int128 sum_y, Int128 sum_y2, Int128 sum_xy) {
  const Int128 nn = static_cast<Int128>(n);
  const Int128 var_x_n = nn * sum_x2 - sum_x * sum_x;
  const Int128 var_y_n = nn * sum_y2 - sum_y * sum_y;
  const Int128 cov_n = nn * sum_xy - sum_x * sum_y;
  const long double n2 = static_cast<long double>(n) *
                         static_cast<long double>(n);
  if (var_x_n <= 0) {
    // All keys identical: the regression degenerates to a constant.
    long double loss = ToLongDouble(var_y_n) / n2;
    return loss < 0 ? 0 : loss;
  }
  const long double cov = ToLongDouble(cov_n);
  long double loss =
      (ToLongDouble(var_y_n) - cov * cov / ToLongDouble(var_x_n)) / n2;
  return loss < 0 ? 0 : loss;
}

/// Rank-moment sums for ranks 1..n.
inline Int128 SumRanks(std::int64_t n) {
  const Int128 m = n;
  return m * (m + 1) / 2;
}
inline Int128 SumRankSquares(std::int64_t n) {
  const Int128 m = n;
  return m * (m + 1) * (2 * m + 1) / 6;
}

}  // namespace

Result<LossLandscape> LossLandscape::Create(const KeySet& keyset) {
  if (keyset.empty()) {
    return Status::InvalidArgument(
        "loss landscape requires a non-empty keyset");
  }
  LossLandscape ll;
  ll.base_keys_ = keyset.keys();
  ll.domain_ = keyset.domain();
  ll.n_ = keyset.size();
  ll.shift_ = ll.base_keys_.front();
  ll.min_key_ = ll.base_keys_.front();
  ll.max_key_ = ll.base_keys_.back();
  ll.base_prefix_.assign(static_cast<std::size_t>(ll.n_) + 1, 0);
  for (std::int64_t i = 0; i < ll.n_; ++i) {
    const Int128 shifted =
        static_cast<Int128>(ll.base_keys_[static_cast<std::size_t>(i)]) -
        ll.shift_;
    ll.base_prefix_[static_cast<std::size_t>(i) + 1] =
        ll.base_prefix_[static_cast<std::size_t>(i)] + shifted;
    ll.sum_k2_ += shifted * shifted;
    ll.sum_kr_ += shifted * (i + 1);
  }
  ll.sum_k_ = ll.base_prefix_[static_cast<std::size_t>(ll.n_)];
  ll.inserted_slot_sum_.Reset(static_cast<std::size_t>(ll.n_) + 1);

  // Maximal unoccupied runs over the whole domain; interior clipping
  // happens at query time against the current min/max key. Each record
  // carries the exact count / shifted prefix-sum of the keys below it.
  std::vector<TieredGaps::GapRec> gaps;
  Key cursor = ll.domain_.lo;
  std::int64_t base_count = 0;
  for (const Key k : ll.base_keys_) {
    if (cursor <= k - 1) {
      gaps.push_back(TieredGaps::GapRec{
          cursor, k - 1, base_count,
          ll.base_prefix_[static_cast<std::size_t>(base_count)]});
    }
    cursor = k + 1;
    ++base_count;
  }
  if (cursor <= ll.domain_.hi) {
    gaps.push_back(TieredGaps::GapRec{
        cursor, ll.domain_.hi, base_count,
        ll.base_prefix_[static_cast<std::size_t>(base_count)]});
  }
  ll.gaps_.Build(std::move(gaps));

  ll.RecomputeCurrentLoss();
  return ll;
}

void LossLandscape::RecomputeCurrentLoss() {
  base_loss_ = LossFromSums(n_, sum_k_, sum_k2_, SumRanks(n_),
                            SumRankSquares(n_), sum_kr_);
}

LossLandscape::PrefixStats LossLandscape::PrefixAt(Key kp) const {
  const auto base_it =
      std::lower_bound(base_keys_.begin(), base_keys_.end(), kp);
  const std::size_t j = static_cast<std::size_t>(base_it - base_keys_.begin());
  const auto ins_it = std::lower_bound(inserted_.begin(), inserted_.end(), kp);

  PrefixStats stats;
  stats.count_less = static_cast<Rank>(j) +
                     static_cast<Rank>(ins_it - inserted_.begin());
  stats.prefix_sum = base_prefix_[j] + inserted_slot_sum_.PrefixSum(j);
  // Inserted keys sharing base slot j but below kp are not covered by the
  // Fenwick prefix; they form a contiguous overlay range.
  auto slot_begin = inserted_.begin();
  if (j > 0) {
    slot_begin = std::lower_bound(inserted_.begin(), ins_it,
                                  base_keys_[j - 1]);
  }
  for (auto it = slot_begin; it != ins_it; ++it) {
    stats.prefix_sum += static_cast<Int128>(*it) - shift_;
  }
  return stats;
}

Status LossLandscape::InsertKey(Key kp) {
  if (!domain_.Contains(kp)) {
    return Status::OutOfRange("poisoning key " + std::to_string(kp) +
                              " outside the key domain");
  }
  // A key is unoccupied iff it lies inside a gap.
  std::size_t tier_idx = 0;
  std::size_t gap_idx = 0;
  if (!gaps_.Locate(kp, &tier_idx, &gap_idx)) {
    return Status::InvalidArgument("poisoning key " + std::to_string(kp) +
                                   " is already occupied");
  }

  const PrefixStats stats = PrefixAt(kp);
  const Int128 kp_s = static_cast<Int128>(kp) - shift_;
  // Compound effect: every key above kp gains one rank (adding the
  // suffix key-sum once), and kp enters with rank count_less + 1.
  sum_kr_ += (sum_k_ - stats.prefix_sum) + kp_s * (stats.count_less + 1);
  sum_k_ += kp_s;
  sum_k2_ += kp_s * kp_s;
  n_ += 1;
  RecomputeCurrentLoss();

  const std::size_t base_slot = static_cast<std::size_t>(
      std::lower_bound(base_keys_.begin(), base_keys_.end(), kp) -
      base_keys_.begin());
  inserted_slot_sum_.Add(base_slot, kp_s);
  inserted_.insert(std::lower_bound(inserted_.begin(), inserted_.end(), kp),
                   kp);

  // Split the gap around kp (it contains no other key by construction):
  // an O(sqrt(G)) tiered splice that also folds kp into the per-gap
  // count/prefix-sum bookkeeping and the per-tier aggregate boxes.
  gaps_.SplitAt(tier_idx, gap_idx, kp, kp_s);

  if (kp < min_key_) min_key_ = kp;
  if (kp > max_key_) max_key_ = kp;
  return Status::OK();
}

long double LossLandscape::LossWithInsertion(Key kp, Rank count_less,
                                             Int128 suffix_sum) const {
  const std::int64_t n1 = n_ + 1;
  const Int128 kp_s = static_cast<Int128>(kp) - shift_;
  const Int128 sum_x = sum_k_ + kp_s;
  const Int128 sum_x2 = sum_k2_ + kp_s * kp_s;
  // Every legitimate key above kp gains one rank, adding its (shifted)
  // value once to sum(XY); kp itself enters with rank count_less + 1.
  const Int128 sum_xy = sum_kr_ + suffix_sum + kp_s * (count_less + 1);
  return LossFromSums(n1, sum_x, sum_x2, SumRanks(n1), SumRankSquares(n1),
                      sum_xy);
}

Result<long double> LossLandscape::LossAt(Key kp) const {
  if (!domain_.Contains(kp)) {
    return Status::OutOfRange("poisoning key " + std::to_string(kp) +
                              " outside the key domain");
  }
  const bool in_base = std::binary_search(base_keys_.begin(),
                                          base_keys_.end(), kp);
  if (in_base ||
      std::binary_search(inserted_.begin(), inserted_.end(), kp)) {
    return Status::InvalidArgument("poisoning key " + std::to_string(kp) +
                                   " is already occupied");
  }
  const PrefixStats stats = PrefixAt(kp);
  return LossWithInsertion(kp, stats.count_less, sum_k_ - stats.prefix_sum);
}

std::vector<Key> LossLandscape::GapEndpoints(bool interior_only) const {
  std::vector<Key> endpoints;
  ForEachGap(interior_only,
             [&endpoints](Key lo, Key hi, Rank, Int128) {
               endpoints.push_back(lo);
               if (hi != lo) endpoints.push_back(hi);
             });
  return endpoints;
}

std::vector<std::pair<Key, long double>> LossLandscape::Sweep(
    bool interior_only) const {
  std::vector<std::pair<Key, long double>> out;
  const Key lo = interior_only ? min_key_ + 1 : domain_.lo;
  const Key hi = interior_only ? max_key_ - 1 : domain_.hi;
  if (lo > hi) return out;
  out.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(hi - lo + 1, kSweepReserveCap)));
  ForEachGapInRange(lo, hi,
                    [this, &out](Key glo, Key ghi, Rank count_less,
                                 Int128 prefix_sum) {
                      const Int128 suffix = sum_k_ - prefix_sum;
                      for (Key kp = glo; kp <= ghi; ++kp) {
                        out.emplace_back(
                            kp, LossWithInsertion(kp, count_less, suffix));
                      }
                    });
  return out;
}

namespace {

/// Gap ranges per parallel chunk. Fixed (not derived from the thread
/// count) so the chunk boundaries — and therefore the reduction order —
/// are identical for every pool size.
constexpr std::int64_t kArgmaxChunkGaps = 2048;

/// Whole-chain error-margin unit for the bound arithmetic: ~450x the
/// IEEE double rounding unit (2^-52 ~ 2.2e-16). Each margin term below
/// multiplies kBoundEps by an upper bound on the *component magnitudes*
/// of its expression (never the possibly-cancelled result); the true
/// rounding error of each <10-op chain is below ~10 units of 2.2e-16
/// relative to those magnitudes, so one kBoundEps unit dominates it —
/// including the int128->double input conversions and the (much
/// smaller) long-double rounding of the exact evaluation the bound must
/// majorize — with ~50x headroom, while costing a fraction of full
/// per-op interval propagation.
constexpr double kBoundEps = 1e-13;

inline double AbsD(double v) { return v < 0 ? -v : v; }

}  // namespace

/// Round-constant part of the admissible upper bound on the Theorem 1
/// loss after inserting one key into the current n_ keys — the
/// *uncached* per-round pre-pass (ArgmaxOptions::cache == false, or the
/// fallback when the epoch context is not admissible).
///
/// With x = kp - shift, c = count_less, S = suffix key-sum, the exact
/// loss is  L = max(0, (VarY - Cov^2/VarX) / (n+1)^2)  where VarY is a
/// per-round constant and Cov/VarX are affine/quadratic in x. The bound
/// evaluates the same formula in double with directed error margins:
/// VarY rounded up, Cov^2/VarX rounded down (interval-safe against the
/// cancellation in both numerators), so bound >= exact loss for every
/// candidate — the admissibility the pruned argmax needs to stay
/// bit-identical to the exhaustive scan.
struct LossLandscape::BoundCtx {
  double n1 = 0;          // n + 1
  double inv_n12_ub = 0;  // (1 + slack) / (n+1)^2, rounded up
  double sum_y = 0;       // sum of ranks 1..n+1
  double var_y_ub = 0;    // (n+1)*sumY2 - sumY^2, rounded up
  double sum_k = 0;       // converted exact aggregates
  double abs_sum_k = 0;
  double sum_k2 = 0;      // >= 0
  double sum_kr = 0;
  double abs_sum_kr = 0;
  bool usable = false;

  static BoundCtx Make(std::int64_t n, Int128 sum_k, Int128 sum_k2,
                       Int128 sum_kr) {
    BoundCtx b;
    const std::int64_t n1 = n + 1;
    const Int128 sy = SumRanks(n1);
    const Int128 var_y =
        static_cast<Int128>(n1) * SumRankSquares(n1) - sy * sy;
    b.n1 = static_cast<double>(n1);
    const double n12_lo = b.n1 * b.n1 * (1.0 - 2.0 * kBoundEps);
    b.inv_n12_ub = (1.0 + 6.0 * kBoundEps) / n12_lo;
    b.sum_y = static_cast<double>(sy);
    b.var_y_ub = static_cast<double>(var_y) * (1.0 + 2.0 * kBoundEps);
    b.sum_k = static_cast<double>(sum_k);
    b.abs_sum_k = AbsD(b.sum_k);
    b.sum_k2 = static_cast<double>(sum_k2);
    b.sum_kr = static_cast<double>(sum_kr);
    b.abs_sum_kr = AbsD(b.sum_kr);
    b.usable = std::isfinite(b.var_y_ub) && std::isfinite(b.sum_k) &&
               std::isfinite(b.sum_k2) && std::isfinite(b.sum_kr) &&
               std::isfinite(b.sum_y) && std::isfinite(b.inv_n12_ub) &&
               b.inv_n12_ub > 0;
    return b;
  }

  /// Upper bound for candidate x (shifted key) with c keys below it and
  /// suffix key-sum S. Absolute-error margins are taken against the
  /// *component magnitudes* of each cancellation-prone difference
  /// (VarX, Cov, and their sub-sums), never against the difference
  /// itself, and the final combination rounds VarY up and Cov^2/VarX
  /// down — so the returned value dominates the exact loss.
  double Upper(double x, double c1, double s) const {
    const double ax = AbsD(x);
    const double sx = sum_k + x;
    const double m_sx = abs_sum_k + ax;       // >= |sx| and its err scale
    const double sx2 = sum_k2 + x * x;        // all terms >= 0
    const double xc = x * c1;
    const double axc = AbsD(xc);
    const double sxy = sum_kr + s + xc;
    const double m_sxy = abs_sum_kr + AbsD(s) + axc;
    // VarX = n1*sx2 - sx^2.
    const double a = n1 * sx2;
    const double bb = sx * sx;
    const double varx = a - bb;
    const double e_varx = kBoundEps * (a + bb + m_sx * m_sx);
    // Cov = n1*sxy - sx*sum_y.
    const double cov = n1 * sxy - sx * sum_y;
    const double e_cov = kBoundEps * (n1 * m_sxy + m_sx * sum_y);
    // Lower bound on Cov^2/VarX; zero whenever the VarX interval is not
    // strictly positive (the exact path then degenerates to VarY alone).
    double q_lb = 0;
    if (varx - e_varx > 0) {
      const double cov_lo = AbsD(cov) - e_cov;
      if (cov_lo > 0) {
        q_lb = (cov_lo * cov_lo) / (varx + e_varx) * (1.0 - 4.0 * kBoundEps);
      }
    }
    const double num = (var_y_ub - q_lb) + kBoundEps * (var_y_ub + q_lb);
    if (num <= 0) return 0;
    const double ub = num * inv_n12_ub;
    // Any non-finite intermediate poisons ub; "never prune" is the
    // admissible answer.
    if (!(ub >= 0)) return std::numeric_limits<double>::infinity();
    return ub;
  }

  /// Admissible upper bound on the loss over EVERY candidate whose
  /// shifted key lies in [xl, xl + span], given the exact (c1, prefix)
  /// of the range's first gap — the O(1)-per-tier bound of the tiered
  /// scan.
  ///
  /// Soundness. (1) Along the candidate axis, sum(XY)(x) = sum_kr +
  /// (sum_k - p(x)) + x*c1(x) is piecewise linear with non-decreasing
  /// slopes c1 (candidates passing a key gain a rank term) and *upward*
  /// jumps at key crossings (crossing keys {k_i} at candidate x adds
  /// sum(x - k_i) >= 0), so Cov(x) = n1*sum(XY) - (sum_k + x)*sum_y —
  /// also piecewise linear with non-decreasing slopes n1*c1 - sum_y —
  /// lies above its left-endpoint tangent T(x) = a + b*x over the whole
  /// range. (2) If T > 0 on the range then q(x) = Cov(x)^2 / VarX(x)
  /// >= g(x) = T(x)^2 / V(x), where V(x) = VarX(x) = A x^2 + B x + C
  /// (A = n1-1, B = -2 sum_k, C = n1 sum_k2 - sum_k^2) is the same
  /// gap-independent positive-definite parabola for every candidate.
  /// (3) g has exactly two finite critical points: the zero of T
  /// (outside the range, by the positivity check) and one extremum
  /// whose critical value is the tangency level m* = 4(A a^2 - B a b +
  /// C b^2) / (4AC - B^2) (> 0: the numerator is the positive-definite
  /// V-form evaluated at (a, -b); the denominator is -disc(V) > 0), so
  /// min over the range of g >= min(g(xl), g(xh), m*). Evaluating g at
  /// matched endpoints preserves the Cov^2/VarX cancellation that makes
  /// the flat loss landscape separable at all — bounding min Cov and
  /// max VarX independently is hopeless here (measured: never skips a
  /// tier). Directed error margins follow the same component-magnitude
  /// scheme as Upper.
  double UpperRange(double xl, double span, double c1l, double pl) const {
    const double xh = xl + span;
    // Cov at the left endpoint (exact first-gap inputs), rounded down.
    const double s = sum_k - pl;
    const double m_s = abs_sum_k + AbsD(pl);
    const double xc = xl * c1l;
    const double sxy = sum_kr + s + xc;
    const double m_sxy = abs_sum_kr + m_s + AbsD(xc);
    const double sxl = sum_k + xl;
    const double m_sxl = abs_sum_k + AbsD(xl);
    const double covl = n1 * sxy - sxl * sum_y;
    const double e_covl = kBoundEps * (n1 * m_sxy + m_sxl * sum_y);
    // Tangent T(x) = a + b x with both coefficients rounded toward the
    // admissible side (T must stay below the true Cov).
    const double slope = n1 * c1l - sum_y;
    const double e_slope = kBoundEps * (n1 * c1l + sum_y);
    const double b = slope - e_slope;
    const double a = (covl - e_covl) - b * xl;
    const double t_lo = covl - e_covl;           // T(xl)
    const double t_hi = t_lo + b * span;         // T(xh), rounded down
    const double e_t_hi = kBoundEps * (AbsD(t_lo) + AbsD(b) * span);
    double q_lb = 0;
    if (t_lo > 0 && t_hi - e_t_hi > 0) {
      // V at the endpoints, rounded up.
      const double sxh = sum_k + xh;
      const double m_sxh = abs_sum_k + AbsD(xh);
      const double vxl = n1 * (sum_k2 + xl * xl) - sxl * sxl;
      const double e_vxl =
          kBoundEps * (n1 * (sum_k2 + xl * xl) + m_sxl * m_sxl);
      const double vxh = n1 * (sum_k2 + xh * xh) - sxh * sxh;
      const double e_vxh =
          kBoundEps * (n1 * (sum_k2 + xh * xh) + m_sxh * m_sxh);
      // Endpoint values of g, rounded down.
      double lb = std::numeric_limits<double>::infinity();
      if (vxl + e_vxl > 0) {
        lb = std::min(lb, (t_lo * t_lo) / (vxl + e_vxl) *
                              (1.0 - 4.0 * kBoundEps));
      }
      const double th = t_hi - e_t_hi;
      if (vxh + e_vxh > 0) {
        lb = std::min(lb, (th * th) / (vxh + e_vxh) *
                              (1.0 - 4.0 * kBoundEps));
      }
      // Interior tangency level m*, rounded down. Guarded on the
      // denominator staying provably positive (V strictly positive
      // definite); otherwise the interior extremum cannot be certified
      // and the tier is simply not pruned.
      const double cA = n1 - 1.0;
      const double cB = -2.0 * sum_k;
      const double cC = n1 * sum_k2 - sum_k * sum_k;
      const double m_cC = n1 * sum_k2 + abs_sum_k * abs_sum_k;
      const double den = 4.0 * cA * cC - cB * cB;
      const double e_den =
          kBoundEps * (4.0 * cA * m_cC + cB * cB);
      const double num_m =
          4.0 * (cA * a * a - cB * a * b + cC * b * b);
      const double e_num_m = 4.0 * kBoundEps *
          (cA * a * a + AbsD(cB * a * b) + m_cC * b * b);
      if (den - e_den > 0) {
        const double m_star =
            (num_m - e_num_m) / (den + e_den) * (1.0 - 4.0 * kBoundEps);
        lb = std::min(lb, m_star);
      } else {
        lb = 0;
      }
      if (lb > 0 && std::isfinite(lb)) q_lb = lb;
    }
    const double num = (var_y_ub - q_lb) + kBoundEps * (var_y_ub + q_lb);
    if (num <= 0) return 0;
    const double ub = num * inv_n12_ub;
    // Any non-finite/NaN intermediate poisons ub; "never prune" is the
    // admissible answer.
    if (!(ub >= 0)) return std::numeric_limits<double>::infinity();
    return ub;
  }
};

template <typename T>
std::vector<T>& LossLandscape::PrepareScratch(std::vector<T>* buf,
                                              std::size_t needed) const {
  if (buf->capacity() < needed) {
    ++scratch_reallocs_;
    std::vector<T> fresh;
    fresh.reserve(std::max(needed, buf->capacity() * 2));
    buf->swap(fresh);
  }
  buf->clear();
  return *buf;
}

namespace {

/// Grow-only variant for the flat per-gap arrays whose live prefix is
/// fully overwritten each scan: avoids the O(G) value-initialization
/// PrepareScratch's clear+resize would pay per round. Stale entries
/// beyond the current gap count are never read.
template <typename T>
void EnsureScratchSize(std::vector<T>* buf, std::size_t needed,
                       std::int64_t* reallocs) {
  if (buf->size() >= needed) return;
  if (buf->capacity() < needed) {
    ++*reallocs;
    buf->reserve(std::max(needed, buf->capacity() * 2));
  }
  buf->resize(buf->capacity());
}

}  // namespace

void LossLandscape::ScanGapRanges(std::size_t first, std::size_t end,
                                  std::int64_t top_k,
                                  const BoundCtx* bound_ctx,
                                  const std::unordered_set<Key>* excluded,
                                  Candidate* best, bool* have,
                                  ArgmaxStats* stats) const {
  // First-maximum-in-key-order semantics, order-independent form:
  // strictly larger loss wins; an equal loss wins only with a smaller
  // key. The exhaustive scan visits candidates in key order, where this
  // reduces to the original strict > rule.
  auto consider = [&](Key kp, Rank count_less, Int128 suffix_sum) {
    if (excluded != nullptr && excluded->count(kp) != 0) return;
    const long double loss = LossWithInsertion(kp, count_less, suffix_sum);
    ++stats->exact_evals;
    if (!*have || loss > best->loss ||
        (loss == best->loss && kp < best->key)) {
      best->key = kp;
      best->loss = loss;
      *have = true;
    }
  };
  auto eval_gap = [&](std::size_t i) {
    const GapRange& g = argmax_ranges_[i];
    consider(g.lo, g.count_less, g.suffix_sum);
    if (g.hi != g.lo) consider(g.hi, g.count_less, g.suffix_sum);
  };

  if (bound_ctx == nullptr) {
    for (std::size_t i = first; i < end; ++i) eval_gap(i);
    return;
  }

  // Phase 1 — pre-pass: score every gap's non-excluded endpoints against
  // the admissible bound; -inf marks gaps with no admissible candidate.
  constexpr double kNoBound = -std::numeric_limits<double>::infinity();
  // Candidate keys are shifted in exact int64 then converted with one
  // cheap cvt instruction (no 128-bit library call). Safe: FindOptimal
  // falls back to the exhaustive scan when the domain span could
  // overflow the subtraction.
  for (std::size_t i = first; i < end; ++i) {
    const GapRange& g = argmax_ranges_[i];
    const double c1 = static_cast<double>(g.count_less + 1);
    const double s = static_cast<double>(g.suffix_sum);
    double bnd = kNoBound;
    if (excluded == nullptr || excluded->count(g.lo) == 0) {
      const double x = static_cast<double>(g.lo - shift_);
      bnd = bound_ctx->Upper(x, c1, s);
      ++stats->bound_evals;
    }
    if (g.hi != g.lo &&
        (excluded == nullptr || excluded->count(g.hi) == 0)) {
      const double x = static_cast<double>(g.hi - shift_);
      const double b2 = bound_ctx->Upper(x, c1, s);
      ++stats->bound_evals;
      if (b2 > bnd) bnd = b2;
    }
    argmax_bounds_[i] = bnd;
  }

  // Phase 2 — exact re-check of the top-K bounds to seed the running
  // best. nth_element's partition is unstable, but the final Candidate
  // is invariant: every gap that could still win is re-checked in phase
  // 3 regardless of which ties landed in the top-K.
  const std::size_t len = end - first;
  const std::size_t k =
      std::min(len, static_cast<std::size_t>(std::max<std::int64_t>(
                        1, top_k)));
  for (std::size_t i = first; i < end; ++i) argmax_order_[i] = i;
  std::nth_element(argmax_order_.begin() + static_cast<std::ptrdiff_t>(first),
                   argmax_order_.begin() +
                       static_cast<std::ptrdiff_t>(first + k),
                   argmax_order_.begin() + static_cast<std::ptrdiff_t>(end),
                   [this](std::size_t a, std::size_t b) {
                     return argmax_bounds_[a] > argmax_bounds_[b];
                   });
  for (std::size_t j = first; j < first + k; ++j) {
    const std::size_t i = argmax_order_[j];
    if (argmax_bounds_[i] == kNoBound) continue;
    eval_gap(i);
    argmax_bounds_[i] = kNoBound;  // Consumed: phase 3 skips it.
  }

  // Suffix max/count over the *unconsumed* bounds enable the
  // branch-and-bound early exit and keep the pruned-gap counter exact.
  {
    double run_max = kNoBound;
    std::int64_t run_cnt = 0;
    for (std::size_t i = end; i > first; --i) {
      const double b = argmax_bounds_[i - 1];
      if (b != kNoBound) {
        ++run_cnt;
        if (b > run_max) run_max = b;
      }
      argmax_suffix_max_[i - 1] = run_max;
      argmax_suffix_cnt_[i - 1] = run_cnt;
    }
  }

  // Phase 3 — key-ordered sweep: a gap survives only while its bound can
  // still reach the running best (>= keeps exact ties alive for the
  // smaller-key rule); once every remaining bound is strictly below the
  // best, the scan exits.
  for (std::size_t i = first; i < end; ++i) {
    if (*have && argmax_suffix_max_[i] < best->loss) {
      stats->pruned_gaps += argmax_suffix_cnt_[i];
      break;
    }
    const double b = argmax_bounds_[i];
    if (b == kNoBound) continue;
    if (*have && b < best->loss) {
      ++stats->pruned_gaps;
      continue;
    }
    eval_gap(i);
  }
}

std::int64_t LossLandscape::TierInRangeCount(const TieredGaps::Tier& t,
                                             Key lo_bound, Key hi_bound) {
  if (t.lo >= lo_bound && t.hi <= hi_bound) {
    return static_cast<std::int64_t>(t.gaps.size());
  }
  std::int64_t count = 0;
  for (const TieredGaps::GapRec& g : t.gaps) {
    if (g.hi >= lo_bound && g.lo <= hi_bound) ++count;
  }
  return count;
}

void LossLandscape::ScanTiersCached(std::size_t first, std::size_t end,
                                    Key lo_bound, Key hi_bound,
                                    const BoundCtx& ctx,
                                    const std::unordered_set<Key>* excluded,
                                    double* seed_bounds, Candidate* best,
                                    bool* have, ArgmaxStats* stats) const {
  const std::vector<TieredGaps::Tier>& tiers = gaps_.tiers();
  auto consider = [&](Key kp, Rank count_less, Int128 suffix_sum) {
    if (excluded != nullptr && excluded->count(kp) != 0) return;
    const long double loss = LossWithInsertion(kp, count_less, suffix_sum);
    ++stats->exact_evals;
    if (!*have || loss > best->loss ||
        (loss == best->loss && kp < best->key)) {
      best->key = kp;
      best->loss = loss;
      *have = true;
    }
  };
  auto eval_rec = [&](const TieredGaps::GapRec& g,
                      const TieredGaps::Tier& t) {
    const Rank count_less = g.cnt + t.delta_cnt;
    const Int128 suffix = sum_k_ - (g.sum + t.delta_sum);
    consider(g.lo, count_less, suffix);
    if (g.hi != g.lo) consider(g.hi, count_less, suffix);
  };
  // FindOptimal's scan ranges never clip a gap partially (range bounds
  // are min/max +- 1 or the domain edges, and gaps are bounded by
  // occupied keys), so membership is a whole-gap test.
  auto in_range = [lo_bound, hi_bound](const TieredGaps::GapRec& g) {
    return g.hi >= lo_bound && g.lo <= hi_bound;
  };
  auto count_at = [this](std::size_t pos) {
    return argmax_tier_suffix_cnt_[pos] - argmax_tier_suffix_cnt_[pos + 1];
  };
  // Per-gap point bound over the non-excluded endpoints (the same
  // pipeline the uncached pre-pass runs, against the same per-round
  // context); -inf when no admissible candidate remains.
  constexpr double kNoBound = -std::numeric_limits<double>::infinity();
  auto gap_bound = [&](const TieredGaps::GapRec& g,
                       const TieredGaps::Tier& t) {
    const double c1 = static_cast<double>(g.cnt + t.delta_cnt + 1);
    const double s =
        static_cast<double>(sum_k_ - (g.sum + t.delta_sum));
    double bnd = kNoBound;
    if (excluded == nullptr || excluded->count(g.lo) == 0) {
      bnd = ctx.Upper(static_cast<double>(g.lo - shift_), c1, s);
      ++stats->bound_evals;
    }
    if (g.hi != g.lo &&
        (excluded == nullptr || excluded->count(g.hi) == 0)) {
      const double b2 =
          ctx.Upper(static_cast<double>(g.hi - shift_), c1, s);
      ++stats->bound_evals;
      if (b2 > bnd) bnd = b2;
    }
    return bnd;
  };

  // Seed the running best inside the tier with the highest box bound
  // (the tiered analogue of the uncached top-K re-check): compute that
  // tier's per-gap bounds once — staged into this chunk's slice of the
  // engine-owned scratch so the sweep below reuses them — and
  // exact-evaluate the best one. Strict > keeps the earliest tier/gap
  // on ties — a pure function of the structure, so the seed is
  // identical for every thread count.
  std::size_t seed_pos = end;
  double seed_box = -std::numeric_limits<double>::infinity();
  for (std::size_t pos = first; pos < end; ++pos) {
    if (count_at(pos) <= 0) continue;
    const double bx = argmax_tier_bounds_[pos];
    if (bx > seed_box) {
      seed_box = bx;
      seed_pos = pos;
    }
  }
  const TieredGaps::GapRec* seed_gap = nullptr;
  if (seed_pos != end) {
    const TieredGaps::Tier& t = tiers[argmax_tier_list_[seed_pos]];
    double gap_best = -std::numeric_limits<double>::infinity();
    for (std::size_t gi = 0; gi < t.gaps.size(); ++gi) {
      const TieredGaps::GapRec& g = t.gaps[gi];
      if (!in_range(g)) continue;
      const double b = gap_bound(g, t);
      seed_bounds[gi] = b;
      if (b > gap_best) {
        gap_best = b;
        seed_gap = &g;
      }
    }
    if (seed_gap != nullptr) eval_rec(*seed_gap, t);
  }

  // Key-ordered sweep: skip whole tiers via their box bound, re-score
  // only the survivors per gap, and exit once every remaining tier box
  // is below the best. The suffix arrays are global (they extend past
  // this chunk), so the exit test is conservative — sound for any chunk
  // split. Accounting: a gap is "cached" when its tier's box (built
  // from the incrementally maintained tier aggregates) dispositioned it
  // without per-gap work, "invalidated" when its tier survived and it
  // was re-scored individually.
  for (std::size_t pos = first; pos < end; ++pos) {
    if (*have && argmax_tier_suffix_max_[pos] < best->loss) {
      const std::int64_t rest =
          argmax_tier_suffix_cnt_[pos] - argmax_tier_suffix_cnt_[end];
      stats->pruned_gaps += rest;
      stats->cached_bounds += rest;
      break;
    }
    const std::int64_t here = count_at(pos);
    if (here <= 0) continue;
    const TieredGaps::Tier& t = tiers[argmax_tier_list_[pos]];
    if (*have && argmax_tier_bounds_[pos] < best->loss) {
      stats->pruned_gaps += here;
      stats->cached_bounds += here;
      continue;
    }
    stats->invalidated_gaps += here;
    const bool is_seed_tier = pos == seed_pos;
    for (std::size_t gi = 0; gi < t.gaps.size(); ++gi) {
      const TieredGaps::GapRec& g = t.gaps[gi];
      if (g.hi < lo_bound) continue;
      if (g.lo > hi_bound) break;
      if (&g == seed_gap) continue;  // Already evaluated by the seed.
      // The seed tier's bounds were staged by the seed phase above.
      const double b = is_seed_tier ? seed_bounds[gi] : gap_bound(g, t);
      if (b == kNoBound) continue;   // Every endpoint excluded.
      if (*have && b < best->loss) {
        ++stats->pruned_gaps;
        continue;
      }
      eval_rec(g, t);
    }
  }
}

Result<LossLandscape::Candidate> LossLandscape::FindOptimal(
    bool interior_only, const std::unordered_set<Key>* excluded,
    ThreadPool* pool) const {
  return FindOptimal(interior_only, excluded, pool, ArgmaxOptions{});
}

Result<LossLandscape::Candidate> LossLandscape::FindOptimal(
    bool interior_only, const std::unordered_set<Key>* excluded,
    ThreadPool* pool, const ArgmaxOptions& argmax, ArgmaxStats* stats) const {
  ArgmaxStats local;
  local.rounds = 1;

  // The pruned pipelines are provably admissible only where the exact
  // Int128 aggregate arithmetic they majorize cannot overflow: with
  // n1 = n+1 keys of shifted magnitude <= S, the Theorem 1 numerators
  // reach n1^2*S^2 (VarX), n1^3*S (Cov) and n1^4 (VarY), all of which
  // must stay below 2^126. This replaces PR 3's looser span-< 2^62
  // test, under which wide domains could overflow the "exact"
  // aggregates and silently void the bit-identity the differential
  // suites pin (the exhaustive fallback keeps prune-vs-exhaustive
  // trivially identical there). It also keeps the pre-passes' int64
  // candidate shifts safe (n1*S < 2^63 implies S < 2^62).
  const bool domain_ok = [this] {
    const Int128 n1 = static_cast<Int128>(n_) + 1;
    if (n1 >= (static_cast<Int128>(1) << 31)) return false;  // n1^4 guard
    Int128 s = static_cast<Int128>(domain_.hi) - shift_;
    const Int128 s_lo = static_cast<Int128>(shift_) - domain_.lo;
    if (s_lo > s) s = s_lo;
    if (s < 1) s = 1;
    if (n1 * s >= (static_cast<Int128>(1) << 63)) return false;  // VarX
    const Int128 limit = static_cast<Int128>(1) << 126;
    return s < limit / (n1 * n1 * n1);  // Cov (n1^3 < 2^93: no overflow)
  }();
  bool prune = argmax.prune;

  Candidate best;
  bool have = false;

  // -------------------------------------------------------------------
  // Tiered incremental path: one box bound per tier from the per-tier
  // aggregates the splices maintain, per-gap re-scoring only for the
  // tiers whose box survives — O(sqrt(G) + survivors) bound work per
  // round.
  // -------------------------------------------------------------------
  BoundCtx ctx;
  bool use_cache = prune && argmax.cache && domain_ok;
  if (use_cache) {
    ctx = BoundCtx::Make(n_, sum_k_, sum_k2_, sum_kr_);
    // Context not provably admissible: fall back to the per-round
    // pre-pass below (which may itself fall back to exhaustive).
    if (!ctx.usable) use_cache = false;
  }
  if (use_cache) {
    const Key lo_bound = interior_only ? min_key_ + 1 : domain_.lo;
    const Key hi_bound = interior_only ? max_key_ - 1 : domain_.hi;
    const std::vector<TieredGaps::Tier>& tiers = gaps_.tiers();
    auto& list = PrepareScratch(&argmax_tier_list_, tiers.size());
    if (lo_bound <= hi_bound) {
      for (std::size_t ti = gaps_.FirstTierNotBelow(lo_bound);
           ti < tiers.size() && tiers[ti].lo <= hi_bound; ++ti) {
        list.push_back(ti);
      }
    }
    const std::size_t num_listed = list.size();
    EnsureScratchSize(&argmax_tier_bounds_, num_listed + 1,
                      &scratch_reallocs_);
    EnsureScratchSize(&argmax_tier_suffix_max_, num_listed + 1,
                      &scratch_reallocs_);
    EnsureScratchSize(&argmax_tier_suffix_cnt_, num_listed + 1,
                      &scratch_reallocs_);

    // Range pass (serial, O(#tiers)): one admissible bound per tier
    // over every candidate in its key range, from the covariance
    // left-tangent at the tier's first gap — O(1) reads off the tier.
    std::int64_t total_in_range = 0;
    for (std::size_t pos = 0; pos < num_listed; ++pos) {
      const TieredGaps::Tier& t = tiers[list[pos]];
      const std::int64_t in_range = TierInRangeCount(t, lo_bound, hi_bound);
      double tier_bound = -std::numeric_limits<double>::infinity();
      if (in_range > 0) {
        const double c1l =
            static_cast<double>(t.gaps.front().cnt + t.delta_cnt + 1);
        const double pl =
            static_cast<double>(t.gaps.front().sum + t.delta_sum);
        tier_bound = ctx.UpperRange(static_cast<double>(t.lo - shift_),
                                    static_cast<double>(t.hi - t.lo),
                                    c1l, pl);
        ++local.bound_evals;
      }
      argmax_tier_bounds_[pos] = tier_bound;
      argmax_tier_suffix_cnt_[pos] = in_range;
      argmax_tier_suffix_max_[pos] = tier_bound;
      total_in_range += in_range;
    }
    argmax_tier_suffix_cnt_[num_listed] = 0;
    argmax_tier_suffix_max_[num_listed] =
        -std::numeric_limits<double>::infinity();
    for (std::size_t pos = num_listed; pos > 0; --pos) {
      argmax_tier_suffix_cnt_[pos - 1] += argmax_tier_suffix_cnt_[pos];
      if (argmax_tier_suffix_max_[pos] > argmax_tier_suffix_max_[pos - 1]) {
        argmax_tier_suffix_max_[pos - 1] = argmax_tier_suffix_max_[pos];
      }
    }

    const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                          total_in_range > kArgmaxChunkGaps;
    const std::size_t seed_stride =
        static_cast<std::size_t>(gaps_.tier_cap());
    if (!parallel) {
      EnsureScratchSize(&argmax_bounds_, seed_stride, &scratch_reallocs_);
      ScanTiersCached(0, num_listed, lo_bound, hi_bound, ctx, excluded,
                      argmax_bounds_.data(), &best, &have, &local);
    } else {
      // Consecutive tier groups of ~kArgmaxChunkGaps in-range gaps: a
      // pure function of the structure, so the chunk layout — and the
      // chunk-order reduction below — is identical for every pool size.
      auto& chunks = PrepareScratch(
          &argmax_chunk_tiers_,
          static_cast<std::size_t>(total_in_range / kArgmaxChunkGaps) + 1);
      std::size_t start = 0;
      std::int64_t acc = 0;
      for (std::size_t pos = 0; pos < num_listed; ++pos) {
        acc += argmax_tier_suffix_cnt_[pos] - argmax_tier_suffix_cnt_[pos + 1];
        if (acc >= kArgmaxChunkGaps) {
          chunks.emplace_back(start, pos + 1);
          start = pos + 1;
          acc = 0;
        }
      }
      if (start < num_listed) chunks.emplace_back(start, num_listed);
      const std::size_t num_chunks = chunks.size();
      // One seed-staging slice per chunk (disjoint, so workers never
      // race on the shared scratch).
      EnsureScratchSize(&argmax_bounds_, num_chunks * seed_stride,
                        &scratch_reallocs_);
      std::vector<Candidate> chunk_best(num_chunks);
      std::vector<char> chunk_have(num_chunks, 0);
      std::vector<ArgmaxStats> chunk_stats(num_chunks);
      pool->ParallelFor(
          static_cast<std::int64_t>(num_chunks),
          [this, excluded, lo_bound, hi_bound, seed_stride, &ctx, &chunks,
           &chunk_best, &chunk_have, &chunk_stats](std::int64_t c) {
            const auto ci = static_cast<std::size_t>(c);
            bool chunk_found = false;
            ScanTiersCached(chunks[ci].first, chunks[ci].second, lo_bound,
                            hi_bound, ctx, excluded,
                            argmax_bounds_.data() + ci * seed_stride,
                            &chunk_best[ci], &chunk_found,
                            &chunk_stats[ci]);
            chunk_have[ci] = chunk_found ? 1 : 0;
          });
      for (std::size_t ci = 0; ci < num_chunks; ++ci) {
        // Chunk workers never touch rounds/fallback, so Add folds in
        // exactly the per-chunk scan counters.
        local.Add(chunk_stats[ci]);
        if (!chunk_have[ci]) continue;
        const Candidate& cb = chunk_best[ci];
        if (!have || cb.loss > best.loss) {
          best = cb;
          have = true;
        }
      }
    }
  } else {
    // -------------------------------------------------------------------
    // Uncached paths: per-round full pre-pass (prune) or exhaustive scan.
    // -------------------------------------------------------------------
    if (prune) {
      ctx = BoundCtx::Make(n_, sum_k_, sum_k2_, sum_kr_);
      if (!domain_ok) ctx.usable = false;
      if (!ctx.usable) {
        // Bound arithmetic not provably admissible on these aggregates:
        // fall back to the exhaustive scan so the result stays exact.
        prune = false;
        local.fallback_rounds = 1;
      }
    }
    const BoundCtx* bound_ctx = prune ? &ctx : nullptr;

    // The materialized paths pay one O(G) traversal into the engine-owned
    // scratch (no per-round allocation once the capacity plateaus); the
    // plain serial exhaustive scan keeps the original zero-materialization
    // loop.
    const bool parallel =
        pool != nullptr && pool->num_threads() > 1 &&
        gaps_.size() > kArgmaxChunkGaps;
    if (parallel || prune) {
      auto& ranges = PrepareScratch(&argmax_ranges_,
                                    static_cast<std::size_t>(gaps_.size()));
      ForEachGap(interior_only, [this, &ranges](Key lo, Key hi, Rank count_less,
                                                Int128 prefix_sum) {
        ranges.push_back(GapRange{lo, hi, count_less, sum_k_ - prefix_sum});
      });
      const std::size_t m = ranges.size();
      if (prune) {
        EnsureScratchSize(&argmax_bounds_, m, &scratch_reallocs_);
        EnsureScratchSize(&argmax_suffix_max_, m, &scratch_reallocs_);
        EnsureScratchSize(&argmax_suffix_cnt_, m, &scratch_reallocs_);
        EnsureScratchSize(&argmax_order_, m, &scratch_reallocs_);
      }
      if (parallel) {
        // Fixed-size chunks reduced in chunk (= key) order with a strict >
        // comparison: bit-identical to the serial scan for every thread
        // count. With pruning on, each chunk runs the pruned pipeline
        // against its chunk-local best — per-chunk bound filtering — which
        // only depends on the chunk's own content, so the counters are
        // thread-count independent too (but differ from the serial scan's,
        // whose single running best prunes across the whole range).
        const std::int64_t num_chunks =
            (static_cast<std::int64_t>(m) + kArgmaxChunkGaps - 1) /
            kArgmaxChunkGaps;
        std::vector<Candidate> chunk_best(static_cast<std::size_t>(num_chunks));
        std::vector<char> chunk_have(static_cast<std::size_t>(num_chunks), 0);
        std::vector<ArgmaxStats> chunk_stats(
            static_cast<std::size_t>(num_chunks));
        pool->ParallelFor(num_chunks, [this, excluded, m, bound_ctx, &argmax,
                                       &chunk_best, &chunk_have,
                                       &chunk_stats](std::int64_t c) {
          const std::size_t first = static_cast<std::size_t>(c) *
                                    static_cast<std::size_t>(kArgmaxChunkGaps);
          const std::size_t end = std::min(
              m, first + static_cast<std::size_t>(kArgmaxChunkGaps));
          bool chunk_found = false;
          ScanGapRanges(first, end, argmax.top_k, bound_ctx, excluded,
                        &chunk_best[static_cast<std::size_t>(c)], &chunk_found,
                        &chunk_stats[static_cast<std::size_t>(c)]);
          chunk_have[static_cast<std::size_t>(c)] = chunk_found ? 1 : 0;
        });
        for (std::int64_t c = 0; c < num_chunks; ++c) {
          const auto ci = static_cast<std::size_t>(c);
          local.Add(chunk_stats[ci]);
          if (!chunk_have[ci]) continue;
          const Candidate& cb = chunk_best[ci];
          if (!have || cb.loss > best.loss) {
            best = cb;
            have = true;
          }
        }
      } else {
        ScanGapRanges(0, m, argmax.top_k, bound_ctx, excluded, &best, &have,
                      &local);
      }
    } else {
      ForEachGap(interior_only,
                 [this, excluded, &best, &have, &local](
                     Key lo, Key hi, Rank count_less, Int128 prefix_sum) {
                   const Int128 suffix = sum_k_ - prefix_sum;
                   auto consider = [&](Key kp) {
                     if (excluded != nullptr && excluded->count(kp) != 0) {
                       return;
                     }
                     const long double loss =
                         LossWithInsertion(kp, count_less, suffix);
                     ++local.exact_evals;
                     if (!have || loss > best.loss) {
                       best.key = kp;
                       best.loss = loss;
                       have = true;
                     }
                   };
                   consider(lo);
                   if (hi != lo) consider(hi);
                 });
    }
  }
  if (stats != nullptr) stats->Add(local);
  if (!have) {
    return Status::ResourceExhausted(
        "no unoccupied candidate keys in the poisoning range");
  }
  return best;
}

Key LossLandscape::SecondMinKey() const {
  const Key a = base_keys_.front();
  if (inserted_.empty()) return base_keys_[1];
  const Key b = inserted_.front();
  if (b < a) {
    return inserted_.size() > 1 ? std::min(a, inserted_[1]) : a;
  }
  return base_keys_.size() > 1 ? std::min(b, base_keys_[1]) : b;
}

Key LossLandscape::SecondMaxKey() const {
  const Key a = base_keys_.back();
  if (inserted_.empty()) return base_keys_[base_keys_.size() - 2];
  const Key b = inserted_.back();
  if (b > a) {
    return inserted_.size() > 1
               ? std::max(a, inserted_[inserted_.size() - 2])
               : a;
  }
  return base_keys_.size() > 1
             ? std::max(b, base_keys_[base_keys_.size() - 2])
             : b;
}

LossLandscape::Aggregates LossLandscape::aggregates() const {
  Aggregates agg;
  agg.n = n_;
  agg.shift = shift_;
  agg.sum_k = sum_k_;
  agg.sum_k2 = sum_k2_;
  agg.sum_kr = sum_kr_;
  return agg;
}

long double LossLandscape::Aggregates::Loss() const {
  return LossFromSums(n, sum_k, sum_k2, SumRanks(n), SumRankSquares(n),
                      sum_kr);
}

long double LossLandscape::Aggregates::LossAfterInsert(
    Key kp, Rank count_less, Int128 suffix_sum) const {
  const std::int64_t n1 = n + 1;
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  return LossFromSums(n1, sum_k + kp_s, sum_k2 + kp_s * kp_s, SumRanks(n1),
                      SumRankSquares(n1),
                      sum_kr + suffix_sum + kp_s * (count_less + 1));
}

void LossLandscape::Aggregates::Insert(Key kp, Rank count_less,
                                       Int128 suffix_sum) {
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  sum_kr += suffix_sum + kp_s * (count_less + 1);
  sum_k += kp_s;
  sum_k2 += kp_s * kp_s;
  n += 1;
}

void LossLandscape::Aggregates::Remove(Key kp, Rank count_less,
                                       Int128 suffix_sum_above) {
  const Int128 kp_s = static_cast<Int128>(kp) - shift;
  sum_kr -= suffix_sum_above + kp_s * (count_less + 1);
  sum_k -= kp_s;
  sum_k2 -= kp_s * kp_s;
  n -= 1;
}

}  // namespace lispoison
