#include "attack/loss_landscape.h"

#include <algorithm>
#include <string>

namespace lispoison {
namespace {

/// Theorem 1 loss from exact (n^2-scaled) aggregate numerators:
/// L = [VarY_n - CovXY_n^2 / VarX_n] / n^2 where *_n = n^2 * moment.
long double LossFromSums(std::int64_t n, Int128 sum_x, Int128 sum_x2,
                         Int128 sum_y, Int128 sum_y2, Int128 sum_xy) {
  const Int128 nn = static_cast<Int128>(n);
  const Int128 var_x_n = nn * sum_x2 - sum_x * sum_x;
  const Int128 var_y_n = nn * sum_y2 - sum_y * sum_y;
  const Int128 cov_n = nn * sum_xy - sum_x * sum_y;
  const long double n2 = static_cast<long double>(n) *
                         static_cast<long double>(n);
  if (var_x_n <= 0) {
    // All keys identical: the regression degenerates to a constant.
    long double loss = ToLongDouble(var_y_n) / n2;
    return loss < 0 ? 0 : loss;
  }
  const long double cov = ToLongDouble(cov_n);
  long double loss =
      (ToLongDouble(var_y_n) - cov * cov / ToLongDouble(var_x_n)) / n2;
  return loss < 0 ? 0 : loss;
}

}  // namespace

Result<LossLandscape> LossLandscape::Create(const KeySet& keyset) {
  if (keyset.empty()) {
    return Status::InvalidArgument(
        "loss landscape requires a non-empty keyset");
  }
  LossLandscape ll;
  ll.keys_ = keyset.keys();
  ll.domain_ = keyset.domain();
  ll.n_ = keyset.size();
  ll.shift_ = ll.keys_.front();
  ll.suffix_key_sum_.assign(static_cast<std::size_t>(ll.n_) + 1, 0);
  for (std::int64_t i = ll.n_ - 1; i >= 0; --i) {
    const Int128 shifted =
        static_cast<Int128>(ll.keys_[static_cast<std::size_t>(i)]) -
        ll.shift_;
    ll.suffix_key_sum_[static_cast<std::size_t>(i)] =
        ll.suffix_key_sum_[static_cast<std::size_t>(i) + 1] + shifted;
    ll.sum_k_ += shifted;
    ll.sum_k2_ += shifted * shifted;
    ll.sum_kr_ += shifted * (i + 1);
  }
  // Base (unpoisoned) loss over ranks 1..n.
  const Int128 n = ll.n_;
  const Int128 sum_r = n * (n + 1) / 2;
  const Int128 sum_r2 = n * (n + 1) * (2 * n + 1) / 6;
  ll.base_loss_ =
      LossFromSums(ll.n_, ll.sum_k_, ll.sum_k2_, sum_r, sum_r2, ll.sum_kr_);
  return ll;
}

long double LossLandscape::LossWithInsertion(Key kp, Rank count_less) const {
  const std::int64_t n1 = n_ + 1;
  const Int128 kp_s = static_cast<Int128>(kp) - shift_;
  const Int128 sum_x = sum_k_ + kp_s;
  const Int128 sum_x2 = sum_k2_ + kp_s * kp_s;
  // Every legitimate key above kp gains one rank, adding its (shifted)
  // value once to sum(XY); kp itself enters with rank count_less + 1.
  const Int128 sum_xy =
      sum_kr_ + suffix_key_sum_[static_cast<std::size_t>(count_less)] +
      kp_s * (count_less + 1);
  const Int128 m = n1;
  const Int128 sum_y = m * (m + 1) / 2;
  const Int128 sum_y2 = m * (m + 1) * (2 * m + 1) / 6;
  return LossFromSums(n1, sum_x, sum_x2, sum_y, sum_y2, sum_xy);
}

Result<long double> LossLandscape::LossAt(Key kp) const {
  if (!domain_.Contains(kp)) {
    return Status::OutOfRange("poisoning key " + std::to_string(kp) +
                              " outside the key domain");
  }
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), kp);
  if (it != keys_.end() && *it == kp) {
    return Status::InvalidArgument("poisoning key " + std::to_string(kp) +
                                   " is already occupied");
  }
  const Rank count_less = static_cast<Rank>(it - keys_.begin());
  return LossWithInsertion(kp, count_less);
}

std::vector<Key> LossLandscape::GapEndpoints(bool interior_only) const {
  std::vector<Key> endpoints;
  const Key lo = interior_only ? keys_.front() + 1 : domain_.lo;
  const Key hi = interior_only ? keys_.back() - 1 : domain_.hi;
  if (lo > hi) return endpoints;

  // Walk the gaps between consecutive legitimate keys intersected with
  // [lo, hi]; emit each gap's first and last unoccupied key.
  auto add_gap = [&endpoints](Key gap_lo, Key gap_hi) {
    if (gap_lo > gap_hi) return;
    endpoints.push_back(gap_lo);
    if (gap_hi != gap_lo) endpoints.push_back(gap_hi);
  };
  Key cursor = lo;
  for (const Key k : keys_) {
    if (k > hi) break;
    if (k < cursor) continue;
    add_gap(cursor, k - 1);
    cursor = k + 1;
  }
  if (cursor <= hi) add_gap(cursor, hi);
  return endpoints;
}

std::vector<std::pair<Key, long double>> LossLandscape::Sweep(
    bool interior_only) const {
  std::vector<std::pair<Key, long double>> out;
  const Key lo = interior_only ? keys_.front() + 1 : domain_.lo;
  const Key hi = interior_only ? keys_.back() - 1 : domain_.hi;
  if (lo > hi) return out;
  out.reserve(static_cast<std::size_t>(hi - lo + 1));
  auto next_key = std::lower_bound(keys_.begin(), keys_.end(), lo);
  Rank count_less = static_cast<Rank>(next_key - keys_.begin());
  for (Key kp = lo; kp <= hi; ++kp) {
    if (next_key != keys_.end() && *next_key == kp) {
      ++next_key;
      ++count_less;
      continue;  // Occupied: the paper's ⊥.
    }
    out.emplace_back(kp, LossWithInsertion(kp, count_less));
  }
  return out;
}

Result<LossLandscape::Candidate> LossLandscape::FindOptimal(
    bool interior_only) const {
  const std::vector<Key> endpoints = GapEndpoints(interior_only);
  if (endpoints.empty()) {
    return Status::ResourceExhausted(
        "no unoccupied candidate keys in the poisoning range");
  }
  Candidate best;
  bool have = false;
  auto next_key = keys_.begin();
  for (const Key kp : endpoints) {
    next_key = std::lower_bound(next_key, keys_.end(), kp);
    const Rank count_less = static_cast<Rank>(next_key - keys_.begin());
    const long double loss = LossWithInsertion(kp, count_less);
    if (!have || loss > best.loss) {
      best.key = kp;
      best.loss = loss;
      have = true;
    }
  }
  return best;
}

}  // namespace lispoison
