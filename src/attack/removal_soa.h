// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Block-local structure-of-arrays view of the current keys for the
// removal argmax (the §V deletion/modification attacks). The flat
// predecessor kept one sorted key array plus one global int64 suffix
// key-sum array, which made every InsertKey/RemoveKey commit pay an
// O(n) maintenance pass (all suffix sums below the key shift by its
// value) — fine at n=100k, a cliff at n=10M. Here the candidates live
// in ~sqrt(n)-sized blocks, each carrying *block-local* suffix sums
// plus two tier-relative directory scalars:
//
//   count_before — candidates stored in earlier blocks, and
//   sum_after    — shifted key-sum of all later blocks,
//
// so the global view is reconstructed exactly in O(1) per candidate:
//
//   rank(b, j)   = count_before(b) + j + 1
//   suffix(b, j) = sa_local(b)[j] + sum_after(b)
//
// Both identities are exact int64 under the landscape's magnitude
// guard (every partial sum is bounded by the full suffix sum, which
// the guard keeps below 2^63), so every loss computed through a block
// is bit-identical to the flat layout's. A commit now touches one
// block's arrays (O(sqrt(n)) slots) plus one directory scalar per
// block (O(sqrt(n)) blocks) instead of O(n) suffix entries; blocks
// split at 2x the build target and merge below 1/4 of the cap, the
// same occupancy discipline as TieredGaps. touched_slots() counts the
// maintenance work per commit, which the 10M bench gate asserts grows
// ~sqrt(n), not n.
//
// The scan side consumes blocks directly: the removal argmax computes
// one admissible chord bound per block from its exact endpoint records
// and re-scores only surviving blocks per key, so the block layout is
// simultaneously the commit structure and the bound tier structure
// ("tier-relative" in the ROADMAP's sense).

#ifndef LISPOISON_ATTACK_REMOVAL_SOA_H_
#define LISPOISON_ATTACK_REMOVAL_SOA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace lispoison {

/// \brief Sorted current keys in ~sqrt(n) blocks with block-local
/// suffix key-sums and tier-relative rank/suffix directory scalars.
/// Built lazily by the removal argmax, maintained incrementally by the
/// landscape's commits in O(sqrt(n)) touched slots each.
class RemovalSoa {
 public:
  struct Block {
    std::vector<Key> keys;  ///< Sorted slice of the current keys.
    /// Shifted suffix key-sums *within this block*:
    /// sa_local[j] = sum over i > j of (keys[i] - shift). Empty when
    /// the SoA is keys-only (wide-domain fallback mode).
    std::vector<std::int64_t> sa_local;
    std::int64_t count_before = 0;  ///< Keys stored in earlier blocks.
    std::int64_t sum_after = 0;     ///< Shifted key-sum of later blocks.
  };

  /// \brief Drops everything; built() becomes false.
  void Clear();

  /// \name Bulk build (sorted append). StartBuild sizes the block
  /// geometry from \p expected_n; AppendSorted must be called in
  /// non-decreasing key order; FinishBuild computes the per-block
  /// suffix sums and the directory scalars.
  /// @{
  void StartBuild(std::int64_t expected_n, bool with_sa, Key shift);
  void AppendSorted(Key k);
  void FinishBuild();
  /// @}

  bool built() const { return built_; }
  bool with_sa() const { return with_sa_; }
  Key shift() const { return shift_; }
  std::int64_t size() const { return total_; }
  std::size_t block_count() const { return blocks_.size(); }
  const Block& block(std::size_t b) const { return blocks_[b]; }
  /// \brief Hard per-block occupancy cap (blocks split beyond it); the
  /// scan sizes its per-chunk key-staging slices from this.
  std::int64_t block_cap() const { return cap_; }

  /// \brief Commits the insertion of key \p k with shifted value \p x
  /// (x is ignored in keys-only mode): O(block + directory) slot
  /// updates, then a split if the block outgrew the cap.
  void Insert(Key k, std::int64_t x);

  /// \brief Commits the removal of the stored key \p k (shifted value
  /// \p x): the exact dual of Insert, with an underflow merge.
  void Remove(Key k, std::int64_t x);

  /// \brief Block containing global candidate index \p idx (binary
  /// search on count_before). Requires 0 <= idx < size().
  std::size_t BlockOfIndex(std::int64_t idx) const;

  /// \brief Appends the current keys (and, when with_sa(), the global
  /// suffix sums) in index order — the flat view, used by differential
  /// tests to compare against the block-local reconstruction.
  void FlattenTo(std::vector<Key>* keys, std::vector<std::int64_t>* sa) const;

  /// \name Maintenance telemetry: cumulative slots touched by
  /// Insert/Remove commits (block array moves + directory updates +
  /// rebalance copies) and the commit count — the pair behind the
  /// sublinearity gate's per-commit cost.
  /// @{
  std::int64_t touched_slots() const { return touched_slots_; }
  std::int64_t commits() const { return commits_; }
  /// @}

 private:
  std::size_t FindBlock(Key k) const;
  void SplitIfNeeded(std::size_t b);
  void MergeIfUnderflow(std::size_t b);

  std::vector<Block> blocks_;
  std::int64_t total_ = 0;
  std::int64_t target_ = 0;  ///< Build-time block size (~sqrt(n)).
  std::int64_t cap_ = 0;     ///< Split threshold (2 * target_).
  Key shift_ = 0;
  bool with_sa_ = false;
  bool built_ = false;
  std::int64_t touched_slots_ = 0;
  std::int64_t commits_ = 0;
};

}  // namespace lispoison

#endif  // LISPOISON_ATTACK_REMOVAL_SOA_H_
