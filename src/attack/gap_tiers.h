// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// TieredGaps: the two-level gap decomposition behind LossLandscape.
//
// The flat std::vector<Gap> layout paid an O(G) splice on every
// InsertKey (a ROADMAP item since PR 1). Here gaps live in tiers of
// ~sqrt(G) consecutive gaps: a splice shifts only the tail of one tier
// plus the tier directory, so InsertKey's gap work drops to O(sqrt(G))
// while iteration stays two nested linear loops over contiguous arrays
// — cache-friendly for the chunked parallel argmax scan.
//
// Each gap record carries the *exact* number of current keys strictly
// below its first unoccupied key and their shifted prefix sum, stored
// tier-relative: an insertion bumps the records after the split point
// inside its own tier eagerly and every later tier through an O(1)
// per-tier (delta_cnt, delta_sum) pair, so absolute values stay an O(1)
// read at scan time and no traversal of an insertion overlay is needed.
//
// The tier's key range plus its first gap's exact (cnt, sum) give the
// incremental argmax an O(1) per-tier admissible bound on the Theorem 1
// loss over every candidate the tier contains (a left-tangent bound on
// the covariance, which is piecewise linear with non-decreasing slopes
// along the candidate axis) — the filter that replaces the O(G)
// per-round bound pre-pass (see LossLandscape::FindOptimal).

#ifndef LISPOISON_ATTACK_GAP_TIERS_H_
#define LISPOISON_ATTACK_GAP_TIERS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace lispoison {

/// \brief Two-level (tiered) decomposition of the unoccupied key domain
/// into maximal gaps, with O(sqrt(G)) splices and per-tier aggregate
/// boxes for the incremental argmax.
class TieredGaps {
 public:
  /// One maximal run [lo, hi] of unoccupied keys. cnt/sum describe the
  /// current keys strictly below lo (count and shifted key-sum),
  /// *relative* to the owning tier's pending deltas.
  struct GapRec {
    Key lo = 0;
    Key hi = 0;
    Rank cnt = 0;
    Int128 sum = 0;
  };

  /// A run of consecutive gaps in key order. delta_cnt/delta_sum are
  /// pending additions to every member gap's cnt/sum (lazily applied
  /// splice bookkeeping).
  struct Tier {
    std::vector<GapRec> gaps;
    Key lo = 0;        ///< == gaps.front().lo
    Key hi = 0;        ///< == gaps.back().hi
    Rank delta_cnt = 0;
    Int128 delta_sum = 0;
  };

  /// \brief Rebuilds the structure from \p gaps (sorted, disjoint, with
  /// absolute cnt/sum).
  void Build(std::vector<GapRec> gaps);

  std::int64_t size() const { return total_gaps_; }
  bool empty() const { return total_gaps_ == 0; }
  std::size_t num_tiers() const { return tiers_.size(); }
  const std::vector<Tier>& tiers() const { return tiers_; }

  /// \brief Gap records moved by splices (within-tier shifts, tier-half
  /// copies) plus tier-directory entries shifted, cumulative. The
  /// stateful property harness asserts this stays O(sqrt(G)) per insert.
  std::int64_t splice_moves() const { return splice_moves_; }

  /// \brief Maximum gaps per tier before a tier splits (~2 sqrt of the
  /// build-time gap count).
  std::int64_t tier_cap() const { return tier_cap_; }

  /// \brief Finds the gap containing \p kp. Returns false when kp is
  /// occupied or outside every gap.
  bool Locate(Key kp, std::size_t* tier_idx, std::size_t* gap_idx) const;

  /// \brief Splits the gap (\p tier_idx, \p gap_idx) — which must
  /// contain \p kp — around the newly occupied kp, and folds the key
  /// (shifted value \p kp_s) into the cnt/sum bookkeeping of every gap
  /// above it: eagerly within the tier, lazily (deltas) for later
  /// tiers.
  void SplitAt(std::size_t tier_idx, std::size_t gap_idx, Key kp,
               Int128 kp_s);

  /// \brief The exact dual of SplitAt: key \p kp — which must be
  /// occupied, i.e. inside no gap — becomes unoccupied. Merges kp into
  /// its adjacent gap(s): two neighbours collapse into one record
  /// (possibly across a tier boundary), a single neighbour extends, and
  /// an isolated removal inserts a fresh single-key gap whose exact
  /// bookkeeping comes from \p abs_cnt / \p abs_sum (count and shifted
  /// key-sum of the keys strictly below kp *after* the removal). Every
  /// gap above kp loses kp from its cnt/sum — eager within the touched
  /// tier, lazy deltas afterwards — and a tier whose gap count
  /// underflows tier_cap()/4 is re-balanced into a neighbour (splitting
  /// again if the merge overflows the 2x cap), mirroring the split
  /// rule. O(sqrt(G)) splice work, accounted in splice_moves().
  void MergeAt(Key kp, Int128 kp_s, Rank abs_cnt, Int128 abs_sum);

  /// \brief Visits every gap intersected with [lo_bound, hi_bound] in
  /// increasing key order as f(lo, hi, cnt, sum) with *absolute* cnt/sum
  /// (keys strictly below the gap; identical for every candidate inside
  /// it). O(1) per visited gap after an O(log T) start.
  template <typename F>
  void ForEachInRange(Key lo_bound, Key hi_bound, F&& f) const {
    if (lo_bound > hi_bound) return;
    // First tier whose coverage ends at or after lo_bound.
    std::size_t ti = FirstTierNotBelow(lo_bound);
    for (; ti < tiers_.size(); ++ti) {
      const Tier& t = tiers_[ti];
      if (t.lo > hi_bound) break;
      for (const GapRec& g : t.gaps) {
        if (g.hi < lo_bound) continue;
        if (g.lo > hi_bound) return;
        const Key lo = g.lo < lo_bound ? lo_bound : g.lo;
        const Key hi = g.hi > hi_bound ? hi_bound : g.hi;
        f(lo, hi, g.cnt + t.delta_cnt, g.sum + t.delta_sum);
      }
    }
  }

  /// \brief Index of the first tier with hi >= \p key (== num_tiers()
  /// when none).
  std::size_t FirstTierNotBelow(Key key) const;

 private:
  void RecountTier(Tier* t) const;
  void SplitTier(std::size_t tier_idx);
  void EraseTier(std::size_t tier_idx);
  void RebalanceUnderflow(std::size_t tier_idx);

  std::vector<Tier> tiers_;
  std::int64_t total_gaps_ = 0;
  std::int64_t tier_cap_ = 16;
  std::int64_t splice_moves_ = 0;
};

}  // namespace lispoison

#endif  // LISPOISON_ATTACK_GAP_TIERS_H_
