// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Algorithm 1 — GREEDYPOISONINGREGRESSIONCDF: multi-point poisoning of a
// linear regression on a CDF. Each round runs the optimal single-point
// attack on the keyset augmented with the poisoning keys chosen so far
// and commits the locally optimal insertion.

#ifndef LISPOISON_ATTACK_GREEDY_POISONER_H_
#define LISPOISON_ATTACK_GREEDY_POISONER_H_

#include <string>
#include <vector>

#include "attack/loss_landscape.h"
#include "attack/single_point.h"
#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Result of the greedy multi-point attack (Algorithm 1).
struct GreedyPoisonResult {
  /// Poisoning keys P in insertion order; |P| equals the requested p.
  std::vector<Key> poison_keys;
  /// Loss of the regression trained on K alone.
  long double base_loss = 0;
  /// Loss of the regression trained on K ∪ P (ranks over n + p keys).
  long double poisoned_loss = 0;
  /// Loss after each individual insertion (size p); poisoned_loss is its
  /// back(). Exposes the per-round marginal gains for the ablation bench.
  std::vector<long double> loss_trajectory;
  /// Argmax work counters summed over all rounds (exact evaluations,
  /// bound scores, pruned gaps) — the measurable win of
  /// AttackOptions::prune_argmax, surfaced by bench_attack_throughput.
  LossLandscape::ArgmaxStats argmax_stats;

  /// \brief The paper's evaluation metric: poisoned MSE / clean MSE.
  double RatioLoss() const { return SafeRatioLoss(poisoned_loss, base_loss); }
};

/// \brief Runs Algorithm 1: inserts \p p poisoning keys greedily, each
/// round choosing the unoccupied gap-endpoint key that maximizes the
/// retrained loss.
///
/// Implemented on the incremental LossLandscape engine: the landscape is
/// built once and each committed poison updates it in place (O(sqrt(G))
/// tiered gap splice), so a round costs at most O(G) candidate
/// evaluations (G = current gap count) with no per-round
/// KeySet/landscape reconstruction. With AttackOptions::num_threads !=
/// 1 the per-round argmax scan fans out over chunked gap ranges on a
/// ThreadPool with a fixed-order reduction; with
/// AttackOptions::prune_argmax (the default) each scan runs the
/// branch-and-bound pruned pipeline (admissible upper bounds, early
/// exit), and with AttackOptions::cache_argmax (the default) the
/// pipeline runs tiered — one range bound per gap tier, per-gap
/// re-scoring only inside surviving tiers — dropping per-round bound
/// work to O(sqrt(G) + survivors). Selects bit-identical poison
/// sequences to GreedyPoisonCdfReference for every thread count,
/// pruning, and cache setting.
///
/// Fails with InvalidArgument for empty keysets or p < 1, and with
/// ResourceExhausted if the allowed range runs out of unoccupied keys
/// before p insertions (the caller's budget exceeds the domain).
Result<GreedyPoisonResult> GreedyPoisonCdf(const KeySet& keyset,
                                           std::int64_t p,
                                           const AttackOptions& options = {});

/// \brief Checkpointing policy for multi-hour greedy runs at n=10M /
/// p=10^6 scale.
struct GreedyCheckpointOptions {
  /// Snapshot file (common/snapshot.h container). Empty disables
  /// checkpointing entirely.
  std::string path;
  /// Write a checkpoint after every this many committed insertions (the
  /// final state is always written). Each write is atomic, so a kill
  /// mid-write leaves the previous checkpoint intact.
  std::int64_t every = 4096;
  /// Testing hook: once this many total insertions are committed (and
  /// checkpointed), stop and return FailedPrecondition — the CI
  /// kill-and-resume gate uses it as a deterministic "crash" point.
  /// Negative disables.
  std::int64_t halt_after = -1;
};

/// \brief GreedyPoisonCdf with checkpoint/restart: periodically writes
/// the committed poison sequence (plus the keyset fingerprint and the
/// landscape's exact aggregate state for integrity) to
/// \p ckpt.path, and — when that file already exists — resumes from it
/// instead of recomputing.
///
/// Resume replays the checkpointed insertions through the incremental
/// landscape (exact integer commits, O(r * (log n + sqrt(G))) total),
/// recovering bit-for-bit the engine state the interrupted run held, and
/// verifies the recovered Int128 aggregates against the checkpointed
/// ones before continuing; the completed run's poison sequence and loss
/// trajectory are bit-identical to an uninterrupted run's
/// (tests/snapshot_checkpoint_test.cc pins this, as does the CI
/// kill-and-resume smoke gate). Fails with FailedPrecondition when the
/// checkpoint belongs to a different keyset or attack shape.
Result<GreedyPoisonResult> GreedyPoisonCdfCheckpointed(
    const KeySet& keyset, std::int64_t p, const AttackOptions& options,
    const GreedyCheckpointOptions& ckpt);

/// \brief The pre-refactor rebuild-per-round implementation of
/// Algorithm 1: every round re-creates the KeySet and LossLandscape from
/// scratch (O(p * n) total). Kept as the differential-testing oracle and
/// the baseline of bench_attack_throughput; do not use on hot paths.
Result<GreedyPoisonResult> GreedyPoisonCdfReference(
    const KeySet& keyset, std::int64_t p, const AttackOptions& options = {});

/// \brief Convenience: returns keyset ∪ poison_keys as a new KeySet.
Result<KeySet> ApplyPoison(const KeySet& keyset,
                           const std::vector<Key>& poison_keys);

}  // namespace lispoison

#endif  // LISPOISON_ATTACK_GREEDY_POISONER_H_
