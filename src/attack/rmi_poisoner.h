// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Algorithm 2 — GREEDYPOISONINGRMI: poisoning the two-stage recursive
// model index. The attack decomposes into (1) the volume-allocation
// problem — how many poisoning keys each second-stage model receives —
// solved greedily through CHANGELOSS key-exchanges between neighbouring
// models, and (2) the key-allocation problem — which keys to inject into
// a given model — solved by Algorithm 1 (greedy single-point insertions).

#ifndef LISPOISON_ATTACK_RMI_POISONER_H_
#define LISPOISON_ATTACK_RMI_POISONER_H_

#include <vector>

#include "attack/single_point.h"
#include "common/status.h"
#include "common/types.h"
#include "data/keyset.h"

namespace lispoison {

/// \brief Configuration of the RMI poisoning attack.
struct RmiAttackOptions {
  /// Overall poisoning percentage φ as a fraction (0.10 = the paper's
  /// 10%); the total budget is floor(φ * n) keys.
  double poison_fraction = 0.10;

  /// Number of second-stage models N. If <= 0, derived from model_size.
  std::int64_t num_models = 0;

  /// Keys per second-stage model ("Model Size"); used when
  /// num_models <= 0.
  std::int64_t model_size = 1000;

  /// Per-model poisoning threshold multiplier α: no model may hold more
  /// than t = ceil(α * φ * n / N) poisoning keys. The paper evaluates
  /// α ∈ {2, 3}.
  double alpha = 3.0;

  /// Termination bound ε on the improvement of L_RMI per greedy exchange.
  long double epsilon = 1e-9;

  /// Safety cap on the number of applied exchanges. 0 means the default
  /// of 16 * N; a negative value disables the greedy volume
  /// re-allocation entirely (initial uniform allocation only), which the
  /// ablation bench uses to quantify the value of the exchanges.
  std::int64_t max_exchanges = 0;

  /// Poisoning keys stay strictly inside each model's key span.
  bool interior_only = true;

  /// Worker threads for the parallel phases: clean-baseline fitting, the
  /// initial per-model volume allocation, and the CHANGELOSS exchange
  /// simulations. 0 means one per hardware thread; 1 runs fully inline.
  /// The result is identical for every value: parallel tasks write to
  /// disjoint slots and every decision reduces over them in fixed order.
  int num_threads = 0;

  /// Branch-and-bound pruning of every per-model greedy argmax (the
  /// key-allocation inner loop); bit-identical results either way. See
  /// AttackOptions::prune_argmax.
  bool prune_argmax = true;

  /// Tiered incremental pre-pass for every per-model landscape;
  /// bit-identical results either way. See AttackOptions::cache_argmax.
  bool cache_argmax = true;

  /// Per-scan exact re-check budget when pruning. See
  /// AttackOptions::argmax_top_k.
  std::int64_t argmax_top_k = 16;
};

/// \brief Outcome of the RMI attack with everything the Fig. 6 / Fig. 7
/// evaluation needs.
struct RmiAttackResult {
  /// Poisoning keys assigned to each second-stage model (insertion
  /// order); sum of sizes equals the total budget.
  std::vector<std::vector<Key>> per_model_poison;

  /// Per-model MSE of the unpoisoned RMI (N models over K).
  std::vector<long double> clean_losses;

  /// Per-model MSE after the attack (attacker's model states: the same
  /// legitimate partitions plus their poisons, up to the boundary-key
  /// exchanges).
  std::vector<long double> poisoned_losses;

  /// Per-model Ratio Loss — the boxplot series in Figs. 6 and 7.
  std::vector<double> per_model_ratio;

  /// L_RMI before/after (mean of per-model losses) and their ratio — the
  /// black horizontal line in the paper's figures.
  long double clean_rmi_loss = 0;
  long double poisoned_rmi_loss = 0;
  double rmi_ratio_loss = 0;

  /// Victim-side validation: L_RMI of an RMI retrained from scratch on
  /// K ∪ P with the victim's own equal-size re-partitioning. Confirms
  /// that the attacker's bookkeeping transfers to the deployed index.
  long double retrained_rmi_loss = 0;
  double retrained_rmi_ratio = 0;

  /// Number of greedy CHANGELOSS exchanges applied.
  std::int64_t exchanges_applied = 0;

  /// Argmax work counters summed over every per-model greedy insertion
  /// (the key-allocation loops, including re-insertions after applied
  /// exchanges) — the measurable win of RmiAttackOptions::prune_argmax.
  LossLandscape::ArgmaxStats argmax_stats;

  /// Total poisoning keys placed (= floor(φn) unless the domain
  /// saturated, which is reported as an error instead).
  std::int64_t total_poison_keys = 0;

  /// \brief Flattened poison keys across models.
  std::vector<Key> AllPoisonKeys() const;
};

/// \brief Runs Algorithm 2 against \p keyset.
///
/// Each second-stage model keeps a persistent incremental LossLandscape,
/// so greedy insertions never re-sort or retrain the model from scratch,
/// and CHANGELOSS exchanges are simulated on O(1) aggregate snapshots.
/// The embarrassingly parallel phases fan out over
/// RmiAttackOptions::num_threads workers with a thread-count-independent
/// result.
///
/// Fails with InvalidArgument on an empty keyset, non-positive budget or
/// malformed options, and ResourceExhausted when the key domain cannot
/// absorb the requested budget.
Result<RmiAttackResult> PoisonRmi(const KeySet& keyset,
                                  const RmiAttackOptions& options);

/// \brief The pre-refactor implementation: copy + sort + retrain every
/// second-stage model inside every greedy insertion and exchange
/// simulation, single-threaded. Kept as the differential-testing oracle
/// and the baseline of bench_attack_throughput; do not use on hot paths.
Result<RmiAttackResult> PoisonRmiReference(const KeySet& keyset,
                                           const RmiAttackOptions& options);

}  // namespace lispoison

#endif  // LISPOISON_ATTACK_RMI_POISONER_H_
