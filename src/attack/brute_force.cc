#include "attack/brute_force.h"

#include <algorithm>
#include <string>

#include "common/stats.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

/// Recomputes the minimized loss of the regression on `keys` (sorted,
/// unique) with ranks 1..n, from scratch.
long double LossOfSortedKeys(const std::vector<Key>& keys) {
  MomentAccumulator acc;
  Rank r = 1;
  for (Key k : keys) acc.Add(k, r++);
  CdfFit fit = FitFromMoments(acc);
  return fit.mse;
}

/// Candidate poisoning keys: every unoccupied domain key, optionally
/// restricted to the interior (min(K), max(K)).
std::vector<Key> Candidates(const KeySet& keyset, bool interior_only) {
  std::vector<Key> out;
  const Key lo = interior_only ? keyset.keys().front() + 1
                               : keyset.domain().lo;
  const Key hi = interior_only ? keyset.keys().back() - 1
                               : keyset.domain().hi;
  for (Key k = lo; k <= hi; ++k) {
    if (!keyset.Contains(k)) out.push_back(k);
  }
  return out;
}

}  // namespace

Result<SinglePointResult> BruteForceSinglePoint(const KeySet& keyset,
                                                const AttackOptions& options) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot poison an empty keyset");
  }
  const std::vector<Key> candidates =
      Candidates(keyset, options.interior_only);
  if (candidates.empty()) {
    return Status::ResourceExhausted(
        "no unoccupied candidate keys in the poisoning range");
  }
  SinglePointResult best;
  best.base_loss = LossOfSortedKeys(keyset.keys());
  bool have = false;
  std::vector<Key> work = keyset.keys();
  for (const Key kp : candidates) {
    // Insert kp in sorted position, recompute everything, remove it.
    const auto pos = std::lower_bound(work.begin(), work.end(), kp);
    const auto idx = pos - work.begin();
    work.insert(pos, kp);
    const long double loss = LossOfSortedKeys(work);
    work.erase(work.begin() + idx);
    if (!have || loss > best.poisoned_loss) {
      best.poison_key = kp;
      best.poisoned_loss = loss;
      have = true;
    }
  }
  return best;
}

Result<BruteForceMultiResult> BruteForceMultiPoint(
    const KeySet& keyset, std::int64_t p, const AttackOptions& options,
    std::int64_t max_combinations) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot poison an empty keyset");
  }
  if (p < 1) return Status::InvalidArgument("p must be >= 1");
  const std::vector<Key> candidates =
      Candidates(keyset, options.interior_only);
  const std::int64_t c = static_cast<std::int64_t>(candidates.size());
  if (c < p) {
    return Status::ResourceExhausted(
        "only " + std::to_string(c) + " candidate keys available for p=" +
        std::to_string(p));
  }
  // Count combinations C(c, p) with overflow-safe early exit.
  long double combos = 1;
  for (std::int64_t i = 0; i < p; ++i) {
    combos *= static_cast<long double>(c - i) / static_cast<long double>(i + 1);
    if (combos > static_cast<long double>(max_combinations)) {
      return Status::ResourceExhausted(
          "combination count exceeds max_combinations; shrink the instance");
    }
  }

  BruteForceMultiResult best;
  best.base_loss = LossOfSortedKeys(keyset.keys());
  bool have = false;

  // Iterate all size-p index subsets of `candidates` in lexicographic
  // order using a simple odometer.
  std::vector<std::int64_t> pick(static_cast<std::size_t>(p));
  for (std::int64_t i = 0; i < p; ++i) pick[static_cast<std::size_t>(i)] = i;
  std::vector<Key> work;
  while (true) {
    work = keyset.keys();
    for (std::int64_t i = 0; i < p; ++i) {
      const Key kp = candidates[static_cast<std::size_t>(
          pick[static_cast<std::size_t>(i)])];
      work.insert(std::lower_bound(work.begin(), work.end(), kp), kp);
    }
    const long double loss = LossOfSortedKeys(work);
    if (!have || loss > best.poisoned_loss) {
      best.poisoned_loss = loss;
      best.poison_keys.clear();
      for (std::int64_t i = 0; i < p; ++i) {
        best.poison_keys.push_back(candidates[static_cast<std::size_t>(
            pick[static_cast<std::size_t>(i)])]);
      }
      have = true;
    }
    // Advance the odometer.
    std::int64_t i = p - 1;
    while (i >= 0 &&
           pick[static_cast<std::size_t>(i)] == c - p + i) {
      --i;
    }
    if (i < 0) break;
    pick[static_cast<std::size_t>(i)] += 1;
    for (std::int64_t j = i + 1; j < p; ++j) {
      pick[static_cast<std::size_t>(j)] =
          pick[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  return best;
}

}  // namespace lispoison
