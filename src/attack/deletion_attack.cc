#include "attack/deletion_attack.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>

#include "attack/loss_landscape.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

/// O(n) evaluator of the post-deletion minimized loss for every stored
/// key: mirrors LossLandscape. With keys k_1 < ... < k_n (ranks 1..n)
/// and deletion index j (0-based), the surviving aggregates are
///   sum(X)  = sum(K) - k_j
///   sum(X^2)= sum(K^2) - k_j^2
///   sum(XY) = sum_i k_i*i' where keys above k_j lose one rank:
///           = sum_i k_i*r_i - k_j*(j+1) - SuffixKeySum(j+1)
/// and ranks become a permutation of 1..n-1.
class DeletionLandscape {
 public:
  explicit DeletionLandscape(const std::vector<Key>& keys) : keys_(keys) {
    const std::int64_t n = static_cast<std::int64_t>(keys.size());
    shift_ = keys.empty() ? 0 : keys.front();
    suffix_.assign(static_cast<std::size_t>(n) + 1, 0);
    for (std::int64_t i = n - 1; i >= 0; --i) {
      const Int128 shifted =
          static_cast<Int128>(keys[static_cast<std::size_t>(i)]) - shift_;
      suffix_[static_cast<std::size_t>(i)] =
          suffix_[static_cast<std::size_t>(i) + 1] + shifted;
      sum_k_ += shifted;
      sum_k2_ += shifted * shifted;
      sum_kr_ += shifted * (i + 1);
    }
  }

  /// \brief Minimized MSE of the regression on keys with index j removed.
  long double LossWithout(std::int64_t j) const {
    const std::int64_t n1 =
        static_cast<std::int64_t>(keys_.size()) - 1;
    const Int128 kj =
        static_cast<Int128>(keys_[static_cast<std::size_t>(j)]) - shift_;
    const Int128 sum_x = sum_k_ - kj;
    const Int128 sum_x2 = sum_k2_ - kj * kj;
    const Int128 sum_xy =
        sum_kr_ - kj * (j + 1) - suffix_[static_cast<std::size_t>(j) + 1];
    const Int128 m = n1;
    const Int128 sum_y = m * (m + 1) / 2;
    const Int128 sum_y2 = m * (m + 1) * (2 * m + 1) / 6;
    const Int128 nn = m;
    const Int128 var_x_n = nn * sum_x2 - sum_x * sum_x;
    const Int128 var_y_n = nn * sum_y2 - sum_y * sum_y;
    const Int128 cov_n = nn * sum_xy - sum_x * sum_y;
    const long double n2 = static_cast<long double>(n1) *
                           static_cast<long double>(n1);
    if (var_x_n <= 0) {
      long double loss = ToLongDouble(var_y_n) / n2;
      return loss < 0 ? 0 : loss;
    }
    const long double cov = ToLongDouble(cov_n);
    long double loss =
        (ToLongDouble(var_y_n) - cov * cov / ToLongDouble(var_x_n)) / n2;
    return loss < 0 ? 0 : loss;
  }

 private:
  const std::vector<Key>& keys_;
  Key shift_ = 0;
  Int128 sum_k_ = 0;
  Int128 sum_k2_ = 0;
  Int128 sum_kr_ = 0;
  std::vector<Int128> suffix_;
};

long double LossOfSorted(const std::vector<Key>& keys) {
  if (keys.empty()) return 0;
  MomentAccumulator acc;
  Rank r = 1;
  const Key shift = keys.front();
  for (Key k : keys) acc.Add(k - shift, r++);
  return FitFromMoments(acc).mse;
}

/// Shared validation of the deletion-attack inputs.
Status ValidateDeletion(const KeySet& keyset, std::int64_t d,
                        const std::vector<Key>& deletable) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot attack an empty keyset");
  }
  if (d < 1) return Status::InvalidArgument("deletion budget must be >= 1");
  if (keyset.size() - d < 2) {
    return Status::InvalidArgument(
        "deleting " + std::to_string(d) + " of " +
        std::to_string(keyset.size()) +
        " keys leaves fewer than two points to regress on");
  }
  for (Key k : deletable) {
    if (!keyset.Contains(k)) {
      return Status::InvalidArgument(
          "deletable key " + std::to_string(k) + " is not stored");
    }
  }
  return Status::OK();
}

/// Shared validation of the modification-attack inputs.
Status ValidateModification(const KeySet& keyset, std::int64_t moves,
                            const std::vector<Key>& movable) {
  if (keyset.empty()) {
    return Status::InvalidArgument("cannot attack an empty keyset");
  }
  if (moves < 1) {
    return Status::InvalidArgument("modification budget must be >= 1");
  }
  if (keyset.size() < 4) {
    return Status::InvalidArgument(
        "modification attack needs at least four stored keys");
  }
  for (Key k : movable) {
    if (!keyset.Contains(k)) {
      return Status::InvalidArgument(
          "movable key " + std::to_string(k) + " is not stored");
    }
  }
  return Status::OK();
}

}  // namespace

Result<DeletionAttackResult> GreedyDeleteCdf(
    const KeySet& keyset, std::int64_t d, const std::vector<Key>& deletable,
    const AttackOptions& options) {
  LISPOISON_RETURN_IF_ERROR(ValidateDeletion(keyset, d, deletable));
  const bool restricted = !deletable.empty();
  std::unordered_set<Key> allowed(deletable.begin(), deletable.end());

  DeletionAttackResult result;
  // Same arithmetic path as the reference's base loss, so the two
  // results stay bit-equal end to end.
  result.base_loss = LossOfSorted(keyset.keys());

  // One landscape for the whole attack: each committed removal updates
  // the aggregates, the tiered gap decomposition (O(sqrt(G)) merge) and
  // the removal-candidate SoA in place, so the next round's argmax sees
  // the mirror-image compound rank shifts exactly.
  std::unique_ptr<ThreadPool> pool = MakeAttackPool(options);
  LISPOISON_ASSIGN_OR_RETURN(LossLandscape landscape,
                             LossLandscape::Create(keyset, pool.get()));
  const LossLandscape::ArgmaxOptions argmax = options.ArgmaxKnobs();

  for (std::int64_t round = 0; round < d; ++round) {
    auto best = landscape.FindOptimalRemoval(
        restricted ? &allowed : nullptr, pool.get(), argmax,
        &result.argmax_stats);
    if (!best.ok()) {
      return Status::ResourceExhausted(
          "no deletable key left after " + std::to_string(round) + " of " +
          std::to_string(d) + " removals");
    }
    LISPOISON_RETURN_IF_ERROR(landscape.RemoveKey(best->key));
    if (restricted) allowed.erase(best->key);
    result.removed_keys.push_back(best->key);
    result.loss_trajectory.push_back(best->loss);
  }
  result.attacked_loss = result.loss_trajectory.back();
  result.removal_commit_touched_slots =
      landscape.removal_commit_touched_slots();
  result.removal_commits = landscape.removal_commits();
  return result;
}

Result<DeletionAttackResult> GreedyDeleteCdfReference(
    const KeySet& keyset, std::int64_t d,
    const std::vector<Key>& deletable) {
  LISPOISON_RETURN_IF_ERROR(ValidateDeletion(keyset, d, deletable));
  const bool restricted = !deletable.empty();
  std::unordered_set<Key> allowed(deletable.begin(), deletable.end());

  DeletionAttackResult result;
  std::vector<Key> work = keyset.keys();
  result.base_loss = LossOfSorted(work);

  for (std::int64_t round = 0; round < d; ++round) {
    DeletionLandscape landscape(work);
    bool have = false;
    std::int64_t best_j = -1;
    long double best_loss = 0;
    for (std::int64_t j = 0;
         j < static_cast<std::int64_t>(work.size()); ++j) {
      if (restricted &&
          !allowed.count(work[static_cast<std::size_t>(j)])) {
        continue;
      }
      const long double loss = landscape.LossWithout(j);
      if (!have || loss > best_loss) {
        best_j = j;
        best_loss = loss;
        have = true;
      }
    }
    if (!have) {
      return Status::ResourceExhausted(
          "no deletable key left after " + std::to_string(round) +
          " of " + std::to_string(d) + " removals");
    }
    result.removed_keys.push_back(work[static_cast<std::size_t>(best_j)]);
    allowed.erase(work[static_cast<std::size_t>(best_j)]);
    work.erase(work.begin() + best_j);
    result.loss_trajectory.push_back(best_loss);
  }
  result.attacked_loss = result.loss_trajectory.back();
  return result;
}

Result<ModificationAttackResult> GreedyModifyCdf(
    const KeySet& keyset, std::int64_t moves,
    const std::vector<Key>& movable, const AttackOptions& options) {
  LISPOISON_RETURN_IF_ERROR(ValidateModification(keyset, moves, movable));
  const bool restricted = !movable.empty();
  std::unordered_set<Key> allowed(movable.begin(), movable.end());

  ModificationAttackResult result;
  result.base_loss = LossOfSorted(keyset.keys());

  // One persistent landscape drives both halves of every move: the
  // pruned removal argmax + RemoveKey, then the tiered insertion argmax
  // + InsertKey — the ReplaceKey decomposition, with the argmax between
  // the two halves.
  std::unique_ptr<ThreadPool> pool = MakeAttackPool(options);
  LISPOISON_ASSIGN_OR_RETURN(LossLandscape landscape,
                             LossLandscape::Create(keyset, pool.get()));
  const LossLandscape::ArgmaxOptions argmax = options.ArgmaxKnobs();

  for (std::int64_t round = 0; round < moves; ++round) {
    auto del = landscape.FindOptimalRemoval(
        restricted ? &allowed : nullptr, pool.get(), argmax,
        &result.argmax_stats);
    if (!del.ok()) {
      return Status::ResourceExhausted(
          "no movable key left at round " + std::to_string(round));
    }
    LISPOISON_RETURN_IF_ERROR(landscape.RemoveKey(del->key));
    auto ins = landscape.FindOptimal(options.interior_only,
                                     /*excluded=*/nullptr, pool.get(),
                                     argmax, &result.argmax_stats);
    if (!ins.ok()) {
      // Nowhere to put it back: undo the deletion and stop.
      LISPOISON_RETURN_IF_ERROR(landscape.InsertKey(del->key));
      return Status::ResourceExhausted(
          "no unoccupied re-insertion slot at round " +
          std::to_string(round));
    }
    LISPOISON_RETURN_IF_ERROR(landscape.InsertKey(ins->key));
    // The relocated record keeps its identity: it remains movable.
    if (restricted) {
      allowed.erase(del->key);
      allowed.insert(ins->key);
    }
    result.moves.emplace_back(del->key, ins->key);
    result.loss_trajectory.push_back(ins->loss);
    result.attacked_loss = ins->loss;
  }
  result.removal_commit_touched_slots =
      landscape.removal_commit_touched_slots();
  result.removal_commits = landscape.removal_commits();
  return result;
}

Result<ModificationAttackResult> GreedyModifyCdfReference(
    const KeySet& keyset, std::int64_t moves,
    const std::vector<Key>& movable, const AttackOptions& options) {
  LISPOISON_RETURN_IF_ERROR(ValidateModification(keyset, moves, movable));
  const bool restricted = !movable.empty();
  std::unordered_set<Key> allowed(movable.begin(), movable.end());

  ModificationAttackResult result;
  std::vector<Key> work = keyset.keys();
  const KeyDomain domain = keyset.domain();
  result.base_loss = LossOfSorted(work);

  for (std::int64_t round = 0; round < moves; ++round) {
    // Step 1: best deletion among movable keys.
    DeletionLandscape landscape(work);
    bool have = false;
    std::int64_t best_j = -1;
    long double best_loss = 0;
    for (std::int64_t j = 0;
         j < static_cast<std::int64_t>(work.size()); ++j) {
      if (restricted &&
          !allowed.count(work[static_cast<std::size_t>(j)])) {
        continue;
      }
      const long double loss = landscape.LossWithout(j);
      if (!have || loss > best_loss) {
        best_j = j;
        best_loss = loss;
        have = true;
      }
    }
    if (!have) {
      return Status::ResourceExhausted(
          "no movable key left at round " + std::to_string(round));
    }
    const Key moved = work[static_cast<std::size_t>(best_j)];
    work.erase(work.begin() + best_j);

    // Step 2: best re-insertion position for the freed key.
    LISPOISON_ASSIGN_OR_RETURN(KeySet current, KeySet::Create(work, domain));
    LISPOISON_ASSIGN_OR_RETURN(LossLandscape insertion,
                               LossLandscape::Create(current));
    auto best = insertion.FindOptimal(options.interior_only);
    if (!best.ok()) {
      // Nowhere to put it back: undo the deletion and stop.
      work.insert(std::lower_bound(work.begin(), work.end(), moved), moved);
      return Status::ResourceExhausted(
          "no unoccupied re-insertion slot at round " +
          std::to_string(round));
    }
    work.insert(std::lower_bound(work.begin(), work.end(), best->key),
                best->key);
    // The relocated record keeps its identity: it remains movable.
    if (restricted) {
      allowed.erase(moved);
      allowed.insert(best->key);
    }
    result.moves.emplace_back(moved, best->key);
    result.loss_trajectory.push_back(best->loss);
    result.attacked_loss = best->loss;
  }
  return result;
}

}  // namespace lispoison
