#include "common/flags.h"

#include <cstdlib>
#include <sstream>

namespace lispoison {

FlagParser::FlagParser(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag and parses as
    // a value; otherwise treat as boolean.
    if (i + 1 < argc) {
      std::string next = argv[i + 1];
      if (next.rfind("--", 0) != 0) {
        values_[arg] = next;
        ++i;
        continue;
      }
    }
    values_[arg] = "";
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::int64_t FlagParser::GetInt(const std::string& name,
                                std::int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second;
}

bool FlagParser::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  return false;
}

std::vector<std::int64_t> FlagParser::GetIntList(
    const std::string& name, const std::vector<std::int64_t>& def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(std::strtoll(token.c_str(), nullptr, 10));
  }
  return out;
}

std::vector<double> FlagParser::GetDoubleList(
    const std::string& name, const std::vector<double>& def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(std::strtod(token.c_str(), nullptr));
  }
  return out;
}

}  // namespace lispoison
