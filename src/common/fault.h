// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Deterministic, seeded fault injection (FoundationDB-style simulation
// discipline): production code marks its failure-capable sites with
// FAULT_POINT("name"); a test or bench arms a seeded FaultPlan that maps
// point names to probabilities, one-shot hit schedules, fire caps, and
// injected latency. Every decision a point makes is drawn from an Rng
// forked deterministically from (plan seed, point name), so the same
// seed replays the same injected fault sequence — the chaos harness's
// whole contract.
//
// Cost model: a disarmed point is one acquire load of an atomic bool
// (no mutex, no counter). An armed point takes a small per-point mutex;
// points are only placed on slow paths (maintenance, I/O, pool
// dispatch) — never on the lock-free read path, whose tripwire would
// abort on the mutex anyway. Compiling with -DLISPOISON_FAULT_DISABLED
// turns every FAULT_POINT expansion into the literal `(false)`
// (mirroring LISPOISON_TELEMETRY_DISABLED): no registry, no atomics, no
// strings in the binary. Like the telemetry switch, the definition must
// be binary-global — mixing enabled and disabled TUs would split the
// registry's view of a point.

#ifndef LISPOISON_COMMON_FAULT_H_
#define LISPOISON_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace lispoison {

/// \brief What an armed fault point should do, evaluation by evaluation.
///
/// A point fires on evaluation k (1-based, counted while armed) iff
/// k appears in `fire_on_hits`, or an independent uniform draw lands
/// under `probability` — subject to `max_fires`. A firing point sleeps
/// `latency_ns` first; it then reports failure to the caller only when
/// `fail` is true, so `{latency_ns > 0, fail = false}` is a pure stall
/// (the maintenance-wedge storm) and the default is a hard fault.
struct FaultSpec {
  double probability = 0.0;
  std::vector<std::int64_t> fire_on_hits;  ///< 1-based armed-hit indices.
  std::int64_t max_fires = -1;             ///< < 0 means unbounded.
  std::int64_t latency_ns = 0;
  bool fail = true;
};

/// \brief One named failure site. Stable address for the lifetime of the
/// process (the registry never erases); production code caches the
/// pointer in a function-local static via FAULT_POINT.
class FaultPoint {
 public:
  explicit FaultPoint(std::string name) : name_(std::move(name)) {}

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  /// \brief The hot call. Returns true iff the caller must fail now.
  /// Disarmed: one acquire load, no counting. Armed: counts the hit,
  /// consumes the point's deterministic decision stream, applies the
  /// fire schedule/cap, sleeps any injected latency (outside the
  /// point's mutex), and returns spec.fail on a firing evaluation.
  bool Evaluate();

  /// \brief Arms the point with \p spec; \p rng seeds its private
  /// decision stream (FaultPlan derives it from the plan seed and the
  /// point name). Resets hit/fire counters so schedules are relative
  /// to this arming.
  void Arm(const FaultSpec& spec, Rng rng);

  /// \brief Disarms; counters keep their values for post-storm asserts.
  void Disarm();

  const std::string& name() const { return name_; }
  bool armed() const { return armed_.load(std::memory_order_acquire); }
  /// \brief Evaluations observed while armed (since the last Arm).
  std::int64_t hits() const;
  /// \brief Evaluations that fired (faulted or stalled) since last Arm.
  std::int64_t fires() const;

 private:
  const std::string name_;
  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  FaultSpec spec_;
  Rng rng_{0};
  std::int64_t hits_ = 0;
  std::int64_t fires_ = 0;
};

/// \brief Process-wide fault-point registry. Immortal (leaked) like
/// EpochDomain::Global and TelemetryRegistry::Global: worker threads may
/// evaluate points during static destruction.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// \brief Finds or creates the point; the returned pointer is stable
  /// forever.
  FaultPoint* GetPoint(const std::string& name);

  /// \brief Disarms every registered point (end-of-storm; counters are
  /// preserved for the harness's accounting asserts).
  void DisarmAll();

  /// \brief Registered points in name order (stable for reports).
  std::vector<FaultPoint*> Points();

 private:
  FaultRegistry() = default;

  std::mutex mu_;
  std::map<std::string, std::unique_ptr<FaultPoint>> points_;
};

/// \brief A seeded arming of the registry: the unit of reproducibility.
///
/// Usage:
///   FaultPlan plan(storm_seed);
///   plan.Arm("compaction.rebuild", {.probability = 0.3});
///   plan.Arm("pool.task", {.latency_ns = 2'000'000, .fail = false});
///   plan.Activate();
///   ... storm ...
///   FaultRegistry::Global().DisarmAll();
///
/// Each point's decision stream is Rng(seed).Fork(fnv1a(name)), so the
/// set of *other* armed points never perturbs a point's own sequence.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  /// \brief Adds (or replaces) the arming for \p name. Returns *this
  /// for chaining.
  FaultPlan& Arm(const std::string& name, FaultSpec spec);

  /// \brief Applies every arming to the global registry.
  void Activate();

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::vector<std::pair<std::string, FaultSpec>> arms_;
};

}  // namespace lispoison

#if defined(LISPOISON_FAULT_DISABLED)

// Kill switch: the whole expression folds to a false constant, so the
// enclosing `if (FAULT_POINT(...))` and its failure arm compile away.
#define FAULT_POINT(point_name) (false)

#else

// Each expansion caches its point pointer in a function-local static:
// the registry map lookup happens once per call site, after which an
// evaluation is the point's own atomic load.
#define FAULT_POINT(point_name)                                      \
  ([]() -> bool {                                                    \
    static ::lispoison::FaultPoint* const lispoison_fault_point =    \
        ::lispoison::FaultRegistry::Global().GetPoint(point_name);   \
    return lispoison_fault_point->Evaluate();                        \
  }())

#endif  // LISPOISON_FAULT_DISABLED

#endif  // LISPOISON_COMMON_FAULT_H_
