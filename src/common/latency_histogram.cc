#include "common/latency_histogram.h"

#include <algorithm>
#include <cmath>

namespace lispoison {

LatencyHistogram::LatencyHistogram()
    : counts_(static_cast<std::size_t>(kBucketCount), 0) {
  static_assert(NumBuckets() == kBucketCount,
                "public bucket layout drifted from the private one");
}

int LatencyHistogram::BucketIndex(std::int64_t value) {
  if (value < kSubBucketCount) return static_cast<int>(value);
  // Exponent of the highest set bit; value >= 32 so e >= kSubBucketBits.
  int e = 63;
  while ((value & (std::int64_t{1} << e)) == 0) --e;
  const int tier = e - kSubBucketBits;
  const int sub =
      static_cast<int>(value >> tier) - kSubBucketCount;  // In [0, 32).
  return kSubBucketCount + tier * kSubBucketCount + sub;
}

std::int64_t LatencyHistogram::BucketLow(int index) {
  if (index < kSubBucketCount) return index;
  const int tier = (index - kSubBucketCount) / kSubBucketCount;
  const int sub = (index - kSubBucketCount) % kSubBucketCount;
  return static_cast<std::int64_t>(kSubBucketCount + sub) << tier;
}

std::int64_t LatencyHistogram::BucketHigh(int index) {
  if (index < kSubBucketCount) return index;
  const int tier = (index - kSubBucketCount) / kSubBucketCount;
  return BucketLow(index) + (std::int64_t{1} << tier) - 1;
}

int LatencyHistogram::BucketIndexOf(std::int64_t value) {
  return BucketIndex(value < 0 ? 0 : value);
}

std::int64_t LatencyHistogram::BucketRepresentative(int index) {
  return BucketLow(index) + (BucketHigh(index) - BucketLow(index)) / 2;
}

void LatencyHistogram::RecordBucket(int index, std::int64_t n) {
  if (n <= 0 || index < 0 || index >= kBucketCount) return;
  const std::int64_t rep = BucketRepresentative(index);
  counts_[static_cast<std::size_t>(index)] += n;
  if (count_ == 0 || BucketLow(index) < min_) min_ = BucketLow(index);
  if (BucketHigh(index) > max_) max_ = BucketHigh(index);
  count_ += n;
  sum_ += rep * n;
}

void LatencyHistogram::Record(std::int64_t value) {
  if (value < 0) value = 0;
  counts_[static_cast<std::size_t>(BucketIndex(value))] += 1;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += 1;
  sum_ += value;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::Mean() const {
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t LatencyHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::max(0.0, std::min(1.0, q));
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count), rank at least 1. The small tolerance keeps exact
  // products (0.5 * 10 = 5.0) from rounding up to rank 6.
  const std::int64_t target = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q * static_cast<double>(count_) - 1e-9)));
  std::int64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[static_cast<std::size_t>(i)];
    if (cumulative >= target) {
      const std::int64_t mid = BucketLow(i) + (BucketHigh(i) - BucketLow(i)) / 2;
      return std::max(min(), std::min(max_, mid));
    }
  }
  return max_;
}

}  // namespace lispoison
