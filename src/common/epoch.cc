#include "common/epoch.h"

#include <cstdint>
#include <limits>
#include <utility>

#include "common/fault.h"

namespace lispoison {
namespace {

/// Thread-exit hook: returns the thread's slot to the domain free list.
/// The domain is immortal (leaked singleton), so this is safe even
/// during static destruction of other objects.
struct ThreadSlotHolder {
  EpochDomain* domain = nullptr;
  EpochDomain::Slot* slot = nullptr;
  ~ThreadSlotHolder();
};

}  // namespace

struct ThreadSlotHandle {
  static void Release(EpochDomain* domain, EpochDomain::Slot* slot) {
    domain->ReleaseSlot(slot);
  }
};

namespace {

ThreadSlotHolder::~ThreadSlotHolder() {
  if (domain != nullptr && slot != nullptr) {
    ThreadSlotHandle::Release(domain, slot);
  }
}

}  // namespace

EpochDomain& EpochDomain::Global() {
  // Leaked: worker threads may outlive every static destructor, and
  // their exit hooks must still find a live domain.
  static EpochDomain* const domain = new EpochDomain();
  return *domain;
}

EpochDomain::Slot* EpochDomain::LocalSlot() {
  thread_local ThreadSlotHolder holder;
  if (holder.slot == nullptr) {
    std::lock_guard<std::mutex> lock(slots_mu_);
    if (free_slots_.empty()) {
      slabs_.push_back(new Slab());
      for (Slot& s : slabs_.back()->slots) free_slots_.push_back(&s);
      slots_created_.fetch_add(kSlabSize, std::memory_order_relaxed);
    }
    holder.slot = free_slots_.back();
    free_slots_.pop_back();
    holder.domain = this;
  }
  return holder.slot;
}

void EpochDomain::ReleaseSlot(Slot* slot) {
  // A live guard at thread exit would be a bug; quiesce defensively so
  // a recycled slot never pins reclamation forever.
  slot->nesting.store(0, std::memory_order_relaxed);
  slot->epoch.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> lock(slots_mu_);
  free_slots_.push_back(slot);
}

std::uint64_t EpochDomain::MinActiveEpoch() {
  std::uint64_t min_epoch = std::numeric_limits<std::uint64_t>::max();
  std::lock_guard<std::mutex> lock(slots_mu_);
  for (const Slab* slab : slabs_) {
    for (const Slot& slot : slab->slots) {
      // seq_cst: pairs with the reader's announcement store — see the
      // total-order safety argument in the header. The acquire side of
      // this load is what makes the eventual free happen-after every
      // probe of a reader observed quiescent.
      const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < min_epoch) min_epoch = e;
    }
  }
  return min_epoch;
}

void EpochDomain::Retire(std::function<void()> deleter) {
  // Stamp with the *current* epoch, then advance: any reader announced
  // at or below the stamp may still hold the retired pointer; readers
  // announcing the advanced epoch can only have loaded its successor.
  const std::uint64_t epoch =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    limbo_.push_back(Retired{std::move(deleter), epoch});
  }
  TryReclaim();
}

std::int64_t EpochDomain::TryReclaim() {
  // Injected fault: skip this reclamation pass entirely. Deferral is
  // always safe (entries just stay in limbo for a later pass), which is
  // exactly what makes it the right storm ingredient — it pressures
  // limbo growth without ever risking a premature free.
  if (FAULT_POINT("epoch.reclaim")) return 0;
  // Collect eligible entries under the mutex, run deleters outside it:
  // a deleter must never deadlock against a concurrent Retire.
  std::vector<Retired> eligible;
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    if (limbo_.empty()) return 0;
    const std::uint64_t min_active = MinActiveEpoch();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < limbo_.size(); ++i) {
      if (limbo_[i].epoch < min_active) {
        eligible.push_back(std::move(limbo_[i]));
      } else {
        limbo_[kept++] = std::move(limbo_[i]);
      }
    }
    limbo_.resize(kept);
  }
  for (Retired& r : eligible) r.deleter();
  const std::int64_t freed = static_cast<std::int64_t>(eligible.size());
  reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

std::int64_t EpochDomain::limbo_size() {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return static_cast<std::int64_t>(limbo_.size());
}

}  // namespace lispoison
