#include "common/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace lispoison {

JsonWriter::JsonWriter(std::ostream* os, bool pretty)
    : os_(os), pretty_(pretty) {}

std::string JsonWriter::Escape(const std::string& v) {
  std::string out;
  out.reserve(v.size() + 2);
  out.push_back('"');
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::NewlineIndent() {
  if (!pretty_) return;
  *os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) *os_ << "  ";
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    // Key() already positioned us; the value follows the "key: ".
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;  // Top-level value.
  assert(stack_.back() == Scope::kArray &&
         "object members must start with Key()");
  if (has_items_.back()) *os_ << ',';
  NewlineIndent();
  has_items_.back() = true;
}

void JsonWriter::Key(const std::string& k) {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  assert(!pending_key_);
  if (has_items_.back()) *os_ << ',';
  NewlineIndent();
  has_items_.back() = true;
  *os_ << Escape(k) << (pretty_ ? ": " : ":");
  pending_key_ = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  *os_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) NewlineIndent();
  *os_ << '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  *os_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::EndArray() {
  assert(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) NewlineIndent();
  *os_ << ']';
}

void JsonWriter::String(const std::string& v) {
  BeforeValue();
  *os_ << Escape(v);
}

void JsonWriter::Int(std::int64_t v) {
  BeforeValue();
  *os_ << v;
}

void JsonWriter::Double(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    *os_ << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  *os_ << buf;
}

void JsonWriter::Bool(bool v) {
  BeforeValue();
  *os_ << (v ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  *os_ << "null";
}

}  // namespace lispoison
