// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Fundamental scalar types shared across the library.

#ifndef LISPOISON_COMMON_TYPES_H_
#define LISPOISON_COMMON_TYPES_H_

#include <cstdint>

namespace lispoison {

/// \brief An index key. The paper assumes keys are non-negative integers so
/// a total order is always available; we use a signed 64-bit carrier so key
/// arithmetic (gaps, midpoints) never wraps for the domains studied
/// (|K| <= 10^9).
using Key = std::int64_t;

/// \brief A rank, i.e. the 1-based position of a key in the sorted keyset.
/// The regression target: the (non-normalized) CDF maps key -> rank.
using Rank = std::int64_t;

/// \brief Exact wide integer used for key aggregates (sum of k, k^2, k*r).
/// With n <= 10^7 keys from a 10^9 domain, sum(k^2) can reach ~10^25, which
/// overflows int64 but fits comfortably in 128 bits.
using Int128 = __int128;

/// \brief Converts an exact 128-bit aggregate to long double for the final
/// floating-point loss computation.
inline long double ToLongDouble(Int128 v) { return static_cast<long double>(v); }

}  // namespace lispoison

#endif  // LISPOISON_COMMON_TYPES_H_
