// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Fundamental scalar types shared across the library.

#ifndef LISPOISON_COMMON_TYPES_H_
#define LISPOISON_COMMON_TYPES_H_

#include <cstdint>

namespace lispoison {

/// \brief An index key. The paper assumes keys are non-negative integers so
/// a total order is always available; we use a signed 64-bit carrier so key
/// arithmetic (gaps, midpoints) never wraps for the domains studied.
using Key = std::int64_t;

/// \brief A rank, i.e. the 1-based position of a key in the sorted keyset.
/// The regression target: the (non-normalized) CDF maps key -> rank.
using Rank = std::int64_t;

/// \brief Exact wide integer used for key aggregates (sum of k, k^2, k*r).
///
/// Scale envelope (pinned by tests/overflow_envelope_test.cc): with
/// n <= 10^8 keys shifted into a span S = hi - lo, the aggregates reach
/// sum(k) <= n*S, sum(k*r) <= n^2*S and sum(k^2) <= n*S^2 — e.g.
/// ~10^26 for n = 10^8 over a 10^9 domain, far past int64 (~9.2*10^18)
/// but comfortably inside 128 bits (~1.7*10^38). Narrower carriers must
/// never reappear on these paths. The one deliberately 64-bit structure,
/// the removal SoA's suffix sums, is guarded by
/// LossLandscape::PruneDomainOk (n < 2^31, n*S < 2^63, S < 2^126/n^3)
/// and falls back to exact Int128 scans outside that envelope.
using Int128 = __int128;

/// \brief Converts an exact 128-bit aggregate to long double for the final
/// floating-point loss computation.
inline long double ToLongDouble(Int128 v) { return static_cast<long double>(v); }

}  // namespace lispoison

#endif  // LISPOISON_COMMON_TYPES_H_
