// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Terminal-friendly plotting helpers used by the examples and benches:
// a key-density histogram (legitimate vs poisoning keys) and a coarse
// CDF staircase, both rendered as plain text.

#ifndef LISPOISON_COMMON_ASCII_PLOT_H_
#define LISPOISON_COMMON_ASCII_PLOT_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace lispoison {

/// \brief Renders a two-series key-density histogram: '#' for primary
/// keys and '*' for overlay keys (e.g. poisons), one text column per
/// key-range bucket. Rows are density levels, top-down.
///
/// \p lo/\p hi bound the plotted key range; \p width is the number of
/// buckets/columns. Keys outside [lo, hi] are clamped to the edge
/// buckets. No-op for width < 1.
void RenderKeyHistogram(std::ostream& os, const std::vector<Key>& primary,
                        const std::vector<Key>& overlay, Key lo, Key hi,
                        int width);

/// \brief Renders the (non-normalized) CDF of \p sorted_keys as a
/// height x width staircase of 'o' marks: X is the key value, Y the
/// rank. Assumes the input is sorted ascending; no-op for empty input
/// or non-positive dimensions.
void RenderCdfStaircase(std::ostream& os, const std::vector<Key>& sorted_keys,
                        int width, int height);

}  // namespace lispoison

#endif  // LISPOISON_COMMON_ASCII_PLOT_H_
