// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Minimal Status / Result error-handling vocabulary, following the
// RocksDB/Arrow idiom: fallible operations return a Status (or a Result<T>
// carrying either a value or a Status) instead of throwing.

#ifndef LISPOISON_COMMON_STATUS_H_
#define LISPOISON_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace lispoison {

/// \brief Canonical error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< Caller passed a malformed argument.
  kOutOfRange,         ///< A key/index fell outside the valid domain.
  kFailedPrecondition, ///< Object state does not allow the operation.
  kNotFound,           ///< Lookup target does not exist.
  kResourceExhausted,  ///< A budget (e.g. poisoning budget) is exhausted.
  kInternal,           ///< Invariant violation inside the library.
  kIOError,            ///< Filesystem / stream failure.
};

/// \brief Returns a short human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy and are
/// expected to be checked by the caller; the library never throws for
/// anticipated failures.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// \name Factory helpers for each canonical code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// @}

  /// \brief True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// \brief The canonical code.
  StatusCode code() const { return code_; }

  /// \brief The (possibly empty) diagnostic message.
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Access to the value asserts that
/// the Result is OK; use `ok()` / `status()` to branch first.
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding \p value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// \brief True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// \brief The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// \brief Const access to the held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }

  /// \brief Mutable access to the held value. Requires ok().
  T& value() & {
    assert(ok());
    return *value_;
  }

  /// \brief Moves the held value out. Requires ok().
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// \brief Value access shorthand.
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from the evaluated expression.
#define LISPOISON_RETURN_IF_ERROR(expr)          \
  do {                                           \
    ::lispoison::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define LISPOISON_MACRO_CONCAT_INNER(a, b) a##b
#define LISPOISON_MACRO_CONCAT(a, b) LISPOISON_MACRO_CONCAT_INNER(a, b)

#define LISPOISON_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

/// Evaluates a Result expression; on error returns its Status, otherwise
/// assigns the value to `lhs`.
#define LISPOISON_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  LISPOISON_ASSIGN_OR_RETURN_IMPL(                                       \
      LISPOISON_MACRO_CONCAT(_lispoison_result_, __LINE__), lhs, rexpr)

}  // namespace lispoison

#endif  // LISPOISON_COMMON_STATUS_H_
