// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Epoch-based memory reclamation for the serving read path: the
// primitive behind the sharded backend's lock-free snapshot reads.
//
// The problem it solves: readers need to probe an immutable snapshot
// object that a writer may concurrently replace, without taking any
// lock in the read path and without per-read reference counting. The
// classic answer (the read-only shared-substrate pattern of mmap'd
// sectioned databases, RCU, crossbeam-epoch) is epoch-based
// reclamation:
//
//   * a global epoch counter only ever advances;
//   * each reader thread owns one cache-line-padded announcement slot;
//     entering a read-side critical section stores the current epoch
//     into the slot (one seq_cst store — wait-free, no CAS loop, no
//     lock), leaving stores 0;
//   * a writer replacing a published pointer *retires* the old object
//     with the epoch at retirement time, then advances the epoch;
//   * a retired object is freed only once every active slot announces
//     an epoch strictly greater than its retirement epoch — at which
//     point no reader that could still hold the pointer remains.
//
// Safety argument (all epoch/slot/pointer operations are seq_cst, so a
// single total order exists): a reader announces *before* loading the
// published pointer. If its pointer load returns an object O that a
// writer later retires, the retirement's epoch read happens after the
// reader's announcement in the total order, so the retirement epoch is
// >= the announced epoch (the counter is monotone) and the reclaimer's
// "min active announcement > retirement epoch" test fails until the
// reader leaves. Conversely, if the reclaimer's slot scan observes the
// reader's slot quiescent, the reader's announcement — and therefore
// its pointer load — follows the writer's pointer swap in the total
// order, so the reader can only have loaded the *new* pointer.
//
// Reclamation runs on the retiring (writer/maintenance) side under a
// small mutex; the read path never touches a mutex, never fails, and
// performs exactly two atomic stores per critical section.
//
// The domain is a process-wide singleton (EpochDomain::Global()): slots
// are assigned once per thread on first use from a free list and
// returned at thread exit, so short-lived pool threads (the QueryDriver
// spawns a fresh pool per run) recycle a bounded slot arena.

#ifndef LISPOISON_COMMON_EPOCH_H_
#define LISPOISON_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace lispoison {

/// \brief Process-wide epoch-reclamation domain.
class EpochDomain {
 public:
  /// One reader announcement slot, cache-line padded so concurrent
  /// readers never share a line.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};  ///< 0 = quiescent.
    std::atomic<std::uint64_t> nesting{0};
  };

  /// \brief The process-wide domain. Never destroyed (leaked
  /// intentionally so worker threads exiting at process teardown can
  /// still return their slots safely).
  static EpochDomain& Global();

  /// \brief RAII read-side critical section: wait-free enter/leave.
  ///
  /// While a Guard is live, any pointer loaded from a published
  /// std::atomic<T*> stays valid until the guard is destroyed, provided
  /// the writer retires replaced objects through Retire(). Guards nest
  /// (an inner guard on the same thread is a no-op).
  class Guard {
   public:
    explicit Guard(EpochDomain& domain) : slot_(domain.LocalSlot()) {
      const std::uint64_t depth =
          slot_->nesting.load(std::memory_order_relaxed);
      slot_->nesting.store(depth + 1, std::memory_order_relaxed);
      if (depth > 0) return;  // Outer guard already announced.
      // Announce-then-load: the seq_cst store orders this announcement
      // before every subsequent pointer load in this section, which is
      // what the reclamation safety argument above relies on. A stale
      // (smaller) epoch value is safe — it only delays reclamation.
      slot_->epoch.store(
          domain.global_epoch_.load(std::memory_order_relaxed),
          std::memory_order_seq_cst);
    }

    ~Guard() {
      const std::uint64_t depth =
          slot_->nesting.load(std::memory_order_relaxed);
      slot_->nesting.store(depth - 1, std::memory_order_relaxed);
      if (depth > 1) return;
      // The release store publishes every read of the snapshot to the
      // reclaimer's acquire scan: freeing happens-after our last probe.
      slot_->epoch.store(0, std::memory_order_release);
    }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Slot* slot_;
  };

  /// \brief Hands \p deleter to the limbo list stamped with the current
  /// epoch, advances the epoch, and opportunistically frees every
  /// retired entry no active reader can still observe. Writer-side:
  /// takes the (uncontended) retire mutex; never called by readers.
  void Retire(std::function<void()> deleter);

  /// \brief Convenience: retire a heap object for deletion.
  template <typename T>
  void RetireDelete(const T* ptr) {
    Retire([ptr] { delete ptr; });
  }

  /// \brief Frees every retired entry whose epoch is below the minimum
  /// active announcement. Returns the number of entries freed.
  std::int64_t TryReclaim();

  /// \brief Retired-but-not-yet-freed entries (diagnostics/tests).
  std::int64_t limbo_size();

  /// \brief Total entries freed so far (diagnostics/tests).
  std::int64_t reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  /// \brief Slots ever created (diagnostics/tests; slots are recycled
  /// through a free list when threads exit).
  std::int64_t slots_created() const {
    return slots_created_.load(std::memory_order_relaxed);
  }

 private:
  EpochDomain() = default;
  ~EpochDomain() = delete;  // Singleton: intentionally immortal.

  /// The calling thread's slot, assigned on first use and returned to
  /// the free list at thread exit.
  Slot* LocalSlot();

  /// Smallest epoch announced by any active slot (UINT64_MAX if none).
  std::uint64_t MinActiveEpoch();

  struct Retired {
    std::function<void()> deleter;
    std::uint64_t epoch;
  };

  // Slots live in fixed-size slabs chained in a vector of unique
  // pointers: growing never moves an existing slot, so readers hold
  // stable Slot* without any lock.
  static constexpr int kSlabSize = 64;
  struct Slab {
    Slot slots[kSlabSize];
  };

  friend class EpochDomainTestPeer;
  friend struct ThreadSlotHandle;

  void ReleaseSlot(Slot* slot);

  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::int64_t> reclaimed_{0};
  std::atomic<std::int64_t> slots_created_{0};

  std::mutex slots_mu_;             // Guards slab growth + free list.
  std::vector<Slab*> slabs_;        // Leaked with the domain.
  std::vector<Slot*> free_slots_;

  std::mutex retire_mu_;            // Guards the limbo list.
  std::vector<Retired> limbo_;
};

}  // namespace lispoison

#endif  // LISPOISON_COMMON_EPOCH_H_
