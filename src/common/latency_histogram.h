// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// HDR-style log-bucketed latency histogram for the serving benchmarks.
// Values (nanoseconds, probe counts — any non-negative int64) below
// 2^kSubBucketBits are recorded exactly; above that each power-of-two
// octave is split into 2^kSubBucketBits sub-buckets, bounding the
// relative quantile error by 2^-kSubBucketBits (~3.1%). Histograms are
// plain value types: each driver shard records into its own instance and
// the shards are merged in fixed order after the run, so no atomics are
// needed on the hot path.

#ifndef LISPOISON_COMMON_LATENCY_HISTOGRAM_H_
#define LISPOISON_COMMON_LATENCY_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace lispoison {

/// \brief Fixed-footprint log-linear histogram over non-negative int64
/// values with mergeable counts and quantile queries.
class LatencyHistogram {
 public:
  /// Sub-bucket resolution: each octave has 2^kSubBucketBits buckets, so
  /// any reported quantile is within a factor (1 + 2^-kSubBucketBits) of
  /// the recorded value's bucket range.
  static constexpr int kSubBucketBits = 5;

  LatencyHistogram();

  /// \brief Records one value. Negative values clamp to 0.
  void Record(std::int64_t value);

  /// \brief Adds every count of \p other into this histogram.
  void Merge(const LatencyHistogram& other);

  /// \brief Number of recorded values.
  std::int64_t count() const { return count_; }

  /// \brief Exact smallest / largest recorded value (0 when empty).
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return max_; }

  /// \brief Exact arithmetic mean of the recorded values (0 when empty).
  double Mean() const;

  /// \brief Value at quantile \p q in [0, 1] under the nearest-rank
  /// definition, reported as the representative (midpoint) of the bucket
  /// holding that rank and clamped to the exact [min, max]. Returns 0
  /// when empty.
  std::int64_t ValueAtQuantile(double q) const;

  /// \name Convenience quantiles used by every serving report.
  /// @{
  std::int64_t P50() const { return ValueAtQuantile(0.50); }
  std::int64_t P95() const { return ValueAtQuantile(0.95); }
  std::int64_t P99() const { return ValueAtQuantile(0.99); }
  /// @}

  /// \name Bucket layout, shared with the telemetry slabs.
  ///
  /// The telemetry registry (common/telemetry.h) records histogram
  /// values into per-thread arrays of relaxed atomics using this exact
  /// bucket mapping, then reconstructs interval LatencyHistograms from
  /// aggregated bucket-count deltas via RecordBucket(). Exposing the
  /// mapping keeps the two in lock-step: a telemetry interval histogram
  /// and a driver-side LatencyHistogram bucket identical values the
  /// same way.
  /// @{
  /// Total bucket count of the fixed layout.
  static constexpr int NumBuckets() {
    return (1 << kSubBucketBits) + (63 - kSubBucketBits) * (1 << kSubBucketBits);
  }
  /// Bucket index holding \p value (negatives clamp to 0).
  static int BucketIndexOf(std::int64_t value);
  /// Midpoint representative of bucket \p index.
  static std::int64_t BucketRepresentative(int index);
  /// \brief Records \p n values at bucket \p index's representative.
  /// Count and quantiles are exact per bucket; mean/min/max become
  /// bucket-resolution approximations (the same ~3.1% bound quantiles
  /// already carry). No-op for n <= 0.
  void RecordBucket(int index, std::int64_t n);
  /// @}

 private:
  static constexpr int kSubBucketCount = 1 << kSubBucketBits;  // 32
  // Octaves above the exact range: exponents kSubBucketBits..62.
  static constexpr int kBucketCount =
      kSubBucketCount + (63 - kSubBucketBits) * kSubBucketCount;

  static int BucketIndex(std::int64_t value);
  static std::int64_t BucketLow(int index);
  static std::int64_t BucketHigh(int index);

  std::vector<std::int64_t> counts_;
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace lispoison

#endif  // LISPOISON_COMMON_LATENCY_HISTOGRAM_H_
