// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Runtime telemetry for the serving and attack engines: a process-wide
// metric registry, interval time-series aggregation, and trace-event
// spans. The design constraint comes from PR 6's serving contract: the
// read path is lock-free (WriterMutex aborts the process if a shard
// lock is ever taken inside it), so instrumentation on that path must
// be lock-free too. Every hot-path Record()/Add() is a relaxed atomic
// op on a cache-line-padded per-thread cell — no mutex, no CAS loop,
// no shared cache line between recording threads.
//
// Three instrument kinds:
//
//   * Counter — monotonically increasing. Add(n) is one relaxed
//     fetch_add on the calling thread's private cell; the aggregate is
//     the sum over all cells. Interval rows report nonnegative deltas
//     of the aggregate.
//   * Gauge — an up/down level maintained by signed deltas (the only
//     gauge shape that aggregates exactly from per-thread cells: the
//     level is the sum of every thread's contributions). Levels owned
//     by one logical writer at a time (a shard overlay under its
//     writer mutex) are exact; see ObservableGauge for levels that are
//     cheaper to poll than to maintain.
//   * IntervalHistogram — a LatencyHistogram-bucket-compatible array of
//     relaxed atomics per thread. The sampler aggregates bucket counts
//     and reconstructs interval LatencyHistograms from consecutive
//     deltas, so interval counts sum *exactly* to the end-of-run total.
//
// Per-thread storage follows common/epoch.h's slot-slab idiom: the
// registry assigns each thread a small slot index from a free list
// (mutex only on a thread's FIRST record, exactly like
// EpochDomain::LocalSlot); each instrument lazily grows pointer-stable
// slabs of padded cells indexed by slot (CAS-installed, never moved,
// never freed). A thread returns its slot at exit but its cell values
// stay — recycling never loses counts, which the telemetry tests pin.
//
// ObservableGauge registers a callback polled only at Snapshot() time
// (on the sampler thread, never on a hot path), for levels that already
// have a cheap accessor: ThreadPool::queue_depth(), a backend's
// overlay_size(), EpochDomain's limbo_size().
//
// TelemetrySampler turns cumulative snapshots into timestamped interval
// rows — either on its own background thread (interval_ms > 0) or at
// explicit SampleNow() boundaries (the deterministic-test mode).
//
// TraceSession adds begin/end spans and instant events: one bounded
// ring buffer per thread (single writer), each slot a seqlock of
// relaxed atomics so the exporter can read concurrently without tearing
// and writers drop-oldest without blocking. WriteJson emits Chrome
// trace_event format (load in chrome://tracing or https://ui.perfetto.dev).
//
// Compile-time kill switch: building with -DLISPOISON_TELEMETRY_DISABLED
// compiles every Record()/Add()/span body to nothing (no atomic, no
// enabled check). The whole binary must be compiled one way — the
// macro is a build-level switch, not a per-file one (CMake option
// LISPOISON_TELEMETRY_DISABLED; tests/telemetry_disabled_test.cc is a
// self-contained binary compiled in that mode).

#ifndef LISPOISON_COMMON_TELEMETRY_H_
#define LISPOISON_COMMON_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/latency_histogram.h"
#include "common/status.h"

namespace lispoison {

class TelemetryRegistry;

namespace telemetry_internal {

/// One padded per-thread scalar cell: recording threads never share a
/// cache line, and the aggregating reader pays at most one line per
/// thread per instrument.
struct alignas(64) ScalarCell {
  std::atomic<std::int64_t> value{0};
};

/// Per-thread histogram storage, lazily allocated on a thread's first
/// Record into this instrument (most threads touch one or two
/// histograms; eager allocation would cost ~15 KB per thread per
/// instrument). count/sum are exact; buckets use LatencyHistogram's
/// mapping so interval reconstruction is bucket-exact.
struct HistogramCellData {
  std::vector<std::atomic<std::int64_t>> buckets;
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> sum{0};
  HistogramCellData()
      : buckets(static_cast<std::size_t>(LatencyHistogram::NumBuckets())) {}
};

struct alignas(64) HistogramCell {
  std::atomic<HistogramCellData*> data{nullptr};
};

constexpr int kSlabSize = 64;    // Slots per slab (matches epoch.h).
constexpr int kMaxSlabs = 64;    // 4096 concurrent recording threads.

/// Pointer-stable slab chain: slabs_[i] is CAS-installed once and never
/// moved or freed, so a recording thread can cache nothing and still
/// reach its cell with two relaxed/acquire loads.
template <typename Cell>
class CellSlabs {
 public:
  ~CellSlabs() {
    for (auto& slab : slabs_) delete[] slab.load(std::memory_order_acquire);
  }

  /// The cell for \p slot, allocating its slab on first touch (lock-free:
  /// losers of the install race delete their copy). Returns nullptr only
  /// past the 4096-slot arena, where recording degrades to a no-op.
  Cell* ForSlot(int slot) {
    const int slab_index = slot / kSlabSize;
    if (slab_index < 0 || slab_index >= kMaxSlabs) return nullptr;
    std::atomic<Cell*>& entry = slabs_[static_cast<std::size_t>(slab_index)];
    Cell* slab = entry.load(std::memory_order_acquire);
    if (slab == nullptr) {
      Cell* fresh = new Cell[kSlabSize];
      if (entry.compare_exchange_strong(slab, fresh,
                                        std::memory_order_acq_rel)) {
        slab = fresh;
      } else {
        delete[] fresh;  // Another thread won the install.
      }
    }
    return slab + (slot % kSlabSize);
  }

  /// The cell for \p slot if its slab exists (aggregation side).
  const Cell* Peek(int slot) const {
    const int slab_index = slot / kSlabSize;
    if (slab_index < 0 || slab_index >= kMaxSlabs) return nullptr;
    const Cell* slab =
        slabs_[static_cast<std::size_t>(slab_index)].load(
            std::memory_order_acquire);
    return slab == nullptr ? nullptr : slab + (slot % kSlabSize);
  }

 private:
  std::atomic<Cell*> slabs_[kMaxSlabs] = {};
};

}  // namespace telemetry_internal

/// \brief Monotonic counter. Obtain via TelemetryRegistry::GetCounter;
/// instruments are process-lived (never freed), so the pointer may be
/// cached anywhere, including across threads.
class TelemetryCounter {
 public:
  /// \brief Adds \p n (negative values are ignored — counters are
  /// monotone by contract). One relaxed fetch_add on the calling
  /// thread's padded cell; safe on the lock-free read path.
  void Add(std::int64_t n);

  /// \brief Cumulative sum over every thread's cell.
  std::int64_t Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class TelemetryRegistry;
  explicit TelemetryCounter(TelemetryRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}

  TelemetryRegistry* registry_;
  std::string name_;
  telemetry_internal::CellSlabs<telemetry_internal::ScalarCell> cells_;
};

/// \brief Up/down gauge maintained by signed deltas. The level is the
/// sum of every thread's contributions, so multi-threaded maintenance
/// aggregates exactly (unlike last-writer-wins Set semantics, which
/// cannot be merged across per-thread cells).
class TelemetryGauge {
 public:
  /// \brief Adds \p delta (may be negative). Relaxed, mutex-free.
  void Add(std::int64_t delta);

  /// \brief Current level: the sum over every thread's cell.
  std::int64_t Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class TelemetryRegistry;
  explicit TelemetryGauge(TelemetryRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}

  TelemetryRegistry* registry_;
  std::string name_;
  telemetry_internal::CellSlabs<telemetry_internal::ScalarCell> cells_;
};

/// \brief Interval histogram over non-negative int64 values, bucketed
/// exactly like LatencyHistogram. Record is a bucket-index computation
/// plus three relaxed fetch_adds on the thread's private cell.
class TelemetryHistogram {
 public:
  void Record(std::int64_t value);

  /// \brief Cumulative recorded-value count across all threads.
  std::int64_t Count() const;

  const std::string& name() const { return name_; }

 private:
  friend class TelemetryRegistry;
  explicit TelemetryHistogram(TelemetryRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}

  telemetry_internal::HistogramCellData* CellData();

  TelemetryRegistry* registry_;
  std::string name_;
  telemetry_internal::CellSlabs<telemetry_internal::HistogramCell> cells_;
};

/// \brief RAII registration of a poll-at-snapshot gauge. The callback
/// runs only inside TelemetryRegistry::Snapshot() under the registry
/// mutex (sampler thread, never a hot path), so it may take locks —
/// ThreadPool::queue_depth(), EpochDomain::limbo_size(), a backend's
/// overlay_size() are all fine. The destructor unregisters and blocks
/// until any in-flight Snapshot() finishes, so the callback never
/// outlives what it captures. Multiple observables may share a name;
/// the snapshot reports their sum.
class ObservableGauge {
 public:
  ObservableGauge() = default;
  ObservableGauge(std::string name, std::function<std::int64_t()> poll);
  ~ObservableGauge();

  ObservableGauge(ObservableGauge&& other) noexcept;
  ObservableGauge& operator=(ObservableGauge&& other) noexcept;
  ObservableGauge(const ObservableGauge&) = delete;
  ObservableGauge& operator=(const ObservableGauge&) = delete;

  void Reset();  ///< Unregisters now (idempotent).

 private:
  std::int64_t id_ = 0;  // 0 = not registered.
};

/// \brief One cumulative aggregate view of every instrument.
struct MetricsSnapshot {
  std::int64_t ts_ns = 0;  ///< Monotonic, from the registry's epoch.

  struct Scalar {
    std::string name;
    std::int64_t value = 0;
  };
  struct Histogram {
    std::string name;
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::vector<std::int64_t> buckets;
  };

  std::vector<Scalar> counters;      ///< Sorted by name.
  std::vector<Scalar> gauges;        ///< Sorted by name (delta gauges).
  std::vector<Scalar> observables;   ///< Sorted by name (summed per name).
  std::vector<Histogram> histograms; ///< Sorted by name.
};

/// \brief One timestamped interval: deltas between two snapshots.
struct TelemetryIntervalRow {
  std::int64_t t_start_ns = 0;
  std::int64_t t_end_ns = 0;

  /// Counter deltas over the interval (nonnegative by monotonicity).
  std::vector<MetricsSnapshot::Scalar> counter_deltas;
  /// Gauge / observable levels at the interval's end.
  std::vector<MetricsSnapshot::Scalar> gauge_values;
  std::vector<MetricsSnapshot::Scalar> observable_values;

  struct IntervalHistogram {
    std::string name;
    std::int64_t count = 0;       ///< Values recorded this interval.
    LatencyHistogram histogram;   ///< Reconstructed from bucket deltas.
  };
  std::vector<IntervalHistogram> histograms;
};

/// \brief The process-wide instrument registry. Like EpochDomain it is
/// an intentionally immortal singleton: worker threads exiting at
/// process teardown still reach a live free list, and instrument
/// pointers never dangle.
class TelemetryRegistry {
 public:
  static TelemetryRegistry& Global();

  /// \name Instrument lookup-or-create. Takes the registry mutex (setup
  /// path, not hot); returns a stable pointer owned by the registry.
  /// Re-requesting a name returns the same instrument.
  /// @{
  TelemetryCounter* GetCounter(const std::string& name);
  TelemetryGauge* GetGauge(const std::string& name);
  TelemetryHistogram* GetHistogram(const std::string& name);
  /// @}

  /// \brief Runtime kill switch (one relaxed load per Record when hot).
  /// Telemetry starts enabled; the bench's overhead arm flips it off.
  /// The LISPOISON_TELEMETRY_DISABLED macro removes even this load.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// \brief Aggregates every instrument's cells (relaxed loads) and
  /// polls every observable. Safe to call concurrently with recording;
  /// values are monotone-consistent per cell, not a cross-instrument
  /// atomic cut — exactly the guarantee interval deltas need.
  MetricsSnapshot Snapshot();

  /// \brief Slot-arena diagnostics (mirrors EpochDomain).
  std::int64_t slots_created();
  std::int64_t slots_free();

 private:
  friend class TelemetryCounter;
  friend class TelemetryGauge;
  friend class TelemetryHistogram;
  friend class ObservableGauge;
  friend struct TelemetrySlotHandle;

  TelemetryRegistry() = default;
  ~TelemetryRegistry() = delete;  // Singleton: intentionally immortal.

  /// The calling thread's slot index, assigned on first use from the
  /// free list and returned at thread exit (cell values persist).
  int ThreadSlot();
  void ReleaseSlot(int slot);
  /// Slots ever handed out — the aggregation bound. Atomic so Value()
  /// can read it without taking mu_ (Snapshot holds mu_ while summing).
  int SlotHighWater() const {
    return slot_high_water_.load(std::memory_order_acquire);
  }

  std::int64_t RegisterObservable(std::string name,
                                  std::function<std::int64_t()> poll);
  void UnregisterObservable(std::int64_t id);

  std::atomic<bool> enabled_{true};
  std::int64_t start_ns_ = -1;  // Set on first Snapshot (under mutex).

  std::mutex mu_;  // Instrument maps, slot free list, observables.
  std::map<std::string, TelemetryCounter*> counters_;
  std::map<std::string, TelemetryGauge*> gauges_;
  std::map<std::string, TelemetryHistogram*> histograms_;
  std::vector<int> free_slots_;
  std::atomic<int> slot_high_water_{0};

  struct Observable {
    std::int64_t id;
    std::string name;
    std::function<std::int64_t()> poll;
  };
  std::vector<Observable> observables_;
  std::int64_t next_observable_id_ = 1;
};

/// \brief Turns cumulative snapshots into timestamped interval rows.
///
/// Two modes, combinable: a background thread samples every
/// \p interval_ms (0 = no thread), and SampleNow() forces a boundary —
/// the deterministic-test and per-config-boundary mode. Rows are
/// contiguous: each row's t_start_ns is the previous row's t_end_ns,
/// and by construction the rows' counter/histogram deltas sum exactly
/// to TotalsSinceStart().
class TelemetrySampler {
 public:
  explicit TelemetrySampler(TelemetryRegistry* registry = nullptr);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// \brief Takes the baseline snapshot; with \p interval_ms > 0 also
  /// starts the background sampling thread.
  void Start(std::int64_t interval_ms = 0);

  /// \brief Stops the background thread (if any) and takes one final
  /// boundary sample so no tail activity is lost.
  void Stop();

  /// \brief Forces an interval boundary now; returns the row index.
  /// Empty intervals (no counter/histogram movement AND no background
  /// thread) still produce a row — callers use boundaries as markers.
  std::size_t SampleNow();

  /// \brief Rows so far (copy: the background thread keeps appending).
  std::vector<TelemetryIntervalRow> Rows();

  /// \brief Cumulative deltas since Start(): what the rows sum to.
  MetricsSnapshot TotalsSinceStart();

 private:
  void SampleLocked();  // Appends one row; caller holds mu_.

  TelemetryRegistry* registry_;
  std::mutex mu_;
  MetricsSnapshot baseline_;
  MetricsSnapshot prev_;
  std::vector<TelemetryIntervalRow> rows_;
  bool started_ = false;

  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
};

/// \brief Trace categories: the closed set tools/check_trace_json.py
/// validates against.
enum class TraceCategory : std::uint8_t {
  kServing = 0,  ///< Backend: compaction, publish, rebuild events.
  kDriver = 1,   ///< QueryDriver runs.
  kAttack = 2,   ///< Attack-engine rounds.
  kBench = 3,    ///< Bench/report phases.
};

const char* TraceCategoryName(TraceCategory cat);

/// \brief Per-thread ring-buffer trace of begin/end spans and instant
/// events with a Chrome trace_event JSON exporter.
///
/// Recording: one slot write in the calling thread's private ring —
/// a per-slot seqlock of relaxed atomics (odd sequence while the writer
/// fills the slot), so a concurrent exporter skips in-flight slots
/// instead of tearing, and the single writer never blocks or drops a
/// *new* event: the ring drops-oldest by overwriting. Event names must
/// be string literals (static storage): the ring stores the pointer.
class TraceSession {
 public:
  static TraceSession& Global();

  /// \brief Enables recording with \p events_per_thread ring slots
  /// (rounded up to a power of two, min 16). Re-Start clears nothing;
  /// rings are recycled across threads like telemetry slots.
  void Start(std::int64_t events_per_thread = 16384);

  /// \brief Disables recording (rings keep their events for export).
  void Stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// \brief Records one event; \p phase is 'B', 'E', or 'i'. \p name
  /// must have static storage duration. \p arg rides into the exported
  /// event's args.v (shard index, round number, ...).
  void Record(char phase, TraceCategory cat, const char* name,
              std::int64_t arg = 0);

  /// \brief Events overwritten before export (drop-oldest casualties)
  /// and events recorded, across all rings.
  std::int64_t dropped() const;
  std::int64_t recorded() const;

  /// \brief Exports every ring as Chrome trace_event JSON. Safe while
  /// recording continues (in-flight and overwritten slots are skipped);
  /// per-thread event order and timestamp monotonicity are preserved.
  /// Unmatched begin/end events (their partner fell off the ring) are
  /// dropped so the output always balances B/E per tid.
  void WriteJson(std::ostream* os);

  /// \brief WriteJson to a file path.
  Status WriteJsonFile(const std::string& path);

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0};  // Even = stable, odd = writing.
    std::atomic<std::int64_t> ts_ns{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::int64_t> arg{0};
    std::atomic<std::uint8_t> cat{0};
    std::atomic<char> phase{0};
  };

  struct Ring {
    explicit Ring(std::int64_t capacity);
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> cursor{0};  // Next write position.
    int tid = 0;
  };

  TraceSession() = default;
  ~TraceSession() = delete;  // Singleton: intentionally immortal.

  Ring* LocalRing();
  void ReleaseRing(Ring* ring);

  friend struct TraceRingHandle;

  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> recorded_{0};
  std::atomic<std::int64_t> dropped_{0};
  std::int64_t capacity_ = 16384;
  std::int64_t start_ns_ = 0;  // Session epoch for exported timestamps.

  std::mutex mu_;               // Ring list + free list + capacity.
  std::vector<Ring*> rings_;    // All rings ever created (immortal).
  std::vector<Ring*> free_rings_;
};

#if defined(LISPOISON_TELEMETRY_DISABLED)

/// Compiled-out span/instant: no ring write, no enabled load.
class TraceSpan {
 public:
  TraceSpan(TraceCategory, const char*, std::int64_t = 0) {}
};
inline void TraceInstant(TraceCategory, const char*, std::int64_t = 0) {}

#else

/// \brief RAII begin/end span. The enabled check is latched at
/// construction so a span never emits an unmatched end event when the
/// session stops mid-span.
class TraceSpan {
 public:
  TraceSpan(TraceCategory cat, const char* name, std::int64_t arg = 0)
      : cat_(cat), name_(name) {
    TraceSession& session = TraceSession::Global();
    armed_ = session.enabled();
    if (armed_) session.Record('B', cat_, name_, arg);
  }
  ~TraceSpan() {
    if (armed_) TraceSession::Global().Record('E', cat_, name_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCategory cat_;
  const char* name_;
  bool armed_ = false;
};

/// \brief One instant event (rebuild failure, phase marker, ...).
inline void TraceInstant(TraceCategory cat, const char* name,
                         std::int64_t arg = 0) {
  TraceSession& session = TraceSession::Global();
  if (session.enabled()) session.Record('i', cat, name, arg);
}

#endif  // LISPOISON_TELEMETRY_DISABLED

}  // namespace lispoison

#endif  // LISPOISON_COMMON_TELEMETRY_H_
