#include "common/ascii_plot.h"

#include <algorithm>

namespace lispoison {

void RenderKeyHistogram(std::ostream& os, const std::vector<Key>& primary,
                        const std::vector<Key>& overlay, Key lo, Key hi,
                        int width) {
  if (width < 1 || hi < lo) return;
  std::vector<int> p_counts(static_cast<std::size_t>(width), 0);
  std::vector<int> o_counts(static_cast<std::size_t>(width), 0);
  const double scale =
      static_cast<double>(width) / static_cast<double>(hi - lo + 1);
  auto bucket = [&](Key k) {
    double pos = static_cast<double>(k - lo) * scale;
    if (pos < 0) pos = 0;
    auto b = static_cast<std::size_t>(pos);
    if (b >= static_cast<std::size_t>(width)) {
      b = static_cast<std::size_t>(width) - 1;
    }
    return b;
  };
  for (Key k : primary) p_counts[bucket(k)] += 1;
  for (Key k : overlay) o_counts[bucket(k)] += 1;
  int max_count = 1;
  for (int i = 0; i < width; ++i) {
    max_count = std::max(max_count, p_counts[static_cast<std::size_t>(i)] +
                                        o_counts[static_cast<std::size_t>(i)]);
  }
  for (int level = max_count; level >= 1; --level) {
    std::string row = "  ";
    for (int i = 0; i < width; ++i) {
      const int p = p_counts[static_cast<std::size_t>(i)];
      const int total = p + o_counts[static_cast<std::size_t>(i)];
      if (total >= level) {
        // Primary fills the bottom of the stack, overlay the top.
        row += (level > p) ? '*' : '#';
      } else {
        row += ' ';
      }
    }
    os << row << "\n";
  }
  os << "  " << std::string(static_cast<std::size_t>(width), '-') << "\n";
}

void RenderCdfStaircase(std::ostream& os, const std::vector<Key>& sorted_keys,
                        int width, int height) {
  if (sorted_keys.empty() || width < 1 || height < 1) return;
  const Key lo = sorted_keys.front();
  const Key hi = sorted_keys.back();
  const double x_scale = hi > lo ? static_cast<double>(width - 1) /
                                       static_cast<double>(hi - lo)
                                 : 0.0;
  const double y_scale =
      sorted_keys.size() > 1
          ? static_cast<double>(height - 1) /
                static_cast<double>(sorted_keys.size() - 1)
          : 0.0;
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  for (std::size_t i = 0; i < sorted_keys.size(); ++i) {
    const auto col = static_cast<std::size_t>(
        static_cast<double>(sorted_keys[i] - lo) * x_scale);
    const auto row = static_cast<std::size_t>(static_cast<double>(i) *
                                              y_scale);
    grid[static_cast<std::size_t>(height) - 1 - row][col] = 'o';
  }
  for (const auto& row : grid) os << "  " << row << "\n";
  os << "  " << std::string(static_cast<std::size_t>(width), '-') << "\n";
}

}  // namespace lispoison
