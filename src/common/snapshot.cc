#include "common/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault.h"

namespace lispoison {
namespace {

constexpr char kMagic[8] = {'L', 'P', 'S', 'N', 'A', 'P', '0', '1'};
constexpr std::size_t kNameBytes = 16;
constexpr std::size_t kAlign = 8;

// On-disk layouts. Fixed-width, trivially copyable, 8-byte packed by
// construction (no implicit padding).
struct RawHeader {
  char magic[8];
  std::uint64_t section_count;
};
struct RawEntry {
  char name[kNameBytes];
  std::uint64_t offset;  // From file start, kAlign-aligned.
  std::uint64_t size;    // Payload bytes.
  std::uint64_t digest;  // FNV-1a of the payload.
};
static_assert(sizeof(RawHeader) == 16, "packed header");
static_assert(sizeof(RawEntry) == 40, "packed table entry");

std::size_t AlignUp(std::size_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

/// Durability of the rename itself: fsyncing the temp file makes the
/// *contents* durable, but the rename only lives in the parent
/// directory — until the directory inode is synced, a crash can forget
/// the whole atomic publish. The classic fsync-the-file-but-not-the-dir
/// bug; every LSM write path (RocksDB et al.) carries this companion
/// sync.
Status SyncParentDir(const std::string& path) {
  std::string dir;
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    dir = ".";
  } else if (slash == 0) {
    dir = "/";
  } else {
    dir = path.substr(0, slash);
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return Status::IOError(Errno("cannot open snapshot directory", dir));
  }
  const bool synced = ::fsync(dfd) == 0;
  const int saved_errno = errno;
  ::close(dfd);
  if (!synced) {
    errno = saved_errno;
    return Status::IOError(Errno("cannot fsync snapshot directory", dir));
  }
  return Status::OK();
}

}  // namespace

std::uint64_t Fnv1a64Extend(std::uint64_t seed, const void* data,
                            std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t Fnv1a64(const void* data, std::size_t size) {
  return Fnv1a64Extend(0xcbf29ce484222325ULL, data, size);
}

void SnapshotWriter::AddSection(const std::string& name, const void* data,
                                std::size_t size) {
  Pending p;
  p.name = name;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  p.bytes.assign(bytes, bytes + size);
  sections_.push_back(std::move(p));
}

Status SnapshotWriter::WriteToFile(const std::string& path) const {
  for (const Pending& p : sections_) {
    if (p.name.empty() || p.name.size() >= kNameBytes) {
      return Status::InvalidArgument("snapshot section name '" + p.name +
                                     "' must be 1..15 bytes");
    }
  }

  // Assemble header + table with final offsets.
  RawHeader hdr{};
  std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
  hdr.section_count = sections_.size();
  std::vector<RawEntry> table(sections_.size());
  std::size_t offset =
      AlignUp(sizeof(RawHeader) + sizeof(RawEntry) * sections_.size());
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    RawEntry& e = table[i];
    std::memset(e.name, 0, kNameBytes);
    std::memcpy(e.name, sections_[i].name.data(), sections_[i].name.size());
    e.offset = offset;
    e.size = sections_[i].bytes.size();
    e.digest = Fnv1a64(sections_[i].bytes.data(), sections_[i].bytes.size());
    offset = AlignUp(offset + sections_[i].bytes.size());
  }

  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError(Errno("cannot create snapshot tmp", tmp));
  }
  auto write_all = [&](const void* data, std::size_t size) {
    return size == 0 || std::fwrite(data, 1, size, f) == size;
  };
  // The injected-fault path models any syscall-level write failure
  // (short write, ENOSPC, EIO): it rides the same ok-chain, so it
  // exercises exactly the cleanup (unlink + IOError) a real one takes.
  bool ok = !FAULT_POINT("snapshot.write") &&
            write_all(&hdr, sizeof(hdr)) &&
            write_all(table.data(), sizeof(RawEntry) * table.size());
  std::size_t written = sizeof(RawHeader) + sizeof(RawEntry) * table.size();
  static const char kZeros[kAlign] = {};
  for (std::size_t i = 0; ok && i < sections_.size(); ++i) {
    const std::size_t pad = AlignUp(written) - written;
    ok = write_all(kZeros, pad) &&
         write_all(sections_[i].bytes.data(), sections_[i].bytes.size());
    written = AlignUp(written) + sections_[i].bytes.size();
  }
  if (ok) ok = std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    ::unlink(tmp.c_str());
    return Status::IOError(Errno("short write to snapshot tmp", tmp));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError(Errno("cannot publish snapshot", path));
  }
  // The write is only crash-durable once the directory entry is too.
  return SyncParentDir(path);
}

SnapshotReader& SnapshotReader::operator=(SnapshotReader&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_size_);
    map_ = other.map_;
    map_size_ = other.map_size_;
    table_ = std::move(other.table_);
    other.map_ = nullptr;
    other.map_size_ = 0;
    other.table_.clear();
  }
  return *this;
}

SnapshotReader::~SnapshotReader() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound(Errno("cannot open snapshot", path));
  }
  if (FAULT_POINT("snapshot.read")) {
    // Models an EIO between open and map — the taxonomy slot a real
    // disk error lands in (IOError, distinct from NotFound above and
    // the FailedPrecondition format checks below).
    ::close(fd);
    return Status::IOError("injected read fault on snapshot '" + path + "'");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(Errno("cannot stat snapshot", path));
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size < sizeof(RawHeader)) {
    ::close(fd);
    return Status::FailedPrecondition("snapshot '" + path +
                                      "' is too short for a header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (map == MAP_FAILED) {
    return Status::IOError(Errno("cannot mmap snapshot", path));
  }
  SnapshotReader reader;
  reader.map_ = map;
  reader.map_size_ = size;

  const unsigned char* base = static_cast<const unsigned char*>(map);
  RawHeader hdr;
  std::memcpy(&hdr, base, sizeof(hdr));
  if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::FailedPrecondition("snapshot '" + path +
                                      "' has a bad magic/version");
  }
  const std::uint64_t count = hdr.section_count;
  if (count > (size - sizeof(RawHeader)) / sizeof(RawEntry)) {
    return Status::FailedPrecondition("snapshot '" + path +
                                      "' section table exceeds the file");
  }
  reader.table_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    RawEntry e;
    std::memcpy(&e, base + sizeof(RawHeader) + i * sizeof(RawEntry),
                sizeof(e));
    if (e.offset > size || e.size > size - e.offset) {
      return Status::FailedPrecondition("snapshot '" + path +
                                        "' section payload exceeds the file");
    }
    Entry entry;
    entry.name.assign(e.name, strnlen(e.name, kNameBytes));
    entry.data = base + e.offset;
    entry.size = static_cast<std::size_t>(e.size);
    if (Fnv1a64(entry.data, entry.size) != e.digest) {
      return Status::FailedPrecondition("snapshot '" + path + "' section '" +
                                        entry.name + "' fails its checksum");
    }
    reader.table_.push_back(std::move(entry));
  }
  return reader;
}

Result<SnapshotReader::Section> SnapshotReader::Find(
    const std::string& name) const {
  for (const Entry& e : table_) {
    if (e.name == name) return Section{e.data, e.size};
  }
  return Status::NotFound("snapshot has no section '" + name + "'");
}

}  // namespace lispoison
