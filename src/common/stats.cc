#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace lispoison {

double Quantile(const std::vector<double>& sorted_values, double q) {
  if (sorted_values.empty()) return 0.0;
  if (q <= 0.0) return sorted_values.front();
  if (q >= 1.0) return sorted_values.back();
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_values.size()) return sorted_values.back();
  return sorted_values[lo] * (1.0 - frac) + sorted_values[lo + 1] * frac;
}

BoxplotSummary ComputeBoxplot(std::vector<double> values) {
  BoxplotSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.q1 = Quantile(values, 0.25);
  s.median = Quantile(values, 0.5);
  s.q3 = Quantile(values, 0.75);
  s.mean = Mean(values);
  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;
  s.whisker_lo = s.max;
  s.whisker_hi = s.min;
  for (double v : values) {
    if (v >= lo_fence) {
      s.whisker_lo = v;
      break;
    }
  }
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    if (*it <= hi_fence) {
      s.whisker_hi = *it;
      break;
    }
  }
  return s;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

std::string BoxplotSummary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g mean=%.3g",
                min, q1, median, q3, max, mean);
  return buf;
}

}  // namespace lispoison
