#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/fault.h"

namespace lispoison {

ThreadPool::ThreadPool(int num_threads, bool inline_when_single) {
  if (num_threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  num_threads_ = num_threads;
  if (num_threads_ <= 1 && inline_when_single) return;  // No workers.
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Stall-injection site: armed with {latency_ns, fail=false} it
    // wedges the worker between dequeue and execution — the maintenance
    // watchdog's storm — without ever dropping the task (the returned
    // flag is deliberately ignored; a pool must not lose work).
    (void)FAULT_POINT("pool.task");
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::int64_t ThreadPool::queue_depth() {
  std::unique_lock<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(queue_.size());
}

std::int64_t ThreadPool::active_workers() {
  // pending_ counts queued + running, so the running share is the
  // difference — both read under one lock acquisition for consistency.
  std::unique_lock<std::mutex> lock(mu_);
  return pending_ - static_cast<std::int64_t>(queue_.size());
}

void ThreadPool::ParallelFor(std::int64_t count,
                             const std::function<void(std::int64_t)>& fn) {
  if (count <= 0) return;
  if (workers_.empty() || count == 1) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Dynamic self-scheduling over a shared atomic cursor: workers pull the
  // next index until exhausted. Iterations write disjoint state, so the
  // pull order cannot affect results.
  auto cursor = std::make_shared<std::atomic<std::int64_t>>(0);
  const int tasks = static_cast<int>(
      std::min<std::int64_t>(count, static_cast<std::int64_t>(num_threads_)));
  for (int t = 0; t < tasks; ++t) {
    Submit([cursor, count, &fn] {
      for (;;) {
        const std::int64_t i = cursor->fetch_add(1);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  Wait();
}

}  // namespace lispoison
