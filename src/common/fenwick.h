// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// A Fenwick tree (binary indexed tree) over a fixed index space with
// point updates and prefix-sum queries, both O(log size). Used by the
// incremental loss landscape to keep key-sum aggregates queryable after
// poisoning insertions without rebuilding the O(n) suffix-sum array.

#ifndef LISPOISON_COMMON_FENWICK_H_
#define LISPOISON_COMMON_FENWICK_H_

#include <cstddef>
#include <vector>

namespace lispoison {

/// \brief Fenwick tree over `size` slots indexed 0..size-1.
///
/// T must be an additive group (operator+=, operator-, value-initialized
/// zero). The tree is fixed-size: slots are allocated up front and only
/// their values change.
template <typename T>
class FenwickTree {
 public:
  FenwickTree() = default;
  explicit FenwickTree(std::size_t size) : tree_(size + 1, T{}) {}

  /// \brief Discards all values and re-sizes to \p size slots.
  void Reset(std::size_t size) { tree_.assign(size + 1, T{}); }

  /// \brief Number of slots.
  std::size_t size() const { return tree_.empty() ? 0 : tree_.size() - 1; }

  /// \brief Adds \p delta to slot \p i (0-based).
  void Add(std::size_t i, T delta) {
    for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// \brief Sum of the first \p count slots (indices 0..count-1).
  T PrefixSum(std::size_t count) const {
    T sum{};
    if (count > size()) count = size();
    for (std::size_t j = count; j > 0; j -= j & (~j + 1)) {
      sum += tree_[j];
    }
    return sum;
  }

  /// \brief Sum over every slot.
  T Total() const { return PrefixSum(size()); }

 private:
  std::vector<T> tree_;  // 1-based internal layout.
};

}  // namespace lispoison

#endif  // LISPOISON_COMMON_FENWICK_H_
