#include "common/rng.h"

#include <cmath>

namespace lispoison {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro state must not be all-zero; SplitMix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<std::int64_t>(NextU64());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r;
  do {
    r = NextU64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::NormalStd() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; avoid log(0).
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

Rng Rng::Fork(std::uint64_t stream) const {
  // Mix the current state with the stream id through SplitMix64.
  std::uint64_t mix = s_[0] ^ Rotl(s_[3], 13) ^ (stream * 0xD1B54A32D192ED03ULL);
  return Rng(SplitMix64(&mix));
}

}  // namespace lispoison
