// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Aligned plain-text table rendering for the bench binaries, which print
// the paper's figure series as rows instead of plots.

#ifndef LISPOISON_COMMON_TABLE_H_
#define LISPOISON_COMMON_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace lispoison {

/// \brief Builds and prints a column-aligned text table.
class TextTable {
 public:
  /// \brief Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// \brief Appends a data row (cells as preformatted strings).
  void AddRow(std::vector<std::string> row);

  /// \brief Convenience: formats a double with \p precision digits.
  static std::string Fmt(double v, int precision = 3);

  /// \brief Convenience: formats an integer.
  static std::string Fmt(std::int64_t v);

  /// \brief Renders the table to \p os with a separator under the header.
  void Print(std::ostream& os) const;

  /// \brief Renders as CSV (no alignment, comma-separated).
  void PrintCsv(std::ostream& os) const;

  /// \brief Number of data rows.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lispoison

#endif  // LISPOISON_COMMON_TABLE_H_
