#include "common/fault.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace lispoison {
namespace {

// Local FNV-1a over the point name: fault.cc must not depend on
// snapshot.h (snapshot.cc is itself a fault-point client).
std::uint64_t Fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

bool FaultPoint::Evaluate() {
  if (!armed_.load(std::memory_order_acquire)) return false;
  bool fired = false;
  bool fail = false;
  std::int64_t sleep_ns = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-check under the mutex: DisarmAll may have won the race, and a
    // post-disarm evaluation must neither count nor draw.
    if (!armed_.load(std::memory_order_relaxed)) return false;
    ++hits_;
    bool fire = !spec_.fire_on_hits.empty() &&
                std::find(spec_.fire_on_hits.begin(),
                          spec_.fire_on_hits.end(),
                          hits_) != spec_.fire_on_hits.end();
    // The probability stream is consumed on *every* armed evaluation,
    // scheduled fire or not: the k-th draw depends only on k, never on
    // the schedule, which keeps replays stable when a test tweaks
    // fire_on_hits without touching the seed.
    if (spec_.probability > 0.0) {
      const bool draw = rng_.NextDouble() < spec_.probability;
      fire = fire || draw;
    }
    if (fire && spec_.max_fires >= 0 && fires_ >= spec_.max_fires) {
      fire = false;
    }
    if (fire) {
      ++fires_;
      fired = true;
      fail = spec_.fail;
      sleep_ns = spec_.latency_ns;
    }
  }
  if (fired && sleep_ns > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
  }
  return fired && fail;
}

void FaultPoint::Arm(const FaultSpec& spec, Rng rng) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  rng_ = rng;
  hits_ = 0;
  fires_ = 0;
  armed_.store(true, std::memory_order_release);
}

void FaultPoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
}

std::int64_t FaultPoint::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t FaultPoint::fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_;
}

FaultRegistry& FaultRegistry::Global() {
  // Leaked: evaluations may arrive from worker threads that outlive
  // every static destructor (same argument as EpochDomain::Global).
  static FaultRegistry* const registry = new FaultRegistry();
  return *registry;
}

FaultPoint* FaultRegistry::GetPoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<FaultPoint>(name)).first;
  }
  return it->second.get();
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : points_) entry.second->Disarm();
}

std::vector<FaultPoint*> FaultRegistry::Points() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultPoint*> out;
  out.reserve(points_.size());
  for (auto& entry : points_) out.push_back(entry.second.get());
  return out;
}

FaultPlan& FaultPlan::Arm(const std::string& name, FaultSpec spec) {
  for (auto& arm : arms_) {
    if (arm.first == name) {
      arm.second = std::move(spec);
      return *this;
    }
  }
  arms_.emplace_back(name, std::move(spec));
  return *this;
}

void FaultPlan::Activate() {
  for (const auto& arm : arms_) {
    FaultPoint* point = FaultRegistry::Global().GetPoint(arm.first);
    point->Arm(arm.second, Rng(seed_).Fork(Fnv1a64(arm.first)));
  }
}

}  // namespace lispoison
