// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Sectioned binary snapshot container for large attack state (keysets,
// landscape aggregates, greedy checkpoints). Layout:
//
//   [ header   ]  magic "LPSNAP01", section count
//   [ table    ]  per section: 16-byte name, offset, size, FNV-1a digest
//   [ payloads ]  raw little-endian bytes, each 8-byte aligned
//
// Writes are atomic (tmp file + fsync + rename), so a crash mid-write
// never leaves a half-visible snapshot. Reads go through mmap with
// PROT_READ: a 10M-key keyset (~80 MB) opens in microseconds and pages
// in lazily as sections are walked; every section access verifies its
// table digest once, so a truncated or bit-flipped file fails loudly
// instead of resuming a multi-hour attack from garbage.
//
// The format is host-endian (little-endian in practice: x86-64 /
// aarch64), fixed-width, and versioned by the magic — a deliberate
// non-goal is cross-endian portability, which none of the attack
// tooling needs.

#ifndef LISPOISON_COMMON_SNAPSHOT_H_
#define LISPOISON_COMMON_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace lispoison {

/// \brief FNV-1a 64-bit digest, the snapshot section checksum (also
/// used to fingerprint keysets for checkpoint/keyset pairing).
std::uint64_t Fnv1a64(const void* data, std::size_t size);

/// \brief Incremental FNV-1a, for digesting discontiguous state.
std::uint64_t Fnv1a64Extend(std::uint64_t seed, const void* data,
                            std::size_t size);

/// \brief Collects named byte sections and writes them as one atomic
/// snapshot file. Section payloads are copied at Add time, so callers
/// may free their buffers immediately.
class SnapshotWriter {
 public:
  /// \brief Appends section \p name (at most 15 bytes, unique within
  /// the snapshot) with \p size bytes from \p data.
  void AddSection(const std::string& name, const void* data,
                  std::size_t size);

  /// \brief Typed convenience: the elements of \p v as raw bytes.
  template <typename T>
  void AddVectorSection(const std::string& name, const std::vector<T>& v) {
    AddSection(name, v.data(), v.size() * sizeof(T));
  }

  /// \brief Typed convenience: one trivially-copyable record.
  template <typename T>
  void AddPodSection(const std::string& name, const T& pod) {
    AddSection(name, &pod, sizeof(T));
  }

  /// \brief Writes "<path>.tmp", fsyncs, and renames over \p path.
  Status WriteToFile(const std::string& path) const;

 private:
  struct Pending {
    std::string name;
    std::vector<unsigned char> bytes;
  };
  std::vector<Pending> sections_;
};

/// \brief Read-only mmap view of a snapshot file. Move-only; unmaps on
/// destruction. Section pointers stay valid for the reader's lifetime.
class SnapshotReader {
 public:
  struct Section {
    const void* data = nullptr;
    std::size_t size = 0;
  };

  /// \brief Opens and validates \p path: magic, table bounds, and every
  /// section's FNV-1a digest (one sequential pass; the kernel readahead
  /// makes this the natural prefetch for the resume that follows).
  static Result<SnapshotReader> Open(const std::string& path);

  SnapshotReader(SnapshotReader&& other) noexcept { *this = std::move(other); }
  SnapshotReader& operator=(SnapshotReader&& other) noexcept;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;
  ~SnapshotReader();

  /// \brief Section \p name, or NotFound.
  Result<Section> Find(const std::string& name) const;

  /// \brief Typed view of a section holding an array of T; fails with
  /// FailedPrecondition when the byte size is not a multiple of
  /// sizeof(T).
  template <typename T>
  Result<std::vector<T>> ReadVector(const std::string& name) const {
    auto sec = Find(name);
    if (!sec.ok()) return sec.status();
    if (sec->size % sizeof(T) != 0) {
      return Status::FailedPrecondition("snapshot section '" + name +
                                        "' size is not a multiple of the "
                                        "element size");
    }
    std::vector<T> out(sec->size / sizeof(T));
    std::memcpy(out.data(), sec->data, sec->size);
    return out;
  }

  /// \brief One trivially-copyable record; fails when sizes mismatch.
  template <typename T>
  Result<T> ReadPod(const std::string& name) const {
    auto sec = Find(name);
    if (!sec.ok()) return sec.status();
    if (sec->size != sizeof(T)) {
      return Status::FailedPrecondition("snapshot section '" + name +
                                        "' has unexpected size");
    }
    T out;
    std::memcpy(&out, sec->data, sizeof(T));
    return out;
  }

  std::size_t section_count() const { return table_.size(); }

 private:
  SnapshotReader() = default;

  struct Entry {
    std::string name;
    const unsigned char* data = nullptr;
    std::size_t size = 0;
  };
  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  std::vector<Entry> table_;
};

}  // namespace lispoison

#endif  // LISPOISON_COMMON_SNAPSHOT_H_
