// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Deterministic pseudo-random number generation. Every experiment in the
// repository is seeded explicitly so figures are reproducible run-to-run;
// we therefore ship our own small generator (xoshiro256**) instead of
// relying on implementation-defined std:: distributions.

#ifndef LISPOISON_COMMON_RNG_H_
#define LISPOISON_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace lispoison {

/// \brief Deterministic random number generator (xoshiro256** seeded via
/// SplitMix64) with the handful of distributions the experiments need.
///
/// The generator is cheap to copy; `Fork(stream)` derives an independent
/// stream for parallel or per-trial use without correlating sequences.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed);

  /// \brief Next raw 64-bit value.
  std::uint64_t NextU64();

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform integer in the inclusive range [lo, hi].
  /// Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// \brief Standard normal via Box-Muller (cached second value).
  double NormalStd();

  /// \brief Normal with the given mean and standard deviation.
  double Normal(double mu, double sigma) { return mu + sigma * NormalStd(); }

  /// \brief Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (std::size_t i = v->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Derives an independent generator for substream \p stream.
  Rng Fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace lispoison

#endif  // LISPOISON_COMMON_RNG_H_
