// Copyright (c) lispoison authors. Licensed under the MIT license.

#include "common/telemetry.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "common/json_writer.h"

namespace lispoison {

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Merge-diffs two name-sorted scalar vectors: cur - prev, treating a
/// name missing from prev as 0 (instruments are never removed, so every
/// prev name is present in cur).
std::vector<MetricsSnapshot::Scalar> DiffScalars(
    const std::vector<MetricsSnapshot::Scalar>& cur,
    const std::vector<MetricsSnapshot::Scalar>& prev) {
  std::vector<MetricsSnapshot::Scalar> out;
  out.reserve(cur.size());
  std::size_t p = 0;
  for (const auto& c : cur) {
    while (p < prev.size() && prev[p].name < c.name) ++p;
    const std::int64_t base =
        (p < prev.size() && prev[p].name == c.name) ? prev[p].value : 0;
    out.push_back({c.name, c.value - base});
  }
  return out;
}

const MetricsSnapshot::Histogram* FindHistogram(
    const std::vector<MetricsSnapshot::Histogram>& hists,
    const std::string& name) {
  for (const auto& h : hists) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// TelemetryRegistry: slot assignment.
// ---------------------------------------------------------------------------

/// Thread-exit hook, same shape as epoch.h's ThreadSlotHolder: the
/// destructor returns the slot to the (immortal) registry's free list.
/// Cell values are deliberately NOT cleared — a recycled slot carries
/// the previous owner's counts forward, so aggregates never go
/// backwards when threads churn.
struct TelemetrySlotHandle {
  int slot = -1;
  ~TelemetrySlotHandle() {
    if (slot >= 0) TelemetryRegistry::Global().ReleaseSlot(slot);
  }
};

namespace {
thread_local TelemetrySlotHandle t_telemetry_slot;
}  // namespace

TelemetryRegistry& TelemetryRegistry::Global() {
  // Leaked on purpose (see ~TelemetryRegistry): worker threads exiting
  // after main() still release their slots into a live registry.
  static TelemetryRegistry* const registry = [] {
    auto* r = new TelemetryRegistry();
    r->start_ns_ = NowNs();
    return r;
  }();
  return *registry;
}

int TelemetryRegistry::ThreadSlot() {
  if (t_telemetry_slot.slot < 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_slots_.empty()) {
      t_telemetry_slot.slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      t_telemetry_slot.slot =
          slot_high_water_.load(std::memory_order_relaxed);
      slot_high_water_.store(t_telemetry_slot.slot + 1,
                             std::memory_order_release);
    }
  }
  return t_telemetry_slot.slot;
}

void TelemetryRegistry::ReleaseSlot(int slot) {
  std::lock_guard<std::mutex> lock(mu_);
  free_slots_.push_back(slot);
}

std::int64_t TelemetryRegistry::slots_created() { return SlotHighWater(); }

std::int64_t TelemetryRegistry::slots_free() {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(free_slots_.size());
}

// ---------------------------------------------------------------------------
// TelemetryRegistry: instruments.
// ---------------------------------------------------------------------------

TelemetryCounter* TelemetryRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, new TelemetryCounter(this, name)).first;
  }
  return it->second;
}

TelemetryGauge* TelemetryRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, new TelemetryGauge(this, name)).first;
  }
  return it->second;
}

TelemetryHistogram* TelemetryRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, new TelemetryHistogram(this, name)).first;
  }
  return it->second;
}

std::int64_t TelemetryRegistry::RegisterObservable(
    std::string name, std::function<std::int64_t()> poll) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t id = next_observable_id_++;
  observables_.push_back({id, std::move(name), std::move(poll)});
  return id;
}

void TelemetryRegistry::UnregisterObservable(std::int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  observables_.erase(
      std::remove_if(observables_.begin(), observables_.end(),
                     [id](const Observable& o) { return o.id == id; }),
      observables_.end());
}

MetricsSnapshot TelemetryRegistry::Snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  const int slots = SlotHighWater();
  MetricsSnapshot snap;
  snap.ts_ns = NowNs() - start_ns_;

  for (const auto& [name, counter] : counters_) {
    std::int64_t total = 0;
    for (int s = 0; s < slots; ++s) {
      if (const auto* cell = counter->cells_.Peek(s)) {
        total += cell->value.load(std::memory_order_relaxed);
      }
    }
    snap.counters.push_back({name, total});
  }

  for (const auto& [name, gauge] : gauges_) {
    std::int64_t total = 0;
    for (int s = 0; s < slots; ++s) {
      if (const auto* cell = gauge->cells_.Peek(s)) {
        total += cell->value.load(std::memory_order_relaxed);
      }
    }
    snap.gauges.push_back({name, total});
  }

  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::Histogram h;
    h.name = name;
    h.buckets.assign(
        static_cast<std::size_t>(LatencyHistogram::NumBuckets()), 0);
    for (int s = 0; s < slots; ++s) {
      const auto* cell = hist->cells_.Peek(s);
      if (cell == nullptr) continue;
      const auto* data = cell->data.load(std::memory_order_acquire);
      if (data == nullptr) continue;
      for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        h.buckets[b] += data->buckets[b].load(std::memory_order_relaxed);
      }
      h.sum += data->sum.load(std::memory_order_relaxed);
    }
    // Count is derived from the buckets (not the per-cell count atomic)
    // so interval bucket-deltas telescope exactly to the total: the two
    // atomics are incremented separately and a snapshot may land in
    // between.
    for (const std::int64_t b : h.buckets) h.count += b;
    snap.histograms.push_back(std::move(h));
  }

  // Observables: poll under mu_, summing duplicates of the same name.
  std::map<std::string, std::int64_t> polled;
  for (const auto& o : observables_) polled[o.name] += o.poll();
  for (const auto& [name, value] : polled) {
    snap.observables.push_back({name, value});
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Instruments: hot paths.
// ---------------------------------------------------------------------------

#if defined(LISPOISON_TELEMETRY_DISABLED)

void TelemetryCounter::Add(std::int64_t n) { (void)n; }
void TelemetryGauge::Add(std::int64_t delta) { (void)delta; }
void TelemetryHistogram::Record(std::int64_t value) { (void)value; }

#else

void TelemetryCounter::Add(std::int64_t n) {
  if (n <= 0 || !registry_->enabled()) return;
  auto* cell = cells_.ForSlot(registry_->ThreadSlot());
  if (cell != nullptr) cell->value.fetch_add(n, std::memory_order_relaxed);
}

void TelemetryGauge::Add(std::int64_t delta) {
  if (delta == 0 || !registry_->enabled()) return;
  auto* cell = cells_.ForSlot(registry_->ThreadSlot());
  if (cell != nullptr) cell->value.fetch_add(delta, std::memory_order_relaxed);
}

void TelemetryHistogram::Record(std::int64_t value) {
  if (!registry_->enabled()) return;
  auto* data = CellData();
  if (data == nullptr) return;
  if (value < 0) value = 0;
  const int index = LatencyHistogram::BucketIndexOf(value);
  data->buckets[static_cast<std::size_t>(index)].fetch_add(
      1, std::memory_order_relaxed);
  data->count.fetch_add(1, std::memory_order_relaxed);
  data->sum.fetch_add(value, std::memory_order_relaxed);
}

#endif  // LISPOISON_TELEMETRY_DISABLED

telemetry_internal::HistogramCellData* TelemetryHistogram::CellData() {
  auto* cell = cells_.ForSlot(registry_->ThreadSlot());
  if (cell == nullptr) return nullptr;
  auto* data = cell->data.load(std::memory_order_acquire);
  if (data == nullptr) {
    auto* fresh = new telemetry_internal::HistogramCellData();
    if (cell->data.compare_exchange_strong(data, fresh,
                                           std::memory_order_acq_rel)) {
      data = fresh;
    } else {
      delete fresh;  // A recycled slot's previous owner already installed.
    }
  }
  return data;
}

std::int64_t TelemetryCounter::Value() const {
  const int slots = registry_->SlotHighWater();
  std::int64_t total = 0;
  for (int s = 0; s < slots; ++s) {
    if (const auto* cell = cells_.Peek(s)) {
      total += cell->value.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::int64_t TelemetryGauge::Value() const {
  const int slots = registry_->SlotHighWater();
  std::int64_t total = 0;
  for (int s = 0; s < slots; ++s) {
    if (const auto* cell = cells_.Peek(s)) {
      total += cell->value.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::int64_t TelemetryHistogram::Count() const {
  const int slots = registry_->SlotHighWater();
  std::int64_t total = 0;
  for (int s = 0; s < slots; ++s) {
    const auto* cell = cells_.Peek(s);
    if (cell == nullptr) continue;
    const auto* data = cell->data.load(std::memory_order_acquire);
    if (data != nullptr) {
      total += data->count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// ObservableGauge.
// ---------------------------------------------------------------------------

ObservableGauge::ObservableGauge(std::string name,
                                 std::function<std::int64_t()> poll)
    : id_(TelemetryRegistry::Global().RegisterObservable(std::move(name),
                                                         std::move(poll))) {}

ObservableGauge::~ObservableGauge() { Reset(); }

ObservableGauge::ObservableGauge(ObservableGauge&& other) noexcept
    : id_(other.id_) {
  other.id_ = 0;
}

ObservableGauge& ObservableGauge::operator=(ObservableGauge&& other) noexcept {
  if (this != &other) {
    Reset();
    id_ = other.id_;
    other.id_ = 0;
  }
  return *this;
}

void ObservableGauge::Reset() {
  if (id_ != 0) {
    TelemetryRegistry::Global().UnregisterObservable(id_);
    id_ = 0;
  }
}

// ---------------------------------------------------------------------------
// TelemetrySampler.
// ---------------------------------------------------------------------------

TelemetrySampler::TelemetrySampler(TelemetryRegistry* registry)
    : registry_(registry != nullptr ? registry
                                    : &TelemetryRegistry::Global()) {}

TelemetrySampler::~TelemetrySampler() { Stop(); }

void TelemetrySampler::Start(std::int64_t interval_ms) {
  Stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    baseline_ = registry_->Snapshot();
    prev_ = baseline_;
    rows_.clear();
    started_ = true;
  }
  if (interval_ms > 0) {
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      stop_ = false;
    }
    thread_ = std::thread([this, interval_ms] {
      std::unique_lock<std::mutex> lock(wake_mu_);
      while (!stop_) {
        wake_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                          [this] { return stop_; });
        if (stop_) break;
        lock.unlock();
        SampleNow();
        lock.lock();
      }
    });
  }
}

void TelemetrySampler::Stop() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    thread_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    SampleLocked();  // Final boundary: no tail activity is lost.
    started_ = false;
  }
}

std::size_t TelemetrySampler::SampleNow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_) return rows_.empty() ? 0 : rows_.size() - 1;
  SampleLocked();
  return rows_.size() - 1;
}

void TelemetrySampler::SampleLocked() {
  MetricsSnapshot cur = registry_->Snapshot();
  TelemetryIntervalRow row;
  row.t_start_ns = prev_.ts_ns;
  row.t_end_ns = cur.ts_ns;
  row.counter_deltas = DiffScalars(cur.counters, prev_.counters);
  row.gauge_values = cur.gauges;
  row.observable_values = cur.observables;
  for (const auto& h : cur.histograms) {
    const MetricsSnapshot::Histogram* base =
        FindHistogram(prev_.histograms, h.name);
    TelemetryIntervalRow::IntervalHistogram ih;
    ih.name = h.name;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      const std::int64_t delta =
          h.buckets[b] - (base != nullptr ? base->buckets[b] : 0);
      if (delta > 0) {
        ih.histogram.RecordBucket(static_cast<int>(b), delta);
        ih.count += delta;
      }
    }
    row.histograms.push_back(std::move(ih));
  }
  rows_.push_back(std::move(row));
  prev_ = std::move(cur);
}

std::vector<TelemetryIntervalRow> TelemetrySampler::Rows() {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

MetricsSnapshot TelemetrySampler::TotalsSinceStart() {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot cur = registry_->Snapshot();
  MetricsSnapshot totals;
  totals.ts_ns = cur.ts_ns;
  totals.counters = DiffScalars(cur.counters, baseline_.counters);
  totals.gauges = cur.gauges;            // Levels, not deltas.
  totals.observables = cur.observables;  // Levels, not deltas.
  for (const auto& h : cur.histograms) {
    const MetricsSnapshot::Histogram* base =
        FindHistogram(baseline_.histograms, h.name);
    MetricsSnapshot::Histogram out;
    out.name = h.name;
    out.sum = h.sum - (base != nullptr ? base->sum : 0);
    out.buckets.assign(h.buckets.size(), 0);
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      out.buckets[b] = h.buckets[b] - (base != nullptr ? base->buckets[b] : 0);
      out.count += out.buckets[b];
    }
    totals.histograms.push_back(std::move(out));
  }
  return totals;
}

// ---------------------------------------------------------------------------
// TraceSession.
// ---------------------------------------------------------------------------

const char* TraceCategoryName(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kServing:
      return "serving";
    case TraceCategory::kDriver:
      return "driver";
    case TraceCategory::kAttack:
      return "attack";
    case TraceCategory::kBench:
      return "bench";
  }
  return "unknown";
}

/// Thread-exit hook returning the ring to the free list; a recycled
/// ring keeps its tid and its events (the exporter still sees them).
struct TraceRingHandle {
  TraceSession::Ring* ring = nullptr;
  ~TraceRingHandle() {
    if (ring != nullptr) TraceSession::Global().ReleaseRing(ring);
  }
};

namespace {
thread_local TraceRingHandle t_trace_ring;

std::int64_t RoundUpPow2(std::int64_t v) {
  std::int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

TraceSession::Ring::Ring(std::int64_t capacity)
    : slots(static_cast<std::size_t>(capacity)) {}

TraceSession& TraceSession::Global() {
  static TraceSession* const session = [] {
    auto* s = new TraceSession();
    s->start_ns_ = NowNs();
    return s;
  }();
  return *session;
}

void TraceSession::Start(std::int64_t events_per_thread) {
  std::lock_guard<std::mutex> lock(mu_);
  // Rings already handed out keep their old capacity; pick the ring
  // size before the first traced event.
  capacity_ = RoundUpPow2(std::max<std::int64_t>(16, events_per_thread));
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceSession::Stop() { enabled_.store(false, std::memory_order_relaxed); }

TraceSession::Ring* TraceSession::LocalRing() {
  if (t_trace_ring.ring == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_rings_.empty()) {
      t_trace_ring.ring = free_rings_.back();
      free_rings_.pop_back();
    } else {
      auto* ring = new Ring(capacity_);
      ring->tid = static_cast<int>(rings_.size()) + 1;
      rings_.push_back(ring);
      t_trace_ring.ring = ring;
    }
  }
  return t_trace_ring.ring;
}

void TraceSession::ReleaseRing(Ring* ring) {
  std::lock_guard<std::mutex> lock(mu_);
  free_rings_.push_back(ring);
}

void TraceSession::Record(char phase, TraceCategory cat, const char* name,
                          std::int64_t arg) {
  if (!enabled()) return;
  Ring* ring = LocalRing();
  const std::uint64_t c = ring->cursor.load(std::memory_order_relaxed);
  const std::uint64_t mask = ring->slots.size() - 1;
  Slot& slot = ring->slots[static_cast<std::size_t>(c & mask)];
  // Single-writer seqlock: odd while the fields are in flight, then the
  // generation-stamped even value 2c+2. A concurrent exporter that sees
  // anything but the even stamp for the generation it wants skips the
  // slot — drop-oldest without tearing, and every field is an atomic so
  // the protocol is TSan-clean.
  slot.seq.store(2 * c + 1, std::memory_order_relaxed);
  slot.ts_ns.store(NowNs() - start_ns_, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.cat.store(static_cast<std::uint8_t>(cat), std::memory_order_relaxed);
  slot.phase.store(phase, std::memory_order_relaxed);
  slot.seq.store(2 * c + 2, std::memory_order_release);
  ring->cursor.store(c + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (c >= ring->slots.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // Overwrote one.
  }
}

std::int64_t TraceSession::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::int64_t TraceSession::recorded() const {
  return recorded_.load(std::memory_order_relaxed);
}

void TraceSession::WriteJson(std::ostream* os) {
  struct Event {
    int tid;
    std::int64_t ts_ns;
    const char* name;
    std::uint8_t cat;
    char phase;
    std::int64_t arg;
  };

  // Pass 1: lift every stable slot out of the rings, per ring in
  // logical (== chronological) order. A slot whose sequence is not the
  // even generation stamp is in flight or already overwritten — skip.
  std::vector<std::vector<Event>> per_ring;
  {
    std::lock_guard<std::mutex> lock(mu_);
    per_ring.reserve(rings_.size());
    for (const Ring* ring : rings_) {
      std::vector<Event> events;
      const std::uint64_t cursor =
          ring->cursor.load(std::memory_order_acquire);
      const std::uint64_t size = ring->slots.size();
      const std::uint64_t begin = cursor > size ? cursor - size : 0;
      for (std::uint64_t j = begin; j < cursor; ++j) {
        const Slot& slot = ring->slots[static_cast<std::size_t>(j & (size - 1))];
        const std::uint64_t want = 2 * j + 2;
        if (slot.seq.load(std::memory_order_acquire) != want) continue;
        Event e;
        e.tid = ring->tid;
        e.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
        e.name = slot.name.load(std::memory_order_relaxed);
        e.cat = slot.cat.load(std::memory_order_relaxed);
        e.phase = slot.phase.load(std::memory_order_relaxed);
        e.arg = slot.arg.load(std::memory_order_relaxed);
        if (slot.seq.load(std::memory_order_acquire) != want) continue;
        if (e.name == nullptr) continue;
        events.push_back(e);
      }
      per_ring.push_back(std::move(events));
    }
  }

  // Pass 2: per ring (== per tid), drop begin/end events whose partner
  // fell off the ring so the exported stream always balances B/E.
  JsonWriter w(os, /*pretty=*/false);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const auto& events : per_ring) {
    std::vector<bool> keep(events.size(), false);
    std::vector<std::size_t> open;  // Indices of unmatched 'B' events.
    for (std::size_t i = 0; i < events.size(); ++i) {
      switch (events[i].phase) {
        case 'B':
          open.push_back(i);
          break;
        case 'E':
          if (!open.empty()) {
            keep[open.back()] = true;
            keep[i] = true;
            open.pop_back();
          }
          break;
        default:
          keep[i] = true;
          break;
      }
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (!keep[i]) continue;
      const Event& e = events[i];
      w.BeginObject();
      w.KV("name", e.name);
      w.KV("cat", TraceCategoryName(static_cast<TraceCategory>(e.cat)));
      w.KV("ph", std::string(1, e.phase));
      w.KV("ts", static_cast<double>(e.ts_ns) / 1000.0);
      w.KV("pid", 1);
      w.KV("tid", e.tid);
      if (e.phase == 'i') w.KV("s", "t");  // Thread-scoped instant.
      w.Key("args");
      w.BeginObject();
      w.KV("v", e.arg);
      w.EndObject();
      w.EndObject();
    }
  }
  w.EndArray();
  w.KV("displayTimeUnit", "ms");
  w.EndObject();
}

Status TraceSession::WriteJsonFile(const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open trace output: " + path);
  }
  WriteJson(&out);
  out << "\n";
  if (!out.good()) return Status::IOError("failed writing trace: " + path);
  return Status::OK();
}

}  // namespace lispoison
