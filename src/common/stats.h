// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Statistical accumulators and summaries used throughout the attack and
// evaluation code: exact bivariate moments over (key, rank) pairs, sample
// quantiles, and boxplot five-number summaries matching the paper's plots.

#ifndef LISPOISON_COMMON_STATS_H_
#define LISPOISON_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace lispoison {

/// \brief Exact accumulator of first and second bivariate moments of
/// integer (x, y) pairs.
///
/// Sums are kept in 128-bit integers so they are exact for every
/// configuration in the paper (n <= 10^7 keys from a <= 10^9 domain);
/// floating point enters only in the final mean/variance/covariance
/// ratios. Population (not sample) normalization is used, matching the
/// MSE definition of the paper (Definition 1 / Theorem 1).
class MomentAccumulator {
 public:
  MomentAccumulator() = default;

  /// \brief Adds one (x, y) observation.
  void Add(Key x, Rank y) {
    n_ += 1;
    sum_x_ += x;
    sum_y_ += y;
    sum_xx_ += static_cast<Int128>(x) * x;
    sum_yy_ += static_cast<Int128>(y) * y;
    sum_xy_ += static_cast<Int128>(x) * y;
  }

  /// \brief Removes one previously added (x, y) observation.
  void Remove(Key x, Rank y) {
    n_ -= 1;
    sum_x_ -= x;
    sum_y_ -= y;
    sum_xx_ -= static_cast<Int128>(x) * x;
    sum_yy_ -= static_cast<Int128>(y) * y;
    sum_xy_ -= static_cast<Int128>(x) * y;
  }

  /// \brief Number of observations currently accumulated.
  std::int64_t count() const { return n_; }

  /// \name Exact raw sums.
  /// @{
  Int128 sum_x() const { return sum_x_; }
  Int128 sum_y() const { return sum_y_; }
  Int128 sum_xx() const { return sum_xx_; }
  Int128 sum_yy() const { return sum_yy_; }
  Int128 sum_xy() const { return sum_xy_; }
  /// @}

  /// \name Population moments (valid when count() > 0).
  ///
  /// Variances and covariance are computed from the exact 128-bit
  /// numerator n*sum_xy - sum_x*sum_y, so no catastrophic cancellation
  /// occurs even when keys are large (~10^9) and the spread is tiny —
  /// the regime of RMI second-stage partitions. The numerators stay
  /// within 128 bits for n <= ~10^8 keys of magnitude <= ~3*10^9.
  /// @{
  long double MeanX() const { return ToLongDouble(sum_x_) / n_; }
  long double MeanY() const { return ToLongDouble(sum_y_) / n_; }
  long double VarX() const {
    const Int128 num = static_cast<Int128>(n_) * sum_xx_ - sum_x_ * sum_x_;
    const long double nn = static_cast<long double>(n_);
    return ToLongDouble(num) / (nn * nn);
  }
  long double VarY() const {
    const Int128 num = static_cast<Int128>(n_) * sum_yy_ - sum_y_ * sum_y_;
    const long double nn = static_cast<long double>(n_);
    return ToLongDouble(num) / (nn * nn);
  }
  long double CovXY() const {
    const Int128 num = static_cast<Int128>(n_) * sum_xy_ - sum_x_ * sum_y_;
    const long double nn = static_cast<long double>(n_);
    return ToLongDouble(num) / (nn * nn);
  }
  /// @}

 private:
  std::int64_t n_ = 0;
  Int128 sum_x_ = 0;
  Int128 sum_y_ = 0;
  Int128 sum_xx_ = 0;
  Int128 sum_yy_ = 0;
  Int128 sum_xy_ = 0;
};

/// \brief Linearly interpolated sample quantile of \p sorted_values
/// (which must be sorted ascending); q in [0, 1].
double Quantile(const std::vector<double>& sorted_values, double q);

/// \brief Boxplot summary matching the paper's figures: quartiles plus
/// 1.5*IQR whiskers clamped to the data range.
struct BoxplotSummary {
  double min = 0;      ///< Smallest observation.
  double whisker_lo = 0;  ///< Lowest observation >= q1 - 1.5*IQR.
  double q1 = 0;       ///< First quartile.
  double median = 0;   ///< Second quartile.
  double q3 = 0;       ///< Third quartile.
  double whisker_hi = 0;  ///< Highest observation <= q3 + 1.5*IQR.
  double max = 0;      ///< Largest observation.
  double mean = 0;     ///< Arithmetic mean.
  std::size_t count = 0;  ///< Number of observations.

  /// \brief Compact single-line rendering used by the bench tables.
  std::string ToString() const;
};

/// \brief Computes the boxplot summary of \p values (need not be sorted).
/// Returns a zeroed summary when \p values is empty.
BoxplotSummary ComputeBoxplot(std::vector<double> values);

/// \brief Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

}  // namespace lispoison

#endif  // LISPOISON_COMMON_STATS_H_
