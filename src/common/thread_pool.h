// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// A minimal fixed-size thread pool (single shared queue, no work
// stealing) for the embarrassingly parallel parts of the attacks:
// per-model volume allocation and CHANGELOSS simulations. With
// num_threads <= 1 every call runs inline on the caller's thread, which
// doubles as the determinism baseline for the parallel paths.

#ifndef LISPOISON_COMMON_THREAD_POOL_H_
#define LISPOISON_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lispoison {

/// \brief Fixed-size thread pool with a single mutex-guarded FIFO queue.
///
/// Tasks must not throw (the codebase is Status-based and exception
/// free). Determinism contract: callers only submit tasks that write to
/// disjoint, pre-allocated result slots, so results are independent of
/// scheduling order; every decision that depends on task results happens
/// after Wait()/ParallelFor() returns, in a fixed reduction order.
class ThreadPool {
 public:
  /// \brief Spawns \p num_threads workers; 0 means
  /// std::thread::hardware_concurrency(), and <= 1 means inline
  /// execution with no worker threads at all — unless
  /// \p inline_when_single is false, which spawns a real worker even
  /// for a single thread. The serving engine's background maintenance
  /// pool uses that mode: compactions must run off the inserting
  /// thread, so "1 thread" there means one dedicated worker, not
  /// inline execution.
  explicit ThreadPool(int num_threads = 0, bool inline_when_single = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Number of worker threads (1 in inline mode).
  int num_threads() const { return num_threads_; }

  /// \brief Enqueues one task (runs it immediately in inline mode).
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has finished.
  void Wait();

  /// \brief Runs fn(i) for every i in [0, count), spread across the
  /// pool, and blocks until all iterations finish. Iterations must be
  /// independent.
  void ParallelFor(std::int64_t count,
                   const std::function<void(std::int64_t)>& fn);

  /// \name Telemetry accessors (snapshot under the queue mutex; a
  /// value may be stale by the time the caller reads it). The serving
  /// engine exports queue_depth() of its maintenance pool as the
  /// `serving.maintenance_queue_depth` observable gauge.
  /// @{
  /// \brief Tasks enqueued but not yet picked up (always 0 inline).
  std::int64_t queue_depth();
  /// \brief Tasks currently executing on a worker (always 0 inline).
  std::int64_t active_workers();
  /// @}

 private:
  void WorkerLoop();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: queue or stop.
  std::condition_variable done_cv_;   // Signals waiters: pending hit 0.
  std::int64_t pending_ = 0;          // Queued + running tasks.
  bool stop_ = false;
};

}  // namespace lispoison

#endif  // LISPOISON_COMMON_THREAD_POOL_H_
