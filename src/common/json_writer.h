// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// A minimal streaming JSON writer for the bench report emitters. The
// serving benchmarks commit machine-readable reports (mirroring the
// google-benchmark JSON the attack-throughput bench already produces),
// and tools/bench_compare.py consumes both; this writer keeps the
// emission dependency-free.

#ifndef LISPOISON_COMMON_JSON_WRITER_H_
#define LISPOISON_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace lispoison {

/// \brief Streaming JSON emitter with automatic comma/indent handling.
///
/// Usage:
/// \code
///   JsonWriter w(&os);
///   w.BeginObject();
///   w.Key("n");     w.Int(100000);
///   w.Key("tags");  w.BeginArray(); w.String("a"); w.EndArray();
///   w.EndObject();
/// \endcode
///
/// The writer validates nesting with assertions only (it is a bench
/// emitter, not a parser); non-finite doubles are emitted as null so the
/// output always stays valid JSON.
class JsonWriter {
 public:
  /// \brief Writes to \p os; \p pretty adds newlines and 2-space indent.
  explicit JsonWriter(std::ostream* os, bool pretty = true);

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// \brief Emits an object key; the next value call is its value.
  void Key(const std::string& k);

  /// \name Scalar values.
  /// @{
  void String(const std::string& v);
  void Int(std::int64_t v);
  void Double(double v);
  void Bool(bool v);
  void Null();
  /// @}

  /// \name Key + scalar shorthands.
  /// @{
  void KV(const std::string& k, const std::string& v) { Key(k); String(v); }
  void KV(const std::string& k, const char* v) { Key(k); String(v); }
  void KV(const std::string& k, std::int64_t v) { Key(k); Int(v); }
  void KV(const std::string& k, int v) { Key(k); Int(v); }
  void KV(const std::string& k, double v) { Key(k); Double(v); }
  void KV(const std::string& k, bool v) { Key(k); Bool(v); }
  /// @}

  /// \brief Escapes \p v as a JSON string literal (with quotes).
  static std::string Escape(const std::string& v);

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();
  void NewlineIndent();

  std::ostream* os_;
  bool pretty_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // Parallel to stack_.
  bool pending_key_ = false;     // A Key() awaits its value.
};

}  // namespace lispoison

#endif  // LISPOISON_COMMON_JSON_WRITER_H_
