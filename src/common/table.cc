#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace lispoison {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string TextTable::Fmt(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

void TextTable::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&os, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TextTable::PrintCsv(std::ostream& os) const {
  auto print_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace lispoison
