// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// A tiny command-line flag parser for the bench and example binaries.
// Supports `--name=value`, `--name value`, and boolean `--name`.

#ifndef LISPOISON_COMMON_FLAGS_H_
#define LISPOISON_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace lispoison {

/// \brief Parses `--flag[=value]` style command lines for bench/example
/// binaries.
///
/// Usage:
/// \code
///   FlagParser flags(argc, argv);
///   int64_t n = flags.GetInt("keys", 1000);
///   double phi = flags.GetDouble("poison-pct", 10.0);
///   bool full = flags.GetBool("full");
/// \endcode
class FlagParser {
 public:
  /// Parses argv; unknown positional arguments are collected separately.
  FlagParser(int argc, char** argv);

  /// \brief True iff the flag was supplied on the command line.
  bool Has(const std::string& name) const;

  /// \brief Integer flag with default.
  std::int64_t GetInt(const std::string& name, std::int64_t def) const;

  /// \brief Floating-point flag with default.
  double GetDouble(const std::string& name, double def) const;

  /// \brief String flag with default.
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;

  /// \brief Boolean flag: present without value, or =true/=false/=1/=0.
  bool GetBool(const std::string& name, bool def = false) const;

  /// \brief Comma-separated list of integers, e.g. `--sizes=50,100,200`.
  std::vector<std::int64_t> GetIntList(
      const std::string& name, const std::vector<std::int64_t>& def) const;

  /// \brief Comma-separated list of doubles.
  std::vector<double> GetDoubleList(const std::string& name,
                                    const std::vector<double>& def) const;

  /// \brief Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// \brief The binary name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lispoison

#endif  // LISPOISON_COMMON_FLAGS_H_
