// Copyright (c) lispoison authors. Licensed under the MIT license.

#ifndef LISPOISON_COMMON_TIMER_H_
#define LISPOISON_COMMON_TIMER_H_

#include <chrono>

namespace lispoison {

/// \brief Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// \brief Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// \brief Seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Nanoseconds since construction or last Restart().
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lispoison

#endif  // LISPOISON_COMMON_TIMER_H_
