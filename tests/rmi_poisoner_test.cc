#include "attack/rmi_poisoner.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "data/generators.h"

namespace lispoison {
namespace {

RmiAttackOptions BasicOptions(double pct, std::int64_t model_size,
                              double alpha = 3.0) {
  RmiAttackOptions opts;
  opts.poison_fraction = pct / 100.0;
  opts.model_size = model_size;
  opts.alpha = alpha;
  return opts;
}

TEST(RmiPoisonerTest, BudgetIsFullyPlaced) {
  Rng rng(1);
  auto ks = GenerateUniform(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = PoisonRmi(*ks, BasicOptions(10, 100));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_poison_keys, 200);  // floor(0.10 * 2000)
  std::int64_t sum = 0;
  for (const auto& p : result->per_model_poison) {
    sum += static_cast<std::int64_t>(p.size());
  }
  EXPECT_EQ(sum, 200);
}

TEST(RmiPoisonerTest, ThresholdRespectedPerModel) {
  Rng rng(2);
  auto ks = GenerateUniform(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  const double alpha = 2.0;
  auto result = PoisonRmi(*ks, BasicOptions(10, 100, alpha));
  ASSERT_TRUE(result.ok());
  // t = ceil(alpha * phi * n / N) = ceil(2 * 200 / 20) = 20.
  for (const auto& p : result->per_model_poison) {
    EXPECT_LE(static_cast<std::int64_t>(p.size()), 20);
  }
}

TEST(RmiPoisonerTest, PoisonKeysDisjointFromLegitimate) {
  Rng rng(3);
  auto ks = GenerateUniform(1000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = PoisonRmi(*ks, BasicOptions(10, 100));
  ASSERT_TRUE(result.ok());
  std::set<Key> all;
  for (Key kp : result->AllPoisonKeys()) {
    EXPECT_FALSE(ks->Contains(kp)) << kp;
    EXPECT_TRUE(all.insert(kp).second) << "duplicate poison " << kp;
  }
}

TEST(RmiPoisonerTest, LossIncreasesOverClean) {
  Rng rng(4);
  auto ks = GenerateUniform(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = PoisonRmi(*ks, BasicOptions(10, 100));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->rmi_ratio_loss, 2.0);
  EXPECT_GT(static_cast<double>(result->poisoned_rmi_loss),
            static_cast<double>(result->clean_rmi_loss));
}

TEST(RmiPoisonerTest, RetrainedVictimSeesComparableDamage) {
  Rng rng(5);
  auto ks = GenerateUniform(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = PoisonRmi(*ks, BasicOptions(10, 100));
  ASSERT_TRUE(result.ok());
  // The victim retrains on K ∪ P with its own partitioning; the attack
  // must survive the re-partition (within a factor ~3 of the attacker's
  // bookkeeping, and clearly above no-attack).
  EXPECT_GT(result->retrained_rmi_ratio, result->rmi_ratio_loss / 3.0);
  EXPECT_GT(result->retrained_rmi_ratio, 1.5);
}

TEST(RmiPoisonerTest, HigherBudgetMoreDamage) {
  Rng rng(6);
  auto ks = GenerateUniform(3000, KeyDomain{0, 299999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto low = PoisonRmi(*ks, BasicOptions(1, 100));
  auto high = PoisonRmi(*ks, BasicOptions(10, 100));
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GT(high->rmi_ratio_loss, low->rmi_ratio_loss);
}

TEST(RmiPoisonerTest, PerModelVectorsAreConsistent) {
  Rng rng(7);
  auto ks = GenerateUniform(1000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = PoisonRmi(*ks, BasicOptions(5, 100));
  ASSERT_TRUE(result.ok());
  const std::size_t n_models = result->per_model_poison.size();
  EXPECT_EQ(n_models, 10u);
  EXPECT_EQ(result->clean_losses.size(), n_models);
  EXPECT_EQ(result->poisoned_losses.size(), n_models);
  EXPECT_EQ(result->per_model_ratio.size(), n_models);
  for (std::size_t i = 0; i < n_models; ++i) {
    EXPECT_GE(result->per_model_ratio[i], 0.0);
  }
}

TEST(RmiPoisonerTest, LogNormalShowsWiderPerModelSpread) {
  // Section V-B observes the attack behaves differently on log-normal
  // keys: models owning dense clusters amplify non-linearity, giving a
  // larger spread of per-model ratios (bigger whiskers/median) even when
  // the aggregate ratio ordering only emerges at paper scale. Assert the
  // scale-robust parts: both attacks are effective and the log-normal
  // per-model median dominates.
  Rng rng(8);
  auto uniform = GenerateUniform(4000, KeyDomain{0, 999999}, &rng);
  auto lognorm = GenerateLogNormal(4000, KeyDomain{0, 999999}, &rng);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(lognorm.ok());
  auto ru = PoisonRmi(*uniform, BasicOptions(10, 200));
  auto rl = PoisonRmi(*lognorm, BasicOptions(10, 200));
  ASSERT_TRUE(ru.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_GT(ru->rmi_ratio_loss, 1.5);
  EXPECT_GT(rl->rmi_ratio_loss, 1.5);
  const auto box_l = ComputeBoxplot(std::vector<double>(
      rl->per_model_ratio.begin(), rl->per_model_ratio.end()));
  // Wide spread: the hardest-hit log-normal model suffers far more than
  // the median one (the paper's enlarged whiskers).
  EXPECT_GT(box_l.max, 2.0 * box_l.median);
  EXPECT_GT(box_l.max, 5.0);
}

TEST(RmiPoisonerTest, ExchangesAreBookkept) {
  Rng rng(9);
  auto ks = GenerateLogNormal(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = PoisonRmi(*ks, BasicOptions(10, 100));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->exchanges_applied, 0);
  // With alpha=3 headroom on skewed data, some exchanges usually fire.
  auto fixed = BasicOptions(10, 100);
  fixed.max_exchanges = -0;  // Default cap.
}

TEST(RmiPoisonerTest, OptionValidation) {
  Rng rng(10);
  auto ks = GenerateUniform(100, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto opts = BasicOptions(10, 10);
  opts.poison_fraction = 0;
  EXPECT_FALSE(PoisonRmi(*ks, opts).ok());
  opts = BasicOptions(10, 10);
  opts.poison_fraction = 0.9;
  EXPECT_FALSE(PoisonRmi(*ks, opts).ok());
  opts = BasicOptions(10, 10);
  opts.alpha = 0.5;
  EXPECT_FALSE(PoisonRmi(*ks, opts).ok());
  opts = BasicOptions(10, 10);
  opts.num_models = 0;
  opts.model_size = 0;
  EXPECT_FALSE(PoisonRmi(*ks, opts).ok());
  auto empty = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(PoisonRmi(*empty, BasicOptions(10, 10)).ok());
}

TEST(RmiPoisonerTest, TinyBudgetRejected) {
  Rng rng(11);
  auto ks = GenerateUniform(20, KeyDomain{0, 999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto opts = BasicOptions(1, 10);  // floor(0.01 * 20) = 0 keys.
  EXPECT_EQ(PoisonRmi(*ks, opts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RmiPoisonerTest, NumModelsOverridesModelSize) {
  Rng rng(12);
  auto ks = GenerateUniform(1000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto opts = BasicOptions(10, 9999);
  opts.num_models = 4;
  auto result = PoisonRmi(*ks, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_model_poison.size(), 4u);
}

}  // namespace
}  // namespace lispoison
