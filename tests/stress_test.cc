// Randomized stress tests: long random operation sequences checked
// against straightforward reference oracles. These complement the
// per-module unit tests with whole-system consistency under workloads
// no hand-written case would cover.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "attack/deletion_attack.h"
#include "attack/greedy_poisoner.h"
#include "common/rng.h"
#include "common/stats.h"
#include "data/generators.h"
#include "index/btree.h"
#include "index/cdf_regression.h"
#include "index/dynamic_index.h"
#include "index/learned_index.h"

namespace lispoison {
namespace {

// ---------------------------------------------------------------------------
// Dynamic index vs std::set reference under a random insert/lookup mix.
// ---------------------------------------------------------------------------

class DynamicIndexStress : public testing::TestWithParam<int> {};

TEST_P(DynamicIndexStress, RandomOpsMatchReferenceSet) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299721);
  const KeyDomain domain{0, 49999};
  auto initial = GenerateUniform(500, domain, &rng);
  ASSERT_TRUE(initial.ok());

  DynamicIndexOptions opts;
  opts.rmi.target_model_size = 64;
  opts.rmi.root_kind = RootModelKind::kOracle;
  opts.retrain_threshold = 0.04;
  auto idx = DynamicLearnedIndex::Build(*initial, opts);
  ASSERT_TRUE(idx.ok());

  std::set<Key> reference(initial->keys().begin(), initial->keys().end());
  for (int op = 0; op < 2000; ++op) {
    const Key k = rng.UniformInt(domain.lo, domain.hi);
    if (rng.NextDouble() < 0.3) {
      const Status st = idx->Insert(k);
      if (reference.count(k)) {
        EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << k;
      } else {
        EXPECT_TRUE(st.ok()) << st.ToString();
        reference.insert(k);
      }
    } else {
      EXPECT_EQ(idx->Lookup(k).found, reference.count(k) > 0) << k;
    }
  }
  EXPECT_EQ(idx->size(), static_cast<std::int64_t>(reference.size()));
  // Final sweep: every reference key is found.
  for (Key k : reference) {
    ASSERT_TRUE(idx->Lookup(k).found) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicIndexStress, testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Learned index vs B+Tree vs std::vector: identical answers on mixed
// hit/miss probes across distributions.
// ---------------------------------------------------------------------------

class IndexAgreementStress
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IndexAgreementStress, AllIndexesAgree) {
  const auto [dist, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 15485863);
  const KeyDomain domain{0, 199999};
  Result<KeySet> ks = Status::Internal("unset");
  switch (dist) {
    case 0:
      ks = GenerateUniform(3000, domain, &rng);
      break;
    case 1:
      ks = GenerateLogNormal(3000, domain, &rng);
      break;
    default:
      ks = GenerateClustered(3000, domain,
                             {{0.2, 0.03, 1.0}, {0.7, 0.05, 2.0}}, &rng);
      break;
  }
  ASSERT_TRUE(ks.ok());
  RmiOptions opts;
  opts.target_model_size = 128;
  opts.root_kind = RootModelKind::kPiecewiseLinear;
  auto learned = LearnedIndex::Build(*ks, opts);
  auto btree = BPlusTree::Build(*ks, 32);
  ASSERT_TRUE(learned.ok());
  ASSERT_TRUE(btree.ok());
  for (int t = 0; t < 3000; ++t) {
    const Key k = rng.UniformInt(domain.lo, domain.hi);
    const bool expect = ks->Contains(k);
    const LookupResult li = learned->Lookup(k);
    const BTreeLookupResult bi = btree->Lookup(k);
    ASSERT_EQ(li.found, expect) << k;
    ASSERT_EQ(bi.found, expect) << k;
    if (expect) {
      ASSERT_EQ(li.position, bi.position) << k;
      ASSERT_EQ(li.position, *ks->RankOf(k) - 1) << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IndexAgreementStress,
    testing::Combine(testing::Values(0, 1, 2), testing::Range(1, 4)));

// ---------------------------------------------------------------------------
// Deletion landscape O(1) evaluation vs full retraining, every index.
// ---------------------------------------------------------------------------

class DeletionLandscapeStress : public testing::TestWithParam<int> {};

TEST_P(DeletionLandscapeStress, EveryDeletionMatchesRetrain) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 32452843);
  auto ks = GenerateUniform(60, KeyDomain{0, 2999}, &rng);
  ASSERT_TRUE(ks.ok());
  // Reference: retrain from scratch for every single deletion and
  // compare against what one greedy round reports as its maximum.
  long double best_ref = 0;
  for (std::int64_t j = 0; j < ks->size(); ++j) {
    std::vector<Key> remaining = ks->keys();
    remaining.erase(remaining.begin() + j);
    MomentAccumulator acc;
    Rank r = 1;
    for (Key k : remaining) acc.Add(k, r++);
    best_ref = std::max(best_ref, FitFromMoments(acc).mse);
  }
  auto attack = GreedyDeleteCdf(*ks, 1);
  ASSERT_TRUE(attack.ok());
  EXPECT_NEAR(static_cast<double>(attack->attacked_loss),
              static_cast<double>(best_ref),
              1e-9 * std::max(1.0, static_cast<double>(best_ref)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeletionLandscapeStress,
                         testing::Range(1, 16));

// ---------------------------------------------------------------------------
// Attack-then-index pipeline fuzz: random configurations must either
// fail with a clean Status or produce a consistent poisoned index.
// ---------------------------------------------------------------------------

class PipelineFuzz : public testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, RandomConfigurationsNeverCorruptState) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 49979687);
  const std::int64_t n = 50 + rng.UniformInt(0, 400);
  const double density = 0.05 + 0.9 * rng.NextDouble();
  const Key m = static_cast<Key>(static_cast<double>(n) / density) + 2;
  auto ks = GenerateUniform(n, KeyDomain{0, m - 1}, &rng);
  ASSERT_TRUE(ks.ok());
  const std::int64_t p = 1 + rng.UniformInt(0, n / 5);

  auto attack = GreedyPoisonCdf(*ks, p);
  if (!attack.ok()) {
    // Only acceptable failure: the domain genuinely ran out of keys.
    EXPECT_EQ(attack.status().code(), StatusCode::kResourceExhausted);
    return;
  }
  auto poisoned = ApplyPoison(*ks, attack->poison_keys);
  ASSERT_TRUE(poisoned.ok());
  RmiOptions opts;
  opts.target_model_size = 1 + rng.UniformInt(8, 64);
  opts.root_kind = RootModelKind::kOracle;
  auto idx = LearnedIndex::Build(*poisoned, opts);
  ASSERT_TRUE(idx.ok());
  // Every legitimate key must still be found, at its poisoned-set rank.
  for (std::int64_t i = 0; i < ks->size(); i += 7) {
    const Key k = ks->at(i);
    const LookupResult r = idx->Lookup(k);
    ASSERT_TRUE(r.found) << k;
    ASSERT_EQ(r.position, *poisoned->RankOf(k) - 1) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, testing::Range(1, 21));

}  // namespace
}  // namespace lispoison
