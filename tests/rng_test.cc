#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace lispoison {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    counts[static_cast<std::size_t>(rng.UniformInt(0, 9))] += 1;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 100);  // within 10% of expectation
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  const int draws = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < draws; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / draws;
  const double var = sum2 / draws - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 2.0), 0.0);
  }
}

TEST(RngTest, LogNormalMedianNearExpMu) {
  Rng rng(23);
  std::vector<double> draws;
  for (int i = 0; i < 50001; ++i) draws.push_back(rng.LogNormal(1.0, 0.5));
  std::nth_element(draws.begin(), draws.begin() + 25000, draws.end());
  EXPECT_NEAR(draws[25000], std::exp(1.0), 0.1);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(31);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base(37);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  Rng f1_again = base.Fork(1);
  EXPECT_EQ(f1.NextU64(), f1_again.NextU64());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.NextU64() == f2.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace lispoison
