// Workload generator coverage: stream determinism, mix proportions,
// zipfian frequency shape, hotspot concentration, scan bounds, and
// insert freshness.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "data/keyset.h"
#include "workload/workload.h"

namespace lispoison {
namespace {

KeySet TestKeys(std::int64_t n, std::uint64_t seed = 11) {
  Rng rng(seed);
  auto ks = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  EXPECT_TRUE(ks.ok());
  return *ks;
}

TEST(WorkloadTest, SameSeedSameStream) {
  const KeySet ks = TestKeys(5000);
  for (const WorkloadSpec& spec :
       {ReadOnlyUniformWorkload(33), ZipfianReadHeavyWorkload(33),
        RangeScanWorkload(33), ReadInsertMixWorkload(33)}) {
    auto a = GenerateOperations(spec, ks, 4000);
    auto b = GenerateOperations(spec, ks, 4000);
    ASSERT_TRUE(a.ok()) << spec.name;
    ASSERT_TRUE(b.ok()) << spec.name;
    EXPECT_EQ(*a, *b) << spec.name << " stream is not deterministic";
  }
}

TEST(WorkloadTest, DifferentSeedsDifferentStreams) {
  const KeySet ks = TestKeys(5000);
  auto a = GenerateOperations(ReadOnlyUniformWorkload(1), ks, 1000);
  auto b = GenerateOperations(ReadOnlyUniformWorkload(2), ks, 1000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST(WorkloadTest, PrefixStability) {
  // A longer stream extends a shorter one: generation is one sequential
  // pass, so ops [0, k) never depend on the requested length.
  const KeySet ks = TestKeys(3000);
  const WorkloadSpec spec = ReadInsertMixWorkload(5);
  auto small = GenerateOperations(spec, ks, 500);
  auto large = GenerateOperations(spec, ks, 2000);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  ASSERT_EQ(small->size(), 500u);
  EXPECT_TRUE(std::equal(small->begin(), small->end(), large->begin()));
}

TEST(WorkloadTest, MixFractionsRoughlyHold) {
  const KeySet ks = TestKeys(5000);
  WorkloadSpec spec = ReadInsertMixWorkload(17);  // 80/20 read/insert.
  auto ops = GenerateOperations(spec, ks, 20000);
  ASSERT_TRUE(ops.ok());
  std::int64_t reads = 0, inserts = 0, scans = 0;
  for (const Operation& op : *ops) {
    reads += op.type == OpType::kRead;
    inserts += op.type == OpType::kInsert;
    scans += op.type == OpType::kScan;
  }
  EXPECT_EQ(scans, 0);
  EXPECT_NEAR(static_cast<double>(reads) / 20000.0, 0.8, 0.02);
  EXPECT_NEAR(static_cast<double>(inserts) / 20000.0, 0.2, 0.02);
}

TEST(WorkloadTest, ReadsTargetStoredKeys) {
  const KeySet ks = TestKeys(2000);
  auto ops = GenerateOperations(ZipfianReadHeavyWorkload(23), ks, 5000);
  ASSERT_TRUE(ops.ok());
  for (const Operation& op : *ops) {
    if (op.type == OpType::kRead) {
      EXPECT_TRUE(ks.Contains(op.key));
    }
  }
}

TEST(WorkloadTest, ZipfianFrequencyShape) {
  // Unscrambled zipfian: rank popularity must decay — the most popular
  // rank is rank 0, and the head carries far more mass than uniform.
  const std::int64_t n = 1000;
  ZipfianRankGenerator zipf(n, 0.99, /*scramble=*/false);
  Rng rng(71);
  std::vector<std::int64_t> freq(static_cast<std::size_t>(n), 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const std::int64_t r = zipf.Next(&rng);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, n);
    freq[static_cast<std::size_t>(r)] += 1;
  }
  // Rank 0 is the mode and beats rank 99 by roughly n^theta-ish margin.
  const std::int64_t max_freq = *std::max_element(freq.begin(), freq.end());
  EXPECT_EQ(freq[0], max_freq);
  EXPECT_GT(freq[0], 10 * freq[99]);
  // Top 1% of ranks carries > 30% of the mass (uniform would carry 1%).
  std::int64_t head = 0;
  for (int r = 0; r < 10; ++r) head += freq[static_cast<std::size_t>(r)];
  EXPECT_GT(static_cast<double>(head) / draws, 0.30);
  // Broad monotone decay between octave-spaced ranks.
  EXPECT_GT(freq[1], freq[31]);
  EXPECT_GT(freq[3], freq[127]);
}

TEST(WorkloadTest, ScrambledZipfianSpreadsTheHead) {
  // With scrambling, the popular ranks are hashed away from 0..k: the
  // mode should usually not be rank 0, but total skew is preserved.
  const std::int64_t n = 1000;
  ZipfianRankGenerator zipf(n, 0.99, /*scramble=*/true);
  Rng rng(72);
  std::map<std::int64_t, std::int64_t> freq;
  for (int i = 0; i < 50000; ++i) freq[zipf.Next(&rng)] += 1;
  std::int64_t max_freq = 0;
  for (const auto& kv : freq) max_freq = std::max(max_freq, kv.second);
  // Still heavily skewed: some rank carries >> uniform share.
  EXPECT_GT(max_freq, 50000 / n * 20);
}

TEST(WorkloadTest, HotspotConcentratesAccesses) {
  const KeySet ks = TestKeys(10000);
  WorkloadSpec spec;
  spec.name = "hotspot";
  spec.distribution = AccessDistribution::kHotspot;
  spec.hotspot_set_fraction = 0.05;
  spec.hotspot_op_fraction = 0.9;
  spec.seed = 91;
  auto ops = GenerateOperations(spec, ks, 20000);
  ASSERT_TRUE(ops.ok());
  // The top-5%-most-frequent keys must absorb ~90% of the reads.
  std::map<Key, std::int64_t> freq;
  for (const Operation& op : *ops) freq[op.key] += 1;
  std::vector<std::int64_t> counts;
  for (const auto& kv : freq) counts.push_back(kv.second);
  std::sort(counts.rbegin(), counts.rend());
  const std::size_t hot = static_cast<std::size_t>(10000 * 0.05);
  std::int64_t hot_mass = 0, total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i < hot) hot_mass += counts[i];
    total += counts[i];
  }
  EXPECT_GT(static_cast<double>(hot_mass) / static_cast<double>(total), 0.85);
}

TEST(WorkloadTest, ScanBoundsAreOrderedAndStored) {
  const KeySet ks = TestKeys(3000);
  auto ops = GenerateOperations(RangeScanWorkload(13), ks, 2000);
  ASSERT_TRUE(ops.ok());
  for (const Operation& op : *ops) {
    ASSERT_EQ(op.type, OpType::kScan);
    EXPECT_LE(op.key, op.scan_hi);
    EXPECT_TRUE(ks.Contains(op.key));
    EXPECT_TRUE(ks.Contains(op.scan_hi));
  }
}

TEST(WorkloadTest, InsertKeysAreFreshAndUnique) {
  const KeySet ks = TestKeys(3000);
  auto ops = GenerateOperations(ReadInsertMixWorkload(29), ks, 10000);
  ASSERT_TRUE(ops.ok());
  std::unordered_set<Key> seen;
  for (const Operation& op : *ops) {
    if (op.type != OpType::kInsert) continue;
    EXPECT_FALSE(ks.Contains(op.key)) << "insert of a stored key";
    EXPECT_TRUE(seen.insert(op.key).second) << "duplicate insert key";
    EXPECT_TRUE(ks.domain().Contains(op.key));
  }
  EXPECT_GT(seen.size(), 0u);
}

TEST(WorkloadTest, RejectsMalformedSpecs) {
  const KeySet ks = TestKeys(100);
  WorkloadSpec bad;
  bad.read_fraction = 0.5;
  bad.scan_fraction = 0.1;
  bad.insert_fraction = 0.1;  // Sums to 0.7.
  EXPECT_EQ(GenerateOperations(bad, ks, 10).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(GenerateOperations(ReadOnlyUniformWorkload(1), KeySet(), 10)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  WorkloadSpec scan = RangeScanWorkload(1);
  scan.scan_length = 0;
  EXPECT_EQ(GenerateOperations(scan, ks, 10).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WorkloadTest, ResidualMixProbabilityNeverInventsOpTypes) {
  // Fractions summing to 1 - epsilon pass validation; draws landing in
  // the epsilon sliver must map to an op type the spec actually has —
  // never to inserts on a spec (and keyset) that excludes them.
  auto tiny = KeySet::Create({7}, KeyDomain{0, 100});
  ASSERT_TRUE(tiny.ok());
  WorkloadSpec spec;
  spec.read_fraction = 0.9999995;
  spec.scan_fraction = 0.0;
  spec.insert_fraction = 0.0;
  spec.seed = 61;
  auto ops = GenerateOperations(spec, *tiny, 50000);
  ASSERT_TRUE(ops.ok()) << ops.status().message();
  for (const Operation& op : *ops) {
    EXPECT_EQ(op.type, OpType::kRead);
    EXPECT_EQ(op.key, 7);
  }
}

TEST(WorkloadTest, SaturatedDomainExhaustsInserts) {
  // A fully dense domain has no gap for any insert.
  auto dense = KeySet::Create({0, 1, 2, 3, 4}, KeyDomain{0, 4});
  ASSERT_TRUE(dense.ok());
  WorkloadSpec spec = ReadInsertMixWorkload(3);
  spec.insert_fraction = 1.0;
  spec.read_fraction = 0.0;
  EXPECT_EQ(GenerateOperations(spec, *dense, 10).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace lispoison
