// Differential coverage for the incremental LossLandscape engine: after
// any sequence of InsertKey commits, every query must *bit-match* a
// fresh landscape built on the combined keyset. The loss arithmetic is
// exact 128-bit integers up to the final Theorem 1 ratio, and that ratio
// is shift-invariant bit-for-bit, so EXPECT_EQ on long doubles is the
// correct assertion — any drift is a bookkeeping bug, not round-off.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "attack/loss_landscape.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/keyset.h"

namespace lispoison {
namespace {

/// Builds a fresh landscape over base ∪ extra.
LossLandscape FreshCombined(const KeySet& base,
                            const std::vector<Key>& extra) {
  auto combined = base.Union(extra);
  EXPECT_TRUE(combined.ok()) << combined.status().message();
  auto ll = LossLandscape::Create(*combined);
  EXPECT_TRUE(ll.ok()) << ll.status().message();
  return *ll;
}

/// Asserts every public query of \p incremental bit-matches \p fresh.
void ExpectLandscapesIdentical(const LossLandscape& incremental,
                               const LossLandscape& fresh,
                               const KeyDomain& domain) {
  ASSERT_EQ(incremental.size(), fresh.size());
  EXPECT_EQ(incremental.BaseLoss(), fresh.BaseLoss());
  EXPECT_EQ(incremental.min_key(), fresh.min_key());
  EXPECT_EQ(incremental.max_key(), fresh.max_key());

  for (const bool interior : {true, false}) {
    EXPECT_EQ(incremental.GapEndpoints(interior),
              fresh.GapEndpoints(interior));

    const auto inc_opt = incremental.FindOptimal(interior);
    const auto fresh_opt = fresh.FindOptimal(interior);
    ASSERT_EQ(inc_opt.ok(), fresh_opt.ok());
    if (inc_opt.ok()) {
      EXPECT_EQ(inc_opt->key, fresh_opt->key);
      EXPECT_EQ(inc_opt->loss, fresh_opt->loss);
    }

    // The pruned argmax must agree with the exhaustive scan on both
    // engines (FindOptimal defaults to pruning; re-check explicitly
    // against the exhaustive reference).
    LossLandscape::ArgmaxOptions exhaustive;
    exhaustive.prune = false;
    const auto inc_ex =
        incremental.FindOptimal(interior, nullptr, nullptr, exhaustive);
    ASSERT_EQ(inc_opt.ok(), inc_ex.ok());
    if (inc_opt.ok()) {
      EXPECT_EQ(inc_opt->key, inc_ex->key);
      EXPECT_EQ(inc_opt->loss, inc_ex->loss);
    }
  }

  // LossAt over the full domain, occupied keys included (both must
  // agree on the error case too).
  for (Key kp = domain.lo; kp <= domain.hi; ++kp) {
    const auto a = incremental.LossAt(kp);
    const auto b = fresh.LossAt(kp);
    ASSERT_EQ(a.ok(), b.ok()) << "key " << kp;
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << "key " << kp;
    } else {
      EXPECT_EQ(a.status().code(), b.status().code()) << "key " << kp;
    }
  }

  const auto sweep_inc = incremental.Sweep(true);
  const auto sweep_fresh = fresh.Sweep(true);
  ASSERT_EQ(sweep_inc.size(), sweep_fresh.size());
  for (std::size_t i = 0; i < sweep_inc.size(); ++i) {
    EXPECT_EQ(sweep_inc[i].first, sweep_fresh[i].first);
    EXPECT_EQ(sweep_inc[i].second, sweep_fresh[i].second);
  }
}

TEST(LossLandscapeIncrementalTest, RandomInsertionsBitMatchFreshBuild) {
  Rng rng(1234);
  const KeyDomain domain{0, 4999};
  auto base = GenerateUniform(300, domain, &rng);
  ASSERT_TRUE(base.ok());
  auto ll = LossLandscape::Create(*base);
  ASSERT_TRUE(ll.ok());

  std::vector<Key> inserted;
  for (int k = 0; k < 64; ++k) {
    // Draw a random unoccupied key anywhere in the domain (including
    // outside the current key range).
    Key kp;
    do {
      kp = rng.UniformInt(domain.lo, domain.hi);
    } while (!ll->LossAt(kp).ok() && ll->LossAt(kp).status().code() ==
                                         StatusCode::kInvalidArgument);
    ASSERT_TRUE(ll->InsertKey(kp).ok()) << "key " << kp;
    inserted.push_back(kp);

    if (k % 8 == 0 || k == 63) {
      ExpectLandscapesIdentical(*ll, FreshCombined(*base, inserted), domain);
    }
  }
}

TEST(LossLandscapeIncrementalTest, GreedySelfInsertionBitMatches) {
  // The greedy attack's own access pattern: repeatedly insert the
  // current optimum. This stresses the gap-splitting path where the
  // inserted key is always a gap endpoint.
  Rng rng(99);
  auto base = GenerateLogNormal(200, KeyDomain{0, 19999}, &rng);
  ASSERT_TRUE(base.ok());
  auto ll = LossLandscape::Create(*base);
  ASSERT_TRUE(ll.ok());

  std::vector<Key> inserted;
  for (int k = 0; k < 40; ++k) {
    auto best = ll->FindOptimal(true);
    ASSERT_TRUE(best.ok());
    ASSERT_TRUE(ll->InsertKey(best->key).ok());
    inserted.push_back(best->key);
  }
  ExpectLandscapesIdentical(*ll, FreshCombined(*base, inserted),
                            base->domain());
}

TEST(LossLandscapeIncrementalTest, InsertOutsideCurrentRangeUpdatesBounds) {
  auto ks = KeySet::Create({100, 110, 120}, KeyDomain{0, 200});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  ASSERT_TRUE(ll->InsertKey(50).ok());
  ASSERT_TRUE(ll->InsertKey(150).ok());
  EXPECT_EQ(ll->min_key(), 50);
  EXPECT_EQ(ll->max_key(), 150);
  ExpectLandscapesIdentical(*ll, FreshCombined(*ks, {50, 150}),
                            ks->domain());
}

TEST(LossLandscapeIncrementalTest, InsertRejectsOccupiedAndOutOfDomain) {
  auto ks = KeySet::Create({10, 20}, KeyDomain{0, 30});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  EXPECT_EQ(ll->InsertKey(10).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ll->InsertKey(31).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(ll->InsertKey(15).ok());
  EXPECT_EQ(ll->InsertKey(15).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ll->size(), 3);
}

TEST(LossLandscapeIncrementalTest, SecondMinMaxTrackInsertions) {
  auto ks = KeySet::Create({50, 60, 70}, KeyDomain{0, 100});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  EXPECT_EQ(ll->SecondMinKey(), 60);
  EXPECT_EQ(ll->SecondMaxKey(), 60);
  ASSERT_TRUE(ll->InsertKey(40).ok());   // New global min.
  EXPECT_EQ(ll->SecondMinKey(), 50);
  ASSERT_TRUE(ll->InsertKey(45).ok());   // Second smallest now inserted.
  EXPECT_EQ(ll->SecondMinKey(), 45);
  ASSERT_TRUE(ll->InsertKey(80).ok());   // New global max.
  EXPECT_EQ(ll->SecondMaxKey(), 70);
  ASSERT_TRUE(ll->InsertKey(75).ok());
  EXPECT_EQ(ll->SecondMaxKey(), 75);
}

/// Asserts the pruned argmax bit-matches the exhaustive scan on \p ll
/// for both interior settings (skipping settings with no candidates).
void ExpectPrunedMatchesExhaustive(const LossLandscape& ll) {
  LossLandscape::ArgmaxOptions exhaustive;
  exhaustive.prune = false;
  LossLandscape::ArgmaxOptions pruned;
  pruned.prune = true;
  for (const bool interior : {true, false}) {
    const auto want = ll.FindOptimal(interior, nullptr, nullptr, exhaustive);
    const auto got = ll.FindOptimal(interior, nullptr, nullptr, pruned);
    ASSERT_EQ(want.ok(), got.ok()) << "interior " << interior;
    if (!want.ok()) continue;
    EXPECT_EQ(want->key, got->key) << "interior " << interior;
    EXPECT_EQ(want->loss, got->loss) << "interior " << interior;
  }
}

TEST(LossLandscapeIncrementalTest, PrunerSurvivesDuplicateAdjacentKeys) {
  // Consecutive (adjacent) keys leave zero-width gaps between them; the
  // pruner must handle runs where most gaps vanished and the survivors
  // are single-key gaps.
  auto ks = KeySet::Create({10, 11, 12, 13, 20, 21, 22, 30, 31, 32, 33, 34},
                           KeyDomain{0, 40});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  ExpectPrunedMatchesExhaustive(*ll);
  // Fill one gap completely and re-check: gap erasure under pruning.
  for (const Key kp : {14, 15, 16, 17, 18, 19}) {
    ASSERT_TRUE(ll->InsertKey(kp).ok());
    ExpectPrunedMatchesExhaustive(*ll);
  }
}

TEST(LossLandscapeIncrementalTest, PrunerSurvivesSingleGapLandscape) {
  // One interior gap; the pruned scan degenerates to top-K on a single
  // entry and must still match exactly, down to the last unoccupied key.
  auto ks = KeySet::Create({100, 200}, KeyDomain{100, 200});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  for (int i = 0; i < 99; ++i) {
    ExpectPrunedMatchesExhaustive(*ll);
    auto best = ll->FindOptimal(true);
    if (!best.ok()) break;
    ASSERT_TRUE(ll->InsertKey(best->key).ok());
  }
  // Saturated: both scans must agree on the error too.
  LossLandscape::ArgmaxOptions exhaustive;
  exhaustive.prune = false;
  EXPECT_EQ(ll->FindOptimal(true).status().code(),
            ll->FindOptimal(true, nullptr, nullptr, exhaustive)
                .status()
                .code());
}

TEST(LossLandscapeIncrementalTest, PrunerBreaksTiesLikeTheSerialScan) {
  // Evenly spaced keys: a perfectly symmetric, all-equal-loss landscape
  // (zero base loss, mirrored candidates). Every gap survives the bound
  // (nothing can be pruned at a tie), and the winner must be the serial
  // scan's first maximum in key order — the smallest tied key.
  auto ks = GenerateEvenlySpaced(50, KeyDomain{0, 490});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  ExpectPrunedMatchesExhaustive(*ll);
  // Commit a few optima; ties shift as symmetry breaks and restores.
  for (int i = 0; i < 8; ++i) {
    auto best = ll->FindOptimal(true);
    ASSERT_TRUE(best.ok());
    ASSERT_TRUE(ll->InsertKey(best->key).ok());
    ExpectPrunedMatchesExhaustive(*ll);
  }
}

TEST(LossLandscapeIncrementalTest, PrunerHandlesBoundaryGaps) {
  // Non-interior candidates: gaps touching the domain boundaries, below
  // the minimum and above the maximum key. interior_only=false must
  // score them identically (ExpectPrunedMatchesExhaustive covers both
  // settings), including after boundary-extending insertions.
  auto ks = KeySet::Create({40, 45, 50, 60}, KeyDomain{0, 100});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  ExpectPrunedMatchesExhaustive(*ll);
  ASSERT_TRUE(ll->InsertKey(0).ok());    // New min at the domain edge.
  ExpectPrunedMatchesExhaustive(*ll);
  ASSERT_TRUE(ll->InsertKey(100).ok());  // New max at the domain edge.
  ExpectPrunedMatchesExhaustive(*ll);
  ASSERT_TRUE(ll->InsertKey(99).ok());   // Boundary gap shrinks to a run.
  ExpectPrunedMatchesExhaustive(*ll);
}

TEST(LossLandscapeIncrementalTest, PrefixStatsMatchBruteForce) {
  Rng rng(7);
  const KeyDomain domain{0, 999};
  auto base = GenerateUniform(50, domain, &rng);
  ASSERT_TRUE(base.ok());
  auto ll = LossLandscape::Create(*base);
  ASSERT_TRUE(ll.ok());
  std::vector<Key> all = base->keys();
  for (int k = 0; k < 30; ++k) {
    Key kp;
    do {
      kp = rng.UniformInt(domain.lo, domain.hi);
    } while (std::find(all.begin(), all.end(), kp) != all.end());
    ASSERT_TRUE(ll->InsertKey(kp).ok());
    all.insert(std::lower_bound(all.begin(), all.end(), kp), kp);
  }
  const Key shift = ll->shift();
  for (Key probe = domain.lo; probe <= domain.hi; probe += 13) {
    Rank count = 0;
    Int128 sum = 0;
    for (const Key k : all) {
      if (k < probe) {
        ++count;
        sum += static_cast<Int128>(k) - shift;
      }
    }
    const auto stats = ll->PrefixAt(probe);
    EXPECT_EQ(stats.count_less, count) << "probe " << probe;
    EXPECT_TRUE(stats.prefix_sum == sum) << "probe " << probe;
  }
}

}  // namespace
}  // namespace lispoison
