// Property-based tests: parameterized sweeps over instance families that
// check the structural theorems and invariants the attacks rely on —
// Theorem 2's per-gap convexity, endpoint optimality, rank-shift
// identities, loss invariances, and attack-budget invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include "attack/greedy_poisoner.h"
#include "attack/loss_landscape.h"
#include "attack/rmi_poisoner.h"
#include "attack/single_point.h"
#include "common/rng.h"
#include "common/stats.h"
#include "data/generators.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

// ---------------------------------------------------------------------------
// Theorem 2: per-gap convexity of the loss sequence.
// ---------------------------------------------------------------------------

class ConvexityProperty
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvexityProperty, LossIsConvexWithinEveryGap) {
  const auto [n, domain, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  auto ks = GenerateUniform(n, KeyDomain{0, domain - 1}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  const auto sweep = ll->Sweep(/*interior_only=*/false);
  // Walk runs of consecutive keys (same gap) and check the discrete
  // second derivative is non-negative: L(k-1) + L(k+1) >= 2 L(k).
  for (std::size_t i = 1; i + 1 < sweep.size(); ++i) {
    const auto& [k_prev, l_prev] = sweep[i - 1];
    const auto& [k_mid, l_mid] = sweep[i];
    const auto& [k_next, l_next] = sweep[i + 1];
    if (k_mid != k_prev + 1 || k_next != k_mid + 1) continue;  // Gap break.
    const long double lhs = l_prev + l_next;
    const long double rhs = 2.0L * l_mid;
    EXPECT_GE(static_cast<double>(lhs),
              static_cast<double>(rhs) -
                  1e-7 * std::max(1.0, static_cast<double>(rhs)))
        << "non-convex at key " << k_mid;
  }
}

INSTANTIATE_TEST_SUITE_P(
    UniformInstances, ConvexityProperty,
    testing::Values(std::make_tuple(10, 100, 1), std::make_tuple(20, 100, 2),
                    std::make_tuple(30, 300, 3), std::make_tuple(50, 200, 4),
                    std::make_tuple(80, 1000, 5),
                    std::make_tuple(15, 1000, 6)));

// ---------------------------------------------------------------------------
// Endpoint optimality: the maximum over the full sweep is attained at a
// gap endpoint (corollary of Theorem 2 that the fast attack exploits).
// ---------------------------------------------------------------------------

class EndpointOptimalityProperty : public testing::TestWithParam<int> {};

TEST_P(EndpointOptimalityProperty, SweepMaximumIsAGapEndpoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::int64_t n = 10 + rng.UniformInt(0, 50);
  const Key domain = 100 + rng.UniformInt(0, 900);
  auto ks = GenerateUniform(n, KeyDomain{0, domain - 1}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  const auto sweep = ll->Sweep(/*interior_only=*/true);
  if (sweep.empty()) return;
  long double max_loss = 0;
  for (const auto& [kp, loss] : sweep) max_loss = std::max(max_loss, loss);
  const auto endpoints = ll->GapEndpoints(/*interior_only=*/true);
  long double max_at_endpoints = 0;
  for (Key e : endpoints) {
    auto l = ll->LossAt(e);
    ASSERT_TRUE(l.ok());
    max_at_endpoints = std::max(max_at_endpoints, *l);
  }
  EXPECT_NEAR(static_cast<double>(max_at_endpoints),
              static_cast<double>(max_loss),
              1e-9 * std::max(1.0, static_cast<double>(max_loss)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndpointOptimalityProperty,
                         testing::Range(1, 21));

// ---------------------------------------------------------------------------
// Rank-shift identity: inserting kp shifts sum(XY) by exactly the suffix
// key sum above kp plus kp*rank(kp).
// ---------------------------------------------------------------------------

class RankShiftProperty : public testing::TestWithParam<int> {};

TEST_P(RankShiftProperty, AggregateIdentityHolds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  auto ks = GenerateUniform(40, KeyDomain{0, 399}, &rng);
  ASSERT_TRUE(ks.ok());
  // Pick a random unoccupied key.
  Key kp;
  do {
    kp = rng.UniformInt(0, 399);
  } while (ks->Contains(kp));

  // Direct aggregates after insertion.
  std::vector<Key> keys = ks->keys();
  keys.insert(std::lower_bound(keys.begin(), keys.end(), kp), kp);
  Int128 direct_sum_xy = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    direct_sum_xy += static_cast<Int128>(keys[i]) *
                     static_cast<Int128>(i + 1);
  }

  // Identity-based aggregates.
  Int128 base_sum_xy = 0;
  Int128 suffix = 0;
  const Rank c = ks->CountLess(kp);
  for (std::int64_t i = 0; i < ks->size(); ++i) {
    base_sum_xy += static_cast<Int128>(ks->at(i)) * (i + 1);
    if (i >= c) suffix += ks->at(i);
  }
  const Int128 predicted =
      base_sum_xy + suffix + static_cast<Int128>(kp) * (c + 1);
  EXPECT_EQ(static_cast<long long>(direct_sum_xy - predicted), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankShiftProperty, testing::Range(1, 26));

// ---------------------------------------------------------------------------
// Loss invariances of the closed-form fit.
// ---------------------------------------------------------------------------

class InvarianceProperty : public testing::TestWithParam<int> {};

TEST_P(InvarianceProperty, LossInvariantUnderKeyAndRankTranslation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  auto ks = GenerateUniform(60, KeyDomain{0, 599}, &rng);
  ASSERT_TRUE(ks.ok());
  std::vector<Rank> ranks;
  for (Rank r = 1; r <= ks->size(); ++r) ranks.push_back(r);
  auto f0 = FitCdfRegression(ks->keys(), ranks);
  ASSERT_TRUE(f0.ok());

  const Key key_shift = rng.UniformInt(1, 1000000);
  const Rank rank_shift = rng.UniformInt(1, 100000);
  std::vector<Key> keys2;
  std::vector<Rank> ranks2;
  for (std::int64_t i = 0; i < ks->size(); ++i) {
    keys2.push_back(ks->at(i) + key_shift);
    ranks2.push_back(ranks[static_cast<std::size_t>(i)] + rank_shift);
  }
  auto f1 = FitCdfRegression(keys2, ranks2);
  ASSERT_TRUE(f1.ok());
  EXPECT_NEAR(static_cast<double>(f0->mse), static_cast<double>(f1->mse),
              1e-6 * std::max(1.0, static_cast<double>(f0->mse)));
  EXPECT_NEAR(f0->model.w, f1->model.w, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvarianceProperty, testing::Range(1, 16));

// ---------------------------------------------------------------------------
// Attack invariants across budgets and densities.
// ---------------------------------------------------------------------------

class GreedyInvariantProperty
    : public testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GreedyInvariantProperty, BudgetRangeAndDisjointness) {
  const auto [p, density] = GetParam();
  Rng rng(static_cast<std::uint64_t>(p * 31 + static_cast<int>(density * 100)));
  const std::int64_t n = 120;
  const Key m = static_cast<Key>(std::llround(n / density));
  auto ks = GenerateUniform(n, KeyDomain{0, m - 1}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = GreedyPoisonCdf(*ks, p);
  ASSERT_TRUE(result.ok());
  // |P| = p, P ∩ K = ∅, all interior, no duplicates.
  EXPECT_EQ(static_cast<int>(result->poison_keys.size()), p);
  std::set<Key> seen;
  for (Key kp : result->poison_keys) {
    EXPECT_TRUE(seen.insert(kp).second);
    EXPECT_FALSE(ks->Contains(kp));
    EXPECT_GT(kp, ks->keys().front());
    EXPECT_LT(kp, ks->keys().back());
  }
  // Poisoning never decreases the loss.
  EXPECT_GE(static_cast<double>(result->poisoned_loss),
            static_cast<double>(result->base_loss));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GreedyInvariantProperty,
    testing::Combine(testing::Values(1, 5, 12, 18),
                     testing::Values(0.2, 0.5, 0.8)));

// ---------------------------------------------------------------------------
// RMI attack invariants across architectures.
// ---------------------------------------------------------------------------

class RmiInvariantProperty
    : public testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(RmiInvariantProperty, BudgetThresholdAndDisjointness) {
  const auto [model_size, pct, alpha] = GetParam();
  Rng rng(static_cast<std::uint64_t>(model_size * 1000 +
                                     static_cast<int>(pct * 10)));
  const std::int64_t n = 1200;
  auto ks = GenerateUniform(n, KeyDomain{0, 119999}, &rng);
  ASSERT_TRUE(ks.ok());
  RmiAttackOptions opts;
  opts.poison_fraction = pct / 100.0;
  opts.model_size = model_size;
  opts.alpha = alpha;
  auto result = PoisonRmi(*ks, opts);
  ASSERT_TRUE(result.ok());

  const std::int64_t budget =
      static_cast<std::int64_t>(std::floor(n * pct / 100.0));
  EXPECT_EQ(result->total_poison_keys, budget);
  const std::int64_t num_models =
      static_cast<std::int64_t>(result->per_model_poison.size());
  const std::int64_t threshold = static_cast<std::int64_t>(
      std::ceil(alpha * (pct / 100.0) * static_cast<double>(n) /
                static_cast<double>(num_models)));
  std::set<Key> seen;
  for (const auto& pm : result->per_model_poison) {
    EXPECT_LE(static_cast<std::int64_t>(pm.size()), threshold);
    for (Key kp : pm) {
      EXPECT_TRUE(seen.insert(kp).second) << "duplicate poison " << kp;
      EXPECT_FALSE(ks->Contains(kp));
    }
  }
  EXPECT_GE(result->rmi_ratio_loss, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RmiInvariantProperty,
    testing::Combine(testing::Values(60, 120, 300),
                     testing::Values(5.0, 10.0),
                     testing::Values(2.0, 3.0)));

// ---------------------------------------------------------------------------
// Greedy single-point optimality on every instance: the first greedy key
// equals the brute-force single optimum (checked via full sweep).
// ---------------------------------------------------------------------------

class FirstKeyOptimalityProperty : public testing::TestWithParam<int> {};

TEST_P(FirstKeyOptimalityProperty, FirstGreedyKeyIsGloballyOptimal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7);
  auto ks = GenerateUniform(25, KeyDomain{0, 299}, &rng);
  ASSERT_TRUE(ks.ok());
  auto single = OptimalSinglePoint(*ks);
  ASSERT_TRUE(single.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  long double best_sweep = 0;
  for (const auto& [kp, loss] : ll->Sweep(true)) {
    best_sweep = std::max(best_sweep, loss);
  }
  EXPECT_NEAR(static_cast<double>(single->poisoned_loss),
              static_cast<double>(best_sweep),
              1e-9 * std::max(1.0, static_cast<double>(best_sweep)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirstKeyOptimalityProperty,
                         testing::Range(1, 16));

}  // namespace
}  // namespace lispoison
