// Adversarial differential harness for the pruned argmax engine
// (LossLandscape::ArgmaxOptions): across hundreds of seeded randomized
// landscapes — uniform, log-normal, and zipf-gap key layouts, n up to
// 10^4, with interleaved InsertKey rounds — the pruned scan must return
// a *bit-identical* Candidate (key and long-double loss) to the
// exhaustive reference scan, at every thread count in {1, 2, 7}. The
// harness also pins the no-per-round-allocation property of the
// engine-owned argmax scratch via the realloc counter.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "attack/loss_landscape.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "data/keyset.h"

namespace lispoison {
namespace {

constexpr int kCasesPerLayout = 70;  // x3 layouts = 210 differential cases.
constexpr int kRoundsPerCase = 5;    // Interleaved InsertKey commits.

enum class Layout { kUniform, kLogNormal, kZipfGap };

/// Zipf-gap layout: successive gaps drawn log-uniform over ~4 decades,
/// so the landscape mixes a few huge gaps with many near-unit ones —
/// the chunk layout least like the uniform case and the hardest mix for
/// a bound that must separate near-equal losses.
Result<KeySet> GenerateZipfGap(std::int64_t n, Rng* rng) {
  std::vector<Key> keys;
  keys.reserve(static_cast<std::size_t>(n));
  Key cursor = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double mag = rng->NextDouble() * 4.0;  // gap in [1, 10^4)
    cursor += 1 + static_cast<Key>(std::pow(10.0, mag));
    keys.push_back(cursor);
  }
  return KeySet::Create(std::move(keys), KeyDomain{0, cursor + 1000});
}

Result<KeySet> MakeKeyset(Layout layout, std::int64_t n, Rng* rng) {
  // Sparse domain (~20 unoccupied keys per key) so gap counts track n
  // and the n = 10^4 cases cross the parallel-chunk threshold.
  const KeyDomain domain{0, 20 * n};
  switch (layout) {
    case Layout::kUniform:
      return GenerateUniform(n, domain, rng);
    case Layout::kLogNormal:
      return GenerateLogNormal(n, domain, rng);
    case Layout::kZipfGap:
      return GenerateZipfGap(n, rng);
  }
  return Status::Internal("unreachable");
}

/// One FindOptimal comparison: the exhaustive serial scan is the ground
/// truth; the pruned scan must bit-match it serially and on every pool.
/// Fills *out with the winner and returns false when the range is
/// exhausted (both scans must agree on that too).
bool ExpectPrunedMatchesExhaustive(
    const LossLandscape& ll, bool interior_only,
    const std::unordered_set<Key>* excluded,
    const std::vector<ThreadPool*>& pools,
    LossLandscape::Candidate* out) {
  LossLandscape::ArgmaxOptions exhaustive;
  exhaustive.prune = false;
  LossLandscape::ArgmaxOptions pruned;
  pruned.prune = true;

  const auto want =
      ll.FindOptimal(interior_only, excluded, nullptr, exhaustive);
  const auto got_serial =
      ll.FindOptimal(interior_only, excluded, nullptr, pruned);
  EXPECT_EQ(want.ok(), got_serial.ok());
  if (want.ok() && got_serial.ok()) {
    EXPECT_EQ(want->key, got_serial->key);
    EXPECT_EQ(want->loss, got_serial->loss);
  }
  for (ThreadPool* pool : pools) {
    const auto got = ll.FindOptimal(interior_only, excluded, pool, pruned);
    EXPECT_EQ(want.ok(), got.ok()) << pool->num_threads() << " threads";
    if (want.ok() && got.ok()) {
      EXPECT_EQ(want->key, got->key) << pool->num_threads() << " threads";
      EXPECT_EQ(want->loss, got->loss) << pool->num_threads() << " threads";
    }
  }
  if (!want.ok()) return false;
  *out = *want;
  return true;
}

TEST(ArgmaxPruningTest, DifferentialAcrossLayoutsSizesAndThreadCounts) {
  // Pools for thread counts {2, 7}; count 1 is the serial scan. One pool
  // per count reused across all cases.
  ThreadPool pool2(2);
  ThreadPool pool7(7);
  const std::vector<ThreadPool*> pools = {&pool2, &pool7};

  // n schedule: mostly small-to-mid landscapes (cheap exhaustive
  // oracle), with every 7th case at n = 10^4 so the chunked parallel
  // pruned path (> 2048 gaps) is exercised at both pool sizes.
  const std::int64_t kSizes[] = {50, 200, 777, 3000, 10000};

  int checked = 0;
  for (const Layout layout :
       {Layout::kUniform, Layout::kLogNormal, Layout::kZipfGap}) {
    for (int c = 0; c < kCasesPerLayout; ++c) {
      const std::int64_t n =
          (c % 7 == 0) ? 10000 : kSizes[static_cast<std::size_t>(c) % 4];
      Rng rng(0xA11CE + static_cast<std::uint64_t>(layout) * 1000 +
              static_cast<std::uint64_t>(c));
      auto ks = MakeKeyset(layout, n, &rng);
      ASSERT_TRUE(ks.ok()) << ks.status().message();
      auto ll = LossLandscape::Create(*ks);
      ASSERT_TRUE(ll.ok()) << ll.status().message();

      const bool interior = (c % 2 == 0);
      for (int round = 0; round < kRoundsPerCase; ++round) {
        LossLandscape::Candidate best;
        if (!ExpectPrunedMatchesExhaustive(*ll, interior, nullptr, pools,
                                           &best)) {
          break;  // Range exhausted — both scans agreed.
        }
        // Every 8th case also exercises the excluded-key path: without
        // its optimum the pruned scan must find the runner-up exactly.
        if (c % 8 == 0) {
          const std::unordered_set<Key> excluded = {best.key};
          LossLandscape::Candidate runner_up;
          ExpectPrunedMatchesExhaustive(*ll, interior, &excluded, pools,
                                        &runner_up);
        }
        // Interleave: commit the optimum and keep scanning the grown
        // landscape (the greedy attack's own access pattern).
        ASSERT_TRUE(ll->InsertKey(best.key).ok());
        ++checked;
      }
    }
  }
  // 3 layouts x 70 cases x 5 rounds, minus the rare exhausted ranges.
  EXPECT_GE(checked, 200 * kRoundsPerCase / 2);
}

TEST(ArgmaxPruningTest, DifferentialAtHugeKeyMagnitudes) {
  // Keys near +/-2^55: shifted candidates exceed 2^53, so every
  // int64/int128->double conversion in the bound pre-pass actually
  // rounds — the lossiest regime the admissibility margins must cover
  // (the tiny-domain cases above convert exactly). n stays small so the
  // exact 128-bit aggregates (n^2 * span^2 ~ 2^122) cannot overflow.
  ThreadPool pool2(2);
  ThreadPool pool7(7);
  const std::vector<ThreadPool*> pools = {&pool2, &pool7};
  const Key kHalfSpan = static_cast<Key>(1) << 55;

  int checked = 0;
  for (int c = 0; c < 24; ++c) {
    const std::int64_t n = 40 + (c % 3) * 12;
    Rng rng(0xB16B00 + static_cast<std::uint64_t>(c));
    auto ks = GenerateUniform(n, KeyDomain{-kHalfSpan, kHalfSpan}, &rng);
    ASSERT_TRUE(ks.ok()) << ks.status().message();
    auto ll = LossLandscape::Create(*ks);
    ASSERT_TRUE(ll.ok()) << ll.status().message();
    const bool interior = (c % 2 == 0);
    for (int round = 0; round < kRoundsPerCase; ++round) {
      LossLandscape::Candidate best;
      if (!ExpectPrunedMatchesExhaustive(*ll, interior, nullptr, pools,
                                         &best)) {
        break;
      }
      ASSERT_TRUE(ll->InsertKey(best.key).ok());
      ++checked;
    }
  }
  EXPECT_GE(checked, 24 * kRoundsPerCase / 2);
}

TEST(ArgmaxPruningTest, ScratchDoesNotGrowPerRound) {
  // ROADMAP item: the argmax must not pay an O(G) allocation per round.
  // The scratch buffers grow geometrically, so across 180 further
  // rounds (gap count grows by ~1 per insert) the realloc counter may
  // move only by a handful of doubling events — not once per round.
  Rng rng(0xBEEF);
  auto ks = GenerateUniform(2000, KeyDomain{0, 40000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());

  LossLandscape::ArgmaxOptions pruned;
  pruned.prune = true;
  auto run_rounds = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      auto best = ll->FindOptimal(true, nullptr, nullptr, pruned);
      ASSERT_TRUE(best.ok());
      ASSERT_TRUE(ll->InsertKey(best->key).ok());
    }
  };
  run_rounds(20);
  const std::int64_t warm = ll->argmax_scratch_reallocs();
  EXPECT_GT(warm, 0);  // The buffers were actually used.
  run_rounds(180);
  // 5 scratch buffers, each allowed a few geometric growth events; a
  // per-round allocation would add 5 * 180.
  EXPECT_LE(ll->argmax_scratch_reallocs() - warm, 15)
      << "argmax scratch reallocated per round";
}

TEST(ArgmaxPruningTest, StatsCountersAreCoherent) {
  Rng rng(0xD00D);
  auto ks = GenerateUniform(5000, KeyDomain{0, 100000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());

  // cache off: the PR 3 per-round full pre-pass, whose counter identity
  // with the exhaustive scan is pinned below. The cached path has its
  // own coherence test (CacheCountersAreCoherent).
  LossLandscape::ArgmaxOptions pruned;
  pruned.prune = true;
  pruned.cache = false;
  LossLandscape::ArgmaxStats with_prune;
  auto a = ll->FindOptimal(true, nullptr, nullptr, pruned, &with_prune);
  ASSERT_TRUE(a.ok());

  LossLandscape::ArgmaxOptions exhaustive;
  exhaustive.prune = false;
  LossLandscape::ArgmaxStats without;
  auto b = ll->FindOptimal(true, nullptr, nullptr, exhaustive, &without);
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(a->key, b->key);
  EXPECT_EQ(a->loss, b->loss);
  EXPECT_EQ(with_prune.rounds, 1);
  EXPECT_EQ(without.rounds, 1);
  EXPECT_EQ(with_prune.fallback_rounds, 0);
  EXPECT_EQ(without.bound_evals, 0);
  EXPECT_EQ(without.pruned_gaps, 0);
  // The pre-pass scores every candidate the exhaustive scan evaluates...
  EXPECT_EQ(with_prune.bound_evals, without.exact_evals);
  // ...and the acceptance-level win: far fewer exact evaluations. The
  // 3x bar is the ISSUE's floor; this landscape prunes >100x.
  EXPECT_LE(with_prune.exact_evals * 3, without.exact_evals);
  // Every gap is either pruned or had at least one exact evaluation.
  EXPECT_GT(with_prune.pruned_gaps, 0);
  // The uncached pre-pass never touches the cache counters.
  EXPECT_EQ(with_prune.cached_bounds, 0);
  EXPECT_EQ(with_prune.invalidated_gaps, 0);
}

TEST(ArgmaxPruningTest, WideDomainsFallBackToExhaustive) {
  // Admissibility envelope: with n1 keys of shifted magnitude <= S the
  // exact aggregates reach n1^2 S^2 / n1^3 S, so for n1 * S >= 2^63
  // neither bound pre-pass is provably admissible and both pruned
  // paths must fall back to the exhaustive scan (fallback_rounds) —
  // the regime where PR 3's looser span-only guard would still have
  // pruned against potentially overflowed aggregates. n stays tiny so
  // the exhaustive arithmetic itself is safe (n1^2 S^2 < 2^127).
  const Key kHuge = static_cast<Key>(1) << 60;
  auto ks = KeySet::Create({-kHuge, -kHuge / 3, kHuge / 5, kHuge},
                           KeyDomain{-kHuge, kHuge});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());

  for (const bool cache : {false, true}) {
    LossLandscape::ArgmaxOptions pruned;
    pruned.prune = true;
    pruned.cache = cache;
    LossLandscape::ArgmaxStats stats;
    auto got = ll->FindOptimal(true, nullptr, nullptr, pruned, &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(stats.fallback_rounds, 1) << "cache=" << cache;
    EXPECT_EQ(stats.bound_evals, 0) << "cache=" << cache;

    LossLandscape::ArgmaxOptions exhaustive;
    exhaustive.prune = false;
    auto want = ll->FindOptimal(true, nullptr, nullptr, exhaustive);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(want->key, got->key);
    EXPECT_EQ(want->loss, got->loss);
  }
}

TEST(ArgmaxPruningTest, CacheCountersAreCoherentAndAmortized) {
  // The tiered incremental scan's accounting contract: every round,
  // each gap in the scanned range is either dispositioned by its tier's
  // box bound (cached_bounds) or re-scored individually
  // (invalidated_gaps), and the total bound work stays a fraction of
  // the uncached O(G)-per-round pre-pass.
  Rng rng(0xCAC4E);
  auto ks = GenerateUniform(4000, KeyDomain{0, 80000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());

  LossLandscape::ArgmaxOptions cached;
  cached.prune = true;
  cached.cache = true;
  LossLandscape::ArgmaxOptions uncached = cached;
  uncached.cache = false;

  auto gaps_in_range = [&]() {
    std::int64_t gaps = 0;
    ll->ForEachGap(true, [&gaps](Key, Key, Rank, Int128) { ++gaps; });
    return gaps;
  };

  LossLandscape::ArgmaxStats total;
  LossLandscape::ArgmaxStats uncached_total;
  std::int64_t prev_cached = 0;
  std::int64_t prev_invalid = 0;
  const int kRounds = 48;
  for (int round = 0; round < kRounds; ++round) {
    const std::int64_t in_range = gaps_in_range();
    auto a = ll->FindOptimal(true, nullptr, nullptr, cached, &total);
    ASSERT_TRUE(a.ok());
    // Coherence: every in-range gap was either tier-dispositioned or
    // re-scored.
    EXPECT_EQ((total.cached_bounds - prev_cached) +
                  (total.invalidated_gaps - prev_invalid),
              in_range)
        << "round " << round;
    // Most gaps must be handled at tier granularity.
    EXPECT_GT(total.cached_bounds - prev_cached,
              total.invalidated_gaps - prev_invalid)
        << "round " << round;
    prev_cached = total.cached_bounds;
    prev_invalid = total.invalidated_gaps;

    // The uncached sibling must agree bit-for-bit and re-score per round.
    auto b = ll->FindOptimal(true, nullptr, nullptr, uncached,
                             &uncached_total);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->key, b->key);
    EXPECT_EQ(a->loss, b->loss);

    ASSERT_TRUE(ll->InsertKey(a->key).ok());
  }
  EXPECT_EQ(total.fallback_rounds, 0);
  // Amortization: the tiered scan scores one box per tier (~sqrt(G))
  // plus the few surviving tiers per gap, so its total bound work must
  // be far below the uncached per-round pre-pass. 4x is a loose floor —
  // the sparse acceptance configs measure >= 10x per round.
  EXPECT_LT(total.bound_evals * 4, uncached_total.bound_evals);
}

}  // namespace
}  // namespace lispoison
