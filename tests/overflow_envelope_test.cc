#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "attack/deletion_attack.h"
#include "attack/loss_landscape.h"
#include "common/rng.h"
#include "data/generators.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

// The 10M-scale envelope (src/common/types.h): every aggregate path
// must carry Int128, and the one deliberately-64-bit structure (the
// removal SoA's suffix sums) must drop out cleanly beyond its
// PruneDomainOk guard. Each test here drives magnitudes where a
// reintroduced int64 narrowing wraps and produces garbage losses, so
// the value assertions below fail loudly on regression.

TEST(OverflowEnvelopeTest, WideDomainAggregatesExceedInt64) {
  // S = 10^15, n = 2000: sum((k - shift)^2) ~ n*S^2/3 ~ 6*10^32, about
  // 10^14x past the int64 ceiling. The landscape's loss must still agree
  // with the independent regression fit.
  Rng rng(41);
  auto ks = GenerateUniform(2000, KeyDomain{0, 1'000'000'000'000'000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());

  const LossLandscape::Aggregates agg = ll->aggregates();
  EXPECT_TRUE(agg.sum_k2 >
              static_cast<Int128>(std::numeric_limits<std::int64_t>::max()))
      << "domain too narrow to exercise the >64-bit envelope";

  auto fit = FitCdfRegression(*ks);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(static_cast<double>(ll->BaseLoss()),
              static_cast<double>(fit->mse),
              1e-6 * static_cast<double>(fit->mse));
}

TEST(OverflowEnvelopeTest, WideDomainPrunedArgmaxMatchesExhaustive) {
  Rng rng(42);
  auto ks = GenerateUniform(3000, KeyDomain{-500'000'000'000'000,
                                            500'000'000'000'000},
                            &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());

  LossLandscape::ArgmaxOptions exhaustive;
  exhaustive.prune = false;
  auto want = ll->FindOptimal(/*interior_only=*/false, nullptr, nullptr,
                              exhaustive);
  auto got = ll->FindOptimal(/*interior_only=*/false);
  ASSERT_TRUE(want.ok() && got.ok());
  EXPECT_EQ(want->key, got->key);
  EXPECT_EQ(want->loss, got->loss);
}

TEST(OverflowEnvelopeTest, BeyondSoaGuardRemovalFallsBackToExactScan) {
  // n * S ~ 2*10^19 > 2^63: PruneDomainOk fails, so the removal SoA
  // must decline its int64 suffix sums and FindOptimalRemoval must run
  // the exact Int128 walk — still agreeing with the rebuild-per-round
  // reference.
  Rng rng(43);
  const std::int64_t n = 20'000;
  auto ks = GenerateUniform(n, KeyDomain{0, 1'000'000'000'000'000}, &rng);
  ASSERT_TRUE(ks.ok());
  ASSERT_GT(static_cast<double>(n) * 1e15, 9.3e18);

  auto want = GreedyDeleteCdfReference(*ks, 3, {});
  auto got = GreedyDeleteCdf(*ks, 3, {}, {});
  ASSERT_TRUE(want.ok() && got.ok());
  EXPECT_EQ(got->removed_keys, want->removed_keys);
  for (std::size_t i = 0; i < want->loss_trajectory.size(); ++i) {
    EXPECT_EQ(got->loss_trajectory[i], want->loss_trajectory[i]);
  }
}

TEST(OverflowEnvelopeTest, SoaSuffixSumsNearInt64CeilingStayExact) {
  // Inside the guard but close to it: n = 10^4 over S = 9*10^14 puts
  // the largest whole-suffix sum within a factor ~2 of int64 max. Any
  // narrowing of the intermediate arithmetic (e.g. int in the rebase
  // loops) breaks exactness against the reference.
  Rng rng(44);
  auto ks = GenerateUniform(10'000, KeyDomain{0, 900'000'000'000'000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto want = GreedyDeleteCdfReference(*ks, 4, {});
  auto got = GreedyDeleteCdf(*ks, 4, {}, {});
  ASSERT_TRUE(want.ok() && got.ok());
  EXPECT_EQ(got->removed_keys, want->removed_keys);
  for (std::size_t i = 0; i < want->loss_trajectory.size(); ++i) {
    EXPECT_EQ(got->loss_trajectory[i], want->loss_trajectory[i]);
  }
}

TEST(OverflowEnvelopeTest, RemovalCommitCostIsSublinear) {
  // The block-local SoA keeps a removal commit at O(sqrt(n)) touched
  // slots. At n = 10^6 the bound below is ~50x under the flat layout's
  // O(n) rewrite cost, so a regression to flat maintenance trips it.
  Rng rng(45);
  const std::int64_t n = 1'000'000;
  auto ks = GenerateUniform(n, KeyDomain{0, 40'000'000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());

  const int rounds = 64;
  for (int i = 0; i < rounds; ++i) {
    auto best = ll->FindOptimalRemoval(nullptr, nullptr,
                                       LossLandscape::ArgmaxOptions{});
    ASSERT_TRUE(best.ok());
    ASSERT_TRUE(ll->RemoveKey(best->key).ok());
  }
  ASSERT_GT(ll->removal_commits(), 0);
  const double per_commit =
      static_cast<double>(ll->removal_commit_touched_slots()) /
      static_cast<double>(ll->removal_commits());
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  EXPECT_LE(per_commit, 10.0 * sqrt_n)
      << "per-commit touched slots " << per_commit
      << " is not O(sqrt(n)) at n = " << n;
}

}  // namespace
}  // namespace lispoison
