#include "common/status.h"

#include <gtest/gtest.h>

namespace lispoison {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCodesRoundTrip) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, MessageIsPreserved) {
  Status s = Status::InvalidArgument("bad key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad key 42");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad key 42");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  LISPOISON_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

Result<int> MakeValue(bool fail) {
  if (fail) return Status::OutOfRange("nope");
  return 5;
}

Result<int> UseAssignOrReturn(bool fail) {
  LISPOISON_ASSIGN_OR_RETURN(int v, MakeValue(fail));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = UseAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 6);
  auto err = UseAssignOrReturn(true);
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace lispoison
