#include "index/root_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

TEST(OracleRootTest, ReturnsExactRanks) {
  auto ks = KeySet::Create({10, 20, 30, 40}, KeyDomain{0, 50});
  ASSERT_TRUE(ks.ok());
  auto root = TrainRootModel(RootModelKind::kOracle, *ks);
  ASSERT_TRUE(root.ok());
  EXPECT_DOUBLE_EQ((*root)->EstimateRank(10), 1.0);
  EXPECT_DOUBLE_EQ((*root)->EstimateRank(40), 4.0);
  EXPECT_DOUBLE_EQ((*root)->EstimateRank(25), 2.0);  // Keys <= 25.
  EXPECT_DOUBLE_EQ((*root)->EstimateRank(5), 0.0);
}

TEST(LinearRootTest, TracksLinearCdf) {
  auto ks = GenerateEvenlySpaced(101, KeyDomain{0, 1000});
  ASSERT_TRUE(ks.ok());
  auto root = TrainRootModel(RootModelKind::kLinear, *ks);
  ASSERT_TRUE(root.ok());
  // Evenly spaced keys: rank ~ k/10 + 1.
  EXPECT_NEAR((*root)->EstimateRank(500), 51.0, 0.5);
  EXPECT_EQ((*root)->ParameterCount(), 2);
}

TEST(CubicRootTest, FitsCubicCdfBetterThanLinear) {
  // Keys spaced so the CDF is strongly convex: k_i = i^3.
  std::vector<Key> keys;
  for (Key i = 1; i <= 30; ++i) keys.push_back(i * i * i);
  auto ks = KeySet::CreateWithTightDomain(keys);
  ASSERT_TRUE(ks.ok());
  auto cubic = TrainRootModel(RootModelKind::kCubic, *ks);
  auto linear = TrainRootModel(RootModelKind::kLinear, *ks);
  ASSERT_TRUE(cubic.ok());
  ASSERT_TRUE(linear.ok());
  double cubic_err = 0, linear_err = 0;
  Rank r = 1;
  for (Key k : ks->keys()) {
    cubic_err += std::fabs((*cubic)->EstimateRank(k) - static_cast<double>(r));
    linear_err +=
        std::fabs((*linear)->EstimateRank(k) - static_cast<double>(r));
    ++r;
  }
  EXPECT_LT(cubic_err, linear_err * 0.5);
}

TEST(PiecewiseRootTest, InterpolatesCdfClosely) {
  Rng rng(3);
  auto ks = GenerateLogNormal(5000, KeyDomain{0, 999999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto root = TrainRootModel(RootModelKind::kPiecewiseLinear, *ks, 256);
  ASSERT_TRUE(root.ok());
  // Mean absolute rank error should be a small fraction of n. The
  // log-normal(0, 2) spike concentrates most keys into a handful of
  // equal-width segments, so allow 5% of n (a linear root is far worse).
  double total_err = 0;
  Rank r = 1;
  for (Key k : ks->keys()) {
    total_err += std::fabs((*root)->EstimateRank(k) - static_cast<double>(r));
    ++r;
  }
  EXPECT_LT(total_err / static_cast<double>(ks->size()),
            static_cast<double>(ks->size()) * 0.05);
  // And the piecewise root must beat the linear root by a wide margin.
  auto linear = TrainRootModel(RootModelKind::kLinear, *ks);
  ASSERT_TRUE(linear.ok());
  double linear_err = 0;
  r = 1;
  for (Key k : ks->keys()) {
    linear_err +=
        std::fabs((*linear)->EstimateRank(k) - static_cast<double>(r));
    ++r;
  }
  EXPECT_LT(total_err, 0.25 * linear_err);
}

TEST(PiecewiseRootTest, MonotoneOnSamples) {
  Rng rng(4);
  auto ks = GenerateUniform(1000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto root = TrainRootModel(RootModelKind::kPiecewiseLinear, *ks, 64);
  ASSERT_TRUE(root.ok());
  double prev = -1;
  for (Key k = 0; k <= 99999; k += 997) {
    const double est = (*root)->EstimateRank(k);
    EXPECT_GE(est, prev - 1e-9);
    prev = est;
  }
}

TEST(PiecewiseRootTest, SegmentValidation) {
  auto ks = KeySet::Create({1, 2, 3}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(
      TrainRootModel(RootModelKind::kPiecewiseLinear, *ks, 0).ok());
}

TEST(RootModelTest, EmptyKeysetFails) {
  auto ks = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(TrainRootModel(RootModelKind::kOracle, *ks).ok());
  EXPECT_FALSE(TrainRootModel(RootModelKind::kLinear, *ks).ok());
}

}  // namespace
}  // namespace lispoison
