// LatencyHistogram: quantile correctness against a sorted-vector oracle
// within the documented bucket resolution, exact min/max/mean/count, and
// merge ≡ recording the union.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/latency_histogram.h"
#include "common/rng.h"

namespace lispoison {
namespace {

/// Nearest-rank oracle quantile over the raw values.
std::int64_t OracleQuantile(std::vector<std::int64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const auto n = static_cast<std::int64_t>(values.size());
  std::int64_t rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(n) - 1e-9));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return values[static_cast<std::size_t>(rank - 1)];
}

/// Relative resolution guaranteed by the log-bucketed layout.
constexpr double kResolution = 1.0 / (1 << LatencyHistogram::kSubBucketBits);

void ExpectQuantilesMatchOracle(const std::vector<std::int64_t>& values) {
  LatencyHistogram h;
  for (const std::int64_t v : values) h.Record(v);
  ASSERT_EQ(h.count(), static_cast<std::int64_t>(values.size()));
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const std::int64_t oracle = OracleQuantile(values, q);
    const std::int64_t got = h.ValueAtQuantile(q);
    // The reported value is the bucket midpoint of the oracle's bucket:
    // within one bucket width (relative kResolution, absolute >= 1).
    const double tol =
        std::max(1.0, static_cast<double>(oracle) * kResolution);
    EXPECT_NEAR(static_cast<double>(got), static_cast<double>(oracle), tol)
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.P50(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values below 2^kSubBucketBits occupy one bucket each: quantiles are
  // exact, not just within resolution.
  LatencyHistogram h;
  std::vector<std::int64_t> values;
  for (std::int64_t v = 0; v < 32; ++v) {
    for (int r = 0; r < 3; ++r) {
      h.Record(v);
      values.push_back(v);
    }
  }
  for (const double q : {0.1, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(h.ValueAtQuantile(q), OracleQuantile(values, q)) << "q=" << q;
  }
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
}

TEST(LatencyHistogramTest, UniformValuesMatchOracle) {
  Rng rng(101);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(rng.UniformInt(0, 5'000'000));
  }
  ExpectQuantilesMatchOracle(values);
}

TEST(LatencyHistogramTest, LogNormalValuesMatchOracle) {
  // Latency-shaped distribution: long right tail.
  Rng rng(102);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(static_cast<std::int64_t>(rng.LogNormal(7.0, 1.5)));
  }
  ExpectQuantilesMatchOracle(values);
}

TEST(LatencyHistogramTest, ExactStatistics) {
  LatencyHistogram h;
  std::int64_t sum = 0;
  Rng rng(103);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(3, 1'000'000);
    h.Record(v);
    values.push_back(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(h.max(), *std::max_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(h.Mean(), static_cast<double>(sum) / 1000.0);
}

TEST(LatencyHistogramTest, NegativeClampsToZero) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(LatencyHistogramTest, LargeMagnitudes) {
  LatencyHistogram h;
  const std::int64_t big = std::int64_t{1} << 60;
  h.Record(big);
  h.Record(big + 1);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.max(), big + 1);
  const double tol = static_cast<double>(big) * kResolution;
  EXPECT_NEAR(static_cast<double>(h.P50()), static_cast<double>(big), tol);
}

TEST(LatencyHistogramTest, MergeEqualsUnion) {
  Rng rng(104);
  LatencyHistogram a, b, merged_oracle;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t va = rng.UniformInt(0, 100000);
    const std::int64_t vb = rng.UniformInt(50, 10'000'000);
    a.Record(va);
    b.Record(vb);
    merged_oracle.Record(va);
    merged_oracle.Record(vb);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), merged_oracle.count());
  EXPECT_EQ(a.min(), merged_oracle.min());
  EXPECT_EQ(a.max(), merged_oracle.max());
  EXPECT_DOUBLE_EQ(a.Mean(), merged_oracle.Mean());
  for (const double q : {0.1, 0.5, 0.95, 0.99}) {
    EXPECT_EQ(a.ValueAtQuantile(q), merged_oracle.ValueAtQuantile(q))
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeIntoEmpty) {
  LatencyHistogram a, b;
  b.Record(42);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 42);
  EXPECT_EQ(a.max(), 42);
  // Merging an empty histogram changes nothing.
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 42);
}

}  // namespace
}  // namespace lispoison
