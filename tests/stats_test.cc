#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace lispoison {
namespace {

TEST(MomentAccumulatorTest, CountAndMeans) {
  MomentAccumulator acc;
  acc.Add(2, 1);
  acc.Add(4, 2);
  acc.Add(6, 3);
  EXPECT_EQ(acc.count(), 3);
  EXPECT_DOUBLE_EQ(static_cast<double>(acc.MeanX()), 4.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(acc.MeanY()), 2.0);
}

TEST(MomentAccumulatorTest, VarianceAndCovarianceExact) {
  MomentAccumulator acc;
  // X = {0, 2, 4}; Y = {1, 2, 3}. VarX = 8/3, VarY = 2/3, Cov = 4/3.
  acc.Add(0, 1);
  acc.Add(2, 2);
  acc.Add(4, 3);
  EXPECT_NEAR(static_cast<double>(acc.VarX()), 8.0 / 3.0, 1e-15);
  EXPECT_NEAR(static_cast<double>(acc.VarY()), 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(static_cast<double>(acc.CovXY()), 4.0 / 3.0, 1e-15);
}

TEST(MomentAccumulatorTest, RemoveUndoesAdd) {
  MomentAccumulator acc;
  acc.Add(10, 1);
  acc.Add(20, 2);
  acc.Add(30, 3);
  acc.Remove(20, 2);
  MomentAccumulator ref;
  ref.Add(10, 1);
  ref.Add(30, 3);
  EXPECT_EQ(acc.count(), ref.count());
  EXPECT_EQ(static_cast<double>(acc.VarX()), static_cast<double>(ref.VarX()));
  EXPECT_EQ(static_cast<double>(acc.CovXY()),
            static_cast<double>(ref.CovXY()));
}

TEST(MomentAccumulatorTest, LargeKeysNoCancellation) {
  // Keys near 10^9 with tiny spread: naive float aggregates would lose
  // the variance entirely; the exact 128-bit numerators must not.
  MomentAccumulator acc;
  const Key base = 1000000000;
  for (int i = 0; i < 100; ++i) {
    acc.Add(base + i, i + 1);
  }
  // X is an arithmetic sequence of step 1, so VarX = (100^2 - 1)/12.
  EXPECT_NEAR(static_cast<double>(acc.VarX()), (100.0 * 100.0 - 1.0) / 12.0,
              1e-9);
}

TEST(QuantileTest, EdgesAndMidpoints) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(QuantileTest, InterpolatesBetweenPoints) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.75), 7.5);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(BoxplotTest, FiveNumberSummary) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const BoxplotSummary s = ComputeBoxplot(v);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 9);
  EXPECT_DOUBLE_EQ(s.median, 5);
  EXPECT_DOUBLE_EQ(s.q1, 3);
  EXPECT_DOUBLE_EQ(s.q3, 7);
  EXPECT_DOUBLE_EQ(s.mean, 5);
  EXPECT_EQ(s.count, 9u);
}

TEST(BoxplotTest, WhiskersExcludeOutliers) {
  // 1..9 plus a far outlier at 100: the high whisker must stay at 9.
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 100};
  const BoxplotSummary s = ComputeBoxplot(v);
  EXPECT_DOUBLE_EQ(s.max, 100);
  EXPECT_LT(s.whisker_hi, 100);
  EXPECT_GE(s.whisker_lo, 1);
}

TEST(BoxplotTest, EmptyIsZeroed) {
  const BoxplotSummary s = ComputeBoxplot({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0);
  EXPECT_DOUBLE_EQ(s.max, 0);
}

TEST(BoxplotTest, SingletonCollapses) {
  const BoxplotSummary s = ComputeBoxplot({3.5});
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.q1, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.q3, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(BoxplotTest, ToStringMentionsQuartiles) {
  const BoxplotSummary s = ComputeBoxplot({1, 2, 3});
  const std::string str = s.ToString();
  EXPECT_NE(str.find("med="), std::string::npos);
  EXPECT_NE(str.find("q1="), std::string::npos);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace lispoison
