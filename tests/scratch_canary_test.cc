#include "attack/loss_landscape.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "data/keyset.h"

namespace lispoison {
namespace {

// The grow-only argmax scratch (EnsureScratchSize) hands the scan
// kernels resize(capacity())-sized buffers whose tail beyond `needed`
// holds stale entries from earlier rounds. The contract is
// indexed-store-before-read on [0, needed) and no reads past needed.
// These tests enforce it two ways:
//
//  * Value canaries (any build): PoisonArgmaxScratchForTesting floods
//    every scratch buffer with NaN / huge sentinels before each argmax
//    call. A read-before-write escape propagates NaN into a bound or a
//    suffix max and the poisoned landscape diverges from its clean
//    twin — losses, keys, or work counters stop matching bit-for-bit.
//
//  * Address canaries (ASan builds): EnsureScratchSize re-poisons the
//    [needed, size) tail after every sizing call, so reading one slot
//    past needed faults immediately instead of returning stale data.
//    Running this same test under -fsanitize=address exercises that
//    path; no separate test body is required.

struct OptionGrid {
  bool prune;
  bool cache;
};

constexpr OptionGrid kGrid[] = {
    {true, true}, {true, false}, {false, false}};

LossLandscape::ArgmaxOptions MakeOptions(const OptionGrid& g) {
  LossLandscape::ArgmaxOptions o;
  o.prune = g.prune;
  o.cache = g.cache;
  return o;
}

TEST(ScratchCanaryTest, PoisonedScratchNeverLeaksIntoInsertionArgmax) {
  Rng rng(51);
  auto ks = GenerateUniform(3000, KeyDomain{0, 300'000}, &rng);
  ASSERT_TRUE(ks.ok());
  for (const OptionGrid& g : kGrid) {
    auto clean = LossLandscape::Create(*ks);
    auto dirty = LossLandscape::Create(*ks);
    ASSERT_TRUE(clean.ok() && dirty.ok());
    const LossLandscape::ArgmaxOptions argmax = MakeOptions(g);
    LossLandscape::ArgmaxStats clean_stats;
    LossLandscape::ArgmaxStats dirty_stats;
    for (int round = 0; round < 40; ++round) {
      auto want = clean->FindOptimal(/*interior_only=*/true, nullptr,
                                     nullptr, argmax, &clean_stats);
      dirty->PoisonArgmaxScratchForTesting();
      auto got = dirty->FindOptimal(/*interior_only=*/true, nullptr,
                                    nullptr, argmax, &dirty_stats);
      ASSERT_EQ(want.ok(), got.ok()) << "round " << round;
      if (!want.ok()) break;
      ASSERT_EQ(want->key, got->key) << "round " << round;
      ASSERT_EQ(want->loss, got->loss) << "round " << round;
      ASSERT_TRUE(clean->InsertKey(want->key).ok());
      ASSERT_TRUE(dirty->InsertKey(got->key).ok());
    }
    EXPECT_EQ(clean_stats.bound_evals, dirty_stats.bound_evals);
    EXPECT_EQ(clean_stats.exact_evals, dirty_stats.exact_evals);
    EXPECT_EQ(clean_stats.pruned_gaps, dirty_stats.pruned_gaps);
    EXPECT_EQ(clean_stats.cached_bounds, dirty_stats.cached_bounds);
    EXPECT_EQ(clean_stats.invalidated_gaps, dirty_stats.invalidated_gaps);
  }
}

TEST(ScratchCanaryTest, PoisonedScratchNeverLeaksIntoRemovalArgmax) {
  Rng rng(52);
  auto ks = GenerateUniform(4000, KeyDomain{0, 400'000}, &rng);
  ASSERT_TRUE(ks.ok());
  for (const OptionGrid& g : kGrid) {
    auto clean = LossLandscape::Create(*ks);
    auto dirty = LossLandscape::Create(*ks);
    ASSERT_TRUE(clean.ok() && dirty.ok());
    const LossLandscape::ArgmaxOptions argmax = MakeOptions(g);
    LossLandscape::ArgmaxStats clean_stats;
    LossLandscape::ArgmaxStats dirty_stats;
    for (int round = 0; round < 40; ++round) {
      auto want = clean->FindOptimalRemoval(nullptr, nullptr, argmax,
                                            &clean_stats);
      dirty->PoisonArgmaxScratchForTesting();
      auto got = dirty->FindOptimalRemoval(nullptr, nullptr, argmax,
                                           &dirty_stats);
      ASSERT_EQ(want.ok(), got.ok()) << "round " << round;
      if (!want.ok()) break;
      ASSERT_EQ(want->key, got->key) << "round " << round;
      ASSERT_EQ(want->loss, got->loss) << "round " << round;
      ASSERT_TRUE(clean->RemoveKey(want->key).ok());
      ASSERT_TRUE(dirty->RemoveKey(got->key).ok());
    }
    EXPECT_EQ(clean_stats.bound_evals, dirty_stats.bound_evals);
    EXPECT_EQ(clean_stats.exact_evals, dirty_stats.exact_evals);
    EXPECT_EQ(clean_stats.pruned_gaps, dirty_stats.pruned_gaps);
    EXPECT_EQ(clean_stats.cached_bounds, dirty_stats.cached_bounds);
    EXPECT_EQ(clean_stats.invalidated_gaps, dirty_stats.invalidated_gaps);
  }
}

TEST(ScratchCanaryTest, PoisonSurvivesMixedCommitsAndShrinkingNeeds) {
  // Interleave inserts and removals so the per-round `needed` sizes
  // shrink as well as grow — the shrink direction is where a stale
  // tail entry from a previous (larger) round sits closest to the live
  // prefix and an off-by-one read would go unnoticed without the
  // canary fill.
  Rng rng(53);
  auto ks = GenerateUniform(2500, KeyDomain{0, 200'000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto clean = LossLandscape::Create(*ks);
  auto dirty = LossLandscape::Create(*ks);
  ASSERT_TRUE(clean.ok() && dirty.ok());
  const LossLandscape::ArgmaxOptions argmax;  // prune + cache (default).
  for (int round = 0; round < 60; ++round) {
    const bool removal = round % 3 == 2;
    if (removal) {
      auto want = clean->FindOptimalRemoval(nullptr, nullptr, argmax);
      dirty->PoisonArgmaxScratchForTesting();
      auto got = dirty->FindOptimalRemoval(nullptr, nullptr, argmax);
      ASSERT_TRUE(want.ok() && got.ok()) << "round " << round;
      ASSERT_EQ(want->key, got->key) << "round " << round;
      ASSERT_EQ(want->loss, got->loss) << "round " << round;
      ASSERT_TRUE(clean->RemoveKey(want->key).ok());
      ASSERT_TRUE(dirty->RemoveKey(got->key).ok());
    } else {
      auto want = clean->FindOptimal(/*interior_only=*/true);
      dirty->PoisonArgmaxScratchForTesting();
      auto got = dirty->FindOptimal(/*interior_only=*/true);
      ASSERT_TRUE(want.ok() && got.ok()) << "round " << round;
      ASSERT_EQ(want->key, got->key) << "round " << round;
      ASSERT_EQ(want->loss, got->loss) << "round " << round;
      ASSERT_TRUE(clean->InsertKey(want->key).ok());
      ASSERT_TRUE(dirty->InsertKey(got->key).ok());
    }
    EXPECT_EQ(clean->BaseLoss(), dirty->BaseLoss()) << "round " << round;
  }
}

}  // namespace
}  // namespace lispoison
