#include "index/learned_index.h"

#include <gtest/gtest.h>

#include "attack/greedy_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

RmiOptions OracleOptions(std::int64_t num_models) {
  RmiOptions opts;
  opts.num_models = num_models;
  opts.root_kind = RootModelKind::kOracle;
  return opts;
}

TEST(LearnedIndexTest, FindsEveryStoredKey) {
  Rng rng(1);
  auto ks = GenerateUniform(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = LearnedIndex::Build(*ks, OracleOptions(20));
  ASSERT_TRUE(idx.ok());
  for (std::int64_t i = 0; i < ks->size(); ++i) {
    const LookupResult r = idx->Lookup(ks->at(i));
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.position, i);
    EXPECT_GE(r.probes, 1);
  }
}

TEST(LearnedIndexTest, MissingKeysReportNotFound) {
  auto ks = KeySet::Create({10, 20, 30, 40, 50}, KeyDomain{0, 100});
  ASSERT_TRUE(ks.ok());
  auto idx = LearnedIndex::Build(*ks, OracleOptions(1));
  ASSERT_TRUE(idx.ok());
  for (Key missing : {0, 15, 25, 45, 100}) {
    const LookupResult r = idx->Lookup(missing);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.position, -1);
  }
}

TEST(LearnedIndexTest, LogNormalKeysStillAllFound) {
  Rng rng(2);
  auto ks = GenerateLogNormal(3000, KeyDomain{0, 999999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = LearnedIndex::Build(*ks, OracleOptions(30));
  ASSERT_TRUE(idx.ok());
  const LookupStats stats = idx->ProfileAllKeys();
  EXPECT_EQ(stats.lookups, 3000);
  EXPECT_GT(stats.total_probes, 0);
}

TEST(LearnedIndexTest, PoisoningIncreasesLastMileWork) {
  Rng rng(3);
  auto ks = GenerateUniform(2000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto clean_idx = LearnedIndex::Build(*ks, OracleOptions(20));
  ASSERT_TRUE(clean_idx.ok());
  const LookupStats clean = clean_idx->ProfileAllKeys();

  // Poison 10% and rebuild (the victim trains on K ∪ P).
  auto attack = GreedyPoisonCdf(*ks, 200);
  ASSERT_TRUE(attack.ok());
  auto poisoned_set = ApplyPoison(*ks, attack->poison_keys);
  ASSERT_TRUE(poisoned_set.ok());
  auto poisoned_idx = LearnedIndex::Build(*poisoned_set, OracleOptions(20));
  ASSERT_TRUE(poisoned_idx.ok());
  const LookupStats poisoned = poisoned_idx->ProfileAllKeys();

  // The attack degrades mean prediction error, which drives probe count.
  EXPECT_GT(poisoned.MeanAbsError(), clean.MeanAbsError());
}

TEST(LearnedIndexTest, ProfileAggregatesAreConsistent) {
  Rng rng(4);
  auto ks = GenerateUniform(500, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = LearnedIndex::Build(*ks, OracleOptions(5));
  ASSERT_TRUE(idx.ok());
  const LookupStats stats = idx->ProfileAllKeys();
  EXPECT_EQ(stats.lookups, 500);
  EXPECT_LE(stats.max_probes * 1.0, 500.0);
  EXPECT_GE(stats.max_probes, 1);
  EXPECT_GE(stats.MeanProbes(), 1.0);
  EXPECT_LE(stats.MeanAbsError(), static_cast<double>(stats.max_abs_error));
}

TEST(LearnedIndexTest, SingleKeyIndex) {
  auto ks = KeySet::Create({42}, KeyDomain{0, 100});
  ASSERT_TRUE(ks.ok());
  auto idx = LearnedIndex::Build(*ks, OracleOptions(1));
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE(idx->Lookup(42).found);
  EXPECT_FALSE(idx->Lookup(41).found);
}

TEST(LookupStatsTest, EmptyStats) {
  LookupStats stats;
  EXPECT_DOUBLE_EQ(stats.MeanProbes(), 0.0);
  EXPECT_DOUBLE_EQ(stats.MeanAbsError(), 0.0);
}

}  // namespace
}  // namespace lispoison
