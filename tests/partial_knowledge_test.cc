#include "attack/partial_knowledge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "attack/greedy_poisoner.h"
#include "data/generators.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

TEST(PartialKnowledgeTest, FullKnowledgeMatchesWhiteBox) {
  Rng rng(1);
  auto ks = GenerateUniform(200, KeyDomain{0, 1999}, &rng);
  ASSERT_TRUE(ks.ok());
  PartialKnowledgeOptions opts;
  opts.observe_fraction = 1.0;
  opts.poison_fraction = 0.10;
  Rng attack_rng(2);
  auto result = PoisonWithPartialKnowledge(*ks, opts, &attack_rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->observed_keys, 200);
  // With full knowledge nothing collides and prediction is exact.
  EXPECT_EQ(result->planned_keys.size(), result->injected_keys.size());
  EXPECT_NEAR(static_cast<double>(result->predicted_loss),
              static_cast<double>(result->achieved_loss),
              1e-6 * static_cast<double>(result->achieved_loss));
  EXPECT_GT(result->AchievedRatioLoss(), 1.0);
}

TEST(PartialKnowledgeTest, HalfKnowledgeStillDamages) {
  Rng rng(3);
  auto ks = GenerateUniform(400, KeyDomain{0, 3999}, &rng);
  ASSERT_TRUE(ks.ok());
  PartialKnowledgeOptions opts;
  opts.observe_fraction = 0.5;
  opts.poison_fraction = 0.10;
  Rng attack_rng(4);
  auto result = PoisonWithPartialKnowledge(*ks, opts, &attack_rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->observed_keys, 200);
  EXPECT_GT(result->AchievedRatioLoss(), 1.5);
}

TEST(PartialKnowledgeTest, DamageGrowsWithKnowledge) {
  Rng rng(5);
  auto ks = GenerateUniform(500, KeyDomain{0, 4999}, &rng);
  ASSERT_TRUE(ks.ok());
  double low_knowledge = 0, high_knowledge = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    Rng r1(static_cast<std::uint64_t>(100 + t));
    Rng r2(static_cast<std::uint64_t>(100 + t));
    PartialKnowledgeOptions low;
    low.observe_fraction = 0.1;
    low.poison_fraction = 0.10;
    PartialKnowledgeOptions high;
    high.observe_fraction = 0.9;
    high.poison_fraction = 0.10;
    auto rl = PoisonWithPartialKnowledge(*ks, low, &r1);
    auto rh = PoisonWithPartialKnowledge(*ks, high, &r2);
    ASSERT_TRUE(rl.ok());
    ASSERT_TRUE(rh.ok());
    low_knowledge += rl->AchievedRatioLoss();
    high_knowledge += rh->AchievedRatioLoss();
  }
  // On average, a better-informed attacker does at least as well.
  EXPECT_GE(high_knowledge, low_knowledge * 0.8);
}

TEST(PartialKnowledgeTest, CollisionsAreDropped) {
  // Dense keyset: planning against a small sample makes collisions with
  // unobserved keys likely; injected must be a subset of planned and
  // disjoint from K.
  Rng rng(6);
  auto ks = GenerateUniform(300, KeyDomain{0, 599}, &rng);
  ASSERT_TRUE(ks.ok());
  PartialKnowledgeOptions opts;
  opts.observe_fraction = 0.2;
  opts.poison_fraction = 0.10;
  Rng attack_rng(7);
  auto result = PoisonWithPartialKnowledge(*ks, opts, &attack_rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->injected_keys.size(), result->planned_keys.size());
  for (Key k : result->injected_keys) {
    EXPECT_FALSE(ks->Contains(k));
  }
}

TEST(PartialKnowledgeTest, Validation) {
  Rng rng(8);
  auto ks = GenerateUniform(50, KeyDomain{0, 499}, &rng);
  ASSERT_TRUE(ks.ok());
  Rng attack_rng(9);
  PartialKnowledgeOptions opts;
  opts.observe_fraction = 0.0;
  EXPECT_FALSE(PoisonWithPartialKnowledge(*ks, opts, &attack_rng).ok());
  opts.observe_fraction = 1.5;
  EXPECT_FALSE(PoisonWithPartialKnowledge(*ks, opts, &attack_rng).ok());
  opts = PartialKnowledgeOptions{};
  opts.poison_fraction = 0.0;
  EXPECT_FALSE(PoisonWithPartialKnowledge(*ks, opts, &attack_rng).ok());
  auto empty = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(
      PoisonWithPartialKnowledge(*empty, PartialKnowledgeOptions{},
                                 &attack_rng)
          .ok());
}

TEST(PartialKnowledgeTest, SeededDifferentialAgainstReferencePlanner) {
  // Differential pin: PoisonWithPartialKnowledge plans with the
  // incremental GreedyPoisonCdf (pruned + tiered argmax by default).
  // Replaying its deterministic sampling step and planning with the
  // rebuild-per-round exhaustive GreedyPoisonCdfReference must yield
  // the exact same planned keys, injected keys, and victim losses —
  // so engine refactors can never silently change this attack path.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng data_rng(0x9A27 + seed);
    const std::int64_t n = 120 + static_cast<std::int64_t>(seed % 4) * 60;
    const KeyDomain domain{0, 10 * n};
    auto ks = GenerateUniform(n, domain, &data_rng);
    ASSERT_TRUE(ks.ok());

    PartialKnowledgeOptions opts;
    opts.observe_fraction = 0.25 + 0.15 * static_cast<double>(seed % 4);
    opts.poison_fraction = 0.10;
    Rng attack_rng(0x1234 + seed);
    auto result = PoisonWithPartialKnowledge(*ks, opts, &attack_rng);
    ASSERT_TRUE(result.ok()) << "seed " << seed;

    // Reference replay of the attacker's deterministic sample: same
    // Rng seed, same shuffle, same observation count.
    Rng replay_rng(0x1234 + seed);
    std::vector<Key> shuffled = ks->keys();
    replay_rng.Shuffle(&shuffled);
    const std::int64_t observed = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::llround(
               opts.observe_fraction * static_cast<double>(n))));
    shuffled.resize(static_cast<std::size_t>(std::min(observed, n)));
    auto sample = KeySet::Create(std::move(shuffled), domain);
    ASSERT_TRUE(sample.ok());
    EXPECT_EQ(result->observed_keys, sample->size()) << "seed " << seed;

    const std::int64_t budget = static_cast<std::int64_t>(
        std::floor(opts.poison_fraction * static_cast<double>(n)));
    auto plan = GreedyPoisonCdfReference(*sample, budget, opts.attack);
    ASSERT_TRUE(plan.ok()) << "seed " << seed;
    EXPECT_EQ(result->planned_keys, plan->poison_keys) << "seed " << seed;
    EXPECT_EQ(result->predicted_loss, plan->poisoned_loss)
        << "seed " << seed;

    // Injection filter and the victim retrain, replayed independently.
    std::vector<Key> injected;
    for (Key kp : plan->poison_keys) {
      if (!ks->Contains(kp)) injected.push_back(kp);
    }
    EXPECT_EQ(result->injected_keys, injected) << "seed " << seed;
    auto clean_fit = FitCdfRegression(*ks);
    ASSERT_TRUE(clean_fit.ok());
    EXPECT_EQ(result->base_loss, clean_fit->mse) << "seed " << seed;
    if (injected.empty()) {
      EXPECT_EQ(result->achieved_loss, clean_fit->mse);
    } else {
      auto poisoned = ks->Union(injected);
      ASSERT_TRUE(poisoned.ok());
      auto poisoned_fit = FitCdfRegression(*poisoned);
      ASSERT_TRUE(poisoned_fit.ok());
      EXPECT_EQ(result->achieved_loss, poisoned_fit->mse)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace lispoison
