#include "attack/partial_knowledge.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace lispoison {
namespace {

TEST(PartialKnowledgeTest, FullKnowledgeMatchesWhiteBox) {
  Rng rng(1);
  auto ks = GenerateUniform(200, KeyDomain{0, 1999}, &rng);
  ASSERT_TRUE(ks.ok());
  PartialKnowledgeOptions opts;
  opts.observe_fraction = 1.0;
  opts.poison_fraction = 0.10;
  Rng attack_rng(2);
  auto result = PoisonWithPartialKnowledge(*ks, opts, &attack_rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->observed_keys, 200);
  // With full knowledge nothing collides and prediction is exact.
  EXPECT_EQ(result->planned_keys.size(), result->injected_keys.size());
  EXPECT_NEAR(static_cast<double>(result->predicted_loss),
              static_cast<double>(result->achieved_loss),
              1e-6 * static_cast<double>(result->achieved_loss));
  EXPECT_GT(result->AchievedRatioLoss(), 1.0);
}

TEST(PartialKnowledgeTest, HalfKnowledgeStillDamages) {
  Rng rng(3);
  auto ks = GenerateUniform(400, KeyDomain{0, 3999}, &rng);
  ASSERT_TRUE(ks.ok());
  PartialKnowledgeOptions opts;
  opts.observe_fraction = 0.5;
  opts.poison_fraction = 0.10;
  Rng attack_rng(4);
  auto result = PoisonWithPartialKnowledge(*ks, opts, &attack_rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->observed_keys, 200);
  EXPECT_GT(result->AchievedRatioLoss(), 1.5);
}

TEST(PartialKnowledgeTest, DamageGrowsWithKnowledge) {
  Rng rng(5);
  auto ks = GenerateUniform(500, KeyDomain{0, 4999}, &rng);
  ASSERT_TRUE(ks.ok());
  double low_knowledge = 0, high_knowledge = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    Rng r1(static_cast<std::uint64_t>(100 + t));
    Rng r2(static_cast<std::uint64_t>(100 + t));
    PartialKnowledgeOptions low;
    low.observe_fraction = 0.1;
    low.poison_fraction = 0.10;
    PartialKnowledgeOptions high;
    high.observe_fraction = 0.9;
    high.poison_fraction = 0.10;
    auto rl = PoisonWithPartialKnowledge(*ks, low, &r1);
    auto rh = PoisonWithPartialKnowledge(*ks, high, &r2);
    ASSERT_TRUE(rl.ok());
    ASSERT_TRUE(rh.ok());
    low_knowledge += rl->AchievedRatioLoss();
    high_knowledge += rh->AchievedRatioLoss();
  }
  // On average, a better-informed attacker does at least as well.
  EXPECT_GE(high_knowledge, low_knowledge * 0.8);
}

TEST(PartialKnowledgeTest, CollisionsAreDropped) {
  // Dense keyset: planning against a small sample makes collisions with
  // unobserved keys likely; injected must be a subset of planned and
  // disjoint from K.
  Rng rng(6);
  auto ks = GenerateUniform(300, KeyDomain{0, 599}, &rng);
  ASSERT_TRUE(ks.ok());
  PartialKnowledgeOptions opts;
  opts.observe_fraction = 0.2;
  opts.poison_fraction = 0.10;
  Rng attack_rng(7);
  auto result = PoisonWithPartialKnowledge(*ks, opts, &attack_rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->injected_keys.size(), result->planned_keys.size());
  for (Key k : result->injected_keys) {
    EXPECT_FALSE(ks->Contains(k));
  }
}

TEST(PartialKnowledgeTest, Validation) {
  Rng rng(8);
  auto ks = GenerateUniform(50, KeyDomain{0, 499}, &rng);
  ASSERT_TRUE(ks.ok());
  Rng attack_rng(9);
  PartialKnowledgeOptions opts;
  opts.observe_fraction = 0.0;
  EXPECT_FALSE(PoisonWithPartialKnowledge(*ks, opts, &attack_rng).ok());
  opts.observe_fraction = 1.5;
  EXPECT_FALSE(PoisonWithPartialKnowledge(*ks, opts, &attack_rng).ok());
  opts = PartialKnowledgeOptions{};
  opts.poison_fraction = 0.0;
  EXPECT_FALSE(PoisonWithPartialKnowledge(*ks, opts, &attack_rng).ok());
  auto empty = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(
      PoisonWithPartialKnowledge(*empty, PartialKnowledgeOptions{},
                                 &attack_rng)
          .ok());
}

}  // namespace
}  // namespace lispoison
