#include "index/btree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

TEST(BPlusTreeTest, FindsEveryKeyWithPosition) {
  Rng rng(1);
  auto ks = GenerateUniform(5000, KeyDomain{0, 499999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto tree = BPlusTree::Build(*ks, 16);
  ASSERT_TRUE(tree.ok());
  for (std::int64_t i = 0; i < ks->size(); ++i) {
    const BTreeLookupResult r = tree->Lookup(ks->at(i));
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.position, i);
  }
}

TEST(BPlusTreeTest, MissingKeysNotFound) {
  auto ks = KeySet::Create({2, 4, 6, 8, 10}, KeyDomain{0, 20});
  ASSERT_TRUE(ks.ok());
  auto tree = BPlusTree::Build(*ks, 3);
  ASSERT_TRUE(tree.ok());
  for (Key missing : {0, 1, 3, 5, 7, 9, 11, 20}) {
    EXPECT_FALSE(tree->Lookup(missing).found) << missing;
  }
}

TEST(BPlusTreeTest, HeightGrowsLogarithmically) {
  Rng rng(2);
  auto small = GenerateUniform(10, KeyDomain{0, 999}, &rng);
  auto large = GenerateUniform(10000, KeyDomain{0, 999999}, &rng);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  auto t_small = BPlusTree::Build(*small, 8);
  auto t_large = BPlusTree::Build(*large, 8);
  ASSERT_TRUE(t_small.ok());
  ASSERT_TRUE(t_large.ok());
  EXPECT_LE(t_small->height(), 2);
  // 10^4 keys at fanout 8: height about ceil(log8(10^4/8)) + 1 <= 5.
  EXPECT_LE(t_large->height(), 6);
  EXPECT_GT(t_large->height(), t_small->height());
}

TEST(BPlusTreeTest, LookupCostIsBoundedByHeight) {
  Rng rng(3);
  auto ks = GenerateUniform(4096, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto tree = BPlusTree::Build(*ks, 32);
  ASSERT_TRUE(tree.ok());
  for (std::int64_t i = 0; i < ks->size(); i += 97) {
    const auto r = tree->Lookup(ks->at(i));
    EXPECT_EQ(r.nodes_visited, tree->height());
  }
}

TEST(BPlusTreeTest, EmptyTree) {
  auto ks = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  auto tree = BPlusTree::Build(*ks, 4);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 0);
  EXPECT_FALSE(tree->Lookup(5).found);
}

TEST(BPlusTreeTest, SingleKey) {
  auto ks = KeySet::Create({7}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  auto tree = BPlusTree::Build(*ks, 4);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->Lookup(7).found);
  EXPECT_EQ(tree->Lookup(7).position, 0);
  EXPECT_EQ(tree->height(), 1);
}

TEST(BPlusTreeTest, FanoutValidation) {
  auto ks = KeySet::Create({1, 2}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(BPlusTree::Build(*ks, 2).ok());
  EXPECT_TRUE(BPlusTree::Build(*ks, 3).ok());
}

TEST(BPlusTreeTest, NodeCountReasonable) {
  Rng rng(4);
  auto ks = GenerateUniform(1000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto tree = BPlusTree::Build(*ks, 10);
  ASSERT_TRUE(tree.ok());
  // 100 leaves + ~10 internals + root.
  EXPECT_GE(tree->node_count(), 100);
  EXPECT_LE(tree->node_count(), 130);
}

}  // namespace
}  // namespace lispoison
