// Stateful property harness for the tiered incremental argmax engine:
// hundreds of seeded random operation sequences — InsertKey commits,
// FindOptimal scans with per-call random interior/thread-count/prune/
// cache settings, occasional excluded-key scans and duplicate-insert
// probes — replayed against a *flat-vector + full-evaluation oracle*
// (sorted std::vector<Key> plus exact Aggregates arithmetic, no gap
// structure, no pruning, no caching). At every step the engine must
// return a bit-identical candidate (key and long-double loss), and the
// ArgmaxStats counters must satisfy the engine's accounting contracts:
//
//   * prune off        -> no bound work, exact_evals == oracle candidates
//   * prune, cache off -> bound_evals == oracle candidates, no cache work
//   * prune + cache    -> cached_bounds + invalidated_gaps == gaps in
//                         the scanned range (every gap is dispositioned
//                         exactly once), zero fallbacks
//
// and every InsertKey must splice O(sqrt(G)) gap records, not O(G) —
// asserted through the engine's splice-work counter against the tier
// cap (a flat-vector splice would move ~G/2 records per insert).
//
// The sequence count is env-tunable: PROPERTY_TEST_SEEDS=<n> extends
// the sweep (CI's sanitizer matrix runs an extended range).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "attack/loss_landscape.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "data/keyset.h"

namespace lispoison {
namespace {

/// Outcome of one oracle scan.
struct OracleScan {
  bool ok = false;
  Key key = 0;
  long double loss = 0;
  std::int64_t gaps_in_range = 0;  ///< Maximal gaps meeting the range.
  std::int64_t candidates = 0;     ///< Non-excluded endpoint evaluations.
};

/// The reference model: a flat sorted key vector. Every scan rebuilds
/// the exact aggregates from scratch and evaluates every gap endpoint —
/// the "flat-vector + full pre-pass" ground truth the tiered engine
/// must bit-match. Loss values are computed through the same public
/// Aggregates arithmetic, whose shift-invariance (pinned by
/// loss_landscape_incremental_test) makes bit-equality well-defined
/// even though the oracle re-shifts by its own current minimum.
class FlatOracle {
 public:
  FlatOracle(std::vector<Key> keys, KeyDomain domain)
      : keys_(std::move(keys)), domain_(domain) {}

  bool Occupied(Key k) const {
    return std::binary_search(keys_.begin(), keys_.end(), k);
  }

  void Insert(Key k) {
    keys_.insert(std::lower_bound(keys_.begin(), keys_.end(), k), k);
  }

  const KeyDomain& domain() const { return domain_; }

  /// Maximal unoccupied runs over the whole domain.
  std::int64_t TotalGaps() const {
    std::int64_t gaps = 0;
    Key cursor = domain_.lo;
    for (const Key k : keys_) {
      if (cursor <= k - 1) ++gaps;
      cursor = k + 1;
    }
    if (cursor <= domain_.hi) ++gaps;
    return gaps;
  }

  OracleScan FindOptimal(bool interior,
                         const std::unordered_set<Key>* excluded) const {
    OracleScan result;
    LossLandscape::Aggregates agg;
    agg.shift = keys_.front();
    for (const Key k : keys_) agg.InsertAboveAll(k);
    const Key lo_bound = interior ? keys_.front() + 1 : domain_.lo;
    const Key hi_bound = interior ? keys_.back() - 1 : domain_.hi;
    if (lo_bound > hi_bound) return result;

    Int128 prefix = 0;
    Rank count = 0;
    Key cursor = domain_.lo;
    auto visit_gap = [&](Key gap_lo, Key gap_hi) {
      if (gap_hi < lo_bound || gap_lo > hi_bound) return;
      const Key lo = std::max(gap_lo, lo_bound);
      const Key hi = std::min(gap_hi, hi_bound);
      ++result.gaps_in_range;
      const Int128 suffix = agg.sum_k - prefix;
      auto consider = [&](Key kp) {
        if (excluded != nullptr && excluded->count(kp) != 0) return;
        ++result.candidates;
        const long double loss = agg.LossAfterInsert(kp, count, suffix);
        if (!result.ok || loss > result.loss) {  // First max in key order.
          result.ok = true;
          result.key = kp;
          result.loss = loss;
        }
      };
      consider(lo);
      if (hi != lo) consider(hi);
    };
    for (const Key k : keys_) {
      if (cursor <= k - 1) visit_gap(cursor, k - 1);
      prefix += static_cast<Int128>(k) - agg.shift;
      ++count;
      cursor = k + 1;
    }
    if (cursor <= domain_.hi) visit_gap(cursor, domain_.hi);
    return result;
  }

 private:
  std::vector<Key> keys_;  // Sorted, the flat reference representation.
  KeyDomain domain_;
};

int SeedCount() {
  if (const char* env = std::getenv("PROPERTY_TEST_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

/// One randomized op sequence. `pools` supplies shared thread pools for
/// the {2, 7}-worker scans (nullptr entries mean serial).
void RunSequence(std::uint64_t seed, const std::vector<ThreadPool*>& pools) {
  Rng rng(seed);
  // Every 4th sequence is large enough (> 2048 gaps) to cross the
  // chunked-parallel threshold; the rest keep the oracle cheap.
  const bool big = seed % 4 == 0;
  const std::int64_t n =
      big ? rng.UniformInt(2600, 4200) : rng.UniformInt(24, 800);
  const KeyDomain domain{0, 16 * n};
  const int layout = static_cast<int>(rng.UniformInt(0, 1));
  auto ks = layout == 0 ? GenerateUniform(n, domain, &rng)
                        : GenerateLogNormal(n, domain, &rng);
  ASSERT_TRUE(ks.ok()) << ks.status().message();
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok()) << ll.status().message();
  FlatOracle oracle(ks->keys(), domain);

  LossLandscape::ArgmaxStats stats;
  LossLandscape::ArgmaxStats prev;
  std::int64_t prev_splice = ll->splice_moves();

  const int ops = 26;
  for (int op = 0; op < ops; ++op) {
    const std::int64_t roll = rng.UniformInt(0, 99);
    if (roll < 35) {
      // ---- InsertKey of a random unoccupied key. ----
      Key kp = 0;
      bool found = false;
      for (int tries = 0; tries < 24 && !found; ++tries) {
        kp = rng.UniformInt(domain.lo, domain.hi);
        found = !oracle.Occupied(kp);
      }
      if (!found) continue;
      ASSERT_TRUE(ll->InsertKey(kp).ok()) << "seed " << seed;
      oracle.Insert(kp);
      // Duplicate inserts must be rejected and leave no trace.
      if (roll < 8) {
        EXPECT_FALSE(ll->InsertKey(kp).ok());
      }
      // The tiered splice: per-insert gap-record movement stays
      // O(sqrt(G)) — within-tier shifts (<= tier cap), one possible
      // tier split (<= cap/2 copies) and the tier directory
      // (<= 2G/cap + 1 entries). A flat splice would move ~G/2.
      const std::int64_t cap = ll->gap_tier_cap();
      const std::int64_t total_gaps = oracle.TotalGaps();
      EXPECT_EQ(ll->gap_count(), total_gaps) << "seed " << seed;
      const std::int64_t moved = ll->splice_moves() - prev_splice;
      prev_splice = ll->splice_moves();
      EXPECT_LE(moved, 2 * cap + 2 * total_gaps / std::max<std::int64_t>(
                                      1, cap) + 32)
          << "seed " << seed << " op " << op << " G=" << total_gaps;
    } else {
      // ---- FindOptimal under random settings. ----
      const bool interior = rng.UniformInt(0, 1) == 0;
      const std::int64_t pool_pick = rng.UniformInt(0, 2);
      ThreadPool* pool = pool_pick == 0 ? nullptr
                                        : pools[static_cast<std::size_t>(
                                              pool_pick - 1)];
      LossLandscape::ArgmaxOptions argmax;
      argmax.prune = rng.UniformInt(0, 3) != 0;   // 3/4 pruned
      argmax.cache = rng.UniformInt(0, 3) != 0;   // 3/4 tiered
      std::unordered_set<Key> excluded_set;
      const std::unordered_set<Key>* excluded = nullptr;
      if (rng.UniformInt(0, 7) == 0) {
        // Exclude the current optimum: the engine must find the
        // runner-up exactly.
        const OracleScan top = oracle.FindOptimal(interior, nullptr);
        if (top.ok) {
          excluded_set.insert(top.key);
          excluded = &excluded_set;
        }
      }

      const OracleScan want = oracle.FindOptimal(interior, excluded);
      const auto got =
          ll->FindOptimal(interior, excluded, pool, argmax, &stats);
      ASSERT_EQ(want.ok, got.ok())
          << "seed " << seed << " op " << op;
      if (want.ok) {
        EXPECT_EQ(want.key, got->key) << "seed " << seed << " op " << op;
        EXPECT_EQ(want.loss, got->loss) << "seed " << seed << " op " << op;
      }

      // ---- Counter contracts. ----
      const auto d = [&](std::int64_t LossLandscape::ArgmaxStats::*f) {
        return stats.*f - prev.*f;
      };
      EXPECT_EQ(d(&LossLandscape::ArgmaxStats::rounds), 1);
      EXPECT_EQ(d(&LossLandscape::ArgmaxStats::fallback_rounds), 0)
          << "seed " << seed;  // Moderate domains: always admissible.
      if (!argmax.prune) {
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::bound_evals), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::cached_bounds), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::invalidated_gaps), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::pruned_gaps), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::exact_evals),
                  want.candidates)
            << "seed " << seed << " op " << op;
      } else if (!argmax.cache) {
        // PR 3 pre-pass: every non-excluded endpoint scored once.
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::bound_evals),
                  want.candidates)
            << "seed " << seed << " op " << op;
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::cached_bounds), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::invalidated_gaps), 0);
      } else {
        // Tiered scan: every in-range gap dispositioned exactly once,
        // either by its tier's range bound or by per-gap re-scoring.
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::cached_bounds) +
                      d(&LossLandscape::ArgmaxStats::invalidated_gaps),
                  want.gaps_in_range)
            << "seed " << seed << " op " << op;
        // Bound work: at most one range bound per tier (bounded by the
        // gap count) plus two endpoint scores per re-scored gap, with
        // the seed tier scored twice.
        EXPECT_LE(d(&LossLandscape::ArgmaxStats::bound_evals),
                  want.gaps_in_range +
                      4 * d(&LossLandscape::ArgmaxStats::invalidated_gaps) +
                      4)
            << "seed " << seed << " op " << op;
      }
      // Exact work never exceeds the exhaustive candidate count (the
      // seed gap is deduplicated in the sweep).
      EXPECT_LE(d(&LossLandscape::ArgmaxStats::exact_evals),
                want.candidates)
          << "seed " << seed << " op " << op;
      prev = stats;
    }
  }
}

TEST(LandscapeStatefulPropertyTest, SeededOpSequencesMatchFlatOracle) {
  ThreadPool pool2(2);
  ThreadPool pool7(7);
  const std::vector<ThreadPool*> pools = {&pool2, &pool7};
  const int seeds = SeedCount();
  for (int s = 0; s < seeds; ++s) {
    RunSequence(0x5EED5000 + static_cast<std::uint64_t>(s), pools);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "fatal failure at seed index " << s;
    }
  }
}

TEST(LandscapeStatefulPropertyTest, GreedySelfInsertionSpliceWorkSublinear) {
  // The greedy attack's own access pattern at a gap count where a flat
  // O(G) splice would dwarf the tiered bound: 300 inserts into ~5000
  // maximal gaps must each move O(sqrt(G)) records.
  Rng rng(0x5811CE);
  auto ks = GenerateUniform(5000, KeyDomain{0, 80000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());

  const std::int64_t cap = ll->gap_tier_cap();
  std::int64_t prev_splice = ll->splice_moves();
  std::int64_t max_moved = 0;
  for (int round = 0; round < 300; ++round) {
    auto best = ll->FindOptimal(true);
    ASSERT_TRUE(best.ok());
    ASSERT_TRUE(ll->InsertKey(best->key).ok());
    const std::int64_t moved = ll->splice_moves() - prev_splice;
    prev_splice = ll->splice_moves();
    max_moved = std::max(max_moved, moved);
    const std::int64_t gaps = ll->gap_count();
    ASSERT_LE(moved,
              2 * cap + 2 * gaps / std::max<std::int64_t>(1, cap) + 32)
        << "round " << round;
  }
  // Structural sanity: the worst insert stayed around sqrt-scale, far
  // below the flat vector's ~G/2 average memmove.
  EXPECT_LT(max_moved, ll->gap_count() / 8);
  EXPECT_GT(max_moved, 0);
}

}  // namespace
}  // namespace lispoison
