// Stateful property harness for the fully dynamic incremental argmax
// engine: hundreds of seeded random operation sequences — InsertKey /
// RemoveKey / ReplaceKey commits, FindOptimal and FindOptimalRemoval
// scans with per-call random interior/thread-count/prune/cache
// settings, occasional excluded-key / restricted-allowed scans and
// duplicate-insert / missing-removal probes — replayed against a
// *flat-vector + full-evaluation oracle* (sorted std::vector<Key> plus
// exact Aggregates arithmetic, no gap structure, no pruning, no
// caching). At every step the engine must return a bit-identical
// candidate (key and long-double loss), and the ArgmaxStats counters
// must satisfy the engine's accounting contracts:
//
//   * prune off        -> no bound work, exact_evals == oracle candidates
//   * prune, cache off -> bound_evals == oracle candidates, no cache work
//   * prune + cache    -> cached_bounds + invalidated_gaps == gaps in
//                         the scanned range (every gap is dispositioned
//                         exactly once), zero fallbacks
//   * removal scans    -> flat pruned: bound_evals == allowed
//                         candidates; tiered (cache): every stored key
//                         dispositioned exactly once by its block's
//                         chord bound or per-key re-scoring
//                         (cached_bounds + invalidated_gaps == n)
//
// and every InsertKey splice / RemoveKey merge must move O(sqrt(G)) gap
// records, not O(G) — asserted through the engine's splice-work counter
// against the tier cap (a flat-vector splice would move ~G/2 records
// per edit).
//
// The sequence count is env-tunable: PROPERTY_TEST_SEEDS=<n> extends
// the sweep (CI's sanitizer matrix runs an extended range).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "attack/loss_landscape.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "data/keyset.h"

namespace lispoison {
namespace {

/// Outcome of one oracle scan.
struct OracleScan {
  bool ok = false;
  Key key = 0;
  long double loss = 0;
  std::int64_t gaps_in_range = 0;  ///< Maximal gaps meeting the range.
  std::int64_t candidates = 0;     ///< Non-excluded endpoint evaluations.
};

/// The reference model: a flat sorted key vector. Every scan rebuilds
/// the exact aggregates from scratch and evaluates every gap endpoint —
/// the "flat-vector + full pre-pass" ground truth the tiered engine
/// must bit-match. Loss values are computed through the same public
/// Aggregates arithmetic, whose shift-invariance (pinned by
/// loss_landscape_incremental_test) makes bit-equality well-defined
/// even though the oracle re-shifts by its own current minimum.
class FlatOracle {
 public:
  FlatOracle(std::vector<Key> keys, KeyDomain domain)
      : keys_(std::move(keys)), domain_(domain) {}

  bool Occupied(Key k) const {
    return std::binary_search(keys_.begin(), keys_.end(), k);
  }

  void Insert(Key k) {
    keys_.insert(std::lower_bound(keys_.begin(), keys_.end(), k), k);
  }

  void Remove(Key k) {
    keys_.erase(std::lower_bound(keys_.begin(), keys_.end(), k));
  }

  std::int64_t size() const { return static_cast<std::int64_t>(keys_.size()); }
  Key KeyAt(std::int64_t idx) const {
    return keys_[static_cast<std::size_t>(idx)];
  }

  const KeyDomain& domain() const { return domain_; }

  /// Maximal unoccupied runs over the whole domain.
  std::int64_t TotalGaps() const {
    std::int64_t gaps = 0;
    Key cursor = domain_.lo;
    for (const Key k : keys_) {
      if (cursor <= k - 1) ++gaps;
      cursor = k + 1;
    }
    if (cursor <= domain_.hi) ++gaps;
    return gaps;
  }

  OracleScan FindOptimal(bool interior,
                         const std::unordered_set<Key>* excluded) const {
    OracleScan result;
    LossLandscape::Aggregates agg;
    agg.shift = keys_.front();
    for (const Key k : keys_) agg.InsertAboveAll(k);
    const Key lo_bound = interior ? keys_.front() + 1 : domain_.lo;
    const Key hi_bound = interior ? keys_.back() - 1 : domain_.hi;
    if (lo_bound > hi_bound) return result;

    Int128 prefix = 0;
    Rank count = 0;
    Key cursor = domain_.lo;
    auto visit_gap = [&](Key gap_lo, Key gap_hi) {
      if (gap_hi < lo_bound || gap_lo > hi_bound) return;
      const Key lo = std::max(gap_lo, lo_bound);
      const Key hi = std::min(gap_hi, hi_bound);
      ++result.gaps_in_range;
      const Int128 suffix = agg.sum_k - prefix;
      auto consider = [&](Key kp) {
        if (excluded != nullptr && excluded->count(kp) != 0) return;
        ++result.candidates;
        const long double loss = agg.LossAfterInsert(kp, count, suffix);
        if (!result.ok || loss > result.loss) {  // First max in key order.
          result.ok = true;
          result.key = kp;
          result.loss = loss;
        }
      };
      consider(lo);
      if (hi != lo) consider(hi);
    };
    for (const Key k : keys_) {
      if (cursor <= k - 1) visit_gap(cursor, k - 1);
      prefix += static_cast<Int128>(k) - agg.shift;
      ++count;
      cursor = k + 1;
    }
    if (cursor <= domain_.hi) visit_gap(cursor, domain_.hi);
    return result;
  }

  /// The removal-argmax ground truth: evaluate every (allowed) stored
  /// key's deletion exactly through the public Aggregates arithmetic,
  /// first maximum in key order.
  OracleScan FindOptimalRemoval(
      const std::unordered_set<Key>* allowed) const {
    OracleScan result;
    LossLandscape::Aggregates agg;
    agg.shift = keys_.front();
    for (const Key k : keys_) agg.InsertAboveAll(k);
    Int128 prefix = 0;
    for (std::size_t j = 0; j < keys_.size(); ++j) {
      const Key k = keys_[j];
      const Int128 x = static_cast<Int128>(k) - agg.shift;
      if (allowed == nullptr || allowed->count(k) != 0) {
        ++result.candidates;
        LossLandscape::Aggregates copy = agg;
        copy.Remove(k, static_cast<Rank>(j), agg.sum_k - prefix - x);
        const long double loss = copy.Loss();
        if (!result.ok || loss > result.loss) {  // First max in key order.
          result.ok = true;
          result.key = k;
          result.loss = loss;
        }
      }
      prefix += x;
    }
    return result;
  }

 private:
  std::vector<Key> keys_;  // Sorted, the flat reference representation.
  KeyDomain domain_;
};

int SeedCount() {
  if (const char* env = std::getenv("PROPERTY_TEST_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

/// One randomized op sequence. `pools` supplies shared thread pools for
/// the {2, 7}-worker scans (nullptr entries mean serial).
void RunSequence(std::uint64_t seed, const std::vector<ThreadPool*>& pools) {
  Rng rng(seed);
  // Every 4th sequence is large enough (> 2048 gaps) to cross the
  // chunked-parallel threshold; the rest keep the oracle cheap.
  const bool big = seed % 4 == 0;
  const std::int64_t n =
      big ? rng.UniformInt(2600, 4200) : rng.UniformInt(24, 800);
  const KeyDomain domain{0, 16 * n};
  const int layout = static_cast<int>(rng.UniformInt(0, 1));
  auto ks = layout == 0 ? GenerateUniform(n, domain, &rng)
                        : GenerateLogNormal(n, domain, &rng);
  ASSERT_TRUE(ks.ok()) << ks.status().message();
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok()) << ll.status().message();
  FlatOracle oracle(ks->keys(), domain);

  LossLandscape::ArgmaxStats stats;
  LossLandscape::ArgmaxStats prev;
  std::int64_t prev_splice = ll->splice_moves();

  // Per-edit splice/merge budget: within-tier shifts (<= tier cap), one
  // possible tier split or underflow re-balance (<= ~1.5 cap copies)
  // and the tier directory (underflow re-balancing keeps tiers above
  // cap/4, so <= 4G/cap + 1 entries). A flat layout would move ~G/2.
  auto splice_budget = [](std::int64_t cap, std::int64_t gaps) {
    return 3 * cap + 4 * gaps / std::max<std::int64_t>(1, cap) + 64;
  };

  const int ops = 30;
  for (int op = 0; op < ops; ++op) {
    const std::int64_t roll = rng.UniformInt(0, 99);
    if (roll < 28) {
      // ---- InsertKey of a random unoccupied key. ----
      Key kp = 0;
      bool found = false;
      for (int tries = 0; tries < 24 && !found; ++tries) {
        kp = rng.UniformInt(domain.lo, domain.hi);
        found = !oracle.Occupied(kp);
      }
      if (!found) continue;
      ASSERT_TRUE(ll->InsertKey(kp).ok()) << "seed " << seed;
      oracle.Insert(kp);
      // Duplicate inserts must be rejected and leave no trace.
      if (roll < 8) {
        EXPECT_FALSE(ll->InsertKey(kp).ok());
      }
      const std::int64_t total_gaps = oracle.TotalGaps();
      EXPECT_EQ(ll->gap_count(), total_gaps) << "seed " << seed;
      const std::int64_t moved = ll->splice_moves() - prev_splice;
      prev_splice = ll->splice_moves();
      EXPECT_LE(moved, splice_budget(ll->gap_tier_cap(), total_gaps))
          << "seed " << seed << " op " << op << " G=" << total_gaps;
    } else if (roll < 42) {
      // ---- RemoveKey of a random stored key. ----
      if (oracle.size() <= 4) continue;
      const Key victim = oracle.KeyAt(rng.UniformInt(0, oracle.size() - 1));
      ASSERT_TRUE(ll->RemoveKey(victim).ok())
          << "seed " << seed << " op " << op << " victim " << victim;
      oracle.Remove(victim);
      // Removing an unoccupied key must be rejected and leave no trace.
      if (roll < 32) {
        EXPECT_FALSE(ll->RemoveKey(victim).ok());
      }
      const std::int64_t total_gaps = oracle.TotalGaps();
      EXPECT_EQ(ll->gap_count(), total_gaps) << "seed " << seed;
      // The tiered merge is the splice's dual and must obey the same
      // O(sqrt(G)) budget.
      const std::int64_t moved = ll->splice_moves() - prev_splice;
      prev_splice = ll->splice_moves();
      EXPECT_LE(moved, splice_budget(ll->gap_tier_cap(), total_gaps))
          << "seed " << seed << " op " << op << " G=" << total_gaps;
    } else if (roll < 50) {
      // ---- ReplaceKey: relocate a stored key to a free slot. ----
      if (oracle.size() <= 4) continue;
      const Key from = oracle.KeyAt(rng.UniformInt(0, oracle.size() - 1));
      // A same-slot replacement is a legal no-op round-trip.
      if (roll < 45) {
        ASSERT_TRUE(ll->ReplaceKey(from, from).ok()) << "seed " << seed;
        EXPECT_EQ(ll->gap_count(), oracle.TotalGaps()) << "seed " << seed;
      }
      Key to = 0;
      bool found = false;
      for (int tries = 0; tries < 24 && !found; ++tries) {
        to = rng.UniformInt(domain.lo, domain.hi);
        found = !oracle.Occupied(to);
      }
      if (!found) {
        prev_splice = ll->splice_moves();
        continue;
      }
      ASSERT_TRUE(ll->ReplaceKey(from, to).ok())
          << "seed " << seed << " op " << op;
      oracle.Remove(from);
      oracle.Insert(to);
      const std::int64_t total_gaps = oracle.TotalGaps();
      EXPECT_EQ(ll->gap_count(), total_gaps) << "seed " << seed;
      const std::int64_t moved = ll->splice_moves() - prev_splice;
      prev_splice = ll->splice_moves();
      // One merge plus one splice (plus the possible same-slot
      // round-trip above): a small multiple of the per-edit budget.
      EXPECT_LE(moved, 4 * splice_budget(ll->gap_tier_cap(), total_gaps))
          << "seed " << seed << " op " << op << " G=" << total_gaps;
    } else if (roll < 62) {
      // ---- FindOptimalRemoval under random settings. ----
      if (oracle.size() < 3) continue;
      const std::int64_t pool_pick = rng.UniformInt(0, 2);
      ThreadPool* pool = pool_pick == 0 ? nullptr
                                        : pools[static_cast<std::size_t>(
                                              pool_pick - 1)];
      LossLandscape::ArgmaxOptions argmax;
      argmax.prune = rng.UniformInt(0, 3) != 0;   // 3/4 pruned
      argmax.cache = rng.UniformInt(0, 1) != 0;   // 1/2 block-tiered.
      std::unordered_set<Key> allowed_set;
      const std::unordered_set<Key>* allowed = nullptr;
      if (rng.UniformInt(0, 2) == 0) {
        // Restrict to a sparse subset of the stored keys (the paper's
        // adversary-controlled records).
        for (std::int64_t i = rng.UniformInt(0, 2); i < oracle.size();
             i += 3) {
          allowed_set.insert(oracle.KeyAt(i));
        }
        if (!allowed_set.empty()) allowed = &allowed_set;
      }

      const OracleScan want = oracle.FindOptimalRemoval(allowed);
      const auto got = ll->FindOptimalRemoval(allowed, pool, argmax, &stats);
      ASSERT_EQ(want.ok, got.ok()) << "seed " << seed << " op " << op;
      if (want.ok) {
        EXPECT_EQ(want.key, got->key) << "seed " << seed << " op " << op;
        EXPECT_EQ(want.loss, got->loss) << "seed " << seed << " op " << op;
      }

      // ---- Removal-scan counter contracts. ----
      const auto d = [&](std::int64_t LossLandscape::ArgmaxStats::*f) {
        return stats.*f - prev.*f;
      };
      EXPECT_EQ(d(&LossLandscape::ArgmaxStats::rounds), 1);
      EXPECT_EQ(d(&LossLandscape::ArgmaxStats::fallback_rounds), 0)
          << "seed " << seed;  // Moderate domains: always admissible.
      if (!argmax.prune) {
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::bound_evals), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::pruned_gaps), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::cached_bounds), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::invalidated_gaps), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::exact_evals),
                  want.candidates)
            << "seed " << seed << " op " << op;
      } else if (!argmax.cache) {
        // Flat pruned scan: every allowed candidate scored once, no
        // block cache.
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::bound_evals),
                  want.candidates)
            << "seed " << seed << " op " << op;
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::cached_bounds), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::invalidated_gaps), 0);
        EXPECT_LE(d(&LossLandscape::ArgmaxStats::pruned_gaps),
                  want.candidates);
      } else {
        // Tiered scan: every stored key dispositioned exactly once,
        // either by its block's chord bound or by per-key re-scoring.
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::cached_bounds) +
                      d(&LossLandscape::ArgmaxStats::invalidated_gaps),
                  oracle.size())
            << "seed " << seed << " op " << op;
        // Bound work: one chord per ~sqrt(n) storage block, one staged
        // seed block (<= block_cap keys) per parallel chunk, plus
        // per-key scores only inside surviving blocks.
        const std::int64_t chunks = oracle.size() / 2048 + 1;
        EXPECT_LE(d(&LossLandscape::ArgmaxStats::bound_evals),
                  ll->removal_block_count() +
                      chunks * ll->removal_block_cap() +
                      d(&LossLandscape::ArgmaxStats::invalidated_gaps))
            << "seed " << seed << " op " << op;
      }
      EXPECT_LE(d(&LossLandscape::ArgmaxStats::exact_evals),
                want.candidates)
          << "seed " << seed << " op " << op;
      prev = stats;
    } else {
      // ---- FindOptimal under random settings. ----
      const bool interior = rng.UniformInt(0, 1) == 0;
      const std::int64_t pool_pick = rng.UniformInt(0, 2);
      ThreadPool* pool = pool_pick == 0 ? nullptr
                                        : pools[static_cast<std::size_t>(
                                              pool_pick - 1)];
      LossLandscape::ArgmaxOptions argmax;
      argmax.prune = rng.UniformInt(0, 3) != 0;   // 3/4 pruned
      argmax.cache = rng.UniformInt(0, 3) != 0;   // 3/4 tiered
      std::unordered_set<Key> excluded_set;
      const std::unordered_set<Key>* excluded = nullptr;
      if (rng.UniformInt(0, 7) == 0) {
        // Exclude the current optimum: the engine must find the
        // runner-up exactly.
        const OracleScan top = oracle.FindOptimal(interior, nullptr);
        if (top.ok) {
          excluded_set.insert(top.key);
          excluded = &excluded_set;
        }
      }

      const OracleScan want = oracle.FindOptimal(interior, excluded);
      const auto got =
          ll->FindOptimal(interior, excluded, pool, argmax, &stats);
      ASSERT_EQ(want.ok, got.ok())
          << "seed " << seed << " op " << op;
      if (want.ok) {
        EXPECT_EQ(want.key, got->key) << "seed " << seed << " op " << op;
        EXPECT_EQ(want.loss, got->loss) << "seed " << seed << " op " << op;
      }

      // ---- Counter contracts. ----
      const auto d = [&](std::int64_t LossLandscape::ArgmaxStats::*f) {
        return stats.*f - prev.*f;
      };
      EXPECT_EQ(d(&LossLandscape::ArgmaxStats::rounds), 1);
      EXPECT_EQ(d(&LossLandscape::ArgmaxStats::fallback_rounds), 0)
          << "seed " << seed;  // Moderate domains: always admissible.
      if (!argmax.prune) {
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::bound_evals), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::cached_bounds), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::invalidated_gaps), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::pruned_gaps), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::exact_evals),
                  want.candidates)
            << "seed " << seed << " op " << op;
      } else if (!argmax.cache) {
        // PR 3 pre-pass: every non-excluded endpoint scored once.
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::bound_evals),
                  want.candidates)
            << "seed " << seed << " op " << op;
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::cached_bounds), 0);
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::invalidated_gaps), 0);
      } else {
        // Tiered scan: every in-range gap dispositioned exactly once,
        // either by its tier's range bound or by per-gap re-scoring.
        EXPECT_EQ(d(&LossLandscape::ArgmaxStats::cached_bounds) +
                      d(&LossLandscape::ArgmaxStats::invalidated_gaps),
                  want.gaps_in_range)
            << "seed " << seed << " op " << op;
        // Bound work: at most one range bound per tier (bounded by the
        // gap count) plus two endpoint scores per re-scored gap, with
        // the seed tier scored twice.
        EXPECT_LE(d(&LossLandscape::ArgmaxStats::bound_evals),
                  want.gaps_in_range +
                      4 * d(&LossLandscape::ArgmaxStats::invalidated_gaps) +
                      4)
            << "seed " << seed << " op " << op;
      }
      // Exact work never exceeds the exhaustive candidate count (the
      // seed gap is deduplicated in the sweep).
      EXPECT_LE(d(&LossLandscape::ArgmaxStats::exact_evals),
                want.candidates)
          << "seed " << seed << " op " << op;
      prev = stats;
    }
  }
}

TEST(LandscapeStatefulPropertyTest, SeededOpSequencesMatchFlatOracle) {
  ThreadPool pool2(2);
  ThreadPool pool7(7);
  const std::vector<ThreadPool*> pools = {&pool2, &pool7};
  const int seeds = SeedCount();
  for (int s = 0; s < seeds; ++s) {
    RunSequence(0x5EED5000 + static_cast<std::uint64_t>(s), pools);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "fatal failure at seed index " << s;
    }
  }
}

TEST(LandscapeStatefulPropertyTest, GreedySelfInsertionSpliceWorkSublinear) {
  // The greedy attack's own access pattern at a gap count where a flat
  // O(G) splice would dwarf the tiered bound: 300 inserts into ~5000
  // maximal gaps must each move O(sqrt(G)) records.
  Rng rng(0x5811CE);
  auto ks = GenerateUniform(5000, KeyDomain{0, 80000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());

  const std::int64_t cap = ll->gap_tier_cap();
  std::int64_t prev_splice = ll->splice_moves();
  std::int64_t max_moved = 0;
  for (int round = 0; round < 300; ++round) {
    auto best = ll->FindOptimal(true);
    ASSERT_TRUE(best.ok());
    ASSERT_TRUE(ll->InsertKey(best->key).ok());
    const std::int64_t moved = ll->splice_moves() - prev_splice;
    prev_splice = ll->splice_moves();
    max_moved = std::max(max_moved, moved);
    const std::int64_t gaps = ll->gap_count();
    ASSERT_LE(moved,
              2 * cap + 2 * gaps / std::max<std::int64_t>(1, cap) + 32)
        << "round " << round;
  }
  // Structural sanity: the worst insert stayed around sqrt-scale, far
  // below the flat vector's ~G/2 average memmove.
  EXPECT_LT(max_moved, ll->gap_count() / 8);
  EXPECT_GT(max_moved, 0);
}

TEST(LandscapeStatefulPropertyTest, GreedyDeletionMergeWorkSublinear) {
  // The deletion attack's own access pattern: 300 argmax-chosen
  // removals against ~5000 maximal gaps, each committing an O(sqrt(G))
  // tiered merge (with underflow re-balancing), never a flat O(G)
  // splice.
  Rng rng(0xDE1E7E5);
  auto ks = GenerateUniform(5000, KeyDomain{0, 80000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());

  const std::int64_t cap = ll->gap_tier_cap();
  std::int64_t prev_splice = ll->splice_moves();
  std::int64_t max_moved = 0;
  for (int round = 0; round < 300; ++round) {
    auto best = ll->FindOptimalRemoval(nullptr, nullptr,
                                       LossLandscape::ArgmaxOptions{});
    ASSERT_TRUE(best.ok());
    ASSERT_TRUE(ll->RemoveKey(best->key).ok());
    const std::int64_t moved = ll->splice_moves() - prev_splice;
    prev_splice = ll->splice_moves();
    max_moved = std::max(max_moved, moved);
    const std::int64_t gaps = ll->gap_count();
    ASSERT_LE(moved,
              3 * cap + 4 * gaps / std::max<std::int64_t>(1, cap) + 64)
        << "round " << round;
  }
  EXPECT_LT(max_moved, ll->gap_count() / 4);
  EXPECT_GT(max_moved, 0);
}

// ---- Large-n sampled mode (ctest -C large_n) ---------------------------
//
// The default sweep keeps the flat oracle exact, which caps n at a few
// thousand. This mode runs the same stateful contract at n = 10^6 with
// a *sampled* oracle: the engine's argmax answer must dominate a few
// thousand randomly sampled candidates scored through the public
// Aggregates arithmetic, every commit must hold the O(sqrt(G)) splice
// budget and the O(sqrt(n)) removal-SoA touch budget, and the gap count
// must track an independent O(n) walk. Excluded from the default ctest
// run (CONFIGURATIONS large_n + env gate) because one iteration costs
// seconds, not milliseconds.

TEST(LandscapeStatefulPropertyTest, LargeNSampledMode) {
  if (std::getenv("LISPOISON_LARGE_N") == nullptr) {
    GTEST_SKIP() << "set LISPOISON_LARGE_N=1 (or run ctest -C large_n)";
  }
  Rng rng(0x1A96E);
  const std::int64_t n = 1'000'000;
  const KeyDomain domain{0, 16 * n};
  auto ks = GenerateUniform(n, domain, &rng);
  ASSERT_TRUE(ks.ok());
  ThreadPool pool(3);
  // Parallel build on purpose: the sampled sweep then also exercises
  // the chunked Create product end to end.
  auto ll = LossLandscape::Create(*ks, &pool);
  ASSERT_TRUE(ll.ok());
  FlatOracle oracle(ks->keys(), domain);

  // Scored through the same shift-invariant public arithmetic the small
  // oracle uses; rebuilt per sampled scan.
  const auto make_agg = [&](const std::vector<Key>& keys) {
    LossLandscape::Aggregates agg;
    agg.shift = keys.front();
    for (const Key k : keys) agg.InsertAboveAll(k);
    return agg;
  };

  std::vector<Key> keys = ks->keys();
  std::int64_t prev_splice = ll->splice_moves();
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const int ops = 36;
  for (int op = 0; op < ops; ++op) {
    const std::int64_t roll = rng.UniformInt(0, 99);
    if (roll < 40) {
      // Random unoccupied insert.
      Key kp = 0;
      bool found = false;
      for (int tries = 0; tries < 24 && !found; ++tries) {
        kp = rng.UniformInt(domain.lo, domain.hi);
        found = !std::binary_search(keys.begin(), keys.end(), kp);
      }
      if (!found) continue;
      ASSERT_TRUE(ll->InsertKey(kp).ok()) << "op " << op;
      keys.insert(std::lower_bound(keys.begin(), keys.end(), kp), kp);
      oracle.Insert(kp);
    } else if (roll < 70) {
      // Argmax-chosen removal: the engine's own deletion-attack access
      // pattern, which also maintains the removal SoA.
      auto best = ll->FindOptimalRemoval(nullptr, &pool,
                                         LossLandscape::ArgmaxOptions{});
      ASSERT_TRUE(best.ok()) << "op " << op;
      // Sampled dominance: no sampled stored key's removal beats it.
      const LossLandscape::Aggregates agg = make_agg(keys);
      std::vector<Int128> prefix(keys.size() + 1, 0);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        prefix[i + 1] =
            prefix[i] + (static_cast<Int128>(keys[i]) - agg.shift);
      }
      for (int s = 0; s < 2048; ++s) {
        const std::int64_t j =
            rng.UniformInt(0, static_cast<std::int64_t>(keys.size()) - 1);
        LossLandscape::Aggregates copy = agg;
        const Int128 x =
            static_cast<Int128>(keys[static_cast<std::size_t>(j)]) -
            agg.shift;
        copy.Remove(keys[static_cast<std::size_t>(j)],
                    static_cast<Rank>(j),
                    agg.sum_k - prefix[static_cast<std::size_t>(j)] - x);
        ASSERT_GE(best->loss, copy.Loss())
            << "op " << op << " sampled stored key "
            << keys[static_cast<std::size_t>(j)];
      }
      ASSERT_TRUE(ll->RemoveKey(best->key).ok()) << "op " << op;
      keys.erase(std::lower_bound(keys.begin(), keys.end(), best->key));
      oracle.Remove(best->key);
    } else {
      // Pruned insertion argmax with sampled dominance.
      auto best = ll->FindOptimal(/*interior_only=*/true,
                                  /*excluded=*/nullptr, &pool);
      ASSERT_TRUE(best.ok()) << "op " << op;
      const LossLandscape::Aggregates agg = make_agg(keys);
      std::vector<Int128> prefix(keys.size() + 1, 0);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        prefix[i + 1] =
            prefix[i] + (static_cast<Int128>(keys[i]) - agg.shift);
      }
      for (int s = 0; s < 2048; ++s) {
        const Key kp = rng.UniformInt(keys.front() + 1, keys.back() - 1);
        const auto it = std::lower_bound(keys.begin(), keys.end(), kp);
        if (it != keys.end() && *it == kp) continue;  // Occupied.
        const std::size_t less =
            static_cast<std::size_t>(it - keys.begin());
        const long double loss = agg.LossAfterInsert(
            kp, static_cast<Rank>(less), agg.sum_k - prefix[less]);
        ASSERT_GE(best->loss, loss)
            << "op " << op << " sampled candidate " << kp;
      }
      ASSERT_TRUE(ll->InsertKey(best->key).ok()) << "op " << op;
      keys.insert(std::lower_bound(keys.begin(), keys.end(), best->key),
                  best->key);
      oracle.Insert(best->key);
    }

    // Structural contracts at scale, every op.
    EXPECT_EQ(ll->gap_count(), oracle.TotalGaps()) << "op " << op;
    const std::int64_t moved = ll->splice_moves() - prev_splice;
    prev_splice = ll->splice_moves();
    EXPECT_LE(moved,
              3 * ll->gap_tier_cap() +
                  4 * ll->gap_count() /
                      std::max<std::int64_t>(1, ll->gap_tier_cap()) +
                  64)
        << "op " << op;
  }
  if (ll->removal_commits() > 0) {
    const double per_commit =
        static_cast<double>(ll->removal_commit_touched_slots()) /
        static_cast<double>(ll->removal_commits());
    EXPECT_LE(per_commit, 10.0 * sqrt_n);
  }
}

}  // namespace
}  // namespace lispoison
