#include "attack/loss_landscape.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/stats.h"
#include "data/generators.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

/// Reference implementation: insert kp, recompute ranks, retrain.
long double ReferenceLossAt(const KeySet& keyset, Key kp) {
  std::vector<Key> keys = keyset.keys();
  keys.insert(std::lower_bound(keys.begin(), keys.end(), kp), kp);
  MomentAccumulator acc;
  Rank r = 1;
  for (Key k : keys) acc.Add(k, r++);
  return FitFromMoments(acc).mse;
}

TEST(LossLandscapeTest, BaseLossMatchesDirectFit) {
  auto ks = KeySet::Create({2, 6, 7, 12}, KeyDomain{1, 13});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  auto fit = FitCdfRegression(*ks);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(static_cast<double>(ll->BaseLoss()),
              static_cast<double>(fit->mse), 1e-12);
}

TEST(LossLandscapeTest, LossAtMatchesReferenceEverywhere) {
  Rng rng(1);
  auto ks = GenerateUniform(50, KeyDomain{0, 499}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  for (Key kp = 0; kp <= 499; ++kp) {
    if (ks->Contains(kp)) continue;
    auto loss = ll->LossAt(kp);
    ASSERT_TRUE(loss.ok());
    EXPECT_NEAR(static_cast<double>(*loss),
                static_cast<double>(ReferenceLossAt(*ks, kp)), 1e-7)
        << "kp=" << kp;
  }
}

TEST(LossLandscapeTest, OccupiedKeyIsBottom) {
  auto ks = KeySet::Create({5, 9}, KeyDomain{0, 20});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  EXPECT_EQ(ll->LossAt(5).status().code(), StatusCode::kInvalidArgument);
}

TEST(LossLandscapeTest, OutOfDomainRejected) {
  auto ks = KeySet::Create({5, 9}, KeyDomain{0, 20});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  EXPECT_EQ(ll->LossAt(21).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ll->LossAt(-1).status().code(), StatusCode::kOutOfRange);
}

TEST(LossLandscapeTest, EmptyKeysetRejected) {
  auto ks = KeySet::Create({}, KeyDomain{0, 20});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(LossLandscape::Create(*ks).ok());
}

TEST(LossLandscapeTest, GapEndpointsPaperExample) {
  // Keys {2, 6, 7, 12} in domain [1, 13]; the paper lists interior-free
  // subsequences {3,4,5} and {8,9,10,11} plus exterior {1} and {13}.
  auto ks = KeySet::Create({2, 6, 7, 12}, KeyDomain{1, 13});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  const auto interior = ll->GapEndpoints(/*interior_only=*/true);
  EXPECT_EQ(interior, (std::vector<Key>{3, 5, 8, 11}));
  const auto all = ll->GapEndpoints(/*interior_only=*/false);
  EXPECT_EQ(all, (std::vector<Key>{1, 3, 5, 8, 11, 13}));
}

TEST(LossLandscapeTest, GapEndpointsDenseSetHasNone) {
  auto ks = KeySet::Create({4, 5, 6, 7}, KeyDomain{4, 7});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  EXPECT_TRUE(ll->GapEndpoints(true).empty());
  EXPECT_TRUE(ll->GapEndpoints(false).empty());
}

TEST(LossLandscapeTest, SweepSkipsOccupiedAndCoversRest) {
  auto ks = KeySet::Create({2, 6, 7, 12}, KeyDomain{1, 13});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  const auto sweep = ll->Sweep(/*interior_only=*/false);
  // Domain has 13 keys, 4 occupied -> 9 candidates.
  EXPECT_EQ(sweep.size(), 9u);
  for (const auto& [kp, loss] : sweep) {
    EXPECT_FALSE(ks->Contains(kp));
    EXPECT_NEAR(static_cast<double>(loss),
                static_cast<double>(ReferenceLossAt(*ks, kp)), 1e-9);
  }
}

TEST(LossLandscapeTest, FindOptimalAgreesWithSweepMaximum) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    auto ks = GenerateUniform(30, KeyDomain{0, 299}, &rng);
    ASSERT_TRUE(ks.ok());
    auto ll = LossLandscape::Create(*ks);
    ASSERT_TRUE(ll.ok());
    auto best = ll->FindOptimal(/*interior_only=*/true);
    ASSERT_TRUE(best.ok());
    const auto sweep = ll->Sweep(/*interior_only=*/true);
    long double max_loss = 0;
    for (const auto& [kp, loss] : sweep) max_loss = std::max(max_loss, loss);
    EXPECT_NEAR(static_cast<double>(best->loss),
                static_cast<double>(max_loss),
                1e-9 * std::max(1.0, static_cast<double>(max_loss)))
        << "trial " << trial;
  }
}

TEST(LossLandscapeTest, FindOptimalFailsWhenSaturated) {
  auto ks = KeySet::Create({4, 5, 6}, KeyDomain{4, 6});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  EXPECT_EQ(ll->FindOptimal(true).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(LossLandscapeTest, LargeKeyMagnitudesStayExact) {
  // Shifted aggregates must keep precision with keys near 10^9.
  std::vector<Key> keys;
  const Key base = 999000000;
  for (Key i = 0; i < 40; ++i) keys.push_back(base + 7 * i * i);
  auto ks = KeySet::CreateWithTightDomain(keys);
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  auto best = ll->FindOptimal(true);
  ASSERT_TRUE(best.ok());
  const long double ref = ReferenceLossAt(*ks, best->key);
  EXPECT_NEAR(static_cast<double>(best->loss), static_cast<double>(ref),
              1e-6 * static_cast<double>(ref));
}

TEST(LossLandscapeTest, InsertionIncreasesRanksAboveOnly) {
  // Direct check of the compound effect: inserting below the whole set
  // vs above it changes sum(XY) differently; compare to reference.
  auto ks = KeySet::Create({100, 200, 300}, KeyDomain{0, 400});
  ASSERT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  ASSERT_TRUE(ll.ok());
  for (Key kp : {0, 150, 250, 400}) {
    auto loss = ll->LossAt(kp);
    ASSERT_TRUE(loss.ok());
    EXPECT_NEAR(static_cast<double>(*loss),
                static_cast<double>(ReferenceLossAt(*ks, kp)), 1e-9);
  }
}

}  // namespace
}  // namespace lispoison
