// Fault-registry semantics: the determinism contract the chaos harness
// and the retry/backoff regression tests stand on.
//
//  - Same plan seed => the same decision sequence at every point, no
//    matter which *other* points are armed (per-point streams are
//    forked from (seed, name), never shared).
//  - fire_on_hits schedules are 1-based and exact; probability draws
//    are consumed on EVERY armed evaluation, so adding or removing a
//    scheduled fire never shifts the probabilistic tail.
//  - max_fires caps total fires; latency_ns with fail=false stalls
//    without reporting failure; Disarm preserves counters for
//    post-storm asserts while Arm resets them.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.h"

namespace lispoison {
namespace {

/// Evaluates \p point n times and returns the fired/clean pattern.
std::vector<bool> Drive(FaultPoint* point, int n) {
  std::vector<bool> fired;
  fired.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) fired.push_back(point->Evaluate());
  return fired;
}

TEST(FaultTest, DisarmedPointNeverFiresOrCounts) {
  FaultPoint* p = FaultRegistry::Global().GetPoint("fault_test.disarmed");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p->Evaluate());
  EXPECT_EQ(p->hits(), 0);
  EXPECT_EQ(p->fires(), 0);
  EXPECT_FALSE(p->armed());
}

TEST(FaultTest, RegistryReturnsStablePointers) {
  FaultPoint* a = FaultRegistry::Global().GetPoint("fault_test.stable");
  FaultPoint* b = FaultRegistry::Global().GetPoint("fault_test.stable");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), "fault_test.stable");
}

TEST(FaultTest, SameSeedReplaysTheSameDecisionSequence) {
  FaultPoint* p = FaultRegistry::Global().GetPoint("fault_test.replay");
  FaultSpec coin;
  coin.probability = 0.4;

  FaultPlan(/*seed=*/77).Arm("fault_test.replay", coin).Activate();
  const std::vector<bool> first = Drive(p, 200);
  FaultPlan(/*seed=*/77).Arm("fault_test.replay", coin).Activate();
  const std::vector<bool> second = Drive(p, 200);
  EXPECT_EQ(first, second);
  // Sanity: a 0.4 coin over 200 draws fires some and clears some.
  EXPECT_GT(p->fires(), 0);
  EXPECT_LT(p->fires(), 200);

  // A different seed diverges somewhere in the window.
  FaultPlan(/*seed=*/78).Arm("fault_test.replay", coin).Activate();
  EXPECT_NE(Drive(p, 200), first);
  FaultRegistry::Global().DisarmAll();
}

TEST(FaultTest, ArmingOtherPointsDoesNotPerturbAStream) {
  FaultPoint* p = FaultRegistry::Global().GetPoint("fault_test.isolated");
  FaultSpec coin;
  coin.probability = 0.4;

  FaultPlan(/*seed=*/91).Arm("fault_test.isolated", coin).Activate();
  const std::vector<bool> solo = Drive(p, 100);

  // Re-activate under the same seed with an extra armed point: the
  // isolated point's stream is forked from (seed, name), so the
  // neighbor cannot shift it.
  FaultPlan(/*seed=*/91)
      .Arm("fault_test.isolated", coin)
      .Arm("fault_test.neighbor", coin)
      .Activate();
  EXPECT_EQ(Drive(p, 100), solo);
  FaultRegistry::Global().DisarmAll();
}

TEST(FaultTest, FireScheduleIsExactAndOneBased) {
  FaultPoint* p = FaultRegistry::Global().GetPoint("fault_test.schedule");
  FaultSpec spec;
  spec.fire_on_hits = {1, 4};
  FaultPlan(/*seed=*/5).Arm("fault_test.schedule", spec).Activate();

  const std::vector<bool> fired = Drive(p, 6);
  const std::vector<bool> expected = {true, false, false, true, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(p->hits(), 6);
  EXPECT_EQ(p->fires(), 2);
  FaultRegistry::Global().DisarmAll();
}

TEST(FaultTest, ScheduledFiresDoNotShiftTheProbabilisticTail) {
  // The replay-stability clause: a probability draw happens on every
  // armed evaluation, including ones a schedule already decided, so
  // tweaking fire_on_hits cannot shift which LATER evaluations the coin
  // fires. Compare the tails beyond the scheduled prefix.
  FaultPoint* p = FaultRegistry::Global().GetPoint("fault_test.tail");
  FaultSpec coin_only;
  coin_only.probability = 0.3;
  FaultPlan(/*seed=*/55).Arm("fault_test.tail", coin_only).Activate();
  const std::vector<bool> base = Drive(p, 50);

  FaultSpec with_schedule = coin_only;
  with_schedule.fire_on_hits = {2};
  FaultPlan(/*seed=*/55).Arm("fault_test.tail", with_schedule).Activate();
  const std::vector<bool> shifted = Drive(p, 50);

  EXPECT_TRUE(shifted[1]);  // The scheduled fire landed.
  for (int i = 2; i < 50; ++i) {
    EXPECT_EQ(shifted[i], base[i]) << "tail diverged at evaluation " << i;
  }
  FaultRegistry::Global().DisarmAll();
}

TEST(FaultTest, MaxFiresCapsTheStorm) {
  FaultPoint* p = FaultRegistry::Global().GetPoint("fault_test.capped");
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 3;
  FaultPlan(/*seed=*/6).Arm("fault_test.capped", spec).Activate();

  const std::vector<bool> fired = Drive(p, 10);
  int count = 0;
  for (bool f : fired) count += f ? 1 : 0;
  EXPECT_EQ(count, 3);
  EXPECT_EQ(fired[0] && fired[1] && fired[2], true);
  EXPECT_EQ(p->fires(), 3);
  EXPECT_EQ(p->hits(), 10);
  FaultRegistry::Global().DisarmAll();
}

TEST(FaultTest, LatencyOnlySpecStallsWithoutFailing) {
  FaultPoint* p = FaultRegistry::Global().GetPoint("fault_test.stall");
  FaultSpec spec;
  spec.probability = 1.0;
  spec.latency_ns = 5'000'000;  // 5ms, comfortably above timer noise.
  spec.fail = false;
  FaultPlan(/*seed=*/7).Arm("fault_test.stall", spec).Activate();

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(p->Evaluate());  // Stalls, but reports no failure.
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(),
      spec.latency_ns);
  EXPECT_EQ(p->fires(), 1);  // The stall still counts as a fire.
  FaultRegistry::Global().DisarmAll();
}

TEST(FaultTest, DisarmPreservesCountersAndArmResets) {
  FaultPoint* p = FaultRegistry::Global().GetPoint("fault_test.counters");
  FaultSpec spec;
  spec.probability = 1.0;
  FaultPlan(/*seed=*/8).Arm("fault_test.counters", spec).Activate();
  Drive(p, 5);
  FaultRegistry::Global().DisarmAll();

  // Post-storm accounting reads the frozen counters...
  EXPECT_FALSE(p->armed());
  EXPECT_EQ(p->hits(), 5);
  EXPECT_EQ(p->fires(), 5);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(p->Evaluate());
  EXPECT_EQ(p->hits(), 5);  // Disarmed evaluations do not count.

  // ...and the next arming starts a fresh storm from zero.
  FaultPlan(/*seed=*/8).Arm("fault_test.counters", spec).Activate();
  EXPECT_EQ(p->hits(), 0);
  EXPECT_EQ(p->fires(), 0);
  FaultRegistry::Global().DisarmAll();
}

TEST(FaultTest, FaultPointMacroRoutesThroughTheRegistry) {
  FaultSpec spec;
  spec.probability = 1.0;
  FaultPlan(/*seed=*/9).Arm("fault_test.macro", spec).Activate();
  EXPECT_TRUE(FAULT_POINT("fault_test.macro"));
  FaultRegistry::Global().DisarmAll();
  EXPECT_FALSE(FAULT_POINT("fault_test.macro"));
  EXPECT_EQ(FaultRegistry::Global().GetPoint("fault_test.macro")->fires(), 1);
}

}  // namespace
}  // namespace lispoison
