#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace lispoison {
namespace {

TEST(TextTableTest, AlignedOutputContainsCells) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, ColumnsAreAligned) {
  TextTable t;
  t.SetHeader({"a", "b"});
  t.AddRow({"xxxxxx", "1"});
  t.AddRow({"y", "2"});
  std::ostringstream os;
  t.Print(os);
  // Both data rows place column b at the same offset.
  std::istringstream lines(os.str());
  std::string header, sep, row1, row2;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(TextTableTest, CsvOutput) {
  TextTable t;
  t.SetHeader({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTableTest, FmtDouble) {
  EXPECT_EQ(TextTable::Fmt(1.5), "1.5");
  EXPECT_EQ(TextTable::Fmt(0.123456, 3), "0.123");
  EXPECT_EQ(TextTable::Fmt(static_cast<std::int64_t>(42)), "42");
}

TEST(TextTableTest, RowCount) {
  TextTable t;
  t.SetHeader({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTableTest, RaggedRowsDoNotCrash) {
  TextTable t;
  t.SetHeader({"a"});
  t.AddRow({"1", "extra"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("extra"), std::string::npos);
}

}  // namespace
}  // namespace lispoison
