#include "common/fenwick.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace lispoison {
namespace {

TEST(FenwickTest, EmptyTree) {
  FenwickTree<std::int64_t> fen;
  EXPECT_EQ(fen.size(), 0u);
  EXPECT_EQ(fen.PrefixSum(0), 0);
  EXPECT_EQ(fen.Total(), 0);
}

TEST(FenwickTest, SingleSlot) {
  FenwickTree<std::int64_t> fen(1);
  fen.Add(0, 7);
  fen.Add(0, 3);
  EXPECT_EQ(fen.PrefixSum(0), 0);
  EXPECT_EQ(fen.PrefixSum(1), 10);
  EXPECT_EQ(fen.Total(), 10);
}

TEST(FenwickTest, PrefixCountClampsToSize) {
  FenwickTree<std::int64_t> fen(4);
  fen.Add(3, 5);
  EXPECT_EQ(fen.PrefixSum(100), 5);
}

TEST(FenwickTest, MatchesNaivePrefixSums) {
  Rng rng(42);
  const std::size_t size = 257;  // Crosses several power-of-two levels.
  FenwickTree<std::int64_t> fen(size);
  std::vector<std::int64_t> naive(size, 0);
  for (int step = 0; step < 2000; ++step) {
    const auto i = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(size) - 1));
    const std::int64_t delta = rng.UniformInt(-1000, 1000);
    fen.Add(i, delta);
    naive[i] += delta;
  }
  std::int64_t running = 0;
  for (std::size_t c = 0; c <= size; ++c) {
    EXPECT_EQ(fen.PrefixSum(c), running) << "prefix length " << c;
    if (c < size) running += naive[c];
  }
}

TEST(FenwickTest, WorksWithInt128) {
  FenwickTree<Int128> fen(8);
  const Int128 big = static_cast<Int128>(1) << 100;
  fen.Add(2, big);
  fen.Add(5, big);
  EXPECT_TRUE(fen.PrefixSum(3) == big);
  EXPECT_TRUE(fen.Total() == 2 * big);
}

TEST(FenwickTest, ResetClearsValues) {
  FenwickTree<std::int64_t> fen(4);
  fen.Add(1, 9);
  fen.Reset(2);
  EXPECT_EQ(fen.size(), 2u);
  EXPECT_EQ(fen.Total(), 0);
}

}  // namespace
}  // namespace lispoison
