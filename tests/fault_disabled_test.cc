// Compile-time kill-switch coverage for the fault registry: every
// object in this binary is built with -DLISPOISON_FAULT_DISABLED, so
// each FAULT_POINT expansion is the literal `(false)` — no registry
// lookup, no atomic, no point name in the binary's string table.
//
// The proof is behavioral: arm a probability-1.0 plan over every
// production fault point, then drive the instrumented subsystems
// (snapshot I/O, the thread pool, epoch reclamation). Nothing fires,
// nothing stalls, and the registry records ZERO hits — the production
// code never consulted it. This is the overhead-free guarantee the
// header promises for fault-disabled builds, the exact analogue of
// telemetry_disabled_test for the telemetry switch.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/epoch.h"
#include "common/fault.h"
#include "common/snapshot.h"
#include "common/thread_pool.h"

namespace lispoison {
namespace {

#if !defined(LISPOISON_FAULT_DISABLED)
#error "fault_disabled_test must be compiled with LISPOISON_FAULT_DISABLED"
#endif

/// Arms every production fault point with a certain, hard failure.
void ArmEverythingToFail() {
  FaultSpec always;
  always.probability = 1.0;
  FaultPlan(/*seed=*/1)
      .Arm("compaction.rebuild", always)
      .Arm("snapshot.write", always)
      .Arm("snapshot.read", always)
      .Arm("epoch.reclaim", always)
      .Arm("pool.task", always)
      .Arm("adversary.write", always)
      .Activate();
}

TEST(FaultDisabledTest, MacroIsAConstantAndRegistersNothing) {
  // The expansion is `(false)`: no evaluation, and — decisively — no
  // point ever materializes in the registry for the probed name.
  EXPECT_FALSE(FAULT_POINT("disabled.macro.probe"));
  for (FaultPoint* p : FaultRegistry::Global().Points()) {
    EXPECT_NE(p->name(), "disabled.macro.probe");
  }
}

TEST(FaultDisabledTest, SnapshotIoIgnoresAnArmedPlan) {
  ArmEverythingToFail();
  const std::string path = ::testing::TempDir() + "/fault_disabled.snap";
  SnapshotWriter writer;
  const std::uint64_t payload[4] = {1, 2, 3, 4};
  writer.AddSection("keys", payload, sizeof(payload));
  // With the switch off an armed "snapshot.write" would fail this; the
  // disabled build must not even notice the plan.
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  auto reader = SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  auto section = reader->Find("keys");
  ASSERT_TRUE(section.ok());
  EXPECT_EQ(section->size, sizeof(payload));
  FaultRegistry::Global().DisarmAll();
}

TEST(FaultDisabledTest, ThreadPoolAndEpochReclaimIgnoreAnArmedPlan) {
  ArmEverythingToFail();
  {
    ThreadPool pool(2, /*inline_when_single=*/false);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(ran.load(), 16);  // An armed "pool.task" dropped nothing.
  }
  // An armed "epoch.reclaim" would skip every reclamation pass; the
  // disabled build frees the retired object as usual (no live guards).
  std::atomic<bool> freed{false};
  EpochDomain::Global().Retire([&freed] { freed.store(true); });
  EpochDomain::Global().TryReclaim();
  EXPECT_TRUE(freed.load());
  FaultRegistry::Global().DisarmAll();
}

TEST(FaultDisabledTest, ArmedPointsRecordZeroHits) {
  // Runs after the subsystems above exercised snapshot I/O, the pool,
  // and reclamation under a fully armed plan: had ANY production site
  // consulted the registry, its point would have counted a hit.
  for (FaultPoint* p : FaultRegistry::Global().Points()) {
    EXPECT_EQ(p->hits(), 0) << p->name();
    EXPECT_EQ(p->fires(), 0) << p->name();
  }
}

}  // namespace
}  // namespace lispoison
