#include "index/rmi.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

RmiOptions OracleOptions(std::int64_t num_models) {
  RmiOptions opts;
  opts.num_models = num_models;
  opts.root_kind = RootModelKind::kOracle;
  return opts;
}

TEST(RmiTest, PartitionsAreEqualSize) {
  Rng rng(1);
  auto ks = GenerateUniform(1000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto rmi = Rmi::Train(*ks, OracleOptions(10));
  ASSERT_TRUE(rmi.ok());
  EXPECT_EQ(rmi->num_models(), 10);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rmi->model(i).count, 100);
  }
}

TEST(RmiTest, UnevenPartitionSpreadsRemainder) {
  Rng rng(2);
  auto ks = GenerateUniform(103, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto rmi = Rmi::Train(*ks, OracleOptions(10));
  ASSERT_TRUE(rmi.ok());
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < rmi->num_models(); ++i) {
    const auto& m = rmi->model(i);
    EXPECT_GE(m.count, 10);
    EXPECT_LE(m.count, 11);
    total += m.count;
  }
  EXPECT_EQ(total, 103);
}

TEST(RmiTest, ModelSizeDerivesModelCount) {
  Rng rng(3);
  auto ks = GenerateUniform(1000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  RmiOptions opts;
  opts.target_model_size = 100;
  opts.root_kind = RootModelKind::kOracle;
  auto rmi = Rmi::Train(*ks, opts);
  ASSERT_TRUE(rmi.ok());
  EXPECT_EQ(rmi->num_models(), 10);
}

TEST(RmiTest, OracleRoutesEveryKeyToItsPartition) {
  Rng rng(4);
  auto ks = GenerateUniform(500, KeyDomain{0, 49999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto rmi = Rmi::Train(*ks, OracleOptions(25));
  ASSERT_TRUE(rmi.ok());
  for (Key k : ks->keys()) {
    EXPECT_EQ(rmi->Route(k), rmi->TrueModelOf(k)) << "key " << k;
  }
}

TEST(RmiTest, PredictionErrorIsSmallOnUniformKeys) {
  Rng rng(5);
  auto ks = GenerateUniform(10000, KeyDomain{0, 999999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto rmi = Rmi::Train(*ks, OracleOptions(100));
  ASSERT_TRUE(rmi.ok());
  double total_err = 0;
  for (std::int64_t i = 0; i < ks->size(); ++i) {
    const double pred = rmi->PredictRank(ks->at(i));
    total_err += std::fabs(pred - static_cast<double>(i + 1));
  }
  // Local linear models on locally-uniform data: mean error a few slots.
  EXPECT_LT(total_err / static_cast<double>(ks->size()), 10.0);
}

TEST(RmiTest, RmiLossIsMeanOfSecondStageLosses) {
  Rng rng(6);
  auto ks = GenerateLogNormal(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto rmi = Rmi::Train(*ks, OracleOptions(20));
  ASSERT_TRUE(rmi.ok());
  const auto losses = rmi->SecondStageLosses();
  ASSERT_EQ(losses.size(), 20u);
  long double sum = 0;
  for (auto l : losses) sum += l;
  EXPECT_NEAR(static_cast<double>(rmi->RmiLoss()),
              static_cast<double>(sum / 20.0), 1e-9);
}

TEST(RmiTest, PredictPositionClamped) {
  auto ks = KeySet::Create({10, 20, 30}, KeyDomain{0, 100});
  ASSERT_TRUE(ks.ok());
  auto rmi = Rmi::Train(*ks, OracleOptions(1));
  ASSERT_TRUE(rmi.ok());
  EXPECT_GE(rmi->PredictPosition(0), 0);
  EXPECT_LE(rmi->PredictPosition(100), 2);
}

TEST(RmiTest, MoreModelsThanKeysClamps) {
  auto ks = KeySet::Create({1, 2, 3}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  auto rmi = Rmi::Train(*ks, OracleOptions(10));
  ASSERT_TRUE(rmi.ok());
  EXPECT_EQ(rmi->num_models(), 3);
}

TEST(RmiTest, EmptyKeysetFails) {
  auto ks = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(Rmi::Train(*ks, OracleOptions(4)).ok());
}

TEST(RmiTest, BadOptionsFail) {
  auto ks = KeySet::Create({1, 2, 3}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  RmiOptions opts;
  opts.num_models = 0;
  opts.target_model_size = 0;
  EXPECT_FALSE(Rmi::Train(*ks, opts).ok());
}

TEST(RmiTest, LearnedRootRoutesMostKeysCorrectly) {
  Rng rng(7);
  auto ks = GenerateUniform(5000, KeyDomain{0, 499999}, &rng);
  ASSERT_TRUE(ks.ok());
  RmiOptions opts;
  opts.num_models = 50;
  opts.root_kind = RootModelKind::kPiecewiseLinear;
  opts.root_segments = 256;
  auto rmi = Rmi::Train(*ks, opts);
  ASSERT_TRUE(rmi.ok());
  std::int64_t correct = 0;
  for (Key k : ks->keys()) {
    if (rmi->Route(k) == rmi->TrueModelOf(k)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(ks->size()),
            0.9);
}

TEST(RmiTest, ParameterCountAccounting) {
  Rng rng(8);
  auto ks = GenerateUniform(100, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks.ok());
  RmiOptions opts;
  opts.num_models = 10;
  opts.root_kind = RootModelKind::kLinear;
  auto rmi = Rmi::Train(*ks, opts);
  ASSERT_TRUE(rmi.ok());
  // Linear root: 2 params; 10 second-stage models: 20 params.
  EXPECT_EQ(rmi->ParameterCount(), 22);
}

}  // namespace
}  // namespace lispoison
