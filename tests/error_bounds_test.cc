#include <gtest/gtest.h>

#include "attack/rmi_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"
#include "index/learned_index.h"

namespace lispoison {
namespace {

RmiOptions Options(std::int64_t model_size, RootModelKind root) {
  RmiOptions opts;
  opts.target_model_size = model_size;
  opts.root_kind = root;
  return opts;
}

TEST(ErrorBoundsTest, WindowContainsEveryTrainedKey) {
  Rng rng(1);
  auto ks = GenerateLogNormal(3000, KeyDomain{0, 299999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto rmi = Rmi::Train(*ks, Options(100, RootModelKind::kOracle));
  ASSERT_TRUE(rmi.ok());
  for (std::int64_t i = 0; i < ks->size(); ++i) {
    const auto [lo, hi] = rmi->SearchWindow(ks->at(i));
    ASSERT_LE(lo, i) << "key index " << i;
    ASSERT_GE(hi, i) << "key index " << i;
  }
}

TEST(ErrorBoundsTest, WindowStatsAreConsistent) {
  Rng rng(2);
  auto ks = GenerateUniform(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto rmi = Rmi::Train(*ks, Options(100, RootModelKind::kOracle));
  ASSERT_TRUE(rmi.ok());
  EXPECT_GE(rmi->MaxErrorWindow(), rmi->MeanErrorWindow());
  EXPECT_GE(rmi->MeanErrorWindow(), 0.0);
  for (std::int64_t i = 0; i < rmi->num_models(); ++i) {
    EXPECT_LE(rmi->model(i).err_lo, rmi->model(i).err_hi + 1e-12);
  }
}

TEST(ErrorBoundsTest, BoundedLookupFindsEveryKeyOracleRoot) {
  Rng rng(3);
  auto ks = GenerateUniform(2500, KeyDomain{0, 249999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = LearnedIndex::Build(*ks, Options(125, RootModelKind::kOracle));
  ASSERT_TRUE(idx.ok());
  for (std::int64_t i = 0; i < ks->size(); ++i) {
    const LookupResult r = idx->LookupBounded(ks->at(i));
    ASSERT_TRUE(r.found) << ks->at(i);
    ASSERT_EQ(r.position, i);
  }
}

TEST(ErrorBoundsTest, BoundedLookupCorrectUnderLearnedRoot) {
  // A learned root can misroute; LookupBounded must stay correct via
  // its fallback.
  Rng rng(4);
  auto ks = GenerateLogNormal(2000, KeyDomain{0, 499999}, &rng);
  ASSERT_TRUE(ks.ok());
  RmiOptions opts = Options(50, RootModelKind::kPiecewiseLinear);
  opts.root_segments = 32;  // Deliberately coarse: force misrouting.
  auto idx = LearnedIndex::Build(*ks, opts);
  ASSERT_TRUE(idx.ok());
  for (std::int64_t i = 0; i < ks->size(); i += 3) {
    const LookupResult r = idx->LookupBounded(ks->at(i));
    ASSERT_TRUE(r.found) << ks->at(i);
    ASSERT_EQ(r.position, i);
  }
  // Missing keys stay missing.
  for (Key probe = 1; probe < 499999; probe += 9973) {
    if (ks->Contains(probe)) continue;
    EXPECT_FALSE(idx->LookupBounded(probe).found) << probe;
  }
}

TEST(ErrorBoundsTest, PoisoningInflatesStoredWindows) {
  // The storage-level mechanism of the attack: the victim's trained
  // error bounds widen, which directly budgets more last-mile work.
  Rng rng(5);
  auto ks = GenerateUniform(3000, KeyDomain{0, 299999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto clean = Rmi::Train(*ks, Options(150, RootModelKind::kOracle));
  ASSERT_TRUE(clean.ok());

  RmiAttackOptions attack_opts;
  attack_opts.poison_fraction = 0.15;
  attack_opts.model_size = 150;
  auto attack = PoisonRmi(*ks, attack_opts);
  ASSERT_TRUE(attack.ok());
  auto poisoned_set = ks->Union(attack->AllPoisonKeys());
  ASSERT_TRUE(poisoned_set.ok());
  auto poisoned =
      Rmi::Train(*poisoned_set, Options(172, RootModelKind::kOracle));
  ASSERT_TRUE(poisoned.ok());
  EXPECT_GT(poisoned->MeanErrorWindow(), clean->MeanErrorWindow());
}

TEST(ErrorBoundsTest, BoundedBeatsExponentialOnCleanData) {
  Rng rng(6);
  auto ks = GenerateUniform(4000, KeyDomain{0, 399999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = LearnedIndex::Build(*ks, Options(200, RootModelKind::kOracle));
  ASSERT_TRUE(idx.ok());
  std::int64_t bounded = 0, exponential = 0;
  for (std::int64_t i = 0; i < ks->size(); i += 5) {
    bounded += idx->LookupBounded(ks->at(i)).probes;
    exponential += idx->Lookup(ks->at(i)).probes;
  }
  // Bounded search should not be substantially worse; typically better.
  EXPECT_LT(bounded, exponential * 2);
}

}  // namespace
}  // namespace lispoison
