// Online-adversary coverage: the attacker's view must track the
// victim's actual membership through its own writes, racing driver
// traffic, async compactions/retrains, and injected rebuild failures.
//
// Membership oracles are the ground truth here: every key the result
// reports as live poison must Lookup as found on the victim, every
// legitimate key it reports removed must be gone — including after the
// substrate has been retrained out from under the attacker and the
// adversary replanned against the fresh index.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/keyset.h"
#include "workload/adversary.h"
#include "workload/query_driver.h"
#include "workload/search_backend.h"
#include "workload/workload.h"

namespace lispoison {
namespace {

KeySet TestKeys(std::int64_t n, std::uint64_t seed = 31) {
  Rng rng(seed);
  auto ks = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  EXPECT_TRUE(ks.ok());
  return *ks;
}

std::unique_ptr<SearchBackend> MakeVictim(const KeySet& ks,
                                          std::int64_t compact_threshold,
                                          bool sync_compaction = false) {
  BackendOptions opts;
  opts.rmi.target_model_size = 200;
  opts.num_shards = 2;
  opts.compact_threshold = compact_threshold;
  opts.sync_compaction = sync_compaction;
  auto backend = CreateBackend(BackendKind::kRmi, ks, opts);
  EXPECT_TRUE(backend.ok()) << backend.status().message();
  return std::move(*backend);
}

void CheckMembership(SearchBackend* victim, const AdversaryResult& result) {
  for (const Key k : result.live_poison_keys) {
    EXPECT_TRUE(victim->Lookup(k).found) << "live poison key " << k;
  }
  for (const Key k : result.removed_legit_keys) {
    EXPECT_FALSE(victim->Lookup(k).found) << "removed legit key " << k;
  }
}

TEST(AdversaryTest, OnlineStreamTracksVictimMembership) {
  const KeySet base = TestKeys(4000);
  auto victim = MakeVictim(base, /*compact_threshold=*/0);

  AdversaryOptions opts;
  opts.ops = 200;
  opts.model_size = 200;
  opts.seed = 5;
  auto result = RunOnlineAdversary(victim.get(), base, opts);
  ASSERT_TRUE(result.ok()) << result.status().message();

  // Solo attacker, exact view: nothing can race it to a key, so no op
  // is ever rejected and the op partition accounts for every planned op.
  EXPECT_EQ(result->ops_planned, opts.ops);
  EXPECT_EQ(result->rejected, 0);
  EXPECT_EQ(result->inserts + result->deletes + result->modifies +
                result->skipped,
            opts.ops);
  EXPECT_GT(result->inserts, 0);
  EXPECT_GT(result->deletes, 0);

  // No compaction configured: nothing to observe, nothing to replan.
  EXPECT_EQ(result->retrains_observed, 0);
  EXPECT_EQ(result->replans, 0);

  // The attack made the attacker-side loss surface worse (Theorem 1's
  // direction); the victim-side truth is the serving benchmarks' job.
  EXPECT_GT(result->final_mean_model_loss, result->initial_mean_model_loss);

  CheckMembership(victim.get(), *result);
  // No compaction ran, so every removed legit key is exactly one
  // tombstone; live poison keys live in the overlay except the ones
  // that resurrected a previously-removed base key (substrate hits).
  EXPECT_EQ(static_cast<std::int64_t>(result->removed_legit_keys.size()),
            victim->tombstone_size());
  EXPECT_LE(victim->overlay_size(),
            static_cast<std::int64_t>(result->live_poison_keys.size()));
  EXPECT_GT(victim->overlay_size(), 0);
}

TEST(AdversaryTest, ReplansAfterObservingRetrains) {
  const KeySet base = TestKeys(4000, /*seed=*/37);
  // A tight threshold so the attacker's own writes force retrains;
  // sync compaction so the retrain lands inline on the attacker's own
  // insert (deterministically before its next counter poll) instead of
  // racing the short run on the maintenance thread.
  auto victim = MakeVictim(base, /*compact_threshold=*/48,
                           /*sync_compaction=*/true);

  AdversaryOptions opts;
  opts.ops = 300;
  opts.model_size = 200;
  opts.replan_check_every = 4;
  opts.seed = 6;
  auto result = RunOnlineAdversary(victim.get(), base, opts);
  ASSERT_TRUE(result.ok()) << result.status().message();
  victim->WaitForMaintenance();

  EXPECT_GE(result->retrains_observed, 1);
  EXPECT_GE(result->replans, 1);

  // Dirty-slice replans: with 20 model slices and at most
  // replan_check_every=4 ops (hence <= 8 touched slices) between polls,
  // every replan must reuse the majority of slices untouched since
  // their last build. A regression to rebuild-everything makes
  // models_kept zero and trips the first assertion.
  EXPECT_GT(result->models_kept, 0);
  EXPECT_GT(result->models_rebuilt, 0);
  EXPECT_LT(result->models_rebuilt, result->models_kept);

  CheckMembership(victim.get(), *result);
}

TEST(AdversaryTest, RacesReadOnlyDriverTraffic) {
  const KeySet base = TestKeys(6000, /*seed=*/41);
  auto victim = MakeVictim(base, /*compact_threshold=*/96);

  // Read-only legitimate traffic: membership after the race is fully
  // determined by the adversary's stream, so the oracles stay exact.
  const WorkloadSpec spec = ReadOnlyUniformWorkload(/*seed=*/8);
  auto ops = GenerateOperations(spec, base, 30000);
  ASSERT_TRUE(ops.ok());
  DriverOptions driver_opts;
  driver_opts.num_threads = 2;
  driver_opts.read_group = 8;

  AdversaryOptions adv;
  adv.ops = 250;
  adv.model_size = 200;
  adv.pace_ns = 20000;
  adv.seed = 9;

  Result<AdversaryResult> adv_result = AdversaryResult{};
  std::thread attacker([&] {
    adv_result = RunOnlineAdversary(victim.get(), base, adv);
  });
  auto driver_result = RunWorkload(victim.get(), *ops, driver_opts);
  attacker.join();
  victim->WaitForMaintenance();

  ASSERT_TRUE(driver_result.ok()) << driver_result.status().message();
  ASSERT_TRUE(adv_result.ok()) << adv_result.status().message();
  EXPECT_EQ(driver_result->reads,
            static_cast<std::int64_t>(ops->size()));
  EXPECT_GT(adv_result->inserts, 0);
  CheckMembership(victim.get(), *adv_result);

  // Untouched base keys must still be served.
  std::set<Key> removed(adv_result->removed_legit_keys.begin(),
                        adv_result->removed_legit_keys.end());
  int probed = 0;
  for (std::size_t i = 0; i < base.keys().size() && probed < 200; i += 29) {
    if (removed.count(base.keys()[i])) continue;
    EXPECT_TRUE(victim->Lookup(base.keys()[i]).found);
    ++probed;
  }
}

TEST(AdversaryTest, SurvivesRebuildFailuresMidRun) {
  const KeySet base = TestKeys(5000, /*seed=*/43);
  // Half the rebuild attempts fail (seeded coin per evaluation): the
  // attack window interleaves retries, backoffs, recoveries, and
  // threshold restores while the adversary keeps writing and the driver
  // keeps reading. Fast backoffs keep the storm inside the run.
  BackendOptions vopts;
  vopts.rmi.target_model_size = 200;
  vopts.num_shards = 2;
  vopts.compact_threshold = 64;
  vopts.compaction_backoff_base_us = 50;
  vopts.compaction_backoff_max_us = 400;
  auto made = CreateBackend(BackendKind::kRmi, base, vopts);
  ASSERT_TRUE(made.ok()) << made.status().message();
  auto victim = std::move(*made);
  FaultSpec rebuild_fault;
  rebuild_fault.probability = 0.5;
  FaultPlan(/*seed=*/43).Arm("compaction.rebuild", rebuild_fault).Activate();

  const WorkloadSpec spec = ReadOnlyUniformWorkload(/*seed=*/12);
  auto ops = GenerateOperations(spec, base, 20000);
  ASSERT_TRUE(ops.ok());
  DriverOptions driver_opts;
  driver_opts.num_threads = 2;

  AdversaryOptions adv;
  adv.ops = 300;
  adv.model_size = 200;
  adv.replan_check_every = 4;
  adv.pace_ns = 10000;
  adv.seed = 13;

  Result<AdversaryResult> adv_result = AdversaryResult{};
  std::thread attacker([&] {
    adv_result = RunOnlineAdversary(victim.get(), base, adv);
  });
  auto driver_result = RunWorkload(victim.get(), *ops, driver_opts);
  attacker.join();
  victim->WaitForMaintenance();
  FaultRegistry::Global().DisarmAll();

  ASSERT_TRUE(driver_result.ok()) << driver_result.status().message();
  ASSERT_TRUE(adv_result.ok()) << adv_result.status().message();
  // The storm actually reached the rebuild site (counters survive the
  // disarm), and the backoff cap held: no shard's trigger ever exceeds
  // 8x the configured threshold no matter how many give-ups occurred.
  EXPECT_GE(
      FaultRegistry::Global().GetPoint("compaction.rebuild")->hits(), 1);
  CheckMembership(victim.get(), *adv_result);
  for (int s = 0; s < victim->num_shards(); ++s) {
    EXPECT_LE(victim->shard_threshold(s), 8 * 64);
  }
}

}  // namespace
}  // namespace lispoison
