#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace lispoison {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  std::vector<char*> argv;
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  auto f = Parse({"--keys=500", "--pct=12.5", "--name=uniform"});
  EXPECT_EQ(f.GetInt("keys", 0), 500);
  EXPECT_DOUBLE_EQ(f.GetDouble("pct", 0), 12.5);
  EXPECT_EQ(f.GetString("name"), "uniform");
}

TEST(FlagsTest, SpaceSyntax) {
  auto f = Parse({"--keys", "42", "--label", "abc"});
  EXPECT_EQ(f.GetInt("keys", 0), 42);
  EXPECT_EQ(f.GetString("label"), "abc");
}

TEST(FlagsTest, DefaultsWhenMissing) {
  auto f = Parse({});
  EXPECT_EQ(f.GetInt("keys", 77), 77);
  EXPECT_DOUBLE_EQ(f.GetDouble("pct", 1.5), 1.5);
  EXPECT_EQ(f.GetString("name", "def"), "def");
  EXPECT_FALSE(f.GetBool("full"));
  EXPECT_FALSE(f.Has("keys"));
}

TEST(FlagsTest, BooleanForms) {
  auto f = Parse({"--full", "--csv=true", "--quiet=false", "--deep=1"});
  EXPECT_TRUE(f.GetBool("full"));
  EXPECT_TRUE(f.GetBool("csv"));
  EXPECT_FALSE(f.GetBool("quiet"));
  EXPECT_TRUE(f.GetBool("deep"));
}

TEST(FlagsTest, BareFlagFollowedByFlag) {
  auto f = Parse({"--full", "--keys=3"});
  EXPECT_TRUE(f.GetBool("full"));
  EXPECT_EQ(f.GetInt("keys", 0), 3);
}

TEST(FlagsTest, PositionalArguments) {
  auto f = Parse({"input.csv", "--keys=1", "output.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "output.csv");
}

TEST(FlagsTest, IntList) {
  auto f = Parse({"--sizes=50,100,200"});
  const auto v = f.GetIntList("sizes", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 50);
  EXPECT_EQ(v[2], 200);
  const auto def = f.GetIntList("missing", {7});
  ASSERT_EQ(def.size(), 1u);
  EXPECT_EQ(def[0], 7);
}

TEST(FlagsTest, DoubleList) {
  auto f = Parse({"--pcts=1,5.5,10"});
  const auto v = f.GetDoubleList("pcts", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 5.5);
}

TEST(FlagsTest, ProgramName) {
  auto f = Parse({});
  EXPECT_EQ(f.program(), "prog");
}

}  // namespace
}  // namespace lispoison
