#include "data/keyset.h"

#include <gtest/gtest.h>

#include <vector>

namespace lispoison {
namespace {

TEST(KeyDomainTest, SizeAndContains) {
  KeyDomain d{10, 19};
  EXPECT_EQ(d.size(), 10);
  EXPECT_TRUE(d.Contains(10));
  EXPECT_TRUE(d.Contains(19));
  EXPECT_FALSE(d.Contains(9));
  EXPECT_FALSE(d.Contains(20));
}

TEST(KeySetTest, CreateSortsInput) {
  auto ks = KeySet::Create({5, 1, 3}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->keys(), (std::vector<Key>{1, 3, 5}));
  EXPECT_EQ(ks->size(), 3);
}

TEST(KeySetTest, RejectsDuplicates) {
  auto ks = KeySet::Create({1, 2, 2}, KeyDomain{0, 10});
  EXPECT_EQ(ks.status().code(), StatusCode::kInvalidArgument);
}

TEST(KeySetTest, RejectsOutOfDomain) {
  auto ks = KeySet::Create({1, 11}, KeyDomain{0, 10});
  EXPECT_EQ(ks.status().code(), StatusCode::kOutOfRange);
}

TEST(KeySetTest, RejectsEmptyDomain) {
  auto ks = KeySet::Create({}, KeyDomain{5, 4});
  EXPECT_EQ(ks.status().code(), StatusCode::kInvalidArgument);
}

TEST(KeySetTest, EmptyKeysetIsValid) {
  auto ks = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_TRUE(ks->empty());
  EXPECT_EQ(ks->size(), 0);
}

TEST(KeySetTest, TightDomain) {
  auto ks = KeySet::CreateWithTightDomain({7, 3, 9});
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->domain().lo, 3);
  EXPECT_EQ(ks->domain().hi, 9);
}

TEST(KeySetTest, TightDomainRejectsEmpty) {
  auto ks = KeySet::CreateWithTightDomain({});
  EXPECT_FALSE(ks.ok());
}

TEST(KeySetTest, DensityMatchesDefinition) {
  auto ks = KeySet::Create({0, 1, 2, 3}, KeyDomain{0, 7});
  ASSERT_TRUE(ks.ok());
  EXPECT_DOUBLE_EQ(ks->density(), 0.5);
}

TEST(KeySetTest, RankOfPresentKeys) {
  auto ks = KeySet::Create({2, 6, 7, 12}, KeyDomain{1, 13});
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(*ks->RankOf(2), 1);
  EXPECT_EQ(*ks->RankOf(6), 2);
  EXPECT_EQ(*ks->RankOf(7), 3);
  EXPECT_EQ(*ks->RankOf(12), 4);
}

TEST(KeySetTest, RankOfMissingKeyFails) {
  auto ks = KeySet::Create({2, 6}, KeyDomain{1, 13});
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->RankOf(5).status().code(), StatusCode::kNotFound);
}

TEST(KeySetTest, CountLess) {
  auto ks = KeySet::Create({2, 6, 7, 12}, KeyDomain{1, 13});
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->CountLess(1), 0);
  EXPECT_EQ(ks->CountLess(2), 0);
  EXPECT_EQ(ks->CountLess(3), 1);
  EXPECT_EQ(ks->CountLess(7), 2);
  EXPECT_EQ(ks->CountLess(13), 4);
}

TEST(KeySetTest, Contains) {
  auto ks = KeySet::Create({2, 6}, KeyDomain{1, 13});
  ASSERT_TRUE(ks.ok());
  EXPECT_TRUE(ks->Contains(2));
  EXPECT_FALSE(ks->Contains(3));
}

TEST(KeySetTest, UnionAddsKeys) {
  auto ks = KeySet::Create({2, 6}, KeyDomain{1, 13});
  ASSERT_TRUE(ks.ok());
  auto merged = ks->Union({4, 9});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->keys(), (std::vector<Key>{2, 4, 6, 9}));
}

TEST(KeySetTest, UnionRejectsCollision) {
  auto ks = KeySet::Create({2, 6}, KeyDomain{1, 13});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(ks->Union({6}).ok());
}

TEST(KeySetTest, UnionRejectsOutOfDomain) {
  auto ks = KeySet::Create({2, 6}, KeyDomain{1, 13});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(ks->Union({99}).ok());
}

TEST(KeySetTest, SliceGivesContiguousSubset) {
  auto ks = KeySet::Create({1, 3, 5, 7, 9}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  auto slice = ks->Slice(1, 3);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->keys(), (std::vector<Key>{3, 5, 7}));
  EXPECT_EQ(slice->domain().hi, 10);
}

TEST(KeySetTest, SliceBoundsChecked) {
  auto ks = KeySet::Create({1, 3, 5}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(ks->Slice(2, 2).ok());
  EXPECT_FALSE(ks->Slice(-1, 1).ok());
  EXPECT_TRUE(ks->Slice(0, 3).ok());
}

TEST(KeySetTest, AtAccessor) {
  auto ks = KeySet::Create({4, 8}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->at(0), 4);
  EXPECT_EQ(ks->at(1), 8);
}

}  // namespace
}  // namespace lispoison
